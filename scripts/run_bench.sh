#!/usr/bin/env bash
# Runs the recorded trajectory benches and writes the numbers the
# acceptance criteria track (google-benchmark JSON format):
#   BENCH_join_dedup.json      — fused join dedup vs the seed path
#   BENCH_columnar_scan.json   — columnar Ω vs row-major storage
#   BENCH_stats_ablation.json  — stats-driven cardinality vs seed constants
#   BENCH_wcoj.json            — triangle/diamond motifs, binary joins vs
#                                MultiwayExpand (worst-case-optimal)
#   BENCH_storage.json         — GraphSnapshot label spans / typed columns
#                                vs the PPG map-walk read path, plus
#                                arena persistence: save / load / mmap
#                                vs re-freeze at SNB 2k and 20k persons
#   BENCH_paths.json           — parallel path engine ablation: serial
#                                spec vs delta-stepping / batched waves /
#                                bidirectional probes, parallelism 1 and max
#   BENCH_serving.json         — concurrent session serving: SNB query mix
#                                QPS + p50/p95/p99, cold vs warm plan
#                                cache, 1/2/max threads
#   BENCH_expr.json            — vectorized expression kernels vs the
#                                row-at-a-time evaluator: arithmetic WHERE,
#                                3-conjunct AND, computed projection at
#                                SNB 2k/20k, single-threaded
# Extra arguments pass through to every bench binary, e.g.
#   scripts/run_bench.sh --benchmark_filter='BM_ColumnarScan.*'
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build --target bench_join_dedup bench_columnar_scan \
  bench_baseline_ablation bench_wcoj bench_storage bench_path_finding \
  bench_serving bench_expr -j

run_bench() {
  local binary="$1" out="$2"
  shift 2
  "./build/${binary}" \
    --benchmark_format=json \
    --benchmark_out="${out}" \
    --benchmark_out_format=json \
    --benchmark_repetitions=3 \
    --benchmark_report_aggregates_only=true \
    "$@"
}

run_bench bench_join_dedup BENCH_join_dedup.json "$@"
run_bench bench_columnar_scan BENCH_columnar_scan.json "$@"
run_bench bench_wcoj BENCH_wcoj.json "$@"
run_bench bench_storage BENCH_storage.json "$@"
run_bench bench_path_finding BENCH_paths.json "$@"
run_bench bench_serving BENCH_serving.json "$@"
run_bench bench_expr BENCH_expr.json "$@"
# The stats filter comes last: google-benchmark honors the final
# --benchmark_filter, so a user-passed filter cannot swap which
# benchmarks land in BENCH_stats_ablation.json.
run_bench bench_baseline_ablation BENCH_stats_ablation.json "$@" \
  --benchmark_filter='BM_Stats.*'
