#!/usr/bin/env bash
# Runs the join-dedup trajectory bench and records the numbers that the
# acceptance criteria track into BENCH_join_dedup.json (google-benchmark
# JSON format). Extra arguments pass through to the bench binary, e.g.
#   scripts/run_bench.sh --benchmark_filter='BM_JoinDedup.*'
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build --target bench_join_dedup -j

./build/bench_join_dedup \
  --benchmark_format=json \
  --benchmark_out=BENCH_join_dedup.json \
  --benchmark_out_format=json \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  "$@"
