// CSV → graph pipeline: the practical face of Section 5's tabular
// import. Loads an order ledger from CSV, constructs a customer/product
// graph with aggregated edges, and reports top customers with the
// SELECT ... ORDER BY ... LIMIT extensions.
//
//   $ ./build/examples/csv_import
#include <cstdio>

#include "engine/engine.h"
#include "snb/csv.h"

using namespace gcore;  // NOLINT — example brevity

int main() {
  // In a real deployment this would be ReadCsvFile("orders.csv").
  const char* kOrdersCsv =
      "custName,prodCode,qty,orderDate\n"
      "Ada,P100,2,2024-01-15\n"
      "Ada,P200,1,2024-01-20\n"
      "Bob,P100,5,2024-02-01\n"
      "Cyd,P300,1,2024-02-11\n"
      "Bob,P300,2,2024-03-05\n"
      "Ada,P100,3,2024-03-30\n"
      "Dee,P200,4,2024-04-02\n";

  auto orders = ParseCsv(kOrdersCsv);
  if (!orders.ok()) {
    std::fprintf(stderr, "CSV parse failed: %s\n",
                 orders.status().ToString().c_str());
    return 1;
  }
  std::printf("=== imported table ===\n%s\n", orders->ToString().c_str());

  GraphCatalog catalog;
  catalog.RegisterTable("orders", std::move(*orders));
  QueryEngine engine(&catalog);

  // Rows → graph: customers/products grouped out of the table, one
  // bought edge per (customer, product) with aggregated quantity.
  auto graph = engine.Execute(
      "GRAPH VIEW sales AS ( "
      "  CONSTRUCT (c GROUP custName :Customer {name := custName}), "
      "            (p GROUP prodCode :Product {code := prodCode}), "
      "            (c)-[b:bought {total := SUM(qty), "
      "                           orders := COUNT(*)}]->(p) "
      "  FROM orders )");
  if (!graph.ok()) {
    std::fprintf(stderr, "construction failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  std::printf("=== sales graph ===\n%s\n", graph->graph->ToString().c_str());

  // Graph → table: top customers by order lines, sorted and sliced.
  auto top = engine.Execute(
      "SELECT c.name AS customer, COUNT(*) AS products "
      "MATCH (c:Customer)-[b:bought]->(p) ON sales "
      "WHERE c.name = 'Ada'");
  if (top.ok()) {
    std::printf("=== Ada's distinct products ===\n%s\n",
                top->table->ToString().c_str());
  }

  auto sorted = engine.Execute(
      "SELECT DISTINCT c.name AS customer, b.total AS units "
      "MATCH (c:Customer)-[b:bought]->(p:Product) ON sales "
      "ORDER BY b.total DESC, c.name LIMIT 3");
  if (!sorted.ok()) {
    std::fprintf(stderr, "report failed: %s\n",
                 sorted.status().ToString().c_str());
    return 1;
  }
  std::printf("=== top 3 purchase volumes ===\n%s",
              sorted->table->ToString().c_str());

  // And back out to CSV for the next tool in the pipeline.
  std::printf("\n=== re-exported as CSV ===\n%s",
              WriteCsv(*sorted->table).c_str());
  return 0;
}
