// Quickstart: build a Path Property Graph, run a few G-CORE queries, and
// inspect results. Mirrors the opening examples of the paper (Section 2
// Example 2.2 and the first guided-tour queries).
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "engine/engine.h"
#include "graph/graph_builder.h"
#include "snb/toy_graphs.h"

using namespace gcore;  // NOLINT — example brevity

int main() {
  // 1. A catalog holds named graphs; all identities come from one
  //    allocator so query outputs can share objects with inputs.
  GraphCatalog catalog;
  snb::RegisterToyData(&catalog);  // social_graph, company_graph, orders

  std::printf("=== the Figure 2 example PPG ===\n%s\n",
              (*catalog.Lookup("example_graph"))->ToString().c_str());

  // 2. Every G-CORE query returns a graph (the language is closed).
  QueryEngine engine(&catalog);
  auto acme = engine.Execute(
      "CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme'");
  if (!acme.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 acme.status().ToString().c_str());
    return 1;
  }
  std::printf("=== Acme employees (paper lines 1-4) ===\n%s\n",
              acme->graph->ToString().c_str());

  // 3. Paths are first-class: compute 2-shortest knows-paths from John
  //    and *store* them in the result graph with labels and properties.
  auto paths = engine.Execute(
      "CONSTRUCT (n)-/@p:friendPath{distance := c}/->(m) "
      "MATCH (n)-/2 SHORTEST p <:knows*> COST c/->(m:Person) "
      "WHERE n.firstName = 'John'");
  if (!paths.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 paths.status().ToString().c_str());
    return 1;
  }
  std::printf("=== stored shortest paths from John ===\n%s\n",
              paths->graph->ToString().c_str());

  // 4. The tabular extension (Section 5) projects bindings into a table.
  auto table = engine.Execute(
      "SELECT n.firstName AS name, "
      "CASE WHEN SIZE(n.employer) = 0 THEN 'unemployed' "
      "ELSE 'employed' END AS status "
      "MATCH (n:Person)");
  if (!table.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 table.status().ToString().c_str());
    return 1;
  }
  table->table->SortRows();
  std::printf("=== SELECT projection ===\n%s\n",
              table->table->ToString().c_str());

  // 5. Build your own graph programmatically.
  GraphBuilder builder("mini", catalog.ids());
  const NodeId a = builder.AddNode({"Stop"}, {{"name", "Centraal"}});
  const NodeId b = builder.AddNode({"Stop"}, {{"name", "Science Park"}});
  builder.AddEdge(a, b, "rail", {{"minutes", 9}});
  catalog.RegisterGraph("mini", builder.Build());
  auto mini = engine.Execute(
      "CONSTRUCT (s)-[=r]->(t) MATCH (s)-[r:rail]->(t) ON mini");
  std::printf("=== programmatic graph, copied edge ===\n%s",
              mini.ok() ? mini->graph->ToString().c_str()
                        : mini.status().ToString().c_str());
  return 0;
}
