// Data-integration scenario (the paper's Section 3 motivation): company
// data loaded separately from the social network, unified into one graph
// with worksAt edges, handling multi-valued and missing employer
// properties — the full arc of paper lines 5-22.
//
//   $ ./build/examples/social_integration
#include <cstdio>

#include "engine/engine.h"
#include "snb/generator.h"
#include "snb/toy_graphs.h"

using namespace gcore;  // NOLINT — example brevity

namespace {

int Fail(const Status& st) {
  std::fprintf(stderr, "query failed: %s\n", st.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  GraphCatalog catalog;
  snb::RegisterToyData(&catalog);
  QueryEngine engine(&catalog);

  // Naive equi-join: Frank (employer = {"CWI","MIT"}) silently drops out.
  auto naive = engine.Execute(
      "SELECT c.name AS company, n.firstName AS person "
      "MATCH (c:Company) ON company_graph, (n:Person) ON social_graph "
      "WHERE c.name = n.employer");
  if (!naive.ok()) return Fail(naive.status());
  naive->table->SortRows();
  std::printf("=== equi-join (= on a set-valued property) ===\n%s\n",
              naive->table->ToString().c_str());

  // IN fixes it: element-of instead of set equality.
  auto with_in = engine.Execute(
      "SELECT c.name AS company, n.firstName AS person "
      "MATCH (c:Company) ON company_graph, (n:Person) ON social_graph "
      "WHERE c.name IN n.employer");
  if (!with_in.ok()) return Fail(with_in.status());
  with_in->table->SortRows();
  std::printf("=== membership join (IN) — Frank appears twice ===\n%s\n",
              with_in->table->ToString().c_str());

  // The integrated graph: companies aggregated out of the employer
  // property itself (no company_graph needed), unioned with the input.
  auto integrated = engine.Execute(
      "CONSTRUCT social_graph, "
      "(x GROUP e :Company {name := e})<-[y:worksAt]-(n) "
      "MATCH (n:Person {employer = e})");
  if (!integrated.ok()) return Fail(integrated.status());
  std::printf("=== integrated graph: %zu nodes, %zu edges ===\n",
              integrated->graph->NumNodes(), integrated->graph->NumEdges());
  integrated->graph->ForEachEdge([&](EdgeId e, NodeId src, NodeId dst) {
    const PathPropertyGraph& g = *integrated->graph;
    if (!g.Labels(e).Contains("worksAt")) return;
    std::printf("  %s -worksAt-> %s\n",
                g.Property(src, "firstName").ToString().c_str(),
                g.Property(dst, "name").ToString().c_str());
  });

  // The same integration at scale, on generated SNB data.
  catalog.RegisterGraph("snb",
                        snb::Generate(snb::ScaleFactor(1), catalog.ids()));
  auto at_scale = engine.Execute(
      "CONSTRUCT (x GROUP e :Company {name := e})<-[:worksAt]-(n) "
      "MATCH (n:Person {employer = e}) ON snb");
  if (!at_scale.ok()) return Fail(at_scale.status());
  size_t companies = 0;
  at_scale->graph->ForEachNode([&](NodeId n) {
    if (at_scale->graph->Labels(n).Contains("Company")) ++companies;
  });
  std::printf(
      "\n=== SNB SF1 (%zu persons): %zu companies aggregated, %zu "
      "worksAt edges ===\n",
      snb::ScaleFactor(1).num_persons, companies,
      at_scale->graph->NumEdges());

  // Coalescing missing data (Peter has no employer) with CASE.
  auto status_report = engine.Execute(
      "SELECT n.firstName AS person, "
      "COALESCE(n.employer, 'unemployed') AS employers "
      "MATCH (n:Person) ON social_graph");
  if (!status_report.ok()) return Fail(status_report.status());
  status_report->table->SortRows();
  std::printf("\n=== employer report with coalesced gaps ===\n%s",
              status_report->table->ToString().c_str());
  return 0;
}
