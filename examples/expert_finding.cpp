// Expert finding — the paper's finale (Section 3, lines 39-71) run as a
// three-stage pipeline of composable queries:
//   1. GRAPH VIEW social_graph1: annotate knows edges with nr_messages,
//   2. GRAPH VIEW social_graph2: weighted shortest paths to Wagner lovers
//      over the wKnows PATH view (cost 1/(1+nr_messages)),
//   3. score John's direct friends by how many toWagner paths start
//      through them (the wagnerFriend edge).
//
//   $ ./build/examples/expert_finding
#include <cstdio>

#include "engine/engine.h"
#include "snb/toy_graphs.h"

using namespace gcore;  // NOLINT — example brevity

namespace {

int Fail(const char* stage, const Status& st) {
  std::fprintf(stderr, "%s failed: %s\n", stage, st.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  GraphCatalog catalog;
  snb::RegisterToyData(&catalog);
  QueryEngine engine(&catalog);

  // Stage 1 — message intensity view (paper lines 39-47).
  auto v1 = engine.Execute(
      "GRAPH VIEW social_graph1 AS ( "
      "  CONSTRUCT social_graph, "
      "            (n)-[e]->(m) SET e.nr_messages := COUNT(*) "
      "  MATCH (n)-[e:knows]->(m) "
      "  WHERE (n:Person) AND (m:Person) "
      "  OPTIONAL (n)<-[c1]-(msg1:Post|Comment), "
      "           (msg1)-[:reply_of]-(msg2), "
      "           (msg2:Post|Comment)-[c2]->(m) "
      "  WHERE (c1:has_creator) AND (c2:has_creator) )");
  if (!v1.ok()) return Fail("social_graph1", v1.status());
  std::printf("=== social_graph1: knows edges with message intensity ===\n");
  const PathPropertyGraph& g1 = *v1->graph;
  g1.ForEachEdge([&](EdgeId e, NodeId src, NodeId dst) {
    if (!g1.Labels(e).Contains("knows")) return;
    std::printf("  %-7s -> %-7s nr_messages = %s\n",
                g1.Property(src, "firstName").ToString().c_str(),
                g1.Property(dst, "firstName").ToString().c_str(),
                g1.Property(e, "nr_messages").ToString().c_str());
  });

  // Stage 2 — weighted shortest paths to Wagner lovers (lines 57-66).
  // John prefers intermediaries who actually talk to each other, and his
  // Wagner taste must stay hidden from Acme colleagues.
  auto v2 = engine.Execute(
      "GRAPH VIEW social_graph2 AS ( "
      "  PATH wKnows = (x)-[e:knows]->(y) "
      "       WHERE NOT 'Acme' IN y.employer "
      "       COST 1 / (1 + e.nr_messages) "
      "  CONSTRUCT social_graph1, (n)-/@p:toWagner/->(m) "
      "  MATCH (n:Person)-/p <~wKnows*>/->(m:Person) ON social_graph1 "
      "  WHERE (m)-[:hasInterest]->(:Tag {name = 'Wagner'}) "
      "    AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m) "
      "    AND n.firstName = 'John' AND n.lastName = 'Doe')");
  if (!v2.ok()) return Fail("social_graph2", v2.status());
  const PathPropertyGraph& g2 = *v2->graph;
  std::printf("\n=== social_graph2: stored :toWagner paths ===\n");
  g2.ForEachPath([&](PathId p, const PathBody& body) {
    std::printf("  path %s:", ToString(p).c_str());
    for (size_t i = 0; i < body.nodes.size(); ++i) {
      std::printf(" %s",
                  g2.Property(body.nodes[i], "firstName").ToString().c_str());
      if (i + 1 < body.nodes.size()) std::printf(" ->");
    }
    std::printf("\n");
  });

  // Stage 3 — score the friends (lines 67-71): count toWagner paths per
  // second-node.
  auto scored = engine.Execute(
      "CONSTRUCT (n)-[e:wagnerFriend {score := COUNT(*)}]->(m) "
      "WHEN e.score > 0 "
      "MATCH (n:Person)-/@p:toWagner/->(), (m:Person) ON social_graph2 "
      "WHERE m = nodes(p)[1]");
  if (!scored.ok()) return Fail("wagnerFriend", scored.status());
  std::printf("\n=== whom should John ask? ===\n");
  const PathPropertyGraph& g3 = *scored->graph;
  g3.ForEachEdge([&](EdgeId e, NodeId src, NodeId dst) {
    std::printf("  %s should ask %s (score %s)\n",
                g3.Property(src, "firstName").ToString().c_str(),
                g3.Property(dst, "firstName").ToString().c_str(),
                g3.Property(e, "score").ToString().c_str());
  });
  return 0;
}
