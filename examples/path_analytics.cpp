// Path analytics at scale: G-CORE's unique capability of querying
// *databases of stored paths* (Section 3: "query and analyze databases of
// potentially many stored paths"), demonstrated on generated SNB data:
//   1. materialize a path database (k-shortest friendship paths),
//   2. query the stored paths themselves (lengths, intermediates),
//   3. reachability vs ALL-paths projection on the same pattern.
//
//   $ ./build/examples/path_analytics
#include <cstdio>

#include "engine/engine.h"
#include "snb/generator.h"

using namespace gcore;  // NOLINT — example brevity

namespace {

int Fail(const char* stage, const Status& st) {
  std::fprintf(stderr, "%s failed: %s\n", stage, st.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  GraphCatalog catalog;
  snb::GeneratorOptions options;
  options.num_persons = 400;
  catalog.RegisterGraph("snb", snb::Generate(options, catalog.ids()));
  catalog.SetDefaultGraph("snb");
  QueryEngine engine(&catalog);

  // Stage 1 — a database of stored paths: 2-shortest knows-walks from one
  // person to everyone reachable, persisted as a graph view.
  auto paths = engine.Execute(
      "GRAPH VIEW friend_paths AS ( "
      "  CONSTRUCT (n)-/@p:friendship {distance := c}/->(m) "
      "  MATCH (n:Person)-/2 SHORTEST p <:knows*> COST c/->(m:Person) "
      "  WHERE n.firstName = 'John' AND n.lastName = 'Doe' )");
  if (!paths.ok()) return Fail("friend_paths", paths.status());
  const PathPropertyGraph& pdb = *paths->graph;
  std::printf("friend_paths: %zu nodes, %zu edges, %zu stored paths\n",
              pdb.NumNodes(), pdb.NumEdges(), pdb.NumPaths());

  // Stage 2 — query the stored paths: distance histogram via SELECT over
  // -/@p:friendship/-> matches.
  auto hist = engine.Execute(
      "SELECT p.distance AS hops, COUNT(*) AS cnt "
      "MATCH (n)-/@p:friendship/->(m) ON friend_paths "
      "WHERE p.distance = 2");
  if (!hist.ok()) return Fail("histogram", hist.status());
  std::printf("stored paths with exactly 2 hops: %s\n",
              hist->table->At(0, 1).ToString().c_str());

  // Who appears most often as the *first intermediate* on these paths?
  auto brokers = engine.Execute(
      "CONSTRUCT (m)-[e:broker {uses := COUNT(*)}]->(m) "
      "MATCH (n)-/@p:friendship/->(), (m:Person) ON friend_paths "
      "WHERE m = nodes(p)[1]");
  if (!brokers.ok()) return Fail("brokers", brokers.status());
  std::printf("\nbrokerage (self-loops annotate persons):\n");
  const PathPropertyGraph& bg = *brokers->graph;
  bg.ForEachEdge([&](EdgeId e, NodeId src, NodeId) {
    std::printf("  %-10s routes %s paths\n",
                bg.Property(src, "firstName").ToString().c_str(),
                bg.Property(e, "uses").ToString().c_str());
  });

  // Stage 3 — the tractable ALL-paths projection: the subgraph of every
  // conforming walk, without materializing the (infinite) walk set.
  auto projection = engine.Execute(
      "CONSTRUCT (n)-/p/->(m) "
      "MATCH (n:Person)-/ALL p <:knows*>/->(m:Person) "
      "WHERE n.firstName = 'John' AND n.lastName = 'Doe' "
      "AND m.firstName = 'Emma'");
  if (!projection.ok()) return Fail("projection", projection.status());
  std::printf(
      "\nALL-paths projection John=>Emma: %zu nodes, %zu edges "
      "participate in some knows* walk\n",
      projection->graph->NumNodes(), projection->graph->NumEdges());

  // Reachability (boolean flavor of the same question).
  auto reach = engine.Execute(
      "SELECT COUNT(*) AS reachable "
      "MATCH (n:Person)-/<:knows*>/->(m:Person) "
      "WHERE n.firstName = 'John' AND n.lastName = 'Doe'");
  if (!reach.ok()) return Fail("reachability", reach.status());
  std::printf("persons reachable from John over knows*: %s\n",
              reach->table->At(0, 0).ToString().c_str());
  return 0;
}
