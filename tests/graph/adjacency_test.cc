// Tests for the CSR adjacency snapshot.
#include "graph/adjacency.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace gcore {
namespace {

struct SmallGraph {
  PathPropertyGraph g;
  SmallGraph() {
    for (uint64_t i = 1; i <= 4; ++i) g.AddNode(NodeId(i));
    EXPECT_TRUE(g.AddEdge(EdgeId(10), NodeId(1), NodeId(2)).ok());
    EXPECT_TRUE(g.AddEdge(EdgeId(11), NodeId(1), NodeId(3)).ok());
    EXPECT_TRUE(g.AddEdge(EdgeId(12), NodeId(3), NodeId(1)).ok());
    EXPECT_TRUE(g.AddEdge(EdgeId(13), NodeId(2), NodeId(2)).ok());  // self loop
  }
};

TEST(AdjacencyIndex, DenseNumberingIsIdOrdered) {
  SmallGraph f;
  AdjacencyIndex adj(f.g);
  ASSERT_EQ(adj.num_nodes(), 4u);
  for (uint64_t i = 1; i <= 4; ++i) {
    EXPECT_EQ(adj.IdOf(adj.IndexOf(NodeId(i))), NodeId(i));
    EXPECT_EQ(adj.IndexOf(NodeId(i)), i - 1);
  }
}

TEST(AdjacencyIndex, OutListsForwardHalfEdges) {
  SmallGraph f;
  AdjacencyIndex adj(f.g);
  auto [b, e] = adj.Out(adj.IndexOf(NodeId(1)));
  ASSERT_EQ(e - b, 2);
  EXPECT_EQ(b[0].edge, EdgeId(10));
  EXPECT_TRUE(b[0].forward);
  EXPECT_EQ(adj.IdOf(b[0].neighbor), NodeId(2));
  EXPECT_EQ(b[1].edge, EdgeId(11));
  EXPECT_EQ(adj.IdOf(b[1].neighbor), NodeId(3));
}

TEST(AdjacencyIndex, InListsBackwardHalfEdges) {
  SmallGraph f;
  AdjacencyIndex adj(f.g);
  auto [b, e] = adj.In(adj.IndexOf(NodeId(1)));
  ASSERT_EQ(e - b, 1);
  EXPECT_EQ(b[0].edge, EdgeId(12));
  EXPECT_FALSE(b[0].forward);
  EXPECT_EQ(adj.IdOf(b[0].neighbor), NodeId(3));
}

TEST(AdjacencyIndex, SelfLoopAppearsBothDirections) {
  SmallGraph f;
  AdjacencyIndex adj(f.g);
  const DenseNodeIndex two = adj.IndexOf(NodeId(2));
  auto [ob, oe] = adj.Out(two);
  auto [ib, ie] = adj.In(two);
  int loop_out = 0, loop_in = 0;
  for (auto* it = ob; it != oe; ++it) {
    if (it->edge == EdgeId(13)) ++loop_out;
  }
  for (auto* it = ib; it != ie; ++it) {
    if (it->edge == EdgeId(13)) ++loop_in;
  }
  EXPECT_EQ(loop_out, 1);
  EXPECT_EQ(loop_in, 1);
}

TEST(AdjacencyIndex, AllNeighborsExposesBothSpans) {
  SmallGraph f;
  AdjacencyIndex adj(f.g);
  auto all = adj.AllNeighbors(adj.IndexOf(NodeId(1)));
  EXPECT_EQ(all.size(), 3u);
  EXPECT_FALSE(all.empty());
  // The spans alias the CSR storage: Out first, then In.
  EXPECT_EQ(all.out.begin, adj.Out(adj.IndexOf(NodeId(1))).first);
  EXPECT_EQ(all.in.begin, adj.In(adj.IndexOf(NodeId(1))).first);
  ASSERT_EQ(all.out.size(), 2u);
  ASSERT_EQ(all.in.size(), 1u);
  EXPECT_EQ(all.out.begin[0].edge, EdgeId(10));
  EXPECT_EQ(all.in.begin[0].edge, EdgeId(12));
}

TEST(AdjacencyIndex, EmptyGraph) {
  PathPropertyGraph g;
  AdjacencyIndex adj(g);
  EXPECT_EQ(adj.num_nodes(), 0u);
  EXPECT_FALSE(adj.Contains(NodeId(1)));
}

TEST(AdjacencyIndex, IsolatedNodeHasNoNeighbors) {
  SmallGraph f;
  AdjacencyIndex adj(f.g);
  auto [ob, oe] = adj.Out(adj.IndexOf(NodeId(4)));
  auto [ib, ie] = adj.In(adj.IndexOf(NodeId(4)));
  EXPECT_EQ(ob, oe);
  EXPECT_EQ(ib, ie);
}

TEST(AdjacencyIndex, DeterministicNeighborOrder) {
  // Neighbor lists sorted by (neighbor, edge id) — the fixed order the
  // deterministic shortest-path tiebreak relies on.
  PathPropertyGraph g;
  for (uint64_t i = 1; i <= 5; ++i) g.AddNode(NodeId(i));
  ASSERT_TRUE(g.AddEdge(EdgeId(30), NodeId(1), NodeId(5)).ok());
  ASSERT_TRUE(g.AddEdge(EdgeId(20), NodeId(1), NodeId(3)).ok());
  ASSERT_TRUE(g.AddEdge(EdgeId(25), NodeId(1), NodeId(3)).ok());
  AdjacencyIndex adj(g);
  auto [b, e] = adj.Out(adj.IndexOf(NodeId(1)));
  ASSERT_EQ(e - b, 3);
  EXPECT_EQ(b[0].edge, EdgeId(20));
  EXPECT_EQ(b[1].edge, EdgeId(25));
  EXPECT_EQ(b[2].edge, EdgeId(30));
}

}  // namespace
}  // namespace gcore
