// Tests of the PPG data model (Definition 2.1) including the exact
// Example 2.2 instance of Figure 2.
#include "graph/ppg.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "snb/toy_graphs.h"

namespace gcore {
namespace {

TEST(LabelSet, InsertRemoveContains) {
  LabelSet s;
  s.Insert("Person");
  s.Insert("Manager");
  s.Insert("Person");
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.Contains("Person"));
  EXPECT_TRUE(s.Contains("Manager"));
  s.Remove("Person");
  EXPECT_FALSE(s.Contains("Person"));
  s.Remove("NotThere");
  EXPECT_EQ(s.size(), 1u);
}

TEST(LabelSet, UnionIntersect) {
  LabelSet a({"A", "B"});
  LabelSet b({"B", "C"});
  LabelSet u = a;
  u.UnionWith(b);
  EXPECT_EQ(u, LabelSet({"A", "B", "C"}));
  LabelSet i = a;
  i.IntersectWith(b);
  EXPECT_EQ(i, LabelSet({"B"}));
}

TEST(LabelSet, ToStringColonForm) {
  EXPECT_EQ(LabelSet({"Person", "Manager"}).ToString(), ":Manager:Person");
  EXPECT_EQ(LabelSet().ToString(), "");
}

TEST(PropertyMap, AbsentKeyIsEmptySet) {
  PropertyMap m;
  EXPECT_TRUE(m.Get("name").empty());
  EXPECT_FALSE(m.Has("name"));
}

TEST(PropertyMap, SetGetRemove) {
  PropertyMap m;
  m.Set("name", ValueSet(Value::String("Wagner")));
  EXPECT_TRUE(m.Has("name"));
  EXPECT_EQ(m.Get("name").single(), Value::String("Wagner"));
  m.Remove("name");
  EXPECT_FALSE(m.Has("name"));
}

TEST(PropertyMap, SettingEmptyErases) {
  PropertyMap m;
  m.Set("k", ValueSet(Value::Int(1)));
  m.Set("k", ValueSet());
  EXPECT_FALSE(m.Has("k"));
}

TEST(PropertyMap, AddBuildsMultiValued) {
  PropertyMap m;
  m.Add("employer", Value::String("CWI"));
  m.Add("employer", Value::String("MIT"));
  m.Add("employer", Value::String("CWI"));
  EXPECT_EQ(m.Get("employer").size(), 2u);
}

TEST(PropertyMap, UnionIntersectPerKey) {
  PropertyMap a;
  a.Set("k", ValueSet({Value::Int(1), Value::Int(2)}));
  a.Set("only_a", ValueSet(Value::Int(9)));
  PropertyMap b;
  b.Set("k", ValueSet({Value::Int(2), Value::Int(3)}));

  PropertyMap u = a;
  u.UnionWith(b);
  EXPECT_EQ(u.Get("k").size(), 3u);
  EXPECT_TRUE(u.Has("only_a"));

  PropertyMap i = a;
  i.IntersectWith(b);
  EXPECT_EQ(i.Get("k"), ValueSet(Value::Int(2)));
  EXPECT_FALSE(i.Has("only_a"));
}

TEST(PathPropertyGraph, AddNodeIdempotent) {
  PathPropertyGraph g;
  g.AddNode(NodeId(1));
  g.AddLabel(NodeId(1), "Person");
  g.AddNode(NodeId(1));
  EXPECT_EQ(g.NumNodes(), 1u);
  EXPECT_TRUE(g.Labels(NodeId(1)).Contains("Person"));
}

TEST(PathPropertyGraph, EdgeRequiresMemberEndpoints) {
  PathPropertyGraph g;
  g.AddNode(NodeId(1));
  EXPECT_FALSE(g.AddEdge(EdgeId(10), NodeId(1), NodeId(2)).ok());
  g.AddNode(NodeId(2));
  EXPECT_TRUE(g.AddEdge(EdgeId(10), NodeId(1), NodeId(2)).ok());
  EXPECT_EQ(g.EdgeEndpoints(EdgeId(10)), std::make_pair(NodeId(1), NodeId(2)));
}

TEST(PathPropertyGraph, EdgeIdentityViolationRejected) {
  PathPropertyGraph g;
  g.AddNode(NodeId(1));
  g.AddNode(NodeId(2));
  ASSERT_TRUE(g.AddEdge(EdgeId(10), NodeId(1), NodeId(2)).ok());
  // Same id, same ρ: fine. Different ρ: identity violation.
  EXPECT_TRUE(g.AddEdge(EdgeId(10), NodeId(1), NodeId(2)).ok());
  EXPECT_FALSE(g.AddEdge(EdgeId(10), NodeId(2), NodeId(1)).ok());
}

TEST(PathPropertyGraph, MultipleEdgesBetweenSamePair) {
  // "The function ρ allows us to have several edges between the same pairs
  // of nodes" (Section 2).
  PathPropertyGraph g;
  g.AddNode(NodeId(1));
  g.AddNode(NodeId(2));
  ASSERT_TRUE(g.AddEdge(EdgeId(10), NodeId(1), NodeId(2)).ok());
  ASSERT_TRUE(g.AddEdge(EdgeId(11), NodeId(1), NodeId(2)).ok());
  EXPECT_EQ(g.NumEdges(), 2u);
}

TEST(PathPropertyGraph, PathValidationConditionThree) {
  // δ(p) must concatenate adjacent member edges, traversable in either
  // direction (condition (3) of Definition 2.1).
  PathPropertyGraph g;
  for (uint64_t i = 1; i <= 3; ++i) g.AddNode(NodeId(i));
  ASSERT_TRUE(g.AddEdge(EdgeId(10), NodeId(1), NodeId(2)).ok());
  ASSERT_TRUE(g.AddEdge(EdgeId(11), NodeId(3), NodeId(2)).ok());  // reversed

  PathBody ok_body;
  ok_body.nodes = {NodeId(1), NodeId(2), NodeId(3)};
  ok_body.edges = {EdgeId(10), EdgeId(11)};  // 11 crossed backwards
  EXPECT_TRUE(g.AddPath(PathId(100), ok_body).ok());

  PathBody bad_nodes;
  bad_nodes.nodes = {NodeId(1), NodeId(3)};
  bad_nodes.edges = {EdgeId(10)};  // 10 does not connect 1-3
  EXPECT_FALSE(g.AddPath(PathId(101), bad_nodes).ok());

  PathBody bad_arity;
  bad_arity.nodes = {NodeId(1)};
  bad_arity.edges = {EdgeId(10)};
  EXPECT_FALSE(g.AddPath(PathId(102), bad_arity).ok());
}

TEST(PathPropertyGraph, ZeroLengthPathAllowed) {
  PathPropertyGraph g;
  g.AddNode(NodeId(1));
  PathBody body;
  body.nodes = {NodeId(1)};
  EXPECT_TRUE(g.AddPath(PathId(100), body).ok());
  EXPECT_EQ(g.Path(PathId(100)).Length(), 0u);
}

TEST(PathPropertyGraph, PathsHaveLabelsAndProperties) {
  PathPropertyGraph g;
  g.AddNode(NodeId(1));
  PathBody body;
  body.nodes = {NodeId(1)};
  ASSERT_TRUE(g.AddPath(PathId(100), body).ok());
  g.AddLabel(PathId(100), "toWagner");
  g.SetProperty(PathId(100), "trust", ValueSet(Value::Double(0.95)));
  EXPECT_TRUE(g.Labels(PathId(100)).Contains("toWagner"));
  EXPECT_DOUBLE_EQ(g.Property(PathId(100), "trust").single().AsDouble(), 0.95);
}

TEST(PathPropertyGraph, ValidateDetectsWellFormedness) {
  PathPropertyGraph g;
  g.AddNode(NodeId(1));
  g.AddNode(NodeId(2));
  ASSERT_TRUE(g.AddEdge(EdgeId(10), NodeId(1), NodeId(2)).ok());
  EXPECT_TRUE(g.Validate().ok());
}

// --- Example 2.2 (Figure 2) ----------------------------------------------------

class Example22 : public ::testing::Test {
 protected:
  IdAllocator ids;
  PathPropertyGraph g = snb::MakeExampleGraph(&ids);
};

TEST_F(Example22, IdentifierSets) {
  EXPECT_EQ(g.NumNodes(), 6u);
  EXPECT_EQ(g.NumEdges(), 7u);
  EXPECT_EQ(g.NumPaths(), 1u);
  for (uint64_t n = 101; n <= 106; ++n) EXPECT_TRUE(g.HasNode(NodeId(n)));
  for (uint64_t e = 201; e <= 207; ++e) EXPECT_TRUE(g.HasEdge(EdgeId(e)));
  EXPECT_TRUE(g.HasPath(PathId(301)));
}

TEST_F(Example22, LabelAssignments) {
  EXPECT_TRUE(g.Labels(NodeId(101)).Contains("Tag"));
  EXPECT_TRUE(g.Labels(NodeId(102)).Contains("Person"));
  EXPECT_TRUE(g.Labels(NodeId(102)).Contains("Manager"));
  EXPECT_TRUE(g.Labels(EdgeId(201)).Contains("hasInterest"));
  EXPECT_TRUE(g.Labels(PathId(301)).Contains("toWagner"));
}

TEST_F(Example22, PropertyAssignments) {
  EXPECT_EQ(g.Property(NodeId(101), "name").single(), Value::String("Wagner"));
  EXPECT_EQ(g.Property(EdgeId(205), "since").single(),
            Value::OfDate(Date{2014, 12, 1}));
  EXPECT_DOUBLE_EQ(g.Property(PathId(301), "trust").single().AsDouble(), 0.95);
}

TEST_F(Example22, RhoAssignments) {
  EXPECT_EQ(g.EdgeEndpoints(EdgeId(201)),
            std::make_pair(NodeId(102), NodeId(101)));
  EXPECT_EQ(g.EdgeEndpoints(EdgeId(207)),
            std::make_pair(NodeId(105), NodeId(103)));
}

TEST_F(Example22, DeltaAndNodesEdgesFunctions) {
  // δ(301) = [105, 207, 103, 202, 102]; nodes(301) and edges(301) are the
  // projections (Section 2).
  const PathBody& body = g.Path(PathId(301));
  EXPECT_EQ(body.nodes,
            (std::vector<NodeId>{NodeId(105), NodeId(103), NodeId(102)}));
  EXPECT_EQ(body.edges, (std::vector<EdgeId>{EdgeId(207), EdgeId(202)}));
  EXPECT_EQ(body.Length(), 2u);
}

TEST_F(Example22, ValidatesAsWellFormedPpg) {
  EXPECT_TRUE(g.Validate().ok());
}

// --- builder -------------------------------------------------------------------

TEST(GraphBuilder, FreshIdsAreDistinct) {
  IdAllocator ids;
  GraphBuilder b("t", &ids);
  const NodeId a = b.AddNode({"A"});
  const NodeId c = b.AddNode({"B"});
  EXPECT_NE(a, c);
}

TEST(GraphBuilder, ReservedIdsDoNotCollide) {
  IdAllocator ids;
  GraphBuilder b("t", &ids);
  b.AddNodeWithId(100, {"X"});
  const NodeId fresh = b.AddNode();
  EXPECT_GT(fresh.value(), 100u);
}

TEST(GraphBuilder, PropsViaInitializerList) {
  IdAllocator ids;
  GraphBuilder b("t", &ids);
  const NodeId n = b.AddNode({"Person"}, {{"name", "Ada"}, {"age", 36}});
  EXPECT_EQ(b.graph().Property(n, "name").single(), Value::String("Ada"));
  EXPECT_EQ(b.graph().Property(n, "age").single(), Value::Int(36));
}

TEST(IdAllocator, TypedCountersIndependent) {
  IdAllocator ids;
  const NodeId n = ids.NextNode();
  const EdgeId e = ids.NextEdge();
  const PathId p = ids.NextPath();
  EXPECT_EQ(n.value(), 1u);
  EXPECT_EQ(e.value(), 1u);
  EXPECT_EQ(p.value(), 1u);
}

}  // namespace
}  // namespace gcore
