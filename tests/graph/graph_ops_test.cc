// Tests for the graph-level set operations of Appendix A.5.
#include "graph/graph_ops.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace gcore {
namespace {

// Two overlapping graphs sharing node/edge identities (as query outputs
// share identities with inputs).
struct Fixture {
  PathPropertyGraph g1;
  PathPropertyGraph g2;

  Fixture() {
    g1.AddNode(NodeId(1));
    g1.AddNode(NodeId(2));
    g1.AddNode(NodeId(3));
    g1.AddLabel(NodeId(1), "A");
    g1.SetProperty(NodeId(1), "k", ValueSet({Value::Int(1), Value::Int(2)}));
    EXPECT_TRUE(g1.AddEdge(EdgeId(10), NodeId(1), NodeId(2)).ok());
    g1.AddLabel(EdgeId(10), "e");
    EXPECT_TRUE(g1.AddEdge(EdgeId(11), NodeId(2), NodeId(3)).ok());
    PathBody body;
    body.nodes = {NodeId(1), NodeId(2), NodeId(3)};
    body.edges = {EdgeId(10), EdgeId(11)};
    EXPECT_TRUE(g1.AddPath(PathId(100), body).ok());
    g1.AddLabel(PathId(100), "p");

    g2.AddNode(NodeId(2));
    g2.AddNode(NodeId(3));
    g2.AddNode(NodeId(4));
    g2.AddLabel(NodeId(2), "B");
    g2.SetProperty(NodeId(2), "k", ValueSet(Value::Int(2)));
    EXPECT_TRUE(g2.AddEdge(EdgeId(11), NodeId(2), NodeId(3)).ok());
    g2.AddLabel(EdgeId(11), "f");
  }
};

TEST(GraphOps, ConsistentWhenSharedStructureAgrees) {
  Fixture f;
  EXPECT_TRUE(Consistent(f.g1, f.g2));
}

TEST(GraphOps, InconsistentWhenSharedEdgeDiffers) {
  Fixture f;
  PathPropertyGraph g3;
  g3.AddNode(NodeId(2));
  g3.AddNode(NodeId(3));
  // Same edge id 11, flipped ρ.
  ASSERT_TRUE(g3.AddEdge(EdgeId(11), NodeId(3), NodeId(2)).ok());
  EXPECT_FALSE(Consistent(f.g1, g3));
  // Union/intersection of inconsistent graphs are the empty PPG.
  EXPECT_TRUE(GraphUnion(f.g1, g3).Empty());
  EXPECT_TRUE(GraphIntersect(f.g1, g3).Empty());
}

TEST(GraphOps, UnionMembersAreSetUnions) {
  Fixture f;
  PathPropertyGraph u = GraphUnion(f.g1, f.g2);
  EXPECT_EQ(u.NumNodes(), 4u);
  EXPECT_EQ(u.NumEdges(), 2u);
  EXPECT_EQ(u.NumPaths(), 1u);
}

TEST(GraphOps, UnionMergesLabelsAndProperties) {
  Fixture f;
  PathPropertyGraph u = GraphUnion(f.g1, f.g2);
  // Node 2 carries labels from both sides; property sets union per key.
  EXPECT_TRUE(u.Labels(NodeId(2)).Contains("B"));
  EXPECT_TRUE(u.Labels(EdgeId(11)).Contains("f"));
  EXPECT_EQ(u.Property(NodeId(1), "k").size(), 2u);
}

TEST(GraphOps, UnionIsCommutativeUpToEquality) {
  Fixture f;
  EXPECT_TRUE(GraphEquals(GraphUnion(f.g1, f.g2), GraphUnion(f.g2, f.g1)));
}

TEST(GraphOps, IntersectKeepsOnlySharedMembers) {
  Fixture f;
  PathPropertyGraph i = GraphIntersect(f.g1, f.g2);
  EXPECT_EQ(i.NumNodes(), 2u);  // 2, 3
  EXPECT_EQ(i.NumEdges(), 1u);  // 11
  EXPECT_EQ(i.NumPaths(), 0u);
  EXPECT_TRUE(i.HasNode(NodeId(2)));
  EXPECT_TRUE(i.HasEdge(EdgeId(11)));
}

TEST(GraphOps, IntersectIntersectsLabelsAndProperties) {
  Fixture f;
  PathPropertyGraph i = GraphIntersect(f.g1, f.g2);
  // Node 2 has no shared labels; edge 11 has {} vs {f} -> {}.
  EXPECT_TRUE(i.Labels(NodeId(2)).empty());
  EXPECT_TRUE(i.Labels(EdgeId(11)).empty());
}

TEST(GraphOps, MinusDropsDanglingEdgesAndPaths) {
  Fixture f;
  // g1 ∖ g2: nodes {1}; edge 10 (1→2) dangles because 2 ∈ g2; path 100
  // references removed members so it is dropped too.
  PathPropertyGraph d = GraphMinus(f.g1, f.g2);
  EXPECT_EQ(d.NumNodes(), 1u);
  EXPECT_TRUE(d.HasNode(NodeId(1)));
  EXPECT_EQ(d.NumEdges(), 0u);
  EXPECT_EQ(d.NumPaths(), 0u);
}

TEST(GraphOps, MinusKeepsSurvivingStructure) {
  PathPropertyGraph a;
  a.AddNode(NodeId(1));
  a.AddNode(NodeId(2));
  ASSERT_TRUE(a.AddEdge(EdgeId(10), NodeId(1), NodeId(2)).ok());
  PathPropertyGraph b;
  b.AddNode(NodeId(99));
  PathPropertyGraph d = GraphMinus(a, b);
  EXPECT_EQ(d.NumNodes(), 2u);
  EXPECT_EQ(d.NumEdges(), 1u);
}

TEST(GraphOps, MinusRestrictsLambdaSigmaFromLeft) {
  Fixture f;
  PathPropertyGraph d = GraphMinus(f.g1, f.g2);
  EXPECT_TRUE(d.Labels(NodeId(1)).Contains("A"));
  EXPECT_EQ(d.Property(NodeId(1), "k").size(), 2u);
}

TEST(GraphOps, UnionWithEmptyIsIdentity) {
  Fixture f;
  PathPropertyGraph empty;
  EXPECT_TRUE(GraphEquals(GraphUnion(f.g1, empty), f.g1));
  EXPECT_TRUE(GraphEquals(GraphUnion(empty, f.g1), f.g1));
}

TEST(GraphOps, IntersectWithSelfIsIdentity) {
  Fixture f;
  EXPECT_TRUE(GraphEquals(GraphIntersect(f.g1, f.g1), f.g1));
}

TEST(GraphOps, MinusSelfIsEmpty) {
  Fixture f;
  EXPECT_TRUE(GraphMinus(f.g1, f.g1).Empty());
}

TEST(GraphOps, GraphEqualsDetectsPropertyDifference) {
  Fixture f;
  PathPropertyGraph copy = f.g1;
  EXPECT_TRUE(GraphEquals(f.g1, copy));
  copy.SetProperty(NodeId(1), "k", ValueSet(Value::Int(9)));
  EXPECT_FALSE(GraphEquals(f.g1, copy));
}

TEST(GraphOps, GraphEqualsDetectsStructuralDifference) {
  Fixture f;
  PathPropertyGraph copy = f.g1;
  copy.AddNode(NodeId(99));
  EXPECT_FALSE(GraphEquals(f.g1, copy));
}

// Algebraic laws as a parameterized sweep over generated graph pairs.
class GraphOpsLaws : public ::testing::TestWithParam<uint64_t> {
 protected:
  static PathPropertyGraph Random(uint64_t seed) {
    PathPropertyGraph g;
    // Small deterministic pseudo-random graph over a shared id universe so
    // instances overlap.
    uint64_t state = seed * 2654435761u + 1;
    auto next = [&]() {
      state ^= state << 13;
      state ^= state >> 7;
      state ^= state << 17;
      return state;
    };
    for (int i = 0; i < 8; ++i) {
      if (next() % 3 != 0) g.AddNode(NodeId(1 + next() % 10));
    }
    for (int i = 0; i < 10; ++i) {
      const NodeId a(1 + next() % 10);
      const NodeId b(1 + next() % 10);
      if (g.HasNode(a) && g.HasNode(b)) {
        // Edge id determined by endpoints => any two instances agree on ρ.
        Status st =
            g.AddEdge(EdgeId(100 + a.value() * 10 + b.value()), a, b);
        (void)st;
      }
    }
    return g;
  }
};

TEST_P(GraphOpsLaws, UnionCommutes) {
  PathPropertyGraph a = Random(GetParam());
  PathPropertyGraph b = Random(GetParam() + 1000);
  EXPECT_TRUE(GraphEquals(GraphUnion(a, b), GraphUnion(b, a)));
}

TEST_P(GraphOpsLaws, IntersectCommutes) {
  PathPropertyGraph a = Random(GetParam());
  PathPropertyGraph b = Random(GetParam() + 1000);
  EXPECT_TRUE(GraphEquals(GraphIntersect(a, b), GraphIntersect(b, a)));
}

TEST_P(GraphOpsLaws, UnionIdempotent) {
  PathPropertyGraph a = Random(GetParam());
  EXPECT_TRUE(GraphEquals(GraphUnion(a, a), a));
}

TEST_P(GraphOpsLaws, IntersectSubsetOfUnion) {
  PathPropertyGraph a = Random(GetParam());
  PathPropertyGraph b = Random(GetParam() + 1000);
  PathPropertyGraph i = GraphIntersect(a, b);
  PathPropertyGraph u = GraphUnion(a, b);
  i.ForEachNode([&](NodeId n) { EXPECT_TRUE(u.HasNode(n)); });
  i.ForEachEdge([&](EdgeId e, NodeId, NodeId) { EXPECT_TRUE(u.HasEdge(e)); });
}

TEST_P(GraphOpsLaws, MinusDisjointFromRight) {
  PathPropertyGraph a = Random(GetParam());
  PathPropertyGraph b = Random(GetParam() + 1000);
  PathPropertyGraph d = GraphMinus(a, b);
  d.ForEachNode([&](NodeId n) { EXPECT_FALSE(b.HasNode(n)); });
  EXPECT_TRUE(d.Validate().ok());  // no dangling structure
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphOpsLaws, ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace gcore
