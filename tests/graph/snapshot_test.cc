// GraphSnapshot tests: the frozen columnar image must agree with the
// PathPropertyGraph it was built from on labels, topology, property
// cells and label spans; stats collected by sweeping the columns must
// match the incremental collector and the PPG walk; the compiled
// SnapshotPred must agree with NodeAdmits/EdgeAdmits; and the catalog
// must cache one snapshot per graph and invalidate it on re-register.
#include "graph/snapshot.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "ast/expr.h"
#include "eval/matcher.h"
#include "graph/catalog.h"
#include "graph/graph_builder.h"
#include "graph/stats.h"
#include "snb/generator.h"

namespace gcore {
namespace {

/// A graph exercising every encoding: multi-labels, parallel edges, a
/// self loop, int/double/string/bool/date/null cells, a multi-valued
/// property, and a key carried by both a node and an edge.
GraphBuilder MakeMixedGraph(IdAllocator* ids) {
  GraphBuilder b("mixed", ids);
  b.EnableStatsCollection();
  const NodeId p0 = b.AddNode({"Person"}, {{"age", int64_t{30}},
                                           {"name", "alice"},
                                           {"score", 2.5}});
  const NodeId p1 = b.AddNode({"Person", "Admin"},
                              {{"age", int64_t{41}},
                               {"name", "bob"},
                               {"active", true},
                               {"since", Value::OfDate({2015, 3, 9})}});
  const NodeId t0 = b.AddNode({"Tag"}, {{"name", "cats"}});
  const NodeId bare = b.AddNode();  // no labels, no properties
  b.AddNodePropertyValue(p0, "employer", Value::String("CWI"));
  b.AddNodePropertyValue(p0, "employer", Value::String("MIT"));
  b.AddNodePropertyValue(t0, "misc", Value::Null());
  const EdgeId k0 = b.AddEdge(p0, p1, "knows", {{"since", int64_t{2010}}});
  b.AddEdge(p0, p1, "knows", {{"since", int64_t{2011}}});  // parallel
  b.AddEdge(p1, t0, "hasInterest");
  b.AddEdge(bare, bare, "");  // self loop, unlabeled
  b.AddEdgePropertyValue(k0, "weight", Value::Double(0.5));
  Status st = b.AddPath({p0, p1}, {k0}).status();
  EXPECT_TRUE(st.ok()) << st.ToString();
  return b;
}

/// Snapshot label set of a node/edge translated back to names.
template <typename Span>
LabelSet NamesOf(const GraphSnapshot& snap, Span ids) {
  std::vector<std::string> names;
  for (uint32_t id : ids) names.push_back(snap.LabelName(id));
  return LabelSet(std::move(names));
}

/// Every label, property cell and edge endpoint of the snapshot must
/// reproduce the PPG exactly; shared differential core for hand-built
/// and generated graphs.
void ExpectSnapshotMatchesGraph(const PathPropertyGraph& g) {
  const GraphSnapshot snap(g);
  const AdjacencyIndex& adj = snap.adjacency();
  ASSERT_EQ(snap.num_nodes(), g.NodeIds().size());
  ASSERT_EQ(snap.num_edges(), g.EdgeIds().size());

  g.ForEachNode([&](NodeId id) {
    const DenseNodeIndex n = adj.IndexOf(id);
    EXPECT_EQ(NamesOf(snap, snap.NodeLabelIds(n)), g.Labels(id));
    for (const std::string& label : g.Labels(id)) {
      const uint32_t lid = snap.LabelId(label);
      ASSERT_NE(lid, GraphSnapshot::kNoLabel) << label;
      EXPECT_TRUE(snap.NodeHasLabel(n, lid));
      const auto span = snap.NodesWithLabel(lid);
      EXPECT_TRUE(std::binary_search(span.begin(), span.end(), n)) << label;
    }
    for (const auto& [key, values] : g.Properties(id).entries()) {
      const auto* col = snap.NodeColumn(key);
      ASSERT_NE(col, nullptr) << key;
      EXPECT_EQ(snap.CellValues(*col, n), values) << key;
      for (const Value& v : values) {
        EXPECT_TRUE(snap.CellContains(*col, n, v)) << key;
      }
    }
  });

  g.ForEachEdge([&](EdgeId id, NodeId src, NodeId dst) {
    const DenseEdgeIndex e = snap.FindEdge(id);
    ASSERT_NE(e, GraphSnapshot::kNoEdge);
    EXPECT_EQ(snap.EdgeIndexOf(id), e);
    EXPECT_EQ(snap.EdgeIdOf(e), id);
    EXPECT_EQ(adj.IdOf(snap.EdgeSrc(e)), src);
    EXPECT_EQ(adj.IdOf(snap.EdgeDst(e)), dst);
    EXPECT_EQ(NamesOf(snap, snap.EdgeLabelIds(e)), g.Labels(id));
    for (const std::string& label : g.Labels(id)) {
      const uint32_t lid = snap.LabelId(label);
      ASSERT_NE(lid, GraphSnapshot::kNoLabel) << label;
      EXPECT_TRUE(snap.EdgeHasLabel(e, lid));
      const auto span = snap.EdgesWithLabel(lid);
      EXPECT_TRUE(std::binary_search(span.begin(), span.end(), e)) << label;
    }
    for (const auto& [key, values] : g.Properties(id).entries()) {
      const auto* col = snap.EdgeColumn(key);
      ASSERT_NE(col, nullptr) << key;
      EXPECT_EQ(snap.CellValues(*col, e), values) << key;
    }
  });

  // Per-label spans cover exactly the carriers (no phantom members).
  for (uint32_t lid = 0; lid < snap.num_labels(); ++lid) {
    size_t carriers = 0;
    g.ForEachNode([&](NodeId id) {
      if (g.Labels(id).Contains(snap.LabelName(lid))) ++carriers;
    });
    EXPECT_EQ(snap.NodesWithLabel(lid).size(), carriers)
        << snap.LabelName(lid);
  }
}

TEST(GraphSnapshot, MirrorsMixedGraph) {
  IdAllocator ids;
  GraphBuilder b = MakeMixedGraph(&ids);
  ExpectSnapshotMatchesGraph(b.graph());
}

TEST(GraphSnapshot, MirrorsGeneratedSnbGraph) {
  IdAllocator ids;
  snb::GeneratorOptions opts;
  opts.num_persons = 200;
  ExpectSnapshotMatchesGraph(snb::Generate(opts, &ids));
}

TEST(GraphSnapshot, TypedCellEncodings) {
  IdAllocator ids;
  GraphBuilder b = MakeMixedGraph(&ids);
  const GraphSnapshot snap(b.graph());
  const AdjacencyIndex& adj = snap.adjacency();
  using PropKind = GraphSnapshot::PropKind;

  const auto* age = snap.NodeColumn("age");
  ASSERT_NE(age, nullptr);
  EXPECT_EQ(age->size(), snap.num_nodes());
  EXPECT_EQ(age->num_carriers(), 2u);
  const uint32_t p0 = adj.IndexOf(b.graph().NodeIds()[0]);
  EXPECT_EQ(age->KindAt(p0), PropKind::kInt);
  EXPECT_EQ(age->IntAt(p0), 30);

  const auto* name = snap.NodeColumn("name");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->KindAt(p0), PropKind::kString);
  EXPECT_EQ(snap.StringAt(name->StringIdAt(p0)), "alice");
  // Interned literals resolve to the same pool id a cell stores.
  EXPECT_EQ(snap.InternedString("alice"), name->StringIdAt(p0));
  EXPECT_EQ(snap.InternedString("nobody"), GraphSnapshot::kNoString);

  EXPECT_EQ(snap.NodeColumn("score")->KindAt(p0), PropKind::kDouble);
  EXPECT_EQ(snap.NodeColumn("score")->DoubleAt(p0), 2.5);

  const uint32_t p1 = adj.IndexOf(b.graph().NodeIds()[1]);
  EXPECT_EQ(snap.NodeColumn("active")->KindAt(p1), PropKind::kBool);
  EXPECT_TRUE(snap.NodeColumn("active")->BoolAt(p1));
  EXPECT_EQ(snap.NodeColumn("since")->KindAt(p1), PropKind::kDate);
  EXPECT_EQ(snap.NodeColumn("since")->DateDaysAt(p1),
            Date({2015, 3, 9}).ToEpochDays());

  // Multi-valued cells go out of line; null singletons stay inline.
  const auto* employer = snap.NodeColumn("employer");
  ASSERT_NE(employer, nullptr);
  EXPECT_EQ(employer->KindAt(p0), PropKind::kOverflow);
  EXPECT_EQ(employer->OverflowAt(p0).size(), 2u);
  const uint32_t t0 = adj.IndexOf(b.graph().NodeIds()[2]);
  EXPECT_EQ(snap.NodeColumn("misc")->KindAt(t0), PropKind::kNull);

  // Non-carriers are absent; an unknown key has no column at all.
  EXPECT_EQ(age->KindAt(t0), PropKind::kAbsent);
  EXPECT_TRUE(age->AbsentAt(t0));
  EXPECT_EQ(snap.NodeColumn("nope"), nullptr);
  EXPECT_EQ(snap.EdgeColumn("age"), nullptr);  // node-only key
}

TEST(GraphSnapshot, CellSemanticsMatchValueComparisons) {
  IdAllocator ids;
  GraphBuilder b = MakeMixedGraph(&ids);
  const GraphSnapshot snap(b.graph());
  const auto* age = snap.NodeColumn("age");
  const uint32_t p0 = snap.adjacency().IndexOf(b.graph().NodeIds()[0]);

  // Int cell vs double literal: numeric equality crosses types.
  EXPECT_TRUE(snap.CellEqualsSingleton(*age, p0, Value::Double(30.0)));
  EXPECT_TRUE(snap.CellContains(*age, p0, Value::Int(30)));
  EXPECT_FALSE(snap.CellContains(*age, p0, Value::Int(31)));
  bool ok = false;
  EXPECT_LT(snap.CompareCellSingleton(*age, p0, Value::Int(40), &ok), 0);
  EXPECT_TRUE(ok);
  // Cross-type rank: int sorts before string (Value::Compare ranks).
  EXPECT_LT(snap.CompareCellSingleton(*age, p0, Value::String("x"), &ok), 0);
  EXPECT_TRUE(ok);

  // A multi-valued cell is not a singleton: Contains works per element,
  // ordered comparison reports failure.
  const auto* employer = snap.NodeColumn("employer");
  EXPECT_TRUE(snap.CellContains(*employer, p0, Value::String("MIT")));
  EXPECT_FALSE(snap.CellEqualsSingleton(*employer, p0, Value::String("MIT")));
  snap.CompareCellSingleton(*employer, p0, Value::String("MIT"), &ok);
  EXPECT_FALSE(ok);

  // Absent cells contain nothing and compare as failure.
  const uint32_t t0 = snap.adjacency().IndexOf(b.graph().NodeIds()[2]);
  EXPECT_FALSE(snap.CellContains(*age, t0, Value::Int(30)));
  snap.CompareCellSingleton(*age, t0, Value::Int(30), &ok);
  EXPECT_FALSE(ok);
}

TEST(GraphSnapshot, StatsFromColumnsMatchAllCollectionPaths) {
  IdAllocator ids;
  GraphBuilder b = MakeMixedGraph(&ids);
  const GraphSnapshot snap(b.graph());
  const GraphStats from_columns = GraphStats::CollectFromSnapshot(snap);
  EXPECT_EQ(from_columns, GraphStats::Collect(b.graph()));
  EXPECT_EQ(from_columns, b.Stats());
}

TEST(GraphSnapshot, StatsFromColumnsMatchOnGeneratedGraph) {
  IdAllocator ids;
  snb::GeneratorOptions opts;
  opts.num_persons = 150;
  const PathPropertyGraph g = snb::Generate(opts, &ids);
  const GraphSnapshot snap(g);
  EXPECT_EQ(GraphStats::CollectFromSnapshot(snap), GraphStats::Collect(g));
}

TEST(GraphSnapshot, PredicateAgreesWithAdmissionChecks) {
  GraphCatalog catalog;
  GraphBuilder b = MakeMixedGraph(catalog.ids());
  const PathPropertyGraph* g = nullptr;
  {
    catalog.RegisterGraph("mixed", b.Build());
    catalog.SetDefaultGraph("mixed");
    auto looked = catalog.Lookup("mixed");
    ASSERT_TRUE(looked.ok());
    g = *looked;
  }
  MatcherContext ctx;
  ctx.catalog = &catalog;
  ctx.default_graph = "mixed";
  Matcher rt(ctx);
  const GraphSnapshot& snap = rt.Snapshot(*g);

  auto filter = [](const std::string& key, Value v) {
    PropPattern p;
    p.mode = PropPattern::Mode::kFilter;
    p.key = key;
    p.value = std::make_unique<Expr>();
    p.value->kind = Expr::Kind::kLiteral;
    p.value->value = std::move(v);
    return p;
  };

  // Label disjunction + literal property filter, including an unknown
  // label (dropped from its group) and a never-true unknown key.
  std::vector<NodePattern> patterns(4);
  patterns[0].label_groups = {{"Person"}};
  patterns[1].label_groups = {{"Tag", "Admin"}, {"Person"}};
  patterns[2].label_groups = {{"Ghost", "Person"}};
  patterns[2].props.push_back(filter("age", Value::Int(41)));
  patterns[3].props.push_back(filter("nope", Value::Int(1)));
  for (const NodePattern& pattern : patterns) {
    const SnapshotPred pred = SnapshotPred::ForNode(snap, pattern);
    g->ForEachNode([&](NodeId id) {
      auto admits = rt.NodeAdmits(pattern, id, *g);
      ASSERT_TRUE(admits.ok());
      EXPECT_EQ(pred.Admits(snap.adjacency().IndexOf(id)), *admits)
          << "node " << id.value();
    });
  }

  EdgePattern ep;
  ep.label_groups = {{"knows", "hasInterest"}};
  ep.props.push_back(filter("since", Value::Int(2010)));
  const SnapshotPred epred = SnapshotPred::ForEdge(snap, ep);
  g->ForEachEdge([&](EdgeId id, NodeId, NodeId) {
    EXPECT_EQ(epred.Admits(snap.EdgeIndexOf(id)), rt.EdgeAdmits(ep, id, *g))
        << "edge " << id.value();
  });
}

TEST(GraphSnapshot, CatalogCachesAndInvalidatesWithStats) {
  GraphCatalog catalog;
  GraphBuilder b = MakeMixedGraph(catalog.ids());
  catalog.RegisterGraph("mixed", b.Build());

  auto first = catalog.Snapshot("mixed");
  ASSERT_TRUE(first.ok());
  auto again = catalog.Snapshot("mixed");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(first->get(), again->get());  // cached, not rebuilt

  // Stats derive from the cached snapshot's columns.
  auto stats = catalog.Stats("mixed");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(**stats, GraphStats::CollectFromSnapshot(**first));

  // Re-registering drops the cached snapshot along with the stats.
  GraphBuilder rebuilt = MakeMixedGraph(catalog.ids());
  catalog.RegisterGraph("mixed", rebuilt.Build());
  auto fresh = catalog.Snapshot("mixed");
  ASSERT_TRUE(fresh.ok());
  EXPECT_NE(first->get(), fresh->get());

  EXPECT_FALSE(catalog.Snapshot("nope").ok());
}

TEST(GraphSnapshot, LabelSpansOnOutOfRangeIdsAreEmpty) {
  IdAllocator ids;
  GraphBuilder b = MakeMixedGraph(&ids);
  const GraphSnapshot snap(b.graph());

  // kNoLabel is the documented LabelId miss sentinel; passing it (or any
  // out-of-range id) to the span accessors must yield an empty span, not
  // an out-of-bounds offset read.
  EXPECT_EQ(snap.LabelId("nope"), GraphSnapshot::kNoLabel);
  EXPECT_TRUE(snap.NodesWithLabel(GraphSnapshot::kNoLabel).empty());
  EXPECT_TRUE(snap.EdgesWithLabel(GraphSnapshot::kNoLabel).empty());
  EXPECT_TRUE(
      snap.NodesWithLabel(static_cast<uint32_t>(snap.num_labels())).empty());
  EXPECT_TRUE(
      snap.EdgesWithLabel(static_cast<uint32_t>(snap.num_labels())).empty());
}

/// Differential pin of satellite semantics: for every (cell, literal)
/// pair, CompareCellSingleton must order exactly as Value::Compare over
/// the materialized cell — including Date literals that are not calendar
/// dates, where epoch days alias distinct field triples.
TEST(GraphSnapshot, DateCellComparisonsMatchValueCompare) {
  // 2015-02-37 is not a calendar date; arithmetically it lands on the
  // same epoch day as 2015-03-09. The two literals must still be
  // distinguishable — distinct dates comparing equal would merge them in
  // ValueSets and admit wrong filter matches.
  const Date valid{2015, 3, 9};
  const Date aliasing{2015, 2, 37};
  ASSERT_FALSE(aliasing.IsValid());
  ASSERT_EQ(valid.ToEpochDays(), aliasing.ToEpochDays());
  EXPECT_NE(Value::OfDate(valid).Compare(Value::OfDate(aliasing)), 0);
  EXPECT_EQ(Value::OfDate(aliasing).Compare(Value::OfDate(aliasing)), 0);
  // The tie-break keeps the field-wise order: month 2 < month 3.
  EXPECT_LT(Value::OfDate(aliasing).Compare(Value::OfDate(valid)), 0);

  IdAllocator ids;
  GraphBuilder b = MakeMixedGraph(&ids);
  const GraphSnapshot snap(b.graph());
  const auto* since = snap.NodeColumn("since");
  ASSERT_NE(since, nullptr);
  const uint32_t p1 = snap.adjacency().IndexOf(b.graph().NodeIds()[1]);
  ASSERT_EQ(since->KindAt(p1), GraphSnapshot::PropKind::kDate);  // {2015,3,9}
  const Value cell = snap.CellValues(*since, p1).single();

  const Value literals[] = {
      Value::OfDate(valid),          Value::OfDate(aliasing),
      Value::OfDate({2015, 3, 8}),   Value::OfDate({2015, 2, 38}),
      Value::OfDate({2014, 14, 9}),  // month overflow aliasing 2015-02-09
      Value::OfDate({2015, 3, 10}),  Value::OfDate({2016, 1, 1}),
  };
  for (const Value& lit : literals) {
    bool ok = false;
    const int got = snap.CompareCellSingleton(*since, p1, lit, &ok);
    ASSERT_TRUE(ok) << lit.ToString();
    EXPECT_EQ(got, cell.Compare(lit)) << lit.ToString();
    EXPECT_EQ(snap.CellEqualsSingleton(*since, p1, lit),
              cell.Compare(lit) == 0)
        << lit.ToString();
    EXPECT_EQ(snap.CellContains(*since, p1, lit), cell.Compare(lit) == 0)
        << lit.ToString();
  }
  // The aliasing literal ties on epoch days but must not equal the cell.
  EXPECT_FALSE(snap.CellEqualsSingleton(*since, p1, Value::OfDate(aliasing)));

  // A non-calendar date stored as a cell goes out of line (epoch days
  // cannot represent it); comparisons against it run through the exact
  // Value path and observe the same total order.
  GraphBuilder b2("invalid-dates", &ids);
  const NodeId n = b2.AddNode({"X"}, {{"d", Value::OfDate(aliasing)}});
  const GraphSnapshot snap2(b2.graph());
  const auto* d = snap2.NodeColumn("d");
  ASSERT_NE(d, nullptr);
  const uint32_t nx = snap2.adjacency().IndexOf(n);
  ASSERT_EQ(d->KindAt(nx), GraphSnapshot::PropKind::kOverflow);
  bool ok = false;
  EXPECT_EQ(snap2.CompareCellSingleton(*d, nx, Value::OfDate(valid), &ok),
            Value::OfDate(aliasing).Compare(Value::OfDate(valid)));
  EXPECT_TRUE(ok);
  EXPECT_TRUE(snap2.CellEqualsSingleton(*d, nx, Value::OfDate(aliasing)));
  EXPECT_FALSE(snap2.CellEqualsSingleton(*d, nx, Value::OfDate(valid)));
}

}  // namespace
}  // namespace gcore
