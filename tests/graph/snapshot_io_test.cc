// Snapshot persistence tests: the saved arena must round-trip through
// both loaders (read-back and mmap) bit-exactly, reconstruct the full
// PPG it was frozen from, survive the degenerate shapes the writer can
// meet, reject corrupt files, and — end to end — serve byte-identical
// query results through GraphCatalog::RegisterSnapshotFile.
#include "graph/snapshot_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "graph/catalog.h"
#include "graph/graph_builder.h"
#include "snb/toy_graphs.h"

namespace gcore {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/gcore_" + name + ".snap";
}

/// Exercises every cell encoding the arena writer has: multi-labels,
/// parallel edges, a self-loop, all inline kinds, a non-calendar date
/// (overflow singleton), multi-valued sets, interned-string sharing
/// across node and edge columns, and a labeled stored path with
/// properties.
PathPropertyGraph MakeRichGraph(IdAllocator* ids) {
  GraphBuilder b("rich", ids);
  const NodeId p0 = b.AddNode({"Person"}, {{"age", int64_t{30}},
                                           {"name", "alice"},
                                           {"score", 2.5},
                                           {"shared", "both"}});
  const NodeId p1 = b.AddNode({"Person", "Admin"},
                              {{"age", int64_t{41}},
                               {"active", true},
                               {"since", Value::OfDate({2015, 3, 9})}});
  const NodeId t0 = b.AddNode({"Tag"}, {{"misc", Value::Null()}});
  const NodeId bare = b.AddNode();
  // Non-calendar date: epoch days cannot encode it, so it must travel
  // out of line and come back field-exact.
  b.AddNodePropertyValue(p1, "odd", Value::OfDate({2015, 2, 37}));
  b.AddNodePropertyValue(p0, "employer", Value::String("CWI"));
  b.AddNodePropertyValue(p0, "employer", Value::String("MIT"));
  const EdgeId k0 = b.AddEdge(p0, p1, "knows", {{"since", int64_t{2010}},
                                                {"shared", "both"}});
  b.AddEdge(p0, p1, "knows", {{"since", int64_t{2011}}});
  b.AddEdge(p1, t0, "hasInterest");
  b.AddEdge(bare, bare, "");
  b.AddEdgePropertyValue(k0, "weight", Value::Double(0.5));
  auto path = b.AddPath({p0, p1}, {k0}, {"toAdmin"}, {{"trust", 0.95}});
  EXPECT_TRUE(path.ok()) << path.status().ToString();
  return b.Build();
}

bool SameBytes(const ArenaBuffer& a, const ArenaBuffer& b) {
  return a.size() == b.size() &&
         (a.size() == 0 || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

/// Shared round-trip core: save, load both ways, and pin that every
/// loaded image is byte-identical to the frozen one and reconstructs the
/// source PPG exactly.
void ExpectRoundTrips(const PathPropertyGraph& g, const std::string& tag) {
  const GraphSnapshot frozen(g);
  const std::string path = TempPath(tag);
  ASSERT_TRUE(SaveSnapshot(frozen, path).ok());

  auto loaded = LoadSnapshotFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(SameBytes((*loaded)->arena(), frozen.arena()));
  EXPECT_FALSE((*loaded)->has_graph());  // no PPG until BindGraph

  auto mapped = MmapSnapshotFile(path, /*verify_checksum=*/true);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE(SameBytes((*mapped)->arena(), frozen.arena()));

  for (const auto& snap : {*loaded, *mapped}) {
    EXPECT_EQ(snap->num_nodes(), g.NumNodes());
    EXPECT_EQ(snap->num_edges(), g.NumEdges());
    EXPECT_EQ(snap->num_paths(), g.NumPaths());
    // Exact inverse: the reconstruction renders identically to the
    // source, and freezing it again packs the identical arena.
    const PathPropertyGraph back = snap->ReconstructGraph(g.name());
    EXPECT_EQ(back.ToString(), g.ToString());
    EXPECT_TRUE(SameBytes(GraphSnapshot(back).arena(), frozen.arena()));
  }
  std::remove(path.c_str());
}

TEST(SnapshotIo, RoundTripsRichGraph) {
  IdAllocator ids;
  ExpectRoundTrips(MakeRichGraph(&ids), "rich");
}

TEST(SnapshotIo, RoundTripsToyGraphsWithStoredPaths) {
  IdAllocator ids;
  // example_graph carries the labeled + propertied stored path 301.
  ExpectRoundTrips(snb::MakeExampleGraph(&ids), "example");
  ExpectRoundTrips(snb::MakeSocialGraph(&ids), "social");
}

TEST(SnapshotIo, RoundTripsDegenerateShapes) {
  ExpectRoundTrips(PathPropertyGraph("empty"), "empty");
  {
    IdAllocator ids;
    GraphBuilder b("zero-label", &ids);
    const NodeId a = b.AddNode({}, {{"k", int64_t{1}}});
    const NodeId c = b.AddNode();
    b.AddEdge(a, c, "");  // the empty label still interns
    ExpectRoundTrips(b.Build(), "zero_label");
  }
  {
    IdAllocator ids;
    GraphBuilder b("zero-edge", &ids);
    b.AddNode({"Only"}, {{"k", "v"}});
    b.AddNode({"Only"});
    ExpectRoundTrips(b.Build(), "zero_edge");
  }
}

TEST(SnapshotIo, LoadedCellsMatchSourceValues) {
  IdAllocator ids;
  const PathPropertyGraph g = MakeRichGraph(&ids);
  const std::string path = TempPath("cells");
  ASSERT_TRUE(SaveSnapshot(GraphSnapshot(g), path).ok());
  auto loaded = LoadSnapshotFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const GraphSnapshot& snap = **loaded;
  std::remove(path.c_str());

  // Every σ cell of every object survives the encode→file→decode chain.
  g.ForEachNode([&](NodeId id) {
    const DenseNodeIndex n = snap.adjacency().IndexOf(id);
    for (const auto& [key, values] : g.Properties(id).entries()) {
      const auto* col = snap.NodeColumn(key);
      ASSERT_NE(col, nullptr) << key;
      EXPECT_EQ(snap.CellValues(*col, n), values) << key;
    }
  });
  g.ForEachEdge([&](EdgeId id, NodeId, NodeId) {
    const DenseEdgeIndex e = snap.FindEdge(id);
    ASSERT_NE(e, GraphSnapshot::kNoEdge);
    for (const auto& [key, values] : g.Properties(id).entries()) {
      const auto* col = snap.EdgeColumn(key);
      ASSERT_NE(col, nullptr) << key;
      EXPECT_EQ(snap.CellValues(*col, e), values) << key;
    }
  });

  // Interned-string dedup survives: the value shared by a node column
  // and an edge column resolves to one pool id on the loaded image.
  const uint32_t shared = snap.InternedString("both");
  ASSERT_NE(shared, GraphSnapshot::kNoString);
  const auto* ncol = snap.NodeColumn("shared");
  const auto* ecol = snap.EdgeColumn("shared");
  ASSERT_NE(ncol, nullptr);
  ASSERT_NE(ecol, nullptr);
  bool found_node = false, found_edge = false;
  for (size_t i = 0; i < ncol->size(); ++i) {
    if (ncol->KindAt(i) == GraphSnapshot::PropKind::kString) {
      EXPECT_EQ(ncol->StringIdAt(i), shared);
      found_node = true;
    }
  }
  for (size_t i = 0; i < ecol->size(); ++i) {
    if (ecol->KindAt(i) == GraphSnapshot::PropKind::kString) {
      EXPECT_EQ(ecol->StringIdAt(i), shared);
      found_edge = true;
    }
  }
  EXPECT_TRUE(found_node);
  EXPECT_TRUE(found_edge);
}

TEST(SnapshotIo, RejectsCorruptFiles) {
  IdAllocator ids;
  const PathPropertyGraph g = MakeRichGraph(&ids);
  const std::string path = TempPath("corrupt");
  ASSERT_TRUE(SaveSnapshot(GraphSnapshot(g), path).ok());

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  auto write = [&](const std::string& contents) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
  };

  // Truncated header.
  write(bytes.substr(0, 16));
  EXPECT_FALSE(LoadSnapshotFile(path).ok());
  EXPECT_FALSE(MmapSnapshotFile(path).ok());

  // Truncated payload.
  write(bytes.substr(0, bytes.size() - 9));
  EXPECT_FALSE(LoadSnapshotFile(path).ok());
  EXPECT_FALSE(MmapSnapshotFile(path).ok());

  // Bad magic.
  {
    std::string flipped = bytes;
    flipped[0] = static_cast<char>(flipped[0] ^ 0xff);
    write(flipped);
    EXPECT_FALSE(LoadSnapshotFile(path).ok());
    EXPECT_FALSE(MmapSnapshotFile(path).ok());
  }

  // A flipped payload byte fails the read loader's checksum, and the
  // mmap loader's when verification is requested.
  {
    std::string flipped = bytes;
    flipped[flipped.size() - 1] =
        static_cast<char>(flipped[flipped.size() - 1] ^ 0xff);
    write(flipped);
    const auto r = LoadSnapshotFile(path);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("checksum"), std::string::npos);
    EXPECT_FALSE(MmapSnapshotFile(path, /*verify_checksum=*/true).ok());
  }

  // An unknown format version is rejected outright (no migration).
  {
    std::string future = bytes;
    future[8] = static_cast<char>(0x7f);  // version field, little-endian
    write(future);
    const auto r = LoadSnapshotFile(path);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("version"), std::string::npos);
  }

  EXPECT_FALSE(LoadSnapshotFile(TempPath("missing")).ok());
  std::remove(path.c_str());
}

/// The acceptance differential: a freshly frozen catalog and one serving
/// a file-loaded snapshot must answer the full query mix byte-identically
/// — point lookup, expand, and the CONSTRUCT path query that reads the
/// reconstructed PPG through the evaluation tail.
TEST(SnapshotIo, CatalogServesLoadedSnapshotByteIdentically) {
  const char* const kMix[] = {
      "SELECT n.firstName AS name MATCH (n:Person) "
      "WHERE n.employer = 'Acme'",
      "SELECT n.firstName AS src, m.firstName AS dst "
      "MATCH (n:Person)-[:knows]->(m:Person)",
      "CONSTRUCT (n) MATCH (n:Person)-/<:knows*>/->(m:Person) "
      "WHERE m.firstName = 'Frank'",
  };

  GraphCatalog fresh;
  snb::RegisterToyData(&fresh);
  QueryEngine fresh_engine(&fresh);
  std::vector<std::string> expected;
  for (const char* q : kMix) {
    auto r = fresh_engine.Execute(q);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    expected.push_back(r->ToString());
  }

  auto snap = fresh.Snapshot("social_graph");
  ASSERT_TRUE(snap.ok());
  const std::string path = TempPath("social");
  ASSERT_TRUE(SaveSnapshot(**snap, path).ok());

  for (const bool use_mmap : {false, true}) {
    GraphCatalog served;
    ASSERT_TRUE(
        served.RegisterSnapshotFile("social_graph", path, use_mmap).ok());
    served.SetDefaultGraph("social_graph");
    EXPECT_GT(served.GraphVersion("social_graph"), 0u);

    // The loaded image pre-seeds the snapshot cache: the first read-path
    // request must hand back an attached snapshot without freezing.
    auto cached = served.Snapshot("social_graph");
    ASSERT_TRUE(cached.ok());
    EXPECT_TRUE((*cached)->has_graph());
    EXPECT_EQ((*cached)->num_nodes(), (*snap)->num_nodes());

    // Loaded ids are reserved: fresh allocations never collide.
    auto graph = served.LookupShared("social_graph");
    ASSERT_TRUE(graph.ok());
    const NodeId fresh_id = served.ids()->NextNode();
    EXPECT_FALSE((*graph)->HasNode(fresh_id));

    QueryEngine engine(&served);
    for (size_t q = 0; q < expected.size(); ++q) {
      auto r = engine.Execute(kMix[q]);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_EQ(r->ToString(), expected[q]) << "use_mmap=" << use_mmap;
    }

    // Re-registering from file again bumps the version (epoch machinery
    // treats it like any registration).
    const uint64_t v = served.GraphVersion("social_graph");
    ASSERT_TRUE(
        served.RegisterSnapshotFile("social_graph", path, use_mmap).ok());
    EXPECT_GT(served.GraphVersion("social_graph"), v);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gcore
