// GraphStats tests: the incremental StatsCollector (GraphBuilder) must
// match a full Collect() scan exactly, and the derived quantities the
// estimator reads (distinct counts, numeric ranges, average degrees)
// must be correct on a known graph.
#include "graph/stats.h"

#include <gtest/gtest.h>

#include "graph/catalog.h"
#include "graph/graph_builder.h"

namespace gcore {
namespace {

/// 4 :A nodes (k = 0,1,0,1; v = 10,20,30,40), 2 :B nodes (one also :C),
/// edges: every A --:link--> B0 (4), B0 --:hop--> each A (4, with a
/// weight prop), one unlabeled edge B1 -> B0, one stored path.
GraphBuilder MakeKnownGraph(IdAllocator* ids) {
  GraphBuilder b("g", ids);
  b.EnableStatsCollection();
  std::vector<NodeId> as;
  for (int i = 0; i < 4; ++i) {
    as.push_back(b.AddNode({"A"}, {{"k", int64_t{i % 2}},
                                   {"v", int64_t{10 * (i + 1)}}}));
  }
  const NodeId b0 = b.AddNode({"B"});
  const NodeId b1 = b.AddNode({"B", "C"});
  std::vector<EdgeId> links;
  for (const NodeId a : as) links.push_back(b.AddEdge(a, b0, "link"));
  for (const NodeId a : as) b.AddEdge(b0, a, "hop", {{"weight", 1.5}});
  b.AddEdge(b1, b0, "");
  Status st = b.AddPath({as[0], b0}, {links[0]}).status();
  EXPECT_TRUE(st.ok()) << st.ToString();
  return b;
}

TEST(GraphStatsTest, IncrementalCollectorMatchesFullScan) {
  IdAllocator ids;
  GraphBuilder builder = MakeKnownGraph(&ids);
  const GraphStats incremental = builder.Stats();
  const GraphStats scanned = GraphStats::Collect(builder.graph());
  EXPECT_EQ(incremental, scanned);
}

TEST(GraphStatsTest, StatsWithoutOptInFallsBackToFullScan) {
  IdAllocator ids;
  GraphBuilder b("plain", &ids);  // no EnableStatsCollection()
  const NodeId x = b.AddNode({"X"}, {{"p", int64_t{7}}});
  b.AddEdge(x, b.AddNode({"Y"}), "e");
  const GraphStats stats = b.Stats();
  EXPECT_EQ(stats, GraphStats::Collect(b.graph()));
  EXPECT_EQ(stats.num_nodes, 2u);
  EXPECT_EQ(stats.node_props.at("p").distinct, 1u);
}

TEST(GraphStatsTest, CountsAndLabelHistograms) {
  IdAllocator ids;
  GraphBuilder builder = MakeKnownGraph(&ids);
  const GraphStats stats = builder.Stats();
  EXPECT_EQ(stats.num_nodes, 6u);
  EXPECT_EQ(stats.num_edges, 9u);
  EXPECT_EQ(stats.num_paths, 1u);
  EXPECT_EQ(stats.NodesWithLabel("A"), 4u);
  EXPECT_EQ(stats.NodesWithLabel("B"), 2u);
  EXPECT_EQ(stats.NodesWithLabel("C"), 1u);
  EXPECT_EQ(stats.NodesWithLabel("Z"), 0u);
  EXPECT_EQ(stats.EdgesWithLabel("link"), 4u);
  EXPECT_EQ(stats.EdgesWithLabel("hop"), 4u);
}

TEST(GraphStatsTest, PropertyDistributions) {
  IdAllocator ids;
  GraphBuilder builder = MakeKnownGraph(&ids);
  const GraphStats stats = builder.Stats();

  const PropertyStats& k = stats.node_props.at("k");
  EXPECT_EQ(k.count, 4u);
  EXPECT_EQ(k.distinct, 2u);
  EXPECT_TRUE(k.has_range);
  EXPECT_EQ(k.min, 0.0);
  EXPECT_EQ(k.max, 1.0);

  const PropertyStats& v = stats.node_props.at("v");
  EXPECT_EQ(v.count, 4u);
  EXPECT_EQ(v.distinct, 4u);
  EXPECT_EQ(v.min, 10.0);
  EXPECT_EQ(v.max, 40.0);

  const PropertyStats& weight = stats.edge_props.at("weight");
  EXPECT_EQ(weight.count, 4u);
  EXPECT_EQ(weight.distinct, 1u);
  EXPECT_EQ(weight.min, 1.5);
  EXPECT_EQ(weight.max, 1.5);
}

TEST(GraphStatsTest, MultiValuedPropertyCountsObjectsOnce) {
  IdAllocator ids;
  GraphBuilder b("mv", &ids);
  b.EnableStatsCollection();
  const NodeId n = b.AddNode({"P"}, {{"employer", "CWI"}});
  b.AddNodePropertyValue(n, "employer", Value::String("MIT"));
  b.AddNodePropertyValue(n, "employer", Value::String("MIT"));  // dup value
  const NodeId m = b.AddNode({"P"}, {{"employer", "Acme"}});
  const EdgeId e = b.AddEdge(n, m, "rated", {{"score", int64_t{3}}});
  b.AddEdgePropertyValue(e, "score", Value::Int(5));
  const GraphStats stats = b.Stats();
  const PropertyStats& employer = stats.node_props.at("employer");
  EXPECT_EQ(employer.count, 2u);     // two carrying objects
  EXPECT_EQ(employer.distinct, 3u);  // CWI, MIT, Acme
  EXPECT_FALSE(employer.has_range);  // strings carry no numeric range
  const PropertyStats& score = stats.edge_props.at("score");
  EXPECT_EQ(score.count, 1u);
  EXPECT_EQ(score.distinct, 2u);  // {3, 5} on one edge
  EXPECT_EQ(score.min, 3.0);
  EXPECT_EQ(score.max, 5.0);
  EXPECT_EQ(stats, GraphStats::Collect(b.graph()));
}

TEST(GraphStatsTest, AverageDegrees) {
  IdAllocator ids;
  GraphBuilder builder = MakeKnownGraph(&ids);
  const GraphStats stats = builder.Stats();
  // Every A has exactly one :link out-edge; B0 has four :hop out-edges
  // over two B nodes.
  EXPECT_DOUBLE_EQ(stats.AvgOutDegree("A", "link"), 1.0);
  EXPECT_DOUBLE_EQ(stats.AvgOutDegree("B", "hop"), 2.0);
  EXPECT_DOUBLE_EQ(stats.AvgOutDegree("A", "hop"), 0.0);
  // In-degrees key on the target: all 4 :link edges land on one of 2 Bs;
  // each A receives one :hop.
  EXPECT_DOUBLE_EQ(stats.AvgInDegree("B", "link"), 2.0);
  EXPECT_DOUBLE_EQ(stats.AvgInDegree("A", "hop"), 1.0);
  // "" buckets: any edge label / any endpoint label.
  EXPECT_DOUBLE_EQ(stats.AvgOutDegree("", ""), 9.0 / 6.0);
  EXPECT_DOUBLE_EQ(stats.AvgOutDegree("A", ""), 1.0);
  EXPECT_DOUBLE_EQ(stats.AvgOutDegree("B", ""), 5.0 / 2.0);
  // Unknown labels degrade to zero.
  EXPECT_DOUBLE_EQ(stats.AvgOutDegree("Z", "link"), 0.0);
  EXPECT_DOUBLE_EQ(stats.AvgOutDegree("A", "zzz"), 0.0);
}

TEST(GraphStatsTest, MaxDegrees) {
  IdAllocator ids;
  GraphBuilder builder = MakeKnownGraph(&ids);
  const GraphStats stats = builder.Stats();
  // Each A has exactly one :link out-edge; B0 alone holds all four :hop
  // out-edges (the bucket's maximum, vs the 2.0 average over both Bs).
  EXPECT_EQ(stats.MaxOutDegree("A", "link"), 1u);
  EXPECT_EQ(stats.MaxOutDegree("B", "hop"), 4u);
  EXPECT_EQ(stats.MaxInDegree("B", "link"), 4u);  // all 4 land on B0
  EXPECT_EQ(stats.MaxInDegree("A", "hop"), 1u);
  // "" buckets (any endpoint / any edge label): B0 sends the 4 hops and
  // receives the 4 links plus B1's unlabeled edge.
  EXPECT_EQ(stats.MaxOutDegree("", ""), 4u);
  EXPECT_EQ(stats.MaxInDegree("", ""), 5u);
  // Unmeasured combinations answer 0 (callers fall back to averages).
  EXPECT_EQ(stats.MaxOutDegree("A", "hop"), 0u);
  EXPECT_EQ(stats.MaxOutDegree("Z", "link"), 0u);
}

TEST(GraphStatsTest, PerLabelPropertyDistributions) {
  IdAllocator ids;
  GraphBuilder b("pl", &ids);
  b.EnableStatsCollection();
  // k lives only on :A nodes (4 of them, 2 distinct values); :B nodes
  // carry a disjoint key.
  for (int i = 0; i < 4; ++i) b.AddNode({"A"}, {{"k", int64_t{i % 2}}});
  for (int i = 0; i < 6; ++i) b.AddNode({"B"}, {{"m", int64_t{i}}});
  const GraphStats stats = b.Stats();
  const PropertyStats* a_k = stats.NodePropStatsFor("A", "k");
  ASSERT_NE(a_k, nullptr);
  EXPECT_EQ(a_k->count, 4u);     // every :A carries k
  EXPECT_EQ(a_k->distinct, 2u);
  // The global distribution still reports the carrying fraction over all
  // nodes (4 of 10) — the independence double-charge the bucket removes.
  EXPECT_EQ(stats.node_props.at("k").count, 4u);
  EXPECT_EQ(stats.num_nodes, 10u);
  // Missing buckets answer null: the estimator's global fallback.
  EXPECT_EQ(stats.NodePropStatsFor("B", "k"), nullptr);
  EXPECT_EQ(stats.NodePropStatsFor("Z", "k"), nullptr);
  // The empty label addresses the global distribution.
  ASSERT_NE(stats.NodePropStatsFor("", "k"), nullptr);
  EXPECT_EQ(stats.NodePropStatsFor("", "k")->count, 4u);
  // Incremental path stays identical (per-label buckets included).
  EXPECT_EQ(stats, GraphStats::Collect(b.graph()));
}

TEST(GraphStatsTest, CatalogSeedsAndCachesPrecomputedStats) {
  GraphCatalog catalog;
  GraphBuilder builder = MakeKnownGraph(catalog.ids());
  GraphStats stats = builder.Stats();
  catalog.RegisterGraph("g", builder.Build(), std::move(stats));
  auto cached = catalog.Stats("g");
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ((*cached)->num_nodes, 6u);
  EXPECT_EQ((*cached)->node_props.at("k").distinct, 2u);
  // Re-registering without stats invalidates the seeded cache and the
  // lazy scan recomputes the same numbers.
  GraphBuilder rebuilt = MakeKnownGraph(catalog.ids());
  catalog.RegisterGraph("g", rebuilt.Build());
  auto rescanned = catalog.Stats("g");
  ASSERT_TRUE(rescanned.ok());
  EXPECT_EQ((*rescanned)->num_nodes, 6u);
  EXPECT_DOUBLE_EQ((*rescanned)->AvgOutDegree("A", "link"), 1.0);
}

}  // namespace
}  // namespace gcore
