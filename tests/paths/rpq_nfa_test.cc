// Tests for regular path expressions (Appendix A.1) and their NFA
// compilation.
#include <gtest/gtest.h>

#include "parser/parser.h"
#include "paths/nfa.h"
#include "paths/rpq.h"

namespace gcore {
namespace {

TEST(Rpq, Factories) {
  auto e = RpqExpr::EdgeLabel("knows");
  EXPECT_EQ(e->kind(), RpqExpr::Kind::kEdgeLabel);
  EXPECT_EQ(e->label(), "knows");
  auto inv = RpqExpr::InverseEdgeLabel("knows");
  EXPECT_EQ(inv->kind(), RpqExpr::Kind::kInverseEdgeLabel);
  auto node = RpqExpr::NodeLabel("Person");
  EXPECT_EQ(node->kind(), RpqExpr::Kind::kNodeLabel);
  auto view = RpqExpr::ViewRef("wKnows");
  EXPECT_EQ(view->kind(), RpqExpr::Kind::kViewRef);
}

TEST(Rpq, ToStringRoundTrips) {
  auto star = RpqExpr::Star(RpqExpr::EdgeLabel("knows"));
  EXPECT_EQ(star->ToString(), "(:knows)*");
  auto parsed = ParseRpq(star->ToString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)->ToString(), star->ToString());
}

TEST(Rpq, CloneIsDeep) {
  auto orig = RpqExpr::Star(RpqExpr::EdgeLabel("knows"));
  auto copy = orig->Clone();
  EXPECT_EQ(copy->ToString(), orig->ToString());
  EXPECT_NE(copy.get(), orig.get());
  EXPECT_NE(copy->children()[0].get(), orig->children()[0].get());
}

TEST(Rpq, ReferencesView) {
  auto plain = ParseRpq(":knows*");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE((*plain)->ReferencesView());
  auto with_view = ParseRpq("(~wKnows)*");
  ASSERT_TRUE(with_view.ok());
  EXPECT_TRUE((*with_view)->ReferencesView());
  std::vector<std::string> refs;
  (*with_view)->CollectViewRefs(&refs);
  EXPECT_EQ(refs, std::vector<std::string>{"wKnows"});
}

TEST(RpqParse, PaperSurfaceForms) {
  EXPECT_TRUE(ParseRpq(":knows*").ok());        // line 24
  EXPECT_TRUE(ParseRpq("~wKnows*").ok());       // line 62
  EXPECT_TRUE(ParseRpq("(:knows|:knows-)*").ok());  // A.2 (knows+knows⁻)*
  EXPECT_TRUE(ParseRpq("_").ok());
  EXPECT_TRUE(ParseRpq("!Person :knows !Person").ok());
  EXPECT_TRUE(ParseRpq(":a :b :c").ok());
  EXPECT_TRUE(ParseRpq(":a+").ok());
  EXPECT_TRUE(ParseRpq(":a?").ok());
  EXPECT_TRUE(ParseRpq("(:a | :b)+ :c").ok());
}

TEST(RpqParse, RejectsMalformed) {
  EXPECT_FALSE(ParseRpq("").ok());
  EXPECT_FALSE(ParseRpq("*").ok());
  EXPECT_FALSE(ParseRpq("(:a").ok());
  EXPECT_FALSE(ParseRpq(":a |").ok());
}

TEST(RpqParse, InverseMarker) {
  auto r = ParseRpq(":knows-");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->kind(), RpqExpr::Kind::kInverseEdgeLabel);
}

TEST(RpqParse, StarBindsToAtom) {
  auto r = ParseRpq(":a :b*");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ((*r)->kind(), RpqExpr::Kind::kConcat);
  EXPECT_EQ((*r)->children()[0]->kind(), RpqExpr::Kind::kEdgeLabel);
  EXPECT_EQ((*r)->children()[1]->kind(), RpqExpr::Kind::kStar);
}

TEST(RpqParse, AlternationLowerPrecedenceThanConcat) {
  auto r = ParseRpq(":a :b | :c");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ((*r)->kind(), RpqExpr::Kind::kAlt);
  EXPECT_EQ((*r)->children()[0]->kind(), RpqExpr::Kind::kConcat);
  EXPECT_EQ((*r)->children()[1]->kind(), RpqExpr::Kind::kEdgeLabel);
}

// --- NFA compilation -------------------------------------------------------------

TEST(Nfa, SingleAtom) {
  auto r = ParseRpq(":knows");
  Nfa nfa = Nfa::Compile(**r);
  EXPECT_EQ(nfa.num_states(), 2u);
  const auto& ts = nfa.TransitionsFrom(nfa.start());
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts[0].type, NfaTransition::Type::kEdgeForward);
  EXPECT_EQ(ts[0].label, "knows");
  EXPECT_EQ(ts[0].target, nfa.accept());
}

TEST(Nfa, StarAcceptsEmptyViaEpsilon) {
  auto r = ParseRpq(":knows*");
  Nfa nfa = Nfa::Compile(**r);
  EXPECT_TRUE(nfa.AcceptsFromViaEpsilon(nfa.start()));
}

TEST(Nfa, PlusDoesNotAcceptEmpty) {
  auto r = ParseRpq(":knows+");
  Nfa nfa = Nfa::Compile(**r);
  EXPECT_FALSE(nfa.AcceptsFromViaEpsilon(nfa.start()));
}

TEST(Nfa, OptionalAcceptsEmpty) {
  auto r = ParseRpq(":knows?");
  Nfa nfa = Nfa::Compile(**r);
  EXPECT_TRUE(nfa.AcceptsFromViaEpsilon(nfa.start()));
}

TEST(Nfa, EpsilonClosureIncludesSelf) {
  auto r = ParseRpq(":a");
  Nfa nfa = Nfa::Compile(**r);
  auto closure = nfa.EpsilonClosure(nfa.start());
  EXPECT_EQ(closure.size(), 1u);
  EXPECT_EQ(closure[0], nfa.start());
}

TEST(Nfa, ReversedSwapsStartAndAccept) {
  auto r = ParseRpq(":a :b");
  Nfa nfa = Nfa::Compile(**r);
  Nfa rev = nfa.Reversed();
  EXPECT_EQ(rev.start(), nfa.accept());
  EXPECT_EQ(rev.accept(), nfa.start());
  EXPECT_EQ(rev.num_states(), nfa.num_states());
}

TEST(Nfa, ReversedPreservesTransitionCount) {
  auto r = ParseRpq("(:a | :b)* :c");
  Nfa nfa = Nfa::Compile(**r);
  Nfa rev = nfa.Reversed();
  size_t fwd = 0, bwd = 0;
  for (NfaStateId s = 0; s < nfa.num_states(); ++s) {
    fwd += nfa.TransitionsFrom(s).size();
  }
  for (NfaStateId s = 0; s < rev.num_states(); ++s) {
    bwd += rev.TransitionsFrom(s).size();
  }
  EXPECT_EQ(fwd, bwd);
}

TEST(Nfa, NodeTestTransitionType) {
  auto r = ParseRpq("!Person");
  Nfa nfa = Nfa::Compile(**r);
  const auto& ts = nfa.TransitionsFrom(nfa.start());
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts[0].type, NfaTransition::Type::kNodeTest);
  EXPECT_EQ(ts[0].label, "Person");
}

TEST(Nfa, ViewRefTransitionType) {
  auto r = ParseRpq("~wKnows");
  Nfa nfa = Nfa::Compile(**r);
  const auto& ts = nfa.TransitionsFrom(nfa.start());
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts[0].type, NfaTransition::Type::kViewRef);
  EXPECT_EQ(ts[0].label, "wKnows");
}

// Parameterized: every surface regex compiles into an NFA whose start and
// accept are in range and all transition targets are valid.
class NfaWellFormed : public ::testing::TestWithParam<const char*> {};

TEST_P(NfaWellFormed, AllTargetsInRange) {
  auto r = ParseRpq(GetParam());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  Nfa nfa = Nfa::Compile(**r);
  EXPECT_LT(nfa.start(), nfa.num_states());
  EXPECT_LT(nfa.accept(), nfa.num_states());
  for (NfaStateId s = 0; s < nfa.num_states(); ++s) {
    for (const auto& t : nfa.TransitionsFrom(s)) {
      EXPECT_LT(t.target, nfa.num_states());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SurfaceForms, NfaWellFormed,
    ::testing::Values(":knows", ":knows*", ":knows+", ":knows?", "_",
                      "!Person", "~wKnows*", "(:a|:b)*", ":a :b :c",
                      "(:knows|:knows-)*", "((:a :b)|(:c))* :d",
                      "!Person (:knows !Person)*", "(:a?)*", "_* :x _*"));

}  // namespace
}  // namespace gcore
