// Differential suite for the parallel/batched path kernels: every kernel
// must be *result-identical* to its serial executable spec at parallelism
// 1 / 2 / 8 —
//   DeltaSsspFrom        ≡ DijkstraFrom   (distances, parents, edges),
//   DeltaKSsspFrom       ≡ KSsspHeapFrom  (k-cheapest cost multisets),
//   BatchedReachableFrom ≡ ReachableFrom per source (incl. >64 sources,
//                          so the 64-lane wave split is exercised),
//   IsReachable (bidirectional) ≡ membership in the full fixpoint,
//   ViewStarSssp         ≡ the product Dijkstra on `~view*`.
// Weight fixtures draw from {1, 2} so equal-distance ties are common and
// the canonical (parent, edge) tiebreak is actually exercised; the
// engine-level suite (tests/plan/parallel_test.cc) pins tables and path
// ids on top, and this file adds the 1-row-morsel degree sweep.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "eval/matcher.h"
#include "parser/parser.h"
#include "paths/batched_bfs.h"
#include "paths/delta_stepping.h"
#include "paths/dijkstra.h"
#include "paths/k_shortest.h"
#include "paths/product_bfs.h"
#include "snb/toy_graphs.h"

namespace gcore {
namespace {

/// Deterministic pseudo-random multigraph: `nodes` nodes, `edges` edges
/// labeled "a", endpoints from an LCG. Dense enough for shortcut-induced
/// distance ties.
struct RandomGraph {
  PathPropertyGraph g;
  std::unique_ptr<AdjacencyIndex> adj;
  size_t num_nodes;

  RandomGraph(size_t nodes, size_t edges) : num_nodes(nodes) {
    for (uint64_t i = 1; i <= nodes; ++i) g.AddNode(NodeId(i));
    uint64_t state = 0x9e3779b97f4a7c15ull;
    auto next = [&state]() {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      return state >> 33;
    };
    for (uint64_t e = 0; e < edges; ++e) {
      const uint64_t s = 1 + next() % nodes;
      uint64_t d = 1 + next() % nodes;
      if (d == s) d = 1 + d % nodes;
      const EdgeId id(1000 + e);
      if (!g.AddEdge(id, NodeId(s), NodeId(d)).ok()) std::abort();
      g.AddLabel(id, "a");
    }
    adj = std::make_unique<AdjacencyIndex>(g);
  }
};

/// Weights from {1.0, 2.0} keyed on edge id — plenty of equal-distance
/// ties, so the canonical tiebreak decides many parents.
std::optional<double> TieWeight(EdgeId edge, bool) {
  return edge.value() % 2 == 0 ? 1.0 : 2.0;
}

Nfa CompileRegex(const std::string& text) {
  auto r = ParseRpq(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return Nfa::Compile(**r);
}

void ExpectSameSssp(const SsspResult& want, const SsspResult& got,
                    const std::string& label) {
  EXPECT_EQ(want.distance, got.distance) << label;
  EXPECT_EQ(want.parent, got.parent) << label;
  ASSERT_EQ(want.parent_edge.size(), got.parent_edge.size()) << label;
  for (size_t n = 0; n < want.parent_edge.size(); ++n) {
    EXPECT_EQ(want.parent_edge[n], got.parent_edge[n])
        << label << " parent_edge of dense node " << n;
  }
}

TEST(DeltaStepping, MatchesDijkstraWithTies) {
  RandomGraph rg(180, 700);
  auto want = DijkstraFrom(*rg.adj, NodeId(1), TieWeight);
  ASSERT_TRUE(want.ok()) << want.status().ToString();

  const DenseEdgeWeightFn weight = WrapWeightFn(TieWeight);
  for (size_t parallelism : {size_t{1}, size_t{2}, size_t{8}}) {
    for (double delta : {0.0, 0.5, 1.0, 10.0}) {
      ParallelSsspOptions opts;
      opts.parallelism = parallelism;
      opts.delta = delta;
      opts.serial_cutoff = 0;  // force the bucketed kernel
      auto got = DeltaSsspFrom(*rg.adj, NodeId(1), weight, opts);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ExpectSameSssp(*want, *got,
                     "parallelism " + std::to_string(parallelism) +
                         " delta " + std::to_string(delta));
    }
  }
}

TEST(DeltaStepping, MatchesDijkstraUndirected) {
  RandomGraph rg(120, 360);
  auto want = DijkstraFrom(*rg.adj, NodeId(7), TieWeight,
                           /*follow_forward=*/true, /*follow_backward=*/true);
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  ParallelSsspOptions opts;
  opts.parallelism = 8;
  opts.serial_cutoff = 0;
  auto got = DeltaSsspFrom(*rg.adj, NodeId(7), WrapWeightFn(TieWeight), opts,
                           /*follow_forward=*/true, /*follow_backward=*/true);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectSameSssp(*want, *got, "undirected");
}

TEST(DeltaStepping, SerialCutoffFallbackIdentical) {
  // Below the cutoff the heap runs; both routes must agree anyway.
  RandomGraph rg(60, 150);
  ParallelSsspOptions bucketed;
  bucketed.serial_cutoff = 0;
  ParallelSsspOptions heap;
  heap.serial_cutoff = 1u << 20;
  const DenseEdgeWeightFn weight = WrapWeightFn(TieWeight);
  auto a = DeltaSsspFrom(*rg.adj, NodeId(3), weight, bucketed);
  auto b = DeltaSsspFrom(*rg.adj, NodeId(3), weight, heap);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectSameSssp(*a, *b, "cutoff");
}

TEST(DeltaStepping, NegativeWeightRejected) {
  RandomGraph rg(20, 40);
  auto negative = [](const AdjacencyEntry&) {
    return std::optional<double>(-1.0);
  };
  ParallelSsspOptions opts;
  opts.serial_cutoff = 0;
  EXPECT_FALSE(DeltaSsspFrom(*rg.adj, NodeId(1), negative, opts).ok());
}

TEST(KSssp, DeltaMatchesHeap) {
  RandomGraph rg(100, 400);
  const DenseEdgeWeightFn weight = WrapWeightFn(TieWeight);
  for (size_t k : {size_t{1}, size_t{3}, size_t{4}}) {
    auto want = KSsspHeapFrom(*rg.adj, NodeId(1), weight, k);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    for (size_t parallelism : {size_t{1}, size_t{2}, size_t{8}}) {
      ParallelSsspOptions opts;
      opts.parallelism = parallelism;
      opts.serial_cutoff = 0;
      auto got = DeltaKSsspFrom(*rg.adj, NodeId(1), weight, k, opts);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(*want, *got)
          << "k " << k << " parallelism " << parallelism;
    }
  }
}

TEST(BatchedReachability, MatchesPerSourceAcrossWaveSplit) {
  // 100 sources > 64 forces two waves; every lane must equal the
  // single-source fixpoint.
  RandomGraph rg(100, 300);
  Nfa nfa = CompileRegex(":a*");
  PathSearchContext ctx;
  ctx.adj = rg.adj.get();
  ctx.nfa = &nfa;

  std::vector<NodeId> sources;
  for (uint64_t i = 1; i <= rg.num_nodes; ++i) sources.push_back(NodeId(i));
  std::vector<std::set<NodeId>> want;
  for (NodeId src : sources) {
    auto r = ReachableFrom(ctx, src);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    want.push_back(std::move(*r));
  }
  for (size_t parallelism : {size_t{1}, size_t{2}, size_t{8}}) {
    ctx.parallelism = parallelism;
    auto got = BatchedReachableFrom(ctx, sources);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got->size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ((*got)[i], want[i])
          << "source " << ToString(sources[i]) << " @ parallelism "
          << parallelism;
    }
  }
}

/// Shared fixture with a PATH view and a node label, so view-ref and
/// node-test transitions are covered too.
struct ViewFixture {
  RandomGraph rg{40, 120};
  PathViewRegistry views;

  ViewFixture() {
    PathViewRelation rel("w");
    size_t i = 0;
    rg.g.ForEachEdge([&](EdgeId e, NodeId src, NodeId dst) {
      if (++i % 2 == 0) return;  // view over half the edges
      PathViewSegment seg;
      seg.src = src;
      seg.dst = dst;
      seg.cost = 1.0 + static_cast<double>(e.value() % 3);
      seg.body.nodes = {src, dst};
      seg.body.edges = {e};
      ASSERT_TRUE(rel.AddSegment(std::move(seg)).ok());
    });
    views.Register(std::move(rel));
    rg.g.AddLabel(NodeId(5), "Hub");
  }

  PathSearchContext Ctx(const Nfa* nfa) {
    PathSearchContext ctx;
    ctx.adj = rg.adj.get();
    ctx.nfa = nfa;
    ctx.views = &views;
    return ctx;
  }
};

TEST(BatchedReachability, MatchesPerSourceWithViews) {
  ViewFixture f;
  Nfa nfa = CompileRegex("(~w | :a)*");
  PathSearchContext ctx = f.Ctx(&nfa);
  std::vector<NodeId> sources;
  for (uint64_t i = 1; i <= f.rg.num_nodes; ++i) sources.push_back(NodeId(i));
  std::vector<std::set<NodeId>> want;
  for (NodeId src : sources) {
    auto r = ReachableFrom(ctx, src);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    want.push_back(std::move(*r));
  }
  ctx.parallelism = 4;
  auto got = BatchedReachableFrom(ctx, sources);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ((*got)[i], want[i]) << "source " << ToString(sources[i]);
  }
}

TEST(BidirectionalReachability, MatchesFullFixpointAllPairs) {
  ViewFixture f;
  for (const char* regex :
       {":a*", ":a :a", "(:a-)*", "(~w | :a)*", "(:a !Hub :a)?"}) {
    Nfa nfa = CompileRegex(regex);
    PathSearchContext ctx = f.Ctx(&nfa);
    for (uint64_t s = 1; s <= f.rg.num_nodes; ++s) {
      auto full = ReachableFrom(ctx, NodeId(s));
      ASSERT_TRUE(full.ok()) << full.status().ToString();
      for (uint64_t d = 1; d <= f.rg.num_nodes; ++d) {
        auto got = IsReachable(ctx, NodeId(s), NodeId(d));
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        EXPECT_EQ(*got, full->count(NodeId(d)) > 0)
            << regex << ": " << s << " -> " << d;
      }
    }
  }
}

TEST(ViewStarSssp, MatchesProductDijkstraOnTree) {
  // Segment costs over a tree: conforming walks are unique, so costs
  // *and* bodies must match the product search exactly.
  PathPropertyGraph g;
  for (uint64_t i = 1; i <= 10; ++i) g.AddNode(NodeId(i));
  PathViewRelation rel("w");
  uint64_t edge_id = 100;
  auto add_seg = [&](uint64_t s, uint64_t d, double cost) {
    const EdgeId e(edge_id++);
    ASSERT_TRUE(g.AddEdge(e, NodeId(s), NodeId(d)).ok());
    PathViewSegment seg;
    seg.src = NodeId(s);
    seg.dst = NodeId(d);
    seg.cost = cost;
    seg.body.nodes = {NodeId(s), NodeId(d)};
    seg.body.edges = {e};
    ASSERT_TRUE(rel.AddSegment(std::move(seg)).ok());
  };
  add_seg(1, 2, 1.0);
  add_seg(1, 3, 2.5);
  add_seg(2, 4, 0.5);
  add_seg(2, 5, 1.25);
  add_seg(3, 6, 4.0);
  add_seg(4, 7, 2.0);
  add_seg(5, 8, 0.75);
  AdjacencyIndex adj(g);
  PathViewRegistry views;
  views.Register(std::move(rel));

  Nfa nfa = CompileRegex("~w*");
  PathSearchContext ctx;
  ctx.adj = &adj;
  ctx.nfa = &nfa;
  ctx.views = &views;
  auto want = KShortestPathsFrom(ctx, NodeId(1), 1);
  ASSERT_TRUE(want.ok()) << want.status().ToString();

  auto lookup = views.Lookup("w");
  ASSERT_TRUE(lookup.ok());
  for (size_t parallelism : {size_t{1}, size_t{2}, size_t{8}}) {
    ParallelSsspOptions opts;
    opts.parallelism = parallelism;
    auto sssp = ViewStarSssp(adj, **lookup, NodeId(1), opts);
    ASSERT_TRUE(sssp.ok()) << sssp.status().ToString();
    size_t reached = 0;
    for (size_t n = 0; n < adj.num_nodes(); ++n) {
      const DenseNodeIndex dn = static_cast<DenseNodeIndex>(n);
      if (!sssp->Reached(dn)) continue;
      ++reached;
      const NodeId dst = adj.IdOf(dn);
      auto it = want->find(dst);
      ASSERT_NE(it, want->end()) << "extra destination " << ToString(dst);
      EXPECT_EQ(sssp->distance[dn], it->second.front().cost)
          << ToString(dst) << " @ parallelism " << parallelism;
      auto body = ReconstructViewWalk(adj, *sssp, NodeId(1), dst);
      ASSERT_TRUE(body.has_value());
      EXPECT_EQ(body->nodes, it->second.front().body.nodes)
          << ToString(dst) << " @ parallelism " << parallelism;
      EXPECT_EQ(body->edges, it->second.front().body.edges)
          << ToString(dst) << " @ parallelism " << parallelism;
    }
    EXPECT_EQ(reached, want->size());
  }
}

TEST(ViewStarSssp, MatchesProductDijkstraCostsWithTies) {
  // Equal-cost alternatives: distances must still agree (bodies may
  // legitimately differ between the two tiebreak families).
  ViewFixture f;
  Nfa nfa = CompileRegex("~w*");
  PathSearchContext ctx = f.Ctx(&nfa);
  auto lookup = f.views.Lookup("w");
  ASSERT_TRUE(lookup.ok());
  for (uint64_t s = 1; s <= f.rg.num_nodes; s += 7) {
    auto want = KShortestPathsFrom(ctx, NodeId(s), 1);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    ParallelSsspOptions opts;
    opts.parallelism = 4;
    auto sssp = ViewStarSssp(*f.rg.adj, **lookup, NodeId(s), opts);
    ASSERT_TRUE(sssp.ok()) << sssp.status().ToString();
    size_t reached = 0;
    for (size_t n = 0; n < f.rg.adj->num_nodes(); ++n) {
      const DenseNodeIndex dn = static_cast<DenseNodeIndex>(n);
      if (!sssp->Reached(dn)) continue;
      ++reached;
      const NodeId dst = f.rg.adj->IdOf(dn);
      auto it = want->find(dst);
      ASSERT_NE(it, want->end());
      EXPECT_EQ(sssp->distance[dn], it->second.front().cost)
          << "source " << s << " dst " << ToString(dst);
    }
    EXPECT_EQ(reached, want->size()) << "source " << s;
  }
}

TEST(BatchedKShortest, MatchesPerSource) {
  RandomGraph rg(60, 200);
  Nfa nfa = CompileRegex(":a*");
  PathSearchContext ctx;
  ctx.adj = rg.adj.get();
  ctx.nfa = &nfa;
  std::vector<NodeId> sources;
  for (uint64_t i = 1; i <= rg.num_nodes; i += 3) sources.push_back(NodeId(i));
  for (size_t parallelism : {size_t{1}, size_t{8}}) {
    ctx.parallelism = parallelism;
    auto got = BatchedKShortestFrom(ctx, sources, 2);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    for (size_t i = 0; i < sources.size(); ++i) {
      auto want = KShortestPathsFrom(ctx, sources[i], 2);
      ASSERT_TRUE(want.ok());
      ASSERT_EQ((*got)[i].size(), want->size());
      for (const auto& [dst, paths] : *want) {
        const auto it = (*got)[i].find(dst);
        ASSERT_NE(it, (*got)[i].end());
        ASSERT_EQ(it->second.size(), paths.size());
        for (size_t p = 0; p < paths.size(); ++p) {
          EXPECT_EQ(it->second[p].cost, paths[p].cost);
          EXPECT_EQ(it->second[p].body.nodes, paths[p].body.nodes);
          EXPECT_EQ(it->second[p].body.edges, paths[p].body.edges);
        }
      }
    }
  }
}

// Engine-level: the path stages on 1-row morsels at every degree — the
// batched ExpandPathHop sees the whole drained input either way, and the
// result tables (including fresh path ids) must be byte-identical to the
// serial run.
TEST(EngineDegreeSweep, PathModesOnOneRowMorsels) {
  auto run = [](const char* query, size_t parallelism) {
    GraphCatalog catalog;
    snb::RegisterToyData(&catalog);
    auto parsed = ParseQuery(query);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    const MatchClause& match = *(*parsed)->body->basic->match;
    MatcherContext ctx;
    ctx.catalog = &catalog;
    ctx.default_graph = "social_graph";
    ctx.use_planner = true;
    ctx.parallelism = parallelism;
    ctx.morsel_size = 1;
    Matcher matcher(ctx);
    auto table = matcher.EvalMatchClause(match);
    EXPECT_TRUE(table.ok()) << table.status().ToString();
    std::string rendered;
    for (size_t r = 0; r < table->NumRows(); ++r) {
      for (const auto& col : table->columns()) {
        const Datum d = table->Get(r, col);
        rendered += col + "=" + d.ToString();
        if (d.kind() == Datum::Kind::kPath) {
          rendered += "#" + std::to_string(d.path().id.value());
          for (NodeId n : d.path().body.nodes) rendered += ToString(n) + ",";
        }
        rendered += ";";
      }
      rendered += "\n";
    }
    return rendered;
  };
  for (const char* query :
       {"CONSTRUCT (z) MATCH (n:Person)-/<:knows*>/->(m:Person)",
        "CONSTRUCT (z) MATCH (n:Person)-/2 SHORTEST p<:knows*> COST c/->(m)",
        "CONSTRUCT (z) MATCH (n:Person)-/p<:knows*>/->(m) "
        "WHERE n.firstName = 'John'"}) {
    const std::string serial = run(query, 1);
    EXPECT_FALSE(serial.empty()) << query;
    for (size_t parallelism : {size_t{2}, size_t{8}}) {
      EXPECT_EQ(run(query, parallelism), serial)
          << query << " @ parallelism " << parallelism;
    }
  }
}

}  // namespace
}  // namespace gcore
