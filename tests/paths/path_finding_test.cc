// Tests for the product-automaton path machinery: reachability, (k-)
// shortest conforming walks, weighted PATH views, ALL-paths projection,
// and the plain BFS/Dijkstra substrate.
#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "parser/parser.h"
#include "paths/all_paths.h"
#include "paths/dijkstra.h"
#include "paths/k_shortest.h"
#include "paths/product_bfs.h"

namespace gcore {
namespace {

// A chain with a shortcut and a label change:
//   1 -a-> 2 -a-> 3 -a-> 4
//   1 -b-> 4
//   4 -a-> 5,   3 -c-> 5
struct TestGraph {
  PathPropertyGraph g;
  std::unique_ptr<AdjacencyIndex> adj;

  TestGraph() {
    for (uint64_t i = 1; i <= 5; ++i) g.AddNode(NodeId(i));
    add_edge(10, 1, 2, "a");
    add_edge(11, 2, 3, "a");
    add_edge(12, 3, 4, "a");
    add_edge(13, 1, 4, "b");
    add_edge(14, 4, 5, "a");
    add_edge(15, 3, 5, "c");
    g.AddLabel(NodeId(3), "Hub");
    adj = std::make_unique<AdjacencyIndex>(g);
  }

  void add_edge(uint64_t id, uint64_t s, uint64_t d, const char* label) {
    ASSERT_TRUE(g.AddEdge(EdgeId(id), NodeId(s), NodeId(d)).ok());
    g.AddLabel(EdgeId(id), label);
  }

  PathSearchContext Ctx(const Nfa* nfa,
                        const PathViewRegistry* views = nullptr) const {
    PathSearchContext ctx;
    ctx.adj = adj.get();
    ctx.nfa = nfa;
    ctx.views = views;
    return ctx;
  }
};

Nfa CompileRegex(const std::string& text) {
  auto r = ParseRpq(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return Nfa::Compile(**r);
}

TEST(Reachability, StarIncludesSource) {
  TestGraph t;
  Nfa nfa = CompileRegex(":a*");
  auto reachable = ReachableFrom(t.Ctx(&nfa), NodeId(1));
  ASSERT_TRUE(reachable.ok());
  // 1 (empty walk), 2, 3, 4 (via a a a), 5 (via a a a a).
  EXPECT_EQ(*reachable,
            (std::set<NodeId>{NodeId(1), NodeId(2), NodeId(3), NodeId(4),
                              NodeId(5)}));
}

TEST(Reachability, PlusExcludesSourceWithoutCycle) {
  TestGraph t;
  Nfa nfa = CompileRegex(":a+");
  auto reachable = ReachableFrom(t.Ctx(&nfa), NodeId(1));
  ASSERT_TRUE(reachable.ok());
  EXPECT_EQ(reachable->count(NodeId(1)), 0u);
  EXPECT_EQ(reachable->count(NodeId(2)), 1u);
}

TEST(Reachability, LabelConstrained) {
  TestGraph t;
  Nfa nfa = CompileRegex(":b");
  auto reachable = ReachableFrom(t.Ctx(&nfa), NodeId(1));
  ASSERT_TRUE(reachable.ok());
  EXPECT_EQ(*reachable, (std::set<NodeId>{NodeId(4)}));
}

TEST(Reachability, InverseDirection) {
  TestGraph t;
  Nfa nfa = CompileRegex(":a-");
  auto reachable = ReachableFrom(t.Ctx(&nfa), NodeId(2));
  ASSERT_TRUE(reachable.ok());
  EXPECT_EQ(*reachable, (std::set<NodeId>{NodeId(1)}));
}

TEST(Reachability, NodeTestGuards) {
  TestGraph t;
  // Walk a-edges but only through a node labeled Hub.
  Nfa nfa = CompileRegex(":a !Hub :a");
  auto reachable = ReachableFrom(t.Ctx(&nfa), NodeId(2));
  ASSERT_TRUE(reachable.ok());
  EXPECT_EQ(*reachable, (std::set<NodeId>{NodeId(4)}));
  // From node 1: 1-a->2 but 2 is not Hub.
  auto from1 = ReachableFrom(t.Ctx(&nfa), NodeId(1));
  ASSERT_TRUE(from1.ok());
  EXPECT_TRUE(from1->empty());
}

TEST(Reachability, IsReachablePair) {
  TestGraph t;
  Nfa nfa = CompileRegex(":a*");
  auto yes = IsReachable(t.Ctx(&nfa), NodeId(1), NodeId(5));
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(*yes);
  Nfa c = CompileRegex(":c");
  auto no = IsReachable(t.Ctx(&c), NodeId(1), NodeId(5));
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(*no);
}

TEST(ShortestPath, FindsMinimalHopWalk) {
  TestGraph t;
  Nfa nfa = CompileRegex("_*");
  auto sp = ShortestPath(t.Ctx(&nfa), NodeId(1), NodeId(5));
  ASSERT_TRUE(sp.ok());
  ASSERT_TRUE(sp->has_value());
  // 1-b->4-a->5 is 2 hops, beating 1-a->2-a->3 routes.
  EXPECT_EQ((*sp)->hops, 2u);
  EXPECT_EQ((*sp)->body.nodes.front(), NodeId(1));
  EXPECT_EQ((*sp)->body.nodes.back(), NodeId(5));
}

TEST(ShortestPath, RespectsRegexEvenIfLonger) {
  TestGraph t;
  Nfa nfa = CompileRegex(":a*");
  auto sp = ShortestPath(t.Ctx(&nfa), NodeId(1), NodeId(5));
  ASSERT_TRUE(sp.ok());
  ASSERT_TRUE(sp->has_value());
  EXPECT_EQ((*sp)->hops, 4u);  // must avoid the b shortcut
  for (EdgeId e : (*sp)->body.edges) {
    EXPECT_TRUE(t.g.Labels(e).Contains("a"));
  }
}

TEST(ShortestPath, NoneWhenUnreachable) {
  TestGraph t;
  Nfa nfa = CompileRegex(":c");
  auto sp = ShortestPath(t.Ctx(&nfa), NodeId(1), NodeId(2));
  ASSERT_TRUE(sp.ok());
  EXPECT_FALSE(sp->has_value());
}

TEST(ShortestPath, EmptyWalkWhenSourceEqualsTargetAndNullableRegex) {
  TestGraph t;
  Nfa nfa = CompileRegex(":a*");
  auto sp = ShortestPath(t.Ctx(&nfa), NodeId(3), NodeId(3));
  ASSERT_TRUE(sp.ok());
  ASSERT_TRUE(sp->has_value());
  EXPECT_EQ((*sp)->hops, 0u);
  EXPECT_EQ((*sp)->body.nodes, std::vector<NodeId>{NodeId(3)});
}

TEST(ShortestPath, BodyIsValidWalk) {
  TestGraph t;
  Nfa nfa = CompileRegex("_*");
  auto all = ShortestPathsFrom(t.Ctx(&nfa), NodeId(1));
  ASSERT_TRUE(all.ok());
  for (const auto& [dst, found] : *all) {
    ASSERT_EQ(found.body.nodes.size(), found.body.edges.size() + 1);
    for (size_t i = 0; i < found.body.edges.size(); ++i) {
      const auto [s, d] = t.g.EdgeEndpoints(found.body.edges[i]);
      const NodeId a = found.body.nodes[i];
      const NodeId b = found.body.nodes[i + 1];
      EXPECT_TRUE((s == a && d == b) || (s == b && d == a));
    }
  }
}

TEST(KShortest, ReturnsAtMostKInCostOrder) {
  TestGraph t;
  Nfa nfa = CompileRegex("_*");
  auto paths = KShortestPaths(t.Ctx(&nfa), NodeId(1), NodeId(4), 3);
  ASSERT_TRUE(paths.ok());
  ASSERT_EQ(paths->size(), 3u);
  EXPECT_LE((*paths)[0].cost, (*paths)[1].cost);
  EXPECT_LE((*paths)[1].cost, (*paths)[2].cost);
  EXPECT_EQ((*paths)[0].hops, 1u);  // the b shortcut
}

TEST(KShortest, DistinctBodies) {
  TestGraph t;
  Nfa nfa = CompileRegex("_*");
  auto paths = KShortestPaths(t.Ctx(&nfa), NodeId(1), NodeId(5), 4);
  ASSERT_TRUE(paths.ok());
  for (size_t i = 0; i < paths->size(); ++i) {
    for (size_t j = i + 1; j < paths->size(); ++j) {
      EXPECT_FALSE((*paths)[i].body == (*paths)[j].body);
    }
  }
}

TEST(KShortest, KOneMatchesShortestPath) {
  TestGraph t;
  Nfa nfa = CompileRegex(":a*");
  auto k1 = KShortestPaths(t.Ctx(&nfa), NodeId(1), NodeId(4), 1);
  auto sp = ShortestPath(t.Ctx(&nfa), NodeId(1), NodeId(4));
  ASSERT_TRUE(k1.ok());
  ASSERT_TRUE(sp.ok());
  ASSERT_EQ(k1->size(), 1u);
  ASSERT_TRUE(sp->has_value());
  EXPECT_EQ((*k1)[0].cost, (*sp)->cost);
}

TEST(KShortest, InvalidArguments) {
  TestGraph t;
  Nfa nfa = CompileRegex(":a");
  EXPECT_FALSE(KShortestPaths(t.Ctx(&nfa), NodeId(1), NodeId(2), 0).ok());
  EXPECT_FALSE(KShortestPaths(t.Ctx(&nfa), NodeId(99), NodeId(2), 1).ok());
  EXPECT_FALSE(KShortestPaths(t.Ctx(&nfa), NodeId(1), NodeId(99), 1).ok());
}

TEST(KShortest, DeterministicAcrossRuns) {
  TestGraph t;
  Nfa nfa = CompileRegex("_*");
  auto a = KShortestPathsFrom(t.Ctx(&nfa), NodeId(1), 3);
  auto b = KShortestPathsFrom(t.Ctx(&nfa), NodeId(1), 3);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (auto ita = a->begin(), itb = b->begin(); ita != a->end();
       ++ita, ++itb) {
    ASSERT_EQ(ita->second.size(), itb->second.size());
    for (size_t i = 0; i < ita->second.size(); ++i) {
      EXPECT_TRUE(ita->second[i].body == itb->second[i].body);
    }
  }
}

// --- weighted view traversal --------------------------------------------------

TEST(WeightedViews, DijkstraOverSegments) {
  TestGraph t;
  PathViewRegistry views;
  PathViewRelation rel("w");
  auto seg = [&](uint64_t s, uint64_t d, double cost,
                 std::vector<uint64_t> edge_ids,
                 std::vector<uint64_t> node_ids) {
    PathViewSegment segment;
    segment.src = NodeId(s);
    segment.dst = NodeId(d);
    segment.cost = cost;
    for (uint64_t n : node_ids) segment.body.nodes.push_back(NodeId(n));
    for (uint64_t e : edge_ids) segment.body.edges.push_back(EdgeId(e));
    ASSERT_TRUE(rel.AddSegment(segment).ok());
  };
  seg(1, 2, 0.5, {10}, {1, 2});
  seg(2, 3, 0.5, {11}, {2, 3});
  seg(1, 4, 5.0, {13}, {1, 4});
  seg(3, 4, 0.25, {12}, {3, 4});
  views.Register(std::move(rel));

  Nfa nfa = CompileRegex("~w*");
  auto sp = ShortestPath(t.Ctx(&nfa, &views), NodeId(1), NodeId(4));
  ASSERT_TRUE(sp.ok());
  ASSERT_TRUE(sp->has_value());
  // 1→2→3→4 costs 1.25, cheaper than the direct 5.0 segment.
  EXPECT_DOUBLE_EQ((*sp)->cost, 1.25);
  EXPECT_EQ((*sp)->hops, 3u);
  EXPECT_EQ((*sp)->body.nodes,
            (std::vector<NodeId>{NodeId(1), NodeId(2), NodeId(3), NodeId(4)}));
}

TEST(WeightedViews, NonPositiveCostRejectedAtConstruction) {
  PathViewRelation rel("w");
  PathViewSegment segment;
  segment.src = NodeId(1);
  segment.dst = NodeId(2);
  segment.cost = 0.0;
  segment.body.nodes = {NodeId(1), NodeId(2)};
  segment.body.edges = {EdgeId(10)};
  EXPECT_TRUE(rel.AddSegment(segment).IsEvaluationError());
}

TEST(WeightedViews, MissingViewIsEvaluationError) {
  TestGraph t;
  Nfa nfa = CompileRegex("~nope");
  auto sp = ShortestPath(t.Ctx(&nfa), NodeId(1), NodeId(2));
  EXPECT_FALSE(sp.ok());
}

// --- ALL-paths projection --------------------------------------------------------

TEST(AllPaths, ProjectionContainsExactlyParticipatingEdges) {
  TestGraph t;
  Nfa nfa = CompileRegex(":a*");
  auto proj = AllPathsProjection(t.Ctx(&nfa), NodeId(1), NodeId(4));
  ASSERT_TRUE(proj.ok());
  // Only the chain 1-2-3-4; the b shortcut and c edge do not conform.
  EXPECT_EQ(proj->nodes, (std::set<NodeId>{NodeId(1), NodeId(2), NodeId(3),
                                           NodeId(4)}));
  EXPECT_EQ(proj->edges,
            (std::set<EdgeId>{EdgeId(10), EdgeId(11), EdgeId(12)}));
}

TEST(AllPaths, WildcardIncludesAlternatives) {
  TestGraph t;
  Nfa nfa = CompileRegex("_*");
  auto proj = AllPathsProjection(t.Ctx(&nfa), NodeId(1), NodeId(4));
  ASSERT_TRUE(proj.ok());
  EXPECT_TRUE(proj->edges.count(EdgeId(13)) > 0);  // shortcut participates
  EXPECT_TRUE(proj->edges.count(EdgeId(12)) > 0);
}

TEST(AllPaths, EmptyWhenUnreachable) {
  TestGraph t;
  Nfa nfa = CompileRegex(":c");
  auto proj = AllPathsProjection(t.Ctx(&nfa), NodeId(1), NodeId(2));
  ASSERT_TRUE(proj.ok());
  EXPECT_TRUE(proj->Empty());
}

// --- plain BFS / Dijkstra substrate -----------------------------------------------

TEST(Sssp, BfsHopCounts) {
  TestGraph t;
  SsspResult r = BfsFrom(*t.adj, NodeId(1));
  EXPECT_EQ(r.distance[t.adj->IndexOf(NodeId(1))], 0.0);
  EXPECT_EQ(r.distance[t.adj->IndexOf(NodeId(4))], 1.0);
  EXPECT_EQ(r.distance[t.adj->IndexOf(NodeId(5))], 2.0);
}

TEST(Sssp, DijkstraWithWeights) {
  TestGraph t;
  auto weight = [&](EdgeId e, bool) -> std::optional<double> {
    return e == EdgeId(13) ? 10.0 : 1.0;  // make the shortcut expensive
  };
  auto r = DijkstraFrom(*t.adj, NodeId(1), weight);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->distance[t.adj->IndexOf(NodeId(4))], 3.0);
}

TEST(Sssp, DijkstraRejectsNegativeWeights) {
  TestGraph t;
  auto weight = [](EdgeId, bool) -> std::optional<double> { return -1.0; };
  EXPECT_FALSE(DijkstraFrom(*t.adj, NodeId(1), weight).ok());
}

TEST(Sssp, WeightFilterBlocksEdges) {
  TestGraph t;
  auto weight = [&](EdgeId e, bool) -> std::optional<double> {
    if (!t.g.Labels(e).Contains("a")) return std::nullopt;
    return 1.0;
  };
  auto r = DijkstraFrom(*t.adj, NodeId(1), weight);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->distance[t.adj->IndexOf(NodeId(4))], 3.0);  // not via b
}

TEST(Sssp, ReconstructWalk) {
  TestGraph t;
  SsspResult r = BfsFrom(*t.adj, NodeId(1));
  auto walk = ReconstructWalk(*t.adj, r, NodeId(1), NodeId(5));
  ASSERT_TRUE(walk.has_value());
  EXPECT_EQ(walk->nodes.front(), NodeId(1));
  EXPECT_EQ(walk->nodes.back(), NodeId(5));
  EXPECT_EQ(walk->edges.size(), 2u);
}

TEST(Sssp, UnreachableReconstructIsNull) {
  TestGraph t;
  SsspResult r = BfsFrom(*t.adj, NodeId(5));  // forward only: 5 is a sink
  EXPECT_FALSE(ReconstructWalk(*t.adj, r, NodeId(5), NodeId(1)).has_value());
}

// Parameterized consistency: for unit costs, the product search over `_*`
// must agree with plain BFS distances.
class ProductVsBfs : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProductVsBfs, WildcardStarMatchesBfsHops) {
  // Deterministic random digraph.
  PathPropertyGraph g;
  uint64_t state = GetParam() * 888888877u + 3;
  auto next = [&]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  const uint64_t n = 12;
  for (uint64_t i = 1; i <= n; ++i) g.AddNode(NodeId(i));
  for (int i = 0; i < 30; ++i) {
    const NodeId a(1 + next() % n);
    const NodeId b(1 + next() % n);
    Status st = g.AddEdge(EdgeId(1000 + i), a, b);
    (void)st;
  }
  AdjacencyIndex adj(g);
  Nfa nfa = CompileRegex("_*");
  PathSearchContext ctx;
  ctx.adj = &adj;
  ctx.nfa = &nfa;

  // `_*` crosses edges in both directions; mirror that in the BFS.
  SsspResult bfs = BfsFrom(adj, NodeId(1), /*follow_forward=*/true,
                           /*follow_backward=*/true);
  auto product = ShortestPathsFrom(ctx, NodeId(1));
  ASSERT_TRUE(product.ok());
  for (uint64_t i = 1; i <= n; ++i) {
    const double bfs_dist = bfs.distance[adj.IndexOf(NodeId(i))];
    auto it = product->find(NodeId(i));
    if (bfs_dist == SsspResult::kUnreachable) {
      EXPECT_EQ(it, product->end());
    } else {
      ASSERT_NE(it, product->end()) << "node " << i;
      EXPECT_DOUBLE_EQ(it->second.cost, bfs_dist) << "node " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProductVsBfs, ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace gcore
