// Plan-shape golden tests: the planner must produce the expected
// operator trees for the paper's guided-tour queries, with the pushdown
// and chain-ordering rules visible in EXPLAIN output.
#include "plan/planner.h"

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "eval/matcher.h"
#include "graph/graph_builder.h"
#include "parser/parser.h"
#include "plan/executor.h"
#include "snb/toy_graphs.h"

namespace gcore {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest() {
    snb::RegisterToyData(&catalog);
    catalog.SetDefaultGraph("social_graph");
  }

  /// EXPLAIN through the engine; returns the plan rows joined by '\n'.
  std::string Explain(const std::string& query, bool pushdown = true) {
    QueryEngine engine(&catalog);
    engine.set_enable_pushdown(pushdown);
    auto r = engine.Execute("EXPLAIN " + query);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) return "";
    EXPECT_TRUE(r->IsTable());
    std::string out;
    for (size_t i = 0; i < r->table->NumRows(); ++i) {
      if (i > 0) out += "\n";
      out += r->table->At(i, 0).AsString();
    }
    return out;
  }

  /// Plans the MATCH clause of `query` directly. The parsed AST is kept
  /// alive in the fixture: plans reference it.
  PlanPtr PlanMatchOf(const std::string& query, Matcher* matcher) {
    auto parsed = ParseQuery(query);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    if (!parsed.ok()) return nullptr;
    parsed_queries_.push_back(std::move(*parsed));
    PlannerOptions options = PlannerOptions::FromContext(matcher->context());
    Planner planner(matcher, options);
    auto plan =
        planner.PlanMatch(*parsed_queries_.back()->body->basic->match);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    if (!plan.ok()) return nullptr;
    planner.AnnotateEstimates(plan->get());
    return std::move(*plan);
  }

  std::vector<std::unique_ptr<Query>> parsed_queries_;

  Matcher MakeMatcher() {
    MatcherContext ctx;
    ctx.catalog = &catalog;
    ctx.default_graph = "social_graph";
    return Matcher(ctx);
  }

  GraphCatalog catalog;
};

// Q1 (paper lines 1-4): scan + pushed filter + residual WHERE + project.
TEST_F(PlannerTest, Q1_ScanWithPushedFilter) {
  const std::string plan = Explain(
      "CONSTRUCT (n) MATCH (n:Person) ON social_graph "
      "WHERE n.employer = 'Acme'");
  EXPECT_NE(plan.find("Project [n] dedup"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Filter (n.employer = 'Acme')"), std::string::npos)
      << plan;
  EXPECT_NE(plan.find(
                "NodeScan (n:Person) on social_graph "
                "push={(n.employer = 'Acme')}"),
            std::string::npos)
      << plan;
}

// Q2 (lines 5-9): cross-graph join under a graph-level union.
TEST_F(PlannerTest, Q2_JoinUnderGraphUnion) {
  const std::string plan = Explain(
      "CONSTRUCT (c)<-[:worksAt]-(n) "
      "MATCH (c:Company) ON company_graph, (n:Person) ON social_graph "
      "WHERE c.name = n.employer UNION social_graph");
  EXPECT_NE(plan.find("GraphUnion"), std::string::npos) << plan;
  EXPECT_NE(plan.find("HashJoin"), std::string::npos) << plan;
  EXPECT_NE(plan.find("NodeScan (c:Company) on company_graph"),
            std::string::npos)
      << plan;
  EXPECT_NE(plan.find("NodeScan (n:Person) on social_graph"),
            std::string::npos)
      << plan;
  EXPECT_NE(plan.find("Graph social_graph"), std::string::npos) << plan;
}

// Q5 (lines 20-22): property unrolling stays inside the scan; the bound
// variable e is a visible output column.
TEST_F(PlannerTest, Q5_PropertyUnrollingInScan) {
  const std::string plan =
      Explain("CONSTRUCT social_graph, "
              "(x GROUP e :Company {name:=e})<-[y:worksAt]-(n) "
              "MATCH (n:Person {employer=e})");
  EXPECT_NE(plan.find("NodeScan (n:Person {employer = e})"),
            std::string::npos)
      << plan;
  EXPECT_NE(plan.find("Project [n, e] dedup"), std::string::npos) << plan;
}

// Q6 (lines 23-27): the selective source filters are pushed below the
// expensive k-shortest path search.
TEST_F(PlannerTest, Q6_FiltersPushedBelowPathSearch) {
  const std::string plan = Explain(
      "CONSTRUCT (n)-/@p:localPeople{distance:=c}/->(m) "
      "MATCH (n)-/3 SHORTEST p<:knows*> COST c/->(m) "
      "WHERE (n:Person) AND (m:Person) "
      "AND n.firstName = 'John' AND n.lastName = 'Doe' "
      "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)");
  const size_t search = plan.find("PathSearch");
  const size_t scan = plan.find("NodeScan");
  ASSERT_NE(search, std::string::npos) << plan;
  ASSERT_NE(scan, std::string::npos) << plan;
  // The scan renders below (after) the search and carries the pushed
  // source predicates.
  EXPECT_LT(search, scan) << plan;
  EXPECT_NE(plan.find("(n.firstName = 'John')"), std::string::npos) << plan;
  const size_t push = plan.find("push={", scan);
  EXPECT_NE(push, std::string::npos) << plan;
  EXPECT_NE(plan.find("Project [n, p, m, c] dedup"), std::string::npos)
      << plan;
}

// Q7 (lines 28-31): reachability search with an edge-pattern predicate
// kept in the residual filter.
TEST_F(PlannerTest, Q7_ReachabilityPlan) {
  const std::string plan = Explain(
      "CONSTRUCT (m) MATCH (n:Person)-/<:knows*>/->(m:Person) "
      "WHERE n.firstName = 'John' AND n.lastName = 'Doe' "
      "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)");
  EXPECT_NE(plan.find("PathSearch"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Filter"), std::string::npos) << plan;
  EXPECT_NE(plan.find("isLocatedIn"), std::string::npos) << plan;
}

// The pushdown rule is an optimizer flag: disabling it removes every
// pushed predicate but keeps the residual filter.
TEST_F(PlannerTest, PushdownFlagControlsRule) {
  const std::string query =
      "CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme'";
  const std::string with = Explain(query, /*pushdown=*/true);
  const std::string without = Explain(query, /*pushdown=*/false);
  EXPECT_NE(with.find("push={"), std::string::npos) << with;
  EXPECT_EQ(without.find("push={"), std::string::npos) << without;
  EXPECT_NE(without.find("Filter (n.employer = 'Acme')"), std::string::npos)
      << without;
}

// Chain-ordering rule: independent chains join smallest-first (4
// companies before 5 persons), regardless of source order.
TEST_F(PlannerTest, ChainsOrderedByEstimatedCardinality) {
  const std::string plan = Explain(
      "SELECT n.firstName AS f "
      "MATCH (n:Person) ON social_graph, (c:Company) ON company_graph");
  const size_t company = plan.find("NodeScan (c:Company)");
  const size_t person = plan.find("NodeScan (n:Person)");
  ASSERT_NE(company, std::string::npos) << plan;
  ASSERT_NE(person, std::string::npos) << plan;
  EXPECT_LT(company, person) << plan;
}

// Stats-present variant of the chain-ordering golden: with per-column
// statistics the ordering follows *measured* degrees — 5 :S hubs fan out
// 16 dense edges each (est 80) while 20 :T nodes average 1.5 sparse
// edges (est 30), so the T chain joins first. The seed's global-fanout
// model (stats absent / use_column_stats off) divides both edge counts
// by the same node total, ranks the chains the other way (400/N vs
// 600/N) and keeps the S chain first — the existing goldens' behavior.
TEST_F(PlannerTest, ChainReorderingFollowsMeasuredDegrees) {
  GraphBuilder b("deg", catalog.ids());
  b.EnableStatsCollection();
  std::vector<NodeId> hubs;
  for (int i = 0; i < 10; ++i) hubs.push_back(b.AddNode({"H"}));
  for (int i = 0; i < 5; ++i) {
    const NodeId s = b.AddNode({"S"});
    for (int j = 0; j < 16; ++j) b.AddEdge(s, hubs[j % 10], "dense");
  }
  for (int i = 0; i < 20; ++i) {
    const NodeId t = b.AddNode({"T"});
    b.AddEdge(t, hubs[i % 10], "sparse");
    if (i < 10) b.AddEdge(t, hubs[(i + 1) % 10], "sparse");
  }
  GraphStats stats = b.Stats();
  catalog.RegisterGraph("deg", b.Build(), std::move(stats));

  const std::string query =
      "CONSTRUCT (s) MATCH (s:S)-[:dense]->(h) ON deg, "
      "(t:T)-[:sparse]->(u) ON deg";
  auto explain = [&](bool use_column_stats) {
    QueryEngine engine(&catalog);
    engine.set_use_column_stats(use_column_stats);
    auto r = engine.Execute("EXPLAIN " + query);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    std::string out;
    for (size_t i = 0; r.ok() && i < r->table->NumRows(); ++i) {
      out += r->table->At(i, 0).AsString() + "\n";
    }
    return out;
  };

  const std::string with_stats = explain(true);
  size_t t_scan = with_stats.find("NodeScan (t:T)");
  size_t s_scan = with_stats.find("NodeScan (s:S)");
  ASSERT_NE(t_scan, std::string::npos) << with_stats;
  ASSERT_NE(s_scan, std::string::npos) << with_stats;
  EXPECT_LT(t_scan, s_scan) << with_stats;

  const std::string seed_model = explain(false);
  t_scan = seed_model.find("NodeScan (t:T)");
  s_scan = seed_model.find("NodeScan (s:S)");
  ASSERT_NE(t_scan, std::string::npos) << seed_model;
  ASSERT_NE(s_scan, std::string::npos) << seed_model;
  EXPECT_LT(s_scan, t_scan) << seed_model;
}

// OPTIONAL lowers to a left outer join above the main plan.
TEST_F(PlannerTest, OptionalBecomesLeftOuterJoin) {
  const std::string plan = Explain(
      "CONSTRUCT (n) MATCH (n:Person) "
      "OPTIONAL (n)-[e:knows]->(m)");
  EXPECT_NE(plan.find("LeftOuterJoin"), std::string::npos) << plan;
  EXPECT_NE(plan.find("ExpandEdge"), std::string::npos) << plan;
}

// OPTIONAL block WHERE conjuncts push into the block's own chain: the
// block-side ExpandEdge carries the pushed predicate, and the residual
// block filter stays above it.
TEST_F(PlannerTest, OptionalBlockWherePushesIntoBlockPlan) {
  const std::string plan = Explain(
      "CONSTRUCT (n) MATCH (n:Person) "
      "OPTIONAL (n)-[e:knows]->(m) WHERE m.employer = 'Acme'");
  const size_t outer = plan.find("LeftOuterJoin");
  ASSERT_NE(outer, std::string::npos) << plan;
  const size_t pushed =
      plan.find("push={(m.employer = 'Acme')}", outer);
  EXPECT_NE(pushed, std::string::npos) << plan;
  EXPECT_NE(plan.find("Filter (m.employer = 'Acme')", outer),
            std::string::npos)
      << plan;
  // The pushdown flag gates block pushdown like main-WHERE pushdown.
  const std::string without = Explain(
      "CONSTRUCT (n) MATCH (n:Person) "
      "OPTIONAL (n)-[e:knows]->(m) WHERE m.employer = 'Acme'",
      /*pushdown=*/false);
  EXPECT_EQ(without.find("push={"), std::string::npos) << without;
}

// The plan root advertises the resolved execution degree.
TEST_F(PlannerTest, ExplainShowsParallelism) {
  QueryEngine engine(&catalog);
  engine.set_parallelism(4);
  auto r = engine.Execute("EXPLAIN CONSTRUCT (n) MATCH (n:Person)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::string out;
  for (size_t i = 0; i < r->table->NumRows(); ++i) {
    out += r->table->At(i, 0).AsString() + "\n";
  }
  EXPECT_NE(out.find("Project [n] dedup parallelism=4"), std::string::npos)
      << out;
}

// Direct planner output: estimates are annotated bottom-up and the
// executor runs the plan to the same result as the clause evaluator.
TEST_F(PlannerTest, PlanExecutesThroughExecutor) {
  Matcher matcher = MakeMatcher();
  PlanPtr plan = PlanMatchOf(
      "CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme'", &matcher);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->op, PlanOp::kProject);
  EXPECT_GE(plan->est_rows, 0.0);
  Executor executor(&matcher);
  auto table = executor.Run(*plan);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->NumRows(), 2u);  // John and Alice
  EXPECT_EQ(table->columns(), std::vector<std::string>{"n"});
}

// Graph-level operators refuse binding-level execution.
TEST_F(PlannerTest, GraphUnionIsNotExecutable) {
  Matcher matcher = MakeMatcher();
  PlanPtr plan = MakePlan(PlanOp::kGraphUnion);
  Executor executor(&matcher);
  auto result = executor.Run(*plan);
  EXPECT_FALSE(result.ok());
}

// EXPLAIN never executes: ON-subquery locations and head clauses stay
// unmaterialized and render with unknown cardinality.
TEST_F(PlannerTest, ExplainDoesNotExecuteSubqueries) {
  const std::string plan = Explain(
      "CONSTRUCT (n) "
      "MATCH (n) ON (CONSTRUCT (p) MATCH (p:Person) WHERE p.employer = "
      "'Acme')");
  EXPECT_NE(plan.find("(subquery)"), std::string::npos) << plan;
}

}  // namespace
}  // namespace gcore
