// Threaded-executor determinism: the morsel-parallel pipeline must
// produce the same binding *sets* as the legacy recursive walk at every
// parallelism degree (1 = the serial differential mode, then real worker
// pools). Morsels are shrunk to a few rows so the toy graphs actually
// exercise multi-morsel execution, and a chain-join stress loop hammers
// the worker pool + partitioned join (run under TSAN to check the
// synchronization).
#include <gtest/gtest.h>

#include <algorithm>

#include "engine/engine.h"
#include "eval/matcher.h"
#include "parser/parser.h"
#include "snb/toy_graphs.h"

namespace gcore {
namespace {

/// Order-insensitive canonical form: sorted "col=value" rows over
/// name-sorted columns (computed paths canonicalize to their walk; see
/// differential_test.cc).
std::string CanonicalDatum(const Datum& datum) {
  if (datum.kind() == Datum::Kind::kPath && !datum.path().from_graph) {
    const PathValue& path = datum.path();
    std::string out = "walk(";
    for (NodeId n : path.body.nodes) out += ToString(n) + ",";
    if (path.projection.has_value()) {
      for (NodeId n : path.projection->first) out += ToString(n) + ",";
      out += "|";
      for (EdgeId e : path.projection->second) out += ToString(e) + ",";
    }
    return out + ")";
  }
  return datum.ToString();
}

std::vector<std::string> Canonical(const BindingTable& table) {
  std::vector<std::string> columns = table.columns();
  std::sort(columns.begin(), columns.end());
  std::vector<std::string> rows;
  rows.reserve(table.NumRows());
  for (size_t r = 0; r < table.NumRows(); ++r) {
    std::string row;
    for (const auto& col : columns) {
      row += col + "=" + CanonicalDatum(table.Get(r, col)) + ";";
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

class ParallelExecution : public ::testing::Test {
 protected:
  ParallelExecution() {
    snb::RegisterToyData(&catalog);
    catalog.SetDefaultGraph("social_graph");
  }

  Result<BindingTable> RunMatch(const MatchClause& match, bool use_planner,
                                size_t parallelism, size_t morsel_size) {
    MatcherContext ctx;
    ctx.catalog = &catalog;
    ctx.default_graph = "social_graph";
    ctx.use_planner = use_planner;
    ctx.parallelism = parallelism;
    ctx.morsel_size = morsel_size;
    Matcher matcher(ctx);
    return matcher.EvalMatchClause(match);
  }

  /// Legacy walk vs. the pipeline at parallelism 1 / 2 / 8, forced onto
  /// 2-row morsels: same binding sets everywhere.
  void ExpectSameBindingSets(const std::string& match_query) {
    auto parsed = ParseQuery("CONSTRUCT (z) " + match_query);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    const MatchClause& match = *(*parsed)->body->basic->match;

    auto legacy = RunMatch(match, /*use_planner=*/false, 1, 0);
    ASSERT_TRUE(legacy.ok()) << match_query << ": "
                             << legacy.status().ToString();
    const std::vector<std::string> want = Canonical(*legacy);

    for (size_t parallelism : {size_t{1}, size_t{2}, size_t{8}}) {
      auto planned =
          RunMatch(match, /*use_planner=*/true, parallelism, /*morsel=*/2);
      ASSERT_TRUE(planned.ok())
          << match_query << " @ parallelism " << parallelism << ": "
          << planned.status().ToString();
      EXPECT_EQ(planned->columns(), legacy->columns())
          << match_query << " @ parallelism " << parallelism;
      EXPECT_EQ(Canonical(*planned), want)
          << match_query << " @ parallelism " << parallelism;
    }
  }

  GraphCatalog catalog;
};

TEST_F(ParallelExecution, Scans) {
  ExpectSameBindingSets("MATCH (n)");
  ExpectSameBindingSets("MATCH (n:Person)");
  ExpectSameBindingSets("MATCH (n:Person {employer=e})");
}

TEST_F(ParallelExecution, EdgeHopsAndPushdown) {
  ExpectSameBindingSets("MATCH (n)-[e:knows]->(m)");
  ExpectSameBindingSets("MATCH (n:Person)-[e:knows]-(m:Person)");
  ExpectSameBindingSets(
      "MATCH (n:Person)-[e:knows]->(m) WHERE n.firstName = 'John'");
  ExpectSameBindingSets(
      "MATCH (n:Person)-[:isLocatedIn]->(c)<-[:isLocatedIn]-(m:Person) "
      "WHERE m.employer = 'Acme'");
}

TEST_F(ParallelExecution, JoinsAcrossChains) {
  ExpectSameBindingSets(
      "MATCH (c:Company) ON company_graph, (n:Person) ON social_graph "
      "WHERE c.name = n.employer");
  ExpectSameBindingSets(
      "MATCH (n:Person), (m:Person) WHERE n.employer = m.employer");
}

TEST_F(ParallelExecution, PathModes) {
  ExpectSameBindingSets("MATCH (n:Person)-/<:knows*>/->(m:Person)");
  ExpectSameBindingSets(
      "MATCH (n)-/3 SHORTEST p<:knows*> COST c/->(m) "
      "WHERE n.firstName = 'John'");
  // No pushed source filter: every person seeds a search, so 2-row
  // morsels put the SHORTEST stage (and its fresh-path-id range
  // reservation + morsel-order remap) on the worker pool.
  ExpectSameBindingSets("MATCH (n:Person)-/2 SHORTEST p<:knows*>/->(m)");
}

TEST_F(ParallelExecution, OptionalsWithBlockWhere) {
  ExpectSameBindingSets("MATCH (n:Person) OPTIONAL (n)-[e:knows]->(m)");
  ExpectSameBindingSets(
      "MATCH (n:Person) OPTIONAL (n)-[e:knows]->(m) "
      "WHERE m.employer = 'Acme'");
  ExpectSameBindingSets(
      "MATCH (n:Person) OPTIONAL (n)-[:isLocatedIn]->(c) "
      "OPTIONAL (n)-[:hasInterest]->(t)");
}

TEST_F(ParallelExecution, ReentrantPredicatesStaySerialButCorrect) {
  // Pattern predicates re-enter the matcher; the pipeline must detect
  // that and keep those stages off the worker pool at any degree.
  ExpectSameBindingSets(
      "MATCH (m:Person), (n:Person) "
      "WHERE n.firstName = 'John' "
      "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)");
}

// Fresh path identifiers must come out *identical* to a serial run at
// every degree — including the gaps a pushed filter leaves behind
// (serial allocation draws an id for every expanded row, then drops the
// filtered ones). Canonical() deliberately ignores computed-path ids,
// so this pins them directly, on a fresh catalog per degree.
TEST_F(ParallelExecution, PathSearchIdsDeterministicUnderFilter) {
  auto parsed = ParseQuery(
      "CONSTRUCT (z) MATCH (n:Person)-/2 SHORTEST p<:knows*>/->(m) "
      "WHERE m.firstName = 'John'");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const MatchClause& match = *(*parsed)->body->basic->match;

  auto ids_at = [&](size_t parallelism) {
    GraphCatalog fresh;
    snb::RegisterToyData(&fresh);
    MatcherContext ctx;
    ctx.catalog = &fresh;
    ctx.default_graph = "social_graph";
    ctx.use_planner = true;
    ctx.parallelism = parallelism;
    ctx.morsel_size = 2;
    Matcher matcher(ctx);
    auto table = matcher.EvalMatchClause(match);
    EXPECT_TRUE(table.ok()) << table.status().ToString();
    std::vector<PathId> ids;
    for (size_t r = 0; r < table->NumRows(); ++r) {
      const Datum d = table->Get(r, "p");
      if (d.kind() == Datum::Kind::kPath) ids.push_back(d.path().id);
    }
    return ids;
  };

  const std::vector<PathId> serial = ids_at(1);
  ASSERT_FALSE(serial.empty());
  for (size_t parallelism : {size_t{2}, size_t{8}}) {
    EXPECT_EQ(ids_at(parallelism), serial) << "degree " << parallelism;
  }
}

// A 4-chain join at degree 8 on 1-row morsels, repeated: the worker
// pool + ordered reassembly + partitioned join must give a stable
// result every iteration (TSAN-friendly stress).
TEST_F(ParallelExecution, ChainJoinStress) {
  auto parsed = ParseQuery(
      "CONSTRUCT (z) "
      "MATCH (a:Person)-[:knows]->(b), (b)-[:knows]->(c), "
      "(c)-[:knows]->(d), (d)-[:knows]->(a)");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const MatchClause& match = *(*parsed)->body->basic->match;

  auto reference = RunMatch(match, /*use_planner=*/false, 1, 0);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  const std::vector<std::string> want = Canonical(*reference);

  for (int iter = 0; iter < 20; ++iter) {
    auto got = RunMatch(match, /*use_planner=*/true, 8, /*morsel=*/1);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(Canonical(*got), want) << "iteration " << iter;
  }
}

// Engine-level: the knobs thread through QueryEngine and full queries
// (construction, tabular extension) give identical results at every
// degree.
TEST_F(ParallelExecution, EngineKnobs) {
  auto run = [](size_t parallelism) -> Result<QueryResult> {
    GraphCatalog catalog;
    snb::RegisterToyData(&catalog);
    QueryEngine engine(&catalog);
    engine.set_parallelism(parallelism);
    engine.set_morsel_size(2);
    return engine.Execute(
        "SELECT c.name AS company, n.firstName AS person "
        "MATCH (c:Company) ON company_graph, (n:Person) ON social_graph "
        "WHERE c.name = n.employer ORDER BY n.firstName");
  };
  auto serial = run(1);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  for (size_t parallelism : {size_t{2}, size_t{8}}) {
    auto parallel = run(parallelism);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_EQ(parallel->table->ToString(), serial->table->ToString())
        << "parallelism " << parallelism;
  }
}

}  // namespace
}  // namespace gcore
