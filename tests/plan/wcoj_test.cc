// Join-subsystem tests for the bushy/WCOJ refactor: plan-shape goldens
// (triangle/diamond → MultiwayExpand, bushy DP trees, build-side swap),
// differential pins of MultiwayExpand output against the legacy walk and
// the binary-join plan at parallelism 1/2/8, determinism of the multiway
// operator under the morsel protocol, the EXPLAIN ANALYZE intermediate
// comparison of the acceptance criteria, max-degree bound fallbacks, and
// the parallel LeftOuterJoin composition.
#include <gtest/gtest.h>

#include <algorithm>
#include <regex>

#include "engine/engine.h"
#include "eval/binding_ops.h"
#include "eval/matcher.h"
#include "graph/graph_builder.h"
#include "parser/parser.h"
#include "plan/cost.h"
#include "plan/planner.h"
#include "snb/toy_graphs.h"

namespace gcore {
namespace {

/// "cyc": a 40-node directed ring where node i points at i+1 and i+2
/// (labels :P, edges :e — 80 edges, zero ring triangles because three
/// hops of +1/+2 never wrap), plus five disjoint directed triangles of
/// fresh :P nodes. Max out/in degree 2, so the multiway degree bound
/// (N·2·2 for a triangle) undercuts the binary plan's wedge intermediate
/// (~|E|²/N), which is what makes the rewrite fire.
void RegisterCycleGraph(GraphCatalog* catalog) {
  GraphBuilder b("cyc", catalog->ids());
  b.EnableStatsCollection();
  std::vector<NodeId> ring;
  for (int i = 0; i < 40; ++i) ring.push_back(b.AddNode({"P"}));
  for (int i = 0; i < 40; ++i) {
    b.AddEdge(ring[i], ring[(i + 1) % 40], "e");
    b.AddEdge(ring[i], ring[(i + 2) % 40], "e");
  }
  for (int t = 0; t < 5; ++t) {
    const NodeId t1 = b.AddNode({"P"});
    const NodeId t2 = b.AddNode({"P"});
    const NodeId t3 = b.AddNode({"P"});
    b.AddEdge(t1, t2, "e");
    b.AddEdge(t2, t3, "e");
    b.AddEdge(t3, t1, "e");
  }
  GraphStats stats = b.Stats();
  catalog->RegisterGraph("cyc", b.Build(), std::move(stats));
}

constexpr const char* kTriangleQuery =
    "CONSTRUCT (a) MATCH (a:P)-[x:e]->(b:P), (b)-[y:e]->(c:P), "
    "(c)-[z:e]->(a)";
constexpr const char* kSingleChainTriangle =
    "CONSTRUCT (a) MATCH (a:P)-[x:e]->(b:P)-[y:e]->(c:P)-[z:e]->(a)";
constexpr const char* kDiamondQuery =
    "CONSTRUCT (a) MATCH (a:P)-[w:e]->(b:P), (b)-[x:e]->(c:P), "
    "(a)-[y:e]->(d:P), (d)-[z:e]->(c)";

/// Order-insensitive canonical form (differential comparisons).
std::vector<std::string> Canonical(const BindingTable& table) {
  std::vector<std::string> columns = table.columns();
  std::sort(columns.begin(), columns.end());
  std::vector<std::string> rows;
  rows.reserve(table.NumRows());
  for (size_t r = 0; r < table.NumRows(); ++r) {
    std::string row;
    for (const auto& col : columns) {
      row += col + "=" + table.Get(r, col).ToString() + ";";
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

class WcojTest : public ::testing::Test {
 protected:
  WcojTest() {
    RegisterCycleGraph(&catalog);
    catalog.SetDefaultGraph("cyc");
  }

  std::string Explain(const std::string& query, bool multiway = true,
                      bool reorder = true, bool analyze = false) {
    QueryEngine engine(&catalog);
    engine.set_enable_multiway(multiway);
    engine.set_reorder_joins(reorder);
    auto r = engine.Execute(
        std::string(analyze ? "EXPLAIN ANALYZE " : "EXPLAIN ") + query);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) return "";
    std::string out;
    for (size_t i = 0; i < r->table->NumRows(); ++i) {
      out += r->table->At(i, 0).AsString() + "\n";
    }
    return out;
  }

  /// MATCH bindings under an explicit configuration.
  Result<BindingTable> Bindings(const std::string& query, bool use_planner,
                                bool multiway, size_t parallelism,
                                size_t morsel_size = 0) {
    auto parsed = ParseQuery(query);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    parsed_.push_back(std::move(*parsed));
    MatcherContext ctx;
    ctx.catalog = &catalog;
    ctx.default_graph = "cyc";
    ctx.use_planner = use_planner;
    ctx.enable_multiway = multiway;
    ctx.parallelism = parallelism;
    ctx.morsel_size = morsel_size;
    Matcher matcher(ctx);
    return matcher.EvalMatchClause(*parsed_.back()->body->basic->match);
  }

  GraphCatalog catalog;
  std::vector<std::unique_ptr<Query>> parsed_;
};

// --- plan-shape goldens ------------------------------------------------------

TEST_F(WcojTest, TrianglePlanUsesMultiwayExpand) {
  const std::string plan = Explain(kTriangleQuery);
  EXPECT_NE(plan.find("MultiwayExpand cycle=["), std::string::npos) << plan;
  EXPECT_EQ(plan.find("HashJoin"), std::string::npos) << plan;
  // The seed scan survives below the cycle and the node carries an
  // estimate like any other operator.
  EXPECT_NE(plan.find("NodeScan (a:P)"), std::string::npos) << plan;
  std::smatch m;
  ASSERT_TRUE(std::regex_search(
      plan, m, std::regex(R"(MultiwayExpand[^\n]*est_rows=)")))
      << plan;
}

TEST_F(WcojTest, SingleChainTrianglePlanUsesMultiwayExpand) {
  const std::string plan = Explain(kSingleChainTriangle);
  EXPECT_NE(plan.find("MultiwayExpand"), std::string::npos) << plan;
  EXPECT_EQ(plan.find("ExpandEdge"), std::string::npos) << plan;
}

TEST_F(WcojTest, DiamondPlanUsesMultiwayExpand) {
  const std::string plan = Explain(kDiamondQuery);
  EXPECT_NE(plan.find("MultiwayExpand"), std::string::npos) << plan;
  EXPECT_EQ(plan.find("HashJoin"), std::string::npos) << plan;
}

// The flags reproduce the binary planner: enable_multiway=false ablates
// only the rewrite; reorder_joins=false reproduces the seed's
// source-order left-deep chain.
TEST_F(WcojTest, FlagsDisableTheRewrite) {
  const std::string binary = Explain(kTriangleQuery, /*multiway=*/false);
  EXPECT_EQ(binary.find("MultiwayExpand"), std::string::npos) << binary;
  EXPECT_NE(binary.find("HashJoin"), std::string::npos) << binary;

  const std::string seed =
      Explain(kTriangleQuery, /*multiway=*/true, /*reorder=*/false);
  EXPECT_EQ(seed.find("MultiwayExpand"), std::string::npos) << seed;
  EXPECT_NE(seed.find("HashJoin"), std::string::npos) << seed;
}

// Stats-absent locations keep the seed plan shape: no estimates, no
// rewrite, source-order left-deep joins.
TEST_F(WcojTest, UnknownGraphKeepsBinaryPlan) {
  const std::string plan = Explain(
      "CONSTRUCT (a) MATCH (a:P)-[x:e]->(b:P) ON nowhere, "
      "(b)-[y:e]->(c:P) ON nowhere, (c)-[z:e]->(a) ON nowhere");
  EXPECT_EQ(plan.find("MultiwayExpand"), std::string::npos) << plan;
  EXPECT_NE(plan.find("HashJoin"), std::string::npos) << plan;
}

// --- differential pins -------------------------------------------------------

// MultiwayExpand output == legacy tree-walk == binary-join plan, as sets,
// with identical schemas, at every parallelism degree (1-row morsels
// force real multi-morsel execution on the toy data).
TEST_F(WcojTest, TriangleDifferentialAcrossEnginesAndParallelism) {
  for (const char* query :
       {kTriangleQuery, kSingleChainTriangle, kDiamondQuery}) {
    auto legacy = Bindings(query, /*use_planner=*/false, false, 1);
    ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
    auto binary = Bindings(query, /*use_planner=*/true, false, 1);
    ASSERT_TRUE(binary.ok()) << binary.status().ToString();
    EXPECT_EQ(Canonical(*legacy), Canonical(*binary)) << query;
    EXPECT_FALSE(legacy->Empty()) << query;  // the closures guarantee hits
    for (size_t parallelism : {size_t{1}, size_t{2}, size_t{8}}) {
      auto multiway = Bindings(query, /*use_planner=*/true, true,
                               parallelism, /*morsel_size=*/2);
      ASSERT_TRUE(multiway.ok()) << multiway.status().ToString();
      EXPECT_EQ(multiway->columns(), legacy->columns())
          << query << " p=" << parallelism;
      EXPECT_EQ(Canonical(*multiway), Canonical(*legacy))
          << query << " p=" << parallelism;
    }
  }
}

// Reversed (<-) and undirected (-[]-) cycle edges exercise the In-span
// and merged-span arms of the intersection; the rewrite fires (the
// bounds are direction-symmetric / sum both spans) and output matches
// the legacy walk and the binary plan.
TEST_F(WcojTest, ReversedAndUndirectedCyclesDifferential) {
  const char* reversed =
      "CONSTRUCT (a) MATCH (a:P)<-[x:e]-(b:P), (b)<-[y:e]-(c:P), "
      "(c)<-[z:e]-(a)";
  const char* undirected =
      "CONSTRUCT (a) MATCH (a:P)-[x:e]-(b:P), (b)-[y:e]-(c:P), "
      "(c)-[z:e]-(a)";
  for (const char* query : {reversed, undirected}) {
    const std::string plan = Explain(query);
    EXPECT_NE(plan.find("MultiwayExpand"), std::string::npos)
        << query << "\n" << plan;
    auto legacy = Bindings(query, /*use_planner=*/false, false, 1);
    auto binary = Bindings(query, /*use_planner=*/true, false, 1);
    ASSERT_TRUE(legacy.ok() && binary.ok()) << query;
    EXPECT_FALSE(legacy->Empty()) << query;
    EXPECT_EQ(Canonical(*legacy), Canonical(*binary)) << query;
    for (size_t parallelism : {size_t{1}, size_t{8}}) {
      auto multiway = Bindings(query, /*use_planner=*/true, true,
                               parallelism, /*morsel_size=*/2);
      ASSERT_TRUE(multiway.ok()) << multiway.status().ToString();
      EXPECT_EQ(multiway->columns(), legacy->columns()) << query;
      EXPECT_EQ(Canonical(*multiway), Canonical(*legacy))
          << query << " p=" << parallelism;
    }
  }
}

// The operator's output is deterministic row-for-row (not only as a
// set) across parallelism degrees — candidates ascend by node id, edge
// bindings by edge id, morsels reassemble in input order.
TEST_F(WcojTest, MultiwayOutputDeterministicAcrossParallelism) {
  auto p1 = Bindings(kTriangleQuery, true, true, 1, 2);
  auto p2 = Bindings(kTriangleQuery, true, true, 2, 2);
  auto p8 = Bindings(kTriangleQuery, true, true, 8, 2);
  ASSERT_TRUE(p1.ok() && p2.ok() && p8.ok());
  EXPECT_EQ(p1->ToString(), p2->ToString());
  EXPECT_EQ(p1->ToString(), p8->ToString());
}

// Acceptance: on the triangle, the multiway plan's measured intermediate
// (MultiwayExpand actual_rows) undercuts the binary plan's largest
// intermediate (the wedge join), and both agree on the final count.
TEST_F(WcojTest, AnalyzeShowsMultiwayBeatsBinaryIntermediates) {
  const std::string multiway =
      Explain(kTriangleQuery, true, true, /*analyze=*/true);
  const std::string binary =
      Explain(kTriangleQuery, false, true, /*analyze=*/true);

  auto actuals = [](const std::string& plan, const char* op) {
    std::vector<int64_t> out;
    std::regex pattern(std::string(op) + R"([^\n]*actual_rows=(\d+))");
    for (std::sregex_iterator it(plan.begin(), plan.end(), pattern), end;
         it != end; ++it) {
      out.push_back(std::stoll((*it)[1]));
    }
    return out;
  };
  const auto multi_rows = actuals(multiway, "MultiwayExpand");
  ASSERT_EQ(multi_rows.size(), 1u) << multiway;
  const auto join_rows = actuals(binary, "HashJoin");
  ASSERT_FALSE(join_rows.empty()) << binary;
  const int64_t binary_peak =
      *std::max_element(join_rows.begin(), join_rows.end());
  EXPECT_LT(multi_rows[0], binary_peak) << multiway << "\n" << binary;

  // Same final Project count either way.
  const auto multi_final = actuals(multiway, "Project");
  const auto binary_final = actuals(binary, "Project");
  ASSERT_EQ(multi_final.size(), 1u);
  ASSERT_EQ(binary_final.size(), 1u);
  EXPECT_EQ(multi_final[0], binary_final[0]);
}

// --- max-degree bound fallbacks ----------------------------------------------

// Statistics without measured maxima (e.g. seeded from an older
// collector) degrade the degree bound to averages: the rewrite still
// prices and fires, just less tightly.
TEST_F(WcojTest, RewriteSurvivesMissingMaxDegreeBuckets) {
  GraphCatalog doctored;
  GraphBuilder b("cyc", doctored.ids());
  b.EnableStatsCollection();
  std::vector<NodeId> ring;
  for (int i = 0; i < 40; ++i) ring.push_back(b.AddNode({"P"}));
  for (int i = 0; i < 40; ++i) {
    b.AddEdge(ring[i], ring[(i + 1) % 40], "e");
    b.AddEdge(ring[i], ring[(i + 2) % 40], "e");
  }
  GraphStats stats = b.Stats();
  stats.out_degree_max.clear();
  stats.in_degree_max.clear();
  doctored.RegisterGraph("cyc", b.Build(), std::move(stats));
  doctored.SetDefaultGraph("cyc");
  QueryEngine engine(&doctored);
  auto r = engine.Execute(std::string("EXPLAIN ") + kTriangleQuery);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::string plan;
  for (size_t i = 0; i < r->table->NumRows(); ++i) {
    plan += r->table->At(i, 0).AsString() + "\n";
  }
  EXPECT_NE(plan.find("MultiwayExpand"), std::string::npos) << plan;
}

// --- bushy enumeration -------------------------------------------------------

// Two strongly-reducing clusters joined by a cross product: the DP emits
// the bushy tree (join of joins) instead of a left-deep chain, because
// either left-deep interleaving pays a far larger intermediate.
TEST(BushyJoinTest, TwoClustersProduceABushyTree) {
  GraphCatalog catalog;
  GraphBuilder b("bushy", catalog.ids());
  b.EnableStatsCollection();
  // Cluster 1: 100 :S --:p--> 100 :M --:q--> :U nodes carrying u = i % 5
  // (the u = 1 filter keeps ~20); cluster 2 mirrors it over :T/:N/:V.
  // Each cluster join shrinks (≈3 rows estimated), while interleaving
  // the clusters pays the unfiltered cross products — so C_out favors
  // (c1 ⋈ c2) × (c3 ⋈ c4), the bushy shape.
  for (int i = 0; i < 100; ++i) {
    const NodeId s = b.AddNode({"S"});
    const NodeId m = b.AddNode({"M"});
    const NodeId u = b.AddNode({"U"}, {{"u", int64_t{i % 5}}});
    b.AddEdge(s, m, "p");
    b.AddEdge(m, u, "q");
  }
  for (int i = 0; i < 100; ++i) {
    const NodeId t = b.AddNode({"T"});
    const NodeId n = b.AddNode({"N"});
    const NodeId v = b.AddNode({"V"}, {{"v", int64_t{i % 5}}});
    b.AddEdge(t, n, "r");
    b.AddEdge(n, v, "s");
  }
  GraphStats stats = b.Stats();
  catalog.RegisterGraph("bushy", b.Build(), std::move(stats));
  catalog.SetDefaultGraph("bushy");

  auto parsed = ParseQuery(
      "CONSTRUCT (a) MATCH (a:S)-[:p]->(m:M), (m:M)-[:q]->(c:U {u=1}), "
      "(t:T)-[:r]->(n:N), (n:N)-[:s]->(f:V {v=1})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  MatcherContext ctx;
  ctx.catalog = &catalog;
  ctx.default_graph = "bushy";
  Matcher matcher(ctx);
  Planner planner(&matcher, PlannerOptions::FromContext(ctx));
  auto plan = planner.PlanMatch(*(*parsed)->body->basic->match);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  const PlanNode* node = plan->get();
  while (node->op != PlanOp::kHashJoin) {
    ASSERT_FALSE(node->children.empty());
    node = node->children[0].get();
  }
  // Bushy: both inputs of the top join are joins themselves.
  EXPECT_EQ(node->children[0]->op, PlanOp::kHashJoin) << (*plan)->ToString();
  EXPECT_EQ(node->children[1]->op, PlanOp::kHashJoin) << (*plan)->ToString();

  // And the bushy plan computes the same bindings as the legacy walk.
  auto via_plan = matcher.EvalMatchClause(*(*parsed)->body->basic->match);
  ASSERT_TRUE(via_plan.ok()) << via_plan.status().ToString();
  MatcherContext legacy_ctx = ctx;
  legacy_ctx.use_planner = false;
  Matcher legacy(legacy_ctx);
  auto via_walk = legacy.EvalMatchClause(*(*parsed)->body->basic->match);
  ASSERT_TRUE(via_walk.ok()) << via_walk.status().ToString();
  EXPECT_EQ(via_plan->columns(), via_walk->columns());
  EXPECT_EQ(Canonical(*via_plan), Canonical(*via_walk));
}

// --- build-side swap ---------------------------------------------------------

class BuildSideTest : public ::testing::Test {
 protected:
  BuildSideTest() {
    GraphBuilder b("skew", catalog.ids());
    b.EnableStatsCollection();
    // 4 :Small nodes vs 200 :Big nodes sharing the key k — the Big chain
    // is ≫ 4× the Small chain, which trips the swap rule.
    for (int i = 0; i < 4; ++i) {
      b.AddNode({"Small"}, {{"k", int64_t{i}}});
    }
    for (int i = 0; i < 200; ++i) {
      b.AddNode({"Big"}, {{"k", int64_t{i % 4}}});
    }
    GraphStats stats = b.Stats();
    catalog.RegisterGraph("skew", b.Build(), std::move(stats));
    catalog.SetDefaultGraph("skew");
  }

  Result<QueryResult> Run(const std::string& query, bool choose_build) {
    QueryEngine engine(&catalog);
    engine.set_choose_build_side(choose_build);
    return engine.Execute(query);
  }

  GraphCatalog catalog;
};

TEST_F(BuildSideTest, SkewedJoinMarksSwapBuildAndPreservesResults) {
  const std::string query =
      "SELECT s.k AS k MATCH (s:Small), (g:Big) WHERE s.k = g.k "
      "ORDER BY k";
  auto with = Run("EXPLAIN " + query, true);
  ASSERT_TRUE(with.ok()) << with.status().ToString();
  std::string plan;
  for (size_t i = 0; i < with->table->NumRows(); ++i) {
    plan += with->table->At(i, 0).AsString() + "\n";
  }
  EXPECT_NE(plan.find("HashJoin swap_build"), std::string::npos) << plan;

  auto without_flag = Run("EXPLAIN " + query, false);
  ASSERT_TRUE(without_flag.ok());
  std::string base;
  for (size_t i = 0; i < without_flag->table->NumRows(); ++i) {
    base += without_flag->table->At(i, 0).AsString() + "\n";
  }
  EXPECT_EQ(base.find("swap_build"), std::string::npos) << base;

  // Identical results either way (canonical column order re-merged).
  auto swapped = Run(query, true);
  auto plain = Run(query, false);
  ASSERT_TRUE(swapped.ok() && plain.ok());
  Table a = std::move(*swapped->table);
  Table c = std::move(*plain->table);
  a.SortRows();
  c.SortRows();
  EXPECT_EQ(a.ToString(), c.ToString());
}

// --- parallel left outer join ------------------------------------------------

TEST(ParallelLeftOuterJoinTest, MatchesSerialCompositionExactly) {
  // Tables with matching and non-matching rows and a heavy shared column.
  BindingTable a({"x", "y"});
  BindingTable b({"y", "z"});
  for (uint64_t i = 0; i < 64; ++i) {
    Status st = a.AddRow({Datum::OfNode(NodeId(i)),
                          Datum::OfNode(NodeId(1000 + i % 8))});
    ASSERT_TRUE(st.ok());
  }
  for (uint64_t j = 0; j < 5; ++j) {
    Status st = b.AddRow({Datum::OfNode(NodeId(1000 + j)),
                          Datum::OfNode(NodeId(2000 + j))});
    ASSERT_TRUE(st.ok());
  }
  const BindingTable serial = TableLeftOuterJoin(a, b);
  EXPECT_FALSE(serial.Empty());
  for (size_t parallelism : {size_t{1}, size_t{2}, size_t{8}}) {
    const BindingTable parallel =
        TableLeftOuterJoinParallel(a, b, parallelism, /*morsel_rows=*/4);
    EXPECT_EQ(parallel.ToString(), serial.ToString())
        << "parallelism=" << parallelism;
  }
}

// TableJoinSwapBuild produces the same set as TableJoin with canonical
// schema and provenance (only row order may differ).
TEST(SwapBuildJoinTest, CanonicalSchemaAndSameRowSet) {
  BindingTable a({"x", "y"});
  a.SetColumnGraph("x", "ga");
  a.SetColumnGraph("y", "ga");
  BindingTable b({"y", "z"});
  b.SetColumnGraph("y", "gb");
  b.SetColumnGraph("z", "gb");
  for (uint64_t i = 0; i < 30; ++i) {
    Status st = a.AddRow({Datum::OfNode(NodeId(i)),
                          Datum::OfNode(NodeId(100 + i % 4))});
    ASSERT_TRUE(st.ok());
  }
  for (uint64_t j = 0; j < 12; ++j) {
    Status st = b.AddRow({Datum::OfNode(NodeId(100 + j % 6)),
                          Datum::OfNode(NodeId(200 + j))});
    ASSERT_TRUE(st.ok());
  }
  const BindingTable plain = TableJoin(a, b);
  const BindingTable swapped = TableJoinSwapBuild(a, b, 2, 4);
  EXPECT_EQ(swapped.columns(), plain.columns());
  EXPECT_EQ(swapped.ColumnGraph("y"), plain.ColumnGraph("y"));
  EXPECT_EQ(swapped.ColumnGraph("z"), plain.ColumnGraph("z"));
  EXPECT_EQ(Canonical(swapped), Canonical(plain));
  EXPECT_EQ(swapped.NumRows(), plain.NumRows());
}

}  // namespace
}  // namespace gcore
