// Unit tests for the cardinality estimator (plan/cost.h) — the first
// direct coverage of every estimator path: label selectivity (including
// the multi-label double-count regression), property equality vs
// 1/distinct, min/max range interpolation, degree-based expansion, the
// degree-aware join bound, and the no-stats fallback constants.
#include "plan/cost.h"

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "eval/matcher.h"
#include "graph/graph_builder.h"
#include "parser/parser.h"
#include "plan/planner.h"

namespace gcore {
namespace {

/// Test graph "g": 20 :A nodes with k = i%5 (5 distinct) and v = i
/// (distinct 20, range [0, 19]); 10 :B nodes (no properties); per A one
/// :link edge and four :link2 edges to B nodes; per B three :hop edges
/// to A nodes. Registered with the builder's incremental statistics.
void RegisterTestGraph(GraphCatalog* catalog) {
  GraphBuilder b("g", catalog->ids());
  b.EnableStatsCollection();
  std::vector<NodeId> as;
  std::vector<NodeId> bs;
  for (int i = 0; i < 20; ++i) {
    as.push_back(
        b.AddNode({"A"}, {{"k", int64_t{i % 5}}, {"v", int64_t{i}}}));
  }
  for (int i = 0; i < 10; ++i) bs.push_back(b.AddNode({"B"}));
  for (int i = 0; i < 20; ++i) {
    b.AddEdge(as[i], bs[i % 10], "link");
    for (int j = 0; j < 4; ++j) {
      b.AddEdge(as[i], bs[(i + j) % 10], "link2");
    }
  }
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 3; ++j) {
      b.AddEdge(bs[i], as[(3 * i + j) % 20], "hop");
    }
  }
  GraphStats stats = b.Stats();
  catalog->RegisterGraph("g", b.Build(), std::move(stats));
}

constexpr double kNodes = 30.0;   // 20 A + 10 B
constexpr double kASel = 20.0 / 30.0;
constexpr double kBSel = 10.0 / 30.0;

class CostTest : public ::testing::Test {
 protected:
  CostTest() {
    RegisterTestGraph(&catalog);
    catalog.SetDefaultGraph("g");
  }

  /// Plans the MATCH clause of `query` and annotates estimates.
  PlanPtr Plan(const std::string& query, bool use_column_stats = true) {
    auto parsed = ParseQuery(query);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    if (!parsed.ok()) return nullptr;
    parsed_queries_.push_back(std::move(*parsed));
    MatcherContext ctx;
    ctx.catalog = &catalog;
    ctx.default_graph = "g";
    ctx.use_column_stats = use_column_stats;
    Matcher matcher(ctx);
    Planner planner(&matcher, PlannerOptions::FromContext(ctx));
    auto plan =
        planner.PlanMatch(*parsed_queries_.back()->body->basic->match);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    if (!plan.ok()) return nullptr;
    planner.AnnotateEstimates(plan->get());
    return std::move(*plan);
  }

  /// First operator of kind `op` in pre-order.
  static const PlanNode* FindOp(const PlanNode* node, PlanOp op) {
    if (node == nullptr) return nullptr;
    if (node->op == op) return node;
    for (const auto& child : node->children) {
      const PlanNode* found = FindOp(child.get(), op);
      if (found != nullptr) return found;
    }
    return nullptr;
  }

  GraphCatalog catalog;
  std::vector<std::unique_ptr<Query>> parsed_queries_;
};

// --- label selectivity -------------------------------------------------------

TEST_F(CostTest, LabelSelectivityFromCounts) {
  PlanPtr plan = Plan("CONSTRUCT (a) MATCH (a:A)");
  ASSERT_NE(plan, nullptr);
  const PlanNode* scan = FindOp(plan.get(), PlanOp::kNodeScan);
  ASSERT_NE(scan, nullptr);
  EXPECT_NEAR(scan->est_rows, 20.0, 1e-9);
  PlanPtr plan_b = Plan("CONSTRUCT (b) MATCH (b:B)");
  EXPECT_NEAR(FindOp(plan_b.get(), PlanOp::kNodeScan)->est_rows, 10.0, 1e-9);
}

// Regression (seed bug): a disjunctive group over co-occurring labels
// summed per-label counts, exceeding the object count before the clamp.
// The independence-union formula keeps the fraction strictly below 1.
TEST_F(CostTest, LabelSelectivityMultiLabelGroupDoesNotDoubleCount) {
  std::map<std::string, size_t> counts{{"X", 8}, {"Y", 8}};
  const double sel =
      CardinalityEstimator::LabelSelectivity({{"X", "Y"}}, counts, 10);
  // 1 - (1 - 0.8)² = 0.96 — NOT the saturated min(1, 16/10) = 1.0.
  EXPECT_NEAR(sel, 0.96, 1e-12);
  EXPECT_LT(sel, 1.0);
  // Single labels stay the exact fraction; conjunctions multiply.
  EXPECT_NEAR(CardinalityEstimator::LabelSelectivity({{"X"}}, counts, 10),
              0.8, 1e-12);
  EXPECT_NEAR(
      CardinalityEstimator::LabelSelectivity({{"X"}, {"Y"}}, counts, 10),
      0.64, 1e-12);
  // Unknown labels and empty totals degrade to zero; no groups pass all.
  EXPECT_EQ(CardinalityEstimator::LabelSelectivity({{"Z"}}, counts, 10),
            0.0);
  EXPECT_EQ(CardinalityEstimator::LabelSelectivity({{"X"}}, counts, 0),
            0.0);
  EXPECT_EQ(CardinalityEstimator::LabelSelectivity({}, counts, 10), 1.0);
}

TEST_F(CostTest, MultiLabelScanUsesUnionFormula) {
  // A dedicated graph where 8 of 10 nodes carry both X and Y.
  GraphBuilder b("ml", catalog.ids());
  b.EnableStatsCollection();
  for (int i = 0; i < 8; ++i) b.AddNode({"X", "Y"});
  for (int i = 0; i < 2; ++i) b.AddNode();
  GraphStats stats = b.Stats();
  catalog.RegisterGraph("ml", b.Build(), std::move(stats));
  PlanPtr plan = Plan("CONSTRUCT (m) MATCH (m:X|Y) ON ml");
  ASSERT_NE(plan, nullptr);
  const PlanNode* scan = FindOp(plan.get(), PlanOp::kNodeScan);
  ASSERT_NE(scan, nullptr);
  EXPECT_NEAR(scan->est_rows, 10.0 * 0.96, 1e-9);  // seed formula said 10
}

// --- property equality -------------------------------------------------------

TEST_F(CostTest, PatternPropertyFilterUsesOneOverDistinct) {
  PlanPtr plan = Plan("CONSTRUCT (a) MATCH (a:A {k=2})");
  ASSERT_NE(plan, nullptr);
  const PlanNode* scan = FindOp(plan.get(), PlanOp::kNodeScan);
  // The (label, key) bucket removes the old carrying-fraction ×
  // label-fraction double-charge: every :A node carries k, so the
  // estimate is 30 × P(:A) × (carrying 20/20) × 1/5 distinct = 4 — the
  // true count — not the seed's 30 × P(:A) × (20/30) × 1/5 ≈ 2.67.
  EXPECT_NEAR(scan->est_rows, kNodes * kASel * (1.0 / 5.0), 1e-9);
}

TEST_F(CostTest, PushedEqualityUsesOneOverDistinct) {
  PlanPtr plan = Plan("CONSTRUCT (a) MATCH (a:A) WHERE a.k = 2");
  ASSERT_NE(plan, nullptr);
  const PlanNode* scan = FindOp(plan.get(), PlanOp::kNodeScan);
  ASSERT_FALSE(scan->pushed.empty());
  // Label-restricted bucket, as above: 20 × 1/5 = 4, the exact count.
  EXPECT_NEAR(scan->est_rows, kNodes * kASel * (1.0 / 5.0), 1e-9);
  // The residual filter re-checks the pushed conjunct: no further
  // reduction is charged.
  const PlanNode* filter = FindOp(plan.get(), PlanOp::kFilter);
  ASSERT_NE(filter, nullptr);
  EXPECT_NEAR(filter->est_rows, scan->est_rows, 1e-9);
}

// A pattern without a pinned label keeps the global per-key distribution
// (the carrying fraction is then genuinely informative).
TEST_F(CostTest, UnlabeledPropertyFilterUsesGlobalDistribution) {
  PlanPtr plan = Plan("CONSTRUCT (a) MATCH (a {k=2})");
  ASSERT_NE(plan, nullptr);
  const PlanNode* scan = FindOp(plan.get(), PlanOp::kNodeScan);
  // 30 × (carrying 20/30) × 1/5.
  EXPECT_NEAR(scan->est_rows, kNodes * kASel * (1.0 / 5.0), 1e-9);
}

// --- range interpolation -----------------------------------------------------

TEST_F(CostTest, RangePredicateInterpolatesMinMax) {
  PlanPtr below = Plan("CONSTRUCT (a) MATCH (a:A) WHERE a.v < 10");
  ASSERT_NE(below, nullptr);
  const PlanNode* scan = FindOp(below.get(), PlanOp::kNodeScan);
  // v spans [0, 19] and every :A node carries it (the label bucket's
  // carrying fraction is 1): fraction (10-0)/19 of the 20 :A nodes.
  EXPECT_NEAR(scan->est_rows, kNodes * kASel * (10.0 / 19.0), 1e-9);
  PlanPtr above = Plan("CONSTRUCT (a) MATCH (a:A) WHERE a.v >= 10");
  EXPECT_NEAR(FindOp(above.get(), PlanOp::kNodeScan)->est_rows,
              kNodes * kASel * (9.0 / 19.0), 1e-9);
  // Literal-on-the-left comparisons flip: 10 > a.v  ⇔  a.v < 10.
  PlanPtr flipped = Plan("CONSTRUCT (a) MATCH (a:A) WHERE 10 > a.v");
  EXPECT_NEAR(FindOp(flipped.get(), PlanOp::kNodeScan)->est_rows,
              kNodes * kASel * (10.0 / 19.0), 1e-9);
  // Out-of-range constants clamp to the full carrying fraction.
  PlanPtr all = Plan("CONSTRUCT (a) MATCH (a:A) WHERE a.v < 100");
  EXPECT_NEAR(FindOp(all.get(), PlanOp::kNodeScan)->est_rows,
              kNodes * kASel, 1e-9);
}

// --- degree-based expansion --------------------------------------------------

TEST_F(CostTest, ExpansionUsesMeasuredOutDegree) {
  PlanPtr plan = Plan("CONSTRUCT (b) MATCH (b:B)-[:hop]->(a:A)");
  ASSERT_NE(plan, nullptr);
  const PlanNode* expand = FindOp(plan.get(), PlanOp::kExpandEdge);
  ASSERT_NE(expand, nullptr);
  // 10 B sources × measured out-degree 3 × target admission P(:A).
  EXPECT_NEAR(expand->est_rows, 10.0 * 3.0 * kASel, 1e-9);
}

TEST_F(CostTest, ReverseExpansionUsesMeasuredInDegree) {
  PlanPtr plan = Plan("CONSTRUCT (a) MATCH (a:A)<-[:hop]-(b:B)");
  ASSERT_NE(plan, nullptr);
  const PlanNode* expand = FindOp(plan.get(), PlanOp::kExpandEdge);
  // 20 A anchors × avg in-degree 30/20 × P(:B).
  EXPECT_NEAR(expand->est_rows, 20.0 * 1.5 * kBSel, 1e-9);
}

TEST_F(CostTest, SeedModelExpansionWhenColumnStatsOff) {
  PlanPtr plan = Plan("CONSTRUCT (b) MATCH (b:B)-[:hop]->(a:A)",
                      /*use_column_stats=*/false);
  ASSERT_NE(plan, nullptr);
  const PlanNode* expand = FindOp(plan.get(), PlanOp::kExpandEdge);
  // Seed formula: global fanout 30 hop-edges / 30 nodes, blind to the
  // B-anchored concentration.
  EXPECT_NEAR(expand->est_rows, 10.0 * (30.0 / 30.0) * kASel, 1e-9);
}

// --- join bound --------------------------------------------------------------

TEST_F(CostTest, CorrelatedJoinUsesDegreeAwareBound) {
  PlanPtr plan = Plan(
      "CONSTRUCT (y) MATCH (x:A)-[:link2]->(y:B), (z:A)-[:link2]->(y:B)");
  ASSERT_NE(plan, nullptr);
  const PlanNode* join = FindOp(plan.get(), PlanOp::kHashJoin);
  ASSERT_NE(join, nullptr);
  EXPECT_TRUE(join->join_correlated);
  EXPECT_EQ(join->join_vars, std::vector<std::string>{"y"});
  // Each chain: 30 × P(:A) × degree 4 × P(:B) = 80/3; the shared key y
  // has domain |:B| = 10 < chain size, so the bound divides by 10
  // instead of saturating at max(L, R).
  const double chain = kNodes * kASel * 4.0 * kBSel;
  EXPECT_NEAR(join->est_rows, chain * chain / 10.0, 1e-6);
  EXPECT_GT(join->est_rows, chain);  // strictly above the seed's max()
}

TEST_F(CostTest, IndependentJoinIsCrossProduct) {
  PlanPtr plan = Plan("CONSTRUCT (a) MATCH (a:A), (b:B)");
  ASSERT_NE(plan, nullptr);
  const PlanNode* join = FindOp(plan.get(), PlanOp::kHashJoin);
  ASSERT_NE(join, nullptr);
  EXPECT_FALSE(join->join_correlated);
  EXPECT_TRUE(join->join_vars.empty());
  EXPECT_NEAR(join->est_rows, 20.0 * 10.0, 1e-9);
}

TEST_F(CostTest, SeedModelJoinFallsBackToMaxOfInputs) {
  PlanPtr plan = Plan(
      "CONSTRUCT (y) MATCH (x:A)-[:link2]->(y:B), (z:A)-[:link2]->(y:B)",
      /*use_column_stats=*/false);
  ASSERT_NE(plan, nullptr);
  const PlanNode* join = FindOp(plan.get(), PlanOp::kHashJoin);
  ASSERT_NE(join, nullptr);
  const double left = join->children[0]->est_rows;
  const double right = join->children[1]->est_rows;
  ASSERT_GE(left, 0.0);
  EXPECT_NEAR(join->est_rows, std::max(left, right), 1e-9);
}

// --- no-stats fallbacks ------------------------------------------------------

TEST_F(CostTest, UnknownGraphDegradesToUnknown) {
  PlanPtr plan = Plan("CONSTRUCT (a) MATCH (a:A) ON nowhere");
  ASSERT_NE(plan, nullptr);
  EXPECT_LT(FindOp(plan.get(), PlanOp::kNodeScan)->est_rows, 0.0);
  EXPECT_LT(plan->est_rows, 0.0);
}

TEST_F(CostTest, UnknownPropertyKeyFallsBackToConstant) {
  PlanPtr plan = Plan("CONSTRUCT (a) MATCH (a:A {zzz=5})");
  ASSERT_NE(plan, nullptr);
  // kPropFilterSelectivity = 0.1 — the seed constant.
  EXPECT_NEAR(FindOp(plan.get(), PlanOp::kNodeScan)->est_rows,
              kNodes * kASel * 0.1, 1e-9);
}

TEST_F(CostTest, OpaquePushedPredicateFallsBackToConstant) {
  PlanPtr plan = Plan("CONSTRUCT (a) MATCH (a:A) WHERE a.k + 0 = 2");
  ASSERT_NE(plan, nullptr);
  const PlanNode* scan = FindOp(plan.get(), PlanOp::kNodeScan);
  ASSERT_FALSE(scan->pushed.empty());
  // kPushedPredicateSelectivity = 0.25 — the seed constant.
  EXPECT_NEAR(scan->est_rows, kNodes * kASel * 0.25, 1e-9);
}

TEST_F(CostTest, ColumnStatsOffReproducesSeedConstants) {
  PlanPtr plan = Plan("CONSTRUCT (a) MATCH (a:A {k=2})",
                      /*use_column_stats=*/false);
  ASSERT_NE(plan, nullptr);
  EXPECT_NEAR(FindOp(plan.get(), PlanOp::kNodeScan)->est_rows,
              kNodes * kASel * 0.1, 1e-9);
}

}  // namespace
}  // namespace gcore
