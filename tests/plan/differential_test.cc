// Differential tests: the planner/executor pipeline must produce exactly
// the results of the pre-refactor recursive matcher (kept as the
// reference implementation behind MatcherContext::use_planner = false)
// on the guided-tour and extension workloads.
#include <gtest/gtest.h>

#include <algorithm>

#include "engine/engine.h"
#include "eval/matcher.h"
#include "graph/graph_ops.h"
#include "parser/parser.h"
#include "snb/toy_graphs.h"

namespace gcore {
namespace {

/// Order-insensitive canonical form of a binding table: sorted
/// "col=value" rows over name-sorted columns. Computed (non-stored)
/// paths carry *fresh* identifiers by definition (Appendix A.2), so they
/// canonicalize to their walk, not their id.
std::string CanonicalDatum(const Datum& datum) {
  if (datum.kind() == Datum::Kind::kPath && !datum.path().from_graph) {
    const PathValue& path = datum.path();
    std::string out = "walk(";
    for (NodeId n : path.body.nodes) out += ToString(n) + ",";
    if (path.projection.has_value()) {
      for (NodeId n : path.projection->first) out += ToString(n) + ",";
      out += "|";
      for (EdgeId e : path.projection->second) out += ToString(e) + ",";
    }
    return out + ")";
  }
  return datum.ToString();
}

std::vector<std::string> Canonical(const BindingTable& table) {
  std::vector<std::string> columns = table.columns();
  std::sort(columns.begin(), columns.end());
  std::vector<std::string> rows;
  rows.reserve(table.NumRows());
  for (size_t r = 0; r < table.NumRows(); ++r) {
    std::string row;
    for (const auto& col : columns) {
      row += col + "=" + CanonicalDatum(table.Get(r, col)) + ";";
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

class DifferentialMatch : public ::testing::Test {
 protected:
  DifferentialMatch() {
    snb::RegisterToyData(&catalog);
    catalog.SetDefaultGraph("social_graph");
  }

  void ExpectSameBindings(const std::string& match_query) {
    auto parsed = ParseQuery("CONSTRUCT (z) " + match_query);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    const MatchClause& match = *(*parsed)->body->basic->match;

    MatcherContext ctx;
    ctx.catalog = &catalog;
    ctx.default_graph = "social_graph";

    ctx.use_planner = true;
    Matcher planned(ctx);
    auto via_plan = planned.EvalMatchClause(match);

    ctx.use_planner = false;
    Matcher legacy(ctx);
    auto via_walk = legacy.EvalMatchClause(match);

    ASSERT_EQ(via_plan.ok(), via_walk.ok())
        << match_query << "\nplanner: " << via_plan.status().ToString()
        << "\nlegacy: " << via_walk.status().ToString();
    if (!via_plan.ok()) return;
    // Identical schema (the Project records the legacy binding order)
    // and identical binding sets.
    EXPECT_EQ(via_plan->columns(), via_walk->columns()) << match_query;
    EXPECT_EQ(Canonical(*via_plan), Canonical(*via_walk)) << match_query;
  }

  GraphCatalog catalog;
};

TEST_F(DifferentialMatch, NodeScans) {
  ExpectSameBindings("MATCH (n)");
  ExpectSameBindings("MATCH (n:Person)");
  ExpectSameBindings("MATCH (n:Person {firstName='John'})");
  ExpectSameBindings("MATCH (n:Person {employer=e})");
}

TEST_F(DifferentialMatch, EdgeHops) {
  ExpectSameBindings("MATCH (n)-[e:knows]->(m)");
  ExpectSameBindings("MATCH (n)<-[e:knows]-(m)");
  ExpectSameBindings("MATCH (n:Person)-[e:knows]-(m:Person)");
  ExpectSameBindings(
      "MATCH (n:Person)-[:isLocatedIn]->(c)<-[:isLocatedIn]-(m:Person)");
  ExpectSameBindings("MATCH (n)-[e1:knows]->(m)-[e2:knows]->(o)");
}

TEST_F(DifferentialMatch, WherePushdownEquivalence) {
  ExpectSameBindings(
      "MATCH (n:Person)-[e:knows]->(m) WHERE n.firstName = 'John'");
  ExpectSameBindings(
      "MATCH (n:Person)-[e:knows]->(m:Person) "
      "WHERE n.firstName = 'John' AND m.employer = 'Acme'");
  ExpectSameBindings(
      "MATCH (n:Person) WHERE n.firstName = 'John' OR n.firstName = "
      "'Alice'");
}

TEST_F(DifferentialMatch, MultiChainJoins) {
  ExpectSameBindings(
      "MATCH (c:Company) ON company_graph, (n:Person) ON social_graph "
      "WHERE c.name = n.employer");
  ExpectSameBindings(
      "MATCH (n:Person) ON social_graph, (c:Company) ON company_graph");
  ExpectSameBindings(
      "MATCH (n:Person), (m:Person) WHERE n.employer = m.employer");
}

TEST_F(DifferentialMatch, PathModes) {
  ExpectSameBindings("MATCH (n:Person)-/<:knows*>/->(m:Person)");
  ExpectSameBindings(
      "MATCH (n)-/3 SHORTEST p<:knows*> COST c/->(m) "
      "WHERE n.firstName = 'John'");
  ExpectSameBindings(
      "MATCH (n:Person)-/ALL p<:knows*>/->(m:Person) "
      "WHERE n.firstName = 'John'");
}

TEST_F(DifferentialMatch, Optionals) {
  ExpectSameBindings(
      "MATCH (n:Person) OPTIONAL (n)-[e:knows]->(m)");
  ExpectSameBindings(
      "MATCH (n:Person) OPTIONAL (n)-[e:knows]->(m) "
      "WHERE m.employer = 'Acme'");
  ExpectSameBindings(
      "MATCH (n:Person) OPTIONAL (n)-[:isLocatedIn]->(c) "
      "OPTIONAL (n)-[:hasInterest]->(t)");
}

TEST_F(DifferentialMatch, PatternPredicatesAndExists) {
  ExpectSameBindings(
      "MATCH (m:Person), (n:Person) "
      "WHERE n.firstName = 'John' "
      "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)");
}

TEST_F(DifferentialMatch, ErrorEquivalence) {
  // No default graph and two distinct ON graphs: both paths must fail.
  MatcherContext ctx;
  ctx.catalog = &catalog;
  auto parsed = ParseQuery(
      "CONSTRUCT (z) MATCH (c) ON company_graph, (n) ON social_graph");
  ASSERT_TRUE(parsed.ok());
  const MatchClause& match = *(*parsed)->body->basic->match;
  ctx.use_planner = true;
  auto via_plan = Matcher(ctx).EvalMatchClause(match);
  ctx.use_planner = false;
  auto via_walk = Matcher(ctx).EvalMatchClause(match);
  EXPECT_FALSE(via_plan.ok());
  EXPECT_FALSE(via_walk.ok());
}

/// Engine-level differential: full queries (construction, views, set
/// operations, tabular extensions) through both pipelines.
class DifferentialEngine : public ::testing::Test {
 protected:
  Result<QueryResult> Run(const std::string& query, bool use_planner) {
    GraphCatalog catalog;
    snb::RegisterToyData(&catalog);
    QueryEngine engine(&catalog);
    engine.set_use_planner(use_planner);
    return engine.Execute(query);
  }

  void ExpectSameResult(const std::string& query) {
    auto planned = Run(query, true);
    auto legacy = Run(query, false);
    ASSERT_EQ(planned.ok(), legacy.ok())
        << query << "\nplanner: " << planned.status().ToString()
        << "\nlegacy: " << legacy.status().ToString();
    if (!planned.ok()) return;
    ASSERT_EQ(planned->IsGraph(), legacy->IsGraph()) << query;
    if (planned->IsGraph()) {
      EXPECT_TRUE(GraphEquals(*planned->graph, *legacy->graph)) << query;
    } else {
      Table a = std::move(*planned->table);
      Table b = std::move(*legacy->table);
      a.SortRows();
      b.SortRows();
      EXPECT_EQ(a.ToString(), b.ToString()) << query;
    }
  }
};

TEST_F(DifferentialEngine, GuidedTourQueries) {
  ExpectSameResult(
      "CONSTRUCT (n) MATCH (n:Person) ON social_graph "
      "WHERE n.employer = 'Acme'");
  ExpectSameResult(
      "CONSTRUCT (c)<-[:worksAt]-(n) "
      "MATCH (c:Company) ON company_graph, (n:Person) ON social_graph "
      "WHERE c.name = n.employer UNION social_graph");
  ExpectSameResult(
      "CONSTRUCT (c)<-[:worksAt]-(n) "
      "MATCH (c:Company) ON company_graph, (n:Person) ON social_graph "
      "WHERE c.name IN n.employer UNION social_graph");
  ExpectSameResult(
      "CONSTRUCT social_graph, "
      "(x GROUP e :Company {name:=e})<-[y:worksAt]-(n) "
      "MATCH (n:Person {employer=e})");
  ExpectSameResult(
      "CONSTRUCT (n)-/@p:localPeople{distance:=c}/->(m) "
      "MATCH (n)-/3 SHORTEST p<:knows*> COST c/->(m) "
      "WHERE (n:Person) AND (m:Person) "
      "AND n.firstName = 'John' AND n.lastName = 'Doe' "
      "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)");
  ExpectSameResult(
      "CONSTRUCT (m) MATCH (n:Person)-/<:knows*>/->(m:Person) "
      "WHERE n.firstName = 'John' AND n.lastName = 'Doe' "
      "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)");
  ExpectSameResult(
      "CONSTRUCT (n)-/p/->(m) "
      "MATCH (n:Person)-/ALL p<:knows*>/->(m:Person) "
      "WHERE n.firstName = 'John' AND n.lastName = 'Doe' "
      "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)");
  ExpectSameResult(
      "CONSTRUCT (m) MATCH (m:Person), (n:Person) "
      "WHERE n.firstName = 'John' AND n.lastName = 'Doe' "
      "AND EXISTS ( CONSTRUCT () "
      "MATCH (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m) )");
}

TEST_F(DifferentialEngine, ViewsAndOptionals) {
  ExpectSameResult(
      "GRAPH VIEW social_graph1 AS ( "
      "CONSTRUCT social_graph, (n)-[e]->(m) SET e.nr_messages := COUNT(*) "
      "MATCH (n)-[e:knows]->(m) WHERE (n:Person) AND (m:Person) "
      "OPTIONAL (n)<-[c1]-(msg1:Post|Comment), (msg1)-[:reply_of]-(msg2), "
      "(msg2:Post|Comment)-[c2]->(m) "
      "WHERE (c1:has_creator) AND (c2:has_creator) )");
}

TEST_F(DifferentialEngine, TabularExtensions) {
  ExpectSameResult(
      "SELECT c.name AS company, n.firstName AS person "
      "MATCH (c:Company) ON company_graph, (n:Person) ON social_graph "
      "WHERE c.name = n.employer");
  ExpectSameResult(
      "SELECT DISTINCT c.name AS city "
      "MATCH (n:Person)-[:isLocatedIn]->(c) ORDER BY c.name");
  ExpectSameResult(
      "SELECT n.firstName AS name, COUNT(*) AS total MATCH (n:Person)");
}

TEST_F(DifferentialEngine, SetOperationsAndComposition) {
  ExpectSameResult(
      "CONSTRUCT (n) MATCH (n:Person) INTERSECT social_graph");
  ExpectSameResult(
      "GRAPH acme AS (CONSTRUCT (n) MATCH (n:Person) "
      "WHERE n.employer = 'Acme') "
      "CONSTRUCT (m {who := m.firstName}) MATCH (m) ON acme");
}

}  // namespace
}  // namespace gcore
