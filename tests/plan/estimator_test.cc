// Estimator-accuracy tests: EXPLAIN ANALYZE runs chain/star/filter
// queries on a graph with known distributions and every operator's
// estimate must stay within a fixed q-error bound of its actual row
// count — the ground truth the stats subsystem exists to predict. Also
// pins the join-order flip: when per-column statistics say the smaller
// side should build first, the plan changes shape vs the constants-only
// model.
#include <gtest/gtest.h>

#include <regex>

#include "engine/engine.h"
#include "graph/graph_builder.h"

namespace gcore {
namespace {

/// Accuracy graph: homogeneous so the estimator's independence
/// assumptions hold exactly. 100 :Person nodes, each carrying
/// city = "c" + (i % 10)  (10 distinct, uniform) and age = i
/// (range [0, 99]). Edges: person i --:knows--> persons i+1..i+4 (out-
/// and in-degree exactly 4) and person i --:follows--> person (7i+1)%100
/// (out- and in-degree exactly 1; 7 is coprime to 100).
void RegisterAccuracyGraph(GraphCatalog* catalog) {
  GraphBuilder b("acc", catalog->ids());
  b.EnableStatsCollection();
  std::vector<NodeId> persons;
  for (int i = 0; i < 100; ++i) {
    persons.push_back(
        b.AddNode({"Person"}, {{"city", "c" + std::to_string(i % 10)},
                               {"age", int64_t{i}}}));
  }
  for (int i = 0; i < 100; ++i) {
    for (int j = 1; j <= 4; ++j) {
      b.AddEdge(persons[i], persons[(i + j) % 100], "knows");
    }
    b.AddEdge(persons[i], persons[(7 * i + 1) % 100], "follows");
  }
  GraphStats stats = b.Stats();
  catalog->RegisterGraph("acc", b.Build(), std::move(stats));
  catalog->SetDefaultGraph("acc");
}

/// (est_rows, actual_rows) pairs of every operator line that carries
/// both annotations.
std::vector<std::pair<double, double>> ParseEstimates(
    const std::string& plan) {
  static const std::regex kPattern(
      R"(est_rows=([0-9.eE+\-]+) actual_rows=([0-9]+))");
  std::vector<std::pair<double, double>> out;
  for (std::sregex_iterator it(plan.begin(), plan.end(), kPattern), end;
       it != end; ++it) {
    out.emplace_back(std::stod((*it)[1]), std::stod((*it)[2]));
  }
  return out;
}

double QError(double est, double actual) {
  // Smooth zero rows to 1 so the ratio stays defined; an estimate of 0
  // for a non-empty operator (or vice versa) still blows the bound.
  const double e = std::max(est, 1.0);
  const double a = std::max(actual, 1.0);
  return std::max(e / a, a / e);
}

class EstimatorAccuracyTest : public ::testing::Test {
 protected:
  EstimatorAccuracyTest() { RegisterAccuracyGraph(&catalog); }

  std::string ExplainAnalyze(const std::string& query) {
    QueryEngine engine(&catalog);
    auto r = engine.Execute("EXPLAIN ANALYZE " + query);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) return "";
    EXPECT_TRUE(r->IsTable());
    std::string out;
    for (size_t i = 0; i < r->table->NumRows(); ++i) {
      if (i > 0) out += "\n";
      out += r->table->At(i, 0).AsString();
    }
    return out;
  }

  /// Every operator annotated with est and actual passes the q-error
  /// bound.
  void ExpectQErrorWithin(const std::string& query, double bound) {
    const std::string plan = ExplainAnalyze(query);
    const auto pairs = ParseEstimates(plan);
    ASSERT_FALSE(pairs.empty()) << plan;
    for (const auto& [est, actual] : pairs) {
      EXPECT_LE(QError(est, actual), bound)
          << "est=" << est << " actual=" << actual << "\n"
          << plan;
    }
  }

  GraphCatalog catalog;
};

TEST_F(EstimatorAccuracyTest, OutputShowsEstimatesAndActuals) {
  const std::string plan =
      ExplainAnalyze("CONSTRUCT (n) MATCH (n:Person) WHERE n.city = 'c3'");
  EXPECT_NE(plan.find("est_rows="), std::string::npos) << plan;
  EXPECT_NE(plan.find("actual_rows="), std::string::npos) << plan;
  // The pushed equality predicate: 100 persons / 10 distinct cities.
  EXPECT_NE(plan.find("actual_rows=10"), std::string::npos) << plan;
}

TEST_F(EstimatorAccuracyTest, FilterQueryWithinQErrorBound) {
  ExpectQErrorWithin(
      "CONSTRUCT (n) MATCH (n:Person) WHERE n.city = 'c3'", 1.5);
}

TEST_F(EstimatorAccuracyTest, RangeQueryWithinQErrorBound) {
  // age >= 90 selects 10 of 100; interpolation over [0, 99] predicts
  // 100·(99−90)/99 ≈ 9.09.
  ExpectQErrorWithin(
      "CONSTRUCT (n) MATCH (n:Person) WHERE n.age >= 90", 1.5);
}

TEST_F(EstimatorAccuracyTest, ChainQueryWithinQErrorBound) {
  // 100 sources × measured degree 4 = 400 expansions, exactly.
  ExpectQErrorWithin(
      "SELECT a.city AS c MATCH (a:Person)-[:knows]->(b:Person)", 1.5);
}

TEST_F(EstimatorAccuracyTest, StarJoinWithinQErrorBound) {
  // Two chains share b: 400 × 100 / |domain(b)| = 400 predicted; the
  // actual join is Σ_b 4·1 = 400.
  ExpectQErrorWithin(
      "SELECT a.city AS c "
      "MATCH (a:Person)-[:knows]->(b:Person), "
      "(c:Person)-[:follows]->(b:Person)",
      1.5);
}

TEST_F(EstimatorAccuracyTest, AnalyzeMatchesPlainExecutionResult) {
  // EXPLAIN ANALYZE runs the real pipeline: its reported actual for the
  // root Project equals the row count of the plain execution.
  QueryEngine engine(&catalog);
  auto direct = engine.Execute(
      "SELECT a.city AS c MATCH (a:Person)-[:knows]->(b:Person)");
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  const std::string plan = ExplainAnalyze(
      "SELECT a.city AS c MATCH (a:Person)-[:knows]->(b:Person)");
  // Project dedups (a, b) pairs: 400 of them.
  EXPECT_NE(plan.find("Project [a, b] dedup"), std::string::npos) << plan;
  EXPECT_NE(plan.find("actual_rows=400"), std::string::npos) << plan;
}

// --- join-order flip ---------------------------------------------------------

class JoinOrderFlipTest : public ::testing::Test {
 protected:
  JoinOrderFlipTest() {
    // 100 :A nodes with a 2-distinct-valued key, 30 :B nodes. Stats say
    // σ(a.k = 1) keeps 50 rows (> 30), constants say 25 (< 30): the two
    // models disagree on which chain is smaller.
    GraphBuilder b("flip", catalog.ids());
    b.EnableStatsCollection();
    for (int i = 0; i < 100; ++i) {
      b.AddNode({"A"}, {{"k", int64_t{i % 2}}});
    }
    for (int i = 0; i < 30; ++i) b.AddNode({"B"});
    GraphStats stats = b.Stats();
    catalog.RegisterGraph("flip", b.Build(), std::move(stats));
    catalog.SetDefaultGraph("flip");
  }

  std::string Explain(bool use_column_stats) {
    QueryEngine engine(&catalog);
    engine.set_use_column_stats(use_column_stats);
    auto r = engine.Execute(
        "EXPLAIN CONSTRUCT (a) MATCH (a:A), (b:B) WHERE a.k = 1");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    std::string out;
    for (size_t i = 0; i < r->table->NumRows(); ++i) {
      out += r->table->At(i, 0).AsString() + "\n";
    }
    return out;
  }

  GraphCatalog catalog;
};

TEST_F(JoinOrderFlipTest, StatsFlipTheBuildSide) {
  // With per-column stats: est(:A filtered) = 100/2 = 50 > 30 = est(:B),
  // so the B chain joins first (renders above the A scan).
  const std::string with_stats = Explain(/*use_column_stats=*/true);
  const size_t b_scan = with_stats.find("NodeScan (b:B)");
  const size_t a_scan = with_stats.find("NodeScan (a:A)");
  ASSERT_NE(b_scan, std::string::npos) << with_stats;
  ASSERT_NE(a_scan, std::string::npos) << with_stats;
  EXPECT_LT(b_scan, a_scan) << with_stats;

  // Constants only: est(:A filtered) = 100·0.25 = 25 < 30, so the A
  // chain joins first — today's (pre-stats) plan shape.
  const std::string constants = Explain(/*use_column_stats=*/false);
  const size_t b_scan2 = constants.find("NodeScan (b:B)");
  const size_t a_scan2 = constants.find("NodeScan (a:A)");
  ASSERT_NE(b_scan2, std::string::npos) << constants;
  ASSERT_NE(a_scan2, std::string::npos) << constants;
  EXPECT_LT(a_scan2, b_scan2) << constants;
}

}  // namespace
}  // namespace gcore
