// Concurrent serving tests: sessions on N threads produce exactly the
// serial results, a mid-flight reader stays on its graph image across a
// re-registration (epoch-retired snapshots), and the plan cache
// hits/misses/invalidates as specified. The whole file doubles as the
// ThreadSanitizer workload of the CI tsan job.
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/plan_cache.h"
#include "snb/toy_graphs.h"

namespace gcore {
namespace {

/// The serving mix: a point lookup, a one-hop expand and a path query
/// (the same shapes bench_serving drives at scale).
const char* const kQueryMix[] = {
    "SELECT n.firstName AS name MATCH (n:Person) "
    "WHERE n.employer = 'Acme'",
    "SELECT n.firstName AS src, m.firstName AS dst "
    "MATCH (n:Person)-[:knows]->(m:Person)",
    "CONSTRUCT (n) MATCH (n:Person)-/<:knows*>/->(m:Person) "
    "WHERE m.firstName = 'Frank'",
};

class ServingTest : public ::testing::Test {
 protected:
  ServingTest() { snb::RegisterToyData(&catalog); }
  GraphCatalog catalog;
};

TEST_F(ServingTest, ConcurrentSessionsMatchSerialResults) {
  QueryEngine engine(&catalog);

  // Serial reference, computed with a cold cache.
  std::vector<std::string> expected;
  for (const char* q : kQueryMix) {
    auto r = engine.Execute(q);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    expected.push_back(r->ToString());
  }

  const unsigned hw = std::thread::hardware_concurrency();
  const size_t num_threads = hw > 1 ? hw : 2;
  constexpr int kItersPerThread = 16;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    // One session per thread; all share the engine, catalog, plan cache.
    QuerySession session = engine.CreateSession();
    threads.emplace_back([session, &expected, &mismatches,
                          &failures]() mutable {
      for (int i = 0; i < kItersPerThread; ++i) {
        for (size_t q = 0; q < expected.size(); ++q) {
          auto r = session.Execute(kQueryMix[q]);
          if (!r.ok()) {
            ++failures;
          } else if (r->ToString() != expected[q]) {
            ++mismatches;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  // Every (query, knobs) pair planned exactly once; everything else hit.
  const PlanCacheCounters counters = engine.plan_cache_counters();
  EXPECT_EQ(counters.misses, 3u);
  EXPECT_EQ(counters.hits,
            3u * (num_threads * kItersPerThread + 1) - counters.misses);
}

TEST_F(ServingTest, SessionsFreezeKnobsIndependently) {
  QueryEngine engine(&catalog);
  EngineOptions legacy;
  legacy.use_planner = false;
  QuerySession planned = engine.CreateSession();
  QuerySession walker = engine.CreateSession(legacy);
  // Flipping the engine default after creation must not affect either.
  engine.set_use_planner(false);
  EXPECT_TRUE(planned.options().use_planner);
  EXPECT_FALSE(walker.options().use_planner);
  EXPECT_NE(planned.options().Fingerprint(), walker.options().Fingerprint());

  auto a = planned.Execute(kQueryMix[1]);
  auto b = walker.Execute(kQueryMix[1]);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->ToString(), b->ToString());
}

TEST_F(ServingTest, WarmSecondExecutionIsOneHitZeroPlans) {
  QueryEngine engine(&catalog);
  ASSERT_TRUE(engine.Execute(kQueryMix[0]).ok());
  const PlanCacheCounters cold = engine.plan_cache_counters();
  EXPECT_EQ(cold.hits, 0u);
  EXPECT_EQ(cold.misses, 1u);
  EXPECT_EQ(cold.plans, 1u);
  ASSERT_EQ(engine.plan_cache_size(), 1u);

  ASSERT_TRUE(engine.Execute(kQueryMix[0]).ok());
  const PlanCacheCounters warm = engine.plan_cache_counters();
  EXPECT_EQ(warm.hits, 1u);
  EXPECT_EQ(warm.misses, 1u);
  EXPECT_EQ(warm.plans, 1u);  // no second optimizer run
  EXPECT_EQ(warm.evictions, 0u);

  // Whitespace-insensitive: a reformatted text is the same entry ...
  ASSERT_TRUE(engine
                  .Execute("SELECT n.firstName   AS name\n"
                           "MATCH (n:Person) WHERE n.employer = 'Acme'")
                  .ok());
  EXPECT_EQ(engine.plan_cache_counters().hits, 2u);
  // ... but whitespace inside a string literal is load-bearing.
  ASSERT_TRUE(engine
                  .Execute("SELECT n.firstName AS name "
                           "MATCH (n:Person) WHERE n.employer = ' Acme'")
                  .ok());
  EXPECT_EQ(engine.plan_cache_counters().misses, 2u);

  // Different knobs → different fingerprint → separate entry.
  EngineOptions no_pushdown;
  no_pushdown.enable_pushdown = false;
  ASSERT_TRUE(engine.Execute(kQueryMix[0], no_pushdown).ok());
  EXPECT_EQ(engine.plan_cache_counters().misses, 3u);
}

TEST_F(ServingTest, ReRegistrationInvalidatesPlanCache) {
  QueryEngine engine(&catalog);
  ASSERT_TRUE(engine.Execute(kQueryMix[0]).ok());
  ASSERT_EQ(engine.plan_cache_size(), 1u);
  const uint64_t v1 = catalog.GraphVersion("social_graph");
  ASSERT_GT(v1, 0u);

  // Re-register the default graph: version bumps, the listener evicts.
  catalog.RegisterGraph("social_graph", snb::MakeSocialGraph(catalog.ids()));
  EXPECT_GT(catalog.GraphVersion("social_graph"), v1);
  EXPECT_EQ(engine.plan_cache_size(), 0u);
  EXPECT_GE(engine.plan_cache_counters().evictions, 1u);

  // The next execution re-plans against the new image.
  ASSERT_TRUE(engine.Execute(kQueryMix[0]).ok());
  EXPECT_EQ(engine.plan_cache_counters().plans, 2u);
}

TEST_F(ServingTest, ReaderKeepsImageAcrossReRegistration) {
  // A "mid-flight" reader modeled explicitly: pin the graph the way a
  // query does (shared_ptr via LookupShared under a ReaderGuard), then
  // re-register from the outside.
  GraphCatalog::ReaderGuard guard(&catalog);
  auto pinned = catalog.LookupShared("social_graph");
  ASSERT_TRUE(pinned.ok());
  const PathPropertyGraph* old_image = pinned->get();
  const size_t old_nodes = old_image->NumNodes();
  const uint64_t v1 = catalog.GraphVersion("social_graph");

  catalog.RegisterGraph("social_graph", PathPropertyGraph());  // empty now

  // The reader's image is unaffected; new lookups see the new version.
  EXPECT_EQ(pinned->get(), old_image);
  EXPECT_EQ((*pinned)->NumNodes(), old_nodes);
  auto fresh = catalog.LookupShared("social_graph");
  ASSERT_TRUE(fresh.ok());
  EXPECT_NE(fresh->get(), old_image);
  EXPECT_EQ((*fresh)->NumNodes(), 0u);
  EXPECT_GT(catalog.GraphVersion("social_graph"), v1);
}

TEST_F(ServingTest, ExecutionsSurviveConcurrentReRegistration) {
  QueryEngine engine(&catalog);
  // Both images answer the point query with a well-known result set:
  // the replacement graph is the same toy graph, so every read — old
  // snapshot or new — must return the identical table.
  const char* query = kQueryMix[0];
  auto reference = engine.Execute(query);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  const std::string expected = reference->ToString();

  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    QuerySession session = engine.CreateSession();
    readers.emplace_back([session, query, &expected, &stop, &bad]() mutable {
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = session.Execute(query);
        if (!r.ok() || r->ToString() != expected) ++bad;
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    catalog.RegisterGraph("social_graph",
                          snb::MakeSocialGraph(catalog.ids()));
  }
  stop = true;
  for (auto& thread : readers) thread.join();
  EXPECT_EQ(bad.load(), 0);
  // All retired images drained once the last reader left.
  EXPECT_EQ(catalog.RetiredCount(), 0u);
}

TEST_F(ServingTest, RapidGuardChurnUnderReRegistration) {
  // Hammers the exact ExitReader window: guards opening/closing while a
  // writer retires images. A drain racing a just-entered reader is a
  // use-after-free that ASan/TSan catches through the Lookup below.
  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([this, &stop, &bad]() {
      while (!stop.load(std::memory_order_relaxed)) {
        GraphCatalog::ReaderGuard guard(&catalog);
        auto g = catalog.Lookup("social_graph");
        if (!g.ok() || (*g)->NumNodes() == 0 ||
            (*g)->name() != "social_graph") {
          ++bad;
        }
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    catalog.RegisterGraph("social_graph",
                          snb::MakeSocialGraph(catalog.ids()));
  }
  stop = true;
  for (auto& thread : readers) thread.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST_F(ServingTest, RegisterTableInvalidatesSynthesizedGraphAndPlans) {
  QueryEngine engine(&catalog);
  const char* query =
      "SELECT o.custName AS c, o.prodCode AS p MATCH (o) ON orders";

  // First run synthesizes the node graph from the table mid-execution —
  // a catalog mutation, so the epoch check refuses to cache the plan.
  auto first = engine.Execute(query);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(catalog.HasGraph("orders"));
  EXPECT_EQ(engine.plan_cache_size(), 0u);

  // Second run plans against a stable catalog and caches.
  ASSERT_TRUE(engine.Execute(query).ok());
  ASSERT_EQ(engine.plan_cache_size(), 1u);
  ASSERT_GT(catalog.GraphVersion("orders"), 0u);

  // Re-registering the table drops the synthesized graph and evicts the
  // plan-cache entry built against it.
  Table orders({"custName", "prodCode"});
  ASSERT_TRUE(
      orders.AddRow({Value::String("Zed"), Value::String("P9")}).ok());
  catalog.RegisterTable("orders", std::move(orders));
  EXPECT_FALSE(catalog.HasGraph("orders"));
  EXPECT_EQ(engine.plan_cache_size(), 0u);

  // The next execution re-synthesizes from the new contents.
  auto fresh = engine.Execute(query);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_NE(fresh->ToString(), first->ToString());
  EXPECT_NE(fresh->ToString().find("Zed"), std::string::npos);
}

TEST_F(ServingTest, MutationEpochAdvancesOnEveryCatalogMutation) {
  const uint64_t e0 = catalog.MutationEpoch();
  catalog.RegisterGraph("tmp", PathPropertyGraph());
  const uint64_t e1 = catalog.MutationEpoch();
  EXPECT_GT(e1, e0);
  catalog.DropGraph("tmp");
  const uint64_t e2 = catalog.MutationEpoch();
  EXPECT_GT(e2, e1);
  catalog.RegisterTable("orders", snb::MakeOrdersTable());
  EXPECT_GT(catalog.MutationEpoch(), e2);
}

TEST_F(ServingTest, CapacityBoundsAndLruEviction) {
  QueryEngine engine(&catalog);
  engine.set_plan_cache_capacity(2);
  ASSERT_TRUE(engine.Execute(kQueryMix[0]).ok());
  ASSERT_TRUE(engine.Execute(kQueryMix[1]).ok());
  ASSERT_TRUE(engine.Execute(kQueryMix[0]).ok());  // 0 most recent
  ASSERT_TRUE(engine.Execute(kQueryMix[2]).ok());  // evicts 1 (LRU)
  EXPECT_EQ(engine.plan_cache_size(), 2u);
  ASSERT_TRUE(engine.Execute(kQueryMix[0]).ok());
  EXPECT_EQ(engine.plan_cache_counters().hits, 2u);
  ASSERT_TRUE(engine.Execute(kQueryMix[1]).ok());  // re-planned
  EXPECT_EQ(engine.plan_cache_counters().plans, 4u);

  // Capacity 0 disables caching entirely (the cold bench mode).
  engine.set_plan_cache_capacity(0);
  EXPECT_EQ(engine.plan_cache_size(), 0u);
  const uint64_t plans_before = engine.plan_cache_counters().plans;
  ASSERT_TRUE(engine.Execute(kQueryMix[0]).ok());
  ASSERT_TRUE(engine.Execute(kQueryMix[0]).ok());
  EXPECT_EQ(engine.plan_cache_counters().plans, plans_before + 2);
}

TEST_F(ServingTest, NormalizeQueryTextIsQuoteAware) {
  EXPECT_EQ(NormalizeQueryText("  SELECT\tn.a\n FROM   t "),
            "SELECT n.a FROM t");
  EXPECT_EQ(NormalizeQueryText("WHERE x = 'a  b'"), "WHERE x = 'a  b'");
  EXPECT_EQ(NormalizeQueryText("WHERE x = 'it''s  ok'   AND y"),
            "WHERE x = 'it''s  ok' AND y");
  // Both quote kinds the lexer accepts, plus its backslash escapes.
  EXPECT_EQ(NormalizeQueryText("WHERE x = \"a  b\""), "WHERE x = \"a  b\"");
  EXPECT_EQ(NormalizeQueryText("WHERE x = 'a\\'  b'   AND y"),
            "WHERE x = 'a\\'  b' AND y");
}

TEST_F(ServingTest, NormalizeQueryTextFoldsKeywordCase) {
  // The lexer recognizes keywords case-insensitively, so `match` and
  // `MATCH` parse identically and must normalize to one cache key.
  EXPECT_EQ(NormalizeQueryText("select n.a match (n)"),
            NormalizeQueryText("SELECT n.a MATCH (n)"));
  EXPECT_EQ(NormalizeQueryText("Select n.a Match (n)"),
            "SELECT n.a MATCH (n)");
  // Identifiers are case-sensitive and must stay byte-exact — `Ab` is a
  // different variable than `ab`, and a label is not a keyword.
  EXPECT_EQ(NormalizeQueryText("MATCH (Ab:Person)"), "MATCH (Ab:Person)");
  EXPECT_NE(NormalizeQueryText("MATCH (ab:person)"),
            NormalizeQueryText("MATCH (AB:PERSON)"));
  // Quoted literals never fold, whichever quote kind, even when their
  // content spells a keyword.
  EXPECT_EQ(NormalizeQueryText("WHERE x = 'match'"), "WHERE x = 'match'");
  EXPECT_EQ(NormalizeQueryText("WHERE x = \"match\""),
            "WHERE x = \"match\"");
}

TEST_F(ServingTest, KeywordCaseSharesOnePlanCacheEntry) {
  QueryEngine engine(&catalog);
  ASSERT_TRUE(engine
                  .Execute("select n.firstName as name match (n:Person) "
                           "where n.employer = 'Acme'")
                  .ok());
  const PlanCacheCounters cold = engine.plan_cache_counters();
  EXPECT_EQ(cold.misses, 1u);
  EXPECT_EQ(cold.plans, 1u);

  // The uppercase spelling of the same query is a hit, not a second plan.
  ASSERT_TRUE(engine.Execute(kQueryMix[0]).ok());
  const PlanCacheCounters warm = engine.plan_cache_counters();
  EXPECT_EQ(warm.hits, 1u);
  EXPECT_EQ(warm.misses, 1u);
  EXPECT_EQ(warm.plans, 1u);
  EXPECT_EQ(engine.plan_cache_size(), 1u);

  // Changing case inside the string literal is a different query.
  ASSERT_TRUE(engine
                  .Execute("SELECT n.firstName AS name MATCH (n:Person) "
                           "WHERE n.employer = 'ACME'")
                  .ok());
  EXPECT_EQ(engine.plan_cache_counters().misses, 2u);
}

}  // namespace
}  // namespace gcore
