// Tests for the static semantic validator (paper well-formedness rules).
#include "engine/validator.h"

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "parser/parser.h"
#include "snb/toy_graphs.h"

namespace gcore {
namespace {

Status Validate(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  if (!q.ok()) return q.status();
  return ValidateQuery(**q);
}

TEST(Validator, AcceptsAllPaperQueries) {
  const char* queries[] = {
      "CONSTRUCT (n) MATCH (n:Person) ON g WHERE n.employer = 'Acme'",
      "CONSTRUCT (c)<-[:worksAt]-(n) MATCH (c:Company) ON g1, "
      "(n:Person) ON g2 WHERE c.name IN n.employer UNION g2",
      "CONSTRUCT social_graph, (x GROUP e :Company {name:=e})"
      "<-[y:worksAt]-(n) MATCH (n:Person {employer=e})",
      "CONSTRUCT (n)-/@p:lp{d:=c}/->(m) "
      "MATCH (n)-/3 SHORTEST p<:knows*> COST c/->(m)",
      "PATH w = (x)-[e:knows]->(y) COST 1/(1+e.m) "
      "CONSTRUCT (n)-/@p:t/->(m) MATCH (n)-/p<~w*>/->(m)",
      "SELECT m.lastName AS l MATCH (m:Person)",
  };
  for (const char* q : queries) {
    EXPECT_TRUE(Validate(q).ok()) << q;
  }
}

TEST(Validator, SortConflictNodeVsEdge) {
  // "it would be illegal to use n (a node) in the place of y (an edge)".
  auto st = Validate("CONSTRUCT (a)-[n]->(b) MATCH (n), (a)-[e]->(b)");
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsBindError());
}

TEST(Validator, SortConflictNodeVsPath) {
  auto st = Validate(
      "CONSTRUCT (m) MATCH (p), (n)-/p<:knows*>/->(m)");
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsBindError());
}

TEST(Validator, SortConflictEdgeVsValue) {
  auto st = Validate(
      "CONSTRUCT (n) MATCH (n {employer=e})-[e:knows]->(m)");
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsBindError());
}

TEST(Validator, AllPathVarInWhereRejected) {
  // ALL bindings may only be projected, never used in expressions.
  auto st = Validate(
      "CONSTRUCT (n)-/p/->(m) "
      "MATCH (n)-/ALL p<:knows*>/->(m) WHERE SIZE(NODES(p)) > 2");
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsUnsupported());
}

TEST(Validator, AllPathVarInSelectRejected) {
  auto st = Validate(
      "SELECT NODES(p)[0] AS first "
      "MATCH (n)-/ALL p<:knows*>/->(m)");
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsUnsupported());
}

TEST(Validator, AllPathVarProjectionAllowed) {
  EXPECT_TRUE(Validate("CONSTRUCT (n)-/p/->(m) "
                       "MATCH (n)-/ALL p<:knows*>/->(m)")
                  .ok());
}

TEST(Validator, StoredAllRejectedStatically) {
  auto st = Validate(
      "CONSTRUCT (n)-/@p/->(m) MATCH (n)-/ALL p<:knows*>/->(m)");
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsUnsupported());
}

TEST(Validator, ConstructPathVarMustBeBound) {
  auto st = Validate("CONSTRUCT (n)-/@q:lbl/->(m) MATCH (n)-[e]->(m)");
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsBindError());
}

TEST(Validator, UnknownPathViewRejected) {
  auto st = Validate("CONSTRUCT (m) MATCH (n)-/p<~nope*>/->(m)");
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsBindError());
}

TEST(Validator, DuplicatePathViewRejected) {
  auto st = Validate(
      "PATH w = (x)-[e:a]->(y) PATH w = (x)-[e:b]->(y) "
      "CONSTRUCT (m) MATCH (n)-/p<~w*>/->(m)");
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsBindError());
}

TEST(Validator, OuterPathViewVisibleInGraphClause) {
  EXPECT_TRUE(Validate("PATH w = (x)-[e:knows]->(y) "
                       "GRAPH g2 AS (CONSTRUCT (m) "
                       "MATCH (n)-/p<~w*>/->(m)) "
                       "CONSTRUCT (z) MATCH (z) ON g2")
                  .ok());
}

TEST(Validator, SubqueriesValidatedRecursively) {
  auto st = Validate(
      "CONSTRUCT (n) MATCH (n) WHERE EXISTS ( "
      "CONSTRUCT (a)-[x]->(b) MATCH (x), (a)-[e]->(b) )");
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsBindError());
}

TEST(Validator, EngineRunsValidationBeforeEvaluation) {
  GraphCatalog catalog;
  snb::RegisterToyData(&catalog);
  QueryEngine engine(&catalog);
  auto r = engine.Execute(
      "CONSTRUCT (a)-[n]->(b) MATCH (n:Person), (a)-[e:knows]->(b)");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsBindError());
}

}  // namespace
}  // namespace gcore
