// Tests for the Table 1 feature detector.
#include "engine/features.h"

#include <gtest/gtest.h>

#include "parser/parser.h"

namespace gcore {
namespace {

std::set<QueryFeature> Detect(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return DetectFeatures(**q);
}

TEST(Features, EveryMatchIsHomomorphicAndEveryConstructConstructs) {
  auto f = Detect("CONSTRUCT (n) MATCH (n:Person)");
  EXPECT_TRUE(f.count(QueryFeature::kHomomorphicMatching));
  EXPECT_TRUE(f.count(QueryFeature::kGraphConstruction));
}

TEST(Features, LiteralAndFiltering) {
  auto f = Detect("CONSTRUCT (n) MATCH (n) WHERE n.employer = 'Acme'");
  EXPECT_TRUE(f.count(QueryFeature::kFilteringMatches));
  EXPECT_TRUE(f.count(QueryFeature::kLiteralMatching));
}

TEST(Features, PathModes) {
  EXPECT_TRUE(
      Detect("CONSTRUCT (m) MATCH (n)-/3 SHORTEST p<:knows*>/->(m)")
          .count(QueryFeature::kKShortestPaths));
  EXPECT_TRUE(Detect("CONSTRUCT (m) MATCH (n)-/<:knows*>/->(m)")
                  .count(QueryFeature::kAllShortestPaths));
  EXPECT_TRUE(Detect("CONSTRUCT (m) MATCH (n)-/@p:toWagner/->(m)")
                  .count(QueryFeature::kQueriesOnPaths));
  EXPECT_TRUE(Detect("CONSTRUCT (m) MATCH (n)-/p<~wKnows*>/->(m)")
                  .count(QueryFeature::kWeightedShortestPaths));
}

TEST(Features, MultiGraphAndCartesian) {
  auto f = Detect(
      "CONSTRUCT (c) MATCH (c:Company) ON g1, (n:Person) ON g2");
  EXPECT_TRUE(f.count(QueryFeature::kMultipleGraphs));
  EXPECT_TRUE(f.count(QueryFeature::kCartesianProduct));
  auto joined = Detect("CONSTRUCT (a) MATCH (a)-[e]->(b), (b)-[f]->(c)");
  EXPECT_FALSE(joined.count(QueryFeature::kCartesianProduct));
}

TEST(Features, ValueJoinAndMembership) {
  auto f = Detect(
      "CONSTRUCT (c) MATCH (c), (n) WHERE c.name = n.employer");
  EXPECT_TRUE(f.count(QueryFeature::kValueJoins));
  EXPECT_TRUE(Detect("CONSTRUCT (c) MATCH (c), (n) "
                     "WHERE c.name IN n.employer")
                  .count(QueryFeature::kListMembership));
}

TEST(Features, Subqueries) {
  EXPECT_TRUE(
      Detect("CONSTRUCT (m) MATCH (n), (m) "
             "WHERE (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)")
          .count(QueryFeature::kImplicitExistential));
  EXPECT_TRUE(Detect("CONSTRUCT (m) MATCH (n), (m) WHERE EXISTS "
                     "( CONSTRUCT () MATCH (n)-[:x]->(m) )")
                  .count(QueryFeature::kExplicitExistential));
}

TEST(Features, ConstructionFamily) {
  auto agg = Detect(
      "CONSTRUCT (x GROUP e :Company {name:=e}) MATCH (n {employer=e})");
  EXPECT_TRUE(agg.count(QueryFeature::kGraphAggregation));
  EXPECT_TRUE(agg.count(QueryFeature::kPropertyAddition));
  EXPECT_TRUE(Detect("CONSTRUCT (n)-/@p:x/->(m) "
                     "MATCH (n)-/p<:knows*>/->(m)")
                  .count(QueryFeature::kGraphProjection));
  EXPECT_TRUE(Detect("GRAPH VIEW v AS (CONSTRUCT (n) MATCH (n))")
                  .count(QueryFeature::kGraphViews));
  EXPECT_TRUE(Detect("CONSTRUCT (n) SET n.x := 1 MATCH (n)")
                  .count(QueryFeature::kPropertyAddition));
}

TEST(Features, SetOperations) {
  EXPECT_TRUE(Detect("g1 UNION g2").count(QueryFeature::kGraphSetOperations));
  EXPECT_TRUE(Detect("CONSTRUCT social_graph, (n) MATCH (n)")
                  .count(QueryFeature::kGraphSetOperations));
}

TEST(Features, Extensions) {
  EXPECT_TRUE(Detect("SELECT n.x AS y MATCH (n)")
                  .count(QueryFeature::kTabularProjection));
  EXPECT_TRUE(Detect("CONSTRUCT (x GROUP c :T {v:=c}) FROM orders")
                  .count(QueryFeature::kTabularImport));
}

TEST(Features, OptionalAndPathFilter) {
  EXPECT_TRUE(Detect("CONSTRUCT (n) MATCH (n) OPTIONAL (n)-[:x]->(c)")
                  .count(QueryFeature::kOptionalMatching));
  auto f = Detect(
      "PATH w = (x)-[e:knows]->(y) WHERE e.v > 0 COST 1 "
      "CONSTRUCT (m) MATCH (n)-/p<~w*>/->(m)");
  EXPECT_TRUE(f.count(QueryFeature::kFilteringPathExpressions));
  EXPECT_TRUE(f.count(QueryFeature::kWeightedShortestPaths));
}

TEST(Features, ReportIsSortedAndNamed) {
  auto q = ParseQuery("CONSTRUCT (n) MATCH (n:Person) WHERE n.x = 1");
  ASSERT_TRUE(q.ok());
  auto lines = FeatureReport(**q);
  EXPECT_FALSE(lines.empty());
  EXPECT_TRUE(std::is_sorted(lines.begin(), lines.end()));
}

TEST(Features, AllEnumValuesHaveNames) {
  for (int i = 0; i <= static_cast<int>(QueryFeature::kTabularImport); ++i) {
    EXPECT_STRNE(QueryFeatureToString(static_cast<QueryFeature>(i)), "?");
  }
}

}  // namespace
}  // namespace gcore
