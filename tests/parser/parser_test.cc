// Parser tests: every numbered query of the paper (lines 1-85) parses,
// with structural assertions and print→reparse round-trips.
#include "parser/parser.h"

#include <gtest/gtest.h>

#include "ast/printer.h"

namespace gcore {
namespace {

std::unique_ptr<Query> MustParse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << "query: " << text << "\n"
                      << q.status().ToString();
  return q.ok() ? std::move(*q) : nullptr;
}

const BasicQuery& FirstBasic(const Query& q) {
  const QueryBody* body = q.body.get();
  while (body->kind != QueryBody::Kind::kBasic) body = body->left.get();
  return *body->basic;
}

// --- the guided tour, verbatim (modulo whitespace) ---------------------------------

TEST(PaperQueries, Q1_Lines1to4) {
  auto q = MustParse(
      "CONSTRUCT (n) MATCH (n:Person) ON social_graph "
      "WHERE n.employer = 'Acme'");
  ASSERT_NE(q, nullptr);
  const BasicQuery& basic = FirstBasic(*q);
  ASSERT_TRUE(basic.construct.has_value());
  ASSERT_TRUE(basic.match.has_value());
  EXPECT_EQ(basic.match->patterns[0].on_graph, "social_graph");
  ASSERT_NE(basic.match->where, nullptr);
  EXPECT_EQ(basic.match->where->kind, Expr::Kind::kBinary);
}

TEST(PaperQueries, Q2_Lines5to9_MultiGraphUnion) {
  auto q = MustParse(
      "CONSTRUCT (c)<-[:worksAt]-(n) "
      "MATCH (c:Company) ON company_graph, (n:Person) ON social_graph "
      "WHERE c.name = n.employer "
      "UNION social_graph");
  ASSERT_NE(q, nullptr);
  ASSERT_EQ(q->body->kind, QueryBody::Kind::kUnion);
  EXPECT_EQ(q->body->right->kind, QueryBody::Kind::kGraphRef);
  EXPECT_EQ(q->body->right->graph_ref, "social_graph");
  const BasicQuery& basic = *q->body->left->basic;
  ASSERT_EQ(basic.match->patterns.size(), 2u);
  EXPECT_EQ(basic.match->patterns[0].on_graph, "company_graph");
  EXPECT_EQ(basic.match->patterns[1].on_graph, "social_graph");
  // Construct chain: (c)<-[:worksAt]-(n).
  const GraphPattern& chain = *basic.construct->items[0].pattern;
  ASSERT_EQ(chain.hops.size(), 1u);
  EXPECT_EQ(chain.hops[0].edge.direction, EdgePattern::Direction::kLeft);
  EXPECT_EQ(chain.hops[0].edge.label_groups[0][0], "worksAt");
}

TEST(PaperQueries, Q3_Lines10to14_InOperator) {
  auto q = MustParse(
      "CONSTRUCT (c)<-[:worksAt]-(n) "
      "MATCH (c:Company) ON company_graph, (n:Person) ON social_graph "
      "WHERE c.name IN n.employer "
      "UNION social_graph");
  ASSERT_NE(q, nullptr);
  const BasicQuery& basic = *q->body->left->basic;
  EXPECT_EQ(basic.match->where->binary_op, BinaryOp::kIn);
}

TEST(PaperQueries, Q4_Lines15to19_PropertyUnrolling) {
  auto q = MustParse(
      "CONSTRUCT (c)<-[:worksAt]-(n) "
      "MATCH (c:Company) ON company_graph, "
      "(n:Person {employer=e}) ON social_graph "
      "WHERE c.name = e UNION social_graph");
  ASSERT_NE(q, nullptr);
  const BasicQuery& basic = *q->body->left->basic;
  const NodePattern& n = basic.match->patterns[1].start;
  ASSERT_EQ(n.props.size(), 1u);
  EXPECT_EQ(n.props[0].mode, PropPattern::Mode::kBindVariable);
  EXPECT_EQ(n.props[0].key, "employer");
  EXPECT_EQ(n.props[0].bind_var, "e");
}

TEST(PaperQueries, Q5_Lines20to22_GraphAggregation) {
  auto q = MustParse(
      "CONSTRUCT social_graph, "
      "(x GROUP e :Company {name:=e})<-[y:worksAt]-(n) "
      "MATCH (n:Person {employer=e})");
  ASSERT_NE(q, nullptr);
  const BasicQuery& basic = FirstBasic(*q);
  ASSERT_EQ(basic.construct->items.size(), 2u);
  EXPECT_EQ(basic.construct->items[0].graph_ref, "social_graph");
  const GraphPattern& chain = *basic.construct->items[1].pattern;
  ASSERT_EQ(chain.start.group_by.size(), 1u);
  EXPECT_EQ(chain.start.group_by[0]->var, "e");
  EXPECT_EQ(chain.start.label_groups[0][0], "Company");
  ASSERT_EQ(chain.start.props.size(), 1u);
  EXPECT_EQ(chain.start.props[0].mode, PropPattern::Mode::kAssign);
}

TEST(PaperQueries, Q6_Lines23to27_KShortestStoredPaths) {
  auto q = MustParse(
      "CONSTRUCT (n)-/@p:localPeople{distance:=c}/->(m) "
      "MATCH (n)-/3 SHORTEST p<:knows*> COST c/->(m) "
      "WHERE (n:Person) AND (m:Person) "
      "AND n.firstName = 'John' AND n.lastName = 'Doe' "
      "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)");
  ASSERT_NE(q, nullptr);
  const BasicQuery& basic = FirstBasic(*q);
  // Construct side: stored path with label + property assignment.
  const PathPattern& cpath = basic.construct->items[0].pattern->hops[0].path;
  EXPECT_TRUE(cpath.stored);
  EXPECT_EQ(cpath.var, "p");
  EXPECT_EQ(cpath.label_groups[0][0], "localPeople");
  EXPECT_EQ(cpath.props[0].key, "distance");
  // Match side: 3 SHORTEST with COST variable.
  const PathPattern& mpath = basic.match->patterns[0].hops[0].path;
  EXPECT_EQ(mpath.mode, PathPattern::Mode::kShortest);
  EXPECT_EQ(mpath.k, 3);
  EXPECT_EQ(mpath.cost_var, "c");
  ASSERT_NE(mpath.rpq, nullptr);
  EXPECT_EQ(mpath.rpq->kind(), RpqExpr::Kind::kStar);
}

TEST(PaperQueries, Q7_Lines28to31_Reachability) {
  auto q = MustParse(
      "CONSTRUCT (m) "
      "MATCH (n:Person)-/<:knows*>/->(m:Person) "
      "WHERE n.firstName = 'John' AND n.lastName = 'Doe' "
      "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)");
  ASSERT_NE(q, nullptr);
  const PathPattern& path =
      FirstBasic(*q).match->patterns[0].hops[0].path;
  EXPECT_EQ(path.mode, PathPattern::Mode::kReachability);
  EXPECT_TRUE(path.var.empty());
}

TEST(PaperQueries, Q8_Lines32to35_AllPaths) {
  auto q = MustParse(
      "CONSTRUCT (n)-/p/->(m) "
      "MATCH (n:Person)-/ALL p<:knows*>/->(m:Person) "
      "WHERE n.firstName = 'John' AND n.lastName = 'Doe' "
      "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)");
  ASSERT_NE(q, nullptr);
  const BasicQuery& basic = FirstBasic(*q);
  EXPECT_EQ(basic.match->patterns[0].hops[0].path.mode,
            PathPattern::Mode::kAll);
  // Construct side: plain projection, not stored.
  EXPECT_FALSE(basic.construct->items[0].pattern->hops[0].path.stored);
}

TEST(PaperQueries, Q9_Lines36to38_ExplicitExists) {
  auto q = MustParse(
      "CONSTRUCT (x) MATCH (n), (m) WHERE EXISTS ( CONSTRUCT () "
      "MATCH (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m) )");
  ASSERT_NE(q, nullptr);
  const Expr& where = *FirstBasic(*q).match->where;
  EXPECT_EQ(where.kind, Expr::Kind::kExists);
  ASSERT_NE(where.subquery, nullptr);
}

TEST(PaperQueries, Q10_Lines39to47_GraphViewOptional) {
  auto q = MustParse(
      "GRAPH VIEW social_graph1 AS ( "
      "CONSTRUCT social_graph, (n)-[e]->(m) SET e.nr_messages := COUNT(*) "
      "MATCH (n)-[e:knows]->(m) WHERE (n:Person) AND (m:Person) "
      "OPTIONAL (n)<-[c1]-(msg1:Post|Comment), (msg1)-[:reply_of]-(msg2), "
      "(msg2:Post|Comment)-[c2]->(m) "
      "WHERE (c1:has_creator) AND (c2:has_creator) )");
  ASSERT_NE(q, nullptr);
  ASSERT_EQ(q->graph_clauses.size(), 1u);
  EXPECT_TRUE(q->graph_clauses[0].is_view);
  EXPECT_EQ(q->graph_clauses[0].name, "social_graph1");
  const Query& inner = *q->graph_clauses[0].query;
  const BasicQuery& basic = FirstBasic(inner);
  ASSERT_EQ(basic.construct->items[1].sets.size(), 1u);
  EXPECT_EQ(basic.construct->items[1].sets[0].kind,
            SetStatement::Kind::kSetProperty);
  ASSERT_EQ(basic.match->optionals.size(), 1u);
  EXPECT_EQ(basic.match->optionals[0].patterns.size(), 3u);
  ASSERT_NE(basic.match->optionals[0].where, nullptr);
  // Disjunctive label test (msg1:Post|Comment).
  const NodePattern& msg1 =
      basic.match->optionals[0].patterns[0].hops[0].to;
  ASSERT_EQ(msg1.label_groups.size(), 1u);
  EXPECT_EQ(msg1.label_groups[0],
            (std::vector<std::string>{"Post", "Comment"}));
}

TEST(PaperQueries, OptionalChains_Lines48to56) {
  auto q = MustParse(
      "CONSTRUCT (n) MATCH (n:Person) "
      "OPTIONAL (n)-[:worksAt]->(c) "
      "OPTIONAL (n)-[:livesIn]->(a)");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(FirstBasic(*q).match->optionals.size(), 2u);
}

TEST(PaperQueries, Q11_Lines57to66_PathClauseWeighted) {
  auto q = MustParse(
      "GRAPH VIEW social_graph2 AS ( "
      "PATH wKnows = (x)-[e:knows]->(y) "
      "WHERE NOT 'Acme' IN y.employer "
      "COST 1 / (1 + e.nr_messages) "
      "CONSTRUCT social_graph1, (n)-/@p:toWagner/->(m) "
      "MATCH (n:Person)-/p<~wKnows*>/->(m:Person) ON social_graph1 "
      "WHERE (m)-[:hasInterest]->(:Tag {name='Wagner'}) "
      "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m) "
      "AND n.firstName = 'John' AND n.lastName = 'Doe')");
  ASSERT_NE(q, nullptr);
  const Query& inner = *q->graph_clauses[0].query;
  ASSERT_EQ(inner.path_clauses.size(), 1u);
  const PathClause& wknows = inner.path_clauses[0];
  EXPECT_EQ(wknows.name, "wKnows");
  ASSERT_NE(wknows.where, nullptr);
  ASSERT_NE(wknows.cost, nullptr);
  EXPECT_EQ(wknows.cost->binary_op, BinaryOp::kDiv);
  // The match regex references the view.
  const PathPattern& path = FirstBasic(inner).match->patterns[0].hops[0].path;
  ASSERT_NE(path.rpq, nullptr);
  EXPECT_TRUE(path.rpq->ReferencesView());
}

TEST(PaperQueries, Q12_Lines67to71_WhenAndPathIndexing) {
  auto q = MustParse(
      "CONSTRUCT (n)-[e:wagnerFriend {score:=COUNT(*)}]->(m) "
      "WHEN e.score > 0 "
      "MATCH (n:Person)-/@p:toWagner/->(), (m:Person) ON social_graph2 "
      "WHERE n = nodes(p)[1]");
  ASSERT_NE(q, nullptr);
  const BasicQuery& basic = FirstBasic(*q);
  ASSERT_NE(basic.construct->items[0].when, nullptr);
  EXPECT_EQ(basic.construct->items[0].when->binary_op, BinaryOp::kGt);
  // Stored-path match with anonymous target.
  const PathPattern& path = basic.match->patterns[0].hops[0].path;
  EXPECT_EQ(path.mode, PathPattern::Mode::kStoredMatch);
  EXPECT_TRUE(path.stored);
  // nodes(p)[1] parses as Index(Function).
  const Expr& where = *basic.match->where;
  EXPECT_EQ(where.args[1]->kind, Expr::Kind::kIndex);
}

TEST(PaperQueries, Select_Lines72to75) {
  auto q = MustParse(
      "SELECT m.lastName + ', ' + m.firstName AS friendName "
      "MATCH (n:Person)-/<:knows*>/->(m:Person) "
      "WHERE n.firstName = 'John' AND n.lastName = 'Doe' "
      "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)");
  ASSERT_NE(q, nullptr);
  EXPECT_TRUE(q->IsTabular());
  const SelectClause& select = *FirstBasic(*q).select;
  ASSERT_EQ(select.items.size(), 1u);
  EXPECT_EQ(select.items[0].alias, "friendName");
}

TEST(PaperQueries, From_Lines76to80) {
  auto q = MustParse(
      "CONSTRUCT "
      "(cust GROUP custName :Customer {name:=custName}), "
      "(prod GROUP prodCode :Product {code:=prodCode}), "
      "(cust)-[:bought]->(prod) "
      "FROM orders");
  ASSERT_NE(q, nullptr);
  const BasicQuery& basic = FirstBasic(*q);
  EXPECT_EQ(basic.from_table, "orders");
  EXPECT_EQ(basic.construct->items.size(), 3u);
}

TEST(PaperQueries, OnTable_Lines81to85) {
  auto q = MustParse(
      "CONSTRUCT "
      "(cust GROUP o.custName :Customer {name:=o.custName}), "
      "(prod GROUP o.prodCode :Product {code:=o.prodCode}), "
      "(cust)-[:bought]->(prod) "
      "MATCH (o) ON orders");
  ASSERT_NE(q, nullptr);
  const BasicQuery& basic = FirstBasic(*q);
  EXPECT_EQ(basic.match->patterns[0].on_graph, "orders");
  // GROUP by property access.
  EXPECT_EQ(basic.construct->items[0].pattern->start.group_by[0]->kind,
            Expr::Kind::kProperty);
}

// --- additional structural coverage --------------------------------------------------

TEST(Parser, SetOperationsLeftAssociative) {
  auto q = MustParse("g1 UNION g2 INTERSECT g3 MINUS g4");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->body->kind, QueryBody::Kind::kMinus);
  EXPECT_EQ(q->body->left->kind, QueryBody::Kind::kIntersect);
  EXPECT_EQ(q->body->left->left->kind, QueryBody::Kind::kUnion);
}

TEST(Parser, ParenthesizedBody) {
  auto q = MustParse("(CONSTRUCT (n) MATCH (n)) UNION g2");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->body->kind, QueryBody::Kind::kUnion);
}

TEST(Parser, GraphClauseNonView) {
  auto q = MustParse(
      "GRAPH tmp AS (CONSTRUCT (n) MATCH (n:Person)) CONSTRUCT (m) "
      "MATCH (m) ON tmp");
  ASSERT_NE(q, nullptr);
  ASSERT_EQ(q->graph_clauses.size(), 1u);
  EXPECT_FALSE(q->graph_clauses[0].is_view);
}

TEST(Parser, CopySyntax) {
  auto q = MustParse("CONSTRUCT (=n)-[=y]->(m) MATCH (n)-[y]->(m)");
  ASSERT_NE(q, nullptr);
  const GraphPattern& chain = *FirstBasic(*q).construct->items[0].pattern;
  EXPECT_TRUE(chain.start.is_copy);
  EXPECT_TRUE(chain.hops[0].edge.is_copy);
}

TEST(Parser, CaseExpression) {
  auto q = MustParse(
      "SELECT CASE WHEN SIZE(n.employer) = 0 THEN 'none' "
      "ELSE 'some' END AS status MATCH (n:Person)");
  ASSERT_NE(q, nullptr);
  const Expr& e = *FirstBasic(*q).select->items[0].expr;
  EXPECT_EQ(e.kind, Expr::Kind::kCase);
  ASSERT_EQ(e.case_arms.size(), 1u);
  ASSERT_NE(e.case_else, nullptr);
}

TEST(Parser, UndirectedEdge) {
  auto q = MustParse("CONSTRUCT (a) MATCH (a)-[e:knows]-(b)");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(FirstBasic(*q).match->patterns[0].hops[0].edge.direction,
            EdgePattern::Direction::kUndirected);
}

TEST(Parser, RemoveStatement) {
  auto q = MustParse(
      "CONSTRUCT (n) REMOVE n.secret REMOVE n:Internal MATCH (n)");
  ASSERT_NE(q, nullptr);
  const auto& sets = FirstBasic(*q).construct->items[0].sets;
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0].kind, SetStatement::Kind::kRemoveProperty);
  EXPECT_EQ(sets[1].kind, SetStatement::Kind::kRemoveLabel);
}

TEST(Parser, ErrorsHaveParseErrorCode) {
  for (const char* bad :
       {"", "CONSTRUCT", "MATCH (n)", "CONSTRUCT (n MATCH (n)",
        "CONSTRUCT (n) MATCH (n) WHERE", "CONSTRUCT (n) MATCH (n)-[e]",
        "GRAPH VIEW AS (CONSTRUCT (n) MATCH (n))"}) {
    auto q = ParseQuery(bad);
    EXPECT_FALSE(q.ok()) << "should not parse: " << bad;
    if (!q.ok()) EXPECT_TRUE(q.status().IsParseError()) << bad;
  }
}

TEST(Parser, KeywordsUsableAsPropertyKeys) {
  auto q = MustParse("CONSTRUCT (n) MATCH (n) WHERE n.cost > 1 AND n.count = 2");
  EXPECT_NE(q, nullptr);
}

// Round-trip: print → reparse → print must be a fixed point.
class PrintRoundTrip : public ::testing::TestWithParam<const char*> {};

// EXPLAIN / EXPLAIN ANALYZE are contextual keywords on the outermost
// query; `explain` and `analyze` stay usable as identifiers.
TEST(ExplainParsing, ExplainAnalyzeSetsBothFlags) {
  auto q = MustParse("EXPLAIN ANALYZE CONSTRUCT (n) MATCH (n:Person)");
  ASSERT_NE(q, nullptr);
  EXPECT_TRUE(q->explain);
  EXPECT_TRUE(q->explain_analyze);
  const std::string printed = PrintQuery(*q);
  EXPECT_EQ(printed.rfind("EXPLAIN ANALYZE ", 0), 0u) << printed;
  auto reparsed = ParseQuery(printed);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_TRUE((*reparsed)->explain_analyze);
}

TEST(ExplainParsing, PlainExplainDoesNotAnalyze) {
  auto q = MustParse("EXPLAIN CONSTRUCT (n) MATCH (n:Person)");
  ASSERT_NE(q, nullptr);
  EXPECT_TRUE(q->explain);
  EXPECT_FALSE(q->explain_analyze);
}

TEST(ExplainParsing, AnalyzeRemainsAnIdentifier) {
  // No query follows ANALYZE, so it is the graph named "analyze" under a
  // plain EXPLAIN.
  auto q = MustParse("EXPLAIN analyze");
  ASSERT_NE(q, nullptr);
  EXPECT_TRUE(q->explain);
  EXPECT_FALSE(q->explain_analyze);
  ASSERT_NE(q->body, nullptr);
  EXPECT_EQ(q->body->kind, QueryBody::Kind::kGraphRef);
  EXPECT_EQ(q->body->graph_ref, "analyze");
  // And with a query following, EXPLAIN ANALYZE of a bare graph ref.
  auto q2 = MustParse("EXPLAIN ANALYZE social_graph");
  ASSERT_NE(q2, nullptr);
  EXPECT_TRUE(q2->explain_analyze);
  EXPECT_EQ(q2->body->graph_ref, "social_graph");
}

TEST_P(PrintRoundTrip, PrintReparsePrintIsStable) {
  auto q1 = MustParse(GetParam());
  ASSERT_NE(q1, nullptr);
  const std::string printed1 = PrintQuery(*q1);
  auto q2 = ParseQuery(printed1);
  ASSERT_TRUE(q2.ok()) << "reparse failed for: " << printed1 << "\n"
                       << q2.status().ToString();
  EXPECT_EQ(PrintQuery(**q2), printed1);
}

INSTANTIATE_TEST_SUITE_P(
    PaperAndVariants, PrintRoundTrip,
    ::testing::Values(
        "CONSTRUCT (n) MATCH (n:Person) ON social_graph WHERE n.employer = 'Acme'",
        "CONSTRUCT (c)<-[:worksAt]-(n) MATCH (c:Company) ON company_graph, "
        "(n:Person) ON social_graph WHERE c.name IN n.employer UNION social_graph",
        "CONSTRUCT social_graph, (x GROUP e :Company {name:=e})<-[y:worksAt]-(n) "
        "MATCH (n:Person {employer=e})",
        "CONSTRUCT (n)-/@p:localPeople{distance:=c}/->(m) "
        "MATCH (n)-/3 SHORTEST p<:knows*> COST c/->(m) WHERE (n:Person)",
        "CONSTRUCT (m) MATCH (n:Person)-/<:knows*>/->(m:Person)",
        "CONSTRUCT (n)-/p/->(m) MATCH (n:Person)-/ALL p<:knows*>/->(m:Person)",
        "SELECT m.lastName + ', ' + m.firstName AS friendName MATCH (m:Person)",
        "CONSTRUCT (cust GROUP custName :Customer {name:=custName}) FROM orders",
        "g1 UNION g2 MINUS g3",
        "CONSTRUCT (a)-[e:x]->(b) WHEN e.score > 0 MATCH (a)-[e0:y]-(b)"));

}  // namespace
}  // namespace gcore
