// Tests for the G-CORE lexer.
#include "parser/lexer.h"

#include <gtest/gtest.h>

namespace gcore {
namespace {

std::vector<TokenType> Types(const std::string& text) {
  auto tokens = Tokenize(text);
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  std::vector<TokenType> types;
  for (const auto& t : *tokens) types.push_back(t.type);
  return types;
}

TEST(Lexer, EmptyInputYieldsEof) {
  EXPECT_EQ(Types(""), std::vector<TokenType>{TokenType::kEof});
  EXPECT_EQ(Types("   \n\t "), std::vector<TokenType>{TokenType::kEof});
}

TEST(Lexer, KeywordsCaseInsensitive) {
  EXPECT_EQ(Types("CONSTRUCT construct Construct"),
            (std::vector<TokenType>{TokenType::kConstruct,
                                    TokenType::kConstruct,
                                    TokenType::kConstruct, TokenType::kEof}));
}

TEST(Lexer, IdentifiersCaseSensitive) {
  auto tokens = Tokenize("social_graph Social_Graph");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "social_graph");
  EXPECT_EQ((*tokens)[1].text, "Social_Graph");
}

TEST(Lexer, NumbersIntAndDouble) {
  auto tokens = Tokenize("42 0.95 7");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kInteger);
  EXPECT_EQ((*tokens)[0].int_value, 42);
  EXPECT_EQ((*tokens)[1].type, TokenType::kDouble);
  EXPECT_DOUBLE_EQ((*tokens)[1].double_value, 0.95);
  EXPECT_EQ((*tokens)[2].int_value, 7);
}

TEST(Lexer, DotAfterIntStaysSeparateWithoutDigit) {
  // `nodes(p)[1].name` must not lex `1.` as a double prefix.
  EXPECT_EQ(Types("1.name"),
            (std::vector<TokenType>{TokenType::kInteger, TokenType::kDot,
                                    TokenType::kIdentifier, TokenType::kEof}));
}

TEST(Lexer, StringsSingleAndDoubleQuoted) {
  auto tokens = Tokenize("'Acme' \"HAL\"");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kString);
  EXPECT_EQ((*tokens)[0].text, "Acme");
  EXPECT_EQ((*tokens)[1].text, "HAL");
}

TEST(Lexer, StringEscapes) {
  auto tokens = Tokenize(R"('a\'b' 'x''y' 'n\nl')");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "a'b");
  EXPECT_EQ((*tokens)[1].text, "x'y");  // SQL doubled-quote escape
  EXPECT_EQ((*tokens)[2].text, "n\nl");
}

TEST(Lexer, UnterminatedStringIsError) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(Lexer, CompoundOperators) {
  EXPECT_EQ(Types(":= <- -> <= >= <>"),
            (std::vector<TokenType>{TokenType::kAssign, TokenType::kArrowLeft,
                                    TokenType::kArrowRight, TokenType::kLe,
                                    TokenType::kGe, TokenType::kNeq,
                                    TokenType::kEof}));
}

TEST(Lexer, EdgePatternTokenization) {
  EXPECT_EQ(Types("-[e:knows]->"),
            (std::vector<TokenType>{TokenType::kMinus, TokenType::kLBracket,
                                    TokenType::kIdentifier, TokenType::kColon,
                                    TokenType::kIdentifier,
                                    TokenType::kRBracket,
                                    TokenType::kArrowRight, TokenType::kEof}));
}

TEST(Lexer, PathPatternTokenization) {
  EXPECT_EQ(Types("-/@p:toWagner/->"),
            (std::vector<TokenType>{
                TokenType::kMinus, TokenType::kSlash, TokenType::kAt,
                TokenType::kIdentifier, TokenType::kColon,
                TokenType::kIdentifier, TokenType::kSlash,
                TokenType::kArrowRight, TokenType::kEof}));
}

TEST(Lexer, RegexTokenization) {
  EXPECT_EQ(Types("<:knows*>"),
            (std::vector<TokenType>{TokenType::kLt, TokenType::kColon,
                                    TokenType::kIdentifier, TokenType::kStar,
                                    TokenType::kGt, TokenType::kEof}));
  EXPECT_EQ(Types("<~wKnows*>"),
            (std::vector<TokenType>{TokenType::kLt, TokenType::kTilde,
                                    TokenType::kIdentifier, TokenType::kStar,
                                    TokenType::kGt, TokenType::kEof}));
}

TEST(Lexer, UnderscoreIsWildcardToken) {
  EXPECT_EQ(Types("_"),
            (std::vector<TokenType>{TokenType::kUnderscore, TokenType::kEof}));
  // But underscore-prefixed identifiers stay identifiers.
  auto tokens = Tokenize("_x");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kIdentifier);
}

TEST(Lexer, LineComments) {
  EXPECT_EQ(Types("1 -- a comment\n2"),
            (std::vector<TokenType>{TokenType::kInteger, TokenType::kInteger,
                                    TokenType::kEof}));
}

TEST(Lexer, MinusMinusWithoutSpaceIsArithmetic) {
  EXPECT_EQ(Types("a--b"),
            (std::vector<TokenType>{TokenType::kIdentifier, TokenType::kMinus,
                                    TokenType::kMinus, TokenType::kIdentifier,
                                    TokenType::kEof}));
}

TEST(Lexer, PositionTracking) {
  auto tokens = Tokenize("a\n  b");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1u);
  EXPECT_EQ((*tokens)[0].column, 1u);
  EXPECT_EQ((*tokens)[1].line, 2u);
  EXPECT_EQ((*tokens)[1].column, 3u);
}

TEST(Lexer, UnexpectedCharacterError) {
  auto r = Tokenize("a $ b");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
}

TEST(Lexer, AllKeywordsRecognized) {
  EXPECT_EQ(Types("MATCH WHERE OPTIONAL ON UNION INTERSECT MINUS GRAPH VIEW "
                  "AS PATH COST SHORTEST ALL WHEN SET REMOVE GROUP EXISTS "
                  "SELECT FROM IN SUBSET AND OR NOT TRUE FALSE NULL CASE "
                  "THEN ELSE END DISTINCT COUNT SUM MIN MAX AVG COLLECT")
                .size(),
            41u);  // 40 keywords + EOF
}

}  // namespace
}  // namespace gcore
