// Tests for the SNB-like synthetic generator (DESIGN.md S13): Figure 3
// schema conformance, determinism, scaling, and queryability.
#include "snb/generator.h"

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "graph/graph_ops.h"
#include "snb/schema.h"

namespace gcore {
namespace {

snb::GeneratorOptions SmallOptions() {
  snb::GeneratorOptions options;
  options.num_persons = 200;
  return options;
}

TEST(Generator, DeterministicUnderSeed) {
  IdAllocator ids1, ids2;
  PathPropertyGraph g1 = snb::Generate(SmallOptions(), &ids1);
  PathPropertyGraph g2 = snb::Generate(SmallOptions(), &ids2);
  EXPECT_TRUE(GraphEquals(g1, g2));
}

TEST(Generator, DifferentSeedsDiffer) {
  IdAllocator ids1, ids2;
  snb::GeneratorOptions other = SmallOptions();
  other.seed = 7;
  PathPropertyGraph g1 = snb::Generate(SmallOptions(), &ids1);
  PathPropertyGraph g2 = snb::Generate(other, &ids2);
  EXPECT_FALSE(GraphEquals(g1, g2));
}

TEST(Generator, ProducesWellFormedPpg) {
  IdAllocator ids;
  PathPropertyGraph g = snb::Generate(SmallOptions(), &ids);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(Generator, SchemaLabelsPresent) {
  IdAllocator ids;
  PathPropertyGraph g = snb::Generate(SmallOptions(), &ids);
  std::map<std::string, int> node_labels;
  g.ForEachNode([&](NodeId n) {
    for (const auto& l : g.Labels(n)) ++node_labels[l];
  });
  EXPECT_EQ(node_labels[snb::kPerson], 200);
  EXPECT_GT(node_labels[snb::kCity], 0);
  EXPECT_GT(node_labels[snb::kCompany], 0);
  EXPECT_GT(node_labels[snb::kTag], 0);
  EXPECT_GT(node_labels[snb::kPost], 0);
  EXPECT_GT(node_labels[snb::kComment], 0);
}

TEST(Generator, EdgeSchemaConformsToFigure3) {
  IdAllocator ids;
  PathPropertyGraph g = snb::Generate(SmallOptions(), &ids);
  Status st = Status::OK();
  g.ForEachEdge([&](EdgeId e, NodeId src, NodeId dst) {
    const LabelSet& l = g.Labels(e);
    auto has = [&](const char* label) { return l.Contains(label); };
    if (has(snb::kKnows)) {
      EXPECT_TRUE(g.Labels(src).Contains(snb::kPerson));
      EXPECT_TRUE(g.Labels(dst).Contains(snb::kPerson));
    } else if (has(snb::kIsLocatedIn)) {
      EXPECT_TRUE(g.Labels(dst).Contains(snb::kCity));
    } else if (has(snb::kWorksAt)) {
      EXPECT_TRUE(g.Labels(dst).Contains(snb::kCompany));
    } else if (has(snb::kHasInterest)) {
      EXPECT_TRUE(g.Labels(dst).Contains(snb::kTag));
    } else if (has(snb::kHasCreator)) {
      EXPECT_TRUE(g.Labels(dst).Contains(snb::kPerson));
      EXPECT_TRUE(g.Labels(src).Contains(snb::kPost) ||
                  g.Labels(src).Contains(snb::kComment));
    } else if (has(snb::kReplyOf)) {
      EXPECT_TRUE(g.Labels(src).Contains(snb::kComment));
    } else {
      ADD_FAILURE() << "unexpected edge label " << l.ToString();
    }
  });
  EXPECT_TRUE(st.ok());
}

TEST(Generator, KnowsEdgesAreBidirectionalPairs) {
  IdAllocator ids;
  PathPropertyGraph g = snb::Generate(SmallOptions(), &ids);
  std::set<std::pair<uint64_t, uint64_t>> knows;
  g.ForEachEdge([&](EdgeId e, NodeId src, NodeId dst) {
    if (g.Labels(e).Contains(snb::kKnows)) {
      knows.insert({src.value(), dst.value()});
    }
  });
  for (const auto& [a, b] : knows) {
    EXPECT_TRUE(knows.count({b, a}) > 0) << a << "->" << b;
  }
}

TEST(Generator, EveryPersonHasACity) {
  IdAllocator ids;
  PathPropertyGraph g = snb::Generate(SmallOptions(), &ids);
  std::set<NodeId> with_city;
  g.ForEachEdge([&](EdgeId e, NodeId src, NodeId) {
    if (g.Labels(e).Contains(snb::kIsLocatedIn)) with_city.insert(src);
  });
  size_t persons = 0;
  g.ForEachNode([&](NodeId n) {
    if (g.Labels(n).Contains(snb::kPerson)) {
      ++persons;
      EXPECT_TRUE(with_city.count(n) > 0);
    }
  });
  EXPECT_EQ(persons, 200u);
}

TEST(Generator, SomePersonsMultiValuedEmployer) {
  IdAllocator ids;
  snb::GeneratorOptions options = SmallOptions();
  options.num_persons = 500;
  options.dual_employer_fraction = 0.2;
  PathPropertyGraph g = snb::Generate(options, &ids);
  int dual = 0;
  g.ForEachNode([&](NodeId n) {
    if (g.Property(n, snb::kEmployer).size() >= 2) ++dual;
  });
  EXPECT_GT(dual, 0);
}

TEST(Generator, ScaleFactorQuadruples) {
  EXPECT_EQ(snb::ScaleFactor(0).num_persons, 100u);
  EXPECT_EQ(snb::ScaleFactor(1).num_persons, 400u);
  EXPECT_EQ(snb::ScaleFactor(2).num_persons, 1600u);
}

TEST(Generator, PaperQueriesRunOnGeneratedData) {
  GraphCatalog catalog;
  snb::GeneratorOptions options = SmallOptions();
  catalog.RegisterGraph("snb", snb::Generate(options, catalog.ids()));
  catalog.SetDefaultGraph("snb");
  QueryEngine engine(&catalog);

  auto q1 = engine.Execute(
      "CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme'");
  ASSERT_TRUE(q1.ok()) << q1.status().ToString();
  EXPECT_GT(q1->graph->NumNodes(), 0u);

  auto agg = engine.Execute(
      "CONSTRUCT (x GROUP e :Company2 {name:=e}) "
      "MATCH (n:Person {employer=e})");
  ASSERT_TRUE(agg.ok()) << agg.status().ToString();
  EXPECT_GT(agg->graph->NumNodes(), 0u);

  auto reach = engine.Execute(
      "SELECT COUNT(*) AS reachable "
      "MATCH (n:Person)-/<:knows*>/->(m:Person) "
      "WHERE n.firstName = 'John'");
  ASSERT_TRUE(reach.ok()) << reach.status().ToString();
}

class GeneratorScaling : public ::testing::TestWithParam<size_t> {};

TEST_P(GeneratorScaling, EntityCountsScale) {
  IdAllocator ids;
  snb::GeneratorOptions options;
  options.num_persons = GetParam();
  PathPropertyGraph g = snb::Generate(options, &ids);
  size_t persons = 0;
  g.ForEachNode([&](NodeId n) {
    if (g.Labels(n).Contains(snb::kPerson)) ++persons;
  });
  EXPECT_EQ(persons, GetParam());
  // knows pairs ≈ persons * avg/2 (deduplicated, so at most).
  size_t knows = 0;
  g.ForEachEdge([&](EdgeId e, NodeId, NodeId) {
    if (g.Labels(e).Contains(snb::kKnows)) ++knows;
  });
  EXPECT_GT(knows, GetParam());  // degree > 1 on average
  EXPECT_LE(knows, GetParam() * options.avg_knows_degree);
  EXPECT_TRUE(g.Validate().ok());
}

INSTANTIATE_TEST_SUITE_P(Sizes, GeneratorScaling,
                         ::testing::Values(50, 100, 400, 1000));

}  // namespace
}  // namespace gcore
