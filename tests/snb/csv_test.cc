// Tests for CSV table import/export.
#include <fstream>
#include "snb/csv.h"

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "graph/catalog.h"

namespace gcore {
namespace {

TEST(Csv, ParsesHeaderAndTypedCells) {
  auto t = ParseCsv("name,age,score,member,since\n"
                    "Ada,36,9.5,TRUE,2014-12-01\n"
                    "Bob,41,7.25,false,1/2/2015\n");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->NumColumns(), 5u);
  ASSERT_EQ(t->NumRows(), 2u);
  EXPECT_EQ(t->At(0, 0), Value::String("Ada"));
  EXPECT_EQ(t->At(0, 1), Value::Int(36));
  EXPECT_EQ(t->At(0, 2), Value::Double(9.5));
  EXPECT_EQ(t->At(0, 3), Value::Bool(true));
  EXPECT_EQ(t->At(0, 4), Value::OfDate(Date{2014, 12, 1}));
  EXPECT_EQ(t->At(1, 4), Value::OfDate(Date{2015, 2, 1}));
}

TEST(Csv, EmptyCellIsNull) {
  auto t = ParseCsv("a,b\n1,\n,2\n");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->At(0, 1).is_null());
  EXPECT_TRUE(t->At(1, 0).is_null());
}

TEST(Csv, QuotedFieldsWithSeparatorsAndEscapes) {
  auto t = ParseCsv("a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->At(0, 0), Value::String("x,y"));
  EXPECT_EQ(t->At(0, 1), Value::String("he said \"hi\""));
}

TEST(Csv, CrLfAndBlankLines) {
  auto t = ParseCsv("a,b\r\n1,2\r\n\r\n3,4\r\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->NumRows(), 2u);
}

TEST(Csv, RaggedRowRejected) {
  EXPECT_FALSE(ParseCsv("a,b\n1\n").ok());
  EXPECT_FALSE(ParseCsv("a,b\n1,2,3\n").ok());
}

TEST(Csv, UnterminatedQuoteRejected) {
  EXPECT_FALSE(ParseCsv("a\n\"oops\n").ok());
}

TEST(Csv, NumbersWithSignsAndEdgeCases) {
  auto t = ParseCsv("v\n-5\n+3\n1.0\n-2.5\n1.2.3\n007\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->At(0, 0), Value::Int(-5));
  EXPECT_EQ(t->At(1, 0), Value::Int(3));
  EXPECT_EQ(t->At(2, 0), Value::Double(1.0));
  EXPECT_EQ(t->At(3, 0), Value::Double(-2.5));
  EXPECT_EQ(t->At(4, 0), Value::String("1.2.3"));  // not a number
  EXPECT_EQ(t->At(5, 0), Value::Int(7));
}

TEST(Csv, NonDateSlashesStayStrings) {
  auto t = ParseCsv("v\na/b/c\n32/13/2020\n");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->At(0, 0).is_string());
  EXPECT_TRUE(t->At(1, 0).is_string());  // invalid calendar date
}

TEST(Csv, RoundTripWriteParse) {
  Table t({"name", "qty", "note"});
  ASSERT_TRUE(t.AddRow({Value::String("widget,large"), Value::Int(3),
                        Value::Null()})
                  .ok());
  ASSERT_TRUE(t.AddRow({Value::String("he said \"go\""), Value::Double(2.5),
                        Value::String("ok")})
                  .ok());
  auto back = ParseCsv(WriteCsv(t));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->NumRows(), 2u);
  EXPECT_EQ(back->At(0, 0), Value::String("widget,large"));
  EXPECT_TRUE(back->At(0, 2).is_null());
  EXPECT_EQ(back->At(1, 0), Value::String("he said \"go\""));
  EXPECT_EQ(back->At(1, 1), Value::Double(2.5));
}

TEST(Csv, EndToEndCsvToGraphQuery) {
  // CSV -> catalog table -> FROM <table> -> graph (the full Section 5
  // import pipeline).
  auto orders = ParseCsv("custName,prodCode\nAda,P1\nBob,P1\nAda,P2\n");
  ASSERT_TRUE(orders.ok());
  GraphCatalog catalog;
  catalog.RegisterTable("csv_orders", std::move(*orders));
  QueryEngine engine(&catalog);
  auto r = engine.Execute(
      "CONSTRUCT (c GROUP custName :Customer {name:=custName}), "
      "(p GROUP prodCode :Product {code:=prodCode}), "
      "(c)-[:bought]->(p) FROM csv_orders");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->graph->NumNodes(), 4u);  // 2 customers + 2 products
  EXPECT_EQ(r->graph->NumEdges(), 3u);
}

TEST(Csv, FileRoundTrip) {
  Table t({"x"});
  ASSERT_TRUE(t.AddRow({Value::Int(42)}).ok());
  const std::string path = ::testing::TempDir() + "/gcore_csv_test.csv";
  {
    std::ofstream out(path);
    out << WriteCsv(t);
  }
  auto back = ReadCsvFile(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->At(0, 0), Value::Int(42));
  EXPECT_FALSE(ReadCsvFile("/definitely/not/here.csv").ok());
}

}  // namespace
}  // namespace gcore
