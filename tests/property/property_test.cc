// Cross-module property tests: invariants that must hold on arbitrary
// (generated) inputs, swept with TEST_P over seeds and scales.
#include <gtest/gtest.h>

#include "engine/engine.h"
#include "graph/graph_ops.h"
#include "parser/parser.h"
#include "paths/k_shortest.h"
#include "paths/product_bfs.h"
#include "snb/generator.h"
#include "snb/schema.h"

namespace gcore {
namespace {

struct EngineFixture {
  GraphCatalog catalog;
  std::unique_ptr<QueryEngine> engine;

  explicit EngineFixture(uint64_t seed, size_t persons = 120) {
    snb::GeneratorOptions options;
    options.seed = seed;
    options.num_persons = persons;
    catalog.RegisterGraph("snb", snb::Generate(options, catalog.ids()));
    catalog.SetDefaultGraph("snb");
    engine = std::make_unique<QueryEngine>(&catalog);
  }

  const PathPropertyGraph& graph() {
    return **catalog.Lookup("snb");
  }
};

class EngineInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineInvariants, IdentityConstructIsSubgraphOfInput) {
  EngineFixture f(GetParam());
  auto r = f.engine->Execute("CONSTRUCT (n)-[e]->(m) MATCH (n)-[e]->(m)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const PathPropertyGraph& out = *r->graph;
  EXPECT_TRUE(out.Validate().ok());
  out.ForEachNode([&](NodeId n) { EXPECT_TRUE(f.graph().HasNode(n)); });
  out.ForEachEdge([&](EdgeId e, NodeId src, NodeId dst) {
    EXPECT_TRUE(f.graph().HasEdge(e));
    EXPECT_EQ(f.graph().EdgeEndpoints(e), std::make_pair(src, dst));
  });
  EXPECT_EQ(out.NumEdges(), f.graph().NumEdges());
}

TEST_P(EngineInvariants, ResultGraphsAlwaysValidate) {
  EngineFixture f(GetParam());
  const char* queries[] = {
      "CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme'",
      "CONSTRUCT (x GROUP e :Emp {name:=e}) MATCH (n:Person {employer=e})",
      "CONSTRUCT (n)-[:coloc]->(m) "
      "MATCH (n:Person)-[:isLocatedIn]->(c)<-[:isLocatedIn]-(m:Person) "
      "WHERE n.firstName = 'John'",
      "CONSTRUCT (n)-/@p:reach{d:=c}/->(m) "
      "MATCH (n:Person)-/p <:knows*> COST c/->(m:Person) "
      "WHERE n.firstName = 'Wei' AND m.firstName = 'Emma'",
  };
  for (const char* q : queries) {
    auto r = f.engine->Execute(q);
    ASSERT_TRUE(r.ok()) << q << ": " << r.status().ToString();
    EXPECT_TRUE(r->graph->Validate().ok()) << q;
  }
}

TEST_P(EngineInvariants, ExecutionIsDeterministic) {
  EngineFixture f1(GetParam());
  EngineFixture f2(GetParam());
  const char* q =
      "CONSTRUCT (n)-/@p:sp{d:=c}/->(m) "
      "MATCH (n:Person)-/2 SHORTEST p <:knows*> COST c/->(m:Person) "
      "WHERE n.firstName = 'John'";
  auto r1 = f1.engine->Execute(q);
  auto r2 = f2.engine->Execute(q);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(GraphEquals(*r1->graph, *r2->graph));
}

TEST_P(EngineInvariants, UnionWithInputIsSuperset) {
  EngineFixture f(GetParam());
  auto r = f.engine->Execute(
      "CONSTRUCT (n)-[:sameCity]->(m) "
      "MATCH (n:Person)-[:isLocatedIn]->(c)<-[:isLocatedIn]-(m:Person) "
      "UNION snb");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(r->graph->NumNodes(), f.graph().NumNodes());
  EXPECT_GE(r->graph->NumEdges(), f.graph().NumEdges());
  f.graph().ForEachNode(
      [&](NodeId n) { EXPECT_TRUE(r->graph->HasNode(n)); });
}

TEST_P(EngineInvariants, MinusUnionRoundTrip) {
  EngineFixture f(GetParam());
  // (snb ∖ X) has no members of X for a node-only X.
  auto x = f.engine->Execute("CONSTRUCT (n) MATCH (n:Tag)");
  ASSERT_TRUE(x.ok());
  f.catalog.RegisterGraph("tags_only", std::move(*x->graph));
  auto r = f.engine->Execute("snb MINUS tags_only");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  r->graph->ForEachNode([&](NodeId n) {
    EXPECT_FALSE(f.graph().Labels(n).Contains(snb::kTag));
  });
  EXPECT_TRUE(r->graph->Validate().ok());
}

TEST_P(EngineInvariants, SelectRowCountMatchesCountStar) {
  EngineFixture f(GetParam());
  auto rows = f.engine->Execute(
      "SELECT n.firstName AS f, ID(n) AS i MATCH (n:Person)");
  auto count = f.engine->Execute("SELECT COUNT(*) AS c MATCH (n:Person)");
  ASSERT_TRUE(rows.ok());
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(static_cast<int64_t>(rows->table->NumRows()),
            count->table->At(0, 0).AsInt());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineInvariants,
                         ::testing::Values(1, 2, 3, 5, 8));

// --- path-search invariants on generated graphs ------------------------------------

class PathInvariants : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    snb::GeneratorOptions options;
    options.seed = GetParam();
    options.num_persons = 150;
    graph_ = snb::Generate(options, &ids_);
    adj_ = std::make_unique<AdjacencyIndex>(graph_);
  }

  PathSearchContext Ctx(const Nfa* nfa) const {
    PathSearchContext ctx;
    ctx.adj = adj_.get();
    ctx.nfa = nfa;
    return ctx;
  }

  NodeId FirstPerson() const {
    NodeId first;
    graph_.ForEachNode([&](NodeId n) {
      if (!first.valid() && graph_.Labels(n).Contains(snb::kPerson)) {
        first = n;
      }
    });
    return first;
  }

  IdAllocator ids_;
  PathPropertyGraph graph_;
  std::unique_ptr<AdjacencyIndex> adj_;
};

TEST_P(PathInvariants, ShortestPathExistsIffReachable) {
  auto rpq = ParseRpq(":knows*");
  ASSERT_TRUE(rpq.ok());
  Nfa nfa = Nfa::Compile(**rpq);
  const NodeId src = FirstPerson();
  ASSERT_TRUE(src.valid());
  auto reachable = ReachableFrom(Ctx(&nfa), src);
  ASSERT_TRUE(reachable.ok());
  auto shortest = ShortestPathsFrom(Ctx(&nfa), src);
  ASSERT_TRUE(shortest.ok());
  std::set<NodeId> shortest_dsts;
  for (const auto& [dst, path] : *shortest) shortest_dsts.insert(dst);
  EXPECT_EQ(*reachable, shortest_dsts);
}

TEST_P(PathInvariants, FoundWalksConformToRegex) {
  auto rpq = ParseRpq(":knows*");
  ASSERT_TRUE(rpq.ok());
  Nfa nfa = Nfa::Compile(**rpq);
  const NodeId src = FirstPerson();
  auto results = KShortestPathsFrom(Ctx(&nfa), src, 2);
  ASSERT_TRUE(results.ok());
  size_t checked = 0;
  for (const auto& [dst, paths] : *results) {
    for (const FoundPath& p : paths) {
      EXPECT_TRUE(BodyConformsToRegex(p.body, nfa, graph_));
      if (++checked > 50) return;  // bound runtime
    }
  }
}

TEST_P(PathInvariants, KShortestCostsNondecreasing) {
  auto rpq = ParseRpq(":knows*");
  ASSERT_TRUE(rpq.ok());
  Nfa nfa = Nfa::Compile(**rpq);
  auto results = KShortestPathsFrom(Ctx(&nfa), FirstPerson(), 3);
  ASSERT_TRUE(results.ok());
  for (const auto& [dst, paths] : *results) {
    for (size_t i = 1; i < paths.size(); ++i) {
      EXPECT_LE(paths[i - 1].cost, paths[i].cost);
    }
    for (const auto& p : paths) {
      EXPECT_EQ(p.hops, p.body.edges.size());
      EXPECT_EQ(p.body.nodes.size(), p.body.edges.size() + 1);
    }
  }
}

TEST_P(PathInvariants, HopCostEqualsBodyLengthForUnitRegex) {
  auto rpq = ParseRpq(":knows*");
  ASSERT_TRUE(rpq.ok());
  Nfa nfa = Nfa::Compile(**rpq);
  auto results = ShortestPathsFrom(Ctx(&nfa), FirstPerson());
  ASSERT_TRUE(results.ok());
  for (const auto& [dst, p] : *results) {
    EXPECT_DOUBLE_EQ(p.cost, static_cast<double>(p.body.edges.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathInvariants,
                         ::testing::Values(11, 12, 13, 14));

// --- parser fuzz-ish robustness ------------------------------------------------------

class ParserRobustness : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserRobustness, NeverCrashesOnlyStatuses) {
  auto r = ParseQuery(GetParam());
  if (!r.ok()) {
    EXPECT_TRUE(r.status().IsParseError());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Garbage, ParserRobustness,
    ::testing::Values("", "(", ")", "CONSTRUCT CONSTRUCT", "MATCH MATCH",
                      "CONSTRUCT (n MATCH", "-[:x]->", "-/p/->",
                      "CONSTRUCT (n) MATCH (n)-[e:]->(m)",
                      "CONSTRUCT (n) MATCH (n) WHERE ((((",
                      "CONSTRUCT (n) MATCH (n) WHERE n.",
                      "SELECT MATCH (n)", "GRAPH AS", "PATH p",
                      "CONSTRUCT (n) MATCH (n)-/<:a/->(m)",
                      "CONSTRUCT (n) MATCH (n) UNION",
                      "CONSTRUCT () WHEN MATCH (n)",
                      "\x01\x02\x03", "'unterminated"));

}  // namespace
}  // namespace gcore
