// Tests for the SELECT slicing/sorting extensions Section 5 names as the
// natural additions to tabular projection: DISTINCT, ORDER BY, LIMIT.
#include <gtest/gtest.h>

#include "engine/engine.h"
#include "parser/parser.h"
#include "snb/toy_graphs.h"

namespace gcore {
namespace {

class SelectExtensions : public ::testing::Test {
 protected:
  SelectExtensions() { snb::RegisterToyData(&catalog); }

  Result<Table> Run(const std::string& q) {
    QueryEngine engine(&catalog);
    auto r = engine.Execute(q);
    if (!r.ok()) return r.status();
    EXPECT_TRUE(r->IsTable());
    return std::move(*r->table);
  }

  GraphCatalog catalog;
};

TEST_F(SelectExtensions, OrderByAscendingDefault) {
  auto t = Run("SELECT n.firstName AS name MATCH (n:Person) "
               "ORDER BY n.firstName");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->NumRows(), 5u);
  EXPECT_EQ(t->At(0, 0), Value::String("Alice"));
  EXPECT_EQ(t->At(4, 0), Value::String("Peter"));
}

TEST_F(SelectExtensions, OrderByDescending) {
  auto t = Run("SELECT n.firstName AS name MATCH (n:Person) "
               "ORDER BY n.firstName DESC");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->At(0, 0), Value::String("Peter"));
  EXPECT_EQ(t->At(4, 0), Value::String("Alice"));
}

TEST_F(SelectExtensions, OrderByMultipleKeys) {
  // Sort by city then name: Austin's Alice first.
  auto t = Run(
      "SELECT c.name AS city, n.firstName AS name "
      "MATCH (n:Person)-[:isLocatedIn]->(c) "
      "ORDER BY c.name, n.firstName DESC");
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->NumRows(), 5u);
  EXPECT_EQ(t->At(0, 0), Value::String("Austin"));
  EXPECT_EQ(t->At(1, 0), Value::String("Houston"));
  EXPECT_EQ(t->At(1, 1), Value::String("Peter"));  // DESC within Houston
}

TEST_F(SelectExtensions, Limit) {
  auto t = Run("SELECT n.firstName AS name MATCH (n:Person) "
               "ORDER BY n.firstName LIMIT 2");
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->NumRows(), 2u);
  EXPECT_EQ(t->At(0, 0), Value::String("Alice"));
  EXPECT_EQ(t->At(1, 0), Value::String("Celine"));
}

TEST_F(SelectExtensions, LimitZero) {
  auto t = Run("SELECT n.firstName AS name MATCH (n:Person) LIMIT 0");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->NumRows(), 0u);
}

TEST_F(SelectExtensions, Distinct) {
  // Each person's city, deduplicated: Houston + Austin.
  auto t = Run(
      "SELECT DISTINCT c.name AS city "
      "MATCH (n:Person)-[:isLocatedIn]->(c) ORDER BY c.name");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->NumRows(), 2u);
  EXPECT_EQ(t->At(0, 0), Value::String("Austin"));
  EXPECT_EQ(t->At(1, 0), Value::String("Houston"));
}

TEST_F(SelectExtensions, DistinctWithLimit) {
  auto t = Run(
      "SELECT DISTINCT c.name AS city "
      "MATCH (n:Person)-[:isLocatedIn]->(c) ORDER BY c.name LIMIT 1");
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->NumRows(), 1u);
  EXPECT_EQ(t->At(0, 0), Value::String("Austin"));
}

TEST_F(SelectExtensions, OrderByExpressionNotProjected) {
  // Sorting by a key that is not among the projected columns.
  auto t = Run(
      "SELECT n.firstName AS name MATCH (n:Person) "
      "ORDER BY SIZE(n.employer) DESC, n.firstName");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->At(0, 0), Value::String("Frank"));  // two employers
  EXPECT_EQ(t->At(4, 0), Value::String("Peter"));  // none
}

TEST_F(SelectExtensions, LimitRequiresInteger) {
  auto t = Run("SELECT n.firstName AS f MATCH (n) LIMIT 'x'");
  ASSERT_FALSE(t.ok());
  EXPECT_TRUE(t.status().IsParseError());
}

TEST_F(SelectExtensions, RoundTripThroughPrinter) {
  auto q = ParseQuery(
      "SELECT DISTINCT n.firstName AS name MATCH (n:Person) "
      "ORDER BY n.firstName DESC LIMIT 3");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const std::string printed = (*q)->ToString();
  auto q2 = ParseQuery(printed);
  ASSERT_TRUE(q2.ok()) << printed << "\n" << q2.status().ToString();
  EXPECT_EQ((*q2)->ToString(), printed);
}

}  // namespace
}  // namespace gcore
