// Golden-result integration tests: every query of the Section 3 guided
// tour, executed on the reconstructed Figure 4 instance, must reproduce
// the results the paper prints (binding tables on pp. 8-9, the Figure 5
// views, the wagnerFriend score-2 edge, ...). EXPERIMENTS.md row index:
// Q1..Q12.
#include <gtest/gtest.h>

#include "engine/engine.h"
#include "graph/graph_ops.h"
#include "snb/toy_graphs.h"

namespace gcore {
namespace {

class GuidedTour : public ::testing::Test {
 protected:
  GuidedTour() { snb::RegisterToyData(&catalog); }

  Result<PathPropertyGraph> Run(const std::string& q) {
    QueryEngine engine(&catalog);
    auto r = engine.Execute(q);
    if (!r.ok()) return r.status();
    EXPECT_TRUE(r->IsGraph());
    return std::move(*r->graph);
  }

  Result<Table> RunTable(const std::string& q) {
    QueryEngine engine(&catalog);
    auto r = engine.Execute(q);
    if (!r.ok()) return r.status();
    EXPECT_TRUE(r->IsTable());
    Table t = std::move(*r->table);
    t.SortRows();
    return t;
  }

  GraphCatalog catalog;
};

// Q1 (lines 1-4): Acme employees, labels and properties preserved.
TEST_F(GuidedTour, Q1_AcmePersons) {
  auto g = Run(
      "CONSTRUCT (n) MATCH (n:Person) ON social_graph "
      "WHERE n.employer = 'Acme'");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->NumNodes(), 2u);  // John and Alice
  EXPECT_EQ(g->NumEdges(), 0u);
  EXPECT_TRUE(g->HasNode(NodeId(snb::kJohnId)));
  EXPECT_TRUE(g->HasNode(NodeId(snb::kAliceId)));
  EXPECT_TRUE(g->Labels(NodeId(snb::kJohnId)).Contains("Person"));
  EXPECT_EQ(g->Property(NodeId(snb::kAliceId), "lastName").single(),
            Value::String("Alba"));
}

// Binding table p.8: the equi-join yields exactly
// {(Acme, Alice), (HAL, Celine), (Acme, John)} — Frank fails because his
// employer is the set {"CWI","MIT"}.
TEST_F(GuidedTour, BindingTableJoin_Page8) {
  auto t = RunTable(
      "SELECT c.name AS company, n.firstName AS person "
      "MATCH (c:Company) ON company_graph, (n:Person) ON social_graph "
      "WHERE c.name = n.employer");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->NumRows(), 3u);
  EXPECT_EQ(t->At(0, 0), Value::String("Acme"));
  EXPECT_EQ(t->At(0, 1), Value::String("Alice"));
  EXPECT_EQ(t->At(1, 0), Value::String("Acme"));
  EXPECT_EQ(t->At(1, 1), Value::String("John"));
  EXPECT_EQ(t->At(2, 0), Value::String("HAL"));
  EXPECT_EQ(t->At(2, 1), Value::String("Celine"));
}

// Cartesian table p.8: without WHERE, 4 companies × 5 persons = 20 rows;
// Frank's employer renders as {CWI, MIT}; Peter's is absent.
TEST_F(GuidedTour, CartesianTable_Page8) {
  auto t = RunTable(
      "SELECT c.name AS company, n.firstName AS person, "
      "n.employer AS employer "
      "MATCH (c:Company) ON company_graph, (n:Person) ON social_graph");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->NumRows(), 20u);
  int frank_rows = 0, peter_rows = 0;
  for (size_t r = 0; r < t->NumRows(); ++r) {
    if (t->At(r, 1) == Value::String("Frank")) {
      ++frank_rows;
      EXPECT_EQ(t->At(r, 2), Value::String("{CWI, MIT}"));
    }
    if (t->At(r, 1) == Value::String("Peter")) {
      ++peter_rows;
      EXPECT_TRUE(t->At(r, 2).is_null());  // unbound employer
    }
  }
  EXPECT_EQ(frank_rows, 4);
  EXPECT_EQ(peter_rows, 4);
}

// Q2 (lines 5-9): equi-join construction + UNION. Five persons stay, but
// only 3 worksAt edges exist (Frank unmatched).
TEST_F(GuidedTour, Q2_WorksAtEquals) {
  auto g = Run(
      "CONSTRUCT (c)<-[:worksAt]-(n) "
      "MATCH (c:Company) ON company_graph, (n:Person) ON social_graph "
      "WHERE c.name = n.employer "
      "UNION social_graph");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  auto social = catalog.Lookup("social_graph");
  ASSERT_TRUE(social.ok());
  EXPECT_EQ(g->NumEdges(), (*social)->NumEdges() + 3);
}

// Q3 (lines 10-14): IN fixes Frank — five new edges total.
TEST_F(GuidedTour, Q3_WorksAtIn) {
  auto g = Run(
      "CONSTRUCT (c)<-[:worksAt]-(n) "
      "MATCH (c:Company) ON company_graph, (n:Person) ON social_graph "
      "WHERE c.name IN n.employer "
      "UNION social_graph");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  auto social = catalog.Lookup("social_graph");
  ASSERT_TRUE(social.ok());
  // "the original graph plus five edges"
  EXPECT_EQ(g->NumEdges(), (*social)->NumEdges() + 5);
  EXPECT_EQ(g->NumNodes(), (*social)->NumNodes() + 4);
  // Frank's two worksAt edges to #CWI and #MIT.
  int frank_works = 0;
  g->ForEachEdge([&](EdgeId e, NodeId src, NodeId dst) {
    if (g->Labels(e).Contains("worksAt") && src == NodeId(snb::kFrankId)) {
      ++frank_works;
      EXPECT_TRUE(g->Labels(dst).Contains("Company"));
    }
  });
  EXPECT_EQ(frank_works, 2);
}

// Q4 (lines 15-19) + binding table p.9: {employer=e} unrolls into five
// bindings, including Frank twice.
TEST_F(GuidedTour, Q4_UnrollingBindingTable_Page9) {
  auto t = RunTable(
      "SELECT c.name AS company, n.firstName AS person, e AS employer "
      "MATCH (c:Company) ON company_graph, "
      "(n:Person {employer=e}) ON social_graph "
      "WHERE c.name = e");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->NumRows(), 5u);
  // Sorted rows: Acme/Alice, Acme/John, CWI/Frank, HAL/Celine, MIT/Frank.
  EXPECT_EQ(t->At(0, 1), Value::String("Alice"));
  EXPECT_EQ(t->At(1, 1), Value::String("John"));
  EXPECT_EQ(t->At(2, 1), Value::String("Frank"));
  EXPECT_EQ(t->At(2, 2), Value::String("CWI"));
  EXPECT_EQ(t->At(3, 1), Value::String("Celine"));
  EXPECT_EQ(t->At(4, 1), Value::String("Frank"));
  EXPECT_EQ(t->At(4, 2), Value::String("MIT"));
}

// Q5 (lines 20-22): graph aggregation — four new company nodes, five new
// edges, unioned with the original graph.
TEST_F(GuidedTour, Q5_GraphAggregation) {
  auto g = Run(
      "CONSTRUCT social_graph, "
      "(x GROUP e :Company {name:=e})<-[y:worksAt]-(n) "
      "MATCH (n:Person {employer=e})");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  auto social = catalog.Lookup("social_graph");
  ASSERT_TRUE(social.ok());
  EXPECT_EQ(g->NumNodes(), (*social)->NumNodes() + 4);
  EXPECT_EQ(g->NumEdges(), (*social)->NumEdges() + 5);
}

// Q6 (lines 23-27): 3-shortest knows* paths from John to co-located
// persons, stored with label and distance.
TEST_F(GuidedTour, Q6_StoredShortestPaths) {
  auto g = Run(
      "CONSTRUCT (n)-/@p:localPeople{distance:=c}/->(m) "
      "MATCH (n)-/3 SHORTEST p<:knows*> COST c/->(m) "
      "WHERE (n:Person) AND (m:Person) "
      "AND n.firstName = 'John' AND n.lastName = 'Doe' "
      "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  ASSERT_GT(g->NumPaths(), 0u);
  // Every stored path starts at John, carries the label and the distance
  // property equal to its hop count; targets are Houston residents.
  g->ForEachPath([&](PathId p, const PathBody& body) {
    EXPECT_TRUE(g->Labels(p).Contains("localPeople"));
    EXPECT_EQ(body.nodes.front(), NodeId(snb::kJohnId));
    EXPECT_EQ(g->Property(p, "distance").single(),
              Value::Int(static_cast<int64_t>(body.edges.size())));
    EXPECT_NE(body.nodes.back(), NodeId(snb::kAliceId));  // Austin
  });
  // At most 3 paths per destination.
  std::map<NodeId, int> per_dst;
  g->ForEachPath([&](PathId, const PathBody& body) {
    ++per_dst[body.nodes.back()];
  });
  for (const auto& [dst, count] : per_dst) {
    EXPECT_LE(count, 3) << ToString(dst);
  }
  // Shortest to Celine and Frank is 2 hops (via Peter).
  int min_celine = 99;
  g->ForEachPath([&](PathId, const PathBody& body) {
    if (body.nodes.back() == NodeId(snb::kCelineId)) {
      min_celine = std::min(min_celine, static_cast<int>(body.edges.size()));
    }
  });
  EXPECT_EQ(min_celine, 2);
  // "a projection of all nodes and edges involved in these stored paths":
  // cities/tags/messages are absent (Alice can appear as an intermediate
  // node of a k-shortest walk such as John→Alice→John, but never as a
  // destination — asserted above).
  EXPECT_FALSE(g->HasNode(NodeId(snb::kHoustonId)));
  EXPECT_FALSE(g->HasNode(NodeId(snb::kAustinId)));
  EXPECT_FALSE(g->HasNode(NodeId(snb::kWagnerTagId)));
  EXPECT_TRUE(g->Validate().ok());
}

// Q7 (lines 28-31): reachability — all co-located persons reachable over
// knows*.
TEST_F(GuidedTour, Q7_Reachability) {
  auto g = Run(
      "CONSTRUCT (m) "
      "MATCH (n:Person)-/<:knows*>/->(m:Person) "
      "WHERE n.firstName = 'John' AND n.lastName = 'Doe' "
      "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  // John (empty walk), Peter, Celine, Frank — all in Houston.
  EXPECT_EQ(g->NumNodes(), 4u);
  EXPECT_TRUE(g->HasNode(NodeId(snb::kPeterId)));
  EXPECT_TRUE(g->HasNode(NodeId(snb::kCelineId)));
  EXPECT_TRUE(g->HasNode(NodeId(snb::kFrankId)));
  EXPECT_FALSE(g->HasNode(NodeId(snb::kAliceId)));
}

// Q8 (lines 32-35): ALL-paths projection over knows*.
TEST_F(GuidedTour, Q8_AllPathsProjection) {
  auto g = Run(
      "CONSTRUCT (n)-/p/->(m) "
      "MATCH (n:Person)-/ALL p<:knows*>/->(m:Person) "
      "WHERE n.firstName = 'John' AND n.lastName = 'Doe' "
      "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->NumPaths(), 0u);
  // knows edges are bidirectional so every knows edge lies on some
  // conforming walk; Alice participates as an intermediate node even
  // though she is not a valid endpoint.
  EXPECT_TRUE(g->HasNode(NodeId(snb::kAliceId)));
  EXPECT_EQ(g->NumNodes(), 5u);
  EXPECT_EQ(g->NumEdges(), 8u);  // the 4 bidirectional knows pairs
  EXPECT_TRUE(g->Validate().ok());
}

// Q9 (lines 36-38): the explicit EXISTS form is equivalent to the
// implicit pattern predicate.
TEST_F(GuidedTour, Q9_ExplicitExistsEquivalence) {
  auto implicit = Run(
      "CONSTRUCT (m) MATCH (m:Person), (n:Person) "
      "WHERE n.firstName = 'John' AND n.lastName = 'Doe' "
      "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)");
  auto explicit_form = Run(
      "CONSTRUCT (m) MATCH (m:Person), (n:Person) "
      "WHERE n.firstName = 'John' AND n.lastName = 'Doe' "
      "AND EXISTS ( CONSTRUCT () "
      "MATCH (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m) )");
  ASSERT_TRUE(implicit.ok()) << implicit.status().ToString();
  ASSERT_TRUE(explicit_form.ok()) << explicit_form.status().ToString();
  EXPECT_TRUE(GraphEquals(*implicit, *explicit_form));
  EXPECT_EQ(implicit->NumNodes(), 4u);  // Houston residents
}

// Q10 (lines 39-47): social_graph1 — nr_messages on every knows edge
// (Figure 5).
TEST_F(GuidedTour, Q10_View1_NrMessages) {
  QueryEngine engine(&catalog);
  auto r = engine.Execute(
      "GRAPH VIEW social_graph1 AS ( "
      "CONSTRUCT social_graph, (n)-[e]->(m) SET e.nr_messages := COUNT(*) "
      "MATCH (n)-[e:knows]->(m) WHERE (n:Person) AND (m:Person) "
      "OPTIONAL (n)<-[c1]-(msg1:Post|Comment), (msg1)-[:reply_of]-(msg2), "
      "(msg2:Post|Comment)-[c2]->(m) "
      "WHERE (c1:has_creator) AND (c2:has_creator) )");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(catalog.HasGraph("social_graph1"));
  auto view = catalog.Lookup("social_graph1");
  ASSERT_TRUE(view.ok());
  const PathPropertyGraph& g = **view;

  // Every knows edge carries nr_messages; John-Peter exchanged 2 each way,
  // Peter-Celine 1 each way, the rest 0.
  std::map<std::pair<uint64_t, uint64_t>, int64_t> messages;
  g.ForEachEdge([&](EdgeId e, NodeId src, NodeId dst) {
    if (!g.Labels(e).Contains("knows")) return;
    const ValueSet& v = g.Property(e, "nr_messages");
    ASSERT_TRUE(v.is_singleton());
    messages[{src.value(), dst.value()}] = v.single().AsInt();
  });
  ASSERT_EQ(messages.size(), 8u);
  EXPECT_EQ((messages[{snb::kJohnId, snb::kPeterId}]), 2);
  EXPECT_EQ((messages[{snb::kPeterId, snb::kJohnId}]), 2);
  EXPECT_EQ((messages[{snb::kPeterId, snb::kCelineId}]), 1);
  EXPECT_EQ((messages[{snb::kCelineId, snb::kPeterId}]), 1);
  EXPECT_EQ((messages[{snb::kJohnId, snb::kAliceId}]), 0);
  EXPECT_EQ((messages[{snb::kPeterId, snb::kFrankId}]), 0);
}

// Q11 (lines 57-66): social_graph2 — weighted shortest paths to the two
// Wagner lovers, stored as :toWagner (Figure 5, grey box).
TEST_F(GuidedTour, Q11_View2_ToWagnerPaths) {
  QueryEngine engine(&catalog);
  ASSERT_TRUE(engine
                  .Execute("GRAPH VIEW social_graph1 AS ( "
                           "CONSTRUCT social_graph, (n)-[e]->(m) "
                           "SET e.nr_messages := COUNT(*) "
                           "MATCH (n)-[e:knows]->(m) "
                           "WHERE (n:Person) AND (m:Person) "
                           "OPTIONAL (n)<-[c1]-(msg1:Post|Comment), "
                           "(msg1)-[:reply_of]-(msg2), "
                           "(msg2:Post|Comment)-[c2]->(m) "
                           "WHERE (c1:has_creator) AND (c2:has_creator) )")
                  .ok());
  auto r = engine.Execute(
      "GRAPH VIEW social_graph2 AS ( "
      "PATH wKnows = (x)-[e:knows]->(y) "
      "WHERE NOT 'Acme' IN y.employer "
      "COST 1 / (1 + e.nr_messages) "
      "CONSTRUCT social_graph1, (n)-/@p:toWagner/->(m) "
      "MATCH (n:Person)-/p<~wKnows*>/->(m:Person) ON social_graph1 "
      "WHERE (m)-[:hasInterest]->(:Tag {name='Wagner'}) "
      "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m) "
      "AND n.firstName = 'John' AND n.lastName = 'Doe')");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto view = catalog.Lookup("social_graph2");
  ASSERT_TRUE(view.ok());
  const PathPropertyGraph& g = **view;

  // "it adds to social_graph1 two stored paths", both via Peter.
  ASSERT_EQ(g.NumPaths(), 2u);
  std::set<uint64_t> destinations;
  g.ForEachPath([&](PathId p, const PathBody& body) {
    EXPECT_TRUE(g.Labels(p).Contains("toWagner"));
    EXPECT_EQ(body.nodes.front(), NodeId(snb::kJohnId));
    ASSERT_EQ(body.nodes.size(), 3u);
    EXPECT_EQ(body.nodes[1], NodeId(snb::kPeterId));
    destinations.insert(body.nodes.back().value());
  });
  EXPECT_EQ(destinations,
            (std::set<uint64_t>{snb::kCelineId, snb::kFrankId}));
}

// Q12 (lines 67-71): scoring John's friends — a single wagnerFriend edge
// John→Peter with score 2. (Line 71 prints `n = nodes(p)[1]`, which
// contradicts n being the path source; the reading that reproduces the
// paper's stated result is `m = nodes(p)[1]`.)
TEST_F(GuidedTour, Q12_WagnerFriendScore) {
  QueryEngine engine(&catalog);
  ASSERT_TRUE(engine
                  .Execute("GRAPH VIEW social_graph1 AS ( "
                           "CONSTRUCT social_graph, (n)-[e]->(m) "
                           "SET e.nr_messages := COUNT(*) "
                           "MATCH (n)-[e:knows]->(m) "
                           "WHERE (n:Person) AND (m:Person) "
                           "OPTIONAL (n)<-[c1]-(msg1:Post|Comment), "
                           "(msg1)-[:reply_of]-(msg2), "
                           "(msg2:Post|Comment)-[c2]->(m) "
                           "WHERE (c1:has_creator) AND (c2:has_creator) )")
                  .ok());
  ASSERT_TRUE(
      engine
          .Execute("GRAPH VIEW social_graph2 AS ( "
                   "PATH wKnows = (x)-[e:knows]->(y) "
                   "WHERE NOT 'Acme' IN y.employer "
                   "COST 1 / (1 + e.nr_messages) "
                   "CONSTRUCT social_graph1, (n)-/@p:toWagner/->(m) "
                   "MATCH (n:Person)-/p<~wKnows*>/->(m:Person) "
                   "ON social_graph1 "
                   "WHERE (m)-[:hasInterest]->(:Tag {name='Wagner'}) "
                   "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m) "
                   "AND n.firstName = 'John' AND n.lastName = 'Doe')")
          .ok());
  auto r = engine.Execute(
      "CONSTRUCT (n)-[e:wagnerFriend {score:=COUNT(*)}]->(m) "
      "WHEN e.score > 0 "
      "MATCH (n:Person)-/@p:toWagner/->(), (m:Person) ON social_graph2 "
      "WHERE m = nodes(p)[1]");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const PathPropertyGraph& g = *r->graph;
  ASSERT_EQ(g.NumEdges(), 1u);
  g.ForEachEdge([&](EdgeId e, NodeId src, NodeId dst) {
    EXPECT_TRUE(g.Labels(e).Contains("wagnerFriend"));
    EXPECT_EQ(src, NodeId(snb::kJohnId));
    EXPECT_EQ(dst, NodeId(snb::kPeterId));
    EXPECT_EQ(g.Property(e, "score").single(), Value::Int(2));
  });
}

// Composability: the output of one query is the input of the next
// ("closed query language on Property Graphs").
TEST_F(GuidedTour, Composability_QueryOverQueryResult) {
  QueryEngine engine(&catalog);
  auto r = engine.Execute(
      "GRAPH acme AS (CONSTRUCT (n) MATCH (n:Person) "
      "WHERE n.employer = 'Acme') "
      "CONSTRUCT (m {who := m.firstName}) MATCH (m) ON acme");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->graph->NumNodes(), 2u);
}

}  // namespace
}  // namespace gcore
