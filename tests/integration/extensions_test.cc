// Section 5 extension tests: SELECT tabular projection, FROM <table>
// binding input, and MATCH ... ON <table>.
#include <gtest/gtest.h>

#include "engine/engine.h"
#include "snb/toy_graphs.h"

namespace gcore {
namespace {

class Extensions : public ::testing::Test {
 protected:
  Extensions() { snb::RegisterToyData(&catalog); }

  GraphCatalog catalog;
};

// Lines 72-75: tabular projection of indirect co-located friends.
TEST_F(Extensions, SelectProjection_Lines72to75) {
  QueryEngine engine(&catalog);
  auto r = engine.Execute(
      "SELECT m.lastName + ', ' + m.firstName AS friendName "
      "MATCH (n:Person)-/<:knows*>/->(m:Person) "
      "WHERE n.firstName = 'John' AND n.lastName = 'Doe' "
      "AND (n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(r->IsTable());
  Table t = std::move(*r->table);
  t.SortRows();
  ASSERT_EQ(t.columns(), std::vector<std::string>{"friendName"});
  ASSERT_EQ(t.NumRows(), 4u);
  EXPECT_EQ(t.At(0, 0), Value::String("Doe, John"));
  EXPECT_EQ(t.At(1, 0), Value::String("Gold, Frank"));
  EXPECT_EQ(t.At(2, 0), Value::String("Mayer, Celine"));
  EXPECT_EQ(t.At(3, 0), Value::String("Park, Peter"));
}

TEST_F(Extensions, SelectWithAggregate) {
  QueryEngine engine(&catalog);
  auto r = engine.Execute(
      "SELECT COUNT(*) AS persons MATCH (n:Person)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->table->NumRows(), 1u);
  EXPECT_EQ(r->table->At(0, 0), Value::Int(5));
}

TEST_F(Extensions, SelectDefaultColumnNameIsExpression) {
  QueryEngine engine(&catalog);
  auto r = engine.Execute("SELECT n.firstName MATCH (n:Person)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table->columns()[0], "n.firstName");
}

// Lines 76-80: FROM <table> imports rows as scalar bindings.
TEST_F(Extensions, FromTable_Lines76to80) {
  QueryEngine engine(&catalog);
  auto r = engine.Execute(
      "CONSTRUCT "
      "(cust GROUP custName :Customer {name:=custName}), "
      "(prod GROUP prodCode :Product {code:=prodCode}), "
      "(cust)-[:bought]->(prod) "
      "FROM orders");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const PathPropertyGraph& g = *r->graph;
  // 3 customers (Ada, Bob, Cyd) + 3 products (P100, P200, P300).
  size_t customers = 0, products = 0;
  g.ForEachNode([&](NodeId n) {
    if (g.Labels(n).Contains("Customer")) ++customers;
    if (g.Labels(n).Contains("Product")) ++products;
  });
  EXPECT_EQ(customers, 3u);
  EXPECT_EQ(products, 3u);
  // 5 distinct (customer, product) pairs — the duplicate Ada/P100 order
  // line groups away.
  EXPECT_EQ(g.NumEdges(), 5u);
  g.ForEachEdge([&](EdgeId e, NodeId, NodeId) {
    EXPECT_TRUE(g.Labels(e).Contains("bought"));
  });
}

// Lines 81-85: the same construction via table-as-graph.
TEST_F(Extensions, TableAsGraph_Lines81to85) {
  QueryEngine engine(&catalog);
  auto r = engine.Execute(
      "CONSTRUCT "
      "(cust GROUP o.custName :Customer {name:=o.custName}), "
      "(prod GROUP o.prodCode :Product {code:=o.prodCode}), "
      "(cust)-[:bought]->(prod) "
      "MATCH (o) ON orders");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const PathPropertyGraph& g = *r->graph;
  size_t customers = 0, products = 0;
  g.ForEachNode([&](NodeId n) {
    if (g.Labels(n).Contains("Customer")) ++customers;
    if (g.Labels(n).Contains("Product")) ++products;
  });
  EXPECT_EQ(customers, 3u);
  EXPECT_EQ(products, 3u);
  EXPECT_EQ(g.NumEdges(), 5u);
}

TEST_F(Extensions, TableAsGraphRowsAreIsolatedNodes) {
  QueryEngine engine(&catalog);
  auto r = engine.Execute(
      "SELECT o.custName AS c, o.prodCode AS p MATCH (o) ON orders");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // 6 order lines, but bindings are a set and one line is a duplicate...
  // each row is its own node, so all 6 survive as distinct bindings.
  EXPECT_EQ(r->table->NumRows(), 6u);
}

TEST_F(Extensions, FromUnknownTableIsNotFound) {
  QueryEngine engine(&catalog);
  auto r = engine.Execute("CONSTRUCT (x) FROM nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST_F(Extensions, SelectCannotJoinGraphSetOps) {
  QueryEngine engine(&catalog);
  auto r = engine.Execute(
      "SELECT n.firstName AS f MATCH (n:Person) UNION social_graph");
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace gcore
