// Engine-level integration tests: errors surface as proper Status codes,
// views persist and compose, ON (subquery) locations, set operations
// through the engine, and catalog sharing.
#include "engine/engine.h"

#include <gtest/gtest.h>

#include "graph/graph_ops.h"
#include "snb/toy_graphs.h"

namespace gcore {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() { snb::RegisterToyData(&catalog); }
  GraphCatalog catalog;
};

TEST_F(EngineTest, ParseErrorsPropagate) {
  QueryEngine engine(&catalog);
  auto r = engine.Execute("CONSTRUCT (n MATCH");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
}

TEST_F(EngineTest, UnknownGraphIsNotFound) {
  QueryEngine engine(&catalog);
  auto r = engine.Execute("CONSTRUCT (n) MATCH (n) ON nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST_F(EngineTest, NoDefaultGraphIsBindError) {
  GraphCatalog empty;
  QueryEngine engine(&empty);
  auto r = engine.Execute("CONSTRUCT (n) MATCH (n)");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsBindError());
}

TEST_F(EngineTest, BareGraphNameQueryReturnsThatGraph) {
  QueryEngine engine(&catalog);
  auto r = engine.Execute("social_graph");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto original = catalog.Lookup("social_graph");
  ASSERT_TRUE(original.ok());
  EXPECT_TRUE(GraphEquals(*r->graph, **original));
}

TEST_F(EngineTest, IntersectAndMinusThroughEngine) {
  QueryEngine engine(&catalog);
  // persons ∩ houston-residents, as two construct queries intersected.
  auto r = engine.Execute(
      "(CONSTRUCT (n) MATCH (n:Person)) INTERSECT "
      "(CONSTRUCT (m) MATCH (m:Person)-[:isLocatedIn]->(c:City) "
      "WHERE c.name = 'Houston')");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->graph->NumNodes(), 4u);  // all but Alice
  auto minus = engine.Execute(
      "(CONSTRUCT (n) MATCH (n:Person)) MINUS "
      "(CONSTRUCT (m) MATCH (m:Person)-[:isLocatedIn]->(c:City) "
      "WHERE c.name = 'Houston')");
  ASSERT_TRUE(minus.ok());
  EXPECT_EQ(minus->graph->NumNodes(), 1u);  // Alice
  EXPECT_TRUE(minus->graph->HasNode(NodeId(snb::kAliceId)));
}

TEST_F(EngineTest, OnSubqueryLocation) {
  QueryEngine engine(&catalog);
  // Match directly against an inline subquery result (Appendix A.2:
  // basicGraphPattern ON fullGraphQuery).
  auto r = engine.Execute(
      "SELECT m.firstName AS name "
      "MATCH (m) ON (CONSTRUCT (n) MATCH (n:Person) "
      "WHERE n.employer = 'Acme')");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(r->IsTable());
  r->table->SortRows();
  ASSERT_EQ(r->table->NumRows(), 2u);
  EXPECT_EQ(r->table->At(0, 0), Value::String("Alice"));
  EXPECT_EQ(r->table->At(1, 0), Value::String("John"));
  // The temporary location graph does not leak into the catalog.
  EXPECT_FALSE(catalog.HasGraph("__location0"));
}

TEST_F(EngineTest, OnSubqueryMixedWithNamedGraph) {
  QueryEngine engine(&catalog);
  auto r = engine.Execute(
      "SELECT c.name AS company, m.firstName AS person "
      "MATCH (c:Company) ON company_graph, "
      "(m) ON (CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'HAL') "
      "WHERE c.name IN m.employer");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->table->NumRows(), 1u);
  EXPECT_EQ(r->table->At(0, 1), Value::String("Celine"));
}

TEST_F(EngineTest, ViewsComposeAcrossExecutes) {
  QueryEngine engine(&catalog);
  ASSERT_TRUE(engine
                  .Execute("GRAPH VIEW v1 AS (CONSTRUCT (n) "
                           "MATCH (n:Person))")
                  .ok());
  ASSERT_TRUE(engine
                  .Execute("GRAPH VIEW v2 AS (CONSTRUCT (n) MATCH (n) ON v1 "
                           "WHERE n.employer = 'Acme')")
                  .ok());
  auto r = engine.Execute("SELECT COUNT(*) AS c MATCH (n) ON v2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->table->At(0, 0), Value::Int(2));
}

TEST_F(EngineTest, CatalogSharedBetweenEngines) {
  QueryEngine engine1(&catalog);
  ASSERT_TRUE(engine1
                  .Execute("GRAPH VIEW shared AS (CONSTRUCT (n) "
                           "MATCH (n:Tag))")
                  .ok());
  QueryEngine engine2(&catalog);
  auto r = engine2.Execute("SELECT COUNT(*) AS c MATCH (t) ON shared");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table->At(0, 0), Value::Int(1));
}

TEST_F(EngineTest, ViewRedefinitionReplaces) {
  QueryEngine engine(&catalog);
  ASSERT_TRUE(engine
                  .Execute("GRAPH VIEW w AS (CONSTRUCT (n) MATCH (n:Person))")
                  .ok());
  ASSERT_TRUE(engine
                  .Execute("GRAPH VIEW w AS (CONSTRUCT (n) MATCH (n:Tag))")
                  .ok());
  auto r = engine.Execute("SELECT COUNT(*) AS c MATCH (x) ON w");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table->At(0, 0), Value::Int(1));
}

TEST_F(EngineTest, EmptyMatchYieldsEmptyGraphNotError) {
  QueryEngine engine(&catalog);
  auto r = engine.Execute(
      "CONSTRUCT (n) MATCH (n:Person) WHERE n.firstName = 'Nobody'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->graph->Empty());
}

TEST_F(EngineTest, ExistsOverEmptySubqueryIsFalse) {
  QueryEngine engine(&catalog);
  auto r = engine.Execute(
      "SELECT COUNT(*) AS c MATCH (n:Person) "
      "WHERE EXISTS ( CONSTRUCT () MATCH (n)-[:worksAt]->(x) )");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->table->At(0, 0), Value::Int(0));  // no worksAt edges yet
}

TEST_F(EngineTest, RuntimeErrorsCarryEvaluationCode) {
  QueryEngine engine(&catalog);
  // PATH cost of zero violates Appendix A.4's "> 0" rule at runtime.
  auto r = engine.Execute(
      "PATH w = (x)-[e:knows]->(y) COST 0 "
      "CONSTRUCT (m) MATCH (n)-/p<~w*>/->(m)");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsEvaluationError());
}

TEST_F(EngineTest, DivisionByZeroSurfaces) {
  QueryEngine engine(&catalog);
  auto r = engine.Execute("SELECT 1/0 AS boom MATCH (n:Person)");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsEvaluationError());
}

TEST_F(EngineTest, QueryResultToString) {
  QueryEngine engine(&catalog);
  auto g = engine.Execute("CONSTRUCT (n) MATCH (n:Tag)");
  ASSERT_TRUE(g.ok());
  EXPECT_NE(g->ToString().find("Tag"), std::string::npos);
  auto t = engine.Execute("SELECT COUNT(*) AS c MATCH (n:Tag)");
  ASSERT_TRUE(t.ok());
  EXPECT_NE(t->ToString().find("c"), std::string::npos);
}

}  // namespace
}  // namespace gcore
