// OPTIONAL semantics (lines 44-56 of the paper): chained left outer
// joins, per-block WHERE, order independence, and the shared-variable
// syntactic restriction of [31].
#include <gtest/gtest.h>

#include "engine/engine.h"
#include "graph/graph_builder.h"
#include "snb/schema.h"

namespace gcore {
namespace {

class OptionalTest : public ::testing::Test {
 protected:
  OptionalTest() {
    GraphBuilder b("g", catalog.ids());
    // Persons: one with employer+city, one with employer only, one bare.
    const NodeId full = b.AddNode({"Person"}, {{"name", "Full"}});
    const NodeId half = b.AddNode({"Person"}, {{"name", "Half"}});
    b.AddNode({"Person"}, {{"name", "Bare"}});
    const NodeId acme = b.AddNode({"Company"}, {{"name", "Acme"}});
    const NodeId houston = b.AddNode({"City"}, {{"name", "Houston"}});
    b.AddEdge(full, acme, "worksAt");
    b.AddEdge(full, houston, "livesIn");
    b.AddEdge(half, acme, "worksAt");
    catalog.RegisterGraph("g", b.Build());
    catalog.SetDefaultGraph("g");
  }

  Result<Table> Select(const std::string& q) {
    QueryEngine engine(&catalog);
    auto r = engine.Execute(q);
    if (!r.ok()) return r.status();
    EXPECT_TRUE(r->IsTable());
    Table t = std::move(*r->table);
    t.SortRows();
    return t;
  }

  GraphCatalog catalog;
};

TEST_F(OptionalTest, UnmatchedOptionalKeepsRow) {
  auto t = Select(
      "SELECT n.name AS name, c.name AS company "
      "MATCH (n:Person) OPTIONAL (n)-[:worksAt]->(c)");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->NumRows(), 3u);
  // Bare has no company: NULL cell.
  EXPECT_EQ(t->At(0, 0), Value::String("Bare"));
  EXPECT_TRUE(t->At(0, 1).is_null());
  EXPECT_EQ(t->At(1, 1), Value::String("Acme"));
  EXPECT_EQ(t->At(2, 1), Value::String("Acme"));
}

TEST_F(OptionalTest, TwoBlocksChainLeftToRight) {
  auto t = Select(
      "SELECT n.name AS name, c.name AS company, a.name AS city "
      "MATCH (n:Person) "
      "OPTIONAL (n)-[:worksAt]->(c) "
      "OPTIONAL (n)-[:livesIn]->(a)");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->NumRows(), 3u);
  // Full has both, Half company only, Bare neither.
  EXPECT_TRUE(t->At(0, 1).is_null());   // Bare
  EXPECT_TRUE(t->At(0, 2).is_null());
  EXPECT_EQ(t->At(1, 0), Value::String("Full"));
  EXPECT_EQ(t->At(1, 1), Value::String("Acme"));
  EXPECT_EQ(t->At(1, 2), Value::String("Houston"));
  EXPECT_EQ(t->At(2, 0), Value::String("Half"));
  EXPECT_TRUE(t->At(2, 2).is_null());
}

TEST_F(OptionalTest, OrderIndependentWhenRestrictionHolds) {
  // Lines 48-56: swapping independent OPTIONAL blocks does not change the
  // result.
  auto t1 = Select(
      "SELECT n.name AS name, c.name AS company, a.name AS city "
      "MATCH (n:Person) OPTIONAL (n)-[:worksAt]->(c) "
      "OPTIONAL (n)-[:livesIn]->(a)");
  auto t2 = Select(
      "SELECT n.name AS name, c.name AS company, a.name AS city "
      "MATCH (n:Person) OPTIONAL (n)-[:livesIn]->(a) "
      "OPTIONAL (n)-[:worksAt]->(c)");
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t1->ToString(), t2->ToString());
}

TEST_F(OptionalTest, SharedVariableRestrictionRejected) {
  // Lines 54-56: `a` is shared by the blocks but absent from the enclosing
  // pattern — rejected to keep the semantics evaluation-order free.
  QueryEngine engine(&catalog);
  auto r = engine.Execute(
      "CONSTRUCT (n) MATCH (n:Person) "
      "OPTIONAL (n)-[:worksAt]->(a) "
      "OPTIONAL (n)-[:livesIn]->(a)");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsBindError());
}

TEST_F(OptionalTest, SharedVariableAllowedWhenInMainPattern) {
  QueryEngine engine(&catalog);
  auto r = engine.Execute(
      "CONSTRUCT (n) MATCH (n:Person), (a) "
      "OPTIONAL (n)-[:worksAt]->(a) "
      "OPTIONAL (n)-[:livesIn]->(a)");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

TEST_F(OptionalTest, OptionalBlockWithOwnWhere) {
  auto t = Select(
      "SELECT n.name AS name, c.name AS company "
      "MATCH (n:Person) "
      "OPTIONAL (n)-[:worksAt]->(c) WHERE c.name = 'NotAcme'");
  ASSERT_TRUE(t.ok());
  // The block filters to empty, so every person keeps a NULL company.
  ASSERT_EQ(t->NumRows(), 3u);
  for (size_t r = 0; r < 3; ++r) EXPECT_TRUE(t->At(r, 1).is_null());
}

TEST_F(OptionalTest, MultiSegmentOptionalAllPatternsMustMatch) {
  // "All patterns separated by comma in an OPTIONAL block must match."
  auto t = Select(
      "SELECT n.name AS name, c.name AS company, a.name AS city "
      "MATCH (n:Person) "
      "OPTIONAL (n)-[:worksAt]->(c), (n)-[:livesIn]->(a)");
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->NumRows(), 3u);
  // Only Full satisfies both segments; Half gets NULLs for the whole block.
  for (size_t r = 0; r < 3; ++r) {
    const bool is_full = t->At(r, 0) == Value::String("Full");
    EXPECT_EQ(!t->At(r, 1).is_null(), is_full);
    EXPECT_EQ(!t->At(r, 2).is_null(), is_full);
  }
}

}  // namespace
}  // namespace gcore
