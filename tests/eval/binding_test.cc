// Tests for bindings and the binding-set algebra of Appendix A.1.
#include "eval/binding.h"

#include <gtest/gtest.h>

#include "eval/binding_ops.h"

namespace gcore {
namespace {

Datum N(uint64_t id) { return Datum::OfNode(NodeId(id)); }
Datum V(const char* s) { return Datum::OfValue(Value::String(s)); }

BindingTable Make(std::vector<std::string> columns,
                  std::vector<BindingRow> rows) {
  BindingTable t(std::move(columns));
  for (auto& row : rows) {
    EXPECT_TRUE(t.AddRow(std::move(row)).ok());
  }
  return t;
}

TEST(Datum, KindsAndEquality) {
  EXPECT_TRUE(Datum().IsUnbound());
  EXPECT_EQ(N(1), N(1));
  EXPECT_NE(N(1), N(2));
  EXPECT_NE(N(1), Datum::OfEdge(EdgeId(1)));  // different kinds never equal
  EXPECT_EQ(V("x"), V("x"));
  EXPECT_EQ(Datum(), Datum());
}

TEST(Datum, PathComparesByIdentity) {
  auto p1 = std::make_shared<PathValue>();
  p1->id = PathId(7);
  auto p2 = std::make_shared<PathValue>();
  p2->id = PathId(7);
  p2->cost = 99;  // identity only
  EXPECT_EQ(Datum::OfPath(p1), Datum::OfPath(p2));
}

TEST(Datum, HashConsistency) {
  EXPECT_EQ(N(5).Hash(), N(5).Hash());
  EXPECT_EQ(V("a").Hash(), V("a").Hash());
}

TEST(BindingTable, UnitIsJoinIdentity) {
  BindingTable unit = BindingTable::Unit();
  EXPECT_EQ(unit.NumRows(), 1u);
  EXPECT_EQ(unit.NumColumns(), 0u);
  BindingTable t = Make({"x"}, {{N(1)}, {N(2)}});
  BindingTable joined = TableJoin(unit, t);
  EXPECT_EQ(joined.NumRows(), 2u);
  EXPECT_EQ(joined.NumColumns(), 1u);
}

TEST(BindingTable, GetAbsentColumnIsUnbound) {
  BindingTable t = Make({"x"}, {{N(1)}});
  EXPECT_TRUE(t.Get(0, "nope").IsUnbound());
  EXPECT_EQ(t.Get(0, "x"), N(1));
}

TEST(BindingTable, AddColumnExtendsRows) {
  BindingTable t = Make({"x"}, {{N(1)}});
  t.AddColumn("y");
  EXPECT_TRUE(t.Get(0, "y").IsUnbound());
}

TEST(BindingTable, RowArityChecked) {
  BindingTable t({"x", "y"});
  EXPECT_FALSE(t.AddRow({N(1)}).ok());
}

TEST(BindingTable, DeduplicateSetSemantics) {
  BindingTable t = Make({"x"}, {{N(1)}, {N(1)}, {N(2)}});
  t.Deduplicate();
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST(BindingTable, DeduplicateKeepsFirstOccurrenceOrder) {
  BindingTable t = Make({"x"}, {{N(3)}, {N(1)}, {N(3)}, {N(2)}, {N(1)}});
  t.Deduplicate();
  ASSERT_EQ(t.NumRows(), 3u);
  EXPECT_EQ(t.Get(0, "x"), N(3));
  EXPECT_EQ(t.Get(1, "x"), N(1));
  EXPECT_EQ(t.Get(2, "x"), N(2));
}

TEST(RowDedupSink, FusedConstructionIsDuplicateFree) {
  BindingTable t({"x", "y"});
  RowDedupSink sink(&t);
  EXPECT_TRUE(sink.Insert({N(1), N(10)}));
  EXPECT_FALSE(sink.Insert({N(1), N(10)}));
  EXPECT_TRUE(sink.Insert({N(1), N(11)}));
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST(RowDedupSink, IndexesPreexistingRows) {
  BindingTable t = Make({"x"}, {{N(1)}, {N(2)}});
  RowDedupSink sink(&t);
  EXPECT_FALSE(sink.Insert({N(2)}));
  EXPECT_TRUE(sink.Insert({N(3)}));
  EXPECT_EQ(t.NumRows(), 3u);
}

TEST(BindingTable, ColumnGraphProvenance) {
  BindingTable t({"x"});
  t.SetColumnGraph("x", "social_graph");
  EXPECT_EQ(t.ColumnGraph("x"), "social_graph");
  EXPECT_EQ(t.ColumnGraph("y"), "");
}

// --- ⋈ ------------------------------------------------------------------------

TEST(TableJoin, NaturalJoinOnSharedColumn) {
  BindingTable a = Make({"x", "y"}, {{N(1), N(10)}, {N(2), N(20)}});
  BindingTable b = Make({"y", "z"}, {{N(10), V("a")}, {N(99), V("b")}});
  BindingTable j = TableJoin(a, b);
  ASSERT_EQ(j.NumRows(), 1u);
  EXPECT_EQ(j.Get(0, "x"), N(1));
  EXPECT_EQ(j.Get(0, "z"), V("a"));
}

TEST(TableJoin, DisjointColumnsIsCartesianProduct) {
  // "Graph patterns that do not have variables in common lead to the
  // Cartesian product of variable bindings" (Section 3).
  BindingTable a = Make({"x"}, {{N(1)}, {N(2)}});
  BindingTable b = Make({"y"}, {{N(10)}, {N(20)}, {N(30)}});
  EXPECT_EQ(TableJoin(a, b).NumRows(), 6u);
}

TEST(TableJoin, UnboundSharedColumnIsCompatible) {
  BindingTable a = Make({"x", "y"}, {{N(1), Datum()}});
  BindingTable b = Make({"y"}, {{N(10)}});
  BindingTable j = TableJoin(a, b);
  ASSERT_EQ(j.NumRows(), 1u);
  // Merged row takes the bound value.
  EXPECT_EQ(j.Get(0, "y"), N(10));
}

TEST(TableJoin, DeduplicatesMergedRows) {
  // Duplicate input rows collapse in the fused output set.
  BindingTable a = Make({"x", "y"}, {{N(1), N(10)}, {N(1), N(10)}});
  BindingTable b = Make({"y", "z"}, {{N(10), V("a")}});
  EXPECT_EQ(TableJoin(a, b).NumRows(), 1u);
}

TEST(TableJoinParallel, IdenticalRowsAndOrderToSerialJoin) {
  // Inputs large enough for the partitioned parallel path (> 2 morsels),
  // with duplicate rows so cross-morsel dedup is exercised.
  BindingTable a({"x", "y"});
  for (uint64_t i = 0; i < 6000; ++i) {
    ASSERT_TRUE(a.AddRow({N(i % 1500), N(10000 + i % 600)}).ok());
  }
  BindingTable b({"y", "z"});
  for (uint64_t j = 0; j < 3000; ++j) {
    ASSERT_TRUE(b.AddRow({N(10000 + j % 600), N(20000 + j % 900)}).ok());
  }
  const BindingTable serial = TableJoin(a, b);
  for (size_t degree : {2, 4, 8}) {
    const BindingTable parallel = TableJoinParallel(a, b, degree);
    ASSERT_EQ(parallel.NumRows(), serial.NumRows()) << degree;
    EXPECT_EQ(parallel.columns(), serial.columns());
    for (size_t r = 0; r < serial.NumRows(); ++r) {
      ASSERT_EQ(parallel.Row(r), serial.Row(r)) << "row " << r;
    }
  }
}

TEST(TableJoinParallel, UnboundSharedColumnsFallBackToSerial) {
  BindingTable a({"x", "y"});
  for (uint64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(a.AddRow({N(i), N(10000 + i % 100)}).ok());
  }
  ASSERT_TRUE(a.AddRow({N(5000), Datum::Unbound()}).ok());
  BindingTable b({"y", "z"});
  for (uint64_t j = 0; j < 100; ++j) {
    ASSERT_TRUE(b.AddRow({N(10000 + j), N(20000 + j)}).ok());
  }
  const BindingTable serial = TableJoin(a, b);
  const BindingTable parallel = TableJoinParallel(a, b, 4);
  ASSERT_EQ(parallel.NumRows(), serial.NumRows());
  for (size_t r = 0; r < serial.NumRows(); ++r) {
    ASSERT_EQ(parallel.Row(r), serial.Row(r)) << "row " << r;
  }
}

TEST(TableJoin, EmptyOperandYieldsEmpty) {
  BindingTable a = Make({"x"}, {});
  BindingTable b = Make({"x"}, {{N(1)}});
  EXPECT_TRUE(TableJoin(a, b).Empty());
  EXPECT_TRUE(TableJoin(b, a).Empty());
}

// --- streaming probe -----------------------------------------------------------

/// Pushes `probe` through a StreamingJoinProbe in chunks of `chunk_rows`
/// (the last one ragged), as the executor would on arriving morsels.
BindingTable StreamJoin(const BindingTable& probe, const BindingTable& build,
                        bool swap_output, size_t chunk_rows) {
  StreamingJoinProbe stream(build, swap_output);
  for (size_t lo = 0; lo < probe.NumRows(); lo += chunk_rows) {
    BindingTable chunk(probe.columns());
    for (const auto& [var, graph] : probe.column_graphs()) {
      chunk.SetColumnGraph(var, graph);
    }
    std::vector<size_t> rows;
    const size_t hi = std::min(probe.NumRows(), lo + chunk_rows);
    for (size_t r = lo; r < hi; ++r) rows.push_back(r);
    chunk.AppendRowsFrom(probe, rows);
    stream.Probe(chunk);
  }
  return stream.Finish();
}

void ExpectSameRowsAndOrder(const BindingTable& got,
                            const BindingTable& want) {
  ASSERT_EQ(got.NumRows(), want.NumRows());
  ASSERT_EQ(got.columns(), want.columns());
  for (size_t r = 0; r < want.NumRows(); ++r) {
    ASSERT_EQ(got.Row(r), want.Row(r)) << "row " << r;
  }
}

TEST(StreamingJoinProbe, PinnedToDrainedJoinAtEveryChunking) {
  // Duplicates across chunk boundaries exercise the chunk-spanning dedup
  // state; unbound shared cells exercise the wildcard paths.
  BindingTable a({"x", "y"});
  for (uint64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(a.AddRow({N(i % 120), N(10000 + i % 40)}).ok());
  }
  ASSERT_TRUE(a.AddRow({N(7), Datum::Unbound()}).ok());
  BindingTable b({"y", "z"});
  for (uint64_t j = 0; j < 200; ++j) {
    ASSERT_TRUE(b.AddRow({N(10000 + j % 40), N(20000 + j % 60)}).ok());
  }
  ASSERT_TRUE(b.AddRow({Datum::Unbound(), N(20001)}).ok());
  const BindingTable drained = TableJoin(a, b);
  for (size_t chunk_rows : {1, 7, 64, 100000}) {
    ExpectSameRowsAndOrder(StreamJoin(a, b, /*swap_output=*/false,
                                      chunk_rows),
                           drained);
  }
}

TEST(StreamingJoinProbe, SwapOutputPinnedToTableJoinSwapBuild) {
  BindingTable a({"x", "y"});
  for (uint64_t i = 0; i < 60; ++i) {
    ASSERT_TRUE(a.AddRow({N(i % 20), N(10000 + i % 15)}).ok());
  }
  BindingTable b({"y", "z"});
  for (uint64_t j = 0; j < 300; ++j) {
    ASSERT_TRUE(b.AddRow({N(10000 + j % 15), N(20000 + j % 45)}).ok());
  }
  // TableJoinSwapBuild(a, b) builds over a and probes b, then re-merges
  // into the canonical a-first schema — the streaming probe side is b.
  const BindingTable drained = TableJoinSwapBuild(a, b, /*parallelism=*/1);
  for (size_t chunk_rows : {3, 50, 100000}) {
    ExpectSameRowsAndOrder(StreamJoin(b, a, /*swap_output=*/true,
                                      chunk_rows),
                           drained);
  }
}

TEST(StreamingJoinProbe, NoChunksBehavesAsEmptyDrainedProbe) {
  BindingTable build = Make({"y"}, {{N(1)}, {N(2)}});
  {
    StreamingJoinProbe stream(build, /*swap_output=*/false);
    const BindingTable out = stream.Finish();
    // Drain of a chunkless operator yields the default empty table; the
    // join of that with the build side keeps only the build columns.
    EXPECT_EQ(out.NumRows(), 0u);
    EXPECT_EQ(out.columns(), build.columns());
  }
  {
    StreamingJoinProbe stream(build, /*swap_output=*/true);
    const BindingTable out = stream.Finish();
    EXPECT_EQ(out.NumRows(), 0u);
    EXPECT_EQ(out.columns(), build.columns());
  }
}

// --- ∪ -------------------------------------------------------------------------

TEST(TableUnion, MergesSchemasAndDeduplicates) {
  BindingTable a = Make({"x"}, {{N(1)}});
  BindingTable b = Make({"x", "y"}, {{N(1), Datum()}, {N(2), N(20)}});
  BindingTable u = TableUnion(a, b);
  // {x:1} from a equals {x:1,y:⊥} from b after schema alignment.
  EXPECT_EQ(u.NumRows(), 2u);
  EXPECT_EQ(u.NumColumns(), 2u);
}

// --- ⋉ and ∖ ---------------------------------------------------------------------

TEST(TableSemijoin, KeepsCompatibleRows) {
  BindingTable a = Make({"x", "y"}, {{N(1), N(10)}, {N(2), N(20)}});
  BindingTable b = Make({"y"}, {{N(10)}});
  BindingTable s = TableSemijoin(a, b);
  ASSERT_EQ(s.NumRows(), 1u);
  EXPECT_EQ(s.Get(0, "x"), N(1));
  EXPECT_EQ(s.NumColumns(), 2u);  // schema of the left side only
}

TEST(TableAntijoin, KeepsIncompatibleRows) {
  BindingTable a = Make({"x", "y"}, {{N(1), N(10)}, {N(2), N(20)}});
  BindingTable b = Make({"y"}, {{N(10)}});
  BindingTable s = TableAntijoin(a, b);
  ASSERT_EQ(s.NumRows(), 1u);
  EXPECT_EQ(s.Get(0, "x"), N(2));
}

TEST(TableAntijoin, EmptyRightKeepsAll) {
  BindingTable a = Make({"x"}, {{N(1)}, {N(2)}});
  BindingTable b = Make({"x"}, {});
  EXPECT_EQ(TableAntijoin(a, b).NumRows(), 2u);
}

// --- ⟕ -----------------------------------------------------------------------------

TEST(TableLeftOuterJoin, PreservesUnmatchedLeftRows) {
  BindingTable a = Make({"x"}, {{N(1)}, {N(2)}});
  BindingTable b = Make({"x", "msg"}, {{N(1), V("hello")}});
  BindingTable j = TableLeftOuterJoin(a, b);
  ASSERT_EQ(j.NumRows(), 2u);
  // Row for x=2 exists with msg unbound.
  bool found_unmatched = false;
  for (size_t r = 0; r < j.NumRows(); ++r) {
    if (j.Get(r, "x") == N(2)) {
      EXPECT_TRUE(j.Get(r, "msg").IsUnbound());
      found_unmatched = true;
    }
  }
  EXPECT_TRUE(found_unmatched);
}

TEST(TableLeftOuterJoin, EquivalentToJoinWhenAllMatch) {
  BindingTable a = Make({"x"}, {{N(1)}});
  BindingTable b = Make({"x", "y"}, {{N(1), N(5)}});
  BindingTable outer = TableLeftOuterJoin(a, b);
  BindingTable inner = TableJoin(a, b);
  EXPECT_EQ(outer.NumRows(), inner.NumRows());
}

TEST(TableLeftOuterJoin, MultipleMatchesMultiplyRows) {
  BindingTable a = Make({"x"}, {{N(1)}});
  BindingTable b = Make({"x", "y"}, {{N(1), N(5)}, {N(1), N(6)}});
  EXPECT_EQ(TableLeftOuterJoin(a, b).NumRows(), 2u);
}

// Parameterized algebraic law: ⟕ = ⋈ ∪ ∖ (the defining identity).
class OuterJoinLaw : public ::testing::TestWithParam<int> {};

TEST_P(OuterJoinLaw, DefinitionHolds) {
  const int seed = GetParam();
  auto rnd_table = [&](int salt) {
    BindingTable t({"x", "y"});
    for (int i = 0; i < 6; ++i) {
      const uint64_t vx = static_cast<uint64_t>((seed * 7 + salt * 3 + i) % 4);
      const uint64_t vy = static_cast<uint64_t>((seed * 5 + salt + i * 2) % 4);
      EXPECT_TRUE(t.AddRow({N(vx + 1), N(vy + 1)}).ok());
    }
    t.Deduplicate();
    return t;
  };
  BindingTable a = rnd_table(1);
  BindingTable b = rnd_table(2);
  BindingTable lhs = TableLeftOuterJoin(a, b);
  BindingTable rhs = TableUnion(TableJoin(a, b), TableAntijoin(a, b));
  lhs.Deduplicate();
  rhs.Deduplicate();
  EXPECT_EQ(lhs.NumRows(), rhs.NumRows());
}

INSTANTIATE_TEST_SUITE_P(Seeds, OuterJoinLaw, ::testing::Range(0, 8));

}  // namespace
}  // namespace gcore
