// Differential suite pinning the vectorized expression kernels
// (eval/expr_vec.h) to the row-at-a-time ExprEvaluator — the executable
// spec — across every Value kind (null/absent, interned strings, dates
// including non-calendar literals, multi-valued sets, paths), the AND/OR
// short-circuit (including its error suppression), morsel sizes
// {1, 7, 1024}, and engine-level parallelism 1/2/8. The
// enable_vectorized_exprs=false runs double as the seed-path baseline:
// every configuration must reproduce them byte-identically.
#include "eval/expr_vec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/date.h"
#include "engine/engine.h"
#include "parser/parser.h"
#include "snb/toy_graphs.h"

namespace gcore {
namespace {

Date MkDate(int32_t y, int m, int d) {
  Date dt;
  dt.year = y;
  dt.month = static_cast<uint8_t>(m);
  dt.day = static_cast<uint8_t>(d);
  return dt;
}

const size_t kMorsels[] = {1, 7, 1024};

class ExprVecTest : public ::testing::Test {
 protected:
  ExprVecTest() {
    PathPropertyGraph g = snb::MakeSocialGraph(catalog.ids());
    // Typed columns over the persons, arranged so every PropKind appears:
    // ints, doubles, bools, dates (one non-calendar), a {null} cell, a
    // multi-valued overflow cell, and absences (Frank has no age).
    g.SetProperty(NodeId(snb::kJohnId), "age", ValueSet(Value::Int(42)));
    g.SetProperty(NodeId(snb::kPeterId), "age", ValueSet(Value::Int(17)));
    g.SetProperty(NodeId(snb::kAliceId), "age",
                  ValueSet(Value::Double(30.5)));
    g.SetProperty(NodeId(snb::kCelineId), "age", ValueSet(Value::Null()));
    g.SetProperty(NodeId(snb::kJohnId), "score",
                  ValueSet(Value::Double(1.5)));
    g.SetProperty(NodeId(snb::kPeterId), "score", ValueSet(Value::Int(3)));
    g.SetProperty(NodeId(snb::kFrankId), "score",
                  ValueSet({Value::Int(1), Value::Int(2)}));
    g.SetProperty(NodeId(snb::kJohnId), "active",
                  ValueSet(Value::Bool(true)));
    g.SetProperty(NodeId(snb::kPeterId), "active",
                  ValueSet(Value::Bool(false)));
    g.SetProperty(NodeId(snb::kJohnId), "birthday",
                  ValueSet(Value::OfDate(MkDate(1984, 2, 29))));
    g.SetProperty(NodeId(snb::kPeterId), "birthday",
                  ValueSet(Value::OfDate(MkDate(2009, 3, 2))));
    // Non-calendar date: the same epoch day as 2009-03-02 by day count,
    // but distinct field identity, which the packed kernels must keep.
    g.SetProperty(NodeId(snb::kAliceId), "birthday",
                  ValueSet(Value::OfDate(MkDate(2009, 2, 31))));
    catalog.RegisterGraph("social_graph", std::move(g));
    catalog.SetDefaultGraph("social_graph");
    graph = *catalog.Lookup("social_graph");
    snap = std::make_unique<GraphSnapshot>(*graph);
  }

  VecProgram::SnapshotFn SnapFn() {
    return [this](const PathPropertyGraph&) -> const GraphSnapshot& {
      return *snap;
    };
  }

  BindingTable PersonTable() const {
    BindingTable t({"n"});
    t.SetColumnGraph("n", "social_graph");
    for (uint64_t id : {snb::kJohnId, snb::kPeterId, snb::kAliceId,
                        snb::kCelineId, snb::kFrankId}) {
      Status st = t.AddRow({Datum::OfNode(NodeId(id))});
      (void)st;
    }
    return t;
  }

  /// One column of every Datum shape the kernels must load: singletons of
  /// each type, {null}, ∅, unbound, a multi-valued set, a node, a path.
  BindingTable MixedTable() const {
    PathValue pv;
    pv.id = PathId(9301);
    std::vector<Datum> cells = {
        Datum::OfValue(Value::Int(1)),
        Datum::OfValue(Value::Double(2.5)),
        Datum::OfValue(Value::String("a")),
        Datum::OfValue(Value::Bool(true)),
        Datum::OfValue(Value::OfDate(MkDate(2020, 1, 2))),
        Datum::OfValue(Value::Null()),
        Datum::Unbound(),
        Datum::OfValues(ValueSet()),
        Datum::OfValues(ValueSet({Value::Int(1), Value::Int(2)})),
        Datum::OfNode(NodeId(snb::kJohnId)),
        Datum::OfPath(std::make_shared<const PathValue>(std::move(pv))),
    };
    BindingTable t({"x"});
    t.SetColumnGraph("x", "social_graph");
    for (auto& c : cells) {
      Status st = t.AddRow({std::move(c)});
      (void)st;
    }
    return t;
  }

  /// Predicate differential: FilterRows over morsels {1, 7, 1024} must
  /// keep exactly the rows the serial EvalPredicate loop keeps, and
  /// error iff it errors — with the same message and the same kept
  /// prefix before the erroring row.
  void ExpectFilterDifferential(const Expr& expr, const BindingTable& table,
                                const std::string& label) {
    ExprEvaluator eval(graph, &catalog);
    auto prog = VecProgram::Compile(expr, table, eval, SnapFn());
    ASSERT_NE(prog, nullptr) << label;
    std::vector<size_t> want;
    Status want_status = Status::OK();
    for (size_t r = 0; r < table.NumRows(); ++r) {
      auto keep = eval.EvalPredicate(expr, table, r);
      if (!keep.ok()) {
        want_status = keep.status();
        break;
      }
      if (*keep) want.push_back(r);
    }
    for (size_t morsel : kMorsels) {
      std::vector<size_t> got;
      Status got_status = Status::OK();
      for (size_t lo = 0; lo < table.NumRows() && got_status.ok();
           lo += morsel) {
        const size_t hi = std::min(table.NumRows(), lo + morsel);
        std::vector<size_t> rows;
        for (size_t r = lo; r < hi; ++r) rows.push_back(r);
        got_status =
            prog->FilterRows(table, rows.data(), rows.size(), eval, &got);
      }
      EXPECT_EQ(got_status.ToString(), want_status.ToString())
          << label << " morsel=" << morsel;
      EXPECT_EQ(got, want) << label << " morsel=" << morsel;
    }
  }

  void ExpectFilterDifferential(const std::string& text,
                                const BindingTable& table) {
    auto parsed = ParseExpression(text);
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.status().ToString();
    ExpectFilterDifferential(**parsed, table, text);
  }

  /// Value differential: every row EvalValues decides must carry exactly
  /// the Datum the row evaluator produces; rows it cannot decide must be
  /// flagged (in particular every row whose serial evaluation errors).
  void ExpectValueDifferential(const Expr& expr, const BindingTable& table,
                               const std::string& label) {
    ExprEvaluator eval(graph, &catalog);
    auto prog = VecProgram::Compile(expr, table, eval, SnapFn());
    ASSERT_NE(prog, nullptr) << label;
    for (size_t morsel : kMorsels) {
      for (size_t lo = 0; lo < table.NumRows(); lo += morsel) {
        const size_t hi = std::min(table.NumRows(), lo + morsel);
        std::vector<size_t> rows;
        for (size_t r = lo; r < hi; ++r) rows.push_back(r);
        std::vector<Datum> out;
        std::vector<uint8_t> fb;
        prog->EvalValues(table, rows.data(), rows.size(), &out, &fb);
        ASSERT_EQ(out.size(), rows.size());
        ASSERT_EQ(fb.size(), rows.size());
        for (size_t i = 0; i < rows.size(); ++i) {
          auto want = eval.Eval(expr, table, rows[i]);
          if (!want.ok()) {
            EXPECT_EQ(fb[i], 1) << label << " row " << rows[i];
            continue;
          }
          if (fb[i] == 0) {
            EXPECT_TRUE(out[i] == *want)
                << label << " row " << rows[i] << ": got " << out[i].ToString()
                << " want " << want->ToString();
          }
        }
      }
    }
  }

  void ExpectValueDifferential(const std::string& text,
                               const BindingTable& table) {
    auto parsed = ParseExpression(text);
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.status().ToString();
    ExpectValueDifferential(**parsed, table, text);
  }

  GraphCatalog catalog;
  const PathPropertyGraph* graph = nullptr;
  std::unique_ptr<GraphSnapshot> snap;
};

// --- predicate kernels over node property columns ---------------------------

TEST_F(ExprVecTest, PropertyComparisonsMatchRowEvaluator) {
  const char* exprs[] = {
      "n.firstName = 'John'",    "n.firstName <> 'John'",
      "n.age = 42",              "n.age <> 42",
      "n.age < 30",              "n.age <= 30.5",
      "n.age > 17",              "n.age >= 42",
      "n.age = null",            "n.age <> null",
      "n.score = 1.5",           "n.score < 2",
      "n.active = TRUE",         "n.active <> FALSE",
      "n.employer = 'Acme'",     "n.employer = 'MIT'",
      "'MIT' IN n.employer",     "'Acme' IN n.employer",
      "n.age IN n.age",          "n.employer SUBSET n.employer",
      "n.age SUBSET n.score",    "n.firstName < n.lastName",
      "n.birthday = n.birthday", "n.birthday <= n.birthday",
  };
  for (const char* e : exprs) ExpectFilterDifferential(e, PersonTable());
}

TEST_F(ExprVecTest, ArithmeticAndConnectivesMatchRowEvaluator) {
  const char* exprs[] = {
      "n.age + 1 > 18",
      "n.age - 10 >= 7",
      "n.age * 2 = 84",
      "n.age / 2 > 10",
      "n.age % 5 = 2",
      "-n.age < 0",
      "(n.age + n.score) * 2 > 40",
      "n.firstName + '!' = 'John!'",
      "NOT n.active",
      "NOT (n.age > 20)",
      "n.age > 20 AND n.score < 2",
      "n.age > 20 OR n.active",
      "n.age > 100 OR n.firstName = 'Peter'",
      "n:Person",
      "n:Company",
      "n:Company|Person",
      "n:Person AND n.age >= 17",
      "CASE WHEN n.age > 20 THEN TRUE ELSE FALSE END",
      "CASE WHEN n.age > 20 THEN 1 WHEN n.age > 10 THEN 2 ELSE 3 END = 2",
  };
  for (const char* e : exprs) ExpectFilterDifferential(e, PersonTable());
}

TEST_F(ExprVecTest, MixedDatumColumnMatchesRowEvaluator) {
  // Every loadable Datum shape flows through kLoadVar (paths fall back
  // per row); comparisons and arithmetic must agree with the spec on
  // each, including the unbound and ∅ rows.
  const char* exprs[] = {
      "x = 1",      "x <> 1",        "x < 2",    "x <= 2.5", "x > 'Z'",
      "x = null",   "1 IN x",        "x IN x",   "x SUBSET x",
      "x + 1 = 2",  "x * 2 = 5.0",   "NOT x",    "x AND x",  "x OR x = 1",
  };
  BindingTable t = MixedTable();
  // Connective/NOT shapes error on non-boolean rows; the differential
  // helper pins the error (message and position) either way.
  for (const char* e : exprs) ExpectFilterDifferential(e, t);
}

// --- dates (field identity, non-calendar literals) --------------------------

TEST_F(ExprVecTest, DateComparisonsIncludingNonCalendar) {
  // The parser has no date literals, so build the comparisons by hand.
  for (BinaryOp op : {BinaryOp::kEq, BinaryOp::kNe, BinaryOp::kLt,
                      BinaryOp::kLe, BinaryOp::kGt, BinaryOp::kGe}) {
    for (Date lit : {MkDate(2000, 1, 1), MkDate(2009, 3, 2),
                     MkDate(2009, 2, 31), MkDate(1984, 2, 29)}) {
      auto cmp = Expr::Binary(op, Expr::Property("n", "birthday"),
                              Expr::Literal(Value::OfDate(lit)));
      ExpectFilterDifferential(
          *cmp, PersonTable(),
          "n.birthday op#" + std::to_string(static_cast<int>(op)) + " " +
              lit.ToString());
    }
  }
}

TEST_F(ExprVecTest, DateProjectionRoundTripsFields) {
  // Materialized dates keep (year, month, day) identity — in particular
  // Alice's non-calendar 2009-02-31 must not collapse to an epoch-day
  // renormalization.
  ExpectValueDifferential("n.birthday", PersonTable());
}

// --- short-circuit and error order ------------------------------------------

TEST_F(ExprVecTest, DivisionByZeroErrorMatchesSerialOrder) {
  // Every row errors in the serial loop at the first row; the vectorized
  // filter must surface the identical status with the identical kept
  // prefix.
  ExpectFilterDifferential("n.age % 0 = 1", PersonTable());
  ExpectFilterDifferential("n.age / 0 > 0", PersonTable());
}

TEST_F(ExprVecTest, AndOrShortCircuitSuppressesRhsErrors) {
  // The row path never evaluates the erroring right side when the left
  // side already decides; the kernel's selection-vector gather must
  // reproduce that suppression exactly.
  ExpectFilterDifferential("n.age < 0 AND n.age % 0 = 1", PersonTable());
  ExpectFilterDifferential("n.age >= 0 OR n.age % 0 = 1", PersonTable());
  // Positive control: rows that do reach the right side error in both.
  ExpectFilterDifferential("n.age >= 0 AND n.age % 0 = 1", PersonTable());
  ExpectFilterDifferential("n.firstName = 'John' AND n.age % 0 = 1",
                           PersonTable());
}

// --- value batches (computed projections) -----------------------------------

TEST_F(ExprVecTest, ComputedProjectionsMatchRowEvaluator) {
  const char* exprs[] = {
      "n.age",
      "n.employer",
      "n.age + n.score",
      "n.firstName + ' ' + n.lastName",
      "-n.age",
      "n.age / 4",
      "CASE WHEN n.age > 20 THEN n.firstName ELSE n.lastName END",
      "n.age > 20",
  };
  for (const char* e : exprs) ExpectValueDifferential(e, PersonTable());
  ExpectValueDifferential("x", MixedTable());
  ExpectValueDifferential("x + 1", MixedTable());
}

// --- compilation refusals ---------------------------------------------------

TEST_F(ExprVecTest, RefusesExpressionsNeedingTheFullEvaluator) {
  BindingTable t = PersonTable();
  ExprEvaluator eval(graph, &catalog);
  for (const char* text :
       {"SIZE(n.employer) = 2", "COUNT(n.age) > 1",
        "LABELS(n) = 'Person'"}) {
    auto parsed = ParseExpression(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_EQ(VecProgram::Compile(**parsed, t, eval, SnapFn()), nullptr)
        << text;
  }
}

// --- engine-level differential ----------------------------------------------

TEST_F(ExprVecTest, EngineResultsIdenticalAcrossKnobMorselsParallelism) {
  const char* queries[] = {
      // Residual WHERE with a non-specializable conjunct + computed
      // projection + ORDER BY keys (FilterTable, FilterByConjuncts and
      // FinishBasic vectorized sites all fire). Arithmetic over the
      // partially-absent age column hides behind a CASE guard so the
      // query is error-free under ANY conjunct evaluation order — the
      // reordering satellite may legally move conjuncts around.
      "SELECT n.firstName AS name, n.age + 1 AS a MATCH (n:Person) "
      "WHERE CASE WHEN n.age >= 17 THEN n.age + 0 >= 17 ELSE FALSE END "
      "ORDER BY n.firstName",
      // Conjunct reordering candidates: specialized + vectorizable mix.
      "SELECT n.firstName AS name MATCH (n:Person) "
      "WHERE n.age >= 17 AND "
      "(CASE WHEN n.age >= 17 THEN n.age * 2 < 100 ELSE FALSE END) AND "
      "n.firstName <> 'Alice' ORDER BY name",
      // Multi-valued and absent properties through WHERE.
      "SELECT n.firstName AS name MATCH (n:Person) "
      "WHERE 'MIT' IN n.employer OR n.employer = 'Acme' ORDER BY name",
      // Joins + WHERE across variables.
      "SELECT n.firstName AS name, c.name AS city "
      "MATCH (n:Person)-[:isLocatedIn]->(c:City) "
      "WHERE n.age >= 17 OR c.name = 'Austin' ORDER BY name",
  };
  for (const char* q : queries) {
    // Seed baseline: knob off, serial, default morsels.
    QueryEngine base(&catalog);
    base.set_enable_vectorized_exprs(false);
    base.set_parallelism(1);
    auto want = base.Execute(q);
    ASSERT_TRUE(want.ok()) << q << ": " << want.status().ToString();
    ASSERT_TRUE(want->table.has_value()) << q;
    const std::string want_s = want->table->ToString();
    for (bool vec : {false, true}) {
      for (size_t par : {size_t{1}, size_t{2}, size_t{8}}) {
        for (size_t morsel : kMorsels) {
          QueryEngine e(&catalog);
          e.set_enable_vectorized_exprs(vec);
          e.set_parallelism(par);
          e.set_morsel_size(morsel);
          auto got = e.Execute(q);
          ASSERT_TRUE(got.ok()) << q << ": " << got.status().ToString();
          ASSERT_TRUE(got->table.has_value()) << q;
          EXPECT_EQ(got->table->ToString(), want_s)
              << q << " vec=" << vec << " par=" << par
              << " morsel=" << morsel;
        }
      }
    }
  }
}

}  // namespace
}  // namespace gcore
