// The worked examples of Appendix A, evaluated on the Figure 2 instance:
//  * A.2: ⟦MATCH γ WHERE w.name = Houston⟧ = {{x→105, y→102, w→106, z→301}}
//  * A.3: the CONSTRUCT {f, g, h} company-grouping denotation.
#include <gtest/gtest.h>

#include "engine/engine.h"
#include "eval/matcher.h"
#include "parser/parser.h"
#include "snb/toy_graphs.h"

namespace gcore {
namespace {

class FormalSemantics : public ::testing::Test {
 protected:
  FormalSemantics() {
    snb::RegisterToyData(&catalog);
    catalog.SetDefaultGraph("example_graph");
  }
  GraphCatalog catalog;
};

TEST_F(FormalSemantics, A2_SubpatternLocatedIn) {
  // ⟦x -locatedIn-> w⟧ = {{x→105, w→106}, {x→102, w→106}}.
  MatcherContext ctx;
  ctx.catalog = &catalog;
  ctx.default_graph = "example_graph";
  Matcher matcher(ctx);
  auto parsed = ParseQuery("CONSTRUCT (x) MATCH (x)-[:locatedIn]->(w)");
  ASSERT_TRUE(parsed.ok());
  const MatchClause& match = *(*parsed)->body->basic->match;
  auto table = matcher.EvalMatchClause(match);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  ASSERT_EQ(table->NumRows(), 2u);
  std::set<uint64_t> xs;
  for (size_t r = 0; r < table->NumRows(); ++r) {
    xs.insert(table->Get(r, "x").node().value());
    EXPECT_EQ(table->Get(r, "w").node(), NodeId(106));
  }
  EXPECT_EQ(xs, (std::set<uint64_t>{102, 105}));
}

TEST_F(FormalSemantics, A2_StoredPathConformingToRegex) {
  // ⟦x @z in (knows+knows⁻)* y⟧ = {{z→301, x→105, y→102}}.
  MatcherContext ctx;
  ctx.catalog = &catalog;
  ctx.default_graph = "example_graph";
  Matcher matcher(ctx);
  auto parsed = ParseQuery(
      "CONSTRUCT (x) MATCH (x)-/@z <(:knows|:knows-)*>/->(y)");
  ASSERT_TRUE(parsed.ok());
  const MatchClause& match = *(*parsed)->body->basic->match;
  auto table = matcher.EvalMatchClause(match);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  ASSERT_EQ(table->NumRows(), 1u);
  EXPECT_EQ(table->Get(0, "x").node(), NodeId(105));
  EXPECT_EQ(table->Get(0, "y").node(), NodeId(102));
  EXPECT_EQ(table->Get(0, "z").path().id, PathId(301));
}

TEST_F(FormalSemantics, A2_FullExampleSingleBinding) {
  // The full γ of the A.2 example plus WHERE w.name = 'Houston'.
  QueryEngine engine(&catalog);
  auto result = engine.Execute(
      "SELECT ID(x) AS x, ID(y) AS y, ID(w) AS w, ID(z) AS z "
      "MATCH (x)-[:locatedIn]->(w), (y)-[:locatedIn]->(w), "
      "(x)-/@z <(:knows|:knows-)*>/->(y) "
      "WHERE w.name = 'Houston'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->IsTable());
  const Table& t = *result->table;
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.At(0, t.ColumnIndex("x")), Value::Int(105));
  EXPECT_EQ(t.At(0, t.ColumnIndex("y")), Value::Int(102));
  EXPECT_EQ(t.At(0, t.ColumnIndex("w")), Value::Int(106));
  EXPECT_EQ(t.At(0, t.ColumnIndex("z")), Value::Int(301));
}

TEST_F(FormalSemantics, A2_WhereFilterRemovesNonHouston) {
  // Without a second city no binding matches a different name.
  QueryEngine engine(&catalog);
  auto result = engine.Execute(
      "SELECT ID(x) AS x MATCH (x)-[:locatedIn]->(w) "
      "WHERE w.name = 'Paris'");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table->NumRows(), 0u);
}

TEST_F(FormalSemantics, A3_ConstructCompaniesFromBindings) {
  // The A.3 example over the social_graph employer bindings: node
  // construct (x GROUP e :Company {name := e}), node construct (n), and
  // edge construct n -[y GROUP x,e,n :worksAt]-> x. Five bindings yield
  // four companies and five edges.
  catalog.SetDefaultGraph("social_graph");
  QueryEngine engine(&catalog);
  auto result = engine.Execute(
      "CONSTRUCT (n)-[y:worksAt]->(x GROUP e :Company {name:=e}) "
      "MATCH (n:Person {employer=e})");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const PathPropertyGraph& g = *result->graph;
  // 4 persons with employers + 4 companies.
  EXPECT_EQ(g.NumNodes(), 8u);
  EXPECT_EQ(g.NumEdges(), 5u);
  // Frank has two worksAt edges (one per employer value).
  int frank_edges = 0;
  std::set<std::string> frank_companies;
  g.ForEachEdge([&](EdgeId e, NodeId src, NodeId dst) {
    EXPECT_TRUE(g.Labels(e).Contains("worksAt"));
    if (src == NodeId(snb::kFrankId)) {
      ++frank_edges;
      frank_companies.insert(
          g.Property(dst, "name").single().AsString());
    }
  });
  EXPECT_EQ(frank_edges, 2);
  EXPECT_EQ(frank_companies, (std::set<std::string>{"CWI", "MIT"}));
}

TEST_F(FormalSemantics, A3_SkolemSharedAcrossItems) {
  // An unbound variable occurring in several construct items denotes the
  // same new object ("to ensure that the same identities will be used").
  catalog.SetDefaultGraph("social_graph");
  QueryEngine engine(&catalog);
  auto result = engine.Execute(
      "CONSTRUCT (hub GROUP c :City2 {name:=c.name}), "
      "(n)-[:cityOf]->(hub GROUP c) "
      "MATCH (n:Person)-[:isLocatedIn]->(c)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const PathPropertyGraph& g = *result->graph;
  // Two cities -> two hubs; 5 persons -> 5 edges into exactly those hubs.
  size_t hubs = 0;
  g.ForEachNode([&](NodeId n) {
    if (g.Labels(n).Contains("City2")) ++hubs;
  });
  EXPECT_EQ(hubs, 2u);
  EXPECT_EQ(g.NumEdges(), 5u);
}

TEST_F(FormalSemantics, A5_QueryLevelSetOps) {
  catalog.SetDefaultGraph("social_graph");
  QueryEngine engine(&catalog);
  // (social ∪ company) ∖ company = social (they are disjoint).
  auto result = engine.Execute(
      "social_graph UNION company_graph MINUS company_graph");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto social = catalog.Lookup("social_graph");
  ASSERT_TRUE(social.ok());
  EXPECT_EQ(result->graph->NumNodes(), (*social)->NumNodes());
  EXPECT_EQ(result->graph->NumEdges(), (*social)->NumEdges());
}

TEST_F(FormalSemantics, A6_GraphClauseIsQueryLocal) {
  catalog.SetDefaultGraph("social_graph");
  QueryEngine engine(&catalog);
  auto result = engine.Execute(
      "GRAPH tmp AS (CONSTRUCT (n) MATCH (n:Person)) "
      "CONSTRUCT (m) MATCH (m) ON tmp");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->graph->NumNodes(), 5u);
  // tmp does not persist.
  EXPECT_FALSE(catalog.HasGraph("tmp"));
}

TEST_F(FormalSemantics, A6_GraphViewPersists) {
  catalog.SetDefaultGraph("social_graph");
  QueryEngine engine(&catalog);
  auto result = engine.Execute(
      "GRAPH VIEW persons_view AS (CONSTRUCT (n) MATCH (n:Person))");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(catalog.HasGraph("persons_view"));
  auto view = catalog.Lookup("persons_view");
  ASSERT_TRUE(view.ok());
  EXPECT_EQ((*view)->NumNodes(), 5u);
}

}  // namespace
}  // namespace gcore
