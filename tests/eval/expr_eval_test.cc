// Expression-semantics tests: the multi-valued comparison rules of
// pp. 8-9, functions, aggregation, CASE, and truthiness.
#include "eval/expr_eval.h"

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "snb/toy_graphs.h"

namespace gcore {
namespace {

class ExprEvalTest : public ::testing::Test {
 protected:
  ExprEvalTest() {
    catalog.RegisterGraph("social_graph",
                          snb::MakeSocialGraph(catalog.ids()));
    catalog.SetDefaultGraph("social_graph");
    graph = *catalog.Lookup("social_graph");
  }

  // Evaluates `text` against a single-row table binding the toy persons.
  Result<Datum> Eval(const std::string& text) {
    BindingTable table({"john", "peter", "frank", "alice"});
    table.SetColumnGraph("john", "social_graph");
    table.SetColumnGraph("peter", "social_graph");
    table.SetColumnGraph("frank", "social_graph");
    table.SetColumnGraph("alice", "social_graph");
    Status st = table.AddRow({Datum::OfNode(NodeId(snb::kJohnId)),
                              Datum::OfNode(NodeId(snb::kPeterId)),
                              Datum::OfNode(NodeId(snb::kFrankId)),
                              Datum::OfNode(NodeId(snb::kAliceId))});
    (void)st;
    auto expr = ParseExpression(text);
    if (!expr.ok()) return expr.status();
    ExprEvaluator eval(graph, &catalog);
    return eval.Eval(**expr, table, 0);
  }

  bool EvalBool(const std::string& text) {
    auto d = Eval(text);
    EXPECT_TRUE(d.ok()) << text << ": " << d.status().ToString();
    auto b = ExprEvaluator::Truthy(*d);
    EXPECT_TRUE(b.ok()) << text;
    return b.ok() && *b;
  }

  Value EvalValue(const std::string& text) {
    auto d = Eval(text);
    EXPECT_TRUE(d.ok()) << text << ": " << d.status().ToString();
    EXPECT_EQ(d->kind(), Datum::Kind::kValues) << text;
    EXPECT_TRUE(d->values().is_singleton()) << text;
    return d->values().single();
  }

  GraphCatalog catalog;
  const PathPropertyGraph* graph = nullptr;
};

// --- pp. 8-9 comparison semantics ---------------------------------------------

TEST_F(ExprEvalTest, SingletonEqualsMultiValuedIsFalse) {
  // "MIT" = {"CWI","MIT"} evaluates to FALSE.
  EXPECT_FALSE(EvalBool("'MIT' = frank.employer"));
  EXPECT_FALSE(EvalBool("'CWI' = frank.employer"));
}

TEST_F(ExprEvalTest, InTestsMembership) {
  EXPECT_TRUE(EvalBool("'MIT' IN frank.employer"));
  EXPECT_TRUE(EvalBool("'CWI' IN frank.employer"));
  EXPECT_FALSE(EvalBool("'Acme' IN frank.employer"));
}

TEST_F(ExprEvalTest, SubsetComparesSets) {
  EXPECT_TRUE(EvalBool("john.employer SUBSET frank.employer = FALSE"));
  EXPECT_TRUE(EvalBool("frank.employer SUBSET frank.employer"));
}

TEST_F(ExprEvalTest, AbsentPropertyIsEmptySet) {
  // Peter is unemployed: his employer evaluates to ∅.
  auto d = Eval("peter.employer");
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->values().empty());
  // Length test can detect it (Section 3).
  EXPECT_TRUE(EvalBool("SIZE(peter.employer) = 0"));
  EXPECT_TRUE(EvalBool("SIZE(frank.employer) = 2"));
}

TEST_F(ExprEvalTest, ComparisonWithAbsentIsFalseNotError) {
  EXPECT_FALSE(EvalBool("peter.employer = 'Acme'"));
  EXPECT_FALSE(EvalBool("'Acme' IN peter.employer"));
  EXPECT_FALSE(EvalBool("peter.employer < 'Acme'"));
}

TEST_F(ExprEvalTest, SingletonComparisons) {
  EXPECT_TRUE(EvalBool("john.employer = 'Acme'"));
  EXPECT_TRUE(EvalBool("john.firstName <> 'Peter'"));
  EXPECT_TRUE(EvalBool("1 < 2"));
  EXPECT_TRUE(EvalBool("2 <= 2"));
  EXPECT_TRUE(EvalBool("3 > 2.5"));
  EXPECT_TRUE(EvalBool("'Acme' < 'HAL'"));
}

// --- labels -----------------------------------------------------------------------

TEST_F(ExprEvalTest, LabelTest) {
  EXPECT_TRUE(EvalBool("john:Person"));
  EXPECT_FALSE(EvalBool("john:Company"));
  EXPECT_TRUE(EvalBool("john:Company|Person"));  // disjunction
}

TEST_F(ExprEvalTest, LabelsFunction) {
  auto d = Eval("LABELS(john)");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->values(), ValueSet(Value::String("Person")));
}

// --- arithmetic / strings ------------------------------------------------------------

TEST_F(ExprEvalTest, IntegerArithmeticStaysIntegral) {
  EXPECT_EQ(EvalValue("1 + 2"), Value::Int(3));
  EXPECT_EQ(EvalValue("7 - 9"), Value::Int(-2));
  EXPECT_EQ(EvalValue("6 * 7"), Value::Int(42));
  EXPECT_EQ(EvalValue("7 % 3"), Value::Int(1));
}

TEST_F(ExprEvalTest, DivisionAlwaysDouble) {
  // The paper's cost expression 1 / (1 + e.nr_messages) must not truncate.
  EXPECT_EQ(EvalValue("1 / (1 + 2)").type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(EvalValue("1 / (1 + 2)").AsDouble(), 1.0 / 3.0);
}

TEST_F(ExprEvalTest, DivisionByZeroIsError) {
  EXPECT_TRUE(Eval("1 / 0").status().IsEvaluationError());
}

TEST_F(ExprEvalTest, StringConcatenation) {
  // Line 72: m.lastName + ', ' + m.firstName.
  EXPECT_EQ(EvalValue("john.lastName + ', ' + john.firstName"),
            Value::String("Doe, John"));
}

TEST_F(ExprEvalTest, UnaryOperators) {
  EXPECT_EQ(EvalValue("-(3)"), Value::Int(-3));
  EXPECT_TRUE(EvalBool("NOT FALSE"));
  EXPECT_TRUE(EvalBool("NOT 'Acme' IN peter.employer"));
}

TEST_F(ExprEvalTest, BooleanShortCircuit) {
  EXPECT_TRUE(EvalBool("TRUE OR 1"));     // rhs never evaluated
  EXPECT_FALSE(EvalBool("FALSE AND 1"));
}

// --- CASE / coalescing -----------------------------------------------------------------

TEST_F(ExprEvalTest, CaseCoalescesMissingData) {
  EXPECT_EQ(EvalValue("CASE WHEN SIZE(peter.employer) = 0 THEN 'unemployed' "
                      "ELSE 'employed' END"),
            Value::String("unemployed"));
  EXPECT_EQ(EvalValue("CASE WHEN SIZE(john.employer) = 0 THEN 'unemployed' "
                      "ELSE 'employed' END"),
            Value::String("employed"));
}

TEST_F(ExprEvalTest, CaseWithoutElseYieldsEmpty) {
  auto d = Eval("CASE WHEN FALSE THEN 1 END");
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->values().empty());
}

TEST_F(ExprEvalTest, CoalesceFunction) {
  EXPECT_EQ(EvalValue("COALESCE(peter.employer, 'none')"),
            Value::String("none"));
  EXPECT_EQ(EvalValue("COALESCE(john.employer, 'none')"),
            Value::String("Acme"));
}

// --- functions ---------------------------------------------------------------------------

TEST_F(ExprEvalTest, IdAndToString) {
  EXPECT_EQ(EvalValue("ID(john)"),
            Value::Int(static_cast<int64_t>(snb::kJohnId)));
  EXPECT_EQ(EvalValue("TOSTRING(42)"), Value::String("42"));
  EXPECT_EQ(EvalValue("TOINTEGER('17')"), Value::Int(17));
}

TEST_F(ExprEvalTest, DateFunctionAndComparison) {
  EXPECT_TRUE(EvalBool("DATE('2014-12-01') < DATE('2015-01-01')"));
  EXPECT_TRUE(EvalBool("DATE('1/12/2014') = DATE('2014-12-01')"));
}

TEST_F(ExprEvalTest, UnknownFunctionIsError) {
  EXPECT_FALSE(Eval("FROBNICATE(1)").ok());
}

TEST_F(ExprEvalTest, TruthyRejectsNonBoolean) {
  auto d = Eval("1 + 1");
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(ExprEvaluator::Truthy(*d).ok());
}

// --- nodes()/edges() and indexing -----------------------------------------------------------

TEST_F(ExprEvalTest, PathFunctions) {
  auto pv = std::make_shared<PathValue>();
  pv->id = PathId(900);
  pv->body.nodes = {NodeId(snb::kJohnId), NodeId(snb::kPeterId),
                    NodeId(snb::kCelineId)};
  pv->body.edges = {EdgeId(1), EdgeId(2)};
  pv->cost = 2;
  BindingTable table({"p"});
  ASSERT_TRUE(table.AddRow({Datum::OfPath(pv)}).ok());
  ExprEvaluator eval(graph, &catalog);

  auto nodes = ParseExpression("NODES(p)[1]");
  ASSERT_TRUE(nodes.ok());
  auto d = eval.Eval(**nodes, table, 0);
  ASSERT_TRUE(d.ok());
  // 0-based: nodes(p)[1] is the second node (Section 3).
  EXPECT_EQ(d->node(), NodeId(snb::kPeterId));

  auto len = ParseExpression("SIZE(EDGES(p))");
  ASSERT_TRUE(len.ok());
  auto l = eval.Eval(**len, table, 0);
  ASSERT_TRUE(l.ok());
  EXPECT_EQ(l->values().single(), Value::Int(2));

  auto cost = ParseExpression("COST(p)");
  ASSERT_TRUE(cost.ok());
  auto c = eval.Eval(**cost, table, 0);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->values().single(), Value::Int(2));

  auto oob = ParseExpression("NODES(p)[9]");
  ASSERT_TRUE(oob.ok());
  auto o = eval.Eval(**oob, table, 0);
  ASSERT_TRUE(o.ok());
  EXPECT_TRUE(o->IsUnbound());
}

// --- aggregates -------------------------------------------------------------------------------

class AggregateTest : public ExprEvalTest {
 protected:
  BindingTable MakeGroups() {
    BindingTable t({"x", "v"});
    auto add = [&](uint64_t x, int64_t v) {
      Status st = t.AddRow({Datum::OfNode(NodeId(x)),
                            Datum::OfValue(Value::Int(v))});
      (void)st;
    };
    add(1, 10);
    add(1, 20);
    add(2, 5);
    return t;
  }

  Result<Datum> Agg(const std::string& text,
                    const std::vector<size_t>& rows) {
    auto expr = ParseExpression(text);
    if (!expr.ok()) return expr.status();
    ExprEvaluator eval(graph, &catalog);
    return eval.EvalWithGroup(**expr, MakeGroups(), rows);
  }
};

TEST_F(AggregateTest, CountStar) {
  auto d = Agg("COUNT(*)", {0, 1});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->values().single(), Value::Int(2));
}

TEST_F(AggregateTest, CountStarSkipsIncompleteRows) {
  BindingTable t({"x", "v"});
  ASSERT_TRUE(t.AddRow({Datum::OfNode(NodeId(1)), Datum()}).ok());
  auto expr = ParseExpression("COUNT(*)");
  ASSERT_TRUE(expr.ok());
  ExprEvaluator eval(graph, &catalog);
  auto d = eval.EvalWithGroup(**expr, t, {0});
  ASSERT_TRUE(d.ok());
  // OPTIONAL non-match (unbound column) does not count: nr_messages = 0.
  EXPECT_EQ(d->values().single(), Value::Int(0));
}

TEST_F(AggregateTest, SumMinMaxAvgCollect) {
  auto sum = Agg("SUM(v)", {0, 1, 2});
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->values().single(), Value::Int(35));
  auto mn = Agg("MIN(v)", {0, 1, 2});
  ASSERT_TRUE(mn.ok());
  EXPECT_EQ(mn->values().single(), Value::Int(5));
  auto mx = Agg("MAX(v)", {0, 1, 2});
  ASSERT_TRUE(mx.ok());
  EXPECT_EQ(mx->values().single(), Value::Int(20));
  auto avg = Agg("AVG(v)", {0, 1});
  ASSERT_TRUE(avg.ok());
  EXPECT_DOUBLE_EQ(avg->values().single().AsDouble(), 15.0);
  auto col = Agg("COLLECT(v)", {0, 1, 2});
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(col->values().size(), 3u);
}

TEST_F(AggregateTest, MixedScalarAggregateTree) {
  auto d = Agg("COUNT(*) + 100", {0, 1, 2});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->values().single(), Value::Int(103));
}

TEST_F(AggregateTest, AggregateOutsideGroupIsError) {
  auto expr = ParseExpression("COUNT(*)");
  ASSERT_TRUE(expr.ok());
  ExprEvaluator eval(graph, &catalog);
  BindingTable t = MakeGroups();
  EXPECT_TRUE(eval.Eval(**expr, t, 0).status().IsEvaluationError());
}

}  // namespace
}  // namespace gcore
