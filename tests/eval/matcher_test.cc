// Matcher unit tests: edge direction semantics, label disjunction,
// parallel edges, self loops, property filters, homomorphic matching.
#include "eval/matcher.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "parser/parser.h"

namespace gcore {
namespace {

class MatcherTest : public ::testing::Test {
 protected:
  MatcherTest() {
    GraphBuilder b("g", catalog.ids());
    a_ = b.AddNode({"A"}, {{"name", "a"}});
    c_ = b.AddNode({"B"}, {{"name", "c"}});
    d_ = b.AddNode({"A", "B"}, {{"name", "d"}});
    e1_ = b.AddEdge(a_, c_, "x", {{"w", 1}});
    e2_ = b.AddEdge(a_, c_, "x", {{"w", 2}});  // parallel edge
    e3_ = b.AddEdge(c_, a_, "y");
    e4_ = b.AddEdge(d_, d_, "x");  // self loop
    catalog.RegisterGraph("g", b.Build());
    catalog.SetDefaultGraph("g");
  }

  Result<BindingTable> Match(const std::string& match_text) {
    auto q = ParseQuery("CONSTRUCT (z) " + match_text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    if (!q.ok()) return q.status();
    MatcherContext ctx;
    ctx.catalog = &catalog;
    ctx.default_graph = "g";
    Matcher matcher(ctx);
    return matcher.EvalMatchClause(*(*q)->body->basic->match);
  }

  GraphCatalog catalog;
  NodeId a_, c_, d_;
  EdgeId e1_, e2_, e3_, e4_;
};

// A matcher without an engine-wired EXISTS callback must fail with an
// error naming the offending subquery, not a generic message.
TEST_F(MatcherTest, ExistsWithoutCallbackNamesSubquery) {
  auto t = Match(
      "MATCH (n) WHERE EXISTS (CONSTRUCT (m) MATCH (m:Person))");
  ASSERT_FALSE(t.ok());
  const std::string message = t.status().ToString();
  EXPECT_NE(message.find("EXISTS subquery"), std::string::npos) << message;
  EXPECT_NE(message.find("MATCH (m:Person)"), std::string::npos) << message;
}

TEST_F(MatcherTest, DirectedRightFollowsRho) {
  auto t = Match("MATCH (n)-[e:x]->(m)");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  // e1, e2 from a->c and the self loop d->d.
  EXPECT_EQ(t->NumRows(), 3u);
}

TEST_F(MatcherTest, DirectedLeftFollowsReverseRho) {
  auto t = Match("MATCH (n)<-[e:x]-(m)");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->NumRows(), 3u);
  for (size_t r = 0; r < t->NumRows(); ++r) {
    // n is the edge target under <-.
    const NodeId n = t->Get(r, "n").node();
    EXPECT_TRUE(n == c_ || n == d_);
  }
}

TEST_F(MatcherTest, UndirectedMatchesBothDirections) {
  auto t = Match("MATCH (n)-[e:y]-(m)");
  ASSERT_TRUE(t.ok());
  // e3 traversable both ways: (c,a) and (a,c).
  EXPECT_EQ(t->NumRows(), 2u);
}

TEST_F(MatcherTest, SelfLoopUndirectedBothTraversals) {
  auto t = Match("MATCH (n {name='d'})-[e:x]-(m)");
  ASSERT_TRUE(t.ok());
  // The loop appears once per traversal direction; set semantics keeps
  // (n=d, e=e4, m=d) as a single binding.
  EXPECT_EQ(t->NumRows(), 1u);
}

TEST_F(MatcherTest, ParallelEdgesBindSeparately) {
  auto t = Match("MATCH (n {name='a'})-[e:x]->(m)");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->NumRows(), 2u);  // e1 and e2
}

TEST_F(MatcherTest, LabelDisjunctionOnNodes) {
  auto t = Match("MATCH (n:A|B)");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->NumRows(), 3u);  // all nodes carry A or B
  auto only_a = Match("MATCH (n:A)");
  ASSERT_TRUE(only_a.ok());
  EXPECT_EQ(only_a->NumRows(), 2u);  // a and d
}

TEST_F(MatcherTest, ConjunctiveLabelGroups) {
  // (n:A:B) requires both labels: only d.
  auto t = Match("MATCH (n:A:B)");
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->NumRows(), 1u);
  EXPECT_EQ(t->Get(0, "n").node(), d_);
}

TEST_F(MatcherTest, EdgePropertyFilter) {
  auto t = Match("MATCH (n)-[e:x {w = 2}]->(m)");
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->NumRows(), 1u);
  EXPECT_EQ(t->Get(0, "e").edge(), e2_);
}

TEST_F(MatcherTest, HomomorphicNoRepeatRestriction) {
  // The same node may bind to several variables (homomorphism, unlike
  // Cypher's no-repeated-edge semantics).
  auto t = Match("MATCH (n {name='a'}), (m {name='a'})");
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->NumRows(), 1u);
  EXPECT_EQ(t->Get(0, "n").node(), t->Get(0, "m").node());
}

TEST_F(MatcherTest, SharedVariableJoinsChains) {
  // (n)-[:x]->(m), (m)-[:y]->(k): m joins, so k must be a.
  auto t = Match("MATCH (n)-[e:x]->(m), (m)-[f:y]->(k)");
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->NumRows(), 2u);  // via e1 and e2
  for (size_t r = 0; r < t->NumRows(); ++r) {
    EXPECT_EQ(t->Get(r, "k").node(), a_);
  }
}

TEST_F(MatcherTest, SameVariableTwiceInOneChain) {
  // (n)-[e:x]->(n): only the self loop.
  auto t = Match("MATCH (n)-[e:x]->(n)");
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->NumRows(), 1u);
  EXPECT_EQ(t->Get(0, "n").node(), d_);
  EXPECT_EQ(t->Get(0, "e").edge(), e4_);
}

TEST_F(MatcherTest, AnonymousElementsDroppedFromResult) {
  auto t = Match("MATCH (n)-[:x]->()");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->NumColumns(), 1u);
  EXPECT_TRUE(t->HasColumn("n"));
  // a (twice, deduped) and d.
  EXPECT_EQ(t->NumRows(), 2u);
}

TEST_F(MatcherTest, ProvenanceRecordedPerColumn) {
  auto t = Match("MATCH (n)-[e:x]->(m)");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->ColumnGraph("n"), "g");
  EXPECT_EQ(t->ColumnGraph("e"), "g");
}

}  // namespace
}  // namespace gcore
