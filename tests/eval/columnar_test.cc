// Tests for the column-major Ω storage: the row-oriented API must be a
// faithful adapter over the kind/slot/overflow arrays (round-trip
// equality for every Datum kind, including kUnbound and the heavy
// kinds), and the column-wise hash/equality fast paths must reproduce
// the seed's row-walk formulas bit-for-bit — the dedup sinks and join
// probes rely on exactly that equivalence.
#include <gtest/gtest.h>

#include <vector>

#include "eval/binding.h"
#include "eval/binding_ops.h"

namespace gcore {
namespace {

Datum N(uint64_t id) { return Datum::OfNode(NodeId(id)); }
Datum E(uint64_t id) { return Datum::OfEdge(EdgeId(id)); }
Datum V(const std::string& s) { return Datum::OfValue(Value::String(s)); }

Datum P(uint64_t id, bool from_graph = false) {
  auto pv = std::make_shared<PathValue>();
  pv->id = PathId(id);
  pv->body.nodes = {NodeId(1), NodeId(2)};
  pv->body.edges = {EdgeId(7)};
  pv->from_graph = from_graph;
  return Datum::OfPath(std::move(pv));
}

/// One row of every kind plus mixed-kind rows: the adapter must
/// round-trip all of them.
std::vector<BindingRow> AllKindRows() {
  return {
      {Datum::Unbound(), N(1), V("a")},
      {N(2), E(3), Datum::Unbound()},
      {P(9), Datum::OfNodeList({NodeId(1), NodeId(2)}),
       Datum::OfEdgeList({EdgeId(5)})},
      {Datum::OfValues(ValueSet({Value::Int(1), Value::Int(2)})), N(4), E(6)},
      {Datum::Unbound(), Datum::Unbound(), Datum::Unbound()},
      {N(2), E(3), V("a")},  // duplicate-ish shapes for dedup paths
  };
}

BindingTable AllKindTable() {
  BindingTable t({"x", "y", "z"});
  for (auto& row : AllKindRows()) {
    EXPECT_TRUE(t.AddRow(std::move(row)).ok());
  }
  return t;
}

TEST(ColumnarRoundTrip, RowApiMatchesInsertedRows) {
  const std::vector<BindingRow> rows = AllKindRows();
  BindingTable t = AllKindTable();
  ASSERT_EQ(t.NumRows(), rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    EXPECT_EQ(t.Row(r), rows[r]) << "row " << r;
    for (size_t c = 0; c < rows[r].size(); ++c) {
      EXPECT_EQ(t.At(r, c), rows[r][c]) << "cell " << r << "," << c;
    }
  }
  EXPECT_EQ(t.Get(1, "x"), N(2));
  EXPECT_TRUE(t.Get(0, "absent").IsUnbound());
}

TEST(ColumnarRoundTrip, HeavyKindsKeepPayloads) {
  BindingTable t = AllKindTable();
  EXPECT_EQ(t.At(2, 0).path().id, PathId(9));
  EXPECT_EQ(t.At(2, 0).path().body.nodes.size(), 2u);
  EXPECT_EQ(t.At(2, 1).node_list(),
            (std::vector<NodeId>{NodeId(1), NodeId(2)}));
  EXPECT_EQ(t.At(2, 2).edge_list(), (std::vector<EdgeId>{EdgeId(5)}));
  EXPECT_EQ(t.At(3, 0).values().size(), 2u);
}

TEST(ColumnarRoundTrip, AddColumnPadsWithUnbound) {
  BindingTable t = AllKindTable();
  const size_t c = t.AddColumn("w");
  EXPECT_EQ(c, 3u);
  EXPECT_EQ(t.AddColumn("x"), 0u);  // existing name returns its index
  for (size_t r = 0; r < t.NumRows(); ++r) {
    EXPECT_TRUE(t.At(r, c).IsUnbound());
  }
  t.SetCell(2, c, V("set"));
  EXPECT_EQ(t.At(2, c), V("set"));
  t.SetCell(2, c, N(11));  // heavy -> dense overwrite
  EXPECT_EQ(t.At(2, c), N(11));
  t.SetCell(2, c, V("again"));  // dense -> heavy
  EXPECT_EQ(t.At(2, c), V("again"));
}

TEST(ColumnarRoundTrip, SliceAndAppendPreserveRows) {
  BindingTable t = AllKindTable();
  BindingTable slice = t.Slice(1, 4);
  ASSERT_EQ(slice.NumRows(), 3u);
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(slice.Row(r), t.Row(r + 1)) << "row " << r;
  }
  // Re-assembling slices reproduces the table.
  BindingTable glued(t.columns());
  glued.AppendTable(t.Slice(0, 2));
  glued.AppendTable(t.Slice(2, t.NumRows()));
  ASSERT_EQ(glued.NumRows(), t.NumRows());
  for (size_t r = 0; r < t.NumRows(); ++r) {
    EXPECT_EQ(glued.Row(r), t.Row(r)) << "row " << r;
  }
  // Row-index gather.
  BindingTable gathered(t.columns());
  gathered.AppendRowsFrom(t, {5, 0, 2});
  ASSERT_EQ(gathered.NumRows(), 3u);
  EXPECT_EQ(gathered.Row(0), t.Row(5));
  EXPECT_EQ(gathered.Row(1), t.Row(0));
  EXPECT_EQ(gathered.Row(2), t.Row(2));
  // Single-row append with unbound padding for extra columns.
  BindingTable wider({"x", "y", "z", "extra"});
  wider.AppendRowFrom(t, 3);
  ASSERT_EQ(wider.NumRows(), 1u);
  EXPECT_EQ(wider.At(0, 0), t.At(3, 0));
  EXPECT_TRUE(wider.At(0, 3).IsUnbound());
}

// --- hash stability -----------------------------------------------------------

/// The seed's row-walk hash, reproduced literally: HashCombine over
/// Datum::Hash of the materialized row. RowHash must equal it so every
/// dedup sink and join key built over columns sees the seed's hashes.
size_t SeedRowWalkHash(const BindingRow& row) {
  size_t h = 0;
  for (const Datum& d : row) {
    h = h ^ (d.Hash() + 0x9e3779b9 + (h << 6) + (h >> 2));
  }
  return h;
}

TEST(ColumnarHashStability, RowHashMatchesRowWalk) {
  BindingTable t = AllKindTable();
  for (size_t r = 0; r < t.NumRows(); ++r) {
    const BindingRow row = t.Row(r);
    EXPECT_EQ(t.RowHash(r), HashRow(row)) << "row " << r;
    EXPECT_EQ(t.RowHash(r), SeedRowWalkHash(row)) << "row " << r;
    for (size_t c = 0; c < t.NumColumns(); ++c) {
      EXPECT_EQ(t.ColumnAt(c).HashAt(r), row[c].Hash())
          << "cell " << r << "," << c;
    }
  }
}

TEST(ColumnarHashStability, DatumKindFormulasPinned) {
  // The per-kind formulas of the seed, pinned so the columnar fast paths
  // can never drift from persisted expectations.
  EXPECT_EQ(Datum::Unbound().Hash(), size_t{0x5bd1e995});
  EXPECT_EQ(N(42).Hash(), std::hash<uint64_t>{}(42) ^ 0x10);
  EXPECT_EQ(E(42).Hash(), std::hash<uint64_t>{}(42) ^ 0x20);
  EXPECT_EQ(P(42).Hash(), std::hash<PathId>{}(PathId(42)) ^ 0x30);
  EXPECT_EQ(V("a").Hash(), ValueSet(Value::String("a")).Hash() ^ 0x40);
}

TEST(ColumnarHashStability, CellEqualityMatchesDatumEquality) {
  BindingTable t = AllKindTable();
  for (size_t i = 0; i < t.NumRows(); ++i) {
    for (size_t j = 0; j < t.NumRows(); ++j) {
      EXPECT_EQ(BindingTable::RowsEqual(t, i, t, j), t.Row(i) == t.Row(j))
          << i << " vs " << j;
      for (size_t c = 0; c < t.NumColumns(); ++c) {
        EXPECT_EQ(
            Column::CellsEqual(t.ColumnAt(c), i, t.ColumnAt(c), j),
            t.At(i, c) == t.At(j, c))
            << i << "," << j << " col " << c;
        EXPECT_EQ(t.ColumnAt(c).EqualsAt(i, t.At(j, c)),
                  t.At(i, c) == t.At(j, c));
      }
    }
  }
}

TEST(ColumnarDedup, SinkInsertFromMatchesRowInsert) {
  BindingTable src = AllKindTable();
  // Row-materializing sink.
  BindingTable by_row(src.columns());
  RowDedupSink row_sink(&by_row);
  for (size_t r = 0; r < src.NumRows(); ++r) row_sink.Insert(src.Row(r));
  // Columnar sink.
  BindingTable by_col(src.columns());
  RowDedupSink col_sink(&by_col);
  for (size_t r = 0; r < src.NumRows(); ++r) col_sink.InsertFrom(src, r);
  ASSERT_EQ(by_col.NumRows(), by_row.NumRows());
  for (size_t r = 0; r < by_row.NumRows(); ++r) {
    EXPECT_EQ(by_col.Row(r), by_row.Row(r)) << "row " << r;
  }
  // Duplicates collapse identically either way.
  EXPECT_FALSE(col_sink.InsertFrom(src, 0));
  EXPECT_FALSE(row_sink.Insert(src.Row(0)));
}

/// Pseudo-random property check: Deduplicate() and TableJoin over
/// columnar storage agree with a row-materialized reference model.
TEST(ColumnarDedup, DeduplicateMatchesRowModel) {
  for (int seed = 0; seed < 8; ++seed) {
    BindingTable t({"x", "y"});
    for (int i = 0; i < 40; ++i) {
      const uint64_t vx = static_cast<uint64_t>((seed * 7 + i * 3) % 5);
      const uint64_t vy = static_cast<uint64_t>((seed * 5 + i * 2) % 4);
      BindingRow row;
      row.push_back(vx == 0 ? Datum::Unbound() : N(vx));
      row.push_back(vy == 0 ? V("v" + std::to_string(vy % 3)) : N(100 + vy));
      ASSERT_TRUE(t.AddRow(std::move(row)).ok());
    }
    // Reference: first-occurrence dedup over materialized rows.
    std::vector<BindingRow> reference;
    for (size_t r = 0; r < t.NumRows(); ++r) {
      const BindingRow row = t.Row(r);
      bool dup = false;
      for (const auto& kept : reference) {
        if (kept == row) {
          dup = true;
          break;
        }
      }
      if (!dup) reference.push_back(row);
    }
    t.Deduplicate();
    ASSERT_EQ(t.NumRows(), reference.size()) << "seed " << seed;
    for (size_t r = 0; r < reference.size(); ++r) {
      EXPECT_EQ(t.Row(r), reference[r]) << "seed " << seed << " row " << r;
    }
  }
}

TEST(ColumnarProjection, UnitTableSurvivesZeroColumnOps) {
  BindingTable unit = BindingTable::Unit();
  EXPECT_EQ(unit.NumRows(), 1u);
  EXPECT_EQ(unit.RowHash(0), HashRow({}));
  BindingTable copy = unit.Slice(0, 1);
  EXPECT_EQ(copy.NumRows(), 1u);
  EXPECT_TRUE(copy.Row(0).empty());
}

}  // namespace
}  // namespace gcore
