// CONSTRUCT semantics tests (Appendix A.3): identity preservation,
// grouping/skolems, copy syntax, SET/REMOVE, WHEN, dangling-edge
// prevention, path constructs.
#include <gtest/gtest.h>

#include "engine/engine.h"
#include "graph/graph_ops.h"
#include "snb/toy_graphs.h"

namespace gcore {
namespace {

class ConstructTest : public ::testing::Test {
 protected:
  ConstructTest() {
    snb::RegisterToyData(&catalog);
  }

  Result<PathPropertyGraph> Run(const std::string& q) {
    QueryEngine engine(&catalog);
    auto r = engine.Execute(q);
    if (!r.ok()) return r.status();
    EXPECT_TRUE(r->IsGraph());
    return std::move(*r->graph);
  }

  GraphCatalog catalog;
};

TEST_F(ConstructTest, BoundNodesKeepIdentityLabelsProperties) {
  auto g = Run("CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme'");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->NumNodes(), 2u);
  EXPECT_TRUE(g->HasNode(NodeId(snb::kJohnId)));
  EXPECT_TRUE(g->Labels(NodeId(snb::kJohnId)).Contains("Person"));
  EXPECT_EQ(g->Property(NodeId(snb::kJohnId), "firstName").single(),
            Value::String("John"));
}

TEST_F(ConstructTest, UnboundAnonymousNodePerBinding) {
  // One fresh node per binding row (full-row default grouping).
  auto g = Run("CONSTRUCT () MATCH (n:Person)");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumNodes(), 5u);
  // None of them are the person nodes.
  EXPECT_FALSE(g->HasNode(NodeId(snb::kJohnId)));
}

TEST_F(ConstructTest, GroupClauseCollapsesByValue) {
  auto g = Run(
      "CONSTRUCT (x GROUP e :Company {name:=e}) "
      "MATCH (n:Person {employer=e})");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->NumNodes(), 4u);  // Acme, HAL, CWI, MIT
  std::set<std::string> names;
  g->ForEachNode([&](NodeId n) {
    EXPECT_TRUE(g->Labels(n).Contains("Company"));
    names.insert(g->Property(n, "name").single().AsString());
  });
  EXPECT_EQ(names, (std::set<std::string>{"Acme", "CWI", "HAL", "MIT"}));
}

TEST_F(ConstructTest, DefaultEdgeGroupingBySourceAndDestination) {
  // Q5: five bindings, but edges group by (src, dst): five distinct edges
  // between four persons and four companies.
  auto g = Run(
      "CONSTRUCT (x GROUP e :Company {name:=e})<-[y:worksAt]-(n) "
      "MATCH (n:Person {employer=e})");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->NumEdges(), 5u);
  EXPECT_EQ(g->NumNodes(), 8u);
}

TEST_F(ConstructTest, ShorthandUnionWithGraphName) {
  auto g = Run(
      "CONSTRUCT social_graph, (x GROUP e :Company {name:=e})<-[y:worksAt]-(n) "
      "MATCH (n:Person {employer=e})");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  auto social = catalog.Lookup("social_graph");
  ASSERT_TRUE(social.ok());
  // Enriched graph: original plus 4 companies and 5 edges.
  EXPECT_EQ(g->NumNodes(), (*social)->NumNodes() + 4);
  EXPECT_EQ(g->NumEdges(), (*social)->NumEdges() + 5);
}

TEST_F(ConstructTest, CopyNodeSyntaxCreatesFreshIdentity) {
  auto g = Run("CONSTRUCT (=n) MATCH (n:Person) WHERE n.firstName = 'John'");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->NumNodes(), 1u);
  EXPECT_FALSE(g->HasNode(NodeId(snb::kJohnId)));  // fresh id
  g->ForEachNode([&](NodeId n) {
    EXPECT_TRUE(g->Labels(n).Contains("Person"));  // labels copied
    EXPECT_EQ(g->Property(n, "firstName").single(), Value::String("John"));
  });
}

TEST_F(ConstructTest, CopyEdgeSyntaxCopiesLabelsProps) {
  auto g = Run(
      "CONSTRUCT (n)-[=y]->(m) "
      "MATCH (n:Person)-[y:knows]->(m:Person) "
      "WHERE n.firstName = 'John' AND m.firstName = 'Peter'");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  ASSERT_EQ(g->NumEdges(), 1u);
  g->ForEachEdge([&](EdgeId e, NodeId src, NodeId dst) {
    EXPECT_TRUE(g->Labels(e).Contains("knows"));
    EXPECT_EQ(src, NodeId(snb::kJohnId));
    EXPECT_EQ(dst, NodeId(snb::kPeterId));
  });
}

TEST_F(ConstructTest, BoundEdgeKeepsIdentity) {
  auto social = catalog.Lookup("social_graph");
  ASSERT_TRUE(social.ok());
  auto g = Run("CONSTRUCT (n)-[y]->(m) MATCH (n)-[y:knows]->(m)");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  g->ForEachEdge([&](EdgeId e, NodeId, NodeId) {
    EXPECT_TRUE((*social)->HasEdge(e));
  });
}

TEST_F(ConstructTest, BoundEdgeWithWrongEndpointsRejected) {
  // Using a bound edge between different nodes violates identity.
  auto g = Run("CONSTRUCT (m)-[y]->(n) MATCH (n)-[y:knows]->(m)");
  ASSERT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsBindError());
}

TEST_F(ConstructTest, SetPropertyWithAggregate) {
  auto g = Run(
      "CONSTRUCT (n) SET n.degree := COUNT(*) "
      "MATCH (n:Person)-[:knows]->(m)");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  // John knows Peter and Alice.
  EXPECT_EQ(g->Property(NodeId(snb::kJohnId), "degree").single(),
            Value::Int(2));
  // Peter knows John, Celine, Frank.
  EXPECT_EQ(g->Property(NodeId(snb::kPeterId), "degree").single(),
            Value::Int(3));
}

TEST_F(ConstructTest, SetLabelAndRemove) {
  auto g = Run(
      "CONSTRUCT (n) SET n:Employee REMOVE n.employer "
      "MATCH (n:Person) WHERE n.employer = 'Acme'");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_TRUE(g->Labels(NodeId(snb::kJohnId)).Contains("Employee"));
  EXPECT_TRUE(g->Labels(NodeId(snb::kJohnId)).Contains("Person"));
  EXPECT_TRUE(g->Property(NodeId(snb::kJohnId), "employer").empty());
  // REMOVE affects only the query output, not the stored graph.
  auto social = catalog.Lookup("social_graph");
  ASSERT_TRUE(social.ok());
  EXPECT_FALSE(
      (*social)->Property(NodeId(snb::kJohnId), "employer").empty());
}

TEST_F(ConstructTest, WhenPreFilterOnMatchData) {
  auto g = Run(
      "CONSTRUCT (n) WHEN n.firstName = 'John' MATCH (n:Person)");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->NumNodes(), 1u);
  EXPECT_TRUE(g->HasNode(NodeId(snb::kJohnId)));
}

TEST_F(ConstructTest, WhenOverAssignedPropertyFiltersGroups) {
  // Line 67-68 shape: the condition reads a property assigned in the same
  // construct, so it is applied per group after property computation.
  auto g = Run(
      "CONSTRUCT (n)-[e:strongFriend {score:=COUNT(*)}]->(m) "
      "WHEN e.score > 1 "
      "MATCH (n:Person)-[:knows]->(m:Person)-[:knows]->(n2:Person) "
      "WHERE n = n2");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  // Every knows pair is bidirectional: each (n, m) has exactly one row, so
  // score = 1 everywhere and nothing survives.
  EXPECT_EQ(g->NumEdges(), 0u);
}

TEST_F(ConstructTest, DanglingEdgePreventionOnUnboundEndpoint) {
  // m is bound only when the OPTIONAL matched; rows without m must not
  // produce edges.
  auto g = Run(
      "CONSTRUCT (n)-[:interest]->(t) "
      "MATCH (n:Person) OPTIONAL (n)-[:hasInterest]->(t)");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  // Celine and Frank have Wagner interest: 2 edges; others only nodes.
  EXPECT_EQ(g->NumEdges(), 2u);
  EXPECT_TRUE(g->Validate().ok());
}

TEST_F(ConstructTest, StoredPathConstructMaterializesWalk) {
  auto g = Run(
      "CONSTRUCT (n)-/@p:jp{distance:=c}/->(m) "
      "MATCH (n:Person)-/p <:knows*> COST c/->(m:Person) "
      "WHERE n.firstName = 'John' AND m.firstName = 'Celine'");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  ASSERT_EQ(g->NumPaths(), 1u);
  const PathId pid = g->PathIds()[0];
  EXPECT_TRUE(g->Labels(pid).Contains("jp"));
  EXPECT_EQ(g->Property(pid, "distance").single(), Value::Int(2));
  const PathBody& body = g->Path(pid);
  EXPECT_EQ(body.nodes.front(), NodeId(snb::kJohnId));
  EXPECT_EQ(body.nodes.back(), NodeId(snb::kCelineId));
  // Intermediate node (Peter) and edges materialized with λ/σ.
  EXPECT_TRUE(g->HasNode(NodeId(snb::kPeterId)));
  EXPECT_TRUE(g->Labels(NodeId(snb::kPeterId)).Contains("Person"));
  EXPECT_TRUE(g->Validate().ok());
}

TEST_F(ConstructTest, PlainPathConstructProjectsWithoutPathObject) {
  auto g = Run(
      "CONSTRUCT (n)-/p/->(m) "
      "MATCH (n:Person)-/p <:knows*>/->(m:Person) "
      "WHERE n.firstName = 'John' AND m.firstName = 'Celine'");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->NumPaths(), 0u);
  EXPECT_GE(g->NumNodes(), 3u);
  EXPECT_GE(g->NumEdges(), 2u);
}

TEST_F(ConstructTest, AllPathsProjectionConstruct) {
  // Q8: ALL over knows*, projected into a graph.
  auto g = Run(
      "CONSTRUCT (n)-/p/->(m) "
      "MATCH (n:Person)-/ALL p<:knows*>/->(m:Person) "
      "WHERE n.firstName = 'John' AND m.firstName = 'Celine'");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->NumPaths(), 0u);
  EXPECT_TRUE(g->Validate().ok());
  // All knows edges participate in some conforming walk (they are
  // bidirectional), so the projection includes all five persons.
  EXPECT_EQ(g->NumNodes(), 5u);
}

TEST_F(ConstructTest, StoringAllPathsIsRejected) {
  auto g = Run(
      "CONSTRUCT (n)-/@p/->(m) "
      "MATCH (n:Person)-/ALL p<:knows*>/->(m:Person) "
      "WHERE n.firstName = 'John'");
  ASSERT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsUnsupported());
}

TEST_F(ConstructTest, SetCopyStatement) {
  auto g = Run(
      "CONSTRUCT (x GROUP n) SET x = n MATCH (n:Person) "
      "WHERE n.firstName = 'Frank'");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  ASSERT_EQ(g->NumNodes(), 1u);
  g->ForEachNode([&](NodeId n) {
    EXPECT_NE(n, NodeId(snb::kFrankId));
    EXPECT_TRUE(g->Labels(n).Contains("Person"));
    EXPECT_EQ(g->Property(n, "employer").size(), 2u);
  });
}

TEST_F(ConstructTest, MultipleItemsUnionWithSharedIdentities) {
  auto g = Run(
      "CONSTRUCT (n), (n)-[:self]->(n) MATCH (n:Person) "
      "WHERE n.firstName = 'John'");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->NumNodes(), 1u);
  EXPECT_EQ(g->NumEdges(), 1u);
}

TEST_F(ConstructTest, ConstructWithoutMatchUsesUnitBinding) {
  auto g = Run("CONSTRUCT (x :Marker {v:=1})");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->NumNodes(), 1u);
}

}  // namespace
}  // namespace gcore
