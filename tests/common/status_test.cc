// Unit tests for the Status/Result error model.
#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace gcore {
namespace {

TEST(Status, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status st = Status::ParseError("bad token");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsParseError());
  EXPECT_EQ(st.message(), "bad token");
  EXPECT_EQ(st.ToString(), "ParseError: bad token");
}

TEST(Status, AllFactoryPredicates) {
  EXPECT_TRUE(Status::BindError("x").IsBindError());
  EXPECT_TRUE(Status::TypeError("x").IsTypeError());
  EXPECT_TRUE(Status::EvaluationError("x").IsEvaluationError());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Unsupported("x").IsUnsupported());
}

TEST(Status, CopySharesState) {
  Status a = Status::NotFound("gone");
  Status b = a;
  EXPECT_TRUE(b.IsNotFound());
  EXPECT_EQ(b.message(), "gone");
}

Status Fails() { return Status::TypeError("no"); }
Status Propagates() {
  GCORE_RETURN_NOT_OK(Fails());
  return Status::OK();
}

TEST(Status, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Propagates().IsTypeError());
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(0), 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  GCORE_ASSIGN_OR_RETURN(int h, Half(x));
  GCORE_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(Result, AssignOrReturnChains) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_TRUE(Quarter(6).status().IsInvalidArgument());  // 6/2=3 is odd
  EXPECT_TRUE(Quarter(5).status().IsInvalidArgument());
}

TEST(Result, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

}  // namespace
}  // namespace gcore
