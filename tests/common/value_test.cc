// Unit tests for the literal domain V and FSET(V) (Section 2 + pp. 8-9).
#include "common/value.h"

#include <gtest/gtest.h>

namespace gcore {
namespace {

TEST(Value, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
}

TEST(Value, TypedConstruction) {
  EXPECT_TRUE(Value::Bool(true).is_bool());
  EXPECT_TRUE(Value::Int(7).is_int());
  EXPECT_TRUE(Value::Double(1.5).is_double());
  EXPECT_TRUE(Value::String("x").is_string());
  EXPECT_TRUE(Value::OfDate(Date{2014, 12, 1}).is_date());
}

TEST(Value, Accessors) {
  EXPECT_EQ(Value::Bool(true).AsBool(), true);
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(0.95).AsDouble(), 0.95);
  EXPECT_EQ(Value::String("Acme").AsString(), "Acme");
  EXPECT_EQ(Value::OfDate(Date{2014, 12, 1}).AsDate().year, 2014);
}

TEST(Value, IntDoubleCompareNumerically) {
  EXPECT_EQ(Value::Int(1), Value::Double(1.0));
  EXPECT_LT(Value::Int(1), Value::Double(1.5));
  EXPECT_LT(Value::Double(0.5), Value::Int(1));
}

TEST(Value, IntDoubleHashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(3).Hash(), Value::Double(3.0).Hash());
}

TEST(Value, CrossTypeOrderIsByRank) {
  // null < bool < numeric < string < date.
  EXPECT_LT(Value::Null(), Value::Bool(false));
  EXPECT_LT(Value::Bool(true), Value::Int(0));
  EXPECT_LT(Value::Int(999), Value::String("a"));
  EXPECT_LT(Value::String("zzz"), Value::OfDate(Date{1970, 1, 1}));
}

TEST(Value, StringOrder) {
  EXPECT_LT(Value::String("Acme"), Value::String("CWI"));
  EXPECT_EQ(Value::String("MIT"), Value::String("MIT"));
  EXPECT_NE(Value::String("MIT"), Value::String("mit"));
}

TEST(Value, DateOrderChronological) {
  EXPECT_LT(Value::OfDate(Date{2014, 11, 30}), Value::OfDate(Date{2014, 12, 1}));
  EXPECT_LT(Value::OfDate(Date{2013, 12, 31}), Value::OfDate(Date{2014, 1, 1}));
}

TEST(Value, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Bool(true).ToString(), "TRUE");
  EXPECT_EQ(Value::Bool(false).ToString(), "FALSE");
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::Double(0.5).ToString(), "0.5");
  EXPECT_EQ(Value::String("Acme").ToString(), "Acme");
  EXPECT_EQ(Value::OfDate(Date{2014, 12, 1}).ToString(), "2014-12-01");
}

TEST(ValueSet, EmptyMeansAbsentProperty) {
  ValueSet empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_FALSE(empty.Contains(Value::Int(1)));
}

TEST(ValueSet, SingletonUnwrapInToString) {
  // p.8: "in the case c.name is a singleton set, we omit curly braces".
  EXPECT_EQ(ValueSet(Value::String("MIT")).ToString(), "MIT");
}

TEST(ValueSet, MultiValuedToStringSortedWithBraces) {
  ValueSet s({Value::String("MIT"), Value::String("CWI")});
  EXPECT_EQ(s.ToString(), "{CWI, MIT}");
}

TEST(ValueSet, ConstructionDeduplicates) {
  ValueSet s({Value::Int(1), Value::Int(2), Value::Int(1)});
  EXPECT_EQ(s.size(), 2u);
}

TEST(ValueSet, InsertKeepsSortedUnique) {
  ValueSet s;
  s.Insert(Value::Int(2));
  s.Insert(Value::Int(1));
  s.Insert(Value::Int(2));
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.values()[0], Value::Int(1));
  EXPECT_EQ(s.values()[1], Value::Int(2));
}

TEST(ValueSet, PaperSetEqualitySemantics) {
  // "MIT" = {"CWI","MIT"} evaluates to FALSE (p.8).
  ValueSet mit(Value::String("MIT"));
  ValueSet frank({Value::String("CWI"), Value::String("MIT")});
  EXPECT_FALSE(mit == frank);
  EXPECT_TRUE(frank == ValueSet({Value::String("MIT"), Value::String("CWI")}));
}

TEST(ValueSet, ContainsForInOperator) {
  ValueSet frank({Value::String("CWI"), Value::String("MIT")});
  EXPECT_TRUE(frank.Contains(Value::String("MIT")));
  EXPECT_TRUE(frank.Contains(Value::String("CWI")));
  EXPECT_FALSE(frank.Contains(Value::String("Acme")));
}

TEST(ValueSet, SubsetOf) {
  ValueSet frank({Value::String("CWI"), Value::String("MIT")});
  EXPECT_TRUE(ValueSet(Value::String("MIT")).SubsetOf(frank));
  EXPECT_TRUE(frank.SubsetOf(frank));
  EXPECT_TRUE(ValueSet().SubsetOf(frank));
  EXPECT_FALSE(frank.SubsetOf(ValueSet(Value::String("MIT"))));
}

TEST(ValueSet, UnionIntersect) {
  ValueSet a({Value::Int(1), Value::Int(2)});
  ValueSet b({Value::Int(2), Value::Int(3)});
  EXPECT_EQ(Union(a, b), ValueSet({Value::Int(1), Value::Int(2), Value::Int(3)}));
  EXPECT_EQ(Intersect(a, b), ValueSet(Value::Int(2)));
  EXPECT_TRUE(Intersect(a, ValueSet()).empty());
}

TEST(ValueSet, HashEqualSetsEqualHash) {
  ValueSet a({Value::Int(1), Value::String("x")});
  ValueSet b({Value::String("x"), Value::Int(1)});
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(ValueSet, SingletonAccess) {
  ValueSet s(Value::Double(0.95));
  ASSERT_TRUE(s.is_singleton());
  EXPECT_DOUBLE_EQ(s.single().AsDouble(), 0.95);
}

class ValueOrderTotality : public ::testing::TestWithParam<int> {};

// Total order sanity over a mixed sample: antisymmetry and transitivity
// spot checks by pairwise comparison.
TEST_P(ValueOrderTotality, PairwiseConsistent) {
  const std::vector<Value> sample = {
      Value::Null(),        Value::Bool(false),     Value::Bool(true),
      Value::Int(-3),       Value::Int(0),          Value::Int(7),
      Value::Double(-2.5),  Value::Double(6.9),     Value::Double(7.0),
      Value::String(""),    Value::String("Acme"),  Value::String("CWI"),
      Value::OfDate(Date{2014, 12, 1}),
      Value::OfDate(Date{2017, 1, 1}),
  };
  const size_t i = static_cast<size_t>(GetParam()) % sample.size();
  const Value& a = sample[i];
  for (const Value& b : sample) {
    const int ab = a.Compare(b);
    const int ba = b.Compare(a);
    EXPECT_EQ(ab == 0, ba == 0);
    EXPECT_EQ(ab < 0, ba > 0);
    if (ab == 0) EXPECT_EQ(a.Hash(), b.Hash());
  }
}

INSTANTIATE_TEST_SUITE_P(AllSampleIndices, ValueOrderTotality,
                         ::testing::Range(0, 14));

}  // namespace
}  // namespace gcore
