// Unit tests for the Date literal type.
#include "common/date.h"

#include <gtest/gtest.h>

namespace gcore {
namespace {

TEST(Date, ParsePaperStyle) {
  // The toy instance uses `1/12/2014` (day/month/year) for `since`.
  auto d = Date::Parse("1/12/2014");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->day, 1);
  EXPECT_EQ(d->month, 12);
  EXPECT_EQ(d->year, 2014);
}

TEST(Date, ParseIso) {
  auto d = Date::Parse("2014-12-01");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, (Date{2014, 12, 1}));
}

TEST(Date, ParseRejectsGarbage) {
  EXPECT_FALSE(Date::Parse("notadate").ok());
  EXPECT_FALSE(Date::Parse("2014-12").ok());
  EXPECT_FALSE(Date::Parse("2014-12-01-05").ok());
  EXPECT_FALSE(Date::Parse("a/b/c").ok());
}

TEST(Date, ParseRejectsInvalidCalendarDates) {
  EXPECT_FALSE(Date::Parse("2014-02-30").ok());
  EXPECT_FALSE(Date::Parse("2014-13-01").ok());
  EXPECT_FALSE(Date::Parse("32/1/2014").ok());
  EXPECT_FALSE(Date::Parse("0/1/2014").ok());
}

TEST(Date, LeapYearRules) {
  EXPECT_TRUE(IsLeapYear(2016));
  EXPECT_FALSE(IsLeapYear(2015));
  EXPECT_FALSE(IsLeapYear(1900));  // century, not divisible by 400
  EXPECT_TRUE(IsLeapYear(2000));
  EXPECT_TRUE(Date::Parse("29/2/2016").ok());
  EXPECT_FALSE(Date::Parse("29/2/2015").ok());
}

TEST(Date, DaysInMonth) {
  EXPECT_EQ(DaysInMonth(2015, 2), 28);
  EXPECT_EQ(DaysInMonth(2016, 2), 29);
  EXPECT_EQ(DaysInMonth(2016, 4), 30);
  EXPECT_EQ(DaysInMonth(2016, 12), 31);
  EXPECT_EQ(DaysInMonth(2016, 13), 0);
}

TEST(Date, EpochDaysKnownValues) {
  EXPECT_EQ((Date{1970, 1, 1}).ToEpochDays(), 0);
  EXPECT_EQ((Date{1970, 1, 2}).ToEpochDays(), 1);
  EXPECT_EQ((Date{1969, 12, 31}).ToEpochDays(), -1);
  EXPECT_EQ((Date{2000, 3, 1}).ToEpochDays(), 11017);
}

TEST(Date, Ordering) {
  EXPECT_LT((Date{2014, 11, 30}), (Date{2014, 12, 1}));
  EXPECT_LT((Date{2013, 12, 31}), (Date{2014, 1, 1}));
  EXPECT_FALSE((Date{2014, 1, 1}) < (Date{2014, 1, 1}));
}

TEST(Date, ToStringIso) {
  EXPECT_EQ((Date{2014, 12, 1}).ToString(), "2014-12-01");
  EXPECT_EQ((Date{99, 1, 5}).ToString(), "0099-01-05");
}

class DateRoundTrip : public ::testing::TestWithParam<int64_t> {};

TEST_P(DateRoundTrip, EpochDaysRoundTrips) {
  const int64_t days = GetParam();
  const Date d = Date::FromEpochDays(days);
  EXPECT_TRUE(d.IsValid());
  EXPECT_EQ(d.ToEpochDays(), days);
}

INSTANTIATE_TEST_SUITE_P(SampledEpochs, DateRoundTrip,
                         ::testing::Values(-719162, -1, 0, 1, 59, 60, 365,
                                           10957, 11016, 11017, 16436, 20000,
                                           2932896));

}  // namespace
}  // namespace gcore
