#include "eval/binding_ops.h"

#include <unordered_map>

namespace gcore {

namespace {

/// Column positions shared by two schemas: pairs (col in a, col in b).
std::vector<std::pair<size_t, size_t>> SharedColumns(const BindingTable& a,
                                                     const BindingTable& b) {
  std::vector<std::pair<size_t, size_t>> shared;
  for (size_t i = 0; i < a.columns().size(); ++i) {
    const size_t j = b.ColumnIndex(a.columns()[i]);
    if (j != BindingTable::kNpos) shared.emplace_back(i, j);
  }
  return shared;
}

bool Compatible(const BindingRow& ra, const BindingRow& rb,
                const std::vector<std::pair<size_t, size_t>>& shared) {
  for (const auto& [ia, ib] : shared) {
    const Datum& da = ra[ia];
    const Datum& db = rb[ib];
    if (da.IsBound() && db.IsBound() && da != db) return false;
  }
  return true;
}

/// Output schema of a join: a's columns then b's extra columns, with
/// provenance merged.
BindingTable JoinSchema(const BindingTable& a, const BindingTable& b,
                        std::vector<size_t>* b_extra) {
  std::vector<std::string> columns = a.columns();
  for (size_t j = 0; j < b.columns().size(); ++j) {
    if (a.ColumnIndex(b.columns()[j]) == BindingTable::kNpos) {
      b_extra->push_back(j);
      columns.push_back(b.columns()[j]);
    }
  }
  BindingTable out(std::move(columns));
  for (const auto& [var, graph] : a.column_graphs()) {
    out.SetColumnGraph(var, graph);
  }
  for (const auto& [var, graph] : b.column_graphs()) {
    if (out.ColumnGraph(var).empty()) out.SetColumnGraph(var, graph);
  }
  return out;
}

/// µ1 ∪ µ2 under the joined schema. On shared columns a bound value wins
/// over unbound.
BindingRow MergeRows(const BindingRow& ra, const BindingRow& rb,
                     const std::vector<std::pair<size_t, size_t>>& shared,
                     const std::vector<size_t>& b_extra) {
  BindingRow merged = ra;
  for (const auto& [ia, ib] : shared) {
    if (merged[ia].IsUnbound()) merged[ia] = rb[ib];
  }
  for (size_t j : b_extra) merged.push_back(rb[j]);
  return merged;
}

struct KeyHash {
  size_t operator()(const std::vector<Datum>& key) const {
    size_t h = 0;
    for (const Datum& d : key) {
      h ^= d.Hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
    }
    return h;
  }
};

/// Hash index over b's rows where all shared columns are bound; rows with
/// an unbound shared column must be checked linearly against everything.
struct ProbeIndex {
  std::unordered_map<std::vector<Datum>, std::vector<size_t>, KeyHash> keyed;
  std::vector<size_t> wildcard;

  ProbeIndex(const BindingTable& b,
             const std::vector<std::pair<size_t, size_t>>& shared) {
    for (size_t r = 0; r < b.NumRows(); ++r) {
      const BindingRow& row = b.Row(r);
      std::vector<Datum> key;
      key.reserve(shared.size());
      bool all_bound = true;
      for (const auto& [ia, ib] : shared) {
        if (row[ib].IsUnbound()) {
          all_bound = false;
          break;
        }
        key.push_back(row[ib]);
      }
      if (all_bound) {
        keyed[std::move(key)].push_back(r);
      } else {
        wildcard.push_back(r);
      }
    }
  }

  /// Calls fn(row index in b) for each candidate compatible with `ra`.
  template <typename Fn>
  void ForEachCandidate(const BindingRow& ra,
                        const std::vector<std::pair<size_t, size_t>>& shared,
                        Fn fn) const {
    bool a_all_bound = true;
    std::vector<Datum> key;
    key.reserve(shared.size());
    for (const auto& [ia, ib] : shared) {
      if (ra[ia].IsUnbound()) {
        a_all_bound = false;
        break;
      }
      key.push_back(ra[ia]);
    }
    if (a_all_bound) {
      auto it = keyed.find(key);
      if (it != keyed.end()) {
        for (size_t r : it->second) fn(r);
      }
    } else {
      // Some a-side shared column unbound: any keyed bucket may match.
      for (const auto& [k, rows] : keyed) {
        for (size_t r : rows) fn(r);
      }
    }
    for (size_t r : wildcard) fn(r);
  }
};

}  // namespace

BindingTable TableUnion(const BindingTable& a, const BindingTable& b) {
  std::vector<size_t> b_extra;
  BindingTable out = JoinSchema(a, b, &b_extra);
  const auto shared = SharedColumns(a, b);
  for (const auto& ra : a.rows()) {
    BindingRow row = ra;
    row.resize(out.NumColumns());
    Status st = out.AddRow(std::move(row));
    (void)st;
  }
  for (const auto& rb : b.rows()) {
    BindingRow row(out.NumColumns());
    for (size_t j = 0; j < b.columns().size(); ++j) {
      const size_t col = out.ColumnIndex(b.columns()[j]);
      row[col] = rb[j];
    }
    Status st = out.AddRow(std::move(row));
    (void)st;
  }
  out.Deduplicate();
  return out;
}

BindingTable TableJoin(const BindingTable& a, const BindingTable& b) {
  std::vector<size_t> b_extra;
  BindingTable out = JoinSchema(a, b, &b_extra);
  const auto shared = SharedColumns(a, b);
  const ProbeIndex index(b, shared);
  for (const auto& ra : a.rows()) {
    index.ForEachCandidate(ra, shared, [&](size_t rb_idx) {
      const BindingRow& rb = b.Row(rb_idx);
      if (!Compatible(ra, rb, shared)) return;
      Status st = out.AddRow(MergeRows(ra, rb, shared, b_extra));
      (void)st;
    });
  }
  out.Deduplicate();
  return out;
}

BindingTable TableSemijoin(const BindingTable& a, const BindingTable& b) {
  BindingTable out(a.columns());
  for (const auto& [var, graph] : a.column_graphs()) {
    out.SetColumnGraph(var, graph);
  }
  const auto shared = SharedColumns(a, b);
  const ProbeIndex index(b, shared);
  for (const auto& ra : a.rows()) {
    bool found = false;
    index.ForEachCandidate(ra, shared, [&](size_t rb_idx) {
      if (found) return;
      if (Compatible(ra, b.Row(rb_idx), shared)) found = true;
    });
    if (found) {
      Status st = out.AddRow(ra);
      (void)st;
    }
  }
  return out;
}

BindingTable TableAntijoin(const BindingTable& a, const BindingTable& b) {
  BindingTable out(a.columns());
  for (const auto& [var, graph] : a.column_graphs()) {
    out.SetColumnGraph(var, graph);
  }
  const auto shared = SharedColumns(a, b);
  const ProbeIndex index(b, shared);
  for (const auto& ra : a.rows()) {
    bool found = false;
    index.ForEachCandidate(ra, shared, [&](size_t rb_idx) {
      if (found) return;
      if (Compatible(ra, b.Row(rb_idx), shared)) found = true;
    });
    if (!found) {
      Status st = out.AddRow(ra);
      (void)st;
    }
  }
  return out;
}

BindingTable TableLeftOuterJoin(const BindingTable& a,
                                const BindingTable& b) {
  BindingTable joined = TableJoin(a, b);
  BindingTable missing = TableAntijoin(a, b);
  return TableUnion(joined, missing);
}

}  // namespace gcore
