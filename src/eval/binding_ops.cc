#include "eval/binding_ops.h"

#include <unordered_map>

namespace gcore {

namespace {

/// Column positions shared by two schemas: pairs (col in a, col in b).
std::vector<std::pair<size_t, size_t>> SharedColumns(const BindingTable& a,
                                                     const BindingTable& b) {
  std::vector<std::pair<size_t, size_t>> shared;
  for (size_t i = 0; i < a.columns().size(); ++i) {
    const size_t j = b.ColumnIndex(a.columns()[i]);
    if (j != BindingTable::kNpos) shared.emplace_back(i, j);
  }
  return shared;
}

bool Compatible(const BindingRow& ra, const BindingRow& rb,
                const std::vector<std::pair<size_t, size_t>>& shared) {
  for (const auto& [ia, ib] : shared) {
    const Datum& da = ra[ia];
    const Datum& db = rb[ib];
    if (da.IsBound() && db.IsBound() && da != db) return false;
  }
  return true;
}

/// Output schema of a join: a's columns then b's extra columns, with
/// provenance merged.
BindingTable JoinSchema(const BindingTable& a, const BindingTable& b,
                        std::vector<size_t>* b_extra) {
  std::vector<std::string> columns = a.columns();
  for (size_t j = 0; j < b.columns().size(); ++j) {
    if (a.ColumnIndex(b.columns()[j]) == BindingTable::kNpos) {
      b_extra->push_back(j);
      columns.push_back(b.columns()[j]);
    }
  }
  BindingTable out(std::move(columns));
  for (const auto& [var, graph] : a.column_graphs()) {
    out.SetColumnGraph(var, graph);
  }
  for (const auto& [var, graph] : b.column_graphs()) {
    if (out.ColumnGraph(var).empty()) out.SetColumnGraph(var, graph);
  }
  return out;
}

/// µ1 ∪ µ2 under the joined schema. On shared columns a bound value wins
/// over unbound.
BindingRow MergeRows(const BindingRow& ra, const BindingRow& rb,
                     const std::vector<std::pair<size_t, size_t>>& shared,
                     const std::vector<size_t>& b_extra) {
  BindingRow merged;
  merged.reserve(ra.size() + b_extra.size());
  merged.insert(merged.end(), ra.begin(), ra.end());
  for (const auto& [ia, ib] : shared) {
    if (merged[ia].IsUnbound()) merged[ia] = rb[ib];
  }
  for (size_t j : b_extra) merged.push_back(rb[j]);
  return merged;
}

/// Hash index over b's rows where all shared columns are bound; rows with
/// an unbound shared column must be checked linearly against everything.
///
/// Buckets are keyed by the *combined hash* of the shared Datums rather
/// than by owned key vectors: probing and building never copy a Datum
/// (ValueSets and path shared_ptrs stay untouched on this hot path), and
/// hash collisions are harmless because every candidate is re-verified
/// with Compatible() by the caller.
struct ProbeIndex {
  std::unordered_map<size_t, std::vector<size_t>> keyed;
  std::vector<size_t> wildcard;

  /// Combined hash of the shared columns of `row` on side `ib` (or `ia`);
  /// false when any of them is unbound.
  template <size_t kPairMember>
  static bool HashShared(const BindingRow& row,
                         const std::vector<std::pair<size_t, size_t>>& shared,
                         size_t* hash) {
    size_t h = 0;
    for (const auto& cols : shared) {
      const Datum& d = row[std::get<kPairMember>(cols)];
      if (d.IsUnbound()) return false;
      h ^= d.Hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
    }
    *hash = h;
    return true;
  }

  ProbeIndex(const BindingTable& b,
             const std::vector<std::pair<size_t, size_t>>& shared) {
    keyed.reserve(b.NumRows());
    for (size_t r = 0; r < b.NumRows(); ++r) {
      size_t h = 0;
      if (HashShared<1>(b.Row(r), shared, &h)) {
        keyed[h].push_back(r);
      } else {
        wildcard.push_back(r);
      }
    }
  }

  /// Calls fn(row index in b) for each candidate potentially compatible
  /// with `ra`; the caller must still verify with Compatible().
  template <typename Fn>
  void ForEachCandidate(const BindingRow& ra,
                        const std::vector<std::pair<size_t, size_t>>& shared,
                        Fn fn) const {
    size_t h = 0;
    if (HashShared<0>(ra, shared, &h)) {
      auto it = keyed.find(h);
      if (it != keyed.end()) {
        for (size_t r : it->second) fn(r);
      }
    } else {
      // Some a-side shared column unbound: any keyed bucket may match.
      for (const auto& [k, rows] : keyed) {
        for (size_t r : rows) fn(r);
      }
    }
    for (size_t r : wildcard) fn(r);
  }
};

}  // namespace

BindingTable TableUnion(const BindingTable& a, const BindingTable& b) {
  std::vector<size_t> b_extra;
  BindingTable out = JoinSchema(a, b, &b_extra);
  const auto shared = SharedColumns(a, b);
  for (const auto& ra : a.rows()) {
    BindingRow row = ra;
    row.resize(out.NumColumns());
    Status st = out.AddRow(std::move(row));
    (void)st;
  }
  for (const auto& rb : b.rows()) {
    BindingRow row(out.NumColumns());
    for (size_t j = 0; j < b.columns().size(); ++j) {
      const size_t col = out.ColumnIndex(b.columns()[j]);
      row[col] = rb[j];
    }
    Status st = out.AddRow(std::move(row));
    (void)st;
  }
  out.Deduplicate();
  return out;
}

BindingTable TableJoin(const BindingTable& a, const BindingTable& b) {
  std::vector<size_t> b_extra;
  BindingTable out = JoinSchema(a, b, &b_extra);
  const auto shared = SharedColumns(a, b);
  const ProbeIndex index(b, shared);
  for (const auto& ra : a.rows()) {
    index.ForEachCandidate(ra, shared, [&](size_t rb_idx) {
      const BindingRow& rb = b.Row(rb_idx);
      if (!Compatible(ra, rb, shared)) return;
      Status st = out.AddRow(MergeRows(ra, rb, shared, b_extra));
      (void)st;
    });
  }
  out.Deduplicate();
  return out;
}

BindingTable TableSemijoin(const BindingTable& a, const BindingTable& b) {
  BindingTable out(a.columns());
  for (const auto& [var, graph] : a.column_graphs()) {
    out.SetColumnGraph(var, graph);
  }
  const auto shared = SharedColumns(a, b);
  const ProbeIndex index(b, shared);
  for (const auto& ra : a.rows()) {
    bool found = false;
    index.ForEachCandidate(ra, shared, [&](size_t rb_idx) {
      if (found) return;
      if (Compatible(ra, b.Row(rb_idx), shared)) found = true;
    });
    if (found) {
      Status st = out.AddRow(ra);
      (void)st;
    }
  }
  return out;
}

BindingTable TableAntijoin(const BindingTable& a, const BindingTable& b) {
  BindingTable out(a.columns());
  for (const auto& [var, graph] : a.column_graphs()) {
    out.SetColumnGraph(var, graph);
  }
  const auto shared = SharedColumns(a, b);
  const ProbeIndex index(b, shared);
  for (const auto& ra : a.rows()) {
    bool found = false;
    index.ForEachCandidate(ra, shared, [&](size_t rb_idx) {
      if (found) return;
      if (Compatible(ra, b.Row(rb_idx), shared)) found = true;
    });
    if (!found) {
      Status st = out.AddRow(ra);
      (void)st;
    }
  }
  return out;
}

BindingTable TableLeftOuterJoin(const BindingTable& a,
                                const BindingTable& b) {
  BindingTable joined = TableJoin(a, b);
  BindingTable missing = TableAntijoin(a, b);
  return TableUnion(joined, missing);
}

}  // namespace gcore
