#include "eval/binding_ops.h"

#include <algorithm>
#include <atomic>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>

namespace gcore {

namespace {

/// Column positions shared by two schemas: pairs (col in a, col in b).
std::vector<std::pair<size_t, size_t>> SharedColumns(const BindingTable& a,
                                                     const BindingTable& b) {
  std::vector<std::pair<size_t, size_t>> shared;
  for (size_t i = 0; i < a.columns().size(); ++i) {
    const size_t j = b.ColumnIndex(a.columns()[i]);
    if (j != BindingTable::kNpos) shared.emplace_back(i, j);
  }
  return shared;
}

/// µ1 ∼ µ2 on the shared columns, tested column-wise (no Datum is
/// materialized: dense cells compare kind bytes and raw ids).
bool CompatibleAt(const BindingTable& a, size_t ra, const BindingTable& b,
                  size_t rb,
                  const std::vector<std::pair<size_t, size_t>>& shared) {
  for (const auto& [ia, ib] : shared) {
    const Column& ca = a.ColumnAt(ia);
    const Column& cb = b.ColumnAt(ib);
    if (ca.BoundAt(ra) && cb.BoundAt(rb) &&
        !Column::CellsEqual(ca, ra, cb, rb)) {
      return false;
    }
  }
  return true;
}

/// Output schema of a join: a's columns then b's extra columns, with
/// provenance merged.
BindingTable JoinSchema(const BindingTable& a, const BindingTable& b,
                        std::vector<size_t>* b_extra) {
  std::vector<std::string> columns = a.columns();
  for (size_t j = 0; j < b.columns().size(); ++j) {
    if (a.ColumnIndex(b.columns()[j]) == BindingTable::kNpos) {
      b_extra->push_back(j);
      columns.push_back(b.columns()[j]);
    }
  }
  BindingTable out(std::move(columns));
  for (const auto& [var, graph] : a.column_graphs()) {
    out.SetColumnGraph(var, graph);
  }
  for (const auto& [var, graph] : b.column_graphs()) {
    if (out.ColumnGraph(var).empty()) out.SetColumnGraph(var, graph);
  }
  return out;
}

/// Hash index over b's rows where all shared columns are bound; rows with
/// an unbound shared column must be checked linearly against everything.
///
/// Buckets are keyed by the *combined hash* of the shared cells rather
/// than by owned key vectors: probing and building walk the typed key
/// columns directly (ValueSets and path pointers stay untouched on this
/// hot path), and hash collisions are harmless because every candidate is
/// re-verified with CompatibleAt() by the caller.
struct ProbeIndex {
  std::unordered_map<size_t, std::vector<size_t>> keyed;
  std::vector<size_t> wildcard;

  /// Combined hash of the shared columns of row `r` of `t`, reading side
  /// `kPairMember` of each pair; false when any of them is unbound.
  template <size_t kPairMember>
  static bool HashSharedAt(
      const BindingTable& t, size_t r,
      const std::vector<std::pair<size_t, size_t>>& shared, size_t* hash) {
    size_t h = 0;
    for (const auto& cols : shared) {
      const Column& c = t.ColumnAt(std::get<kPairMember>(cols));
      if (!c.BoundAt(r)) return false;
      h = HashCombine(h, c.HashAt(r));
    }
    *hash = h;
    return true;
  }

  ProbeIndex(const BindingTable& b,
             const std::vector<std::pair<size_t, size_t>>& shared) {
    keyed.reserve(b.NumRows());
    for (size_t r = 0; r < b.NumRows(); ++r) {
      size_t h = 0;
      if (HashSharedAt<1>(b, r, shared, &h)) {
        keyed[h].push_back(r);
      } else {
        wildcard.push_back(r);
      }
    }
  }

  /// Calls fn(row index in b) for each candidate potentially compatible
  /// with row `ra` of `a`; the caller must still verify with
  /// CompatibleAt().
  template <typename Fn>
  void ForEachCandidate(const BindingTable& a, size_t ra,
                        const std::vector<std::pair<size_t, size_t>>& shared,
                        Fn fn) const {
    size_t h = 0;
    if (HashSharedAt<0>(a, ra, shared, &h)) {
      auto it = keyed.find(h);
      if (it != keyed.end()) {
        for (size_t r : it->second) fn(r);
      }
    } else {
      // Some a-side shared column unbound: any keyed bucket may match.
      for (const auto& [k, rows] : keyed) {
        for (size_t r : rows) fn(r);
      }
    }
    for (size_t r : wildcard) fn(r);
  }

  /// True when some row of b is compatible with row `ra` of `a`; stops at
  /// the first hit instead of enumerating every candidate
  /// (semijoin/antijoin probe).
  bool AnyCompatible(const BindingTable& a, size_t ra, const BindingTable& b,
                     const std::vector<std::pair<size_t, size_t>>& shared)
      const {
    size_t h = 0;
    if (HashSharedAt<0>(a, ra, shared, &h)) {
      auto it = keyed.find(h);
      if (it != keyed.end()) {
        for (size_t r : it->second) {
          if (CompatibleAt(a, ra, b, r, shared)) return true;
        }
      }
    } else {
      for (const auto& [k, rows] : keyed) {
        (void)k;
        for (size_t r : rows) {
          if (CompatibleAt(a, ra, b, r, shared)) return true;
        }
      }
    }
    for (size_t r : wildcard) {
      if (CompatibleAt(a, ra, b, r, shared)) return true;
    }
    return false;
  }
};

}  // namespace

BindingTable TableUnion(const BindingTable& a, const BindingTable& b) {
  std::vector<size_t> b_extra;
  BindingTable out = JoinSchema(a, b, &b_extra);
  RowIndexSet seen;
  seen.Reserve(a.NumRows() + b.NumRows());
  const size_t unbound_hash = Datum().Hash();

  // a-side: out's prefix is exactly a's columns, extras pad with kUnbound.
  for (size_t ra = 0; ra < a.NumRows(); ++ra) {
    size_t h = a.RowHash(ra);
    for (size_t k = 0; k < b_extra.size(); ++k) {
      h = HashCombine(h, unbound_hash);
    }
    const bool fresh = seen.InsertIfNew(h, out.NumRows(), [&](size_t i) {
      for (size_t c = 0; c < a.NumColumns(); ++c) {
        if (!Column::CellsEqual(out.ColumnAt(c), i, a.ColumnAt(c), ra)) {
          return false;
        }
      }
      for (size_t c = a.NumColumns(); c < out.NumColumns(); ++c) {
        if (out.ColumnAt(c).BoundAt(i)) return false;
      }
      return true;
    });
    if (fresh) out.AppendRowFrom(a, ra);
  }

  // b-side: scatter b's columns into out positions; the rest stay unbound.
  std::vector<size_t> src_of_out(out.NumColumns(), BindingTable::kNpos);
  for (size_t j = 0; j < b.columns().size(); ++j) {
    src_of_out[out.ColumnIndex(b.columns()[j])] = j;
  }
  for (size_t rb = 0; rb < b.NumRows(); ++rb) {
    size_t h = 0;
    for (size_t c = 0; c < out.NumColumns(); ++c) {
      h = HashCombine(h, src_of_out[c] == BindingTable::kNpos
                             ? unbound_hash
                             : b.ColumnAt(src_of_out[c]).HashAt(rb));
    }
    const bool fresh = seen.InsertIfNew(h, out.NumRows(), [&](size_t i) {
      for (size_t c = 0; c < out.NumColumns(); ++c) {
        if (src_of_out[c] == BindingTable::kNpos) {
          if (out.ColumnAt(c).BoundAt(i)) return false;
        } else if (!Column::CellsEqual(out.ColumnAt(c), i,
                                       b.ColumnAt(src_of_out[c]), rb)) {
          return false;
        }
      }
      return true;
    });
    if (!fresh) continue;
    for (size_t c = 0; c < out.NumColumns(); ++c) {
      if (src_of_out[c] == BindingTable::kNpos) {
        out.MutableColumn(c).AppendUnbound();
      } else {
        out.MutableColumn(c).AppendFrom(b.ColumnAt(src_of_out[c]), rb);
      }
    }
    out.CommitRow();
  }
  return out;
}

namespace {

/// Duplicate elimination fused into join-output construction, one level
/// deeper than RowDedupSink: the merged row's hash and equality are
/// computed straight from the (probe row, build row) index pair over the
/// typed key columns, so duplicate pairs are rejected *before* a merged
/// row is ever materialized — and accepted pairs append column-wise
/// (dense cells are two array pushes; nothing row-shaped exists at all).
class JoinDedupSink {
 public:
  JoinDedupSink(BindingTable* out, const BindingTable& a,
                const BindingTable& b,
                const std::vector<std::pair<size_t, size_t>>& shared,
                const std::vector<size_t>& b_extra)
      : out_(out), a_(&a), b_(b), b_extra_(b_extra) {
    shared_of_a_.assign(a.NumColumns(), BindingTable::kNpos);
    for (const auto& [ia, ib] : shared) shared_of_a_[ia] = ib;
  }

  /// Re-points the probe side at another table with the same schema; the
  /// dedup state carries over (the streaming probe joins one chunk at a
  /// time against a common build table).
  void SetProbe(const BindingTable& a) { a_ = &a; }

  /// The column/row the merged row reads at position `i` of the a-prefix
  /// (bound a-value wins; unbound shared positions fill from b).
  std::pair<const Column*, size_t> MergedSrc(size_t ra, size_t rb,
                                             size_t i) const {
    const Column& ca = a_->ColumnAt(i);
    if (ca.BoundAt(ra) || shared_of_a_[i] == BindingTable::kNpos) {
      return {&ca, ra};
    }
    return {&b_.ColumnAt(shared_of_a_[i]), rb};
  }

  /// Appends µ1 ∪ µ2 unless an equal row is already present; the merged
  /// row is only constructed on first occurrence. Returns the row hash
  /// through `hash_out` when appended (parallel merge re-uses it).
  bool InsertPair(size_t ra, size_t rb, size_t* hash_out = nullptr) {
    // Reproduces HashRow over the would-be merged row (a-prefix, then
    // b-extras) without building it.
    size_t h = 0;
    for (size_t i = 0; i < a_->NumColumns(); ++i) {
      const auto [col, row] = MergedSrc(ra, rb, i);
      h = HashCombine(h, col->HashAt(row));
    }
    for (size_t j : b_extra_) h = HashCombine(h, b_.ColumnAt(j).HashAt(rb));
    const bool fresh = seen_.InsertIfNew(h, out_->NumRows(), [&](size_t i) {
      return MergedEquals(i, ra, rb);
    });
    if (!fresh) return false;
    for (size_t i = 0; i < a_->NumColumns(); ++i) {
      const auto [col, row] = MergedSrc(ra, rb, i);
      out_->MutableColumn(i).AppendFrom(*col, row);
    }
    for (size_t k = 0; k < b_extra_.size(); ++k) {
      out_->MutableColumn(a_->NumColumns() + k)
          .AppendFrom(b_.ColumnAt(b_extra_[k]), rb);
    }
    out_->CommitRow();
    if (hash_out != nullptr) *hash_out = h;
    return true;
  }

 private:
  bool MergedEquals(size_t stored, size_t ra, size_t rb) const {
    for (size_t i = 0; i < a_->NumColumns(); ++i) {
      const auto [col, row] = MergedSrc(ra, rb, i);
      if (!Column::CellsEqual(out_->ColumnAt(i), stored, *col, row)) {
        return false;
      }
    }
    for (size_t k = 0; k < b_extra_.size(); ++k) {
      if (!Column::CellsEqual(out_->ColumnAt(a_->NumColumns() + k), stored,
                              b_.ColumnAt(b_extra_[k]), rb)) {
        return false;
      }
    }
    return true;
  }

  BindingTable* out_;
  /// The current probe table (re-pointable, see SetProbe).
  const BindingTable* a_;
  const BindingTable& b_;
  const std::vector<size_t>& b_extra_;
  /// ia → ib for shared columns, kNpos elsewhere.
  std::vector<size_t> shared_of_a_;
  RowIndexSet seen_;
};

/// TableJoin with optional per-probe-row match tracking: `matched[ra]`
/// is set whenever row ra of a has at least one compatible b row — the
/// signal the left outer join's antijoin needs, harvested during the
/// probe instead of by a second full pass.
BindingTable JoinTracked(const BindingTable& a, const BindingTable& b,
                         std::vector<char>* matched) {
  std::vector<size_t> b_extra;
  BindingTable out = JoinSchema(a, b, &b_extra);
  const auto shared = SharedColumns(a, b);
  const ProbeIndex index(b, shared);
  JoinDedupSink sink(&out, a, b, shared, b_extra);
  for (size_t ra = 0; ra < a.NumRows(); ++ra) {
    index.ForEachCandidate(a, ra, shared, [&](size_t rb) {
      if (!CompatibleAt(a, ra, b, rb, shared)) return;
      if (matched != nullptr) (*matched)[ra] = 1;
      sink.InsertPair(ra, rb);
    });
  }
  return out;
}

}  // namespace

BindingTable TableJoin(const BindingTable& a, const BindingTable& b) {
  return JoinTracked(a, b, nullptr);
}

namespace {

/// Build side of the partitioned parallel join: b's keyed rows sharded
/// by shared-column hash. Bucket vectors keep b-row order, so candidate
/// enumeration per probe row matches the unpartitioned ProbeIndex.
constexpr size_t kJoinPartitions = 16;  // power of two
constexpr size_t kJoinMorselRows = 2048;

struct PartitionedBuild {
  std::vector<std::unordered_map<size_t, std::vector<size_t>>> keyed;
  std::vector<size_t> wildcard;

  PartitionedBuild(const BindingTable& b,
                   const std::vector<std::pair<size_t, size_t>>& shared)
      : keyed(kJoinPartitions) {
    for (size_t r = 0; r < b.NumRows(); ++r) {
      size_t h = 0;
      if (ProbeIndex::HashSharedAt<1>(b, r, shared, &h)) {
        keyed[h & (kJoinPartitions - 1)][h].push_back(r);
      } else {
        wildcard.push_back(r);
      }
    }
  }
};

/// One probe morsel's duplicate-free output with the row hashes the
/// worker already computed (the order-preserving merge re-uses them).
struct MorselJoinOut {
  BindingTable rows;
  std::vector<size_t> hashes;
};

}  // namespace

namespace {

/// TableJoinParallel with the same optional match tracking as
/// JoinTracked (workers write disjoint probe-row ranges, so the bitmap
/// needs no synchronization).
BindingTable JoinParallelTracked(const BindingTable& a, const BindingTable& b,
                                 size_t parallelism, size_t morsel_rows,
                                 std::vector<char>* matched) {
  const size_t morsel = morsel_rows == 0 ? kJoinMorselRows : morsel_rows;
  const auto shared = SharedColumns(a, b);
  if (parallelism <= 1 || a.NumRows() < 2 * morsel) {
    return JoinTracked(a, b, matched);
  }
  // Probe rows with an unbound shared column enumerate candidates in
  // hash-index iteration order, which a partitioned index cannot
  // reproduce; keep those joins on the serial path so the parallel join
  // is a drop-in replacement (identical rows, identical order).
  for (size_t r = 0; r < a.NumRows(); ++r) {
    size_t h = 0;
    if (!ProbeIndex::HashSharedAt<0>(a, r, shared, &h)) {
      return JoinTracked(a, b, matched);
    }
  }

  std::vector<size_t> b_extra;
  BindingTable out = JoinSchema(a, b, &b_extra);
  const PartitionedBuild build(b, shared);

  const size_t num_morsels = (a.NumRows() + morsel - 1) / morsel;
  std::vector<MorselJoinOut> morsels(num_morsels);
  std::atomic<size_t> next_morsel{0};

  auto probe_morsel = [&](size_t m) {
    MorselJoinOut& local = morsels[m];
    local.rows = BindingTable(out.columns());
    JoinDedupSink sink(&local.rows, a, b, shared, b_extra);
    const size_t lo = m * morsel;
    const size_t hi = std::min(a.NumRows(), lo + morsel);
    for (size_t r = lo; r < hi; ++r) {
      size_t h = 0;
      ProbeIndex::HashSharedAt<0>(a, r, shared, &h);  // pre-checked bound
      auto emit = [&](size_t rb_idx) {
        if (!CompatibleAt(a, r, b, rb_idx, shared)) return;
        if (matched != nullptr) (*matched)[r] = 1;
        size_t row_hash = 0;
        if (sink.InsertPair(r, rb_idx, &row_hash)) {
          local.hashes.push_back(row_hash);
        }
      };
      const auto& partition = build.keyed[h & (kJoinPartitions - 1)];
      auto it = partition.find(h);
      if (it != partition.end()) {
        for (size_t rb_idx : it->second) emit(rb_idx);
      }
      for (size_t rb_idx : build.wildcard) emit(rb_idx);
    }
  };

  auto worker = [&]() {
    while (true) {
      const size_t m = next_morsel.fetch_add(1);
      if (m >= num_morsels) return;
      probe_morsel(m);
    }
  };
  std::vector<std::thread> pool;
  const size_t threads = std::min(parallelism, num_morsels);
  pool.reserve(threads);
  for (size_t t = 0; t + 1 < threads; ++t) pool.emplace_back(worker);
  worker();  // the calling thread probes too
  for (auto& t : pool) t.join();

  // Ordered merge: morsel-local sets concatenate in probe order through
  // a global seen-set keyed by the worker-computed hashes (cross-morsel
  // duplicates die here; rows move column-wise, nothing is re-hashed).
  RowDedupSink sink(&out);
  for (const auto& morsel_out : morsels) {
    for (size_t i = 0; i < morsel_out.rows.NumRows(); ++i) {
      sink.InsertFrom(morsel_out.rows, i, morsel_out.hashes[i]);
    }
  }
  return out;
}

}  // namespace

BindingTable TableJoinParallel(const BindingTable& a, const BindingTable& b,
                               size_t parallelism, size_t morsel_rows) {
  return JoinParallelTracked(a, b, parallelism, morsel_rows, nullptr);
}

BindingTable TableJoinSwapBuild(const BindingTable& a, const BindingTable& b,
                                size_t parallelism, size_t morsel_rows) {
  // Build over a / probe b, then re-merge into the canonical a-first
  // schema: every canonical column copies the equally-named column of the
  // swapped result wholesale. Cell values agree pair-by-pair with the
  // unswapped join (a bound shared cell equals the b cell it matched; an
  // unbound one was filled from b either way), so only row order differs.
  BindingTable swapped = TableJoinParallel(b, a, parallelism, morsel_rows);
  std::vector<size_t> b_extra;
  BindingTable out = JoinSchema(a, b, &b_extra);
  std::vector<size_t> kept(out.NumColumns());
  for (size_t c = 0; c < out.NumColumns(); ++c) {
    kept[c] = swapped.ColumnIndex(out.columns()[c]);
  }
  out.AdoptProjectedColumnsMove(std::move(swapped), kept);
  return out;
}

/// Owns the build index and the chunk-spanning dedup state; lazily
/// initialized from the first probe chunk (which fixes the schema the
/// same way draining the probe side would).
struct StreamingJoinProbe::Impl {
  BindingTable build;
  bool swap_output;
  bool started = false;
  std::vector<std::pair<size_t, size_t>> shared;
  std::vector<size_t> b_extra;
  /// Accumulated join output in probe-first column order.
  BindingTable out;
  /// Empty table carrying the probe side's columns and provenance (the
  /// swap-output re-merge rebuilds the canonical schema from it).
  BindingTable probe_schema;
  std::optional<ProbeIndex> index;
  std::optional<JoinDedupSink> sink;

  Impl(BindingTable b, bool swap)
      : build(std::move(b)), swap_output(swap) {}

  void Start(const BindingTable& chunk) {
    started = true;
    shared = SharedColumns(chunk, build);
    out = JoinSchema(chunk, build, &b_extra);
    probe_schema = BindingTable(chunk.columns());
    for (const auto& [var, graph] : chunk.column_graphs()) {
      probe_schema.SetColumnGraph(var, graph);
    }
    index.emplace(build, shared);
    sink.emplace(&out, chunk, build, shared, b_extra);
  }
};

StreamingJoinProbe::StreamingJoinProbe(BindingTable build, bool swap_output)
    : impl_(new Impl(std::move(build), swap_output)) {}

StreamingJoinProbe::~StreamingJoinProbe() = default;

void StreamingJoinProbe::Probe(const BindingTable& chunk) {
  Impl& s = *impl_;
  if (!s.started) s.Start(chunk);
  s.sink->SetProbe(chunk);
  for (size_t ra = 0; ra < chunk.NumRows(); ++ra) {
    s.index->ForEachCandidate(chunk, ra, s.shared, [&](size_t rb) {
      if (!CompatibleAt(chunk, ra, s.build, rb, s.shared)) return;
      s.sink->InsertPair(ra, rb);
    });
  }
}

BindingTable StreamingJoinProbe::Finish() {
  Impl& s = *impl_;
  // No chunks at all: behave exactly like joining the empty table a
  // drained probe side would have produced.
  if (!s.started) s.Start(BindingTable());
  if (!s.swap_output) return std::move(s.out);
  // Canonical build-first schema, every column moved wholesale from the
  // equally-named probe-first column (the TableJoinSwapBuild re-merge).
  std::vector<size_t> extra;
  BindingTable canonical = JoinSchema(s.build, s.probe_schema, &extra);
  std::vector<size_t> kept(canonical.NumColumns());
  for (size_t c = 0; c < canonical.NumColumns(); ++c) {
    kept[c] = s.out.ColumnIndex(canonical.columns()[c]);
  }
  canonical.AdoptProjectedColumnsMove(std::move(s.out), kept);
  return canonical;
}

BindingTable TableSemijoin(const BindingTable& a, const BindingTable& b) {
  BindingTable out(a.columns());
  for (const auto& [var, graph] : a.column_graphs()) {
    out.SetColumnGraph(var, graph);
  }
  const auto shared = SharedColumns(a, b);
  const ProbeIndex index(b, shared);
  for (size_t ra = 0; ra < a.NumRows(); ++ra) {
    if (index.AnyCompatible(a, ra, b, shared)) {
      out.AppendRowFrom(a, ra);
    }
  }
  return out;
}

BindingTable TableAntijoin(const BindingTable& a, const BindingTable& b) {
  BindingTable out(a.columns());
  for (const auto& [var, graph] : a.column_graphs()) {
    out.SetColumnGraph(var, graph);
  }
  const auto shared = SharedColumns(a, b);
  const ProbeIndex index(b, shared);
  for (size_t ra = 0; ra < a.NumRows(); ++ra) {
    if (!index.AnyCompatible(a, ra, b, shared)) {
      out.AppendRowFrom(a, ra);
    }
  }
  return out;
}

BindingTable TableLeftOuterJoin(const BindingTable& a,
                                const BindingTable& b) {
  BindingTable joined = TableJoin(a, b);
  BindingTable missing = TableAntijoin(a, b);
  return TableUnion(joined, missing);
}

BindingTable TableLeftOuterJoinParallel(const BindingTable& a,
                                        const BindingTable& b,
                                        size_t parallelism,
                                        size_t morsel_rows) {
  // The join probe already visits every candidate of every a-row, so it
  // harvests the antijoin for free: rows that matched nothing are the
  // ∖-side, gathered in a-order exactly as TableAntijoin would emit them
  // — one hash build and one probe pass for the whole ⟕.
  std::vector<char> matched(a.NumRows(), 0);
  BindingTable joined =
      JoinParallelTracked(a, b, parallelism, morsel_rows, &matched);
  BindingTable missing(a.columns());
  for (const auto& [var, graph] : a.column_graphs()) {
    missing.SetColumnGraph(var, graph);
  }
  std::vector<size_t> kept;
  kept.reserve(a.NumRows());
  for (size_t r = 0; r < a.NumRows(); ++r) {
    if (matched[r] == 0) kept.push_back(r);
  }
  missing.AppendRowsFrom(a, kept);
  return TableUnion(joined, missing);
}

}  // namespace gcore
