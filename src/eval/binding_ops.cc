#include "eval/binding_ops.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <unordered_map>
#include <utility>

namespace gcore {

namespace {

/// Column positions shared by two schemas: pairs (col in a, col in b).
std::vector<std::pair<size_t, size_t>> SharedColumns(const BindingTable& a,
                                                     const BindingTable& b) {
  std::vector<std::pair<size_t, size_t>> shared;
  for (size_t i = 0; i < a.columns().size(); ++i) {
    const size_t j = b.ColumnIndex(a.columns()[i]);
    if (j != BindingTable::kNpos) shared.emplace_back(i, j);
  }
  return shared;
}

bool Compatible(const BindingRow& ra, const BindingRow& rb,
                const std::vector<std::pair<size_t, size_t>>& shared) {
  for (const auto& [ia, ib] : shared) {
    const Datum& da = ra[ia];
    const Datum& db = rb[ib];
    if (da.IsBound() && db.IsBound() && da != db) return false;
  }
  return true;
}

/// Output schema of a join: a's columns then b's extra columns, with
/// provenance merged.
BindingTable JoinSchema(const BindingTable& a, const BindingTable& b,
                        std::vector<size_t>* b_extra) {
  std::vector<std::string> columns = a.columns();
  for (size_t j = 0; j < b.columns().size(); ++j) {
    if (a.ColumnIndex(b.columns()[j]) == BindingTable::kNpos) {
      b_extra->push_back(j);
      columns.push_back(b.columns()[j]);
    }
  }
  BindingTable out(std::move(columns));
  for (const auto& [var, graph] : a.column_graphs()) {
    out.SetColumnGraph(var, graph);
  }
  for (const auto& [var, graph] : b.column_graphs()) {
    if (out.ColumnGraph(var).empty()) out.SetColumnGraph(var, graph);
  }
  return out;
}

/// µ1 ∪ µ2 under the joined schema. On shared columns a bound value wins
/// over unbound.
BindingRow MergeRows(const BindingRow& ra, const BindingRow& rb,
                     const std::vector<std::pair<size_t, size_t>>& shared,
                     const std::vector<size_t>& b_extra) {
  BindingRow merged;
  merged.reserve(ra.size() + b_extra.size());
  merged.insert(merged.end(), ra.begin(), ra.end());
  for (const auto& [ia, ib] : shared) {
    if (merged[ia].IsUnbound()) merged[ia] = rb[ib];
  }
  for (size_t j : b_extra) merged.push_back(rb[j]);
  return merged;
}

/// Hash index over b's rows where all shared columns are bound; rows with
/// an unbound shared column must be checked linearly against everything.
///
/// Buckets are keyed by the *combined hash* of the shared Datums rather
/// than by owned key vectors: probing and building never copy a Datum
/// (ValueSets and path shared_ptrs stay untouched on this hot path), and
/// hash collisions are harmless because every candidate is re-verified
/// with Compatible() by the caller.
struct ProbeIndex {
  std::unordered_map<size_t, std::vector<size_t>> keyed;
  std::vector<size_t> wildcard;

  /// Combined hash of the shared columns of `row` on side `ib` (or `ia`);
  /// false when any of them is unbound.
  template <size_t kPairMember>
  static bool HashShared(const BindingRow& row,
                         const std::vector<std::pair<size_t, size_t>>& shared,
                         size_t* hash) {
    size_t h = 0;
    for (const auto& cols : shared) {
      const Datum& d = row[std::get<kPairMember>(cols)];
      if (d.IsUnbound()) return false;
      h = HashCombine(h, d.Hash());
    }
    *hash = h;
    return true;
  }

  ProbeIndex(const BindingTable& b,
             const std::vector<std::pair<size_t, size_t>>& shared) {
    keyed.reserve(b.NumRows());
    for (size_t r = 0; r < b.NumRows(); ++r) {
      size_t h = 0;
      if (HashShared<1>(b.Row(r), shared, &h)) {
        keyed[h].push_back(r);
      } else {
        wildcard.push_back(r);
      }
    }
  }

  /// Calls fn(row index in b) for each candidate potentially compatible
  /// with `ra`; the caller must still verify with Compatible().
  template <typename Fn>
  void ForEachCandidate(const BindingRow& ra,
                        const std::vector<std::pair<size_t, size_t>>& shared,
                        Fn fn) const {
    size_t h = 0;
    if (HashShared<0>(ra, shared, &h)) {
      auto it = keyed.find(h);
      if (it != keyed.end()) {
        for (size_t r : it->second) fn(r);
      }
    } else {
      // Some a-side shared column unbound: any keyed bucket may match.
      for (const auto& [k, rows] : keyed) {
        for (size_t r : rows) fn(r);
      }
    }
    for (size_t r : wildcard) fn(r);
  }

  /// True when some row of b is compatible with `ra`; stops at the first
  /// hit instead of enumerating every candidate (semijoin/antijoin probe).
  bool AnyCompatible(const BindingTable& b, const BindingRow& ra,
                     const std::vector<std::pair<size_t, size_t>>& shared)
      const {
    size_t h = 0;
    if (HashShared<0>(ra, shared, &h)) {
      auto it = keyed.find(h);
      if (it != keyed.end()) {
        for (size_t r : it->second) {
          if (Compatible(ra, b.Row(r), shared)) return true;
        }
      }
    } else {
      for (const auto& [k, rows] : keyed) {
        (void)k;
        for (size_t r : rows) {
          if (Compatible(ra, b.Row(r), shared)) return true;
        }
      }
    }
    for (size_t r : wildcard) {
      if (Compatible(ra, b.Row(r), shared)) return true;
    }
    return false;
  }
};

}  // namespace

BindingTable TableUnion(const BindingTable& a, const BindingTable& b) {
  std::vector<size_t> b_extra;
  BindingTable out = JoinSchema(a, b, &b_extra);
  RowDedupSink sink(&out);
  for (const auto& ra : a.rows()) {
    BindingRow row = ra;
    row.resize(out.NumColumns());
    sink.Insert(std::move(row));
  }
  for (const auto& rb : b.rows()) {
    BindingRow row(out.NumColumns());
    for (size_t j = 0; j < b.columns().size(); ++j) {
      const size_t col = out.ColumnIndex(b.columns()[j]);
      row[col] = rb[j];
    }
    sink.Insert(std::move(row));
  }
  return out;
}

namespace {

/// Duplicate elimination fused into join-output construction, one level
/// deeper than RowDedupSink: the merged row's hash and equality are
/// computed straight from the (probe row, build row) pair, so duplicate
/// pairs are rejected *before* a merged row is ever materialized — the
/// dominant cost on duplicate-heavy joins (Datum rows are fat: value
/// sets, path pointers).
class JoinDedupSink {
 public:
  JoinDedupSink(BindingTable* out, const BindingTable& a,
                const std::vector<std::pair<size_t, size_t>>& shared,
                const std::vector<size_t>& b_extra)
      : out_(out), shared_(shared), b_extra_(b_extra) {
    shared_of_a_.assign(a.NumColumns(), BindingTable::kNpos);
    for (const auto& [ia, ib] : shared) shared_of_a_[ia] = ib;
  }

  /// The datum the merged row holds at position `i` of the a-prefix
  /// (bound a-value wins; unbound shared positions fill from b).
  const Datum& MergedAt(const BindingRow& ra, const BindingRow& rb,
                        size_t i) const {
    if (ra[i].IsBound() || shared_of_a_[i] == BindingTable::kNpos) {
      return ra[i];
    }
    return rb[shared_of_a_[i]];
  }

  /// Appends µ1 ∪ µ2 unless an equal row is already present; the merged
  /// row is only constructed on first occurrence. Returns the row hash
  /// through `hash_out` when appended (parallel merge re-uses it).
  bool InsertPair(const BindingRow& ra, const BindingRow& rb,
                  size_t* hash_out = nullptr) {
    // Reproduces HashRow over the would-be merged row (a-prefix, then
    // b-extras) without building it.
    size_t h = 0;
    for (size_t i = 0; i < ra.size(); ++i) {
      h = HashCombine(h, MergedAt(ra, rb, i).Hash());
    }
    for (size_t j : b_extra_) h = HashCombine(h, rb[j].Hash());
    const bool fresh = seen_.InsertIfNew(h, out_->NumRows(), [&](size_t i) {
      return MergedEquals(out_->Row(i), ra, rb);
    });
    if (!fresh) return false;
    Status st = out_->AddRow(MergeRows(ra, rb, shared_, b_extra_));
    (void)st;
    if (hash_out != nullptr) *hash_out = h;
    return true;
  }

 private:
  bool MergedEquals(const BindingRow& stored, const BindingRow& ra,
                    const BindingRow& rb) const {
    for (size_t i = 0; i < ra.size(); ++i) {
      if (!(stored[i] == MergedAt(ra, rb, i))) return false;
    }
    for (size_t k = 0; k < b_extra_.size(); ++k) {
      if (!(stored[ra.size() + k] == rb[b_extra_[k]])) return false;
    }
    return true;
  }

  BindingTable* out_;
  const std::vector<std::pair<size_t, size_t>>& shared_;
  const std::vector<size_t>& b_extra_;
  /// ia → ib for shared columns, kNpos elsewhere.
  std::vector<size_t> shared_of_a_;
  RowIndexSet seen_;
};

}  // namespace

BindingTable TableJoin(const BindingTable& a, const BindingTable& b) {
  std::vector<size_t> b_extra;
  BindingTable out = JoinSchema(a, b, &b_extra);
  const auto shared = SharedColumns(a, b);
  const ProbeIndex index(b, shared);
  JoinDedupSink sink(&out, a, shared, b_extra);
  for (const auto& ra : a.rows()) {
    index.ForEachCandidate(ra, shared, [&](size_t rb_idx) {
      const BindingRow& rb = b.Row(rb_idx);
      if (!Compatible(ra, rb, shared)) return;
      sink.InsertPair(ra, rb);
    });
  }
  return out;
}

namespace {

/// Build side of the partitioned parallel join: b's keyed rows sharded
/// by shared-column hash. Bucket vectors keep b-row order, so candidate
/// enumeration per probe row matches the unpartitioned ProbeIndex.
constexpr size_t kJoinPartitions = 16;  // power of two
constexpr size_t kJoinMorselRows = 2048;

struct PartitionedBuild {
  std::vector<std::unordered_map<size_t, std::vector<size_t>>> keyed;
  std::vector<size_t> wildcard;

  PartitionedBuild(const BindingTable& b,
                   const std::vector<std::pair<size_t, size_t>>& shared)
      : keyed(kJoinPartitions) {
    for (size_t r = 0; r < b.NumRows(); ++r) {
      size_t h = 0;
      if (ProbeIndex::HashShared<1>(b.Row(r), shared, &h)) {
        keyed[h & (kJoinPartitions - 1)][h].push_back(r);
      } else {
        wildcard.push_back(r);
      }
    }
  }
};

/// One probe morsel's duplicate-free output with the row hashes the
/// worker already computed (the order-preserving merge re-uses them).
struct MorselJoinOut {
  BindingTable rows;
  std::vector<size_t> hashes;
};

}  // namespace

BindingTable TableJoinParallel(const BindingTable& a, const BindingTable& b,
                               size_t parallelism, size_t morsel_rows) {
  const size_t morsel = morsel_rows == 0 ? kJoinMorselRows : morsel_rows;
  const auto shared = SharedColumns(a, b);
  if (parallelism <= 1 || a.NumRows() < 2 * morsel) {
    return TableJoin(a, b);
  }
  // Probe rows with an unbound shared column enumerate candidates in
  // hash-index iteration order, which a partitioned index cannot
  // reproduce; keep those joins on the serial path so the parallel join
  // is a drop-in replacement (identical rows, identical order).
  for (const auto& ra : a.rows()) {
    size_t h = 0;
    if (!ProbeIndex::HashShared<0>(ra, shared, &h)) return TableJoin(a, b);
  }

  std::vector<size_t> b_extra;
  BindingTable out = JoinSchema(a, b, &b_extra);
  const PartitionedBuild build(b, shared);

  const size_t num_morsels = (a.NumRows() + morsel - 1) / morsel;
  std::vector<MorselJoinOut> morsels(num_morsels);
  std::atomic<size_t> next_morsel{0};

  auto probe_morsel = [&](size_t m) {
    MorselJoinOut& local = morsels[m];
    local.rows = BindingTable(out.columns());
    JoinDedupSink sink(&local.rows, a, shared, b_extra);
    const size_t lo = m * morsel;
    const size_t hi = std::min(a.NumRows(), lo + morsel);
    for (size_t r = lo; r < hi; ++r) {
      const BindingRow& ra = a.Row(r);
      size_t h = 0;
      ProbeIndex::HashShared<0>(ra, shared, &h);  // pre-checked bound
      auto emit = [&](size_t rb_idx) {
        const BindingRow& rb = b.Row(rb_idx);
        if (!Compatible(ra, rb, shared)) return;
        size_t row_hash = 0;
        if (sink.InsertPair(ra, rb, &row_hash)) {
          local.hashes.push_back(row_hash);
        }
      };
      const auto& partition = build.keyed[h & (kJoinPartitions - 1)];
      auto it = partition.find(h);
      if (it != partition.end()) {
        for (size_t rb_idx : it->second) emit(rb_idx);
      }
      for (size_t rb_idx : build.wildcard) emit(rb_idx);
    }
  };

  auto worker = [&]() {
    while (true) {
      const size_t m = next_morsel.fetch_add(1);
      if (m >= num_morsels) return;
      probe_morsel(m);
    }
  };
  std::vector<std::thread> pool;
  const size_t threads = std::min(parallelism, num_morsels);
  pool.reserve(threads);
  for (size_t t = 0; t + 1 < threads; ++t) pool.emplace_back(worker);
  worker();  // the calling thread probes too
  for (auto& t : pool) t.join();

  // Ordered merge: morsel-local sets concatenate in probe order through
  // a global seen-set keyed by the worker-computed hashes (cross-morsel
  // duplicates die here; nothing is re-hashed).
  RowDedupSink sink(&out);
  for (auto& morsel : morsels) {
    auto& rows = morsel.rows.mutable_rows();
    for (size_t i = 0; i < rows.size(); ++i) {
      sink.Insert(std::move(rows[i]), morsel.hashes[i]);
    }
  }
  return out;
}

BindingTable TableSemijoin(const BindingTable& a, const BindingTable& b) {
  BindingTable out(a.columns());
  for (const auto& [var, graph] : a.column_graphs()) {
    out.SetColumnGraph(var, graph);
  }
  const auto shared = SharedColumns(a, b);
  const ProbeIndex index(b, shared);
  for (const auto& ra : a.rows()) {
    if (index.AnyCompatible(b, ra, shared)) {
      Status st = out.AddRow(ra);
      (void)st;
    }
  }
  return out;
}

BindingTable TableAntijoin(const BindingTable& a, const BindingTable& b) {
  BindingTable out(a.columns());
  for (const auto& [var, graph] : a.column_graphs()) {
    out.SetColumnGraph(var, graph);
  }
  const auto shared = SharedColumns(a, b);
  const ProbeIndex index(b, shared);
  for (const auto& ra : a.rows()) {
    if (!index.AnyCompatible(b, ra, shared)) {
      Status st = out.AddRow(ra);
      (void)st;
    }
  }
  return out;
}

BindingTable TableLeftOuterJoin(const BindingTable& a,
                                const BindingTable& b) {
  BindingTable joined = TableJoin(a, b);
  BindingTable missing = TableAntijoin(a, b);
  return TableUnion(joined, missing);
}

}  // namespace gcore
