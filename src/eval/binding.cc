#include "eval/binding.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace gcore {

namespace {
const Datum kUnboundDatum;
const std::string kEmptyString;
}  // namespace

Datum Datum::OfNode(NodeId id) {
  Datum d;
  d.kind_ = Kind::kNode;
  d.node_ = id;
  return d;
}

Datum Datum::OfEdge(EdgeId id) {
  Datum d;
  d.kind_ = Kind::kEdge;
  d.edge_ = id;
  return d;
}

Datum Datum::OfPath(std::shared_ptr<const PathValue> path) {
  Datum d;
  d.kind_ = Kind::kPath;
  d.path_ = std::move(path);
  return d;
}

Datum Datum::OfValues(ValueSet values) {
  Datum d;
  d.kind_ = Kind::kValues;
  d.values_ = std::move(values);
  return d;
}

Datum Datum::OfNodeList(std::vector<NodeId> nodes) {
  Datum d;
  d.kind_ = Kind::kNodeList;
  d.nodes_ = std::move(nodes);
  return d;
}

Datum Datum::OfEdgeList(std::vector<EdgeId> edges) {
  Datum d;
  d.kind_ = Kind::kEdgeList;
  d.edges_ = std::move(edges);
  return d;
}

bool operator==(const Datum& a, const Datum& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case Datum::Kind::kUnbound:
      return true;
    case Datum::Kind::kNode:
      return a.node_ == b.node_;
    case Datum::Kind::kEdge:
      return a.edge_ == b.edge_;
    case Datum::Kind::kPath:
      return a.path_->id == b.path_->id;
    case Datum::Kind::kValues:
      return a.values_ == b.values_;
    case Datum::Kind::kNodeList:
      return a.nodes_ == b.nodes_;
    case Datum::Kind::kEdgeList:
      return a.edges_ == b.edges_;
  }
  return false;
}

size_t Datum::Hash() const {
  switch (kind_) {
    case Kind::kUnbound:
      return 0x5bd1e995;
    case Kind::kNode:
      return std::hash<NodeId>{}(node_) ^ 0x10;
    case Kind::kEdge:
      return std::hash<EdgeId>{}(edge_) ^ 0x20;
    case Kind::kPath:
      return std::hash<PathId>{}(path_->id) ^ 0x30;
    case Kind::kValues:
      return values_.Hash() ^ 0x40;
    case Kind::kNodeList: {
      size_t h = 0x50;
      for (NodeId n : nodes_) h = h * 31 + std::hash<NodeId>{}(n);
      return h;
    }
    case Kind::kEdgeList: {
      size_t h = 0x60;
      for (EdgeId e : edges_) h = h * 31 + std::hash<EdgeId>{}(e);
      return h;
    }
  }
  return 0;
}

std::string Datum::ToString() const {
  switch (kind_) {
    case Kind::kUnbound:
      return "⊥";
    case Kind::kNode:
      return gcore::ToString(node_);
    case Kind::kEdge:
      return gcore::ToString(edge_);
    case Kind::kPath:
      return gcore::ToString(path_->id);
    case Kind::kValues:
      return values_.ToString();
    case Kind::kNodeList: {
      std::string out = "[";
      for (size_t i = 0; i < nodes_.size(); ++i) {
        if (i > 0) out += ", ";
        out += gcore::ToString(nodes_[i]);
      }
      return out + "]";
    }
    case Kind::kEdgeList: {
      std::string out = "[";
      for (size_t i = 0; i < edges_.size(); ++i) {
        if (i > 0) out += ", ";
        out += gcore::ToString(edges_[i]);
      }
      return out + "]";
    }
  }
  return "?";
}

BindingTable BindingTable::Unit() {
  BindingTable t;
  t.rows_.emplace_back();
  return t;
}

size_t BindingTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return i;
  }
  return kNpos;
}

size_t BindingTable::AddColumn(const std::string& name) {
  const size_t existing = ColumnIndex(name);
  if (existing != kNpos) return existing;
  columns_.push_back(name);
  for (auto& row : rows_) row.emplace_back();
  return columns_.size() - 1;
}

Status BindingTable::AddRow(BindingRow row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "binding row has " + std::to_string(row.size()) +
        " entries, table has " + std::to_string(columns_.size()) +
        " columns");
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

const Datum& BindingTable::Get(size_t row, const std::string& var) const {
  const size_t col = ColumnIndex(var);
  return col == kNpos ? kUnboundDatum : rows_[row][col];
}

namespace {
struct RowHash {
  size_t operator()(const BindingRow* row) const {
    size_t h = 0;
    for (const Datum& d : *row) {
      h ^= d.Hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
    }
    return h;
  }
};
struct RowEq {
  bool operator()(const BindingRow* a, const BindingRow* b) const {
    return *a == *b;
  }
};
}  // namespace

void BindingTable::Deduplicate() {
  std::unordered_set<const BindingRow*, RowHash, RowEq> seen;
  seen.reserve(rows_.size());
  std::vector<BindingRow> kept;
  kept.reserve(rows_.size());
  for (auto& row : rows_) {
    if (seen.count(&row) > 0) continue;
    kept.push_back(row);
    seen.insert(&kept.back());
  }
  // Re-hash over the stable `kept` storage: the inserted pointers above
  // pointed into `kept`, which does not reallocate after reserve... but
  // reserve(rows_.size()) guarantees capacity, so pointers stay valid.
  rows_ = std::move(kept);
}

void BindingTable::SetColumnGraph(const std::string& var,
                                  const std::string& graph) {
  if (graph.empty()) return;
  column_graphs_[var] = graph;
}

const std::string& BindingTable::ColumnGraph(const std::string& var) const {
  auto it = column_graphs_.find(var);
  return it == column_graphs_.end() ? kEmptyString : it->second;
}

std::string BindingTable::ToString() const {
  std::ostringstream out;
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (c > 0) out << " | ";
    out << columns_[c];
  }
  out << "\n";
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << " | ";
      out << row[c].ToString();
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace gcore
