#include "eval/binding.h"

#include <algorithm>
#include <sstream>

namespace gcore {

namespace {
const std::string kEmptyString;

/// Datum::Hash of a kUnbound cell; Column::HashAt reproduces it without
/// constructing the Datum.
constexpr size_t kUnboundHash = 0x5bd1e995;
}  // namespace

Datum Datum::OfNode(NodeId id) {
  Datum d;
  d.kind_ = Kind::kNode;
  d.id_ = id.value();
  return d;
}

Datum Datum::OfEdge(EdgeId id) {
  Datum d;
  d.kind_ = Kind::kEdge;
  d.id_ = id.value();
  return d;
}

Datum Datum::OfPath(std::shared_ptr<const PathValue> path) {
  Datum d;
  d.kind_ = Kind::kPath;
  d.path_ = std::move(path);
  return d;
}

Datum Datum::OfValues(ValueSet values) {
  Datum d;
  d.kind_ = Kind::kValues;
  auto heavy = std::make_shared<Heavy>();
  heavy->values = std::move(values);
  d.heavy_ = std::move(heavy);
  return d;
}

Datum Datum::OfNodeList(std::vector<NodeId> nodes) {
  Datum d;
  d.kind_ = Kind::kNodeList;
  auto heavy = std::make_shared<Heavy>();
  heavy->nodes = std::move(nodes);
  d.heavy_ = std::move(heavy);
  return d;
}

Datum Datum::OfEdgeList(std::vector<EdgeId> edges) {
  Datum d;
  d.kind_ = Kind::kEdgeList;
  auto heavy = std::make_shared<Heavy>();
  heavy->edges = std::move(edges);
  d.heavy_ = std::move(heavy);
  return d;
}

bool operator==(const Datum& a, const Datum& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case Datum::Kind::kUnbound:
      return true;
    case Datum::Kind::kNode:
    case Datum::Kind::kEdge:
      return a.id_ == b.id_;
    case Datum::Kind::kPath:
      return a.path_->id == b.path_->id;
    case Datum::Kind::kValues:
      return a.heavy_ == b.heavy_ || a.heavy_->values == b.heavy_->values;
    case Datum::Kind::kNodeList:
      return a.heavy_ == b.heavy_ || a.heavy_->nodes == b.heavy_->nodes;
    case Datum::Kind::kEdgeList:
      return a.heavy_ == b.heavy_ || a.heavy_->edges == b.heavy_->edges;
  }
  return false;
}

size_t Datum::Hash() const {
  switch (kind_) {
    case Kind::kUnbound:
      return kUnboundHash;
    case Kind::kNode:
      return std::hash<uint64_t>{}(id_) ^ 0x10;
    case Kind::kEdge:
      return std::hash<uint64_t>{}(id_) ^ 0x20;
    case Kind::kPath:
      return std::hash<PathId>{}(path_->id) ^ 0x30;
    case Kind::kValues:
      return heavy_->values.Hash() ^ 0x40;
    case Kind::kNodeList: {
      size_t h = 0x50;
      for (NodeId n : heavy_->nodes) h = h * 31 + std::hash<NodeId>{}(n);
      return h;
    }
    case Kind::kEdgeList: {
      size_t h = 0x60;
      for (EdgeId e : heavy_->edges) h = h * 31 + std::hash<EdgeId>{}(e);
      return h;
    }
  }
  return 0;
}

std::string Datum::ToString() const {
  switch (kind_) {
    case Kind::kUnbound:
      return "⊥";
    case Kind::kNode:
      return gcore::ToString(node());
    case Kind::kEdge:
      return gcore::ToString(edge());
    case Kind::kPath:
      return gcore::ToString(path_->id);
    case Kind::kValues:
      return heavy_->values.ToString();
    case Kind::kNodeList: {
      std::string out = "[";
      const auto& nodes = heavy_->nodes;
      for (size_t i = 0; i < nodes.size(); ++i) {
        if (i > 0) out += ", ";
        out += gcore::ToString(nodes[i]);
      }
      return out + "]";
    }
    case Kind::kEdgeList: {
      std::string out = "[";
      const auto& edges = heavy_->edges;
      for (size_t i = 0; i < edges.size(); ++i) {
        if (i > 0) out += ", ";
        out += gcore::ToString(edges[i]);
      }
      return out + "]";
    }
  }
  return "?";
}

// --- Column -------------------------------------------------------------------

Datum Column::DatumAt(size_t i) const {
  switch (KindAt(i)) {
    case Kind::kUnbound:
      return Datum();
    case Kind::kNode:
      return Datum::OfNode(NodeId(slots_[i]));
    case Kind::kEdge:
      return Datum::OfEdge(EdgeId(slots_[i]));
    default:
      return overflow_[slots_[i]];
  }
}

size_t Column::HashAt(size_t i) const {
  switch (KindAt(i)) {
    case Kind::kUnbound:
      return kUnboundHash;
    case Kind::kNode:
      return std::hash<uint64_t>{}(slots_[i]) ^ 0x10;
    case Kind::kEdge:
      return std::hash<uint64_t>{}(slots_[i]) ^ 0x20;
    default:
      return overflow_[slots_[i]].Hash();
  }
}

bool Column::EqualsAt(size_t i, const Datum& d) const {
  const Kind k = KindAt(i);
  if (k != d.kind()) return false;
  switch (k) {
    case Kind::kUnbound:
      return true;
    case Kind::kNode:
      return slots_[i] == d.node().value();
    case Kind::kEdge:
      return slots_[i] == d.edge().value();
    default:
      return overflow_[slots_[i]] == d;
  }
}

bool Column::CellsEqual(const Column& a, size_t i, const Column& b,
                        size_t j) {
  const Kind k = a.KindAt(i);
  if (k != b.KindAt(j)) return false;
  switch (k) {
    case Kind::kUnbound:
      return true;
    case Kind::kNode:
    case Kind::kEdge:
      return a.slots_[i] == b.slots_[j];
    default:
      return a.overflow_[a.slots_[i]] == b.overflow_[b.slots_[j]];
  }
}

void Column::Append(Datum d) {
  const Kind k = d.kind();
  kinds_.push_back(static_cast<uint8_t>(k));
  switch (k) {
    case Kind::kUnbound:
      slots_.push_back(0);
      break;
    case Kind::kNode:
      slots_.push_back(d.node().value());
      break;
    case Kind::kEdge:
      slots_.push_back(d.edge().value());
      break;
    default:
      overflow_.push_back(std::move(d));
      slots_.push_back(overflow_.size() - 1);
      break;
  }
}

void Column::AppendFrom(const Column& src, size_t i) {
  const Kind k = src.KindAt(i);
  kinds_.push_back(static_cast<uint8_t>(k));
  if (IsDense(k)) {
    slots_.push_back(src.slots_[i]);
  } else {
    overflow_.push_back(src.overflow_[src.slots_[i]]);
    slots_.push_back(overflow_.size() - 1);
  }
}

void Column::AppendRange(const Column& src, size_t begin, size_t end) {
  kinds_.insert(kinds_.end(), src.kinds_.begin() + begin,
                src.kinds_.begin() + end);
  if (src.overflow_.empty()) {
    slots_.insert(slots_.end(), src.slots_.begin() + begin,
                  src.slots_.begin() + end);
    return;
  }
  slots_.reserve(slots_.size() + (end - begin));
  for (size_t i = begin; i < end; ++i) {
    if (IsDense(src.KindAt(i))) {
      slots_.push_back(src.slots_[i]);
    } else {
      overflow_.push_back(src.overflow_[src.slots_[i]]);
      slots_.push_back(overflow_.size() - 1);
    }
  }
}

void Column::AppendIndexed(const Column& src,
                           const std::vector<size_t>& rows) {
  kinds_.reserve(kinds_.size() + rows.size());
  slots_.reserve(slots_.size() + rows.size());
  if (src.overflow_.empty()) {
    for (size_t r : rows) {
      kinds_.push_back(src.kinds_[r]);
      slots_.push_back(src.slots_[r]);
    }
    return;
  }
  for (size_t r : rows) AppendFrom(src, r);
}

void Column::Set(size_t i, Datum d) {
  const Kind k = d.kind();
  if (!IsDense(k)) {
    if (!IsDense(KindAt(i))) {
      // Reuse the existing overflow slot (each cell owns its slot).
      overflow_[slots_[i]] = std::move(d);
    } else {
      overflow_.push_back(std::move(d));
      slots_[i] = overflow_.size() - 1;
    }
  } else {
    // A heavy→dense overwrite strands the old overflow entry; harmless
    // (cells are append-mostly, CONSTRUCT only sets fresh objects).
    switch (k) {
      case Kind::kUnbound:
        slots_[i] = 0;
        break;
      case Kind::kNode:
        slots_[i] = d.node().value();
        break;
      case Kind::kEdge:
        slots_[i] = d.edge().value();
        break;
      default:
        break;
    }
  }
  kinds_[i] = static_cast<uint8_t>(k);
}

// --- BindingTable -------------------------------------------------------------

BindingTable::BindingTable(std::vector<std::string> columns)
    : columns_(std::move(columns)), cols_(columns_.size()) {
  name_index_.reserve(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    name_index_.emplace(columns_[i], i);  // first index wins
  }
}

BindingTable BindingTable::Unit() {
  BindingTable t;
  t.num_rows_ = 1;
  return t;
}

size_t BindingTable::ColumnIndex(const std::string& name) const {
  auto it = name_index_.find(name);
  return it == name_index_.end() ? kNpos : it->second;
}

size_t BindingTable::AddColumn(const std::string& name) {
  const size_t existing = ColumnIndex(name);
  if (existing != kNpos) return existing;
  columns_.push_back(name);
  cols_.emplace_back();
  Column& col = cols_.back();
  col.Reserve(num_rows_);
  for (size_t r = 0; r < num_rows_; ++r) col.AppendUnbound();
  name_index_.emplace(name, columns_.size() - 1);
  return columns_.size() - 1;
}

Status BindingTable::AddRow(BindingRow row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "binding row has " + std::to_string(row.size()) +
        " entries, table has " + std::to_string(columns_.size()) +
        " columns");
  }
  for (size_t c = 0; c < row.size(); ++c) {
    cols_[c].Append(std::move(row[c]));
  }
  ++num_rows_;
  return Status::OK();
}

BindingRow BindingTable::Row(size_t i) const {
  BindingRow row;
  row.reserve(cols_.size());
  for (const Column& c : cols_) row.push_back(c.DatumAt(i));
  return row;
}

Datum BindingTable::Get(size_t row, const std::string& var) const {
  const size_t col = ColumnIndex(var);
  return col == kNpos ? Datum() : cols_[col].DatumAt(row);
}

size_t BindingTable::RowHash(size_t i) const {
  size_t h = 0;
  for (const Column& c : cols_) h = HashCombine(h, c.HashAt(i));
  return h;
}

bool BindingTable::RowEquals(size_t i, const BindingRow& row) const {
  if (row.size() != cols_.size()) return false;
  for (size_t c = 0; c < cols_.size(); ++c) {
    if (!cols_[c].EqualsAt(i, row[c])) return false;
  }
  return true;
}

bool BindingTable::RowsEqual(const BindingTable& a, size_t i,
                             const BindingTable& b, size_t j) {
  for (size_t c = 0; c < a.cols_.size(); ++c) {
    if (!Column::CellsEqual(a.cols_[c], i, b.cols_[c], j)) return false;
  }
  return true;
}

void BindingTable::AppendRowFrom(const BindingTable& src, size_t r) {
  const size_t shared = src.cols_.size();
  for (size_t c = 0; c < shared; ++c) cols_[c].AppendFrom(src.cols_[c], r);
  for (size_t c = shared; c < cols_.size(); ++c) cols_[c].AppendUnbound();
  ++num_rows_;
}

void BindingTable::AppendRowsFrom(const BindingTable& src,
                                  const std::vector<size_t>& rows) {
  const size_t shared = src.cols_.size();
  for (size_t c = 0; c < shared; ++c) {
    cols_[c].AppendIndexed(src.cols_[c], rows);
  }
  for (size_t c = shared; c < cols_.size(); ++c) {
    for (size_t i = 0; i < rows.size(); ++i) cols_[c].AppendUnbound();
  }
  num_rows_ += rows.size();
}

void BindingTable::AppendSlice(const BindingTable& src, size_t begin,
                               size_t end) {
  for (size_t c = 0; c < cols_.size(); ++c) {
    cols_[c].AppendRange(src.cols_[c], begin, end);
  }
  num_rows_ += end - begin;
}

BindingTable BindingTable::Slice(size_t begin, size_t end) const {
  BindingTable out(columns_);
  out.column_graphs_ = column_graphs_;
  out.AppendSlice(*this, begin, end);
  return out;
}

void BindingTable::AdoptProjectedColumns(const BindingTable& src,
                                         const std::vector<size_t>& kept) {
  for (size_t k = 0; k < kept.size(); ++k) {
    cols_[k] = src.cols_[kept[k]];
  }
  num_rows_ = src.num_rows_;
}

void BindingTable::AdoptProjectedColumnsMove(BindingTable&& src,
                                             const std::vector<size_t>& kept) {
  std::unordered_map<size_t, size_t> first_pos;
  first_pos.reserve(kept.size());
  for (size_t k = 0; k < kept.size(); ++k) {
    auto [it, fresh] = first_pos.emplace(kept[k], k);
    if (fresh) {
      cols_[k] = std::move(src.cols_[kept[k]]);
    } else {
      // Duplicate-named source column already moved: its value is equal
      // by construction, copy the adopted one.
      cols_[k] = cols_[it->second];
    }
  }
  num_rows_ = src.num_rows_;
}

size_t HashRow(const BindingRow& row) {
  size_t h = 0;
  for (const Datum& d : row) h = HashCombine(h, d.Hash());
  return h;
}

void BindingTable::Deduplicate() {
  RowIndexSet seen;
  seen.Reserve(num_rows_);
  std::vector<size_t> kept;
  kept.reserve(num_rows_);
  for (size_t i = 0; i < num_rows_; ++i) {
    const bool fresh =
        seen.InsertIfNew(RowHash(i), kept.size(), [&](size_t j) {
          return RowsEqual(*this, i, *this, kept[j]);
        });
    if (fresh) kept.push_back(i);
  }
  if (kept.size() == num_rows_) return;
  for (Column& col : cols_) {
    Column compact;
    compact.AppendIndexed(col, kept);
    col = std::move(compact);
  }
  num_rows_ = kept.size();
}

RowIndexSet::RowIndexSet() : slots_(64, {0, 0}) {}

void RowIndexSet::Reserve(size_t entries) {
  while (slots_.size() * 7 < entries * 10) Grow();
}

void RowIndexSet::Grow() {
  std::vector<std::pair<size_t, size_t>> old = std::move(slots_);
  slots_.assign(old.size() * 2, {0, 0});
  const size_t mask = slots_.size() - 1;
  for (const auto& slot : old) {
    if (slot.second == 0) continue;
    size_t pos = slot.first & mask;
    while (slots_[pos].second != 0) pos = (pos + 1) & mask;
    slots_[pos] = slot;
  }
}

RowDedupSink::RowDedupSink(BindingTable* out) : out_(out) {
  seen_.Reserve(out->NumRows() + 1);
  for (size_t i = 0; i < out->NumRows(); ++i) {
    // Existing rows are indexed as-is (no dedup among them).
    seen_.InsertIfNew(out->RowHash(i), i, [](size_t) { return false; });
  }
}

bool RowDedupSink::Insert(BindingRow row, size_t hash) {
  const bool fresh = seen_.InsertIfNew(hash, out_->NumRows(), [&](size_t i) {
    return out_->RowEquals(i, row);
  });
  if (!fresh) return false;
  Status st = out_->AddRow(std::move(row));
  (void)st;
  return true;
}

bool RowDedupSink::InsertFrom(const BindingTable& src, size_t r,
                              size_t hash) {
  const bool fresh = seen_.InsertIfNew(hash, out_->NumRows(), [&](size_t i) {
    return BindingTable::RowsEqual(*out_, i, src, r);
  });
  if (!fresh) return false;
  out_->AppendRowFrom(src, r);
  return true;
}

void BindingTable::SetColumnGraph(const std::string& var,
                                  const std::string& graph) {
  if (graph.empty()) return;
  column_graphs_[var] = graph;
}

const std::string& BindingTable::ColumnGraph(const std::string& var) const {
  auto it = column_graphs_.find(var);
  return it == column_graphs_.end() ? kEmptyString : it->second;
}

std::string BindingTable::ToString() const {
  std::ostringstream out;
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (c > 0) out << " | ";
    out << columns_[c];
  }
  out << "\n";
  for (size_t r = 0; r < num_rows_; ++r) {
    for (size_t c = 0; c < cols_.size(); ++c) {
      if (c > 0) out << " | ";
      out << cols_[c].DatumAt(r).ToString();
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace gcore
