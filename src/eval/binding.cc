#include "eval/binding.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

namespace gcore {

namespace {
const Datum kUnboundDatum;
const std::string kEmptyString;
}  // namespace

Datum Datum::OfNode(NodeId id) {
  Datum d;
  d.kind_ = Kind::kNode;
  d.node_ = id;
  return d;
}

Datum Datum::OfEdge(EdgeId id) {
  Datum d;
  d.kind_ = Kind::kEdge;
  d.edge_ = id;
  return d;
}

Datum Datum::OfPath(std::shared_ptr<const PathValue> path) {
  Datum d;
  d.kind_ = Kind::kPath;
  d.path_ = std::move(path);
  return d;
}

Datum Datum::OfValues(ValueSet values) {
  Datum d;
  d.kind_ = Kind::kValues;
  d.values_ = std::move(values);
  return d;
}

Datum Datum::OfNodeList(std::vector<NodeId> nodes) {
  Datum d;
  d.kind_ = Kind::kNodeList;
  d.nodes_ = std::move(nodes);
  return d;
}

Datum Datum::OfEdgeList(std::vector<EdgeId> edges) {
  Datum d;
  d.kind_ = Kind::kEdgeList;
  d.edges_ = std::move(edges);
  return d;
}

bool operator==(const Datum& a, const Datum& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case Datum::Kind::kUnbound:
      return true;
    case Datum::Kind::kNode:
      return a.node_ == b.node_;
    case Datum::Kind::kEdge:
      return a.edge_ == b.edge_;
    case Datum::Kind::kPath:
      return a.path_->id == b.path_->id;
    case Datum::Kind::kValues:
      return a.values_ == b.values_;
    case Datum::Kind::kNodeList:
      return a.nodes_ == b.nodes_;
    case Datum::Kind::kEdgeList:
      return a.edges_ == b.edges_;
  }
  return false;
}

size_t Datum::Hash() const {
  switch (kind_) {
    case Kind::kUnbound:
      return 0x5bd1e995;
    case Kind::kNode:
      return std::hash<NodeId>{}(node_) ^ 0x10;
    case Kind::kEdge:
      return std::hash<EdgeId>{}(edge_) ^ 0x20;
    case Kind::kPath:
      return std::hash<PathId>{}(path_->id) ^ 0x30;
    case Kind::kValues:
      return values_.Hash() ^ 0x40;
    case Kind::kNodeList: {
      size_t h = 0x50;
      for (NodeId n : nodes_) h = h * 31 + std::hash<NodeId>{}(n);
      return h;
    }
    case Kind::kEdgeList: {
      size_t h = 0x60;
      for (EdgeId e : edges_) h = h * 31 + std::hash<EdgeId>{}(e);
      return h;
    }
  }
  return 0;
}

std::string Datum::ToString() const {
  switch (kind_) {
    case Kind::kUnbound:
      return "⊥";
    case Kind::kNode:
      return gcore::ToString(node_);
    case Kind::kEdge:
      return gcore::ToString(edge_);
    case Kind::kPath:
      return gcore::ToString(path_->id);
    case Kind::kValues:
      return values_.ToString();
    case Kind::kNodeList: {
      std::string out = "[";
      for (size_t i = 0; i < nodes_.size(); ++i) {
        if (i > 0) out += ", ";
        out += gcore::ToString(nodes_[i]);
      }
      return out + "]";
    }
    case Kind::kEdgeList: {
      std::string out = "[";
      for (size_t i = 0; i < edges_.size(); ++i) {
        if (i > 0) out += ", ";
        out += gcore::ToString(edges_[i]);
      }
      return out + "]";
    }
  }
  return "?";
}

BindingTable BindingTable::Unit() {
  BindingTable t;
  t.rows_.emplace_back();
  return t;
}

size_t BindingTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return i;
  }
  return kNpos;
}

size_t BindingTable::AddColumn(const std::string& name) {
  const size_t existing = ColumnIndex(name);
  if (existing != kNpos) return existing;
  columns_.push_back(name);
  for (auto& row : rows_) row.emplace_back();
  return columns_.size() - 1;
}

Status BindingTable::AddRow(BindingRow row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "binding row has " + std::to_string(row.size()) +
        " entries, table has " + std::to_string(columns_.size()) +
        " columns");
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

const Datum& BindingTable::Get(size_t row, const std::string& var) const {
  const size_t col = ColumnIndex(var);
  return col == kNpos ? kUnboundDatum : rows_[row][col];
}

size_t HashRow(const BindingRow& row) {
  size_t h = 0;
  for (const Datum& d : row) h = HashCombine(h, d.Hash());
  return h;
}

void BindingTable::Deduplicate() {
  // Index-based in-place dedup: bucket kept rows by hash and compact
  // forward with moves. Buckets store *compacted* positions, which are
  // always ≤ the current read position, so every index they reference
  // holds a live kept row — no pointer stability to reason about.
  std::unordered_map<size_t, std::vector<size_t>> buckets;
  buckets.reserve(rows_.size());
  size_t out = 0;
  for (size_t i = 0; i < rows_.size(); ++i) {
    auto& bucket = buckets[HashRow(rows_[i])];
    bool dup = false;
    for (size_t j : bucket) {
      if (rows_[j] == rows_[i]) {
        dup = true;
        break;
      }
    }
    if (dup) continue;
    if (out != i) rows_[out] = std::move(rows_[i]);
    bucket.push_back(out);
    ++out;
  }
  rows_.resize(out);
}

RowIndexSet::RowIndexSet() : slots_(64, {0, 0}) {}

void RowIndexSet::Reserve(size_t entries) {
  while (slots_.size() * 7 < entries * 10) Grow();
}

void RowIndexSet::Grow() {
  std::vector<std::pair<size_t, size_t>> old = std::move(slots_);
  slots_.assign(old.size() * 2, {0, 0});
  const size_t mask = slots_.size() - 1;
  for (const auto& slot : old) {
    if (slot.second == 0) continue;
    size_t pos = slot.first & mask;
    while (slots_[pos].second != 0) pos = (pos + 1) & mask;
    slots_[pos] = slot;
  }
}

RowDedupSink::RowDedupSink(BindingTable* out) : out_(out) {
  seen_.Reserve(out->NumRows() + 1);
  for (size_t i = 0; i < out->NumRows(); ++i) {
    // Existing rows are indexed as-is (no dedup among them).
    seen_.InsertIfNew(HashRow(out->Row(i)), i, [](size_t) { return false; });
  }
}

bool RowDedupSink::Insert(BindingRow row, size_t hash) {
  const bool fresh = seen_.InsertIfNew(hash, out_->NumRows(), [&](size_t i) {
    return out_->Row(i) == row;
  });
  if (!fresh) return false;
  Status st = out_->AddRow(std::move(row));
  (void)st;
  return true;
}

void BindingTable::SetColumnGraph(const std::string& var,
                                  const std::string& graph) {
  if (graph.empty()) return;
  column_graphs_[var] = graph;
}

const std::string& BindingTable::ColumnGraph(const std::string& var) const {
  auto it = column_graphs_.find(var);
  return it == column_graphs_.end() ? kEmptyString : it->second;
}

std::string BindingTable::ToString() const {
  std::ostringstream out;
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (c > 0) out << " | ";
    out << columns_[c];
  }
  out << "\n";
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << " | ";
      out << row[c].ToString();
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace gcore
