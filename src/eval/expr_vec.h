// Vectorized expression kernels: an Expr tree compiled once per
// (schema, snapshot) into a small program of typed batch kernels over
// columnar binding chunks.
//
// The row-at-a-time ExprEvaluator (expr_eval.h) stays the executable
// spec; a VecProgram is an *optimization* of it, pinned byte-identical
// by tests/eval/expr_vec_test.cc. Kernels operate on compact cells —
// one tag byte plus a 64-bit slot — instead of materialized ValueSets:
//
//   * singleton scalars (null/bool/int/double/date) are encoded inline
//     (dates packed as year/month/day so non-calendar literals survive);
//   * strings are string_views into the snapshot pool / AST literals
//     (property strings gathered straight from GraphSnapshot columns);
//   * multi-valued overflow cells keep a pointer to the stored ValueSet;
//   * nodes/edges carry their raw id (property gathers resolve dense
//     indices against the snapshot per row, with column pointers bound
//     once at compile time).
//
// Kernels never construct a Status: any row whose evaluation could
// error (type errors, division by zero, path-valued operands) is tagged
// as a fallback row and replayed through the row evaluator in ascending
// row order, so the first error surfaced — and every non-error result —
// matches the serial path exactly. AND/OR evaluate their right side
// only on the selection that survived the left side (short-circuiting
// as a selection-vector gather), which also reproduces the row path's
// error suppression.
//
// Compile() refuses (returns null) when any subtree needs the full
// evaluator (function calls, aggregates, index expressions, EXISTS,
// pattern predicates); callers then keep the row path. Programs are
// immutable after compilation and safe to share across threads; all
// per-call state lives in a stack-local scratch area.
#ifndef GCORE_EVAL_EXPR_VEC_H_
#define GCORE_EVAL_EXPR_VEC_H_

#include <functional>
#include <memory>
#include <vector>

#include "ast/expr.h"
#include "common/result.h"
#include "eval/binding.h"
#include "eval/expr_eval.h"
#include "graph/snapshot.h"

namespace gcore {

class VecProgram {
 public:
  /// Resolves the frozen snapshot of a graph at compile time (property
  /// gathers bind their PropertyColumn pointers once). The returned
  /// reference must outlive the program — Matcher's snapshot cache
  /// provides exactly that lifetime.
  using SnapshotFn =
      std::function<const GraphSnapshot&(const PathPropertyGraph&)>;

  /// Compiles `expr` against the column schema of `schema` (column
  /// indices and per-variable provenance graphs are resolved now, so
  /// every evaluated chunk must share that schema — same column names
  /// in the same order with the same provenance). Returns null when the
  /// expression contains a construct the kernels do not cover. `eval`
  /// supplies provenance resolution (ExprEvaluator::GraphFor);
  /// `snapshots` pins property columns. `expr` must outlive the program.
  static std::shared_ptr<const VecProgram> Compile(const Expr& expr,
                                                   const BindingTable& schema,
                                                   const ExprEvaluator& eval,
                                                   const SnapshotFn& snapshots);

  ~VecProgram();

  /// Predicate batch: appends (in order) the members of rows[0..n) that
  /// satisfy the expression to *keep. Rows the kernels cannot decide
  /// are replayed through eval.EvalPredicate as they are reached, so
  /// row-level errors surface for exactly the row — and in exactly the
  /// order — the serial filter loop would surface them.
  Status FilterRows(const BindingTable& table, const size_t* rows, size_t n,
                    const ExprEvaluator& eval, std::vector<size_t>* keep) const;

  /// Value batch: out[i] receives the expression's Datum for rows[i]
  /// and fallback[i] is 0; rows the kernels cannot decide leave out[i]
  /// unbound with fallback[i] = 1 — the caller replays those through
  /// ExprEvaluator::Eval in its own (row-major) order so multi-
  /// expression sites keep the serial error order. Both vectors are
  /// resized to n.
  void EvalValues(const BindingTable& table, const size_t* rows, size_t n,
                  std::vector<Datum>* out,
                  std::vector<uint8_t>* fallback) const;

  /// The compiled expression (callers replay fallback rows against it).
  const Expr& expr() const;

 private:
  struct Impl;

  VecProgram();

  std::unique_ptr<Impl> impl_;
};

}  // namespace gcore

#endif  // GCORE_EVAL_EXPR_VEC_H_
