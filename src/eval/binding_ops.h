// The binding-set algebra of Appendix A.1:
//
//   Ω1 ∪ Ω2   union
//   Ω1 ⋈ Ω2   natural join over compatible bindings
//   Ω1 ⋉ Ω2   semijoin (filter Ω1 by compatibility with Ω2)
//   Ω1 ∖ Ω2   anti-semijoin
//   Ω1 ⟕ Ω2   left outer join = (Ω1 ⋈ Ω2) ∪ (Ω1 ∖ Ω2)
//
// Compatibility: µ1 ∼ µ2 iff they agree on every variable bound in both.
// An unbound entry (variable outside dom(µ)) is compatible with anything.
#ifndef GCORE_EVAL_BINDING_OPS_H_
#define GCORE_EVAL_BINDING_OPS_H_

#include <memory>

#include "eval/binding.h"

namespace gcore {

/// Ω1 ∪ Ω2 over the merged schema. Duplicate elimination is fused into
/// output construction (RowDedupSink) — the result is a set without a
/// second pass.
BindingTable TableUnion(const BindingTable& a, const BindingTable& b);

/// Ω1 ⋈ Ω2: one output row µ1 ∪ µ2 per compatible pair. Dedup is fused
/// into output construction: each merged row is hashed once, while hot,
/// and appended only if new — duplicates are never materialized and the
/// whole-table rehash of the old trailing Deduplicate() is gone.
BindingTable TableJoin(const BindingTable& a, const BindingTable& b);

/// Ω1 ⋈ Ω2 with a hash-partitioned build and a morsel-parallel probe:
/// build rows are partitioned by shared-column hash, probe morsels run
/// on `parallelism` worker threads each with its own seen-set, and the
/// per-morsel fragments are merged in probe order re-using the hashes
/// computed by the workers. Output rows *and their order* are identical
/// to TableJoin for every parallelism value (falls back to the serial
/// fused path for small inputs, parallelism <= 1, or probe rows with
/// unbound shared columns, whose candidate enumeration order is
/// index-dependent). `morsel_rows` sets the probe-morsel granularity
/// (0 = default; the executor threads ExecContext::morsel_size through
/// so tests can force the partitioned path on tiny inputs).
BindingTable TableJoinParallel(const BindingTable& a, const BindingTable& b,
                               size_t parallelism, size_t morsel_rows = 0);

/// Ω1 ⋈ Ω2 computed with the build/probe roles reversed — build over Ω1,
/// probe Ω2 — and the result re-merged into the canonical Ω1-first column
/// order of TableJoin(a, b), with identical schema and provenance. The
/// output *set* equals TableJoin(a, b); only row order (probe order of b)
/// differs. The planner requests this via PlanNode::swap_build when
/// statistics predict the default build side (b) dwarfs a.
BindingTable TableJoinSwapBuild(const BindingTable& a, const BindingTable& b,
                                size_t parallelism, size_t morsel_rows = 0);

/// Streaming probe side of Ω1 ⋈ Ω2: the build table is indexed once up
/// front, then probe chunks are pushed in arrival order — the hash join
/// no longer drains its probe input, so probing overlaps the upstream
/// pipeline that is still producing it. Dedup state spans chunks, so the
/// result is pinned byte-identical (rows *and* order) to draining the
/// probe side and calling TableJoinParallel(probe, build) — or, with
/// `swap_output`, to TableJoinSwapBuild(build, probe): Finish() re-merges
/// the probe-first columns into the canonical build-first schema.
class StreamingJoinProbe {
 public:
  StreamingJoinProbe(BindingTable build, bool swap_output);
  ~StreamingJoinProbe();
  StreamingJoinProbe(const StreamingJoinProbe&) = delete;
  StreamingJoinProbe& operator=(const StreamingJoinProbe&) = delete;

  /// Joins one probe chunk against the build table. All chunks must share
  /// one schema (they come from one operator); the first chunk fixes the
  /// output schema exactly as draining would.
  void Probe(const BindingTable& chunk);
  /// The joined table. No chunks pushed behaves as an empty probe input.
  BindingTable Finish();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Ω1 ⟕ Ω2 = (Ω1 ⋈ Ω2) ∪ (Ω1 ∖ Ω2) with a morsel-parallel probe that
/// computes both sides in one pass (rows matching nothing during the
/// join probe are exactly the ∖ side) — OPTIONAL blocks stop serializing
/// the pipeline. Byte-identical to TableLeftOuterJoin at every
/// parallelism.
BindingTable TableLeftOuterJoinParallel(const BindingTable& a,
                                        const BindingTable& b,
                                        size_t parallelism,
                                        size_t morsel_rows = 0);

/// Ω1 ⋉ Ω2: rows of Ω1 with at least one compatible row in Ω2.
BindingTable TableSemijoin(const BindingTable& a, const BindingTable& b);

/// Ω1 ∖ Ω2: rows of Ω1 with no compatible row in Ω2.
BindingTable TableAntijoin(const BindingTable& a, const BindingTable& b);

/// Ω1 ⟕ Ω2.
BindingTable TableLeftOuterJoin(const BindingTable& a, const BindingTable& b);

}  // namespace gcore

#endif  // GCORE_EVAL_BINDING_OPS_H_
