// The binding-set algebra of Appendix A.1:
//
//   Ω1 ∪ Ω2   union
//   Ω1 ⋈ Ω2   natural join over compatible bindings
//   Ω1 ⋉ Ω2   semijoin (filter Ω1 by compatibility with Ω2)
//   Ω1 ∖ Ω2   anti-semijoin
//   Ω1 ⟕ Ω2   left outer join = (Ω1 ⋈ Ω2) ∪ (Ω1 ∖ Ω2)
//
// Compatibility: µ1 ∼ µ2 iff they agree on every variable bound in both.
// An unbound entry (variable outside dom(µ)) is compatible with anything.
#ifndef GCORE_EVAL_BINDING_OPS_H_
#define GCORE_EVAL_BINDING_OPS_H_

#include "eval/binding.h"

namespace gcore {

/// Ω1 ∪ Ω2 over the merged schema.
BindingTable TableUnion(const BindingTable& a, const BindingTable& b);

/// Ω1 ⋈ Ω2: one output row µ1 ∪ µ2 per compatible pair.
BindingTable TableJoin(const BindingTable& a, const BindingTable& b);

/// Ω1 ⋉ Ω2: rows of Ω1 with at least one compatible row in Ω2.
BindingTable TableSemijoin(const BindingTable& a, const BindingTable& b);

/// Ω1 ∖ Ω2: rows of Ω1 with no compatible row in Ω2.
BindingTable TableAntijoin(const BindingTable& a, const BindingTable& b);

/// Ω1 ⟕ Ω2.
BindingTable TableLeftOuterJoin(const BindingTable& a, const BindingTable& b);

}  // namespace gcore

#endif  // GCORE_EVAL_BINDING_OPS_H_
