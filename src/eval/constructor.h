// The CONSTRUCT evaluator: Appendix A.3.
//
// Takes the binding set Ω produced by MATCH plus the input graph(s) and
// builds the result PPG:
//   * bound object variables keep their identities, and their labels and
//     properties are copied from the graph they were matched on;
//   * unbound construct variables are instantiated once per group — by the
//     explicit GROUP list, or by node identity / (source, destination)
//     identity by default — through a skolem function new(x, Ω'(Γ)) shared
//     across the whole clause so repeated occurrences of a variable refer
//     to the same new object;
//   * property assignments ({k := ξ} and SET x.k := ξ) may aggregate over
//     the rows of the group (COUNT(*) etc.);
//   * WHEN conditions suppress construction; conditions over assigned
//     properties (line 68: WHEN e.score > 0) are applied per group after
//     property computation;
//   * stored-path constructs (@p) materialize the bound walk and its path
//     object; plain path constructs project the walk's nodes and edges.
#ifndef GCORE_EVAL_CONSTRUCTOR_H_
#define GCORE_EVAL_CONSTRUCTOR_H_

#include <map>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "eval/binding.h"
#include "eval/expr_eval.h"
#include "graph/catalog.h"

namespace gcore {

struct ConstructorContext {
  GraphCatalog* catalog = nullptr;
  std::string default_graph;
  ExprEvaluator::ExistsCallback exists_cb;
};

class Constructor {
 public:
  explicit Constructor(ConstructorContext ctx);

  /// ⟦CONSTRUCT f⟧ over the bindings Ω.
  Result<PathPropertyGraph> EvalConstruct(const ConstructClause& construct,
                                          const BindingTable& bindings);

 private:
  struct ItemState;

  Result<PathPropertyGraph> EvalItem(const ConstructItem& item,
                                     const BindingTable& bindings);

  ConstructorContext ctx_;

  /// Clause-level skolem memory: (construct var, group key) -> identity.
  std::map<std::pair<std::string, std::string>, NodeId> node_skolems_;
  std::map<std::pair<std::string, std::string>, EdgeId> edge_skolems_;
  /// Clause-level grouping: a variable's GROUP list is declared at one
  /// occurrence and shared by all others (line 79 of the paper writes
  /// `(cust)-[:bought]->(prod)` after declaring GROUP on cust/prod).
  std::map<std::string, const std::vector<std::unique_ptr<Expr>>*>
      clause_groups_;
};

}  // namespace gcore

#endif  // GCORE_EVAL_CONSTRUCTOR_H_
