#include "eval/constructor.h"

#include <algorithm>
#include <optional>
#include <set>
#include <unordered_map>

#include "graph/graph_ops.h"

namespace gcore {

namespace {

/// Canonical, collision-free serialization of a datum for group keys.
std::string DatumKey(const Datum& d) {
  switch (d.kind()) {
    case Datum::Kind::kUnbound:
      return "U";
    case Datum::Kind::kNode:
      return "N" + std::to_string(d.node().value());
    case Datum::Kind::kEdge:
      return "E" + std::to_string(d.edge().value());
    case Datum::Kind::kPath:
      return "P" + std::to_string(d.path().id.value());
    case Datum::Kind::kValues: {
      std::string key = "V";
      for (const Value& v : d.values()) {
        key += std::to_string(static_cast<int>(v.type()));
        key += ":";
        key += v.ToString();
        key += "|";
      }
      return key;
    }
    case Datum::Kind::kNodeList: {
      std::string key = "NL";
      for (NodeId n : d.node_list()) key += std::to_string(n.value()) + ",";
      return key;
    }
    case Datum::Kind::kEdgeList: {
      std::string key = "EL";
      for (EdgeId e : d.edge_list()) key += std::to_string(e.value()) + ",";
      return key;
    }
  }
  return "?";
}

/// All labels mentioned by construct-side label groups (flattened: the
/// construct attaches every listed label).
std::vector<std::string> FlattenLabels(
    const std::vector<std::vector<std::string>>& groups) {
  std::vector<std::string> out;
  for (const auto& g : groups) {
    for (const auto& l : g) out.push_back(l);
  }
  return out;
}

struct GroupInfo {
  std::vector<size_t> rows;
};

}  // namespace

Constructor::Constructor(ConstructorContext ctx) : ctx_(std::move(ctx)) {}

// Per-item construction state and logic.
struct Constructor::ItemState {
  Constructor* owner;
  const ConstructItem& item;
  const BindingTable& bindings;
  std::vector<size_t> rows;  // binding rows participating (post pre-filter)

  // Effective (possibly generated) names per chain element.
  struct NodeCtor {
    const NodePattern* pattern;
    std::string name;
  };
  struct EdgeCtor {
    const EdgePattern* pattern;
    std::string name;
    size_t from_ctor;  // index into node_ctors
    size_t to_ctor;
  };
  struct PathCtor {
    const PathPattern* pattern;
    std::string name;
    size_t from_ctor;
    size_t to_ctor;
  };
  std::vector<NodeCtor> node_ctors;
  std::vector<EdgeCtor> edge_ctors;
  std::vector<PathCtor> path_ctors;

  // Build products.
  struct NodeBuild {
    NodeId id;
    LabelSet labels;
    PropertyMap props;
    std::vector<size_t> rows;
    std::string var;
    bool dropped = false;
  };
  struct EdgeBuild {
    EdgeId id;
    NodeId src;
    NodeId dst;
    LabelSet labels;
    PropertyMap props;
    std::vector<size_t> rows;
    std::string var;
    bool dropped = false;
  };
  struct PathBuild {
    PathId id;
    bool make_object = false;  // @p vs plain projection
    PathBody body;
    std::vector<NodeId> extra_nodes;  // projection mode (ALL)
    std::vector<EdgeId> extra_edges;
    LabelSet labels;
    PropertyMap props;
    std::vector<size_t> rows;
    std::string var;
    const PathPropertyGraph* source;  // λ/σ source for body elements
    bool dropped = false;
  };
  std::vector<NodeBuild> node_builds;
  std::vector<EdgeBuild> edge_builds;
  std::vector<PathBuild> path_builds;

  // Per node-constructor: row -> assigned node id.
  std::vector<std::unordered_map<size_t, NodeId>> node_assign;

  ItemState(Constructor* owner, const ConstructItem& item,
            const BindingTable& bindings)
      : owner(owner), item(item), bindings(bindings) {}

  IdAllocator* ids() { return owner->ctx_.catalog->ids(); }

  const PathPropertyGraph* ProvenanceGraph(const std::string& var) const {
    const std::string& name = bindings.ColumnGraph(var);
    const std::string& resolved =
        name.empty() ? owner->ctx_.default_graph : name;
    if (!resolved.empty()) {
      auto g = owner->ctx_.catalog->Lookup(resolved);
      if (g.ok()) return *g;
    }
    return nullptr;
  }

  ExprEvaluator MakeEvaluator(const PathPropertyGraph* graph) const {
    ExprEvaluator eval(graph, owner->ctx_.catalog);
    if (owner->ctx_.exists_cb) {
      eval.set_exists_callback(owner->ctx_.exists_cb);
    }
    return eval;
  }

  // --- setup -----------------------------------------------------------------

  void CollectConstructors() {
    int anon = 0;
    auto name_of = [&](const std::string& var) {
      return var.empty() ? "__ctor" + std::to_string(anon++) : var;
    };
    const GraphPattern& chain = *item.pattern;
    node_ctors.push_back({&chain.start, name_of(chain.start.var)});
    size_t prev = 0;
    for (const auto& hop : chain.hops) {
      node_ctors.push_back({&hop.to, name_of(hop.to.var)});
      const size_t to_idx = node_ctors.size() - 1;
      if (hop.kind == PatternHop::Kind::kEdge) {
        edge_ctors.push_back(
            {&hop.edge, name_of(hop.edge.var), prev, to_idx});
      } else {
        path_ctors.push_back(
            {&hop.path, name_of(hop.path.var), prev, to_idx});
      }
      prev = to_idx;
    }
    node_assign.resize(node_ctors.size());
  }

  /// Names of variables this item creates or assigns properties to; WHEN
  /// conditions over these must be evaluated after construction.
  std::set<std::string> ConstructDefinedVars() const {
    std::set<std::string> defined;
    auto add_assigned = [&](const std::vector<PropPattern>& props,
                            const std::string& name) {
      for (const auto& p : props) {
        if (p.mode == PropPattern::Mode::kAssign) {
          defined.insert(name);
          return;
        }
      }
    };
    for (const auto& nc : node_ctors) {
      if (!bindings.HasColumn(nc.name) || nc.pattern->is_copy) {
        defined.insert(nc.name);
      }
      add_assigned(nc.pattern->props, nc.name);
    }
    for (const auto& ec : edge_ctors) {
      if (!bindings.HasColumn(ec.name) || ec.pattern->is_copy) {
        defined.insert(ec.name);
      }
      add_assigned(ec.pattern->props, ec.name);
    }
    for (const auto& pc : path_ctors) {
      add_assigned(pc.pattern->props, pc.name);
    }
    for (const auto& s : item.sets) defined.insert(s.var);
    return defined;
  }

  std::string FullRowKey(size_t row) const {
    std::string key;
    for (size_t c = 0; c < bindings.NumColumns(); ++c) {
      key += DatumKey(bindings.At(row, c));
      key += ";";
    }
    return key;
  }

  Result<std::string> GroupExprKey(
      const std::vector<std::unique_ptr<Expr>>& group_by, size_t row) const {
    ExprEvaluator eval = MakeEvaluator(nullptr);
    std::string key;
    for (const auto& g : group_by) {
      GCORE_ASSIGN_OR_RETURN(Datum d, eval.Eval(*g, bindings, row));
      key += DatumKey(d);
      key += ";";
    }
    return key;
  }

  // --- property/label application ---------------------------------------------

  Status ApplyAssignments(const std::vector<PropPattern>& props,
                          const std::vector<size_t>& group_rows,
                          const PathPropertyGraph* eval_graph,
                          PropertyMap* out) const {
    ExprEvaluator eval = MakeEvaluator(eval_graph);
    for (const auto& p : props) {
      if (p.mode != PropPattern::Mode::kAssign) {
        return Status::BindError(
            "MATCH-style property pattern in CONSTRUCT; use ':='");
      }
      GCORE_ASSIGN_OR_RETURN(Datum d,
                             eval.EvalWithGroup(*p.value, bindings,
                                                group_rows));
      if (d.IsUnbound()) continue;
      if (d.kind() != Datum::Kind::kValues) {
        return Status::TypeError("property assignment '" + p.key +
                                 "' did not evaluate to a literal");
      }
      out->Set(p.key, d.values());
    }
    return Status::OK();
  }

  // --- phase 1: nodes -----------------------------------------------------------

  Status BuildNodes() {
    for (size_t ci = 0; ci < node_ctors.size(); ++ci) {
      const NodeCtor& nc = node_ctors[ci];
      const NodePattern& pat = *nc.pattern;
      const bool column_bound = bindings.HasColumn(nc.name);
      const bool identity_bound = column_bound && !pat.is_copy;

      std::map<std::string, GroupInfo> groups;
      for (size_t r : rows) {
        std::string key;
        if (identity_bound || pat.is_copy) {
          const Datum& d = bindings.Get(r, nc.name);
          if (d.IsUnbound()) continue;  // Ω'(x) undefined -> G∅ contribution
          if (d.kind() != Datum::Kind::kNode) {
            return Status::TypeError("variable '" + nc.name +
                                     "' is not a node in CONSTRUCT");
          }
          key = DatumKey(d);
        } else if (!pat.group_by.empty()) {
          GCORE_ASSIGN_OR_RETURN(key, GroupExprKey(pat.group_by, r));
        } else if (auto cg = owner->clause_groups_.find(nc.name);
                   cg != owner->clause_groups_.end()) {
          // Grouping declared at another occurrence of this variable.
          GCORE_ASSIGN_OR_RETURN(key, GroupExprKey(*cg->second, r));
        } else {
          key = FullRowKey(r);
        }
        groups[key].rows.push_back(r);
      }

      for (auto& [key, info] : groups) {
        NodeBuild build;
        build.var = nc.name;
        build.rows = info.rows;
        const size_t rep = info.rows.front();

        const PathPropertyGraph* source = nullptr;
        if (identity_bound) {
          build.id = bindings.Get(rep, nc.name).node();
          source = ProvenanceGraph(nc.name);
        } else if (pat.is_copy) {
          auto skolem_key = std::make_pair(nc.name + "(copy)", key);
          auto it = owner->node_skolems_.find(skolem_key);
          if (it == owner->node_skolems_.end()) {
            it = owner->node_skolems_
                     .emplace(skolem_key, ids()->NextNode())
                     .first;
          }
          build.id = it->second;
          source = ProvenanceGraph(nc.name);
        } else {
          auto skolem_key = std::make_pair(nc.name, key);
          auto it = owner->node_skolems_.find(skolem_key);
          if (it == owner->node_skolems_.end()) {
            it = owner->node_skolems_
                     .emplace(skolem_key, ids()->NextNode())
                     .first;
          }
          build.id = it->second;
        }

        // λ|v ∪ λS: existing labels/properties of the source object first.
        if (source != nullptr) {
          const NodeId src_id = bindings.Get(rep, nc.name).node();
          if (source->HasNode(src_id)) {
            build.labels = source->Labels(src_id);
            build.props = source->Properties(src_id);
          }
        }
        for (const auto& l : FlattenLabels(pat.label_groups)) {
          build.labels.Insert(l);
        }
        GCORE_RETURN_NOT_OK(ApplyAssignments(pat.props, info.rows,
                                             source, &build.props));

        for (size_t r : info.rows) node_assign[ci][r] = build.id;
        node_builds.push_back(std::move(build));
      }
    }
    return Status::OK();
  }

  // --- phase 2: edges -------------------------------------------------------------

  Status BuildEdges() {
    for (const EdgeCtor& ec : edge_ctors) {
      const EdgePattern& pat = *ec.pattern;
      const bool column_bound = bindings.HasColumn(ec.name);
      const bool identity_bound = column_bound && !pat.is_copy;

      struct EdgeGroup {
        std::vector<size_t> rows;
        NodeId src;
        NodeId dst;
      };
      std::map<std::string, EdgeGroup> groups;

      for (size_t r : rows) {
        auto from_it = node_assign[ec.from_ctor].find(r);
        auto to_it = node_assign[ec.to_ctor].find(r);
        if (from_it == node_assign[ec.from_ctor].end() ||
            to_it == node_assign[ec.to_ctor].end()) {
          continue;  // dangling-edge prevention
        }
        // Arrow orientation decides ρ.
        NodeId src = from_it->second;
        NodeId dst = to_it->second;
        if (pat.direction == EdgePattern::Direction::kLeft) {
          std::swap(src, dst);
        }

        std::string key;
        if (identity_bound) {
          const Datum& d = bindings.Get(r, ec.name);
          if (d.IsUnbound()) continue;
          if (d.kind() != Datum::Kind::kEdge) {
            return Status::TypeError("variable '" + ec.name +
                                     "' is not an edge in CONSTRUCT");
          }
          // Re-using a bound edge requires its endpoints to be exactly the
          // endpoint bindings (Section 3: changing them violates identity).
          const PathPropertyGraph* source = ProvenanceGraph(ec.name);
          if (source != nullptr && source->HasEdge(d.edge())) {
            const auto [s, t] = source->EdgeEndpoints(d.edge());
            if (s != src || t != dst) {
              return Status::BindError(
                  "bound edge '" + ec.name +
                  "' constructed with different endpoints (identity "
                  "violation); use -[=" +
                  ec.name + "]- to copy instead");
            }
          }
          key = DatumKey(d);
        } else {
          key = "S" + std::to_string(src.value()) + ">D" +
                std::to_string(dst.value()) + ";";
          if (!pat.group_by.empty()) {
            GCORE_ASSIGN_OR_RETURN(std::string extra,
                                   GroupExprKey(pat.group_by, r));
            key += extra;
          }
          if (pat.is_copy) {
            key += "|copy:" + DatumKey(bindings.Get(r, ec.name));
          }
        }
        auto& group = groups[key];
        group.rows.push_back(r);
        group.src = src;
        group.dst = dst;
      }

      for (auto& [key, group] : groups) {
        EdgeBuild build;
        build.var = ec.name;
        build.rows = group.rows;
        build.src = group.src;
        build.dst = group.dst;
        const size_t rep = group.rows.front();

        const PathPropertyGraph* source = nullptr;
        if (identity_bound) {
          build.id = bindings.Get(rep, ec.name).edge();
          source = ProvenanceGraph(ec.name);
        } else {
          auto skolem_key = std::make_pair("[e]" + ec.name, key);
          auto it = owner->edge_skolems_.find(skolem_key);
          if (it == owner->edge_skolems_.end()) {
            it = owner->edge_skolems_
                     .emplace(skolem_key, ids()->NextEdge())
                     .first;
          }
          build.id = it->second;
          if (pat.is_copy) source = ProvenanceGraph(ec.name);
        }

        if (source != nullptr) {
          const Datum& d = bindings.Get(rep, ec.name);
          if (d.kind() == Datum::Kind::kEdge && source->HasEdge(d.edge())) {
            build.labels = source->Labels(d.edge());
            build.props = source->Properties(d.edge());
          }
        }
        for (const auto& l : FlattenLabels(pat.label_groups)) {
          build.labels.Insert(l);
        }
        GCORE_RETURN_NOT_OK(ApplyAssignments(pat.props, group.rows,
                                             source, &build.props));
        edge_builds.push_back(std::move(build));
      }
    }
    return Status::OK();
  }

  // --- phase 3: paths --------------------------------------------------------------

  Status BuildPaths() {
    for (const PathCtor& pc : path_ctors) {
      const PathPattern& pat = *pc.pattern;
      if (!bindings.HasColumn(pc.name)) {
        return Status::BindError(
            "path construct '/" + pc.name +
            "/' requires the variable to be bound in MATCH");
      }

      std::map<std::string, GroupInfo> groups;
      for (size_t r : rows) {
        const Datum& d = bindings.Get(r, pc.name);
        if (d.IsUnbound()) continue;
        if (d.kind() != Datum::Kind::kPath) {
          return Status::TypeError("variable '" + pc.name +
                                   "' is not a path in CONSTRUCT");
        }
        groups[DatumKey(d)].rows.push_back(r);
      }

      for (auto& [key, info] : groups) {
        const size_t rep = info.rows.front();
        const PathValue& pv = bindings.Get(rep, pc.name).path();

        PathBuild build;
        build.var = pc.name;
        build.rows = info.rows;
        build.make_object = pat.stored;
        build.source = ProvenanceGraph(pc.name);
        if (build.source == nullptr) {
          return Status::BindError(
              "cannot resolve source graph for path variable '" + pc.name +
              "'");
        }

        if (pv.projection.has_value()) {
          if (pat.stored) {
            return Status::Unsupported(
                "storing ALL-paths bindings (@" + pc.name +
                ") is intractable; bind the variable without @ to project "
                "the paths into a graph");
          }
          build.extra_nodes = pv.projection->first;
          build.extra_edges = pv.projection->second;
        } else {
          build.body = pv.body;
        }

        if (pat.stored) {
          build.id = pv.id;
          if (pv.from_graph && build.source->HasPath(pv.id)) {
            build.labels = build.source->Labels(pv.id);
            build.props = build.source->Properties(pv.id);
          }
          for (const auto& l : FlattenLabels(pat.label_groups)) {
            build.labels.Insert(l);
          }
          GCORE_RETURN_NOT_OK(ApplyAssignments(pat.props, info.rows,
                                               build.source, &build.props));
        }
        path_builds.push_back(std::move(build));
      }
    }
    return Status::OK();
  }

  // --- SET / REMOVE statements -----------------------------------------------------

  Status ApplySetStatements() {
    for (const auto& stmt : item.sets) {
      bool found = false;
      for (auto& build : node_builds) {
        if (build.var != stmt.var) continue;
        found = true;
        GCORE_RETURN_NOT_OK(ApplyOneSet(stmt, build.rows, &build.labels,
                                        &build.props));
      }
      for (auto& build : edge_builds) {
        if (build.var != stmt.var) continue;
        found = true;
        GCORE_RETURN_NOT_OK(ApplyOneSet(stmt, build.rows, &build.labels,
                                        &build.props));
      }
      for (auto& build : path_builds) {
        if (build.var != stmt.var) continue;
        found = true;
        GCORE_RETURN_NOT_OK(ApplyOneSet(stmt, build.rows, &build.labels,
                                        &build.props));
      }
      if (!found) {
        return Status::BindError("SET/REMOVE on '" + stmt.var +
                                 "' which is not constructed by this item");
      }
    }
    return Status::OK();
  }

  Status ApplyOneSet(const SetStatement& stmt,
                     const std::vector<size_t>& group_rows, LabelSet* labels,
                     PropertyMap* props) const {
    switch (stmt.kind) {
      case SetStatement::Kind::kSetProperty: {
        ExprEvaluator eval = MakeEvaluator(nullptr);
        GCORE_ASSIGN_OR_RETURN(
            Datum d, eval.EvalWithGroup(*stmt.value, bindings, group_rows));
        if (d.kind() != Datum::Kind::kValues) {
          return Status::TypeError("SET " + stmt.var + "." + stmt.key +
                                   " did not evaluate to a literal");
        }
        props->Set(stmt.key, d.values());
        return Status::OK();
      }
      case SetStatement::Kind::kSetLabel:
        labels->Insert(stmt.label);
        return Status::OK();
      case SetStatement::Kind::kCopy: {
        const size_t rep = group_rows.front();
        const Datum& from = bindings.Get(rep, stmt.from_var);
        const PathPropertyGraph* source = ProvenanceGraph(stmt.from_var);
        if (source == nullptr || from.IsUnbound()) return Status::OK();
        const LabelSet src_labels = DatumLabels(from, *source);
        labels->UnionWith(src_labels);
        switch (from.kind()) {
          case Datum::Kind::kNode:
            props->UnionWith(source->Properties(from.node()));
            break;
          case Datum::Kind::kEdge:
            props->UnionWith(source->Properties(from.edge()));
            break;
          case Datum::Kind::kPath:
            if (from.path().from_graph) {
              props->UnionWith(source->Properties(from.path().id));
            }
            break;
          default:
            break;
        }
        return Status::OK();
      }
      case SetStatement::Kind::kRemoveProperty:
        props->Remove(stmt.key);
        return Status::OK();
      case SetStatement::Kind::kRemoveLabel:
        labels->Remove(stmt.label);
        return Status::OK();
    }
    return Status::OK();
  }

  // --- WHEN (post-construction form) -------------------------------------------------

  Status ApplyPostWhen() {
    if (item.when == nullptr) return Status::OK();
    // Scratch graph with the constructed objects so property lookups on
    // construct variables see the assigned values.
    PathPropertyGraph scratch;
    for (const auto& b : node_builds) {
      scratch.AddNode(b.id);
      scratch.SetLabels(b.id, b.labels);
      scratch.SetProperties(b.id, b.props);
    }
    for (const auto& b : edge_builds) {
      scratch.AddNode(b.src);
      scratch.AddNode(b.dst);
      Status st = scratch.AddEdge(b.id, b.src, b.dst);
      (void)st;
      scratch.SetLabels(b.id, b.labels);
      scratch.SetProperties(b.id, b.props);
    }

    // Extended binding table: original columns plus construct variables.
    BindingTable extended(bindings.columns());
    for (const auto& [v, g] : bindings.column_graphs()) {
      extended.SetColumnGraph(v, g);
    }
    std::map<std::string, size_t> ctor_cols;
    for (const auto& b : node_builds) {
      if (ctor_cols.count(b.var) == 0 && !bindings.HasColumn(b.var)) {
        ctor_cols[b.var] = extended.AddColumn(b.var);
      }
    }
    for (const auto& b : edge_builds) {
      if (ctor_cols.count(b.var) == 0 && !bindings.HasColumn(b.var)) {
        ctor_cols[b.var] = extended.AddColumn(b.var);
      }
    }
    // Row index map original -> extended.
    std::unordered_map<size_t, size_t> row_map;
    for (size_t r : rows) {
      row_map[r] = extended.NumRows();
      extended.AppendRowFrom(bindings, r);
    }
    for (const auto& b : node_builds) {
      auto it = ctor_cols.find(b.var);
      if (it == ctor_cols.end()) continue;
      for (size_t r : b.rows) {
        extended.SetCell(row_map[r], it->second, Datum::OfNode(b.id));
      }
    }
    for (const auto& b : edge_builds) {
      auto it = ctor_cols.find(b.var);
      if (it == ctor_cols.end()) continue;
      for (size_t r : b.rows) {
        extended.SetCell(row_map[r], it->second, Datum::OfEdge(b.id));
      }
    }

    ExprEvaluator eval(&scratch, owner->ctx_.catalog);
    if (owner->ctx_.exists_cb) eval.set_exists_callback(owner->ctx_.exists_cb);

    auto group_passes = [&](const std::vector<size_t>& group_rows)
        -> Result<bool> {
      const size_t rep = row_map[group_rows.front()];
      return eval.EvalPredicate(*item.when, extended, rep);
    };

    for (auto& b : edge_builds) {
      GCORE_ASSIGN_OR_RETURN(bool keep, group_passes(b.rows));
      if (!keep) b.dropped = true;
    }
    for (auto& b : node_builds) {
      GCORE_ASSIGN_OR_RETURN(bool keep, group_passes(b.rows));
      if (!keep) {
        b.dropped = true;
        // Drop edges touching the dropped node (dangling prevention).
        for (auto& e : edge_builds) {
          if (e.src == b.id || e.dst == b.id) e.dropped = true;
        }
      }
    }
    for (auto& b : path_builds) {
      GCORE_ASSIGN_OR_RETURN(bool keep, group_passes(b.rows));
      if (!keep) b.dropped = true;
    }
    return Status::OK();
  }

  // --- assembly ----------------------------------------------------------------------

  /// Copies a node's λ/σ from `source` into `graph` if not already richer.
  static void ImportNode(const PathPropertyGraph& source, NodeId id,
                         PathPropertyGraph* graph) {
    graph->AddNode(id);
    if (source.HasNode(id)) {
      LabelSet labels = graph->Labels(id);
      labels.UnionWith(source.Labels(id));
      graph->SetLabels(id, std::move(labels));
      PropertyMap props = graph->Properties(id);
      props.UnionWith(source.Properties(id));
      graph->SetProperties(id, std::move(props));
    }
  }

  static void ImportEdge(const PathPropertyGraph& source, EdgeId id,
                         PathPropertyGraph* graph) {
    if (!source.HasEdge(id)) return;
    const auto [s, d] = source.EdgeEndpoints(id);
    ImportNode(source, s, graph);
    ImportNode(source, d, graph);
    Status st = graph->AddEdge(id, s, d);
    (void)st;
    LabelSet labels = graph->Labels(id);
    labels.UnionWith(source.Labels(id));
    graph->SetLabels(id, std::move(labels));
    PropertyMap props = graph->Properties(id);
    props.UnionWith(source.Properties(id));
    graph->SetProperties(id, std::move(props));
  }

  Result<PathPropertyGraph> Assemble() {
    PathPropertyGraph graph;
    for (const auto& b : node_builds) {
      if (b.dropped) continue;
      graph.AddNode(b.id);
      LabelSet labels = graph.Labels(b.id);
      labels.UnionWith(b.labels);
      graph.SetLabels(b.id, std::move(labels));
      PropertyMap props = graph.Properties(b.id);
      props.UnionWith(b.props);
      graph.SetProperties(b.id, std::move(props));
    }
    for (const auto& b : edge_builds) {
      if (b.dropped) continue;
      if (!graph.HasNode(b.src) || !graph.HasNode(b.dst)) continue;
      GCORE_RETURN_NOT_OK(graph.AddEdge(b.id, b.src, b.dst));
      LabelSet labels = graph.Labels(b.id);
      labels.UnionWith(b.labels);
      graph.SetLabels(b.id, std::move(labels));
      PropertyMap props = graph.Properties(b.id);
      props.UnionWith(b.props);
      graph.SetProperties(b.id, std::move(props));
    }
    for (const auto& b : path_builds) {
      if (b.dropped) continue;
      // Materialize the walk's nodes and edges with λ/σ from the source
      // graph.
      for (NodeId n : b.body.nodes) ImportNode(*b.source, n, &graph);
      for (EdgeId e : b.body.edges) ImportEdge(*b.source, e, &graph);
      for (NodeId n : b.extra_nodes) ImportNode(*b.source, n, &graph);
      for (EdgeId e : b.extra_edges) ImportEdge(*b.source, e, &graph);
      if (b.make_object) {
        GCORE_RETURN_NOT_OK(graph.AddPath(b.id, b.body));
        graph.SetLabels(b.id, b.labels);
        graph.SetProperties(b.id, b.props);
      }
    }
    return graph;
  }

  // --- driver ------------------------------------------------------------------------

  Result<PathPropertyGraph> Run() {
    CollectConstructors();

    rows.clear();
    rows.reserve(bindings.NumRows());
    for (size_t r = 0; r < bindings.NumRows(); ++r) rows.push_back(r);

    // WHEN over match-bound data only: pre-filter rows.
    bool post_when = false;
    if (item.when != nullptr) {
      std::set<std::string> defined = ConstructDefinedVars();
      std::vector<std::string> mentioned;
      item.when->CollectVariables(&mentioned);
      for (const auto& v : mentioned) {
        if (defined.count(v) > 0) {
          post_when = true;
          break;
        }
      }
      if (!post_when) {
        ExprEvaluator eval = MakeEvaluator(nullptr);
        std::vector<size_t> kept;
        for (size_t r : rows) {
          GCORE_ASSIGN_OR_RETURN(bool keep,
                                 eval.EvalPredicate(*item.when, bindings, r));
          if (keep) kept.push_back(r);
        }
        rows = std::move(kept);
      }
    }

    GCORE_RETURN_NOT_OK(BuildNodes());
    GCORE_RETURN_NOT_OK(BuildEdges());
    GCORE_RETURN_NOT_OK(BuildPaths());
    GCORE_RETURN_NOT_OK(ApplySetStatements());
    if (post_when) {
      GCORE_RETURN_NOT_OK(ApplyPostWhen());
    }
    return Assemble();
  }
};

Result<PathPropertyGraph> Constructor::EvalItem(const ConstructItem& item,
                                                const BindingTable& bindings) {
  if (!item.graph_ref.empty()) {
    GCORE_ASSIGN_OR_RETURN(const PathPropertyGraph* g,
                           ctx_.catalog->Lookup(item.graph_ref));
    return PathPropertyGraph(*g);
  }
  if (!item.pattern.has_value()) {
    return Status::BindError("construct item has neither pattern nor graph");
  }
  ItemState state(this, item, bindings);
  return state.Run();
}

Result<PathPropertyGraph> Constructor::EvalConstruct(
    const ConstructClause& construct, const BindingTable& bindings) {
  node_skolems_.clear();
  edge_skolems_.clear();
  clause_groups_.clear();
  // Collect explicit GROUP declarations per construct variable across the
  // whole clause so later bare occurrences reuse them.
  for (const auto& item : construct.items) {
    if (!item.pattern.has_value()) continue;
    auto record = [&](const std::string& var,
                      const std::vector<std::unique_ptr<Expr>>& group_by) {
      if (!var.empty() && !group_by.empty()) {
        clause_groups_.emplace(var, &group_by);
      }
    };
    record(item.pattern->start.var, item.pattern->start.group_by);
    for (const auto& hop : item.pattern->hops) {
      record(hop.to.var, hop.to.group_by);
      if (hop.kind == PatternHop::Kind::kEdge) {
        record(hop.edge.var, hop.edge.group_by);
      }
    }
  }
  PathPropertyGraph result;
  bool first = true;
  for (const auto& item : construct.items) {
    GCORE_ASSIGN_OR_RETURN(PathPropertyGraph piece, EvalItem(item, bindings));
    if (first) {
      result = std::move(piece);
      first = false;
    } else {
      result = GraphUnion(result, piece);
    }
  }
  return result;
}

}  // namespace gcore
