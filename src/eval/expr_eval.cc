#include "eval/expr_eval.h"

#include <cmath>

namespace gcore {

ExprEvaluator::ExprEvaluator(const PathPropertyGraph* default_graph,
                             const GraphCatalog* catalog)
    : default_graph_(default_graph), catalog_(catalog) {}

const PathPropertyGraph* ExprEvaluator::GraphFor(
    const BindingTable& table, const std::string& var) const {
  const std::string& provenance = table.ColumnGraph(var);
  if (!provenance.empty() && catalog_ != nullptr) {
    auto g = catalog_->Lookup(provenance);
    if (g.ok()) return *g;
  }
  return default_graph_;
}

ValueSet DatumProperty(const Datum& datum, const std::string& key,
                       const PathPropertyGraph& graph) {
  switch (datum.kind()) {
    case Datum::Kind::kNode:
      return graph.Property(datum.node(), key);
    case Datum::Kind::kEdge:
      return graph.Property(datum.edge(), key);
    case Datum::Kind::kPath: {
      const PathValue& p = datum.path();
      if (p.from_graph && graph.HasPath(p.id)) {
        const ValueSet& stored = graph.Property(p.id, key);
        if (!stored.empty()) return stored;
      }
      // Built-in virtual properties of computed paths.
      if (key == "cost") {
        if (p.cost == std::floor(p.cost)) {
          return ValueSet(Value::Int(static_cast<int64_t>(p.cost)));
        }
        return ValueSet(Value::Double(p.cost));
      }
      if (key == "length") {
        return ValueSet(Value::Int(static_cast<int64_t>(p.body.edges.size())));
      }
      return ValueSet();
    }
    default:
      return ValueSet();
  }
}

LabelSet DatumLabels(const Datum& datum, const PathPropertyGraph& graph) {
  switch (datum.kind()) {
    case Datum::Kind::kNode:
      return graph.Labels(datum.node());
    case Datum::Kind::kEdge:
      return graph.Labels(datum.edge());
    case Datum::Kind::kPath: {
      const PathValue& p = datum.path();
      if (p.from_graph && graph.HasPath(p.id)) return graph.Labels(p.id);
      return LabelSet();
    }
    default:
      return LabelSet();
  }
}

namespace {

/// Coerces a datum to its literal set; non-value datums yield ∅.
const ValueSet& AsValues(const Datum& d) {
  static const ValueSet kEmpty;
  return d.kind() == Datum::Kind::kValues ? d.values() : kEmpty;
}

bool IsNumericSingleton(const Datum& d) {
  return d.kind() == Datum::Kind::kValues && d.values().is_singleton() &&
         d.values().single().is_numeric();
}

Result<double> NumericOf(const Datum& d, const char* what) {
  if (!IsNumericSingleton(d)) {
    return Status::TypeError(std::string("expected a numeric value for ") +
                             what + ", got " + d.ToString());
  }
  return d.values().single().NumericAsDouble();
}

Datum NumericResult(double v, bool prefer_int) {
  if (prefer_int && v == std::floor(v) && std::abs(v) < 9.2e18) {
    return Datum::OfValue(Value::Int(static_cast<int64_t>(v)));
  }
  return Datum::OfValue(Value::Double(v));
}

}  // namespace

Result<bool> ExprEvaluator::Truthy(const Datum& datum) {
  if (datum.IsUnbound()) return false;
  if (datum.kind() != Datum::Kind::kValues) {
    return Status::TypeError("condition did not evaluate to a boolean: " +
                             datum.ToString());
  }
  const ValueSet& values = datum.values();
  if (values.empty()) return false;  // absent data is falsy
  if (values.is_singleton() && values.single().is_bool()) {
    return values.single().AsBool();
  }
  return Status::TypeError("condition did not evaluate to a boolean: " +
                           values.ToString());
}

Result<bool> ExprEvaluator::EvalPredicate(const Expr& expr,
                                          const BindingTable& table,
                                          size_t row) const {
  GCORE_ASSIGN_OR_RETURN(Datum d, Eval(expr, table, row));
  return Truthy(d);
}

Result<Datum> ExprEvaluator::Eval(const Expr& expr, const BindingTable& table,
                                  size_t row) const {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      if (expr.value.is_null()) return Datum::OfValues(ValueSet());
      return Datum::OfValue(expr.value);

    case Expr::Kind::kVariable:
      return table.Get(row, expr.var);

    case Expr::Kind::kProperty: {
      const Datum& object = table.Get(row, expr.var);
      if (object.IsUnbound()) return Datum::OfValues(ValueSet());
      // A value variable (e.g. from {k=v} unrolling or FROM table) has no
      // graph properties — but allow `o.col` on nothing only as ∅.
      const PathPropertyGraph* graph = GraphFor(table, expr.var);
      if (graph == nullptr) return Datum::OfValues(ValueSet());
      return Datum::OfValues(DatumProperty(object, expr.key, *graph));
    }

    case Expr::Kind::kLabelTest: {
      const Datum& object = table.Get(row, expr.var);
      if (object.IsUnbound()) return Datum::OfBool(false);
      const PathPropertyGraph* graph_for = GraphFor(table, expr.var);
      if (graph_for == nullptr) return Datum::OfBool(false);
      const LabelSet labels = DatumLabels(object, *graph_for);
      for (const auto& l : expr.labels) {
        if (labels.Contains(l)) return Datum::OfBool(true);
      }
      return Datum::OfBool(false);
    }

    case Expr::Kind::kUnary: {
      GCORE_ASSIGN_OR_RETURN(Datum arg, Eval(*expr.args[0], table, row));
      if (expr.unary_op == UnaryOp::kNot) {
        GCORE_ASSIGN_OR_RETURN(bool b, Truthy(arg));
        return Datum::OfBool(!b);
      }
      GCORE_ASSIGN_OR_RETURN(double v, NumericOf(arg, "unary minus"));
      const bool is_int = arg.values().single().is_int();
      return NumericResult(-v, is_int);
    }

    case Expr::Kind::kBinary:
      return EvalBinary(expr, table, row);

    case Expr::Kind::kFunction:
      return EvalFunction(expr, table, row);

    case Expr::Kind::kAggregate:
      return Status::EvaluationError(
          "aggregate used outside a grouping context: " + expr.ToString());

    case Expr::Kind::kIndex: {
      GCORE_ASSIGN_OR_RETURN(Datum base, Eval(*expr.args[0], table, row));
      GCORE_ASSIGN_OR_RETURN(Datum index, Eval(*expr.args[1], table, row));
      GCORE_ASSIGN_OR_RETURN(double idx_d, NumericOf(index, "index"));
      const int64_t i = static_cast<int64_t>(idx_d);
      // Indexing is 0-based (Section 3: "G-CORE starts counting at 0").
      switch (base.kind()) {
        case Datum::Kind::kNodeList: {
          const auto& list = base.node_list();
          if (i < 0 || static_cast<size_t>(i) >= list.size()) {
            return Datum::Unbound();
          }
          return Datum::OfNode(list[static_cast<size_t>(i)]);
        }
        case Datum::Kind::kEdgeList: {
          const auto& list = base.edge_list();
          if (i < 0 || static_cast<size_t>(i) >= list.size()) {
            return Datum::Unbound();
          }
          return Datum::OfEdge(list[static_cast<size_t>(i)]);
        }
        case Datum::Kind::kValues: {
          const auto& values = base.values().values();
          if (i < 0 || static_cast<size_t>(i) >= values.size()) {
            return Datum::OfValues(ValueSet());
          }
          return Datum::OfValue(values[static_cast<size_t>(i)]);
        }
        default:
          return Status::TypeError("cannot index " + base.ToString());
      }
    }

    case Expr::Kind::kCase: {
      for (const auto& arm : expr.case_arms) {
        GCORE_ASSIGN_OR_RETURN(bool cond,
                               EvalPredicate(*arm.condition, table, row));
        if (cond) return Eval(*arm.result, table, row);
      }
      if (expr.case_else != nullptr) return Eval(*expr.case_else, table, row);
      return Datum::OfValues(ValueSet());
    }

    case Expr::Kind::kExists: {
      if (!exists_cb_) {
        return Status::EvaluationError(
            "EXISTS subquery 'EXISTS (" + expr.subquery->ToString() +
            ")' cannot be evaluated here: no subquery evaluator is wired "
            "into this context (engine-level evaluation required)");
      }
      GCORE_ASSIGN_OR_RETURN(bool nonempty,
                             exists_cb_(*expr.subquery, table, row));
      return Datum::OfBool(nonempty);
    }

    case Expr::Kind::kGraphPattern: {
      if (!pattern_cb_) {
        return Status::EvaluationError(
            "pattern predicate is not supported in this context");
      }
      GCORE_ASSIGN_OR_RETURN(bool matched,
                             pattern_cb_(*expr.pattern, table, row));
      return Datum::OfBool(matched);
    }
  }
  return Status::EvaluationError("unhandled expression kind");
}

Result<Datum> ExprEvaluator::EvalBinary(const Expr& expr,
                                        const BindingTable& table,
                                        size_t row) const {
  const BinaryOp op = expr.binary_op;

  // Short-circuit booleans.
  if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
    GCORE_ASSIGN_OR_RETURN(bool lhs, EvalPredicate(*expr.args[0], table, row));
    if (op == BinaryOp::kAnd && !lhs) return Datum::OfBool(false);
    if (op == BinaryOp::kOr && lhs) return Datum::OfBool(true);
    GCORE_ASSIGN_OR_RETURN(bool rhs, EvalPredicate(*expr.args[1], table, row));
    return Datum::OfBool(rhs);
  }

  GCORE_ASSIGN_OR_RETURN(Datum lhs, Eval(*expr.args[0], table, row));
  GCORE_ASSIGN_OR_RETURN(Datum rhs, Eval(*expr.args[1], table, row));

  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe: {
      // Identity comparison for objects, set equality for literal sets
      // (pp. 8-9: "MIT" = {"CWI","MIT"} evaluates to FALSE). Comparisons
      // against an unbound operand are FALSE rather than an error so that
      // CASE can coalesce missing data.
      bool eq;
      if (lhs.IsUnbound() || rhs.IsUnbound()) {
        eq = false;
      } else if (lhs.kind() != rhs.kind()) {
        eq = false;
      } else {
        eq = lhs == rhs;
      }
      return Datum::OfBool(op == BinaryOp::kEq ? eq : !eq);
    }

    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      const ValueSet& l = AsValues(lhs);
      const ValueSet& r = AsValues(rhs);
      if (!l.is_singleton() || !r.is_singleton()) {
        return Datum::OfBool(false);  // absent or multi-valued: no order
      }
      const int cmp = l.single().Compare(r.single());
      bool result = false;
      switch (op) {
        case BinaryOp::kLt: result = cmp < 0; break;
        case BinaryOp::kLe: result = cmp <= 0; break;
        case BinaryOp::kGt: result = cmp > 0; break;
        default: result = cmp >= 0; break;
      }
      return Datum::OfBool(result);
    }

    case BinaryOp::kIn: {
      const ValueSet& l = AsValues(lhs);
      const ValueSet& r = AsValues(rhs);
      if (!l.is_singleton()) return Datum::OfBool(false);
      return Datum::OfBool(r.Contains(l.single()));
    }

    case BinaryOp::kSubsetOf: {
      return Datum::OfBool(AsValues(lhs).SubsetOf(AsValues(rhs)));
    }

    case BinaryOp::kAdd: {
      // String concatenation when either side is a string singleton
      // (line 72: m.lastName + ', ' + m.firstName).
      const ValueSet& l = AsValues(lhs);
      const ValueSet& r = AsValues(rhs);
      if (l.is_singleton() && r.is_singleton() &&
          (l.single().is_string() || r.single().is_string())) {
        return Datum::OfValue(
            Value::String(l.single().ToString() + r.single().ToString()));
      }
      GCORE_ASSIGN_OR_RETURN(double a, NumericOf(lhs, "+"));
      GCORE_ASSIGN_OR_RETURN(double b, NumericOf(rhs, "+"));
      const bool ints = l.single().is_int() && r.single().is_int();
      return NumericResult(a + b, ints);
    }

    case BinaryOp::kSub:
    case BinaryOp::kMul: {
      GCORE_ASSIGN_OR_RETURN(double a, NumericOf(lhs, "arithmetic"));
      GCORE_ASSIGN_OR_RETURN(double b, NumericOf(rhs, "arithmetic"));
      const bool ints = AsValues(lhs).single().is_int() &&
                        AsValues(rhs).single().is_int();
      const double v = op == BinaryOp::kSub ? a - b : a * b;
      return NumericResult(v, ints);
    }

    case BinaryOp::kDiv: {
      // Division always yields a double: the paper's weighted-cost idiom
      // 1 / (1 + e.nr_messages) must not truncate to zero.
      GCORE_ASSIGN_OR_RETURN(double a, NumericOf(lhs, "/"));
      GCORE_ASSIGN_OR_RETURN(double b, NumericOf(rhs, "/"));
      if (b == 0.0) {
        return Status::EvaluationError("division by zero");
      }
      return Datum::OfValue(Value::Double(a / b));
    }

    case BinaryOp::kMod: {
      GCORE_ASSIGN_OR_RETURN(double a, NumericOf(lhs, "%"));
      GCORE_ASSIGN_OR_RETURN(double b, NumericOf(rhs, "%"));
      if (b == 0.0) {
        return Status::EvaluationError("modulo by zero");
      }
      return NumericResult(std::fmod(a, b), true);
    }

    default:
      return Status::EvaluationError("unhandled binary operator");
  }
}

Result<Datum> ExprEvaluator::EvalFunction(const Expr& expr,
                                          const BindingTable& table,
                                          size_t row) const {
  std::string lower = expr.name;
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }

  auto arity = [&](size_t n) -> Status {
    if (expr.args.size() != n) {
      return Status::TypeError(expr.name + " expects " + std::to_string(n) +
                               " argument(s)");
    }
    return Status::OK();
  };

  if (lower == "labels") {
    GCORE_RETURN_NOT_OK(arity(1));
    GCORE_ASSIGN_OR_RETURN(Datum obj, Eval(*expr.args[0], table, row));
    const std::string& var = expr.args[0]->kind == Expr::Kind::kVariable
                                 ? expr.args[0]->var
                                 : std::string();
    const PathPropertyGraph* graph = GraphFor(table, var);
    if (graph == nullptr) return Datum::OfValues(ValueSet());
    const LabelSet labels = DatumLabels(obj, *graph);
    ValueSet out;
    for (const auto& l : labels) out.Insert(Value::String(l));
    return Datum::OfValues(std::move(out));
  }

  if (lower == "nodes" || lower == "edges") {
    GCORE_RETURN_NOT_OK(arity(1));
    GCORE_ASSIGN_OR_RETURN(Datum obj, Eval(*expr.args[0], table, row));
    if (obj.kind() != Datum::Kind::kPath) {
      return Status::TypeError(expr.name + "() expects a path");
    }
    if (lower == "nodes") return Datum::OfNodeList(obj.path().body.nodes);
    return Datum::OfEdgeList(obj.path().body.edges);
  }

  if (lower == "strlen") {
    GCORE_RETURN_NOT_OK(arity(1));
    GCORE_ASSIGN_OR_RETURN(Datum arg, Eval(*expr.args[0], table, row));
    const ValueSet& v = AsValues(arg);
    if (!v.is_singleton() || !v.single().is_string()) {
      return Status::TypeError("strlen() expects a single string");
    }
    return Datum::OfValue(
        Value::Int(static_cast<int64_t>(v.single().AsString().size())));
  }

  if (lower == "size" || lower == "length") {
    // SIZE is set cardinality / list length — the paper's "length test"
    // for absent (empty-set) properties. Use STRLEN for string length.
    GCORE_RETURN_NOT_OK(arity(1));
    GCORE_ASSIGN_OR_RETURN(Datum arg, Eval(*expr.args[0], table, row));
    switch (arg.kind()) {
      case Datum::Kind::kValues:
        return Datum::OfValue(
            Value::Int(static_cast<int64_t>(arg.values().size())));
      case Datum::Kind::kNodeList:
        return Datum::OfValue(
            Value::Int(static_cast<int64_t>(arg.node_list().size())));
      case Datum::Kind::kEdgeList:
        return Datum::OfValue(
            Value::Int(static_cast<int64_t>(arg.edge_list().size())));
      case Datum::Kind::kPath:
        return Datum::OfValue(
            Value::Int(static_cast<int64_t>(arg.path().body.edges.size())));
      case Datum::Kind::kUnbound:
        return Datum::OfValue(Value::Int(0));
      default:
        return Status::TypeError("size() of unsupported operand");
    }
  }

  if (lower == "cost") {
    GCORE_RETURN_NOT_OK(arity(1));
    GCORE_ASSIGN_OR_RETURN(Datum arg, Eval(*expr.args[0], table, row));
    if (arg.kind() != Datum::Kind::kPath) {
      return Status::TypeError("cost() expects a path");
    }
    const double c = arg.path().cost;
    if (c == std::floor(c)) {
      return Datum::OfValue(Value::Int(static_cast<int64_t>(c)));
    }
    return Datum::OfValue(Value::Double(c));
  }

  if (lower == "id") {
    GCORE_RETURN_NOT_OK(arity(1));
    GCORE_ASSIGN_OR_RETURN(Datum arg, Eval(*expr.args[0], table, row));
    switch (arg.kind()) {
      case Datum::Kind::kNode:
        return Datum::OfValue(
            Value::Int(static_cast<int64_t>(arg.node().value())));
      case Datum::Kind::kEdge:
        return Datum::OfValue(
            Value::Int(static_cast<int64_t>(arg.edge().value())));
      case Datum::Kind::kPath:
        return Datum::OfValue(
            Value::Int(static_cast<int64_t>(arg.path().id.value())));
      default:
        return Status::TypeError("id() expects a node, edge or path");
    }
  }

  if (lower == "date") {
    GCORE_RETURN_NOT_OK(arity(1));
    GCORE_ASSIGN_OR_RETURN(Datum arg, Eval(*expr.args[0], table, row));
    const ValueSet& v = AsValues(arg);
    if (!v.is_singleton() || !v.single().is_string()) {
      return Status::TypeError("date() expects a string");
    }
    GCORE_ASSIGN_OR_RETURN(Date date, Date::Parse(v.single().AsString()));
    return Datum::OfValue(Value::OfDate(date));
  }

  if (lower == "tostring") {
    GCORE_RETURN_NOT_OK(arity(1));
    GCORE_ASSIGN_OR_RETURN(Datum arg, Eval(*expr.args[0], table, row));
    return Datum::OfValue(Value::String(AsValues(arg).ToString()));
  }

  if (lower == "tointeger") {
    GCORE_RETURN_NOT_OK(arity(1));
    GCORE_ASSIGN_OR_RETURN(Datum arg, Eval(*expr.args[0], table, row));
    const ValueSet& v = AsValues(arg);
    if (v.is_singleton() && v.single().is_numeric()) {
      return Datum::OfValue(
          Value::Int(static_cast<int64_t>(v.single().NumericAsDouble())));
    }
    if (v.is_singleton() && v.single().is_string()) {
      try {
        return Datum::OfValue(Value::Int(std::stoll(v.single().AsString())));
      } catch (...) {
        return Datum::OfValues(ValueSet());
      }
    }
    return Datum::OfValues(ValueSet());
  }

  if (lower == "coalesce") {
    for (const auto& arg : expr.args) {
      GCORE_ASSIGN_OR_RETURN(Datum d, Eval(*arg, table, row));
      if (d.IsBound() &&
          (d.kind() != Datum::Kind::kValues || !d.values().empty())) {
        return d;
      }
    }
    return Datum::OfValues(ValueSet());
  }

  if (lower == "property") {
    // Internal: property access on a computed object (nodes(p)[1].name).
    GCORE_RETURN_NOT_OK(arity(2));
    GCORE_ASSIGN_OR_RETURN(Datum obj, Eval(*expr.args[0], table, row));
    GCORE_ASSIGN_OR_RETURN(Datum key, Eval(*expr.args[1], table, row));
    const ValueSet& k = AsValues(key);
    if (!k.is_singleton() || !k.single().is_string()) {
      return Status::TypeError("property key must be a string");
    }
    if (default_graph_ == nullptr) return Datum::OfValues(ValueSet());
    return Datum::OfValues(
        DatumProperty(obj, k.single().AsString(), *default_graph_));
  }

  return Status::EvaluationError("unknown function: " + expr.name);
}

Result<Datum> ExprEvaluator::EvalWithGroup(
    const Expr& expr, const BindingTable& table,
    const std::vector<size_t>& group_rows) const {
  if (expr.kind == Expr::Kind::kAggregate) {
    return EvalAggregate(expr, table, group_rows);
  }
  if (!expr.ContainsAggregate()) {
    if (group_rows.empty()) return Datum::OfValues(ValueSet());
    return Eval(expr, table, group_rows.front());
  }
  // Mixed scalar/aggregate tree: rebuild bottom-up. Binary/unary/case over
  // aggregates is evaluated by recursing with the group.
  switch (expr.kind) {
    case Expr::Kind::kUnary: {
      GCORE_ASSIGN_OR_RETURN(Datum arg,
                             EvalWithGroup(*expr.args[0], table, group_rows));
      if (expr.unary_op == UnaryOp::kNot) {
        GCORE_ASSIGN_OR_RETURN(bool b, Truthy(arg));
        return Datum::OfBool(!b);
      }
      GCORE_ASSIGN_OR_RETURN(double v, NumericOf(arg, "unary minus"));
      return NumericResult(-v, arg.values().single().is_int());
    }
    case Expr::Kind::kBinary: {
      // Delegate to the scalar path by materializing both sides first.
      GCORE_ASSIGN_OR_RETURN(Datum lhs,
                             EvalWithGroup(*expr.args[0], table, group_rows));
      GCORE_ASSIGN_OR_RETURN(Datum rhs,
                             EvalWithGroup(*expr.args[1], table, group_rows));
      // Build a tiny literal expression to reuse EvalBinary semantics.
      Expr tmp;
      tmp.kind = Expr::Kind::kBinary;
      tmp.binary_op = expr.binary_op;
      BindingTable scratch({"_l", "_r"});
      Status st = scratch.AddRow({lhs, rhs});
      (void)st;
      tmp.args.push_back(Expr::Variable("_l"));
      tmp.args.push_back(Expr::Variable("_r"));
      return EvalBinary(tmp, scratch, 0);
    }
    default:
      return Status::EvaluationError(
          "unsupported aggregate expression shape: " + expr.ToString());
  }
}

Result<Datum> ExprEvaluator::EvalAggregate(
    const Expr& expr, const BindingTable& table,
    const std::vector<size_t>& group_rows) const {
  if (expr.aggregate_op == AggregateOp::kCount && expr.count_star) {
    // COUNT(*) counts *complete* bindings: a row produced by an OPTIONAL
    // block that did not match leaves the optional variables unbound and
    // does not count (Section 3: "people who know each other but never
    // exchanged a message still get a property e.nr_messages = 0").
    int64_t complete = 0;
    for (size_t r : group_rows) {
      bool all_bound = true;
      for (size_t c = 0; c < table.NumColumns(); ++c) {
        if (!table.ColumnAt(c).BoundAt(r)) {
          all_bound = false;
          break;
        }
      }
      if (all_bound) ++complete;
    }
    return Datum::OfValue(Value::Int(complete));
  }
  if (expr.args.empty()) {
    return Status::TypeError("aggregate requires an argument");
  }

  std::vector<Value> inputs;
  int64_t bound_count = 0;
  for (size_t r : group_rows) {
    GCORE_ASSIGN_OR_RETURN(Datum d, Eval(*expr.args[0], table, r));
    if (d.IsUnbound()) continue;
    if (d.kind() == Datum::Kind::kValues) {
      if (d.values().empty()) continue;
      ++bound_count;
      for (const Value& v : d.values()) inputs.push_back(v);
    } else {
      ++bound_count;  // object-typed: counts but does not sum
    }
  }

  switch (expr.aggregate_op) {
    case AggregateOp::kCount:
      return Datum::OfValue(Value::Int(bound_count));
    case AggregateOp::kCollect:
      return Datum::OfValues(ValueSet(std::move(inputs)));
    case AggregateOp::kMin:
    case AggregateOp::kMax: {
      if (inputs.empty()) return Datum::OfValues(ValueSet());
      Value best = inputs.front();
      for (const Value& v : inputs) {
        const int cmp = v.Compare(best);
        if ((expr.aggregate_op == AggregateOp::kMin && cmp < 0) ||
            (expr.aggregate_op == AggregateOp::kMax && cmp > 0)) {
          best = v;
        }
      }
      return Datum::OfValue(best);
    }
    case AggregateOp::kSum:
    case AggregateOp::kAvg: {
      double sum = 0;
      bool all_int = true;
      int64_t n = 0;
      for (const Value& v : inputs) {
        if (!v.is_numeric()) {
          return Status::TypeError("SUM/AVG over non-numeric value");
        }
        if (!v.is_int()) all_int = false;
        sum += v.NumericAsDouble();
        ++n;
      }
      if (expr.aggregate_op == AggregateOp::kSum) {
        return NumericResult(sum, all_int);
      }
      if (n == 0) return Datum::OfValues(ValueSet());
      return Datum::OfValue(Value::Double(sum / static_cast<double>(n)));
    }
  }
  return Status::EvaluationError("unhandled aggregate");
}

}  // namespace gcore
