#include "eval/expr_vec.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <deque>
#include <numeric>
#include <string>
#include <string_view>
#include <utility>

#include "common/date.h"
#include "common/value.h"
#include "graph/adjacency.h"

namespace gcore {
namespace {

// --- batch cells --------------------------------------------------------------

// One evaluated cell: a tag byte plus a 64-bit payload. Singleton
// scalars are inline; strings and multi-valued sets index side tables
// in the per-call Scratch; kFallback marks a row the kernels cannot
// decide (the caller replays it through the row evaluator).
enum class Tag : uint8_t {
  kUnbound,   // variable outside dom(µ)
  kEmpty,     // ∅ (absent property / null literal)
  kNull,      // {null} — a singleton set containing the null value
  kBool,      // slot = 0/1
  kInt,       // slot = bit pattern of the int64_t
  kDouble,    // slot = bit pattern of the double
  kString,    // slot = Scratch::strs index
  kDate,      // slot = (uint32(year) << 16) | (month << 8) | day
  kSet,       // slot = Scratch::sets index; invariant: set size >= 2
  kNode,      // slot = raw NodeId
  kEdge,      // slot = raw EdgeId
  kFallback,  // replay this row through ExprEvaluator
};

struct Cell {
  Tag tag = Tag::kUnbound;
  uint64_t slot = 0;
};

// Per-call state: one Cell buffer per program node (each node runs at
// most once per batch) plus the side tables cells index into. Stack-
// local, which is what makes a shared program thread-safe.
struct Scratch {
  std::vector<std::vector<Cell>> bufs;
  std::vector<std::string_view> strs;
  std::vector<const ValueSet*> sets;
  std::deque<std::string> owned;  // concat results; deque keeps refs stable
};

uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// Dates travel as packed fields rather than epoch days so non-calendar
// literals (2020-01-40) keep the field-wise identity Value::Compare's
// tie-break depends on.
uint64_t PackDate(const Date& d) {
  return (uint64_t{static_cast<uint32_t>(d.year)} << 16) |
         (uint64_t{d.month} << 8) | uint64_t{d.day};
}

Date UnpackDate(uint64_t slot) {
  Date d;
  d.year = static_cast<int32_t>(static_cast<uint32_t>(slot >> 16));
  d.month = static_cast<uint8_t>(slot >> 8);
  d.day = static_cast<uint8_t>(slot);
  return d;
}

Cell BoolCell(bool b) { return {Tag::kBool, b ? uint64_t{1} : uint64_t{0}}; }
Cell Fallback() { return {Tag::kFallback, 0}; }

// Encodes a single Value (an element of a singleton set).
Cell EncodeValue(const Value& v, Scratch* s) {
  if (v.is_null()) return {Tag::kNull, 0};
  if (v.is_bool()) return BoolCell(v.AsBool());
  if (v.is_int()) return {Tag::kInt, static_cast<uint64_t>(v.AsInt())};
  if (v.is_double()) return {Tag::kDouble, DoubleBits(v.AsDouble())};
  if (v.is_string()) {
    s->strs.push_back(v.AsString());
    return {Tag::kString, s->strs.size() - 1};
  }
  return {Tag::kDate, PackDate(v.AsDate())};
}

// The tags encoding a singleton {v} (contiguous by construction).
bool IsSingleton(Tag t) { return t >= Tag::kNull && t <= Tag::kDate; }

// Value::TypeRank over tags (only meaningful for singleton tags).
int RankOf(Tag t) {
  switch (t) {
    case Tag::kNull:
      return 0;
    case Tag::kBool:
      return 1;
    case Tag::kInt:
    case Tag::kDouble:
      return 2;
    case Tag::kString:
      return 3;
    default:
      return 4;  // kDate
  }
}

double NumOf(Cell c) {
  return c.tag == Tag::kInt
             ? static_cast<double>(static_cast<int64_t>(c.slot))
             : BitsDouble(c.slot);
}

template <typename T>
int Cmp(T a, T b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

// Mirrors Value::Compare over encoded singletons.
int CompareSingletons(Cell l, Cell r, const Scratch& s) {
  const int rl = RankOf(l.tag);
  const int rr = RankOf(r.tag);
  if (rl != rr) return rl < rr ? -1 : 1;
  switch (rl) {
    case 0:
      return 0;
    case 1:
      return Cmp(l.slot != 0, r.slot != 0);
    case 2:
      if (l.tag == Tag::kInt && r.tag == Tag::kInt) {
        return Cmp(static_cast<int64_t>(l.slot), static_cast<int64_t>(r.slot));
      }
      return Cmp(NumOf(l), NumOf(r));
    case 3: {
      const int c = s.strs[l.slot].compare(s.strs[r.slot]);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default: {
      const Date a = UnpackDate(l.slot);
      const Date b = UnpackDate(r.slot);
      const int c = Cmp(a.ToEpochDays(), b.ToEpochDays());
      if (c != 0) return c;
      if (!(a == b)) return a < b ? -1 : 1;
      return 0;
    }
  }
}

Value MaterializeValue(Cell c, const Scratch& s) {
  switch (c.tag) {
    case Tag::kNull:
      return Value::Null();
    case Tag::kBool:
      return Value::Bool(c.slot != 0);
    case Tag::kInt:
      return Value::Int(static_cast<int64_t>(c.slot));
    case Tag::kDouble:
      return Value::Double(BitsDouble(c.slot));
    case Tag::kString:
      return Value::String(std::string(s.strs[c.slot]));
    default:
      return Value::OfDate(UnpackDate(c.slot));
  }
}

// ValueSet equality over encoded cells (∅ / singleton / stored set).
bool ValuesEqual(Cell l, Cell r, const Scratch& s) {
  const bool le = l.tag == Tag::kEmpty;
  const bool re = r.tag == Tag::kEmpty;
  if (le || re) return le && re;
  const bool ls = l.tag == Tag::kSet;
  const bool rs = r.tag == Tag::kSet;
  if (ls != rs) return false;  // stored sets hold >= 2 elements
  if (ls) return *s.sets[l.slot] == *s.sets[r.slot];
  return CompareSingletons(l, r, s) == 0;
}

// Three-state truthiness: kMaybe rows replay through the row evaluator
// (they would raise a type error — or are already fallback cells).
enum class Tru : uint8_t { kFalse, kTrue, kMaybe };

Tru Truthiness(Cell c) {
  switch (c.tag) {
    case Tag::kUnbound:
    case Tag::kEmpty:
      return Tru::kFalse;
    case Tag::kBool:
      return c.slot != 0 ? Tru::kTrue : Tru::kFalse;
    default:
      return Tru::kMaybe;
  }
}

// Mirrors expr_eval.cc's NumericResult: integral doubles collapse back
// to Int when the operands were ints.
Cell NumericCell(double v, bool prefer_int) {
  if (prefer_int && v == std::floor(v) && std::abs(v) < 9.2e18) {
    return {Tag::kInt, static_cast<uint64_t>(static_cast<int64_t>(v))};
  }
  return {Tag::kDouble, DoubleBits(v)};
}

// Gathers one property cell straight from a snapshot typed column.
Cell GatherCell(const GraphSnapshot::PropertyColumn& col, size_t i,
                const GraphSnapshot& snap, Scratch* s) {
  using PropKind = GraphSnapshot::PropKind;
  switch (col.KindAt(i)) {
    case PropKind::kAbsent:
      return {Tag::kEmpty, 0};
    case PropKind::kNull:
      return {Tag::kNull, 0};
    case PropKind::kBool:
      return BoolCell(col.BoolAt(i));
    case PropKind::kInt:
      return {Tag::kInt, col.SlotAt(i)};
    case PropKind::kDouble:
      return {Tag::kDouble, DoubleBits(col.DoubleAt(i))};
    case PropKind::kString:
      s->strs.push_back(snap.StringAt(col.StringIdAt(i)));
      return {Tag::kString, s->strs.size() - 1};
    case PropKind::kDate:
      return {Tag::kDate,
              PackDate(Date::FromEpochDays(col.DateDaysAt(i)))};
    case PropKind::kOverflow: {
      // Rare cells: multi-valued sets and slot-unencodable singletons
      // (e.g. non-calendar dates) — decode without a per-row fallback.
      const ValueSet& vs = col.OverflowAt(i);
      if (vs.is_singleton()) return EncodeValue(vs.single(), s);
      s->sets.push_back(&vs);
      return {Tag::kSet, s->sets.size() - 1};
    }
  }
  return Fallback();
}

Cell CompareOp(BinaryOp op, Cell l, Cell r, Scratch* s) {
  if (l.tag == Tag::kFallback || r.tag == Tag::kFallback) return Fallback();
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe: {
      bool eq;
      if (l.tag == Tag::kUnbound || r.tag == Tag::kUnbound) {
        eq = false;  // unbound never equals anything (µ ∼ semantics)
      } else {
        // Datum-kind classes: node vs edge vs literal set.
        const auto cls = [](Tag t) {
          return t == Tag::kNode ? 1 : (t == Tag::kEdge ? 2 : 0);
        };
        if (cls(l.tag) != cls(r.tag)) {
          eq = false;
        } else if (cls(l.tag) != 0) {
          eq = l.slot == r.slot;
        } else {
          eq = ValuesEqual(l, r, *s);
        }
      }
      return BoolCell(op == BinaryOp::kEq ? eq : !eq);
    }
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      // Order comparisons unwrap singletons; anything else is false
      // (AsValues maps objects to ∅, and ∅/sets are not singletons).
      if (!IsSingleton(l.tag) || !IsSingleton(r.tag)) return BoolCell(false);
      const int c = CompareSingletons(l, r, *s);
      switch (op) {
        case BinaryOp::kLt:
          return BoolCell(c < 0);
        case BinaryOp::kLe:
          return BoolCell(c <= 0);
        case BinaryOp::kGt:
          return BoolCell(c > 0);
        default:
          return BoolCell(c >= 0);
      }
    }
    case BinaryOp::kIn: {
      if (!IsSingleton(l.tag)) return BoolCell(false);
      if (IsSingleton(r.tag)) {
        return BoolCell(CompareSingletons(l, r, *s) == 0);
      }
      if (r.tag == Tag::kSet) {
        return BoolCell(s->sets[r.slot]->Contains(MaterializeValue(l, *s)));
      }
      return BoolCell(false);  // ∅ / objects contain nothing
    }
    default: {  // kSubsetOf
      const auto empty_set = [](Tag t) {
        return t == Tag::kEmpty || t == Tag::kUnbound || t == Tag::kNode ||
               t == Tag::kEdge;
      };
      if (empty_set(l.tag)) return BoolCell(true);  // ∅ ⊆ anything
      if (IsSingleton(l.tag)) {
        if (IsSingleton(r.tag)) {
          return BoolCell(CompareSingletons(l, r, *s) == 0);
        }
        if (r.tag == Tag::kSet) {
          return BoolCell(s->sets[r.slot]->Contains(MaterializeValue(l, *s)));
        }
        return BoolCell(false);
      }
      // l holds >= 2 elements; only another stored set can contain it.
      if (r.tag == Tag::kSet) {
        return BoolCell(s->sets[l.slot]->SubsetOf(*s->sets[r.slot]));
      }
      return BoolCell(false);
    }
  }
}

Cell ArithOp(BinaryOp op, Cell l, Cell r, Scratch* s) {
  if (l.tag == Tag::kFallback || r.tag == Tag::kFallback) return Fallback();
  if (op == BinaryOp::kAdd && IsSingleton(l.tag) && IsSingleton(r.tag) &&
      (l.tag == Tag::kString || r.tag == Tag::kString)) {
    s->owned.push_back(MaterializeValue(l, *s).ToString() +
                       MaterializeValue(r, *s).ToString());
    s->strs.push_back(s->owned.back());
    return {Tag::kString, s->strs.size() - 1};
  }
  const bool l_num = l.tag == Tag::kInt || l.tag == Tag::kDouble;
  const bool r_num = r.tag == Tag::kInt || r.tag == Tag::kDouble;
  // Non-numeric operands raise a type error on the row path — replay.
  if (!l_num || !r_num) return Fallback();
  const double a = NumOf(l);
  const double b = NumOf(r);
  const bool ints = l.tag == Tag::kInt && r.tag == Tag::kInt;
  switch (op) {
    case BinaryOp::kAdd:
      return NumericCell(a + b, ints);
    case BinaryOp::kSub:
      return NumericCell(a - b, ints);
    case BinaryOp::kMul:
      return NumericCell(a * b, ints);
    case BinaryOp::kDiv:
      // Division by zero errors on the row path; the result is always
      // double otherwise.
      if (b == 0.0) return Fallback();
      return {Tag::kDouble, DoubleBits(a / b)};
    default:  // kMod
      if (b == 0.0) return Fallback();
      return NumericCell(std::fmod(a, b), true);
  }
}

Datum MaterializeDatum(Cell c, const Scratch& s) {
  switch (c.tag) {
    case Tag::kUnbound:
      return Datum::Unbound();
    case Tag::kEmpty:
      return Datum::OfValues(ValueSet());
    case Tag::kNode:
      return Datum::OfNode(NodeId(c.slot));
    case Tag::kEdge:
      return Datum::OfEdge(EdgeId(c.slot));
    case Tag::kSet:
      return Datum::OfValues(*s.sets[c.slot]);
    default:
      return Datum::OfValue(MaterializeValue(c, s));
  }
}

enum class OpCode : uint8_t {
  kConst,      // every row gets the same cell
  kLoadVar,    // binding-column load
  kLoadProp,   // property gather through snapshot typed columns
  kLabelTest,  // x:ℓ1|ℓ2
  kNot,
  kNeg,
  kAndOr,      // short-circuit via sub-batch gather
  kCompare,    // Eq/Ne/Lt/Le/Gt/Ge/In/SubsetOf
  kArith,      // Add/Sub/Mul/Div/Mod
  kCase,
};

struct Node {
  OpCode op = OpCode::kConst;
  BinaryOp bop = BinaryOp::kEq;
  int a = -1;  // child node ids
  int b = -1;
  // kConst: an encoded value, or a bare tag when const_val is unset.
  Tag const_tag = Tag::kEmpty;
  std::unique_ptr<Value> const_val;
  // kLoadVar / kLoadProp / kLabelTest
  size_t col = BindingTable::kNpos;
  const GraphSnapshot* snap = nullptr;
  const GraphSnapshot::PropertyColumn* node_col = nullptr;
  const GraphSnapshot::PropertyColumn* edge_col = nullptr;
  std::vector<uint32_t> label_ids;
  // kCase: (condition, result) node ids + optional else.
  std::vector<std::pair<int, int>> arms;
  int else_node = -1;
};

}  // namespace

struct VecProgram::Impl {
  const Expr* expr = nullptr;
  std::vector<Node> nodes;
  int root = -1;

  int Add(Node n) {
    nodes.push_back(std::move(n));
    return static_cast<int>(nodes.size()) - 1;
  }

  int AddConst(Tag tag) {
    Node n;
    n.op = OpCode::kConst;
    n.const_tag = tag;
    return Add(std::move(n));
  }

  int AddConstValue(Value v) {
    Node n;
    n.op = OpCode::kConst;
    n.const_val = std::make_unique<Value>(std::move(v));
    return Add(std::move(n));
  }

  // Returns the compiled node id, or -1 when the subtree needs the full
  // row evaluator (callers then keep the row path for the whole
  // expression).
  int CompileNode(const Expr& e, const BindingTable& schema,
                  const ExprEvaluator& eval, const SnapshotFn& snapshots) {
    switch (e.kind) {
      case Expr::Kind::kLiteral:
        // ⟦null⟧ = ∅ (the row evaluator's literal rule).
        if (e.value.is_null()) return AddConst(Tag::kEmpty);
        return AddConstValue(e.value);
      case Expr::Kind::kVariable: {
        const size_t col = schema.ColumnIndex(e.var);
        if (col == BindingTable::kNpos) return AddConst(Tag::kUnbound);
        Node n;
        n.op = OpCode::kLoadVar;
        n.col = col;
        return Add(std::move(n));
      }
      case Expr::Kind::kProperty: {
        const size_t col = schema.ColumnIndex(e.var);
        // σ on an unbound variable is ∅ for every row.
        if (col == BindingTable::kNpos) return AddConst(Tag::kEmpty);
        const PathPropertyGraph* graph = eval.GraphFor(schema, e.var);
        if (graph == nullptr) return AddConst(Tag::kEmpty);
        Node n;
        n.op = OpCode::kLoadProp;
        n.col = col;
        n.snap = &snapshots(*graph);
        n.node_col = n.snap->NodeColumn(e.key);
        n.edge_col = n.snap->EdgeColumn(e.key);
        return Add(std::move(n));
      }
      case Expr::Kind::kLabelTest: {
        const size_t col = schema.ColumnIndex(e.var);
        if (col == BindingTable::kNpos) return AddConstValue(Value::Bool(false));
        const PathPropertyGraph* graph = eval.GraphFor(schema, e.var);
        // The row path answers false when no graph resolves the labels.
        if (graph == nullptr) return AddConstValue(Value::Bool(false));
        Node n;
        n.op = OpCode::kLabelTest;
        n.col = col;
        n.snap = &snapshots(*graph);
        for (const std::string& label : e.labels) {
          const uint32_t id = n.snap->LabelId(label);
          // Misses can never match a member object; drop them.
          if (id != GraphSnapshot::kNoLabel) n.label_ids.push_back(id);
        }
        return Add(std::move(n));
      }
      case Expr::Kind::kUnary: {
        const int a = CompileNode(*e.args[0], schema, eval, snapshots);
        if (a < 0) return -1;
        Node n;
        n.op = e.unary_op == UnaryOp::kNot ? OpCode::kNot : OpCode::kNeg;
        n.a = a;
        return Add(std::move(n));
      }
      case Expr::Kind::kBinary: {
        const int a = CompileNode(*e.args[0], schema, eval, snapshots);
        if (a < 0) return -1;
        const int b = CompileNode(*e.args[1], schema, eval, snapshots);
        if (b < 0) return -1;
        Node n;
        n.bop = e.binary_op;
        n.a = a;
        n.b = b;
        switch (e.binary_op) {
          case BinaryOp::kAnd:
          case BinaryOp::kOr:
            n.op = OpCode::kAndOr;
            break;
          case BinaryOp::kEq:
          case BinaryOp::kNe:
          case BinaryOp::kLt:
          case BinaryOp::kLe:
          case BinaryOp::kGt:
          case BinaryOp::kGe:
          case BinaryOp::kIn:
          case BinaryOp::kSubsetOf:
            n.op = OpCode::kCompare;
            break;
          default:
            n.op = OpCode::kArith;
            break;
        }
        return Add(std::move(n));
      }
      case Expr::Kind::kCase: {
        Node n;
        n.op = OpCode::kCase;
        for (const CaseArm& arm : e.case_arms) {
          const int c = CompileNode(*arm.condition, schema, eval, snapshots);
          if (c < 0) return -1;
          const int r = CompileNode(*arm.result, schema, eval, snapshots);
          if (r < 0) return -1;
          n.arms.emplace_back(c, r);
        }
        if (e.case_else != nullptr) {
          n.else_node = CompileNode(*e.case_else, schema, eval, snapshots);
          if (n.else_node < 0) return -1;
        }
        return Add(std::move(n));
      }
      default:
        // kFunction / kAggregate / kIndex / kExists / kGraphPattern.
        return -1;
    }
  }

  void EvalNode(int id, const BindingTable& table, const size_t* rows,
                size_t n, Scratch* s) const {
    const Node& node = nodes[id];
    std::vector<Cell>& out = s->bufs[id];
    out.resize(n);
    switch (node.op) {
      case OpCode::kConst: {
        Cell c{node.const_tag, 0};
        if (node.const_val != nullptr) c = EncodeValue(*node.const_val, s);
        std::fill(out.begin(), out.end(), c);
        break;
      }
      case OpCode::kLoadVar: {
        const Column& col = table.ColumnAt(node.col);
        for (size_t i = 0; i < n; ++i) {
          const size_t r = rows[i];
          switch (col.KindAt(r)) {
            case Datum::Kind::kUnbound:
              out[i] = {Tag::kUnbound, 0};
              break;
            case Datum::Kind::kNode:
              out[i] = {Tag::kNode, col.NodeAt(r).value()};
              break;
            case Datum::Kind::kEdge:
              out[i] = {Tag::kEdge, col.EdgeAt(r).value()};
              break;
            case Datum::Kind::kValues: {
              const ValueSet& vs = col.HeavyAt(r).values();
              if (vs.empty()) {
                out[i] = {Tag::kEmpty, 0};
              } else if (vs.is_singleton()) {
                out[i] = EncodeValue(vs.single(), s);
              } else {
                s->sets.push_back(&vs);
                out[i] = {Tag::kSet, s->sets.size() - 1};
              }
              break;
            }
            default:
              // Paths and node/edge lists keep row semantics.
              out[i] = Fallback();
              break;
          }
        }
        break;
      }
      case OpCode::kLoadProp: {
        const Column& col = table.ColumnAt(node.col);
        const AdjacencyIndex& adj = node.snap->adjacency();
        for (size_t i = 0; i < n; ++i) {
          const size_t r = rows[i];
          switch (col.KindAt(r)) {
            case Datum::Kind::kUnbound:
              out[i] = {Tag::kEmpty, 0};
              break;
            case Datum::Kind::kNode: {
              const NodeId nid = col.NodeAt(r);
              if (node.node_col == nullptr || !adj.Contains(nid)) {
                out[i] = {Tag::kEmpty, 0};  // non-carrier or non-member
              } else {
                out[i] = GatherCell(*node.node_col, adj.IndexOf(nid),
                                    *node.snap, s);
              }
              break;
            }
            case Datum::Kind::kEdge: {
              const DenseEdgeIndex e =
                  node.edge_col == nullptr
                      ? GraphSnapshot::kNoEdge
                      : node.snap->FindEdge(col.EdgeAt(r));
              out[i] = e == GraphSnapshot::kNoEdge
                           ? Cell{Tag::kEmpty, 0}
                           : GatherCell(*node.edge_col, e, *node.snap, s);
              break;
            }
            case Datum::Kind::kPath:
              // Stored-path σ and the virtual cost/length need the row
              // evaluator.
              out[i] = Fallback();
              break;
            default:
              out[i] = {Tag::kEmpty, 0};  // σ over literals/lists = ∅
              break;
          }
        }
        break;
      }
      case OpCode::kLabelTest: {
        const Column& col = table.ColumnAt(node.col);
        const AdjacencyIndex& adj = node.snap->adjacency();
        for (size_t i = 0; i < n; ++i) {
          const size_t r = rows[i];
          switch (col.KindAt(r)) {
            case Datum::Kind::kNode: {
              const NodeId nid = col.NodeAt(r);
              bool hit = false;
              if (adj.Contains(nid)) {
                const DenseNodeIndex nidx = adj.IndexOf(nid);
                for (const uint32_t label : node.label_ids) {
                  if (node.snap->NodeHasLabel(nidx, label)) {
                    hit = true;
                    break;
                  }
                }
              }
              out[i] = BoolCell(hit);
              break;
            }
            case Datum::Kind::kEdge: {
              const DenseEdgeIndex eidx = node.snap->FindEdge(col.EdgeAt(r));
              bool hit = false;
              if (eidx != GraphSnapshot::kNoEdge) {
                for (const uint32_t label : node.label_ids) {
                  if (node.snap->EdgeHasLabel(eidx, label)) {
                    hit = true;
                    break;
                  }
                }
              }
              out[i] = BoolCell(hit);
              break;
            }
            case Datum::Kind::kPath:
              out[i] = Fallback();  // stored paths can carry labels
              break;
            default:
              // Unbound and literal bindings have no labels.
              out[i] = BoolCell(false);
              break;
          }
        }
        break;
      }
      case OpCode::kNot: {
        EvalNode(node.a, table, rows, n, s);
        const std::vector<Cell>& in = s->bufs[node.a];
        for (size_t i = 0; i < n; ++i) {
          switch (Truthiness(in[i])) {
            case Tru::kFalse:
              out[i] = BoolCell(true);
              break;
            case Tru::kTrue:
              out[i] = BoolCell(false);
              break;
            default:
              out[i] = Fallback();
              break;
          }
        }
        break;
      }
      case OpCode::kNeg: {
        EvalNode(node.a, table, rows, n, s);
        const std::vector<Cell>& in = s->bufs[node.a];
        for (size_t i = 0; i < n; ++i) {
          const Cell c = in[i];
          if (c.tag == Tag::kInt) {
            out[i] = NumericCell(-NumOf(c), true);
          } else if (c.tag == Tag::kDouble) {
            out[i] = NumericCell(-NumOf(c), false);
          } else {
            out[i] = Fallback();
          }
        }
        break;
      }
      case OpCode::kAndOr: {
        const bool is_and = node.bop == BinaryOp::kAnd;
        EvalNode(node.a, table, rows, n, s);
        const std::vector<Cell>& lhs = s->bufs[node.a];
        // Short-circuit as a selection-vector gather: only rows the
        // left side does not decide reach the right side — which also
        // suppresses right-side errors exactly like the row path.
        std::vector<size_t> sub_rows;
        std::vector<size_t> sub_pos;
        for (size_t i = 0; i < n; ++i) {
          switch (Truthiness(lhs[i])) {
            case Tru::kFalse:
              if (is_and) {
                out[i] = BoolCell(false);
              } else {
                sub_rows.push_back(rows[i]);
                sub_pos.push_back(i);
              }
              break;
            case Tru::kTrue:
              if (is_and) {
                sub_rows.push_back(rows[i]);
                sub_pos.push_back(i);
              } else {
                out[i] = BoolCell(true);
              }
              break;
            default:
              out[i] = Fallback();
              break;
          }
        }
        if (!sub_rows.empty()) {
          EvalNode(node.b, table, sub_rows.data(), sub_rows.size(), s);
          const std::vector<Cell>& rhs = s->bufs[node.b];
          for (size_t j = 0; j < sub_pos.size(); ++j) {
            switch (Truthiness(rhs[j])) {
              case Tru::kFalse:
                out[sub_pos[j]] = BoolCell(false);
                break;
              case Tru::kTrue:
                out[sub_pos[j]] = BoolCell(true);
                break;
              default:
                out[sub_pos[j]] = Fallback();
                break;
            }
          }
        }
        break;
      }
      case OpCode::kCompare: {
        EvalNode(node.a, table, rows, n, s);
        EvalNode(node.b, table, rows, n, s);
        const std::vector<Cell>& l = s->bufs[node.a];
        const std::vector<Cell>& r = s->bufs[node.b];
        for (size_t i = 0; i < n; ++i) {
          out[i] = CompareOp(node.bop, l[i], r[i], s);
        }
        break;
      }
      case OpCode::kArith: {
        EvalNode(node.a, table, rows, n, s);
        EvalNode(node.b, table, rows, n, s);
        const std::vector<Cell>& l = s->bufs[node.a];
        const std::vector<Cell>& r = s->bufs[node.b];
        for (size_t i = 0; i < n; ++i) {
          out[i] = ArithOp(node.bop, l[i], r[i], s);
        }
        break;
      }
      case OpCode::kCase: {
        // Progressive partition: rows not yet decided flow into the
        // next arm; each arm's condition/result runs once on exactly
        // the rows that reach it.
        std::vector<size_t> active_rows(rows, rows + n);
        std::vector<size_t> active_pos(n);
        std::iota(active_pos.begin(), active_pos.end(), size_t{0});
        for (const auto& arm : node.arms) {
          if (active_rows.empty()) break;
          EvalNode(arm.first, table, active_rows.data(), active_rows.size(),
                   s);
          const std::vector<Cell>& cond = s->bufs[arm.first];
          std::vector<size_t> hit_rows;
          std::vector<size_t> hit_pos;
          std::vector<size_t> next_rows;
          std::vector<size_t> next_pos;
          for (size_t j = 0; j < active_rows.size(); ++j) {
            switch (Truthiness(cond[j])) {
              case Tru::kTrue:
                hit_rows.push_back(active_rows[j]);
                hit_pos.push_back(active_pos[j]);
                break;
              case Tru::kFalse:
                next_rows.push_back(active_rows[j]);
                next_pos.push_back(active_pos[j]);
                break;
              default:
                out[active_pos[j]] = Fallback();
                break;
            }
          }
          if (!hit_rows.empty()) {
            EvalNode(arm.second, table, hit_rows.data(), hit_rows.size(), s);
            const std::vector<Cell>& res = s->bufs[arm.second];
            for (size_t k = 0; k < hit_pos.size(); ++k) {
              out[hit_pos[k]] = res[k];
            }
          }
          active_rows = std::move(next_rows);
          active_pos = std::move(next_pos);
        }
        if (!active_rows.empty()) {
          if (node.else_node >= 0) {
            EvalNode(node.else_node, table, active_rows.data(),
                     active_rows.size(), s);
            const std::vector<Cell>& res = s->bufs[node.else_node];
            for (size_t k = 0; k < active_pos.size(); ++k) {
              out[active_pos[k]] = res[k];
            }
          } else {
            for (const size_t pos : active_pos) out[pos] = {Tag::kEmpty, 0};
          }
        }
        break;
      }
    }
  }
};

VecProgram::VecProgram() : impl_(std::make_unique<Impl>()) {}
VecProgram::~VecProgram() = default;

const Expr& VecProgram::expr() const { return *impl_->expr; }

std::shared_ptr<const VecProgram> VecProgram::Compile(
    const Expr& expr, const BindingTable& schema, const ExprEvaluator& eval,
    const SnapshotFn& snapshots) {
  std::shared_ptr<VecProgram> program(new VecProgram());
  program->impl_->expr = &expr;
  program->impl_->root =
      program->impl_->CompileNode(expr, schema, eval, snapshots);
  if (program->impl_->root < 0) return nullptr;
  return program;
}

namespace {
// Batches are evaluated in bounded chunks so scratch side tables stay
// cache-resident regardless of morsel size.
constexpr size_t kBatchRows = 1024;
}  // namespace

Status VecProgram::FilterRows(const BindingTable& table, const size_t* rows,
                              size_t n, const ExprEvaluator& eval,
                              std::vector<size_t>* keep) const {
  Scratch s;
  s.bufs.resize(impl_->nodes.size());
  for (size_t base = 0; base < n; base += kBatchRows) {
    const size_t m = std::min(kBatchRows, n - base);
    s.strs.clear();
    s.sets.clear();
    s.owned.clear();
    impl_->EvalNode(impl_->root, table, rows + base, m, &s);
    const std::vector<Cell>& res = s.bufs[impl_->root];
    for (size_t i = 0; i < m; ++i) {
      const size_t r = rows[base + i];
      switch (Truthiness(res[i])) {
        case Tru::kTrue:
          keep->push_back(r);
          break;
        case Tru::kFalse:
          break;
        default: {
          // Replay in ascending row order: the serial loop's first
          // error (if any) is reproduced for exactly this row.
          GCORE_ASSIGN_OR_RETURN(bool ok,
                                 eval.EvalPredicate(*impl_->expr, table, r));
          if (ok) keep->push_back(r);
          break;
        }
      }
    }
  }
  return Status::OK();
}

void VecProgram::EvalValues(const BindingTable& table, const size_t* rows,
                            size_t n, std::vector<Datum>* out,
                            std::vector<uint8_t>* fallback) const {
  out->assign(n, Datum());
  fallback->assign(n, 0);
  Scratch s;
  s.bufs.resize(impl_->nodes.size());
  for (size_t base = 0; base < n; base += kBatchRows) {
    const size_t m = std::min(kBatchRows, n - base);
    s.strs.clear();
    s.sets.clear();
    s.owned.clear();
    impl_->EvalNode(impl_->root, table, rows + base, m, &s);
    const std::vector<Cell>& res = s.bufs[impl_->root];
    for (size_t i = 0; i < m; ++i) {
      if (res[i].tag == Tag::kFallback) {
        (*fallback)[base + i] = 1;
      } else {
        (*out)[base + i] = MaterializeDatum(res[i], s);
      }
    }
  }
}

}  // namespace gcore
