// Expression evaluation (Appendix A.1 "Expressions").
//
// ⟦ξ⟧ is computed per binding row; property access σ(x, k) yields a
// *set* of literals, and the comparison/membership semantics of pp. 8-9
// (singleton unwrap, `=` as set equality, `IN`, `SUBSET`, absent = ∅)
// are implemented here. EXISTS subqueries and implicit pattern
// predicates are delegated through callbacks wired by the engine.
//
// This row-at-a-time evaluator is the *executable spec* of expression
// semantics. The hot paths (WHERE conjuncts, residual filters, computed
// projections) run the vectorized kernel programs of eval/expr_vec.h
// instead, which are compiled from the same Expr trees and pinned to
// this evaluator cell-for-cell (including null/absent/multi-valued
// behavior and error precedence) by tests/eval/expr_vec_test.cc; rows
// the kernels can't decide replay through Eval/EvalPredicate here.
#ifndef GCORE_EVAL_EXPR_EVAL_H_
#define GCORE_EVAL_EXPR_EVAL_H_

#include <functional>
#include <string>

#include "ast/ast.h"
#include "eval/binding.h"
#include "graph/catalog.h"

namespace gcore {

class ExprEvaluator {
 public:
  /// Returns whether the subquery/pattern has at least one result when
  /// correlated with the given row.
  using ExistsCallback = std::function<Result<bool>(
      const Query&, const BindingTable&, size_t row)>;
  using PatternCallback = std::function<Result<bool>(
      const GraphPattern&, const BindingTable&, size_t row)>;

  /// `default_graph` resolves λ/σ lookups for columns without provenance;
  /// `catalog` (optional) resolves provenance graph names.
  ExprEvaluator(const PathPropertyGraph* default_graph,
                const GraphCatalog* catalog);

  void set_exists_callback(ExistsCallback cb) { exists_cb_ = std::move(cb); }
  void set_pattern_callback(PatternCallback cb) {
    pattern_cb_ = std::move(cb);
  }

  /// ⟦expr⟧ on one row. Aggregates are errors here (use EvalWithGroup).
  Result<Datum> Eval(const Expr& expr, const BindingTable& table,
                     size_t row) const;

  /// ⟦expr⟧ where aggregates range over `group_rows` and scalar parts are
  /// evaluated on the group representative (first row).
  Result<Datum> EvalWithGroup(const Expr& expr, const BindingTable& table,
                              const std::vector<size_t>& group_rows) const;

  /// Two-valued truthiness of a WHERE/WHEN condition: TRUE only for the
  /// singleton {⊤}; the empty set (absent data) is falsy.
  Result<bool> EvalPredicate(const Expr& expr, const BindingTable& table,
                             size_t row) const;

  /// λ/σ source graph for variable `var` of `table` (provenance column
  /// graph when recorded, else the default graph).
  const PathPropertyGraph* GraphFor(const BindingTable& table,
                                    const std::string& var) const;

  /// Truthiness of an already-computed datum.
  static Result<bool> Truthy(const Datum& datum);

 private:
  Result<Datum> EvalAggregate(const Expr& expr, const BindingTable& table,
                              const std::vector<size_t>& group_rows) const;
  Result<Datum> EvalBinary(const Expr& expr, const BindingTable& table,
                           size_t row) const;
  Result<Datum> EvalFunction(const Expr& expr, const BindingTable& table,
                             size_t row) const;

  const PathPropertyGraph* default_graph_;
  const GraphCatalog* catalog_;
  ExistsCallback exists_cb_;
  PatternCallback pattern_cb_;
};

/// Property lookup on whatever object `datum` denotes, against `graph`.
/// For computed (non-stored) paths, the only virtual property is "cost".
ValueSet DatumProperty(const Datum& datum, const std::string& key,
                       const PathPropertyGraph& graph);

/// Label set of the object `datum` denotes in `graph`.
LabelSet DatumLabels(const Datum& datum, const PathPropertyGraph& graph);

}  // namespace gcore

#endif  // GCORE_EVAL_EXPR_EVAL_H_
