// The MATCH evaluator: Appendix A.2.
//
// Evaluates full graph patterns (chains of node/edge/path patterns over
// possibly different graphs) into binding tables, applies WHERE filters
// (including EXISTS subqueries and implicit pattern predicates), and
// chains OPTIONAL blocks with left outer joins in source order.
//
// Since the planner refactor, `EvalMatchClause` lowers the clause to a
// logical plan (plan/planner.h), optimizes it, and runs it through the
// pull-based executor (plan/executor.h). The pre-planner recursive
// tree-walk is kept as a reference implementation (`use_planner = false`)
// for differential testing; both paths share the pattern-element
// primitives below, so their semantics cannot drift apart.
#ifndef GCORE_EVAL_MATCHER_H_
#define GCORE_EVAL_MATCHER_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "ast/ast.h"
#include "common/options.h"
#include "eval/binding.h"
#include "eval/expr_eval.h"
#include "eval/expr_vec.h"
#include "graph/adjacency.h"
#include "graph/catalog.h"
#include "graph/snapshot.h"
#include "paths/k_shortest.h"
#include "paths/path_view.h"

namespace gcore {

class ExecStats;  // plan/executor.h
struct PlanNode;  // plan/plan.h

/// Everything a match evaluation needs from its surroundings. The
/// evaluation knobs (planner on/off, optimizer rules, parallelism —
/// see common/options.h) are the inherited EngineOptions fields: the
/// engine assigns one frozen options struct in a single statement
/// instead of forwarding field by field.
struct MatcherContext : EngineOptions {
  GraphCatalog* catalog = nullptr;
  /// PATH views in scope (query head clauses). May be null.
  const PathViewRegistry* views = nullptr;
  /// Graph used when a pattern has no ON clause.
  std::string default_graph;
  /// Correlated-EXISTS hook (wired by the engine; may be empty — EXISTS
  /// then errors, naming the subquery).
  ExprEvaluator::ExistsCallback exists_cb;
  /// Resolved ON-(subquery) locations: the engine evaluates each
  /// pattern's subquery to a temporary catalog graph and records its name
  /// here before matching. May be null.
  const std::map<const GraphPattern*, std::string>* location_overrides =
      nullptr;
};

/// Result of evaluating one pattern chain with full element detail; used
/// by the engine to assemble PATH-view segment bodies.
struct ChainResult {
  BindingTable table;
  /// Column name of every chain element in order: node, connector, node,
  /// connector, ... (anonymous elements get generated "__anonN" names).
  std::vector<std::string> element_columns;
};

/// Pattern admission compiled once against a GraphSnapshot: label groups
/// are resolved to interned ids and literal kFilter props to (typed
/// column, literal) pairs, so the per-candidate test touches only dense
/// arrays — no string lookup, no std::map walk, no ValueSet
/// materialization. Semantics are exactly NodeAdmits/EdgeAdmits
/// (non-literal and bind-mode props stay the caller's business).
class SnapshotPred {
 public:
  static SnapshotPred ForNode(const GraphSnapshot& snap,
                              const NodePattern& node);
  static SnapshotPred ForEdge(const GraphSnapshot& snap,
                              const EdgePattern& edge);
  /// Labels only — the edge-side test ExpandEdgeHop applies inline
  /// (literal edge props are re-checked by ApplyPropPatterns with
  /// expression semantics, as before).
  static SnapshotPred ForEdgeLabels(const GraphSnapshot& snap,
                                    const EdgePattern& edge);

  /// Admission of a member object by dense node/edge index.
  bool Admits(uint32_t idx) const;
  /// True when no member can match (a label group with no interned label,
  /// or a filtered key no object carries): callers skip the scan.
  bool never() const { return never_; }
  /// True when the pattern constrains nothing — every object admits,
  /// including ids outside the snapshot (whose λ/σ are empty).
  bool unconstrained() const {
    return !never_ && groups_.empty() && filters_.empty();
  }
  /// A label every match must carry (some singleton label group), chosen
  /// with the smallest per-label index span — node scans iterate
  /// NodesWithLabel(scan_label()) instead of every node. kNoLabel when
  /// the pattern has no singleton group.
  uint32_t scan_label() const { return scan_label_; }

 private:
  SnapshotPred(const GraphSnapshot& snap, bool node_side,
               const std::vector<std::vector<std::string>>& label_groups,
               const std::vector<PropPattern>& props);

  const GraphSnapshot* snap_;
  bool node_side_;
  /// Interned label ids per group (any-of within, all-of across).
  std::vector<std::vector<uint32_t>> groups_;
  /// (column, literal) of each literal kFilter prop; the Value pointers
  /// alias the pattern AST, which outlives the predicate.
  std::vector<std::pair<const GraphSnapshot::PropertyColumn*, const Value*>>
      filters_;
  bool never_ = false;
  uint32_t scan_label_ = GraphSnapshot::kNoLabel;
};

/// The match runtime: pattern-element primitives plus per-evaluation
/// caches (graph snapshots, anonymous-column counter). Shared by the
/// legacy tree-walk and the plan executor.
class Matcher {
 public:
  explicit Matcher(MatcherContext ctx);

  /// ⟦MATCH γ WHERE ξ OPTIONAL ...⟧. Internal (anonymous) columns are
  /// dropped from the result. Plans + executes unless
  /// `ctx.use_planner = false`.
  Result<BindingTable> EvalMatchClause(const MatchClause& match);

  /// EvalMatchClause through the instrumented planner pipeline (EXPLAIN
  /// ANALYZE; always plans, regardless of ctx.use_planner): estimates
  /// are annotated, every operator records its actual output rows into
  /// `stats`, and the executed plan is handed out through `plan_out` for
  /// rendering (it references the match AST and this matcher's context).
  Result<BindingTable> EvalMatchClauseAnalyzed(
      const MatchClause& match, ExecStats* stats,
      std::unique_ptr<PlanNode>* plan_out);

  /// EvalMatchClause that hands the optimized plan out through `plan_out`
  /// after executing it (the plan-cache fill path). Planner mode only:
  /// with ctx.use_planner = false the legacy walk runs and `plan_out`
  /// stays null. The plan holds non-owning pointers into the match AST;
  /// the engine keeps the parsed query alive next to the cached tree.
  Result<BindingTable> EvalMatchClausePlanning(
      const MatchClause& match, std::unique_ptr<PlanNode>* plan_out);

  /// Executes `match` against an already-optimized plan (a plan-cache
  /// hit): no planning, no optimizer walk — straight to the executor.
  /// `plan` is shared, concurrently executed and never mutated; `match`
  /// must be the clause the plan was built from (same AST object, kept
  /// alive by the cache entry).
  Result<BindingTable> EvalMatchClauseWithPlan(const MatchClause& match,
                                               const PlanNode& plan);

  /// Joined evaluation of comma-separated patterns (no WHERE).
  Result<BindingTable> EvalPatterns(
      const std::vector<GraphPattern>& patterns);

  /// Chain evaluation preserving anonymous element columns.
  Result<ChainResult> EvalChainDetailed(const GraphPattern& pattern);

  /// True when `pattern` has at least one match compatible with row
  /// `row` of `outer` (the ⋉ of correlated predicates).
  Result<bool> PatternHasMatch(const GraphPattern& pattern,
                               const BindingTable& outer, size_t row);

  /// Resolves a graph name (or the default when empty); a registered
  /// *table* of that name is interpreted as a graph of isolated nodes
  /// (Section 5, "Interpreting tables as graphs").
  Result<const PathPropertyGraph*> ResolveGraph(const std::string& name);

  /// Columnar snapshot of `graph` (cached per graph pointer for the
  /// matcher's lifetime; shared with the catalog's cache when `graph` is
  /// the registered instance). Thread-safe: executor stages pre-warm the
  /// cache from the coordinator, but worker-thread lookups (and stray
  /// builds) serialize on an internal mutex.
  const GraphSnapshot& Snapshot(const PathPropertyGraph& graph) const;
  /// The snapshot's CSR topology (same cache).
  const AdjacencyIndex& Adjacency(const PathPropertyGraph& graph) {
    return Snapshot(graph).adjacency();
  }

  const MatcherContext& context() const { return ctx_; }

  // --- pattern-element primitives ------------------------------------------
  // Used by both evaluation paths; they extend/filter `table` in place.

  Result<BindingTable> MatchStartNode(const NodePattern& node,
                                      const PathPropertyGraph& graph,
                                      const std::string& graph_name,
                                      const std::string& var);
  Result<BindingTable> ExpandEdgeHop(BindingTable table,
                                     const std::string& from_var,
                                     const EdgePattern& edge,
                                     const std::string& edge_var,
                                     const NodePattern& to,
                                     const std::string& to_var,
                                     const PathPropertyGraph& graph,
                                     const std::string& graph_name);
  /// Batch-oriented: the source column is deduplicated and each distinct
  /// source answered by one batched kernel launch — multi-source product
  /// BFS for reachable sets, batched k-shortest, bidirectional pair
  /// probes for prebound targets, the `<~view*>` SSSP fast path — then a
  /// serial emission loop replays the rows in input order against the
  /// caches. Output rows, row order and fresh path ids are exactly those
  /// of per-row serial evaluation at every MatcherContext::parallelism
  /// degree (the kernels are degree-invariant and ids are drawn in
  /// row-emission order).
  Result<BindingTable> ExpandPathHop(
      BindingTable table, const std::string& from_var,
      const PathPattern& path, const std::string& path_var,
      const NodePattern& to, const std::string& to_var,
      const PathPropertyGraph& graph, const std::string& graph_name);

  /// Node-pattern admission (labels plus literal filter props; non-literal
  /// and bind-mode props are the caller's business). Shared by hop
  /// expansion and the multiway intersection operator (plan/wcoj.h).
  Result<bool> NodeAdmits(const NodePattern& node, NodeId id,
                          const PathPropertyGraph& graph);
  /// Edge-pattern admission: label groups plus literal filter props.
  bool EdgeAdmits(const EdgePattern& edge, EdgeId id,
                  const PathPropertyGraph& graph) const;

  /// Keeps the rows of `table` on which `predicate` holds.
  Result<BindingTable> FilterTable(BindingTable table, const Expr& predicate,
                                   const PathPropertyGraph* graph);

  /// Applies each conjunct in turn (pushdown filters of one operator).
  Result<BindingTable> FilterByConjuncts(
      BindingTable table, const std::vector<const Expr*>& conjuncts,
      const PathPropertyGraph* graph);

  /// Drops matcher-internal columns (restoring `output` order when given)
  /// and re-establishes set semantics. The shared tail of both paths;
  /// duplicate elimination is fused into row construction.
  BindingTable ProjectResult(const BindingTable& table,
                             const std::vector<std::string>* output) const;

  /// Column slicing of ProjectResult without the dedup: used by the
  /// executor's per-morsel projection stage, whose chunks merge through
  /// one fused dedup sink afterwards. Thread-safe.
  BindingTable ProjectChunk(const BindingTable& table,
                            const std::vector<std::string>* output) const;

  std::string FreshAnonName();
  ExprEvaluator MakeEvaluator(const PathPropertyGraph* graph);

  /// Vectorized program for `expr` over `table`'s schema (eval/expr_vec.h),
  /// or null when the expression needs the row evaluator. Compiled once
  /// and cached for the matcher's lifetime per (expression, schema,
  /// default graph); the snapshot cache pins every snapshot a program
  /// gathers from. Thread-safe; `expr` must outlive the matcher's use of
  /// the program (plan/AST lifetime — both outlive the evaluation).
  std::shared_ptr<const VecProgram> VecProgramFor(
      const Expr& expr, const BindingTable& table, const ExprEvaluator& eval,
      const PathPropertyGraph* default_graph) const;

 private:
  Result<BindingTable> LegacyEvalMatchClause(const MatchClause& match);
  /// The one authoritative plan-and-run sequence; `stats`/`plan_out` are
  /// the (nullable) EXPLAIN ANALYZE hooks.
  Result<BindingTable> PlanAndRunMatchClause(
      const MatchClause& match, ExecStats* stats,
      std::unique_ptr<PlanNode>* plan_out);
  Result<BindingTable> EvalChainInternal(const GraphPattern& pattern,
                                         ChainResult* detail);

  /// Label-group test: every group must have at least one matching label.
  static bool LabelsMatch(const LabelSet& labels,
                          const std::vector<std::vector<std::string>>& groups);

  /// Applies `{k = ...}` entries of a node/edge to rows of `table` whose
  /// column `var` holds the object; filters and unrolls bind-variables.
  Result<BindingTable> ApplyPropPatterns(BindingTable table,
                                         const std::string& var,
                                         const std::vector<PropPattern>& props,
                                         const PathPropertyGraph& graph);

  /// Applies pushed-down single-variable WHERE conjuncts for `var` (no-op
  /// when none are registered; legacy path only).
  Result<BindingTable> ApplyPushdownFilters(BindingTable table,
                                            const std::string& var,
                                            const PathPropertyGraph* graph);

  MatcherContext ctx_;
  /// When a MATCH clause names exactly one distinct ON graph, patterns
  /// without their own ON use it (the paper writes clause-level ON, e.g.
  /// line 70: `MATCH (n)-/@p:toWagner/->(), (m:Person) ON social_graph2`).
  std::string clause_on_override_;
  /// Selection pushdown (legacy path): single-variable conjuncts of the
  /// clause's WHERE, applied as soon as their variable is bound during
  /// chain evaluation — essential so `WHERE n.firstName = 'John'`
  /// restricts the *sources* of an expensive path hop instead of
  /// filtering afterwards. The full WHERE still runs afterwards
  /// (re-checking is harmless). In planner mode the same conjuncts live
  /// in the plan's scan/expand nodes instead.
  std::map<std::string, std::vector<const Expr*>> pushdown_filters_;
  mutable std::mutex adj_mu_;
  /// Per-query snapshot cache keyed by graph pointer; entries hold shared
  /// ownership so a catalog re-register cannot pull a snapshot out from
  /// under an in-flight evaluation.
  mutable std::map<const PathPropertyGraph*,
                   std::shared_ptr<const GraphSnapshot>>
      snapshot_cache_;
  /// Per-query graph pins keyed by resolved name: the first ResolveGraph
  /// of a name takes shared ownership, so every later resolution within
  /// this evaluation returns the same image even if the catalog
  /// re-registered the name mid-flight — an in-progress reader finishes
  /// on the graph version it started with.
  mutable std::map<std::string, std::shared_ptr<const PathPropertyGraph>>
      graph_pins_;
  /// Compiled vectorized programs keyed by (expression identity, schema
  /// signature): the same conjunct is compiled once per schema even
  /// though morsels arrive chunk by chunk. Negative results (null) are
  /// cached too, so uncompilable expressions pay the walk only once.
  mutable std::mutex vec_mu_;
  mutable std::map<std::pair<const Expr*, std::string>,
                   std::shared_ptr<const VecProgram>>
      vec_cache_;
  int anon_counter_ = 0;
};

/// True for matcher-internal generated column names.
bool IsInternalColumn(const std::string& name);

/// Splits `where` into AND-conjuncts and registers every pushdown-safe
/// single-variable conjunct under its variable (the pushdown rewrite rule;
/// shared by the legacy walk and the planner).
void CollectSingleVarConjuncts(
    const Expr& where,
    std::map<std::string, std::vector<const Expr*>>* out);

/// The single distinct ON graph named by the clause's patterns, or ""
/// (clause-level ON inference shared by both evaluation paths).
std::string ClauseOnOverride(const MatchClause& match);

/// The syntactic restriction of [31] (end of Section 3): variables shared
/// between OPTIONAL blocks must appear in the main pattern, making the
/// evaluation order immaterial.
Status CheckOptionalVariableSharing(const MatchClause& match);

}  // namespace gcore

#endif  // GCORE_EVAL_MATCHER_H_
