// Bindings and binding tables: the Ω of Appendix A.1.
//
// A binding µ is a partial function from variables to graph objects and
// literal sets; a BindingTable is a finite set of bindings with a shared
// column schema (a cell holds kUnbound for variables outside dom(µ),
// which is how OPTIONAL's left outer join represents missing matches).
//
// Storage is COLUMN-MAJOR (vectorized Ω, introduced behind the executor's
// morsel protocol): each Column keeps one kind-tag byte and one 64-bit
// slot per row in dense arrays. For the common kinds — kUnbound, kNode,
// kEdge — the slot *is* the raw object id, so scanning a column touches
// 9 bytes per row instead of a heap-allocated ~50-byte Datum. Heavy kinds
// (paths, value sets, node/edge lists) live out of line in the column's
// `overflow_` vector of Datums; the slot is the overflow index. The
// row-oriented API (`Row`, `At`, `Get`, `AddRow`, RowDedupSink::Insert)
// is preserved as materializing adapters, while the hot operators use the
// column-wise fast paths:
//
//   * key hashing / row hashing: `RowHash(r)` and `Column::HashAt` walk
//     the dense arrays and reproduce `HashRow` over a materialized row
//     bit-for-bit (the dedup sinks depend on that equivalence);
//   * TableJoin / TableJoinParallel build, probe and merge on typed key
//     columns (eval/binding_ops.cc) without materializing BindingRows;
//   * Matcher::FilterByConjuncts / FilterTable gather surviving row
//     indices column-at-a-time (`AppendRowsFrom`);
//   * Matcher::ExpandEdgeHop / ExpandPathHop read the source node column
//     through `Column::NodeAt` and emit rows with `AppendRowFrom`;
//   * ProjectChunk adopts whole columns (`AdoptProjectedColumns`) — the
//     executor's per-morsel projection stage does no per-row work at all;
//   * the executor slices morsels as column ranges (`Slice`,
//     `AppendSlice`) instead of copying rows;
//   * the vectorized expression kernels (eval/expr_vec.h) read predicate
//     and projection inputs straight from the kind/slot arrays (node and
//     edge columns feed property gathers against GraphSnapshot typed
//     columns), producing selection vectors over row indices instead of
//     materialized Datums.
//
// Datum itself is slim: dense kinds are stored inline, heavy payloads sit
// behind one immutable shared pointer, so copying a Datum never allocates.
#ifndef GCORE_EVAL_BINDING_H_
#define GCORE_EVAL_BINDING_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/id.h"
#include "common/result.h"
#include "common/value.h"
#include "graph/ppg.h"

namespace gcore {

/// A path bound to a variable. MATCH allocates *fresh* path identifiers
/// for computed paths (Appendix A.2, "µ(w) is a fresh path identifier
/// associated to the shortest path L"); stored paths keep their graph
/// identity. ALL-mode bindings carry the projection sets instead of a
/// single body.
struct PathValue {
  PathId id;
  PathBody body;
  double cost = 0.0;
  /// True when `id` identifies a stored path of the matched graph.
  bool from_graph = false;
  /// ALL-paths projection (mode kAll): every node/edge on some conforming
  /// walk. When set, `body` is empty.
  std::optional<std::pair<std::vector<NodeId>, std::vector<EdgeId>>>
      projection;
};

/// What one variable is bound to. Cheap to copy: node/edge ids are
/// inline, every heavy payload is behind one immutable shared pointer
/// (payloads are never mutated after construction, so sharing is safe).
class Datum {
 public:
  enum class Kind : uint8_t {
    kUnbound,
    kNode,
    kEdge,
    kPath,
    kValues,    // a finite set of literals (singleton for scalars)
    kNodeList,  // nodes(p)
    kEdgeList,  // edges(p)
  };

  Datum() : kind_(Kind::kUnbound) {}
  static Datum Unbound() { return Datum(); }
  static Datum OfNode(NodeId id);
  static Datum OfEdge(EdgeId id);
  static Datum OfPath(std::shared_ptr<const PathValue> path);
  static Datum OfValues(ValueSet values);
  static Datum OfValue(Value value) { return OfValues(ValueSet(value)); }
  static Datum OfBool(bool b) { return OfValue(Value::Bool(b)); }
  static Datum OfNodeList(std::vector<NodeId> nodes);
  static Datum OfEdgeList(std::vector<EdgeId> edges);

  Kind kind() const { return kind_; }
  bool IsUnbound() const { return kind_ == Kind::kUnbound; }
  bool IsBound() const { return kind_ != Kind::kUnbound; }

  NodeId node() const { return NodeId(id_); }
  EdgeId edge() const { return EdgeId(id_); }
  const PathValue& path() const { return *path_; }
  std::shared_ptr<const PathValue> path_ptr() const { return path_; }
  const ValueSet& values() const { return heavy_->values; }
  const std::vector<NodeId>& node_list() const { return heavy_->nodes; }
  const std::vector<EdgeId>& edge_list() const { return heavy_->edges; }

  /// Compatibility equality (µ1 ∼ µ2 on a shared variable). Paths compare
  /// by identifier.
  friend bool operator==(const Datum& a, const Datum& b);
  friend bool operator!=(const Datum& a, const Datum& b) { return !(a == b); }

  size_t Hash() const;
  std::string ToString() const;

 private:
  /// Out-of-line payload for kValues/kNodeList/kEdgeList.
  struct Heavy {
    ValueSet values;
    std::vector<NodeId> nodes;
    std::vector<EdgeId> edges;
  };

  Kind kind_;
  uint64_t id_ = 0;  // raw node/edge id for the dense kinds
  std::shared_ptr<const PathValue> path_;
  std::shared_ptr<const Heavy> heavy_;
};

/// One row = one binding µ (the materialized row-API view).
using BindingRow = std::vector<Datum>;

/// Order-sensitive hash mixing (the one formula every row/key hash in
/// the engine uses — the dedup sinks rely on reproducing row hashes
/// from row *parts*, so there must be exactly one mix).
inline size_t HashCombine(size_t h, size_t value_hash) {
  return h ^ (value_hash + 0x9e3779b9 + (h << 6) + (h >> 2));
}

/// Column-major storage for one variable: one kind byte + one 64-bit slot
/// per row. Dense kinds (kUnbound/kNode/kEdge) store the raw id in the
/// slot; heavy kinds store an index into the out-of-line `overflow_`
/// Datum vector. `HashAt`/`CellsEqual`/`EqualsAt` reproduce Datum::Hash
/// and Datum::operator== exactly, so column-wise dedup and join probing
/// agree with the row-walk formulas bit-for-bit.
class Column {
 public:
  using Kind = Datum::Kind;

  size_t size() const { return kinds_.size(); }
  Kind KindAt(size_t i) const { return static_cast<Kind>(kinds_[i]); }
  bool BoundAt(size_t i) const { return KindAt(i) != Kind::kUnbound; }
  /// Valid only when KindAt(i) is the matching kind.
  NodeId NodeAt(size_t i) const { return NodeId(slots_[i]); }
  EdgeId EdgeAt(size_t i) const { return EdgeId(slots_[i]); }
  /// The out-of-line Datum of a heavy cell.
  const Datum& HeavyAt(size_t i) const { return overflow_[slots_[i]]; }

  /// Materializes cell `i` (the row-API adapter).
  Datum DatumAt(size_t i) const;
  /// == DatumAt(i).Hash(), computed without materializing.
  size_t HashAt(size_t i) const;
  /// == (DatumAt(i) == d), computed without materializing.
  bool EqualsAt(size_t i, const Datum& d) const;
  /// == (a.DatumAt(i) == b.DatumAt(j)).
  static bool CellsEqual(const Column& a, size_t i, const Column& b,
                         size_t j);

  void Append(Datum d);
  void AppendUnbound() {
    kinds_.push_back(static_cast<uint8_t>(Kind::kUnbound));
    slots_.push_back(0);
  }
  /// Appends a copy of src's cell `i` (heavy cells copy the slim Datum —
  /// a shared-pointer bump, no payload allocation).
  void AppendFrom(const Column& src, size_t i);
  /// Appends src's cells [begin, end) — bulk vector inserts when the
  /// source column has no heavy cells.
  void AppendRange(const Column& src, size_t begin, size_t end);
  /// Appends src's cells at `rows`, in order (the filter/dedup gather).
  void AppendIndexed(const Column& src, const std::vector<size_t>& rows);
  /// Overwrites cell `i`.
  void Set(size_t i, Datum d);
  void Reserve(size_t rows) {
    kinds_.reserve(rows);
    slots_.reserve(rows);
  }

 private:
  static bool IsDense(Kind k) {
    return k == Kind::kUnbound || k == Kind::kNode || k == Kind::kEdge;
  }

  std::vector<uint8_t> kinds_;
  std::vector<uint64_t> slots_;
  std::vector<Datum> overflow_;
};

/// A set of bindings over a fixed column schema, stored column-major.
class BindingTable {
 public:
  BindingTable() = default;
  explicit BindingTable(std::vector<std::string> columns);

  /// The canonical singleton {µ∅}: one row, no columns — the identity for
  /// the join operator.
  static BindingTable Unit();

  const std::vector<std::string>& columns() const { return columns_; }
  size_t NumColumns() const { return columns_.size(); }
  size_t NumRows() const { return num_rows_; }
  bool Empty() const { return num_rows_ == 0; }

  static constexpr size_t kNpos = ~size_t{0};
  /// O(1): a name→index map is kept in sync by the constructor and
  /// AddColumn (per-cell Get/provenance lookups used to re-scan the
  /// column names linearly).
  size_t ColumnIndex(const std::string& name) const;
  bool HasColumn(const std::string& name) const {
    return ColumnIndex(name) != kNpos;
  }
  /// Appends a column (existing rows get kUnbound); returns its index.
  size_t AddColumn(const std::string& name);

  // --- row-oriented adapters -----------------------------------------------

  Status AddRow(BindingRow row);
  /// Materializes row `i`.
  BindingRow Row(size_t i) const;
  /// Materializes one cell (dense kinds are allocation-free; heavy kinds
  /// bump a shared pointer).
  Datum At(size_t row, size_t col) const { return cols_[col].DatumAt(row); }
  /// Datum of `var` in row `row`; kUnbound when the column is absent.
  Datum Get(size_t row, const std::string& var) const;

  // --- column-oriented fast paths ------------------------------------------

  const Column& ColumnAt(size_t c) const { return cols_[c]; }
  /// Overwrites one cell (CONSTRUCT's variable extension).
  void SetCell(size_t row, size_t col, Datum d) {
    cols_[col].Set(row, std::move(d));
  }

  /// == HashRow(Row(i)), computed column-wise.
  size_t RowHash(size_t i) const;
  /// == (Row(i) == row).
  bool RowEquals(size_t i, const BindingRow& row) const;
  /// == (a.Row(i) == b.Row(j)); requires equal arity.
  static bool RowsEqual(const BindingTable& a, size_t i,
                        const BindingTable& b, size_t j);

  /// Appends a copy of src's row `r`. src's columns must be a positional
  /// prefix of this table's (the operators build outputs as
  /// input-schema + appended columns); missing columns pad with kUnbound.
  void AppendRowFrom(const BindingTable& src, size_t r);
  /// Gathers src's rows at `rows` column-at-a-time (same prefix rule).
  void AppendRowsFrom(const BindingTable& src,
                      const std::vector<size_t>& rows);
  /// Appends src's rows [begin, end); requires identical arity.
  void AppendSlice(const BindingTable& src, size_t begin, size_t end);
  /// Appends every row of src (chunk concatenation).
  void AppendTable(const BindingTable& src) {
    AppendSlice(src, 0, src.NumRows());
  }
  /// Rows [begin, end) as a new table with this schema and provenance —
  /// the executor's morsel slicing (column-range copies, no row walks).
  BindingTable Slice(size_t begin, size_t end) const;
  /// Steals src's columns for projection: column `k` of this table
  /// becomes a copy of src's column kept[k]. Requires an empty table with
  /// kept.size() == NumColumns().
  void AdoptProjectedColumns(const BindingTable& src,
                             const std::vector<size_t>& kept);
  /// AdoptProjectedColumns over an expiring source: columns *move* out of
  /// src (left unspecified) instead of deep-copying their dense arrays; a
  /// kept index repeated for several positions copies from the first
  /// adopted one. The swapped-join canonical re-merge uses this so the
  /// large join result is never materialized twice.
  void AdoptProjectedColumnsMove(BindingTable&& src,
                                 const std::vector<size_t>& kept);
  void ReserveRows(size_t rows) {
    for (auto& c : cols_) c.Reserve(rows);
  }

  /// Low-level columnar writers for the join/union merge loops: append
  /// one cell into each column (in any order), then CommitRow() exactly
  /// once per assembled row.
  Column& MutableColumn(size_t c) { return cols_[c]; }
  void CommitRow() { ++num_rows_; }

  /// Removes duplicate rows (bindings form a *set*), keeping the first
  /// occurrence of each binding in place. Fallback for tables built
  /// without a RowDedupSink; fused construction paths never need it.
  void Deduplicate();

  /// Which graph each object column was matched on; used by CONSTRUCT to
  /// copy λ/σ of bound objects (Section 3, "labels and properties ... are
  /// preserved in the returned result graph").
  void SetColumnGraph(const std::string& var, const std::string& graph);
  /// Empty string when unknown.
  const std::string& ColumnGraph(const std::string& var) const;
  const std::map<std::string, std::string>& column_graphs() const {
    return column_graphs_;
  }

  std::string ToString() const;

 private:
  std::vector<std::string> columns_;
  std::vector<Column> cols_;
  size_t num_rows_ = 0;
  std::map<std::string, std::string> column_graphs_;
  /// name → column index, kept in sync with columns_ (first index wins
  /// for duplicate names, matching the old linear scan).
  std::unordered_map<std::string, size_t> name_index_;
};

/// Combined hash of a full binding row (order-sensitive over columns).
/// BindingTable::RowHash(i) reproduces this over columnar storage.
size_t HashRow(const BindingRow& row);

/// Open-addressed (hash, row index) set shared by the fused dedup sinks:
/// linear probing over power-of-two slots, grown below ~70% load, no
/// per-insert allocation.
class RowIndexSet {
 public:
  RowIndexSet();
  /// Pre-sizes for `entries` insertions.
  void Reserve(size_t entries);

  /// Inserts `index` under `hash` unless `eq(stored_index)` is true for
  /// some already-stored index with an equal hash. Returns true when
  /// inserted.
  template <typename EqFn>
  bool InsertIfNew(size_t hash, size_t index, EqFn eq) {
    if ((used_ + 1) * 10 > slots_.size() * 7) Grow();
    const size_t mask = slots_.size() - 1;
    size_t pos = hash & mask;
    while (slots_[pos].second != 0) {
      if (slots_[pos].first == hash && eq(slots_[pos].second - 1)) {
        return false;
      }
      pos = (pos + 1) & mask;
    }
    slots_[pos] = {hash, index + 1};
    ++used_;
    return true;
  }

 private:
  void Grow();

  /// (hash, row index + 1); second == 0 marks an empty slot.
  std::vector<std::pair<size_t, size_t>> slots_;
  size_t used_ = 0;
};

/// Fused duplicate elimination: rows are tested against the sink's seen
/// set *as they are constructed*, so the target table is duplicate-free
/// by construction — no trailing Deduplicate() pass and no re-hash of
/// already-stored rows. The seen set holds row *indices* into the target
/// table; stored rows are compared column-wise, never materialized.
///
/// The target table must not gain rows behind the sink's back while the
/// sink is live (indices would go stale); starting from a non-empty
/// table is fine — existing rows are indexed on construction.
class RowDedupSink {
 public:
  explicit RowDedupSink(BindingTable* out);

  /// Appends `row` unless an equal row is already in the table. `hash`
  /// must equal HashRow(row) — callers that already computed it (e.g.
  /// parallel join merges) avoid re-hashing. Returns true if appended.
  bool Insert(BindingRow row, size_t hash);
  bool Insert(BindingRow row) {
    const size_t h = HashRow(row);
    return Insert(std::move(row), h);
  }

  /// Columnar insert: appends a copy of src's row `r` (same positional
  /// schema as the target) unless an equal row is present. `hash` must
  /// equal src.RowHash(r). No BindingRow is materialized either way.
  bool InsertFrom(const BindingTable& src, size_t r, size_t hash);
  bool InsertFrom(const BindingTable& src, size_t r) {
    return InsertFrom(src, r, src.RowHash(r));
  }

 private:
  BindingTable* out_;
  RowIndexSet seen_;
};

}  // namespace gcore

#endif  // GCORE_EVAL_BINDING_H_
