// Bindings and binding tables: the Ω of Appendix A.1.
//
// A binding µ is a partial function from variables to graph objects and
// literal sets; a BindingTable is a finite set of bindings with a shared
// column schema (a row stores kUnbound for variables outside dom(µ),
// which is how OPTIONAL's left outer join represents missing matches).
#ifndef GCORE_EVAL_BINDING_H_
#define GCORE_EVAL_BINDING_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/id.h"
#include "common/result.h"
#include "common/value.h"
#include "graph/ppg.h"

namespace gcore {

/// A path bound to a variable. MATCH allocates *fresh* path identifiers
/// for computed paths (Appendix A.2, "µ(w) is a fresh path identifier
/// associated to the shortest path L"); stored paths keep their graph
/// identity. ALL-mode bindings carry the projection sets instead of a
/// single body.
struct PathValue {
  PathId id;
  PathBody body;
  double cost = 0.0;
  /// True when `id` identifies a stored path of the matched graph.
  bool from_graph = false;
  /// ALL-paths projection (mode kAll): every node/edge on some conforming
  /// walk. When set, `body` is empty.
  std::optional<std::pair<std::vector<NodeId>, std::vector<EdgeId>>>
      projection;
};

/// What one variable is bound to.
class Datum {
 public:
  enum class Kind : uint8_t {
    kUnbound,
    kNode,
    kEdge,
    kPath,
    kValues,    // a finite set of literals (singleton for scalars)
    kNodeList,  // nodes(p)
    kEdgeList,  // edges(p)
  };

  Datum() : kind_(Kind::kUnbound) {}
  static Datum Unbound() { return Datum(); }
  static Datum OfNode(NodeId id);
  static Datum OfEdge(EdgeId id);
  static Datum OfPath(std::shared_ptr<const PathValue> path);
  static Datum OfValues(ValueSet values);
  static Datum OfValue(Value value) { return OfValues(ValueSet(value)); }
  static Datum OfBool(bool b) { return OfValue(Value::Bool(b)); }
  static Datum OfNodeList(std::vector<NodeId> nodes);
  static Datum OfEdgeList(std::vector<EdgeId> edges);

  Kind kind() const { return kind_; }
  bool IsUnbound() const { return kind_ == Kind::kUnbound; }
  bool IsBound() const { return kind_ != Kind::kUnbound; }

  NodeId node() const { return node_; }
  EdgeId edge() const { return edge_; }
  const PathValue& path() const { return *path_; }
  std::shared_ptr<const PathValue> path_ptr() const { return path_; }
  const ValueSet& values() const { return values_; }
  const std::vector<NodeId>& node_list() const { return nodes_; }
  const std::vector<EdgeId>& edge_list() const { return edges_; }

  /// Compatibility equality (µ1 ∼ µ2 on a shared variable). Paths compare
  /// by identifier.
  friend bool operator==(const Datum& a, const Datum& b);
  friend bool operator!=(const Datum& a, const Datum& b) { return !(a == b); }

  size_t Hash() const;
  std::string ToString() const;

 private:
  Kind kind_;
  NodeId node_;
  EdgeId edge_;
  std::shared_ptr<const PathValue> path_;
  ValueSet values_;
  std::vector<NodeId> nodes_;
  std::vector<EdgeId> edges_;
};

/// One row = one binding µ.
using BindingRow = std::vector<Datum>;

/// A set of bindings over a fixed column schema.
class BindingTable {
 public:
  BindingTable() = default;
  explicit BindingTable(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  /// The canonical singleton {µ∅}: one row, no columns — the identity for
  /// the join operator.
  static BindingTable Unit();

  const std::vector<std::string>& columns() const { return columns_; }
  size_t NumColumns() const { return columns_.size(); }
  size_t NumRows() const { return rows_.size(); }
  bool Empty() const { return rows_.empty(); }

  static constexpr size_t kNpos = ~size_t{0};
  size_t ColumnIndex(const std::string& name) const;
  bool HasColumn(const std::string& name) const {
    return ColumnIndex(name) != kNpos;
  }
  /// Appends a column (existing rows get kUnbound); returns its index.
  size_t AddColumn(const std::string& name);

  Status AddRow(BindingRow row);
  const BindingRow& Row(size_t i) const { return rows_[i]; }
  const std::vector<BindingRow>& rows() const { return rows_; }
  std::vector<BindingRow>& mutable_rows() { return rows_; }

  const Datum& At(size_t row, size_t col) const { return rows_[row][col]; }
  /// Datum of `var` in row `row`; kUnbound when the column is absent.
  const Datum& Get(size_t row, const std::string& var) const;

  /// Removes duplicate rows (bindings form a *set*), keeping the first
  /// occurrence of each binding in place. Fallback for tables built
  /// without a RowDedupSink; fused construction paths never need it.
  void Deduplicate();

  /// Which graph each object column was matched on; used by CONSTRUCT to
  /// copy λ/σ of bound objects (Section 3, "labels and properties ... are
  /// preserved in the returned result graph").
  void SetColumnGraph(const std::string& var, const std::string& graph);
  /// Empty string when unknown.
  const std::string& ColumnGraph(const std::string& var) const;
  const std::map<std::string, std::string>& column_graphs() const {
    return column_graphs_;
  }

  std::string ToString() const;

 private:
  std::vector<std::string> columns_;
  std::vector<BindingRow> rows_;
  std::map<std::string, std::string> column_graphs_;
};

/// Order-sensitive hash mixing (the one formula every row/key hash in
/// the engine uses — the dedup sinks rely on reproducing row hashes
/// from row *parts*, so there must be exactly one mix).
inline size_t HashCombine(size_t h, size_t value_hash) {
  return h ^ (value_hash + 0x9e3779b9 + (h << 6) + (h >> 2));
}

/// Combined hash of a full binding row (order-sensitive over columns).
size_t HashRow(const BindingRow& row);

/// Open-addressed (hash, row index) set shared by the fused dedup sinks:
/// linear probing over power-of-two slots, grown below ~70% load, no
/// per-insert allocation.
class RowIndexSet {
 public:
  RowIndexSet();
  /// Pre-sizes for `entries` insertions.
  void Reserve(size_t entries);

  /// Inserts `index` under `hash` unless `eq(stored_index)` is true for
  /// some already-stored index with an equal hash. Returns true when
  /// inserted.
  template <typename EqFn>
  bool InsertIfNew(size_t hash, size_t index, EqFn eq) {
    if ((used_ + 1) * 10 > slots_.size() * 7) Grow();
    const size_t mask = slots_.size() - 1;
    size_t pos = hash & mask;
    while (slots_[pos].second != 0) {
      if (slots_[pos].first == hash && eq(slots_[pos].second - 1)) {
        return false;
      }
      pos = (pos + 1) & mask;
    }
    slots_[pos] = {hash, index + 1};
    ++used_;
    return true;
  }

 private:
  void Grow();

  /// (hash, row index + 1); second == 0 marks an empty slot.
  std::vector<std::pair<size_t, size_t>> slots_;
  size_t used_ = 0;
};

/// Fused duplicate elimination: rows are tested against the sink's seen
/// set *as they are constructed*, so the target table is duplicate-free
/// by construction — no trailing Deduplicate() pass and no re-hash of
/// already-stored rows. The seen set holds row *indices* into the target
/// table, so target-vector reallocation is harmless.
///
/// The target table must not gain rows behind the sink's back while the
/// sink is live (indices would go stale); starting from a non-empty
/// table is fine — existing rows are indexed on construction.
class RowDedupSink {
 public:
  explicit RowDedupSink(BindingTable* out);

  /// Appends `row` unless an equal row is already in the table. `hash`
  /// must equal HashRow(row) — callers that already computed it (e.g.
  /// parallel join merges) avoid re-hashing. Returns true if appended.
  bool Insert(BindingRow row, size_t hash);
  bool Insert(BindingRow row) {
    const size_t h = HashRow(row);
    return Insert(std::move(row), h);
  }

 private:
  BindingTable* out_;
  RowIndexSet seen_;
};

}  // namespace gcore

#endif  // GCORE_EVAL_BINDING_H_
