#include "eval/matcher.h"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <set>

#include "engine/tabular.h"
#include "eval/binding_ops.h"
#include "graph/stats.h"
#include "paths/all_paths.h"
#include "paths/batched_bfs.h"
#include "paths/delta_stepping.h"
#include "paths/frontier.h"
#include "paths/product_bfs.h"
#include "paths/rpq.h"
#include "plan/executor.h"
#include "plan/planner.h"

namespace gcore {

namespace {
constexpr const char* kAnonPrefix = "__anon";
}  // namespace

bool IsInternalColumn(const std::string& name) {
  return name.rfind(kAnonPrefix, 0) == 0;
}

void CollectSingleVarConjuncts(
    const Expr& where,
    std::map<std::string, std::vector<const Expr*>>* out) {
  std::vector<const Expr*> conjuncts;
  std::vector<const Expr*> stack{&where};
  while (!stack.empty()) {
    const Expr* e = stack.back();
    stack.pop_back();
    if (e->kind == Expr::Kind::kBinary && e->binary_op == BinaryOp::kAnd) {
      stack.push_back(e->args[0].get());
      stack.push_back(e->args[1].get());
    } else {
      conjuncts.push_back(e);
    }
  }
  for (const Expr* conjunct : conjuncts) {
    if (conjunct->ContainsAggregate()) continue;
    if (conjunct->kind == Expr::Kind::kExists) continue;
    std::vector<std::string> vars;
    conjunct->CollectVariables(&vars);
    if (vars.size() == 1) {
      (*out)[vars.front()].push_back(conjunct);
    }
  }
}

std::string ClauseOnOverride(const MatchClause& match) {
  std::set<std::string> named;
  for (const auto& p : match.patterns) {
    if (!p.on_graph.empty()) named.insert(p.on_graph);
  }
  for (const auto& block : match.optionals) {
    for (const auto& p : block.patterns) {
      if (!p.on_graph.empty()) named.insert(p.on_graph);
    }
  }
  return named.size() == 1 ? *named.begin() : std::string();
}

Status CheckOptionalVariableSharing(const MatchClause& match) {
  if (match.optionals.size() <= 1) return Status::OK();
  std::vector<std::string> main_vars;
  for (const auto& p : match.patterns) p.CollectBoundVariables(&main_vars);
  std::set<std::string> main_set(main_vars.begin(), main_vars.end());
  std::vector<std::set<std::string>> block_vars;
  for (const auto& block : match.optionals) {
    std::vector<std::string> vars;
    for (const auto& p : block.patterns) p.CollectBoundVariables(&vars);
    block_vars.emplace_back(vars.begin(), vars.end());
  }
  for (size_t i = 0; i < block_vars.size(); ++i) {
    for (size_t j = i + 1; j < block_vars.size(); ++j) {
      for (const auto& v : block_vars[i]) {
        if (block_vars[j].count(v) > 0 && main_set.count(v) == 0) {
          return Status::BindError(
              "variable '" + v +
              "' is shared by OPTIONAL blocks but absent from the "
              "enclosing pattern (evaluation-order ambiguity)");
        }
      }
    }
  }
  return Status::OK();
}

namespace {
const std::vector<PropPattern> kNoProps;
}  // namespace

SnapshotPred::SnapshotPred(
    const GraphSnapshot& snap, bool node_side,
    const std::vector<std::vector<std::string>>& label_groups,
    const std::vector<PropPattern>& props)
    : snap_(&snap), node_side_(node_side) {
  for (const auto& group : label_groups) {
    std::vector<uint32_t> ids;
    for (const auto& name : group) {
      const uint32_t id = snap.LabelId(name);
      if (id != GraphSnapshot::kNoLabel) ids.push_back(id);
    }
    if (ids.empty()) {
      // No object in the graph carries any label of this group.
      never_ = true;
      return;
    }
    groups_.push_back(std::move(ids));
  }
  for (const auto& p : props) {
    if (p.mode != PropPattern::Mode::kFilter) continue;
    if (p.value->kind != Expr::Kind::kLiteral) continue;  // row-dependent
    const GraphSnapshot::PropertyColumn* col =
        node_side ? snap.NodeColumn(p.key) : snap.EdgeColumn(p.key);
    if (col == nullptr) {
      // σ(x, key) = ∅ for every member: Contains can never hold.
      never_ = true;
      return;
    }
    filters_.emplace_back(col, &p.value->value);
  }
  if (node_side) {
    size_t best = ~size_t{0};
    for (const auto& ids : groups_) {
      if (ids.size() != 1) continue;  // a disjunction can't drive the scan
      const size_t span = snap.NodesWithLabel(ids[0]).size();
      if (span < best) {
        best = span;
        scan_label_ = ids[0];
      }
    }
  }
}

SnapshotPred SnapshotPred::ForNode(const GraphSnapshot& snap,
                                   const NodePattern& node) {
  return SnapshotPred(snap, /*node_side=*/true, node.label_groups, node.props);
}

SnapshotPred SnapshotPred::ForEdge(const GraphSnapshot& snap,
                                   const EdgePattern& edge) {
  return SnapshotPred(snap, /*node_side=*/false, edge.label_groups,
                      edge.props);
}

SnapshotPred SnapshotPred::ForEdgeLabels(const GraphSnapshot& snap,
                                         const EdgePattern& edge) {
  return SnapshotPred(snap, /*node_side=*/false, edge.label_groups, kNoProps);
}

bool SnapshotPred::Admits(uint32_t idx) const {
  if (never_) return false;
  for (const auto& ids : groups_) {
    bool any = false;
    for (const uint32_t l : ids) {
      if (node_side_ ? snap_->NodeHasLabel(idx, l)
                     : snap_->EdgeHasLabel(idx, l)) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  for (const auto& [col, v] : filters_) {
    if (!snap_->CellContains(*col, idx, *v)) return false;
  }
  return true;
}

Matcher::Matcher(MatcherContext ctx) : ctx_(std::move(ctx)) {}

std::string Matcher::FreshAnonName() {
  return kAnonPrefix + std::to_string(anon_counter_++);
}

ExprEvaluator Matcher::MakeEvaluator(const PathPropertyGraph* graph) {
  ExprEvaluator eval(graph, ctx_.catalog);
  eval.set_pattern_callback(
      [this](const GraphPattern& pattern, const BindingTable& outer,
             size_t row) { return PatternHasMatch(pattern, outer, row); });
  if (ctx_.exists_cb) eval.set_exists_callback(ctx_.exists_cb);
  return eval;
}

std::shared_ptr<const VecProgram> Matcher::VecProgramFor(
    const Expr& expr, const BindingTable& table, const ExprEvaluator& eval,
    const PathPropertyGraph* default_graph) const {
  // Schema signature: default-graph identity plus every column name and
  // every per-column provenance entry, in order. Equal signatures mean
  // Compile would resolve the same column indices against the same
  // property columns, so the cached program is exactly the one a fresh
  // compilation would produce.
  std::string sig =
      std::to_string(reinterpret_cast<uintptr_t>(default_graph));
  for (const auto& name : table.columns()) {
    sig += '|';
    sig += name;
  }
  for (const auto& [var, graph_name] : table.column_graphs()) {
    sig += ';';
    sig += var;
    sig += '=';
    sig += graph_name;
  }
  std::pair<const Expr*, std::string> key(&expr, std::move(sig));
  {
    std::lock_guard<std::mutex> lock(vec_mu_);
    auto it = vec_cache_.find(key);
    if (it != vec_cache_.end()) return it->second;
  }
  // Compile outside the lock (it walks the expression and may freeze a
  // snapshot); a racing duplicate compilation is harmless — emplace keeps
  // the first program and drops ours.
  std::shared_ptr<const VecProgram> prog = VecProgram::Compile(
      expr, table, eval,
      [this](const PathPropertyGraph& g) -> const GraphSnapshot& {
        return Snapshot(g);
      });
  std::lock_guard<std::mutex> lock(vec_mu_);
  return vec_cache_.emplace(std::move(key), std::move(prog)).first->second;
}

Result<const PathPropertyGraph*> Matcher::ResolveGraph(
    const std::string& name) {
  const std::string& fallback =
      clause_on_override_.empty() ? ctx_.default_graph : clause_on_override_;
  const std::string& resolved = name.empty() ? fallback : name;
  if (resolved.empty()) {
    return Status::BindError(
        "no ON graph given and no default graph is set");
  }
  // Pin on first resolution: the name maps to one graph image for this
  // matcher's whole lifetime, so a concurrent catalog re-registration
  // cannot swap the graph out mid-evaluation (new sessions see the new
  // version; we finish on ours).
  {
    std::lock_guard<std::mutex> lock(adj_mu_);
    auto pinned = graph_pins_.find(resolved);
    if (pinned != graph_pins_.end()) return pinned->second.get();
  }
  auto shared = ctx_.catalog->LookupShared(resolved);
  if (!shared.ok()) {
    // Section 5: a table name after ON denotes a graph of isolated nodes.
    // The synthesized graph is registered in the catalog (under the
    // table's name) so provenance-based λ/σ lookups resolve during
    // CONSTRUCT.
    if (!ctx_.catalog->HasTable(resolved)) {
      return Status::NotFound("graph '" + resolved +
                              "' is not in the catalog");
    }
    GCORE_ASSIGN_OR_RETURN(const Table* table,
                           ctx_.catalog->LookupTable(resolved));
    PathPropertyGraph graph = TableAsGraph(*table, ctx_.catalog->ids());
    ctx_.catalog->RegisterGraphFromTable(resolved, std::move(graph));
    shared = ctx_.catalog->LookupShared(resolved);
    if (!shared.ok()) return shared.status();
  }
  std::lock_guard<std::mutex> lock(adj_mu_);
  auto [it, inserted] = graph_pins_.emplace(resolved, std::move(*shared));
  return it->second.get();
}

const GraphSnapshot& Matcher::Snapshot(const PathPropertyGraph& graph) const {
  std::lock_guard<std::mutex> lock(adj_mu_);
  auto it = snapshot_cache_.find(&graph);
  if (it == snapshot_cache_.end()) {
    std::shared_ptr<const GraphSnapshot> snap;
    // When `graph` is the catalog-registered instance, share (and seed)
    // the catalog's snapshot cache instead of freezing a second copy.
    if (ctx_.catalog != nullptr && !graph.name().empty()) {
      auto registered = ctx_.catalog->Lookup(graph.name());
      if (registered.ok() && *registered == &graph) {
        auto cached = ctx_.catalog->Snapshot(graph.name());
        if (cached.ok()) snap = *cached;
      }
    }
    if (snap == nullptr) snap = std::make_shared<const GraphSnapshot>(graph);
    it = snapshot_cache_.emplace(&graph, std::move(snap)).first;
  }
  return *it->second;
}

bool Matcher::LabelsMatch(
    const LabelSet& labels,
    const std::vector<std::vector<std::string>>& groups) {
  for (const auto& group : groups) {
    bool any = false;
    for (const auto& l : group) {
      if (labels.Contains(l)) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  return true;
}

bool Matcher::EdgeAdmits(const EdgePattern& edge, EdgeId id,
                         const PathPropertyGraph& graph) const {
  const GraphSnapshot& snap = Snapshot(graph);
  const SnapshotPred pred = SnapshotPred::ForEdge(snap, edge);
  const DenseEdgeIndex e = snap.FindEdge(id);
  // A non-member has empty λ/σ: it admits exactly when the pattern
  // imposes nothing (the PPG accessors' missing-id semantics).
  if (e == GraphSnapshot::kNoEdge) return pred.unconstrained();
  return pred.Admits(e);
}

Result<bool> Matcher::NodeAdmits(const NodePattern& node, NodeId id,
                                 const PathPropertyGraph& graph) {
  // Filter-mode props are checked here; bind-mode props are applied by
  // ApplyPropPatterns after the column exists.
  const GraphSnapshot& snap = Snapshot(graph);
  const SnapshotPred pred = SnapshotPred::ForNode(snap, node);
  if (!snap.adjacency().Contains(id)) return pred.unconstrained();
  return pred.Admits(snap.adjacency().IndexOf(id));
}

Result<BindingTable> Matcher::MatchStartNode(const NodePattern& node,
                                             const PathPropertyGraph& graph,
                                             const std::string& graph_name,
                                             const std::string& var) {
  BindingTable table({var});
  table.SetColumnGraph(var, graph_name);
  const GraphSnapshot& snap = Snapshot(graph);
  const SnapshotPred pred = SnapshotPred::ForNode(snap, node);
  const AdjacencyIndex& adj = snap.adjacency();
  auto emit = [&](DenseNodeIndex n) {
    if (!pred.Admits(n)) return;
    // Dense append straight into the node column (no per-row
    // BindingRow allocation).
    table.MutableColumn(0).Append(Datum::OfNode(adj.IdOf(n)));
    table.CommitRow();
  };
  if (pred.never()) {
    // Fall through with no rows.
  } else if (pred.scan_label() != GraphSnapshot::kNoLabel) {
    // Label-span scan: only the nodes carrying a required label, already
    // in ascending id order (the order ForEachNode would visit).
    for (const DenseNodeIndex n : snap.NodesWithLabel(pred.scan_label())) {
      emit(n);
    }
  } else {
    for (size_t n = 0; n < snap.num_nodes(); ++n) {
      emit(static_cast<DenseNodeIndex>(n));
    }
  }
  return ApplyPropPatterns(std::move(table), var, node.props, graph);
}

Result<BindingTable> Matcher::ApplyPropPatterns(
    BindingTable table, const std::string& var,
    const std::vector<PropPattern>& props, const PathPropertyGraph& graph) {
  ExprEvaluator eval = MakeEvaluator(&graph);
  for (const auto& p : props) {
    const size_t obj_col = table.ColumnIndex(var);
    if (obj_col == BindingTable::kNpos) {
      return Status::BindError("property pattern on unbound variable " + var);
    }
    if (p.mode == PropPattern::Mode::kAssign) {
      return Status::BindError(
          "':=' assignment is only valid in CONSTRUCT patterns");
    }
    BindingTable next(table.columns());
    for (const auto& [v, g] : table.column_graphs()) next.SetColumnGraph(v, g);
    size_t bind_col = BindingTable::kNpos;
    if (p.mode == PropPattern::Mode::kBindVariable) {
      bind_col = next.AddColumn(p.bind_var);
    }
    const size_t existing = table.ColumnIndex(p.bind_var);
    for (size_t r = 0; r < table.NumRows(); ++r) {
      const Datum obj = table.At(r, obj_col);
      const ValueSet stored = DatumProperty(obj, p.key, graph);
      if (p.mode == PropPattern::Mode::kFilter) {
        GCORE_ASSIGN_OR_RETURN(Datum want, eval.Eval(*p.value, table, r));
        if (want.kind() != Datum::Kind::kValues) continue;
        const ValueSet& w = want.values();
        const bool ok = w.is_singleton() ? stored.Contains(w.single())
                                         : stored == w;
        if (ok) next.AppendRowFrom(table, r);
        continue;
      }
      // kBindVariable: unroll each stored value into its own binding
      // (p.9); an existing binding of the variable acts as a filter
      // (natural-join semantics).
      const Datum bound = existing != BindingTable::kNpos
                              ? table.At(r, existing)
                              : Datum::Unbound();
      for (const Value& value : stored) {
        if (bound.IsBound()) {
          if (bound.kind() != Datum::Kind::kValues ||
              !(bound.values() == ValueSet(value))) {
            continue;
          }
        }
        next.AppendRowFrom(table, r);
        next.SetCell(next.NumRows() - 1, bind_col, Datum::OfValue(value));
      }
    }
    table = std::move(next);
  }
  return table;
}

Result<BindingTable> Matcher::ExpandEdgeHop(
    BindingTable table, const std::string& from_var, const EdgePattern& edge,
    const std::string& edge_var, const NodePattern& to,
    const std::string& to_var, const PathPropertyGraph& graph,
    const std::string& graph_name) {
  if (edge.is_copy) {
    return Status::BindError(
        "copy syntax -[=y]- is only valid in CONSTRUCT patterns");
  }
  const GraphSnapshot& snap = Snapshot(graph);
  const AdjacencyIndex& adj = snap.adjacency();
  // Labels only, matching the pre-snapshot inline check: literal edge
  // props are applied by ApplyPropPatterns below with expression
  // semantics (null literal = ∅), which are not Contains semantics.
  const SnapshotPred edge_pred = SnapshotPred::ForEdgeLabels(snap, edge);
  const SnapshotPred to_pred = SnapshotPred::ForNode(snap, to);

  BindingTable next(table.columns());
  for (const auto& [v, g] : table.column_graphs()) next.SetColumnGraph(v, g);
  const size_t edge_col = next.AddColumn(edge_var);
  const size_t to_col = next.AddColumn(to_var);
  next.SetColumnGraph(edge_var, graph_name);
  next.SetColumnGraph(to_var, graph_name);

  const size_t from_col = table.ColumnIndex(from_var);
  const size_t to_existing = table.ColumnIndex(to_var);
  const size_t edge_existing = table.ColumnIndex(edge_var);

  // Columnar fast path: the source/constraint columns are read through
  // the typed accessors (one kind byte + one id per cell) and surviving
  // rows are emitted column-wise — no BindingRow is materialized.
  const Column& from_cells = table.ColumnAt(from_col);
  const Column* edge_cells = edge_existing != BindingTable::kNpos
                                 ? &table.ColumnAt(edge_existing)
                                 : nullptr;
  const Column* to_cells = to_existing != BindingTable::kNpos
                               ? &table.ColumnAt(to_existing)
                               : nullptr;

  const bool nothing_admits = edge_pred.never() || to_pred.never();
  for (size_t r = 0; !nothing_admits && r < table.NumRows(); ++r) {
    if (from_cells.KindAt(r) != Datum::Kind::kNode) continue;
    const NodeId from_node = from_cells.NodeAt(r);
    if (!adj.Contains(from_node)) continue;
    const DenseNodeIndex n = adj.IndexOf(from_node);

    auto try_entry = [&](const AdjacencyEntry& entry) {
      if (!edge_pred.Admits(entry.edge_dense)) return;
      if (edge_cells != nullptr && edge_cells->BoundAt(r) &&
          !(edge_cells->KindAt(r) == Datum::Kind::kEdge &&
            edge_cells->EdgeAt(r) == entry.edge)) {
        return;
      }
      if (to_cells != nullptr && to_cells->BoundAt(r) &&
          !(to_cells->KindAt(r) == Datum::Kind::kNode &&
            to_cells->NodeAt(r) == adj.IdOf(entry.neighbor))) {
        return;
      }
      if (!to_pred.Admits(entry.neighbor)) return;
      next.AppendRowFrom(table, r);
      next.SetCell(next.NumRows() - 1, edge_col, Datum::OfEdge(entry.edge));
      next.SetCell(next.NumRows() - 1, to_col,
                   Datum::OfNode(adj.IdOf(entry.neighbor)));
    };

    if (edge.direction == EdgePattern::Direction::kRight ||
        edge.direction == EdgePattern::Direction::kUndirected) {
      auto [b, e] = adj.Out(n);
      for (const AdjacencyEntry* it = b; it != e; ++it) try_entry(*it);
    }
    if (edge.direction == EdgePattern::Direction::kLeft ||
        edge.direction == EdgePattern::Direction::kUndirected) {
      auto [b, e] = adj.In(n);
      for (const AdjacencyEntry* it = b; it != e; ++it) try_entry(*it);
    }
  }

  GCORE_ASSIGN_OR_RETURN(
      next, ApplyPropPatterns(std::move(next), edge_var, edge.props, graph));
  return ApplyPropPatterns(std::move(next), to_var, to.props, graph);
}

Result<BindingTable> Matcher::ExpandPathHop(
    BindingTable table, const std::string& from_var, const PathPattern& path,
    const std::string& path_var, const NodePattern& to,
    const std::string& to_var, const PathPropertyGraph& graph,
    const std::string& graph_name) {
  const GraphSnapshot& snap = Snapshot(graph);
  const SnapshotPred to_pred = SnapshotPred::ForNode(snap, to);
  auto to_admits = [&](NodeId target) {
    if (!snap.adjacency().Contains(target)) return to_pred.unconstrained();
    return to_pred.Admits(snap.adjacency().IndexOf(target));
  };
  BindingTable next(table.columns());
  for (const auto& [v, g] : table.column_graphs()) next.SetColumnGraph(v, g);
  const bool has_var = !path_var.empty();
  const size_t path_col = has_var ? next.AddColumn(path_var)
                                  : BindingTable::kNpos;
  const size_t to_col = next.AddColumn(to_var);
  next.SetColumnGraph(to_var, graph_name);
  const bool has_cost = !path.cost_var.empty();
  const size_t cost_col =
      has_cost ? next.AddColumn(path.cost_var) : BindingTable::kNpos;

  const size_t from_col = table.ColumnIndex(from_var);
  const size_t to_existing = table.ColumnIndex(to_var);
  const Column& from_cells = table.ColumnAt(from_col);
  const Column* to_cells = to_existing != BindingTable::kNpos
                               ? &table.ColumnAt(to_existing)
                               : nullptr;
  auto target_prebound_elsewhere = [&](size_t r, NodeId target) {
    return to_cells != nullptr && to_cells->BoundAt(r) &&
           !(to_cells->KindAt(r) == Datum::Kind::kNode &&
             to_cells->NodeAt(r) == target);
  };

  // --- stored-path matching: -/@p[:label][<regex>]/-> ---------------------------
  if (path.mode == PathPattern::Mode::kStoredMatch) {
    if (has_var) next.SetColumnGraph(path_var, graph_name);
    std::optional<Nfa> conform_nfa;
    if (path.rpq != nullptr) conform_nfa = Nfa::Compile(*path.rpq);
    for (size_t r = 0; r < table.NumRows(); ++r) {
      if (from_cells.KindAt(r) != Datum::Kind::kNode) continue;
      const NodeId from_node = from_cells.NodeAt(r);
      graph.ForEachPath([&](PathId pid, const PathBody& body) {
        if (body.nodes.empty() || body.nodes.front() != from_node) return;
        if (!LabelsMatch(graph.Labels(pid), path.label_groups)) return;
        if (conform_nfa.has_value() &&
            !BodyConformsToRegex(body, *conform_nfa, graph)) {
          return;
        }
        const NodeId target = body.nodes.back();
        if (target_prebound_elsewhere(r, target)) return;
        if (!to_admits(target)) return;
        next.AppendRowFrom(table, r);
        const size_t out_row = next.NumRows() - 1;
        if (has_var) {
          auto pv = std::make_shared<PathValue>();
          pv->id = pid;
          pv->body = body;
          pv->cost = static_cast<double>(body.edges.size());
          pv->from_graph = true;
          next.SetCell(out_row, path_col, Datum::OfPath(std::move(pv)));
        }
        next.SetCell(out_row, to_col, Datum::OfNode(target));
        if (has_cost) {
          next.SetCell(out_row, cost_col,
                       Datum::OfValue(
                           Value::Int(static_cast<int64_t>(body.edges.size()))));
        }
      });
    }
    return next;
  }

  if (path.rpq == nullptr) {
    return Status::BindError("path pattern requires a regular expression");
  }
  const Nfa nfa = Nfa::Compile(*path.rpq);
  PathSearchContext ctx;
  ctx.adj = &snap.adjacency();
  ctx.nfa = &nfa;
  ctx.views = ctx_.views;
  ctx.snap = &snap;
  ctx.parallelism = ctx_.parallelism;

  // --- batch phase --------------------------------------------------------
  // One kernel launch per *distinct* source instead of one traversal per
  // row: sources are deduplicated in first-appearance order, answered by
  // the batched kernels (internally parallel, degree-invariant), and the
  // serial emission loop replays the rows in input order against the
  // caches — rows, row order and fresh path ids match per-row serial
  // evaluation exactly.
  std::map<NodeId, size_t> src_slot;
  std::vector<NodeId> sources;
  auto slot_of = [&](NodeId src) {
    auto [it, inserted] = src_slot.try_emplace(src, sources.size());
    if (inserted) sources.push_back(src);
    return it->second;
  };
  auto valid_src = [&](size_t r, NodeId* src) {
    if (from_cells.KindAt(r) != Datum::Kind::kNode) return false;
    *src = from_cells.NodeAt(r);
    return ctx.adj->Contains(*src);
  };
  auto target_bound_to_node = [&](size_t r) {
    return to_cells != nullptr && to_cells->BoundAt(r) &&
           to_cells->KindAt(r) == Datum::Kind::kNode;
  };
  auto target_bound_to_other = [&](size_t r) {
    return to_cells != nullptr && to_cells->BoundAt(r) &&
           to_cells->KindAt(r) != Datum::Kind::kNode;
  };

  switch (path.mode) {
    case PathPattern::Mode::kReachability: {
      // A row with an unbound target needs its source's full reachable
      // set (one lane of a multi-source wave); a row whose target is
      // prebound to a node only needs a membership bit, which the
      // bidirectional meet-in-the-middle probe answers without computing
      // either full fixpoint.
      std::vector<char> needs_full;
      for (size_t r = 0; r < table.NumRows(); ++r) {
        NodeId src;
        if (!valid_src(r, &src)) continue;
        const size_t slot = slot_of(src);
        needs_full.resize(sources.size(), 0);
        if (!target_bound_to_node(r) && !target_bound_to_other(r)) {
          needs_full[slot] = 1;
        }
      }
      std::vector<NodeId> full_sources;
      std::vector<size_t> full_idx(sources.size(), 0);
      for (size_t s = 0; s < sources.size(); ++s) {
        if (!needs_full[s]) continue;
        full_idx[s] = full_sources.size();
        full_sources.push_back(sources[s]);
      }
      GCORE_ASSIGN_OR_RETURN(const std::vector<std::set<NodeId>> full_sets,
                             BatchedReachableFrom(ctx, full_sources));
      auto full_of = [&](size_t slot) -> const std::set<NodeId>* {
        return needs_full[slot] ? &full_sets[full_idx[slot]] : nullptr;
      };

      // Distinct (source, bound target) pairs not covered by a full set.
      std::map<std::pair<NodeId, NodeId>, size_t> pair_idx;
      std::vector<std::pair<NodeId, NodeId>> pairs;
      for (size_t r = 0; r < table.NumRows(); ++r) {
        NodeId src;
        if (!valid_src(r, &src) || !target_bound_to_node(r)) continue;
        if (needs_full[src_slot.at(src)]) continue;
        const NodeId target = to_cells->NodeAt(r);
        if (pair_idx.try_emplace({src, target}, pairs.size()).second) {
          pairs.emplace_back(src, target);
        }
      }
      std::vector<char> pair_reach(pairs.size(), 0);
      std::vector<Status> pair_status(pairs.size(), Status::OK());
      ParallelFor(ctx.parallelism, pairs.size(), [&](size_t i) {
        auto reach = IsReachable(ctx, pairs[i].first, pairs[i].second);
        if (reach.ok()) {
          pair_reach[i] = *reach ? 1 : 0;
        } else {
          pair_status[i] = reach.status();
        }
      });
      for (const Status& st : pair_status) {
        if (!st.ok()) return st;
      }

      for (size_t r = 0; r < table.NumRows(); ++r) {
        NodeId src;
        if (!valid_src(r, &src)) continue;
        const size_t slot = src_slot.at(src);
        if (target_bound_to_other(r)) continue;
        if (target_bound_to_node(r)) {
          const NodeId target = to_cells->NodeAt(r);
          const std::set<NodeId>* full = full_of(slot);
          const bool reachable =
              full != nullptr ? full->count(target) > 0
                              : pair_reach[pair_idx.at({src, target})] != 0;
          if (!reachable || !to_admits(target)) continue;
          next.AppendRowFrom(table, r);
          next.SetCell(next.NumRows() - 1, to_col, Datum::OfNode(target));
        } else {
          for (NodeId target : *full_of(slot)) {
            if (!to_admits(target)) continue;
            next.AppendRowFrom(table, r);
            next.SetCell(next.NumRows() - 1, to_col, Datum::OfNode(target));
          }
        }
      }
      break;
    }

    case PathPattern::Mode::kShortest: {
      for (size_t r = 0; r < table.NumRows(); ++r) {
        NodeId src;
        if (valid_src(r, &src)) slot_of(src);
      }
      const size_t k = static_cast<size_t>(path.k);
      std::vector<std::map<NodeId, std::vector<FoundPath>>> per_src;
      std::string view_name;
      if (!sources.empty() && k == 1 && ctx.max_hops == 0 &&
          IsViewStar(*path.rpq, &view_name)) {
        // `<~view*>` degenerates the product search to plain SSSP over
        // the view's segment graph — run the delta-stepping kernel per
        // source instead of the product Dijkstra.
        if (ctx_.views == nullptr) {
          return Status::EvaluationError("regex references PATH view '~" +
                                         view_name +
                                         "' but no views are in scope");
        }
        GCORE_ASSIGN_OR_RETURN(const PathViewRelation* view,
                               ctx_.views->Lookup(view_name));
        per_src.resize(sources.size());
        std::vector<Status> status(sources.size(), Status::OK());
        ParallelSsspOptions opts;
        // Sources fan across threads already; nest workers only when a
        // lone source would leave the pool idle.
        opts.parallelism = sources.size() > 1 ? 1 : ctx.parallelism;
        ParallelFor(ctx.parallelism, sources.size(), [&](size_t i) {
          auto sssp = ViewStarSssp(*ctx.adj, *view, sources[i], opts);
          if (!sssp.ok()) {
            status[i] = sssp.status();
            return;
          }
          for (size_t n = 0; n < ctx.adj->num_nodes(); ++n) {
            const DenseNodeIndex dn = static_cast<DenseNodeIndex>(n);
            if (!sssp->Reached(dn)) continue;
            const NodeId dst = ctx.adj->IdOf(dn);
            auto body = ReconstructViewWalk(*ctx.adj, *sssp, sources[i], dst);
            FoundPath found;
            found.cost = sssp->distance[dn];
            found.body = std::move(*body);
            found.hops = found.body.edges.size();
            per_src[i][dst].push_back(std::move(found));
          }
        });
        for (const Status& st : status) {
          if (!st.ok()) return st;
        }
      } else if (!sources.empty()) {
        GCORE_ASSIGN_OR_RETURN(per_src, BatchedKShortestFrom(ctx, sources, k));
      }

      for (size_t r = 0; r < table.NumRows(); ++r) {
        NodeId src;
        if (!valid_src(r, &src)) continue;
        const auto& per_dst = per_src[src_slot.at(src)];
        for (const auto& [target, paths] : per_dst) {
          if (target_prebound_elsewhere(r, target)) continue;
          if (!to_admits(target)) continue;
          for (const FoundPath& found : paths) {
            next.AppendRowFrom(table, r);
            const size_t out_row = next.NumRows() - 1;
            if (has_var) {
              auto pv = std::make_shared<PathValue>();
              pv->id = ctx_.catalog->ids()->NextPath();
              pv->body = found.body;  // copy: the cache is shared by rows
              pv->cost = found.cost;
              pv->from_graph = false;
              next.SetCell(out_row, path_col, Datum::OfPath(std::move(pv)));
            }
            next.SetCell(out_row, to_col, Datum::OfNode(target));
            if (has_cost) {
              const double c = found.cost;
              next.SetCell(
                  out_row, cost_col,
                  c == static_cast<int64_t>(c)
                      ? Datum::OfValue(Value::Int(static_cast<int64_t>(c)))
                      : Datum::OfValue(Value::Double(c)));
            }
          }
        }
      }
      break;
    }

    case PathPattern::Mode::kAll: {
      // ALL with a bound path variable is only legal when the variable
      // is used for graph projection (Section 3); the binding carries
      // the projection sets, not materialized walks.
      for (size_t r = 0; r < table.NumRows(); ++r) {
        NodeId src;
        if (valid_src(r, &src)) slot_of(src);
      }
      GCORE_ASSIGN_OR_RETURN(const std::vector<std::set<NodeId>> full_sets,
                             BatchedReachableFrom(ctx, sources));
      // Distinct admitted (source, target) pairs, projected in parallel
      // before the serial emission loop.
      std::map<std::pair<NodeId, NodeId>, size_t> pair_idx;
      std::vector<std::pair<NodeId, NodeId>> pairs;
      for (size_t r = 0; r < table.NumRows(); ++r) {
        NodeId src;
        if (!valid_src(r, &src)) continue;
        for (NodeId target : full_sets[src_slot.at(src)]) {
          if (target_prebound_elsewhere(r, target)) continue;
          if (!to_admits(target)) continue;
          if (pair_idx.try_emplace({src, target}, pairs.size()).second) {
            pairs.emplace_back(src, target);
          }
        }
      }
      std::vector<PathProjection> projections(pairs.size());
      std::vector<Status> proj_status(pairs.size(), Status::OK());
      ParallelFor(ctx.parallelism, pairs.size(), [&](size_t i) {
        auto proj = AllPathsProjection(ctx, pairs[i].first, pairs[i].second);
        if (proj.ok()) {
          projections[i] = std::move(*proj);
        } else {
          proj_status[i] = proj.status();
        }
      });
      for (const Status& st : proj_status) {
        if (!st.ok()) return st;
      }

      for (size_t r = 0; r < table.NumRows(); ++r) {
        NodeId src;
        if (!valid_src(r, &src)) continue;
        for (NodeId target : full_sets[src_slot.at(src)]) {
          if (target_prebound_elsewhere(r, target)) continue;
          if (!to_admits(target)) continue;
          const PathProjection& proj =
              projections[pair_idx.at({src, target})];
          next.AppendRowFrom(table, r);
          const size_t out_row = next.NumRows() - 1;
          if (has_var) {
            auto pv = std::make_shared<PathValue>();
            pv->id = ctx_.catalog->ids()->NextPath();
            pv->from_graph = false;
            pv->projection = std::make_pair(
                std::vector<NodeId>(proj.nodes.begin(), proj.nodes.end()),
                std::vector<EdgeId>(proj.edges.begin(), proj.edges.end()));
            next.SetCell(out_row, path_col, Datum::OfPath(std::move(pv)));
          }
          next.SetCell(out_row, to_col, Datum::OfNode(target));
        }
      }
      break;
    }

    case PathPattern::Mode::kStoredMatch:
      break;  // handled above
  }
  return next;
}

Result<BindingTable> Matcher::ApplyPushdownFilters(
    BindingTable table, const std::string& var,
    const PathPropertyGraph* graph) {
  auto it = pushdown_filters_.find(var);
  if (it == pushdown_filters_.end()) return table;
  return FilterByConjuncts(std::move(table), it->second, graph);
}

namespace {

/// One pushed conjunct of the shape `x.key CMP literal` (either operand
/// order) compiled against the typed property columns: the per-row test
/// reads one kind byte and one 64-bit slot instead of materializing
/// ValueSets through the expression evaluator.
struct ColumnFilterSpec {
  /// Normalized so the property is the left operand (order ops flip).
  BinaryOp op{};
  size_t obj_col = 0;
  const GraphSnapshot* snap = nullptr;
  /// Columns of the key over each object class; null = no carrier.
  const GraphSnapshot::PropertyColumn* node_col = nullptr;
  const GraphSnapshot::PropertyColumn* edge_col = nullptr;
  /// Null when the literal is `null`, which evaluates to the empty set
  /// (so equality means "property absent").
  const Value* literal = nullptr;
};

bool IsComparisonOp(BinaryOp op) {
  return op == BinaryOp::kEq || op == BinaryOp::kNe || op == BinaryOp::kLt ||
         op == BinaryOp::kLe || op == BinaryOp::kGt || op == BinaryOp::kGe;
}

BinaryOp FlipComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;  // eq/ne are symmetric
  }
}

bool TrySpecializeConjunct(const Matcher& matcher, const Expr& conjunct,
                           const BindingTable& table,
                           const ExprEvaluator& eval,
                           ColumnFilterSpec* spec) {
  if (conjunct.kind != Expr::Kind::kBinary) return false;
  if (!IsComparisonOp(conjunct.binary_op)) return false;
  const Expr* a = conjunct.args[0].get();
  const Expr* b = conjunct.args[1].get();
  const Expr* prop = nullptr;
  const Expr* lit = nullptr;
  bool flipped = false;
  if (a->kind == Expr::Kind::kProperty && b->kind == Expr::Kind::kLiteral) {
    prop = a;
    lit = b;
  } else if (a->kind == Expr::Kind::kLiteral &&
             b->kind == Expr::Kind::kProperty) {
    prop = b;
    lit = a;
    flipped = true;
  } else {
    return false;
  }
  spec->obj_col = table.ColumnIndex(prop->var);
  if (spec->obj_col == BindingTable::kNpos) return false;
  // σ must be read from the graph the evaluator would resolve for this
  // column (provenance, else the stage default); null means ∅ for every
  // row — rare enough to leave to the generic path.
  const PathPropertyGraph* resolved = eval.GraphFor(table, prop->var);
  if (resolved == nullptr) return false;
  spec->op = flipped ? FlipComparison(conjunct.binary_op) : conjunct.binary_op;
  spec->snap = &matcher.Snapshot(*resolved);
  spec->node_col = spec->snap->NodeColumn(prop->key);
  spec->edge_col = spec->snap->EdgeColumn(prop->key);
  spec->literal = lit->value.is_null() ? nullptr : &lit->value;
  return true;
}

/// The specialized per-row test; `fallback` is set for path-valued cells
/// (virtual cost/length properties), which take the generic evaluator.
bool SpecKeepsRow(const ColumnFilterSpec& s, const Column& cells, size_t r,
                  bool* fallback) {
  const GraphSnapshot::PropertyColumn* col = nullptr;
  uint32_t idx = 0;
  bool member = false;
  switch (cells.KindAt(r)) {
    case Datum::Kind::kNode: {
      const NodeId id = cells.NodeAt(r);
      if (s.snap->adjacency().Contains(id)) {
        member = true;
        col = s.node_col;
        idx = s.snap->adjacency().IndexOf(id);
      }
      break;
    }
    case Datum::Kind::kEdge: {
      const DenseEdgeIndex e = s.snap->FindEdge(cells.EdgeAt(r));
      if (e != GraphSnapshot::kNoEdge) {
        member = true;
        col = s.edge_col;
        idx = e;
      }
      break;
    }
    case Datum::Kind::kPath:
      *fallback = true;
      return false;
    default:
      break;  // unbound / value / list objects: σ is ∅
  }
  const bool absent = !member || col == nullptr || col->AbsentAt(idx);
  switch (s.op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe: {
      const bool eq =
          s.literal == nullptr
              ? absent  // σ(x, k) == ∅
              : !absent && s.snap->CellEqualsSingleton(*col, idx, *s.literal);
      return s.op == BinaryOp::kEq ? eq : !eq;
    }
    default: {
      // Order comparisons: both sides must be singletons, else FALSE.
      if (s.literal == nullptr || absent) return false;
      bool ok = false;
      const int cmp = s.snap->CompareCellSingleton(*col, idx, *s.literal, &ok);
      if (!ok) return false;
      switch (s.op) {
        case BinaryOp::kLt:
          return cmp < 0;
        case BinaryOp::kLe:
          return cmp <= 0;
        case BinaryOp::kGt:
          return cmp > 0;
        default:
          return cmp >= 0;
      }
    }
  }
}

/// Estimated fraction of rows a conjunct keeps, from the graph's column
/// statistics (graph/stats.h). Only `x.key CMP literal` shapes get a real
/// estimate — the carrier fraction scaled by 1/distinct for equality and
/// by the literal's position in the [min, max] range for order
/// comparisons. Everything else answers the textbook 0.5, so an unknown
/// conjunct is never hoisted ahead of a demonstrably selective one.
double EstimateConjunctSelectivity(const Expr& c, const GraphStats& stats) {
  if (c.kind != Expr::Kind::kBinary || !IsComparisonOp(c.binary_op)) {
    return 0.5;
  }
  const Expr* a = c.args[0].get();
  const Expr* b = c.args[1].get();
  const Expr* prop = nullptr;
  const Expr* lit = nullptr;
  BinaryOp op = c.binary_op;
  if (a->kind == Expr::Kind::kProperty && b->kind == Expr::Kind::kLiteral) {
    prop = a;
    lit = b;
  } else if (a->kind == Expr::Kind::kLiteral &&
             b->kind == Expr::Kind::kProperty) {
    prop = b;
    lit = a;
    op = FlipComparison(op);
  } else {
    return 0.5;
  }
  // The binding's object class is unknown here; take the key's stats from
  // whichever side carries it (keys rarely straddle both classes).
  const PropertyStats* ps = nullptr;
  double total = 0.0;
  auto node_it = stats.node_props.find(prop->key);
  if (node_it != stats.node_props.end()) {
    ps = &node_it->second;
    total = static_cast<double>(stats.num_nodes);
  } else {
    auto edge_it = stats.edge_props.find(prop->key);
    if (edge_it != stats.edge_props.end()) {
      ps = &edge_it->second;
      total = static_cast<double>(stats.num_edges);
    }
  }
  const double carrier_frac =
      (ps == nullptr || total <= 0.0)
          ? 0.0
          : std::min(1.0, static_cast<double>(ps->count) / total);
  if (lit->value.is_null()) {
    // ⟦null⟧ = ∅: equality is the absence test, inequality its complement,
    // order comparisons against ∅ never hold.
    switch (op) {
      case BinaryOp::kEq:
        return 1.0 - carrier_frac;
      case BinaryOp::kNe:
        return carrier_frac;
      default:
        return 0.0;
    }
  }
  if (ps == nullptr) {
    // Key carried by nothing: σ is ∅ on every member row.
    return op == BinaryOp::kNe ? 1.0 : 0.0;
  }
  switch (op) {
    case BinaryOp::kEq:
      return carrier_frac / static_cast<double>(std::max<size_t>(1u, ps->distinct));
    case BinaryOp::kNe:
      return 1.0 -
             carrier_frac / static_cast<double>(std::max<size_t>(1u, ps->distinct));
    default: {
      if (ps->has_range && lit->value.is_numeric() && ps->max > ps->min) {
        const double frac = std::min(
            1.0, std::max(0.0, (lit->value.NumericAsDouble() - ps->min) /
                                   (ps->max - ps->min)));
        const bool below = op == BinaryOp::kLt || op == BinaryOp::kLe;
        return carrier_frac * (below ? frac : 1.0 - frac);
      }
      return carrier_frac / 3.0;
    }
  }
}

}  // namespace

Result<BindingTable> Matcher::FilterByConjuncts(
    BindingTable table, const std::vector<const Expr*>& conjuncts,
    const PathPropertyGraph* graph) {
  if (conjuncts.empty()) return table;
  ExprEvaluator eval = MakeEvaluator(graph);
  // Conjunct-at-a-time over the surviving row set: property-vs-literal
  // comparisons scan the snapshot's typed columns, everything else runs
  // the generic evaluator — only on rows still alive (short-circuit).
  auto gather = [](const BindingTable& t, const std::vector<size_t>& rows) {
    BindingTable g(t.columns());
    for (const auto& [v, gr] : t.column_graphs()) g.SetColumnGraph(v, gr);
    g.AppendRowsFrom(t, rows);
    return g;
  };
  // Evaluation-order pre-pass (only with column statistics on — the seed
  // order is the ablation baseline): rank conjuncts by estimated
  // selectivity gain per unit cost, (sel − 1) / cost, so a cheap
  // column-specialized filter that drops most rows runs before an
  // expensive generic predicate that keeps most of them. The sort is
  // stable: conjuncts the statistics cannot tell apart stay in source
  // order. Reordering is semantics-preserving for the *result* (AND is
  // commutative over these error-free rows) but can change which
  // erroring row is reached first — the documented trade of this knob.
  std::vector<const Expr*> ordered(conjuncts);
  if (ctx_.use_column_stats && graph != nullptr && ctx_.catalog != nullptr &&
      ordered.size() > 1) {
    auto stats = ctx_.catalog->Stats(graph->name());
    if (stats.ok()) {
      std::vector<double> rank(ordered.size());
      for (size_t i = 0; i < ordered.size(); ++i) {
        const double sel = EstimateConjunctSelectivity(*ordered[i], **stats);
        ColumnFilterSpec spec;
        double cost = 25.0;  // generic row-at-a-time evaluation
        if (TrySpecializeConjunct(*this, *ordered[i], table, eval, &spec)) {
          cost = 1.0;  // typed column probe
        } else if (ctx_.enable_vectorized_exprs &&
                   VecProgramFor(*ordered[i], table, eval, graph) != nullptr) {
          cost = 4.0;  // vectorized kernels
        }
        rank[i] = (sel - 1.0) / cost;
      }
      std::vector<size_t> order(ordered.size());
      std::iota(order.begin(), order.end(), size_t{0});
      std::stable_sort(order.begin(), order.end(),
                       [&rank](size_t a, size_t b) { return rank[a] < rank[b]; });
      std::vector<const Expr*> sorted(ordered.size());
      for (size_t i = 0; i < order.size(); ++i) sorted[i] = ordered[order[i]];
      ordered = std::move(sorted);
    }
  }
  std::vector<size_t> kept;
  bool narrowed = false;  // false = every row still alive, `kept` unset
  for (size_t ci = 0; ci < ordered.size(); ++ci) {
    const Expr* conjunct = ordered[ci];
    const size_t live = narrowed ? kept.size() : table.NumRows();
    if (live == 0) break;
    std::vector<size_t> next;
    next.reserve(live);
    ColumnFilterSpec spec;
    if (TrySpecializeConjunct(*this, *conjunct, table, eval, &spec)) {
      const Column& cells = table.ColumnAt(spec.obj_col);
      for (size_t i = 0; i < live; ++i) {
        const size_t r = narrowed ? kept[i] : i;
        bool fallback = false;
        bool keep = SpecKeepsRow(spec, cells, r, &fallback);
        if (fallback) {
          GCORE_ASSIGN_OR_RETURN(keep,
                                 eval.EvalPredicate(*conjunct, table, r));
        }
        if (keep) next.push_back(r);
      }
    } else {
      // Generic conjunct: vectorized kernels over the live selection when
      // the expression compiles (eval/expr_vec.h), the row evaluator
      // otherwise — and row-for-row identical either way, including which
      // row's error surfaces first (kernel-undecidable rows replay
      // through the same EvalPredicate in the same order).
      std::shared_ptr<const VecProgram> prog =
          ctx_.enable_vectorized_exprs
              ? VecProgramFor(*conjunct, table, eval, graph)
              : nullptr;
      if (prog != nullptr) {
        if (narrowed) {
          GCORE_RETURN_NOT_OK(
              prog->FilterRows(table, kept.data(), live, eval, &next));
        } else {
          std::vector<size_t> rows(live);
          std::iota(rows.begin(), rows.end(), size_t{0});
          GCORE_RETURN_NOT_OK(
              prog->FilterRows(table, rows.data(), live, eval, &next));
        }
      } else {
        for (size_t i = 0; i < live; ++i) {
          const size_t r = narrowed ? kept[i] : i;
          GCORE_ASSIGN_OR_RETURN(bool keep,
                                 eval.EvalPredicate(*conjunct, table, r));
          if (keep) next.push_back(r);
        }
      }
    }
    if (!narrowed && next.size() == table.NumRows()) continue;
    kept = std::move(next);
    narrowed = true;
    // Compaction pre-pass: later conjuncts (the generic evaluator in
    // particular) read rows through the kept-index indirection; once the
    // live set drops below half, gather the survivors column-at-a-time
    // into a dense table so the remaining conjuncts scan contiguously.
    // The gather keeps row order, so the final output is unchanged.
    if (ci + 1 < ordered.size() && kept.size() * 2 < table.NumRows()) {
      table = gather(table, kept);
      kept.clear();
      narrowed = false;
    }
  }
  // Nothing dropped since the last compaction: the table is already the
  // answer (the common case for re-checked WHERE conjuncts).
  if (!narrowed) return table;
  return gather(table, kept);
}

Result<BindingTable> Matcher::EvalChainInternal(const GraphPattern& pattern,
                                                ChainResult* detail) {
  std::string location = pattern.on_graph;
  if (ctx_.location_overrides != nullptr) {
    auto it = ctx_.location_overrides->find(&pattern);
    if (it != ctx_.location_overrides->end()) location = it->second;
  }
  GCORE_ASSIGN_OR_RETURN(const PathPropertyGraph* graph,
                         ResolveGraph(location));
  const std::string graph_name = graph->name();

  const std::string start_var =
      pattern.start.var.empty() ? FreshAnonName() : pattern.start.var;
  if (detail != nullptr) detail->element_columns.push_back(start_var);

  GCORE_ASSIGN_OR_RETURN(
      BindingTable table,
      MatchStartNode(pattern.start, *graph, graph_name, start_var));
  GCORE_ASSIGN_OR_RETURN(
      table, ApplyPushdownFilters(std::move(table), start_var, graph));

  std::string prev_var = start_var;
  for (const auto& hop : pattern.hops) {
    const std::string to_var =
        hop.to.var.empty() ? FreshAnonName() : hop.to.var;
    if (hop.kind == PatternHop::Kind::kEdge) {
      const std::string edge_var =
          hop.edge.var.empty() ? FreshAnonName() : hop.edge.var;
      if (detail != nullptr) {
        detail->element_columns.push_back(edge_var);
        detail->element_columns.push_back(to_var);
      }
      GCORE_ASSIGN_OR_RETURN(
          table, ExpandEdgeHop(std::move(table), prev_var, hop.edge, edge_var,
                               hop.to, to_var, *graph, graph_name));
      GCORE_ASSIGN_OR_RETURN(
          table, ApplyPushdownFilters(std::move(table), edge_var, graph));
      GCORE_ASSIGN_OR_RETURN(
          table, ApplyPushdownFilters(std::move(table), to_var, graph));
    } else {
      const std::string path_var =
          hop.path.var.empty() ? (hop.path.mode == PathPattern::Mode::kReachability
                                      ? std::string()
                                      : FreshAnonName())
                               : hop.path.var;
      if (detail != nullptr) {
        detail->element_columns.push_back(
            path_var.empty() ? FreshAnonName() : path_var);
        detail->element_columns.push_back(to_var);
      }
      GCORE_ASSIGN_OR_RETURN(
          table, ExpandPathHop(std::move(table), prev_var, hop.path, path_var,
                               hop.to, to_var, *graph, graph_name));
      GCORE_ASSIGN_OR_RETURN(
          table, ApplyPushdownFilters(std::move(table), to_var, graph));
    }
    prev_var = to_var;
  }
  return table;
}

Result<ChainResult> Matcher::EvalChainDetailed(const GraphPattern& pattern) {
  ChainResult detail;
  GCORE_ASSIGN_OR_RETURN(detail.table, EvalChainInternal(pattern, &detail));
  return detail;
}

Result<BindingTable> Matcher::EvalPatterns(
    const std::vector<GraphPattern>& patterns) {
  BindingTable result = BindingTable::Unit();
  for (const auto& pattern : patterns) {
    GCORE_ASSIGN_OR_RETURN(BindingTable t,
                           EvalChainInternal(pattern, nullptr));
    result = TableJoin(result, t);
  }
  return result;
}

Result<BindingTable> Matcher::FilterTable(BindingTable table,
                                          const Expr& where,
                                          const PathPropertyGraph* graph) {
  ExprEvaluator eval = MakeEvaluator(graph);
  std::vector<size_t> kept;
  kept.reserve(table.NumRows());
  // Residual WHERE: one vectorized pass over the whole table when the
  // predicate compiles; kernel-undecidable rows replay through the same
  // EvalPredicate in ascending row order, so results and error order
  // match the serial loop below exactly.
  std::shared_ptr<const VecProgram> prog =
      ctx_.enable_vectorized_exprs ? VecProgramFor(where, table, eval, graph)
                                   : nullptr;
  if (prog != nullptr) {
    std::vector<size_t> rows(table.NumRows());
    std::iota(rows.begin(), rows.end(), size_t{0});
    GCORE_RETURN_NOT_OK(
        prog->FilterRows(table, rows.data(), rows.size(), eval, &kept));
  } else {
    for (size_t r = 0; r < table.NumRows(); ++r) {
      GCORE_ASSIGN_OR_RETURN(bool keep, eval.EvalPredicate(where, table, r));
      if (keep) kept.push_back(r);
    }
  }
  if (kept.size() == table.NumRows()) return table;
  BindingTable filtered(table.columns());
  for (const auto& [v, g] : table.column_graphs()) {
    filtered.SetColumnGraph(v, g);
  }
  filtered.AppendRowsFrom(table, kept);
  return filtered;
}

Result<BindingTable> Matcher::EvalMatchClause(const MatchClause& match) {
  // Clause-level ON: when the patterns name exactly one distinct graph,
  // patterns without their own ON run on it too.
  clause_on_override_ = ClauseOnOverride(match);
  if (ctx_.use_planner) {
    return PlanAndRunMatchClause(match, nullptr, nullptr);
  }
  return LegacyEvalMatchClause(match);
}

Result<BindingTable> Matcher::EvalMatchClauseAnalyzed(
    const MatchClause& match, ExecStats* stats,
    std::unique_ptr<PlanNode>* plan_out) {
  clause_on_override_ = ClauseOnOverride(match);
  return PlanAndRunMatchClause(match, stats, plan_out);
}

Result<BindingTable> Matcher::EvalMatchClausePlanning(
    const MatchClause& match, std::unique_ptr<PlanNode>* plan_out) {
  clause_on_override_ = ClauseOnOverride(match);
  if (!ctx_.use_planner) return LegacyEvalMatchClause(match);
  return PlanAndRunMatchClause(match, nullptr, plan_out);
}

Result<BindingTable> Matcher::EvalMatchClauseWithPlan(const MatchClause& match,
                                                      const PlanNode& plan) {
  clause_on_override_ = ClauseOnOverride(match);
  // Keep the legacy up-front default-graph contract (a clause with no
  // resolvable default fails wholesale), exactly like the planning path.
  GCORE_ASSIGN_OR_RETURN(const PathPropertyGraph* default_graph,
                         ResolveGraph(""));
  (void)default_graph;
  ExecContext exec;
  exec.parallelism = ctx_.parallelism;
  exec.morsel_size = ctx_.morsel_size;
  Executor executor(this, exec, nullptr);
  return executor.Run(plan);
}

Result<BindingTable> Matcher::PlanAndRunMatchClause(
    const MatchClause& match, ExecStats* stats,
    std::unique_ptr<PlanNode>* plan_out) {
  // The legacy walk resolves the default graph up front and fails the
  // whole clause when none exists; keep that contract (differential
  // equivalence) even though scans resolve their own locations.
  GCORE_ASSIGN_OR_RETURN(const PathPropertyGraph* default_graph,
                         ResolveGraph(""));
  (void)default_graph;
  Planner planner(this, PlannerOptions::FromContext(ctx_));
  GCORE_ASSIGN_OR_RETURN(PlanPtr plan, planner.PlanMatch(match));
  // Execution itself skips estimation (the chain-ordering rule already
  // estimated what it compared); EXPLAIN ANALYZE wants the annotations.
  if (stats != nullptr) planner.AnnotateEstimates(plan.get());
  ExecContext exec;
  exec.parallelism = ctx_.parallelism;
  exec.morsel_size = ctx_.morsel_size;
  Executor executor(this, exec, stats);
  auto result = executor.Run(*plan);
  if (plan_out != nullptr) *plan_out = std::move(plan);
  return result;
}

Result<BindingTable> Matcher::LegacyEvalMatchClause(const MatchClause& match) {
  GCORE_ASSIGN_OR_RETURN(const PathPropertyGraph* default_graph,
                         ResolveGraph(""));

  // Selection pushdown: register single-variable AND-conjuncts of the
  // WHERE clause so chain evaluation filters as early as possible.
  pushdown_filters_.clear();
  if (match.where != nullptr && ctx_.enable_pushdown) {
    CollectSingleVarConjuncts(*match.where, &pushdown_filters_);
  }

  GCORE_ASSIGN_OR_RETURN(BindingTable table, EvalPatterns(match.patterns));
  pushdown_filters_.clear();
  if (match.where != nullptr) {
    GCORE_ASSIGN_OR_RETURN(table,
                           FilterTable(std::move(table), *match.where,
                                       default_graph));
  }

  GCORE_RETURN_NOT_OK(CheckOptionalVariableSharing(match));

  for (const auto& block : match.optionals) {
    GCORE_ASSIGN_OR_RETURN(BindingTable block_table,
                           EvalPatterns(block.patterns));
    if (block.where != nullptr) {
      GCORE_ASSIGN_OR_RETURN(
          block_table,
          FilterTable(std::move(block_table), *block.where, default_graph));
    }
    table = TableLeftOuterJoin(table, block_table);
  }

  return ProjectResult(table, nullptr);
}

namespace {

/// Visible columns of a projection: the requested order (planner mode,
/// which records the source-binding order before join reordering) or
/// table order (legacy). Fills `kept` with source column indices and
/// returns the empty result table with schema and provenance set.
BindingTable ProjectionSchema(const BindingTable& table,
                              const std::vector<std::string>* output,
                              std::vector<size_t>* kept) {
  std::vector<std::string> columns;
  if (output != nullptr) {
    for (const auto& name : *output) {
      const size_t c = table.ColumnIndex(name);
      if (c != BindingTable::kNpos && !IsInternalColumn(name)) {
        kept->push_back(c);
        columns.push_back(name);
      }
    }
  } else {
    for (size_t c = 0; c < table.columns().size(); ++c) {
      if (!IsInternalColumn(table.columns()[c])) {
        kept->push_back(c);
        columns.push_back(table.columns()[c]);
      }
    }
  }
  BindingTable result(std::move(columns));
  for (const auto& [v, g] : table.column_graphs()) {
    if (!IsInternalColumn(v) &&
        result.ColumnIndex(v) != BindingTable::kNpos) {
      result.SetColumnGraph(v, g);
    }
  }
  return result;
}

}  // namespace

BindingTable Matcher::ProjectResult(
    const BindingTable& table, const std::vector<std::string>* output) const {
  std::vector<size_t> kept;
  BindingTable result = ProjectionSchema(table, output, &kept);
  // Set semantics restored as rows are selected (no trailing Deduplicate
  // pass); first occurrences survive, as before. Hash and equality walk
  // the kept columns only — nothing row-shaped is built until the final
  // column-wise gather of the surviving row indices.
  RowIndexSet seen;
  seen.Reserve(table.NumRows());
  std::vector<size_t> fresh_rows;
  fresh_rows.reserve(table.NumRows());
  for (size_t r = 0; r < table.NumRows(); ++r) {
    size_t h = 0;
    for (size_t c : kept) h = HashCombine(h, table.ColumnAt(c).HashAt(r));
    const bool fresh =
        seen.InsertIfNew(h, fresh_rows.size(), [&](size_t j) {
          for (size_t c : kept) {
            if (!Column::CellsEqual(table.ColumnAt(c), r, table.ColumnAt(c),
                                    fresh_rows[j])) {
              return false;
            }
          }
          return true;
        });
    if (fresh) fresh_rows.push_back(r);
  }
  for (size_t k = 0; k < kept.size(); ++k) {
    result.MutableColumn(k).AppendIndexed(table.ColumnAt(kept[k]),
                                          fresh_rows);
  }
  for (size_t i = 0; i < fresh_rows.size(); ++i) result.CommitRow();
  return result;
}

BindingTable Matcher::ProjectChunk(
    const BindingTable& table, const std::vector<std::string>* output) const {
  std::vector<size_t> kept;
  BindingTable result = ProjectionSchema(table, output, &kept);
  // Pure column slicing: each kept column is copied wholesale (memcpy
  // for dense cells); no per-row work at all.
  result.AdoptProjectedColumns(table, kept);
  return result;
}

Result<bool> Matcher::PatternHasMatch(const GraphPattern& pattern,
                                      const BindingTable& outer, size_t row) {
  // Pattern predicates may themselves be pushdown filters; disable
  // pushdown while evaluating them to avoid re-entering ourselves.
  std::map<std::string, std::vector<const Expr*>> saved;
  saved.swap(pushdown_filters_);
  auto restore = [&]() { pushdown_filters_.swap(saved); };
  auto chain = EvalChainInternal(pattern, nullptr);
  restore();
  if (!chain.ok()) return chain.status();
  BindingTable t = std::move(*chain);
  // Correlate: keep only matches compatible with the outer row.
  BindingTable outer_row(outer.columns());
  outer_row.AppendRowFrom(outer, row);
  BindingTable joined = TableSemijoin(std::move(outer_row), t);
  return !joined.Empty();
}

}  // namespace gcore
