#include "parser/lexer.h"

#include <cctype>

namespace gcore {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespaceAndComments();
      if (AtEnd()) break;
      GCORE_ASSIGN_OR_RETURN(Token tok, Next());
      tokens.push_back(std::move(tok));
    }
    Token eof;
    eof.type = TokenType::kEof;
    eof.offset = pos_;
    eof.line = line_;
    eof.column = column_;
    tokens.push_back(eof);
    return tokens;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }
  char Advance() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      const char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '-' && Peek(1) == '-' &&
                 (Peek(2) == ' ' || Peek(2) == '\t' || Peek(2) == '-')) {
        // `-- comment` to end of line. Requires a space after `--` so that
        // `x--y` arithmetic is unaffected.
        while (!AtEnd() && Peek() != '\n') Advance();
      } else {
        break;
      }
    }
  }

  Token Start() const {
    Token t;
    t.offset = pos_;
    t.line = line_;
    t.column = column_;
    return t;
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at line " + std::to_string(line_) +
                              ", column " + std::to_string(column_));
  }

  Result<Token> Next() {
    Token tok = Start();
    const char c = Peek();

    if (IsIdentStart(c)) return Identifier(tok);
    if (std::isdigit(static_cast<unsigned char>(c))) return Number(tok);
    if (c == '\'' || c == '"') return StringLiteral(tok);

    Advance();
    switch (c) {
      case '(': tok.type = TokenType::kLParen; return tok;
      case ')': tok.type = TokenType::kRParen; return tok;
      case '[': tok.type = TokenType::kLBracket; return tok;
      case ']': tok.type = TokenType::kRBracket; return tok;
      case '{': tok.type = TokenType::kLBrace; return tok;
      case '}': tok.type = TokenType::kRBrace; return tok;
      case ',': tok.type = TokenType::kComma; return tok;
      case '.': tok.type = TokenType::kDot; return tok;
      case '@': tok.type = TokenType::kAt; return tok;
      case '~': tok.type = TokenType::kTilde; return tok;
      case '!': tok.type = TokenType::kBang; return tok;
      case '|': tok.type = TokenType::kPipe; return tok;
      case '*': tok.type = TokenType::kStar; return tok;
      case '+': tok.type = TokenType::kPlus; return tok;
      case '/': tok.type = TokenType::kSlash; return tok;
      case '%': tok.type = TokenType::kPercent; return tok;
      case '?': tok.type = TokenType::kQuestion; return tok;
      case '=': tok.type = TokenType::kEq; return tok;
      case ':':
        if (Peek() == '=') {
          Advance();
          tok.type = TokenType::kAssign;
        } else {
          tok.type = TokenType::kColon;
        }
        return tok;
      case '-':
        if (Peek() == '>') {
          Advance();
          tok.type = TokenType::kArrowRight;
        } else {
          tok.type = TokenType::kMinus;
        }
        return tok;
      case '<':
        if (Peek() == '-') {
          Advance();
          tok.type = TokenType::kArrowLeft;
        } else if (Peek() == '=') {
          Advance();
          tok.type = TokenType::kLe;
        } else if (Peek() == '>') {
          Advance();
          tok.type = TokenType::kNeq;
        } else {
          tok.type = TokenType::kLt;
        }
        return tok;
      case '>':
        if (Peek() == '=') {
          Advance();
          tok.type = TokenType::kGe;
        } else {
          tok.type = TokenType::kGt;
        }
        return tok;
      default:
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  Result<Token> Identifier(Token tok) {
    std::string text;
    while (!AtEnd() && IsIdentChar(Peek())) text += Advance();
    if (text == "_") {
      tok.type = TokenType::kUnderscore;
      tok.text = text;
      return tok;
    }
    std::string upper = text;
    for (char& ch : upper) {
      ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
    }
    tok.type = KeywordOrIdentifier(upper);
    tok.text = text;
    return tok;
  }

  Result<Token> Number(Token tok) {
    std::string digits;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      digits += Advance();
    }
    // A fraction only when a digit follows the dot; `nodes(p)[1].name`
    // style chains keep the dot as a separate token.
    if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      digits += Advance();  // '.'
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        digits += Advance();
      }
      tok.type = TokenType::kDouble;
      tok.double_value = std::stod(digits);
      tok.text = digits;
      return tok;
    }
    tok.type = TokenType::kInteger;
    tok.int_value = std::stoll(digits);
    tok.text = digits;
    return tok;
  }

  Result<Token> StringLiteral(Token tok) {
    const char quote = Advance();
    std::string text;
    while (true) {
      if (AtEnd()) return Error("unterminated string literal");
      const char c = Advance();
      if (c == quote) {
        if (Peek() == quote) {
          // SQL-style doubled quote escape.
          Advance();
          text += quote;
          continue;
        }
        break;
      }
      if (c == '\\' && !AtEnd()) {
        const char esc = Advance();
        switch (esc) {
          case 'n': text += '\n'; break;
          case 't': text += '\t'; break;
          case '\\': text += '\\'; break;
          case '\'': text += '\''; break;
          case '"': text += '"'; break;
          default:
            text += esc;
            break;
        }
        continue;
      }
      text += c;
    }
    tok.type = TokenType::kString;
    tok.text = std::move(text);
    return tok;
  }

  const std::string& text_;
  size_t pos_ = 0;
  uint32_t line_ = 1;
  uint32_t column_ = 1;
};

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& text) {
  Lexer lexer(text);
  return lexer.Run();
}

}  // namespace gcore
