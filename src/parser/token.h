// Token vocabulary of the G-CORE surface syntax.
#ifndef GCORE_PARSER_TOKEN_H_
#define GCORE_PARSER_TOKEN_H_

#include <cstdint>
#include <string>

namespace gcore {

enum class TokenType : uint8_t {
  // literals / names
  kIdentifier,   // person, social_graph — case-sensitive
  kInteger,      // 42
  kDouble,       // 0.95
  kString,       // 'Acme' or "Acme"
  // keywords (case-insensitive in source text)
  kConstruct, kMatch, kWhere, kOptional, kOn, kUnion, kIntersect, kMinusKw,
  kGraph, kView, kAs, kPath, kCost, kShortest, kAll, kWhen, kSet, kRemove,
  kGroup, kExists, kSelect, kFrom, kIn, kSubset, kAnd, kOr, kNot, kTrue,
  kFalse, kNull, kCase, kThen, kElse, kEnd, kDistinct,
  kOrder, kBy, kAsc, kDesc, kLimit,
  kCount, kSum, kMin, kMax, kAvg, kCollect,
  // punctuation / operators
  kLParen,     // (
  kRParen,     // )
  kLBracket,   // [
  kRBracket,   // ]
  kLBrace,     // {
  kRBrace,     // }
  kComma,      // ,
  kDot,        // .
  kColon,      // :
  kAssign,     // :=
  kAt,         // @
  kTilde,      // ~
  kBang,       // !
  kPipe,       // |
  kStar,       // *
  kPlus,       // +
  kMinus,      // -
  kSlash,      // /
  kPercent,    // %
  kQuestion,   // ?
  kEq,         // =
  kNeq,        // <>
  kLt,         // <
  kLe,         // <=
  kGt,         // >
  kGe,         // >=
  kArrowRight, // ->
  kArrowLeft,  // <-
  kUnderscore, // _  (regex wildcard)
  kEof,
};

const char* TokenTypeToString(TokenType type);

struct Token {
  TokenType type = TokenType::kEof;
  /// Raw text (identifier spelling, keyword as written, literal content
  /// for strings without quotes).
  std::string text;
  int64_t int_value = 0;     // kInteger
  double double_value = 0;   // kDouble
  size_t offset = 0;         // byte offset into the query text
  uint32_t line = 1;
  uint32_t column = 1;

  bool Is(TokenType t) const { return type == t; }
  std::string ToString() const;
};

/// Keyword lookup (case-insensitive); returns kIdentifier when not a
/// keyword.
TokenType KeywordOrIdentifier(const std::string& upper);

}  // namespace gcore

#endif  // GCORE_PARSER_TOKEN_H_
