// Lexer for the G-CORE surface syntax.
//
// Tokenizes the full query text up front (the parser backtracks over the
// token stream when disambiguating WHERE-clause patterns from expressions).
// Compound tokens: `:=`, `<-`, `->`, `<=`, `>=`, `<>`. `<-` is only fused
// when `-` directly follows `<`; write `a < -1` with a space to compare
// against a negative literal.
#ifndef GCORE_PARSER_LEXER_H_
#define GCORE_PARSER_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "parser/token.h"

namespace gcore {

/// Tokenizes `text`; the final token is always kEof. A trailing `--`
/// comment runs to end of line.
Result<std::vector<Token>> Tokenize(const std::string& text);

}  // namespace gcore

#endif  // GCORE_PARSER_LEXER_H_
