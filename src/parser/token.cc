#include "parser/token.h"

#include <map>

namespace gcore {

const char* TokenTypeToString(TokenType type) {
  switch (type) {
    case TokenType::kIdentifier: return "identifier";
    case TokenType::kInteger: return "integer";
    case TokenType::kDouble: return "double";
    case TokenType::kString: return "string";
    case TokenType::kConstruct: return "CONSTRUCT";
    case TokenType::kMatch: return "MATCH";
    case TokenType::kWhere: return "WHERE";
    case TokenType::kOptional: return "OPTIONAL";
    case TokenType::kOn: return "ON";
    case TokenType::kUnion: return "UNION";
    case TokenType::kIntersect: return "INTERSECT";
    case TokenType::kMinusKw: return "MINUS";
    case TokenType::kGraph: return "GRAPH";
    case TokenType::kView: return "VIEW";
    case TokenType::kAs: return "AS";
    case TokenType::kPath: return "PATH";
    case TokenType::kCost: return "COST";
    case TokenType::kShortest: return "SHORTEST";
    case TokenType::kAll: return "ALL";
    case TokenType::kWhen: return "WHEN";
    case TokenType::kSet: return "SET";
    case TokenType::kRemove: return "REMOVE";
    case TokenType::kGroup: return "GROUP";
    case TokenType::kExists: return "EXISTS";
    case TokenType::kSelect: return "SELECT";
    case TokenType::kFrom: return "FROM";
    case TokenType::kIn: return "IN";
    case TokenType::kSubset: return "SUBSET";
    case TokenType::kAnd: return "AND";
    case TokenType::kOr: return "OR";
    case TokenType::kNot: return "NOT";
    case TokenType::kTrue: return "TRUE";
    case TokenType::kFalse: return "FALSE";
    case TokenType::kNull: return "NULL";
    case TokenType::kCase: return "CASE";
    case TokenType::kThen: return "THEN";
    case TokenType::kElse: return "ELSE";
    case TokenType::kEnd: return "END";
    case TokenType::kDistinct: return "DISTINCT";
    case TokenType::kOrder: return "ORDER";
    case TokenType::kBy: return "BY";
    case TokenType::kAsc: return "ASC";
    case TokenType::kDesc: return "DESC";
    case TokenType::kLimit: return "LIMIT";
    case TokenType::kCount: return "COUNT";
    case TokenType::kSum: return "SUM";
    case TokenType::kMin: return "MIN";
    case TokenType::kMax: return "MAX";
    case TokenType::kAvg: return "AVG";
    case TokenType::kCollect: return "COLLECT";
    case TokenType::kLParen: return "(";
    case TokenType::kRParen: return ")";
    case TokenType::kLBracket: return "[";
    case TokenType::kRBracket: return "]";
    case TokenType::kLBrace: return "{";
    case TokenType::kRBrace: return "}";
    case TokenType::kComma: return ",";
    case TokenType::kDot: return ".";
    case TokenType::kColon: return ":";
    case TokenType::kAssign: return ":=";
    case TokenType::kAt: return "@";
    case TokenType::kTilde: return "~";
    case TokenType::kBang: return "!";
    case TokenType::kPipe: return "|";
    case TokenType::kStar: return "*";
    case TokenType::kPlus: return "+";
    case TokenType::kMinus: return "-";
    case TokenType::kSlash: return "/";
    case TokenType::kPercent: return "%";
    case TokenType::kQuestion: return "?";
    case TokenType::kEq: return "=";
    case TokenType::kNeq: return "<>";
    case TokenType::kLt: return "<";
    case TokenType::kLe: return "<=";
    case TokenType::kGt: return ">";
    case TokenType::kGe: return ">=";
    case TokenType::kArrowRight: return "->";
    case TokenType::kArrowLeft: return "<-";
    case TokenType::kUnderscore: return "_";
    case TokenType::kEof: return "<eof>";
  }
  return "?";
}

TokenType KeywordOrIdentifier(const std::string& upper) {
  static const std::map<std::string, TokenType> kKeywords = {
      {"CONSTRUCT", TokenType::kConstruct},
      {"MATCH", TokenType::kMatch},
      {"WHERE", TokenType::kWhere},
      {"OPTIONAL", TokenType::kOptional},
      {"ON", TokenType::kOn},
      {"UNION", TokenType::kUnion},
      {"INTERSECT", TokenType::kIntersect},
      {"MINUS", TokenType::kMinusKw},
      {"GRAPH", TokenType::kGraph},
      {"VIEW", TokenType::kView},
      {"AS", TokenType::kAs},
      {"PATH", TokenType::kPath},
      {"COST", TokenType::kCost},
      {"SHORTEST", TokenType::kShortest},
      {"ALL", TokenType::kAll},
      {"WHEN", TokenType::kWhen},
      {"SET", TokenType::kSet},
      {"REMOVE", TokenType::kRemove},
      {"GROUP", TokenType::kGroup},
      {"EXISTS", TokenType::kExists},
      {"SELECT", TokenType::kSelect},
      {"FROM", TokenType::kFrom},
      {"IN", TokenType::kIn},
      {"SUBSET", TokenType::kSubset},
      {"AND", TokenType::kAnd},
      {"OR", TokenType::kOr},
      {"NOT", TokenType::kNot},
      {"TRUE", TokenType::kTrue},
      {"FALSE", TokenType::kFalse},
      {"NULL", TokenType::kNull},
      {"CASE", TokenType::kCase},
      {"THEN", TokenType::kThen},
      {"ELSE", TokenType::kElse},
      {"END", TokenType::kEnd},
      {"DISTINCT", TokenType::kDistinct},
      {"ORDER", TokenType::kOrder},
      {"BY", TokenType::kBy},
      {"ASC", TokenType::kAsc},
      {"DESC", TokenType::kDesc},
      {"LIMIT", TokenType::kLimit},
      {"COUNT", TokenType::kCount},
      {"SUM", TokenType::kSum},
      {"MIN", TokenType::kMin},
      {"MAX", TokenType::kMax},
      {"AVG", TokenType::kAvg},
      {"COLLECT", TokenType::kCollect},
  };
  auto it = kKeywords.find(upper);
  return it == kKeywords.end() ? TokenType::kIdentifier : it->second;
}

std::string Token::ToString() const {
  switch (type) {
    case TokenType::kIdentifier:
      return "identifier '" + text + "'";
    case TokenType::kInteger:
      return "integer " + std::to_string(int_value);
    case TokenType::kDouble:
      return "double " + std::to_string(double_value);
    case TokenType::kString:
      return "string '" + text + "'";
    default:
      return std::string("'") + TokenTypeToString(type) + "'";
  }
}

}  // namespace gcore
