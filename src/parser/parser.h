// Recursive-descent parser for G-CORE.
//
// Accepts the full surface syntax of the paper: every numbered query of
// Section 3 (lines 1-85) parses unmodified. Entry point: ParseQuery.
//
// Notable syntax decisions (documented in README):
//  * Regex alternation is written `|` (the abstract syntax of Appendix A
//    uses `+`; surface `+` is one-or-more).
//  * Edge-label inversion is a `-` suffix inside the regex brackets:
//    `<(:knows|:knows-)*>`.
//  * `{k = v}` in MATCH binds/joins v per value (property unrolling);
//    `{k := e}` in CONSTRUCT assigns.
#ifndef GCORE_PARSER_PARSER_H_
#define GCORE_PARSER_PARSER_H_

#include <memory>
#include <string>

#include "ast/ast.h"
#include "common/result.h"

namespace gcore {

/// Parses one full G-CORE query (head clauses + optional body).
Result<std::unique_ptr<Query>> ParseQuery(const std::string& text);

/// Parses a standalone expression (testing aid).
Result<std::unique_ptr<Expr>> ParseExpression(const std::string& text);

/// Parses a standalone regular path expression, e.g. ":knows*" (testing
/// aid; the text is the regex body without the `<` `>` brackets).
Result<std::unique_ptr<RpqExpr>> ParseRpq(const std::string& text);

}  // namespace gcore

#endif  // GCORE_PARSER_PARSER_H_
