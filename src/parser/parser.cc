#include "parser/parser.h"

#include <cctype>
#include <optional>

#include "parser/lexer.h"

namespace gcore {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<Query>> ParseFullQuery() {
    // EXPLAIN (ANALYZE) is a *contextual* keyword pair: recognized only
    // as the first word(s) of the outermost query and only when a query
    // follows, so `explain` and `analyze` stay usable as identifiers
    // (graph names, variables, property keys) everywhere else — note the
    // bare-identifier query body makes `EXPLAIN analyze` (no trailing
    // query) an EXPLAIN of the graph named "analyze".
    bool explain = false;
    bool analyze = false;
    if (Check(TokenType::kIdentifier) && IsKeywordText(Peek(), "EXPLAIN")) {
      if (Check(TokenType::kIdentifier, 1) &&
          IsKeywordText(Peek(1), "ANALYZE") && StartsQuery(Peek(2))) {
        Advance();
        Advance();
        explain = true;
        analyze = true;
      } else if (StartsQuery(Peek(1))) {
        Advance();
        explain = true;
      }
    }
    GCORE_ASSIGN_OR_RETURN(auto query, ParseQueryInner());
    query->explain = explain;
    query->explain_analyze = analyze;
    GCORE_RETURN_NOT_OK(Expect(TokenType::kEof));
    return query;
  }

  Result<std::unique_ptr<Expr>> ParseStandaloneExpression() {
    GCORE_ASSIGN_OR_RETURN(auto expr, ParseExpr());
    GCORE_RETURN_NOT_OK(Expect(TokenType::kEof));
    return expr;
  }

  Result<std::unique_ptr<RpqExpr>> ParseStandaloneRpq() {
    GCORE_ASSIGN_OR_RETURN(auto rpq, ParseRpqAlt());
    GCORE_RETURN_NOT_OK(Expect(TokenType::kEof));
    return rpq;
  }

 private:
  // --- token plumbing -------------------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool Check(TokenType t, size_t ahead = 0) const {
    return Peek(ahead).Is(t);
  }
  const Token& Advance() {
    const Token& t = Peek();
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }
  bool Match(TokenType t) {
    if (!Check(t)) return false;
    Advance();
    return true;
  }
  Status Expect(TokenType t) {
    if (Match(t)) return Status::OK();
    return ErrorHere(std::string("expected ") + TokenTypeToString(t) +
                     " but found " + Peek().ToString());
  }
  Status ErrorHere(const std::string& msg) const {
    const Token& t = Peek();
    return Status::ParseError(msg + " (line " + std::to_string(t.line) +
                              ", column " + std::to_string(t.column) + ")");
  }
  size_t Save() const { return pos_; }
  void Restore(size_t saved) { pos_ = saved; }

  /// Case-insensitive identifier-text match (contextual keywords).
  static bool IsKeywordText(const Token& token, const char* upper) {
    const std::string& text = token.text;
    size_t i = 0;
    for (; upper[i] != '\0'; ++i) {
      if (i >= text.size() ||
          std::toupper(static_cast<unsigned char>(text[i])) != upper[i]) {
        return false;
      }
    }
    return i == text.size();
  }

  /// True when `token` can begin a query (head clause, basic query, or
  /// graph-reference body).
  static bool StartsQuery(const Token& token) {
    switch (token.type) {
      case TokenType::kConstruct:
      case TokenType::kSelect:
      case TokenType::kPath:
      case TokenType::kGraph:
      case TokenType::kIdentifier:
      case TokenType::kLParen:
        return true;
      default:
        return false;
    }
  }

  Result<std::string> ExpectIdentifier(const char* what) {
    if (!Check(TokenType::kIdentifier)) {
      return Status(StatusCode::kParseError,
                    std::string("expected ") + what + " but found " +
                        Peek().ToString() + " (line " +
                        std::to_string(Peek().line) + ")");
    }
    return Advance().text;
  }

  /// Identifier-or-unreserved-keyword in name positions (property keys may
  /// collide with keywords like `cost`).
  Result<std::string> ExpectName(const char* what) {
    const Token& t = Peek();
    if (t.Is(TokenType::kIdentifier)) return Advance().text;
    switch (t.type) {
      case TokenType::kCost:
      case TokenType::kCount:
      case TokenType::kSum:
      case TokenType::kMin:
      case TokenType::kMax:
      case TokenType::kAvg:
      case TokenType::kCollect:
      case TokenType::kView:
      case TokenType::kGroup:
      case TokenType::kAll:
        return Advance().text;
      default:
        return Status(StatusCode::kParseError,
                      std::string("expected ") + what + " but found " +
                          t.ToString() + " (line " + std::to_string(t.line) +
                          ")");
    }
  }

  // --- query structure ------------------------------------------------------

  Result<std::unique_ptr<Query>> ParseQueryInner() {
    auto query = std::make_unique<Query>();
    // Head clauses in any interleaving.
    while (true) {
      if (Check(TokenType::kPath)) {
        GCORE_ASSIGN_OR_RETURN(PathClause clause, ParsePathClause());
        query->path_clauses.push_back(std::move(clause));
      } else if (Check(TokenType::kGraph)) {
        GCORE_ASSIGN_OR_RETURN(GraphClause clause, ParseGraphClause());
        query->graph_clauses.push_back(std::move(clause));
      } else {
        break;
      }
    }
    // Body is optional: a statement may consist of head clauses only
    // (e.g. the GRAPH VIEW definitions on lines 39-47 / 57-66).
    if (!Check(TokenType::kEof) && !Check(TokenType::kRParen)) {
      GCORE_ASSIGN_OR_RETURN(query->body, ParseQueryBody());
    }
    if (query->body == nullptr && query->graph_clauses.empty() &&
        query->path_clauses.empty()) {
      return ErrorHere("empty query");
    }
    return query;
  }

  Result<std::unique_ptr<QueryBody>> ParseQueryBody() {
    GCORE_ASSIGN_OR_RETURN(auto left, ParseQueryTerm());
    while (true) {
      QueryBody::Kind kind;
      if (Match(TokenType::kUnion)) {
        kind = QueryBody::Kind::kUnion;
      } else if (Match(TokenType::kIntersect)) {
        kind = QueryBody::Kind::kIntersect;
      } else if (Match(TokenType::kMinusKw)) {
        kind = QueryBody::Kind::kMinus;
      } else {
        break;
      }
      GCORE_ASSIGN_OR_RETURN(auto right, ParseQueryTerm());
      auto combined = std::make_unique<QueryBody>();
      combined->kind = kind;
      combined->left = std::move(left);
      combined->right = std::move(right);
      left = std::move(combined);
    }
    return left;
  }

  Result<std::unique_ptr<QueryBody>> ParseQueryTerm() {
    if (Check(TokenType::kLParen)) {
      // Could be a parenthesized full graph query.
      const size_t saved = Save();
      Advance();
      if (Check(TokenType::kConstruct) || Check(TokenType::kSelect) ||
          Check(TokenType::kPath) || Check(TokenType::kGraph)) {
        GCORE_ASSIGN_OR_RETURN(auto inner, ParseQueryBody());
        GCORE_RETURN_NOT_OK(Expect(TokenType::kRParen));
        return inner;
      }
      Restore(saved);
    }
    if (Check(TokenType::kConstruct) || Check(TokenType::kSelect)) {
      GCORE_ASSIGN_OR_RETURN(BasicQuery basic, ParseBasicQuery());
      auto body = std::make_unique<QueryBody>();
      body->kind = QueryBody::Kind::kBasic;
      body->basic = std::make_unique<BasicQuery>(std::move(basic));
      return body;
    }
    if (Check(TokenType::kIdentifier)) {
      auto body = std::make_unique<QueryBody>();
      body->kind = QueryBody::Kind::kGraphRef;
      body->graph_ref = Advance().text;
      return body;
    }
    return ErrorHere("expected CONSTRUCT, SELECT or a graph name");
  }

  Result<BasicQuery> ParseBasicQuery() {
    BasicQuery basic;
    if (Check(TokenType::kSelect)) {
      GCORE_ASSIGN_OR_RETURN(SelectClause select, ParseSelectClause());
      basic.select = std::move(select);
    } else {
      GCORE_ASSIGN_OR_RETURN(ConstructClause construct,
                             ParseConstructClause());
      basic.construct = std::move(construct);
    }
    if (Check(TokenType::kMatch)) {
      GCORE_ASSIGN_OR_RETURN(MatchClause match, ParseMatchClause());
      basic.match = std::move(match);
    } else if (Match(TokenType::kFrom)) {
      GCORE_ASSIGN_OR_RETURN(basic.from_table, ExpectIdentifier("table name"));
    }
    // Trailing ORDER BY / LIMIT belong to the SELECT (Section 5's
    // "slicing, sorting" extensions).
    if (basic.select.has_value()) {
      if (Match(TokenType::kOrder)) {
        GCORE_RETURN_NOT_OK(Expect(TokenType::kBy));
        do {
          OrderKey key;
          GCORE_ASSIGN_OR_RETURN(key.expr, ParseExpr());
          if (Match(TokenType::kDesc)) {
            key.descending = true;
          } else {
            Match(TokenType::kAsc);
          }
          basic.select->order_by.push_back(std::move(key));
        } while (Match(TokenType::kComma));
      }
      if (Match(TokenType::kLimit)) {
        if (!Check(TokenType::kInteger)) {
          return ErrorHere("LIMIT expects an integer");
        }
        basic.select->limit = Advance().int_value;
      }
    }
    return basic;
  }

  // --- SELECT (Section 5 extension) ------------------------------------------

  Result<SelectClause> ParseSelectClause() {
    GCORE_RETURN_NOT_OK(Expect(TokenType::kSelect));
    SelectClause select;
    select.distinct = Match(TokenType::kDistinct);
    do {
      SelectItem item;
      GCORE_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (Match(TokenType::kAs)) {
        GCORE_ASSIGN_OR_RETURN(item.alias, ExpectName("alias"));
      }
      select.items.push_back(std::move(item));
    } while (Match(TokenType::kComma));
    return select;
  }

  // --- CONSTRUCT --------------------------------------------------------------

  Result<ConstructClause> ParseConstructClause() {
    GCORE_RETURN_NOT_OK(Expect(TokenType::kConstruct));
    ConstructClause construct;
    do {
      GCORE_ASSIGN_OR_RETURN(ConstructItem item, ParseConstructItem());
      construct.items.push_back(std::move(item));
    } while (Match(TokenType::kComma));
    return construct;
  }

  Result<ConstructItem> ParseConstructItem() {
    ConstructItem item;
    if (Check(TokenType::kIdentifier)) {
      item.graph_ref = Advance().text;
      return item;
    }
    GCORE_ASSIGN_OR_RETURN(GraphPattern pattern,
                           ParsePatternChain(/*in_construct=*/true));
    item.pattern = std::move(pattern);
    // Trailing SET/REMOVE statements and a WHEN condition, any interleaving.
    while (true) {
      if (Check(TokenType::kSet) || Check(TokenType::kRemove)) {
        GCORE_ASSIGN_OR_RETURN(SetStatement stmt, ParseSetStatement());
        item.sets.push_back(std::move(stmt));
      } else if (Check(TokenType::kWhen) && item.when == nullptr) {
        Advance();
        GCORE_ASSIGN_OR_RETURN(item.when, ParseExpr());
      } else {
        break;
      }
    }
    return item;
  }

  Result<SetStatement> ParseSetStatement() {
    SetStatement stmt;
    const bool is_set = Match(TokenType::kSet);
    if (!is_set) GCORE_RETURN_NOT_OK(Expect(TokenType::kRemove));
    GCORE_ASSIGN_OR_RETURN(stmt.var, ExpectIdentifier("variable"));
    if (Match(TokenType::kDot)) {
      GCORE_ASSIGN_OR_RETURN(stmt.key, ExpectName("property key"));
      if (is_set) {
        stmt.kind = SetStatement::Kind::kSetProperty;
        GCORE_RETURN_NOT_OK(Expect(TokenType::kAssign));
        GCORE_ASSIGN_OR_RETURN(stmt.value, ParseExpr());
      } else {
        stmt.kind = SetStatement::Kind::kRemoveProperty;
      }
      return stmt;
    }
    if (Match(TokenType::kColon)) {
      GCORE_ASSIGN_OR_RETURN(stmt.label, ExpectName("label"));
      stmt.kind = is_set ? SetStatement::Kind::kSetLabel
                         : SetStatement::Kind::kRemoveLabel;
      return stmt;
    }
    if (is_set && Match(TokenType::kEq)) {
      stmt.kind = SetStatement::Kind::kCopy;
      GCORE_ASSIGN_OR_RETURN(stmt.from_var, ExpectIdentifier("variable"));
      return stmt;
    }
    return ErrorHere("malformed SET/REMOVE statement");
  }

  // --- MATCH ------------------------------------------------------------------

  Result<MatchClause> ParseMatchClause() {
    GCORE_RETURN_NOT_OK(Expect(TokenType::kMatch));
    MatchClause match;
    GCORE_ASSIGN_OR_RETURN(match.patterns, ParsePatternList());
    if (Match(TokenType::kWhere)) {
      GCORE_ASSIGN_OR_RETURN(match.where, ParseExpr());
    }
    while (Match(TokenType::kOptional)) {
      OptionalBlock block;
      GCORE_ASSIGN_OR_RETURN(block.patterns, ParsePatternList());
      if (Match(TokenType::kWhere)) {
        GCORE_ASSIGN_OR_RETURN(block.where, ParseExpr());
      }
      match.optionals.push_back(std::move(block));
    }
    return match;
  }

  Result<std::vector<GraphPattern>> ParsePatternList() {
    std::vector<GraphPattern> patterns;
    do {
      GCORE_ASSIGN_OR_RETURN(GraphPattern pattern,
                             ParsePatternChain(/*in_construct=*/false));
      if (Match(TokenType::kOn)) {
        if (Match(TokenType::kLParen)) {
          // ON (fullGraphQuery) — Appendix A.2 locations.
          GCORE_ASSIGN_OR_RETURN(pattern.on_subquery, ParseQueryInner());
          GCORE_RETURN_NOT_OK(Expect(TokenType::kRParen));
        } else {
          GCORE_ASSIGN_OR_RETURN(pattern.on_graph,
                                 ExpectIdentifier("graph name"));
        }
      }
      patterns.push_back(std::move(pattern));
    } while (Match(TokenType::kComma));
    return patterns;
  }

  // --- pattern chains ---------------------------------------------------------

  Result<GraphPattern> ParsePatternChain(bool in_construct) {
    GraphPattern chain;
    GCORE_ASSIGN_OR_RETURN(chain.start, ParseNodePattern(in_construct));
    while (true) {
      GCORE_ASSIGN_OR_RETURN(std::optional<PatternHop> hop,
                             TryParseHop(in_construct));
      if (!hop.has_value()) break;
      chain.hops.push_back(std::move(*hop));
    }
    return chain;
  }

  /// Parses an edge/path connector plus its target node, or nothing when
  /// the chain ends here.
  Result<std::optional<PatternHop>> TryParseHop(bool in_construct) {
    // Right edge or undirected: -[ ... ]-> / -[ ... ]-
    // Path: -/ ... /->
    if (Check(TokenType::kMinus) && Check(TokenType::kLBracket, 1)) {
      Advance();
      Advance();
      PatternHop hop;
      hop.kind = PatternHop::Kind::kEdge;
      GCORE_RETURN_NOT_OK(ParseEdgeInner(&hop.edge, in_construct));
      GCORE_RETURN_NOT_OK(Expect(TokenType::kRBracket));
      if (Match(TokenType::kArrowRight)) {
        hop.edge.direction = EdgePattern::Direction::kRight;
      } else if (Match(TokenType::kMinus)) {
        hop.edge.direction = EdgePattern::Direction::kUndirected;
      } else {
        return ErrorHere("expected -> or - after edge pattern");
      }
      GCORE_ASSIGN_OR_RETURN(hop.to, ParseNodePattern(in_construct));
      return std::optional<PatternHop>(std::move(hop));
    }
    if (Check(TokenType::kArrowLeft) && Check(TokenType::kLBracket, 1)) {
      Advance();
      Advance();
      PatternHop hop;
      hop.kind = PatternHop::Kind::kEdge;
      GCORE_RETURN_NOT_OK(ParseEdgeInner(&hop.edge, in_construct));
      hop.edge.direction = EdgePattern::Direction::kLeft;
      GCORE_RETURN_NOT_OK(Expect(TokenType::kRBracket));
      GCORE_RETURN_NOT_OK(Expect(TokenType::kMinus));
      GCORE_ASSIGN_OR_RETURN(hop.to, ParseNodePattern(in_construct));
      return std::optional<PatternHop>(std::move(hop));
    }
    // Abbreviated edges without brackets: -> and <- and - () ... The paper
    // uses (msg1)-[:reply_of]-(msg2) style; abbreviated (a)->(b) is also
    // accepted for convenience.
    if (Check(TokenType::kArrowRight) && Check(TokenType::kLParen, 1)) {
      Advance();
      PatternHop hop;
      hop.kind = PatternHop::Kind::kEdge;
      hop.edge.direction = EdgePattern::Direction::kRight;
      GCORE_ASSIGN_OR_RETURN(hop.to, ParseNodePattern(in_construct));
      return std::optional<PatternHop>(std::move(hop));
    }
    if (Check(TokenType::kArrowLeft) && Check(TokenType::kLParen, 1)) {
      Advance();
      PatternHop hop;
      hop.kind = PatternHop::Kind::kEdge;
      hop.edge.direction = EdgePattern::Direction::kLeft;
      GCORE_ASSIGN_OR_RETURN(hop.to, ParseNodePattern(in_construct));
      return std::optional<PatternHop>(std::move(hop));
    }
    if (Check(TokenType::kMinus) && Check(TokenType::kLParen, 1)) {
      Advance();
      PatternHop hop;
      hop.kind = PatternHop::Kind::kEdge;
      hop.edge.direction = EdgePattern::Direction::kUndirected;
      GCORE_ASSIGN_OR_RETURN(hop.to, ParseNodePattern(in_construct));
      return std::optional<PatternHop>(std::move(hop));
    }
    if (Check(TokenType::kMinus) && Check(TokenType::kSlash, 1)) {
      Advance();
      Advance();
      PatternHop hop;
      hop.kind = PatternHop::Kind::kPath;
      GCORE_RETURN_NOT_OK(ParsePathInner(&hop.path, in_construct));
      GCORE_RETURN_NOT_OK(Expect(TokenType::kSlash));
      if (!Match(TokenType::kArrowRight)) {
        return ErrorHere("expected /-> to close path pattern");
      }
      GCORE_ASSIGN_OR_RETURN(hop.to, ParseNodePattern(in_construct));
      return std::optional<PatternHop>(std::move(hop));
    }
    return std::optional<PatternHop>{};
  }

  Result<NodePattern> ParseNodePattern(bool in_construct) {
    GCORE_RETURN_NOT_OK(Expect(TokenType::kLParen));
    NodePattern node;
    if (Match(TokenType::kEq)) {
      node.is_copy = true;
      GCORE_ASSIGN_OR_RETURN(node.var, ExpectIdentifier("variable"));
    } else if (Check(TokenType::kIdentifier)) {
      node.var = Advance().text;
    }
    if (Match(TokenType::kGroup)) {
      do {
        GCORE_ASSIGN_OR_RETURN(auto expr, ParseGroupExpr());
        node.group_by.push_back(std::move(expr));
      } while (Match(TokenType::kComma));
    }
    GCORE_RETURN_NOT_OK(ParseLabelGroups(&node.label_groups));
    GCORE_RETURN_NOT_OK(ParsePropBlock(&node.props, in_construct));
    GCORE_RETURN_NOT_OK(Expect(TokenType::kRParen));
    return node;
  }

  /// GROUP expressions are variables or property accesses only — a full
  /// expression parse would swallow the following `:Label` group as a
  /// label-test postfix (`GROUP e :Company` in line 21 of the paper).
  Result<std::unique_ptr<Expr>> ParseGroupExpr() {
    GCORE_ASSIGN_OR_RETURN(std::string var, ExpectIdentifier("variable"));
    if (Match(TokenType::kDot)) {
      GCORE_ASSIGN_OR_RETURN(std::string key, ExpectName("property key"));
      return Expr::Property(std::move(var), std::move(key));
    }
    return Expr::Variable(std::move(var));
  }

  Status ParseEdgeInner(EdgePattern* edge, bool in_construct) {
    if (Match(TokenType::kEq)) {
      edge->is_copy = true;
      GCORE_ASSIGN_OR_RETURN(edge->var, ExpectIdentifier("variable"));
    } else if (Check(TokenType::kIdentifier)) {
      edge->var = Advance().text;
    }
    if (Match(TokenType::kGroup)) {
      do {
        GCORE_ASSIGN_OR_RETURN(auto expr, ParseGroupExpr());
        edge->group_by.push_back(std::move(expr));
      } while (Match(TokenType::kComma));
    }
    GCORE_RETURN_NOT_OK(ParseLabelGroups(&edge->label_groups));
    GCORE_RETURN_NOT_OK(ParsePropBlock(&edge->props, in_construct));
    return Status::OK();
  }

  Status ParsePathInner(PathPattern* path, bool in_construct) {
    // MATCH: [int] SHORTEST | ALL prefix.
    if (Check(TokenType::kInteger) && Check(TokenType::kShortest, 1)) {
      path->k = Advance().int_value;
      Advance();
      path->mode = PathPattern::Mode::kShortest;
    } else if (Match(TokenType::kShortest)) {
      path->mode = PathPattern::Mode::kShortest;
    } else if (Match(TokenType::kAll)) {
      path->mode = PathPattern::Mode::kAll;
    } else {
      path->mode = PathPattern::Mode::kReachability;
    }
    if (Match(TokenType::kAt)) {
      path->stored = true;
      GCORE_ASSIGN_OR_RETURN(path->var, ExpectIdentifier("path variable"));
    } else if (Check(TokenType::kIdentifier)) {
      path->var = Advance().text;
    }
    GCORE_RETURN_NOT_OK(ParseLabelGroups(&path->label_groups));
    if (Match(TokenType::kLt)) {
      GCORE_ASSIGN_OR_RETURN(path->rpq, ParseRpqAlt());
      GCORE_RETURN_NOT_OK(ExpectRegexClose());
    }
    GCORE_RETURN_NOT_OK(ParsePropBlock(&path->props, in_construct));
    if (Match(TokenType::kCost)) {
      GCORE_ASSIGN_OR_RETURN(path->cost_var,
                             ExpectIdentifier("cost variable"));
    }
    // Mode fixups for the match side: `@p` matches stored paths (with an
    // optional regex conformance test, Appendix A.2); a bare regex without
    // SHORTEST/ALL and without a variable is a reachability test; with a
    // variable it is 1-SHORTEST.
    if (!in_construct) {
      if (path->stored) {
        path->mode = PathPattern::Mode::kStoredMatch;
      } else if (path->mode == PathPattern::Mode::kReachability &&
                 !path->var.empty() && path->rpq != nullptr) {
        path->mode = PathPattern::Mode::kShortest;
      }
    }
    return Status::OK();
  }

  Status ParseLabelGroups(std::vector<std::vector<std::string>>* groups) {
    while (Check(TokenType::kColon)) {
      Advance();
      std::vector<std::string> group;
      GCORE_ASSIGN_OR_RETURN(std::string label, ExpectName("label"));
      group.push_back(std::move(label));
      while (Match(TokenType::kPipe)) {
        GCORE_ASSIGN_OR_RETURN(std::string next, ExpectName("label"));
        group.push_back(std::move(next));
      }
      groups->push_back(std::move(group));
    }
    return Status::OK();
  }

  Status ParsePropBlock(std::vector<PropPattern>* props, bool in_construct) {
    if (!Match(TokenType::kLBrace)) return Status::OK();
    if (!Check(TokenType::kRBrace)) {
      do {
        PropPattern prop;
        GCORE_ASSIGN_OR_RETURN(prop.key, ExpectName("property key"));
        if (Match(TokenType::kAssign)) {
          prop.mode = PropPattern::Mode::kAssign;
          GCORE_ASSIGN_OR_RETURN(prop.value, ParseExpr());
        } else if (Match(TokenType::kEq) || Match(TokenType::kColon)) {
          GCORE_ASSIGN_OR_RETURN(auto value, ParseExpr());
          if (!in_construct && value->kind == Expr::Kind::kVariable) {
            // `{employer = e}`: binds/joins e per property value (p.9).
            prop.mode = PropPattern::Mode::kBindVariable;
            prop.bind_var = value->var;
          } else if (in_construct) {
            prop.mode = PropPattern::Mode::kAssign;
            prop.value = std::move(value);
          } else {
            prop.mode = PropPattern::Mode::kFilter;
            prop.value = std::move(value);
          }
        } else {
          return ErrorHere("expected =, := or : in property block");
        }
        props->push_back(std::move(prop));
      } while (Match(TokenType::kComma));
    }
    GCORE_RETURN_NOT_OK(Expect(TokenType::kRBrace));
    return Status::OK();
  }

  // --- regular path expressions ----------------------------------------------

  /// The closing `>` of a regex may have fused with a preceding `-` into
  /// `->` (e.g. `<:knows->`); ParseRpqPostfix already consumed the `-` as
  /// an inverse marker in that case, leaving kArrowRight impossible here —
  /// only a plain `>` remains.
  Status ExpectRegexClose() { return Expect(TokenType::kGt); }

  Result<std::unique_ptr<RpqExpr>> ParseRpqAlt() {
    std::vector<std::unique_ptr<RpqExpr>> alts;
    GCORE_ASSIGN_OR_RETURN(auto first, ParseRpqConcat());
    alts.push_back(std::move(first));
    while (Match(TokenType::kPipe)) {
      GCORE_ASSIGN_OR_RETURN(auto next, ParseRpqConcat());
      alts.push_back(std::move(next));
    }
    if (alts.size() == 1) return std::move(alts.front());
    return RpqExpr::Alt(std::move(alts));
  }

  Result<std::unique_ptr<RpqExpr>> ParseRpqConcat() {
    std::vector<std::unique_ptr<RpqExpr>> parts;
    GCORE_ASSIGN_OR_RETURN(auto first, ParseRpqPostfix());
    parts.push_back(std::move(first));
    while (Check(TokenType::kColon) || Check(TokenType::kBang) ||
           Check(TokenType::kTilde) || Check(TokenType::kUnderscore) ||
           Check(TokenType::kLParen)) {
      GCORE_ASSIGN_OR_RETURN(auto next, ParseRpqPostfix());
      parts.push_back(std::move(next));
    }
    if (parts.size() == 1) return std::move(parts.front());
    return RpqExpr::Concat(std::move(parts));
  }

  Result<std::unique_ptr<RpqExpr>> ParseRpqPostfix() {
    GCORE_ASSIGN_OR_RETURN(auto atom, ParseRpqAtom());
    while (true) {
      if (Match(TokenType::kStar)) {
        atom = RpqExpr::Star(std::move(atom));
      } else if (Match(TokenType::kPlus)) {
        atom = RpqExpr::Plus(std::move(atom));
      } else if (Match(TokenType::kQuestion)) {
        atom = RpqExpr::Optional(std::move(atom));
      } else {
        break;
      }
    }
    return atom;
  }

  Result<std::unique_ptr<RpqExpr>> ParseRpqAtom() {
    if (Match(TokenType::kColon)) {
      GCORE_ASSIGN_OR_RETURN(std::string label, ExpectName("edge label"));
      // Inverse marker: a `-` suffix. It may appear as kMinus, or fused
      // with the regex-closing `>` as kArrowRight (`<:knows->`), in which
      // case rewrite the token to the remaining `>`.
      if (Check(TokenType::kMinus)) {
        Advance();
        return RpqExpr::InverseEdgeLabel(std::move(label));
      }
      if (Check(TokenType::kArrowRight)) {
        tokens_[pos_].type = TokenType::kGt;
        return RpqExpr::InverseEdgeLabel(std::move(label));
      }
      return RpqExpr::EdgeLabel(std::move(label));
    }
    if (Match(TokenType::kBang)) {
      GCORE_ASSIGN_OR_RETURN(std::string label, ExpectName("node label"));
      return RpqExpr::NodeLabel(std::move(label));
    }
    if (Match(TokenType::kTilde)) {
      GCORE_ASSIGN_OR_RETURN(std::string name, ExpectName("path view name"));
      return RpqExpr::ViewRef(std::move(name));
    }
    if (Match(TokenType::kUnderscore)) {
      return RpqExpr::AnyEdge();
    }
    if (Match(TokenType::kLParen)) {
      GCORE_ASSIGN_OR_RETURN(auto inner, ParseRpqAlt());
      GCORE_RETURN_NOT_OK(Expect(TokenType::kRParen));
      return inner;
    }
    return ErrorHere("expected a path expression atom (:label, !label, "
                     "~view, _ or parenthesized expression)");
  }

  // --- PATH / GRAPH head clauses ----------------------------------------------

  Result<PathClause> ParsePathClause() {
    GCORE_RETURN_NOT_OK(Expect(TokenType::kPath));
    PathClause clause;
    GCORE_ASSIGN_OR_RETURN(clause.name, ExpectIdentifier("path view name"));
    GCORE_RETURN_NOT_OK(Expect(TokenType::kEq));
    do {
      GCORE_ASSIGN_OR_RETURN(GraphPattern pattern,
                             ParsePatternChain(/*in_construct=*/false));
      clause.patterns.push_back(std::move(pattern));
    } while (Match(TokenType::kComma));
    if (Match(TokenType::kWhere)) {
      GCORE_ASSIGN_OR_RETURN(clause.where, ParseExpr());
    }
    if (Match(TokenType::kCost)) {
      GCORE_ASSIGN_OR_RETURN(clause.cost, ParseExpr());
    }
    return clause;
  }

  Result<GraphClause> ParseGraphClause() {
    GCORE_RETURN_NOT_OK(Expect(TokenType::kGraph));
    GraphClause clause;
    clause.is_view = Match(TokenType::kView);
    GCORE_ASSIGN_OR_RETURN(clause.name, ExpectIdentifier("graph name"));
    GCORE_RETURN_NOT_OK(Expect(TokenType::kAs));
    GCORE_RETURN_NOT_OK(Expect(TokenType::kLParen));
    GCORE_ASSIGN_OR_RETURN(clause.query, ParseQueryInner());
    GCORE_RETURN_NOT_OK(Expect(TokenType::kRParen));
    return clause;
  }

  // --- expressions -------------------------------------------------------------

  Result<std::unique_ptr<Expr>> ParseExpr() { return ParseOr(); }

  Result<std::unique_ptr<Expr>> ParseOr() {
    GCORE_ASSIGN_OR_RETURN(auto left, ParseAnd());
    while (Match(TokenType::kOr)) {
      GCORE_ASSIGN_OR_RETURN(auto right, ParseAnd());
      left = Expr::Binary(BinaryOp::kOr, std::move(left), std::move(right));
    }
    return left;
  }

  Result<std::unique_ptr<Expr>> ParseAnd() {
    GCORE_ASSIGN_OR_RETURN(auto left, ParseNot());
    while (Match(TokenType::kAnd)) {
      GCORE_ASSIGN_OR_RETURN(auto right, ParseNot());
      left = Expr::Binary(BinaryOp::kAnd, std::move(left), std::move(right));
    }
    return left;
  }

  Result<std::unique_ptr<Expr>> ParseNot() {
    if (Match(TokenType::kNot)) {
      GCORE_ASSIGN_OR_RETURN(auto inner, ParseNot());
      return Expr::Unary(UnaryOp::kNot, std::move(inner));
    }
    return ParseComparison();
  }

  Result<std::unique_ptr<Expr>> ParseComparison() {
    GCORE_ASSIGN_OR_RETURN(auto left, ParseAdditive());
    while (true) {
      BinaryOp op;
      if (Match(TokenType::kEq)) {
        op = BinaryOp::kEq;
      } else if (Match(TokenType::kNeq)) {
        op = BinaryOp::kNe;
      } else if (Match(TokenType::kLt)) {
        op = BinaryOp::kLt;
      } else if (Match(TokenType::kLe)) {
        op = BinaryOp::kLe;
      } else if (Match(TokenType::kGt)) {
        op = BinaryOp::kGt;
      } else if (Match(TokenType::kGe)) {
        op = BinaryOp::kGe;
      } else if (Match(TokenType::kIn)) {
        op = BinaryOp::kIn;
      } else if (Match(TokenType::kSubset)) {
        op = BinaryOp::kSubsetOf;
      } else {
        break;
      }
      GCORE_ASSIGN_OR_RETURN(auto right, ParseAdditive());
      left = Expr::Binary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<std::unique_ptr<Expr>> ParseAdditive() {
    GCORE_ASSIGN_OR_RETURN(auto left, ParseMultiplicative());
    while (true) {
      BinaryOp op;
      if (Match(TokenType::kPlus)) {
        op = BinaryOp::kAdd;
      } else if (Match(TokenType::kMinus)) {
        op = BinaryOp::kSub;
      } else {
        break;
      }
      GCORE_ASSIGN_OR_RETURN(auto right, ParseMultiplicative());
      left = Expr::Binary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<std::unique_ptr<Expr>> ParseMultiplicative() {
    GCORE_ASSIGN_OR_RETURN(auto left, ParseUnary());
    while (true) {
      BinaryOp op;
      if (Match(TokenType::kStar)) {
        op = BinaryOp::kMul;
      } else if (Match(TokenType::kSlash)) {
        op = BinaryOp::kDiv;
      } else if (Match(TokenType::kPercent)) {
        op = BinaryOp::kMod;
      } else {
        break;
      }
      GCORE_ASSIGN_OR_RETURN(auto right, ParseUnary());
      left = Expr::Binary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<std::unique_ptr<Expr>> ParseUnary() {
    if (Match(TokenType::kMinus)) {
      GCORE_ASSIGN_OR_RETURN(auto inner, ParseUnary());
      return Expr::Unary(UnaryOp::kNeg, std::move(inner));
    }
    return ParsePostfix();
  }

  Result<std::unique_ptr<Expr>> ParsePostfix() {
    GCORE_ASSIGN_OR_RETURN(auto expr, ParsePrimary());
    while (true) {
      if (Match(TokenType::kDot)) {
        GCORE_ASSIGN_OR_RETURN(std::string key, ExpectName("property key"));
        if (expr->kind == Expr::Kind::kVariable) {
          expr = Expr::Property(expr->var, key);
        } else {
          // General form: property access on a computed object (e.g.
          // nodes(p)[1].name) is modeled as a function.
          std::vector<std::unique_ptr<Expr>> args;
          args.push_back(std::move(expr));
          args.push_back(Expr::Literal(Value::String(key)));
          expr = Expr::Function("property", std::move(args));
        }
      } else if (Check(TokenType::kLBracket)) {
        Advance();
        GCORE_ASSIGN_OR_RETURN(auto index, ParseExpr());
        GCORE_RETURN_NOT_OK(Expect(TokenType::kRBracket));
        expr = Expr::Index(std::move(expr), std::move(index));
      } else if (Check(TokenType::kColon) &&
                 expr->kind == Expr::Kind::kVariable &&
                 (Check(TokenType::kIdentifier, 1) ||
                  Check(TokenType::kCost, 1))) {
        Advance();
        std::vector<std::string> labels;
        GCORE_ASSIGN_OR_RETURN(std::string label, ExpectName("label"));
        labels.push_back(std::move(label));
        while (Match(TokenType::kPipe)) {
          GCORE_ASSIGN_OR_RETURN(std::string next, ExpectName("label"));
          labels.push_back(std::move(next));
        }
        expr = Expr::LabelTest(expr->var, std::move(labels));
      } else {
        break;
      }
    }
    return expr;
  }

  Result<std::unique_ptr<Expr>> ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.type) {
      case TokenType::kInteger:
        Advance();
        return Expr::Literal(Value::Int(tok.int_value));
      case TokenType::kDouble:
        Advance();
        return Expr::Literal(Value::Double(tok.double_value));
      case TokenType::kString:
        Advance();
        return Expr::Literal(Value::String(tok.text));
      case TokenType::kTrue:
        Advance();
        return Expr::Literal(Value::Bool(true));
      case TokenType::kFalse:
        Advance();
        return Expr::Literal(Value::Bool(false));
      case TokenType::kNull:
        Advance();
        return Expr::Literal(Value::Null());
      case TokenType::kCount:
      case TokenType::kSum:
      case TokenType::kMin:
      case TokenType::kMax:
      case TokenType::kAvg:
      case TokenType::kCollect:
        return ParseAggregate();
      case TokenType::kCase:
        return ParseCase();
      case TokenType::kExists:
        return ParseExists();
      case TokenType::kCost:
        // COST doubles as the path-cost function, COST(p).
        if (Check(TokenType::kLParen, 1)) {
          Advance();
          Advance();
          GCORE_ASSIGN_OR_RETURN(auto arg, ParseExpr());
          GCORE_RETURN_NOT_OK(Expect(TokenType::kRParen));
          std::vector<std::unique_ptr<Expr>> args;
          args.push_back(std::move(arg));
          return Expr::Function("cost", std::move(args));
        }
        return ErrorHere("unexpected COST");
      case TokenType::kIdentifier:
        if (Check(TokenType::kLParen, 1)) return ParseFunctionCall();
        Advance();
        return Expr::Variable(tok.text);
      case TokenType::kLParen:
        return ParseParenOrPattern();
      default:
        return ErrorHere("expected an expression but found " +
                         tok.ToString());
    }
  }

  Result<std::unique_ptr<Expr>> ParseAggregate() {
    const TokenType agg = Advance().type;
    GCORE_RETURN_NOT_OK(Expect(TokenType::kLParen));
    AggregateOp op;
    switch (agg) {
      case TokenType::kCount: op = AggregateOp::kCount; break;
      case TokenType::kSum: op = AggregateOp::kSum; break;
      case TokenType::kMin: op = AggregateOp::kMin; break;
      case TokenType::kMax: op = AggregateOp::kMax; break;
      case TokenType::kAvg: op = AggregateOp::kAvg; break;
      default: op = AggregateOp::kCollect; break;
    }
    if (op == AggregateOp::kCount && Match(TokenType::kStar)) {
      GCORE_RETURN_NOT_OK(Expect(TokenType::kRParen));
      return Expr::CountStar();
    }
    Match(TokenType::kDistinct);  // accepted and currently ignored
    GCORE_ASSIGN_OR_RETURN(auto arg, ParseExpr());
    GCORE_RETURN_NOT_OK(Expect(TokenType::kRParen));
    return Expr::Aggregate(op, std::move(arg));
  }

  Result<std::unique_ptr<Expr>> ParseCase() {
    GCORE_RETURN_NOT_OK(Expect(TokenType::kCase));
    auto expr = std::make_unique<Expr>();
    expr->kind = Expr::Kind::kCase;
    while (Match(TokenType::kWhen)) {
      CaseArm arm;
      GCORE_ASSIGN_OR_RETURN(arm.condition, ParseExpr());
      GCORE_RETURN_NOT_OK(Expect(TokenType::kThen));
      GCORE_ASSIGN_OR_RETURN(arm.result, ParseExpr());
      expr->case_arms.push_back(std::move(arm));
    }
    if (expr->case_arms.empty()) {
      return ErrorHere("CASE requires at least one WHEN arm");
    }
    if (Match(TokenType::kElse)) {
      GCORE_ASSIGN_OR_RETURN(expr->case_else, ParseExpr());
    }
    GCORE_RETURN_NOT_OK(Expect(TokenType::kEnd));
    return expr;
  }

  Result<std::unique_ptr<Expr>> ParseExists() {
    GCORE_RETURN_NOT_OK(Expect(TokenType::kExists));
    GCORE_RETURN_NOT_OK(Expect(TokenType::kLParen));
    GCORE_ASSIGN_OR_RETURN(auto subquery, ParseQueryInner());
    GCORE_RETURN_NOT_OK(Expect(TokenType::kRParen));
    return Expr::Exists(std::move(subquery));
  }

  Result<std::unique_ptr<Expr>> ParseFunctionCall() {
    GCORE_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("function"));
    GCORE_RETURN_NOT_OK(Expect(TokenType::kLParen));
    std::vector<std::unique_ptr<Expr>> args;
    if (!Check(TokenType::kRParen)) {
      do {
        GCORE_ASSIGN_OR_RETURN(auto arg, ParseExpr());
        args.push_back(std::move(arg));
      } while (Match(TokenType::kComma));
    }
    GCORE_RETURN_NOT_OK(Expect(TokenType::kRParen));
    return Expr::Function(std::move(name), std::move(args));
  }

  /// Disambiguates `(expr)` from an implicit existential pattern such as
  /// `(n)-[:isLocatedIn]->()<-[:isLocatedIn]-(m)` inside WHERE.
  Result<std::unique_ptr<Expr>> ParseParenOrPattern() {
    const size_t saved = Save();
    // Attempt a pattern chain; succeed only when it has at least one hop
    // (a bare `(n)` or `(n:Person)` parses better as an expression).
    {
      auto chain = ParsePatternChain(/*in_construct=*/false);
      if (chain.ok() && !chain->hops.empty()) {
        auto pattern = std::make_unique<GraphPattern>(std::move(*chain));
        return Expr::PatternPredicate(std::move(pattern));
      }
    }
    Restore(saved);
    GCORE_RETURN_NOT_OK(Expect(TokenType::kLParen));
    GCORE_ASSIGN_OR_RETURN(auto inner, ParseExpr());
    GCORE_RETURN_NOT_OK(Expect(TokenType::kRParen));
    return inner;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<Query>> ParseQuery(const std::string& text) {
  GCORE_ASSIGN_OR_RETURN(auto tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseFullQuery();
}

Result<std::unique_ptr<Expr>> ParseExpression(const std::string& text) {
  GCORE_ASSIGN_OR_RETURN(auto tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseStandaloneExpression();
}

Result<std::unique_ptr<RpqExpr>> ParseRpq(const std::string& text) {
  GCORE_ASSIGN_OR_RETURN(auto tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseStandaloneRpq();
}

}  // namespace gcore
