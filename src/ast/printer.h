// Query AST → query-text rendering.
//
// Used for debugging, error messages, and the Table 1 feature report. The
// output re-parses to an equivalent AST (round-trip tested).
#ifndef GCORE_AST_PRINTER_H_
#define GCORE_AST_PRINTER_H_

#include <string>

#include "ast/ast.h"

namespace gcore {

std::string PrintQuery(const Query& query);
std::string PrintQueryBody(const QueryBody& body);
std::string PrintBasicQuery(const BasicQuery& basic);
std::string PrintConstructClause(const ConstructClause& construct);
std::string PrintMatchClause(const MatchClause& match);
std::string PrintSelectClause(const SelectClause& select);
std::string PrintPathClause(const PathClause& path);
std::string PrintGraphClause(const GraphClause& graph);

}  // namespace gcore

#endif  // GCORE_AST_PRINTER_H_
