// Graph pattern AST: the MATCH-side and CONSTRUCT-side pattern grammars
// (Appendix A.2 and A.3).
//
// A pattern chain is a sequence  node (connector node)*  where a connector
// is an edge pattern (square brackets) or a path pattern (slashes). The
// same shapes serve MATCH (binding) and CONSTRUCT (instantiation); the
// construct-only members (GROUP, := assignments, copy syntax) are simply
// unused on the MATCH side and vice versa (regexes, SHORTEST/ALL).
#ifndef GCORE_AST_PATTERN_H_
#define GCORE_AST_PATTERN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ast/expr.h"
#include "paths/rpq.h"

namespace gcore {

/// One `{key <op> value}` entry inside a node/edge/path pattern.
struct PropPattern {
  enum class Mode {
    /// MATCH `{k = <literal-expr>}`: membership filter on σ(x, k).
    kFilter,
    /// MATCH `{k = var}` where var is fresh: unrolls the value set of k
    /// into one binding per element (p.9 of the paper).
    kBindVariable,
    /// CONSTRUCT `{k := expr}`: property assignment on the new object.
    kAssign,
  };
  Mode mode{};
  std::string key;
  std::string bind_var;         // kBindVariable
  std::unique_ptr<Expr> value;  // kFilter / kAssign
};

/// `(x :A|B {..})`, `(x GROUP e :Company {name := e})`, `(=n)`, `()`.
struct NodePattern {
  std::string var;  // empty for anonymous ()
  /// CONSTRUCT copy syntax `(=n)`: a fresh node copying labels/properties
  /// of the binding of `var`.
  bool is_copy = false;
  /// Conjunction of disjunctions: (n:Person) -> {{Person}};
  /// (m:Post|Comment) -> {{Post, Comment}}.
  std::vector<std::vector<std::string>> label_groups;
  std::vector<PropPattern> props;
  /// CONSTRUCT GROUP clause: explicit grouping expressions Γ.
  std::vector<std::unique_ptr<Expr>> group_by;
};

/// Edge connector `-[e:knows {..}]->`, `<-[:worksAt]-`, `-[=y]->`.
struct EdgePattern {
  enum class Direction {
    kRight,       // -[..]->
    kLeft,        // <-[..]-
    kUndirected,  // -[..]-   (matches either direction)
  };
  Direction direction = Direction::kRight;
  std::string var;  // empty for anonymous
  bool is_copy = false;  // -[=y]- copy syntax
  std::vector<std::vector<std::string>> label_groups;
  std::vector<PropPattern> props;
  std::vector<std::unique_ptr<Expr>> group_by;  // CONSTRUCT GROUP
};

/// Path connector `-/../->`. MATCH forms:
///   -/@p:toWagner/->                 match a stored path (by label)
///   -/3 SHORTEST p <:knows*> COST c/-> k cheapest conforming walks
///   -/ALL p <:knows*>/->             all-paths graph projection
///   -/<:knows*>/->                   reachability test
/// CONSTRUCT forms:
///   -/@p:label {k := v}/->           store the path bound to p
///   -/p/->                           project p's nodes+edges into result
struct PathPattern {
  enum class Mode {
    kStoredMatch,    // @p with optional label filter, no regex
    kShortest,       // [k] SHORTEST (default k=1)
    kAll,            // ALL
    kReachability,   // bare regex, no variable
  };
  Mode mode = Mode::kReachability;
  /// SHORTEST multiplicity (the `3` in `3 SHORTEST`); 1 when absent.
  int64_t k = 1;
  bool stored = false;   // leading @ on the variable
  std::string var;       // empty for reachability
  std::string cost_var;  // COST c; empty when absent
  std::unique_ptr<RpqExpr> rpq;  // null for kStoredMatch / construct side
  std::vector<std::vector<std::string>> label_groups;  // stored match/construct
  std::vector<PropPattern> props;  // construct side assignments
};

/// A connector plus the node that follows it.
struct PatternHop {
  enum class Kind { kEdge, kPath };
  Kind kind{};
  EdgePattern edge;  // kKind == kEdge
  PathPattern path;  // kKind == kPath
  NodePattern to;
};

struct Query;  // ast.h

/// One comma-separated pattern: `(a)-[e]->(b)-/.../->(c) [ON location]`.
/// The location is a graph name or a parenthesized full graph query
/// (Appendix A.2, `basicGraphPattern On fullGraphQuery`).
struct GraphPattern {
  GraphPattern();
  ~GraphPattern();
  GraphPattern(GraphPattern&&) noexcept;
  GraphPattern& operator=(GraphPattern&&) noexcept;

  NodePattern start;
  std::vector<PatternHop> hops;
  /// ON <name>; empty means the default graph (or the subquery below).
  std::string on_graph;
  /// ON (<full graph query>); evaluated by the engine before matching.
  std::unique_ptr<Query> on_subquery;

  /// Collects all variables bound by this pattern.
  void CollectBoundVariables(std::vector<std::string>* out) const;
  std::string ToString() const;
};

/// OPTIONAL block: patterns plus its own WHERE (lines 44-47).
struct OptionalBlock {
  std::vector<GraphPattern> patterns;
  std::unique_ptr<Expr> where;  // may be null
};

std::string ToString(const NodePattern& node);
std::string ToString(const EdgePattern& edge, const NodePattern& to);
std::string ToString(const PathPattern& path, const NodePattern& to);

}  // namespace gcore

#endif  // GCORE_AST_PATTERN_H_
