// Expression AST: the ξ grammar of Appendix A.1.
//
//   ξ ::= x | x.k | x:ℓ | ⋄ξ | ξ ⊙ ξ | f(ξ, ...) | Σ(ξ) | EXISTS q
//
// plus CASE (mentioned in Section 3 for coalescing missing data) and
// implicit existential graph patterns inside WHERE (lines 27/31/35).
#ifndef GCORE_AST_EXPR_H_
#define GCORE_AST_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/value.h"

namespace gcore {

struct GraphPattern;  // pattern.h
struct Query;         // ast.h

/// Binary operators ⊙.
enum class BinaryOp {
  kEq,        // =   (set equality; singletons unwrap)
  kNe,        // <>
  kLt,        // <
  kLe,        // <=
  kGt,        // >
  kGe,        // >=
  kAnd,       // AND
  kOr,        // OR
  kAdd,       // +   (numeric addition / string concatenation)
  kSub,       // -
  kMul,       // *
  kDiv,       // /
  kMod,       // %
  kIn,        // IN       (value ∈ set)
  kSubsetOf,  // SUBSET   (set ⊆ set)
};

/// Unary operators ⋄.
enum class UnaryOp {
  kNot,  // NOT
  kNeg,  // -ξ
};

/// Aggregation functions Σ.
enum class AggregateOp {
  kCount,
  kSum,
  kMin,
  kMax,
  kAvg,
  kCollect,
};

const char* BinaryOpToString(BinaryOp op);
const char* AggregateOpToString(AggregateOp op);

/// One WHEN/THEN arm of a searched CASE.
struct CaseArm;

/// Expression tree node. Tagged union; only the members relevant to `kind`
/// are populated.
struct Expr {
  enum class Kind {
    kLiteral,       // value
    kVariable,      // x
    kProperty,      // x.k                 (var, key)
    kLabelTest,     // x:ℓ1|ℓ2             (var, labels — disjunction)
    kUnary,         // ⋄ξ                  (unary_op, args[0])
    kBinary,        // ξ ⊙ ξ               (binary_op, args[0], args[1])
    kFunction,      // f(ξ, ...)            (name, args)
    kAggregate,     // Σ(ξ) / COUNT(*)      (aggregate_op, args maybe empty)
    kIndex,         // ξ[ξ]                 (args[0], args[1]) — nodes(p)[1]
    kCase,          // CASE WHEN..THEN.. ELSE.. END
    kExists,        // EXISTS (subquery)    (subquery)
    kGraphPattern,  // implicit existential pattern in WHERE (pattern)
  };

  Kind kind;

  Value value;                              // kLiteral
  std::string var;                          // kVariable/kProperty/kLabelTest
  std::string key;                          // kProperty
  std::vector<std::string> labels;          // kLabelTest (any-of)
  UnaryOp unary_op{};                       // kUnary
  BinaryOp binary_op{};                     // kBinary
  std::string name;                         // kFunction
  AggregateOp aggregate_op{};               // kAggregate
  bool count_star = false;                  // kAggregate: COUNT(*)
  std::vector<std::unique_ptr<Expr>> args;  // children
  std::vector<CaseArm> case_arms;           // kCase
  std::unique_ptr<Expr> case_else;          // kCase (may be null)
  std::unique_ptr<Query> subquery;          // kExists
  std::unique_ptr<GraphPattern> pattern;    // kGraphPattern

  Expr();
  ~Expr();
  Expr(Expr&&) noexcept;
  Expr& operator=(Expr&&) noexcept;

  // --- factories -----------------------------------------------------------
  static std::unique_ptr<Expr> Literal(Value v);
  static std::unique_ptr<Expr> Variable(std::string name);
  static std::unique_ptr<Expr> Property(std::string var, std::string key);
  static std::unique_ptr<Expr> LabelTest(std::string var,
                                         std::vector<std::string> labels);
  static std::unique_ptr<Expr> Unary(UnaryOp op, std::unique_ptr<Expr> arg);
  static std::unique_ptr<Expr> Binary(BinaryOp op, std::unique_ptr<Expr> lhs,
                                      std::unique_ptr<Expr> rhs);
  static std::unique_ptr<Expr> Function(std::string name,
                                        std::vector<std::unique_ptr<Expr>> a);
  static std::unique_ptr<Expr> Aggregate(AggregateOp op,
                                         std::unique_ptr<Expr> arg);
  static std::unique_ptr<Expr> CountStar();
  static std::unique_ptr<Expr> Index(std::unique_ptr<Expr> base,
                                     std::unique_ptr<Expr> index);
  static std::unique_ptr<Expr> Exists(std::unique_ptr<Query> subquery);
  static std::unique_ptr<Expr> PatternPredicate(
      std::unique_ptr<GraphPattern> pattern);

  /// True when the subtree contains an aggregate (drives CONSTRUCT
  /// grouping, e.g. COUNT(*) in SET).
  bool ContainsAggregate() const;

  /// Collects variables referenced anywhere in the subtree.
  void CollectVariables(std::vector<std::string>* out) const;

  /// Query-text rendering.
  std::string ToString() const;
};

struct CaseArm {
  std::unique_ptr<Expr> condition;
  std::unique_ptr<Expr> result;
};

}  // namespace gcore

#endif  // GCORE_AST_EXPR_H_
