#include "ast/printer.h"

namespace gcore {

namespace {

std::string PrintSetStatement(const SetStatement& s) {
  switch (s.kind) {
    case SetStatement::Kind::kSetProperty:
      return "SET " + s.var + "." + s.key + " := " + s.value->ToString();
    case SetStatement::Kind::kSetLabel:
      return "SET " + s.var + ":" + s.label;
    case SetStatement::Kind::kCopy:
      return "SET " + s.var + " = " + s.from_var;
    case SetStatement::Kind::kRemoveProperty:
      return "REMOVE " + s.var + "." + s.key;
    case SetStatement::Kind::kRemoveLabel:
      return "REMOVE " + s.var + ":" + s.label;
  }
  return "?";
}

}  // namespace

std::string PrintConstructClause(const ConstructClause& construct) {
  std::string out = "CONSTRUCT ";
  for (size_t i = 0; i < construct.items.size(); ++i) {
    if (i > 0) out += ", ";
    const ConstructItem& item = construct.items[i];
    if (!item.graph_ref.empty()) {
      out += item.graph_ref;
      continue;
    }
    out += item.pattern->ToString();
    for (const auto& s : item.sets) {
      out += " " + PrintSetStatement(s);
    }
    if (item.when != nullptr) out += " WHEN " + item.when->ToString();
  }
  return out;
}

std::string PrintMatchClause(const MatchClause& match) {
  std::string out = "MATCH ";
  for (size_t i = 0; i < match.patterns.size(); ++i) {
    if (i > 0) out += ", ";
    out += match.patterns[i].ToString();
  }
  if (match.where != nullptr) out += " WHERE " + match.where->ToString();
  for (const auto& opt : match.optionals) {
    out += " OPTIONAL ";
    for (size_t i = 0; i < opt.patterns.size(); ++i) {
      if (i > 0) out += ", ";
      out += opt.patterns[i].ToString();
    }
    if (opt.where != nullptr) out += " WHERE " + opt.where->ToString();
  }
  return out;
}

std::string PrintSelectClause(const SelectClause& select) {
  std::string out = "SELECT ";
  if (select.distinct) out += "DISTINCT ";
  for (size_t i = 0; i < select.items.size(); ++i) {
    if (i > 0) out += ", ";
    out += select.items[i].expr->ToString();
    if (!select.items[i].alias.empty()) {
      out += " AS " + select.items[i].alias;
    }
  }
  return out;
}

std::string PrintBasicQuery(const BasicQuery& basic) {
  std::string out;
  if (basic.select.has_value()) {
    out += PrintSelectClause(*basic.select);
  } else if (basic.construct.has_value()) {
    out += PrintConstructClause(*basic.construct);
  }
  if (basic.match.has_value()) {
    out += " " + PrintMatchClause(*basic.match);
  } else if (!basic.from_table.empty()) {
    out += " FROM " + basic.from_table;
  }
  if (basic.select.has_value()) {
    const SelectClause& select = *basic.select;
    if (!select.order_by.empty()) {
      out += " ORDER BY ";
      for (size_t i = 0; i < select.order_by.size(); ++i) {
        if (i > 0) out += ", ";
        out += select.order_by[i].expr->ToString();
        if (select.order_by[i].descending) out += " DESC";
      }
    }
    if (select.limit >= 0) out += " LIMIT " + std::to_string(select.limit);
  }
  return out;
}

std::string PrintQueryBody(const QueryBody& body) {
  switch (body.kind) {
    case QueryBody::Kind::kBasic:
      return PrintBasicQuery(*body.basic);
    case QueryBody::Kind::kGraphRef:
      return body.graph_ref;
    case QueryBody::Kind::kUnion:
      return PrintQueryBody(*body.left) + " UNION " +
             PrintQueryBody(*body.right);
    case QueryBody::Kind::kIntersect:
      return PrintQueryBody(*body.left) + " INTERSECT " +
             PrintQueryBody(*body.right);
    case QueryBody::Kind::kMinus:
      return PrintQueryBody(*body.left) + " MINUS " +
             PrintQueryBody(*body.right);
  }
  return "?";
}

std::string PrintPathClause(const PathClause& path) {
  std::string out = "PATH " + path.name + " = ";
  for (size_t i = 0; i < path.patterns.size(); ++i) {
    if (i > 0) out += ", ";
    out += path.patterns[i].ToString();
  }
  if (path.where != nullptr) out += " WHERE " + path.where->ToString();
  if (path.cost != nullptr) out += " COST " + path.cost->ToString();
  return out;
}

std::string PrintGraphClause(const GraphClause& graph) {
  std::string out = "GRAPH ";
  if (graph.is_view) out += "VIEW ";
  out += graph.name + " AS (" + PrintQuery(*graph.query) + ")";
  return out;
}

std::string PrintQuery(const Query& query) {
  std::string out;
  if (query.explain) {
    out += query.explain_analyze ? "EXPLAIN ANALYZE " : "EXPLAIN ";
  }
  for (const auto& p : query.path_clauses) {
    out += PrintPathClause(p) + " ";
  }
  for (const auto& g : query.graph_clauses) {
    out += PrintGraphClause(g) + " ";
  }
  if (query.body != nullptr) out += PrintQueryBody(*query.body);
  return out;
}

std::string Query::ToString() const { return PrintQuery(*this); }

}  // namespace gcore
