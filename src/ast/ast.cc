#include "ast/ast.h"

namespace gcore {

Query::Query() = default;
Query::~Query() = default;
Query::Query(Query&&) noexcept = default;
Query& Query::operator=(Query&&) noexcept = default;

bool Query::IsTabular() const {
  const QueryBody* b = body.get();
  while (b != nullptr && b->kind != QueryBody::Kind::kBasic) {
    b = b->left.get();
  }
  return b != nullptr && b->basic != nullptr && b->basic->select.has_value();
}

}  // namespace gcore
