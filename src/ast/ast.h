// Top-level query AST: the grammar of Section 4.
//
//   query          ::= headClause fullGraphQuery
//   headClause     ::= ε | pathClause headClause | graphClause headClause
//   fullGraphQuery ::= basicGraphQuery
//                    | fullGraphQuery setOp fullGraphQuery
//   setOp          ::= UNION | INTERSECT | MINUS
//   basicGraphQuery::= constructClause matchClause
//
// plus the Section 5 extensions (SELECT projection, FROM <table>) and the
// graph-name shorthand inside set operations (`... UNION social_graph`).
#ifndef GCORE_AST_AST_H_
#define GCORE_AST_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ast/pattern.h"

namespace gcore {

/// SET / REMOVE statements attached to a CONSTRUCT (Appendix A.3
// "Set and Remove Assignments").
struct SetStatement {
  enum class Kind {
    kSetProperty,     // SET x.k := ξ
    kSetLabel,        // SET x:ℓ
    kCopy,            // SET x = y  (copy labels+properties of y's binding)
    kRemoveProperty,  // REMOVE x.k
    kRemoveLabel,     // REMOVE x:ℓ
  };
  Kind kind{};
  std::string var;
  std::string key;    // property kinds
  std::string label;  // label kinds
  std::string from_var;          // kCopy
  std::unique_ptr<Expr> value;   // kSetProperty
};

/// One comma-separated item of a CONSTRUCT clause: either a graph-name
/// shorthand (union with that graph) or a pattern chain with optional WHEN
/// condition and SET/REMOVE statements.
struct ConstructItem {
  std::string graph_ref;  // non-empty -> shorthand `CONSTRUCT social_graph`
  std::optional<GraphPattern> pattern;
  std::unique_ptr<Expr> when;  // may be null
  std::vector<SetStatement> sets;
};

struct ConstructClause {
  std::vector<ConstructItem> items;
};

struct MatchClause {
  std::vector<GraphPattern> patterns;
  std::unique_ptr<Expr> where;  // may be null
  std::vector<OptionalBlock> optionals;
};

/// SELECT projection item (Section 5): expression plus alias.
struct SelectItem {
  std::unique_ptr<Expr> expr;
  std::string alias;
};

/// ORDER BY key (the "sorting" extension Section 5 names).
struct OrderKey {
  std::unique_ptr<Expr> expr;
  bool descending = false;
};

struct SelectClause {
  std::vector<SelectItem> items;
  /// Deduplicate result rows.
  bool distinct = false;
  std::vector<OrderKey> order_by;
  /// Row cap ("slicing"); negative = no limit.
  int64_t limit = -1;
};

/// constructClause matchClause, or the tabular variants of Section 5.
struct BasicQuery {
  /// Exactly one of construct / select is set.
  std::optional<ConstructClause> construct;
  std::optional<SelectClause> select;
  /// Exactly one of match / from_table is set.
  std::optional<MatchClause> match;
  std::string from_table;  // FROM <table>
};

/// Tree of set operations over basic queries / graph references.
struct QueryBody {
  enum class Kind { kBasic, kGraphRef, kUnion, kIntersect, kMinus };
  Kind kind{};
  std::unique_ptr<BasicQuery> basic;     // kBasic
  std::string graph_ref;                 // kGraphRef
  std::unique_ptr<QueryBody> left;       // set ops
  std::unique_ptr<QueryBody> right;
};

/// PATH head clause (Appendix A.4):
///   PATH name = <patterns> [WHERE ξ] [COST ξ]
struct PathClause {
  std::string name;
  /// First pattern supplies the start/end nodes of the segment; additional
  /// comma-separated patterns constrain it (non-linear path patterns,
  /// footnote 3 of the paper).
  std::vector<GraphPattern> patterns;
  std::unique_ptr<Expr> where;  // may be null
  std::unique_ptr<Expr> cost;   // may be null -> cost 1 per segment
};

/// GRAPH name AS (query) — query-local; GRAPH VIEW name AS (query) —
/// catalog-persistent (Appendix A.6).
struct GraphClause {
  std::string name;
  bool is_view = false;
  std::unique_ptr<Query> query;
};

/// A full G-CORE query.
struct Query {
  std::vector<PathClause> path_clauses;
  std::vector<GraphClause> graph_clauses;
  std::unique_ptr<QueryBody> body;
  /// EXPLAIN <query>: plan and print the optimized evaluation plan
  /// instead of executing. Only meaningful on the outermost query.
  bool explain = false;
  /// EXPLAIN ANALYZE <query>: additionally *execute* the query and
  /// annotate every plan operator with its actual output row count next
  /// to the estimate. Implies `explain`.
  bool explain_analyze = false;

  Query();
  ~Query();
  Query(Query&&) noexcept;
  Query& operator=(Query&&) noexcept;

  /// True when the query produces a table (SELECT) rather than a graph.
  bool IsTabular() const;

  std::string ToString() const;
};

}  // namespace gcore

#endif  // GCORE_AST_AST_H_
