#include "ast/expr.h"

#include "ast/ast.h"
#include "ast/pattern.h"

namespace gcore {

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kIn:
      return "IN";
    case BinaryOp::kSubsetOf:
      return "SUBSET";
  }
  return "?";
}

const char* AggregateOpToString(AggregateOp op) {
  switch (op) {
    case AggregateOp::kCount:
      return "COUNT";
    case AggregateOp::kSum:
      return "SUM";
    case AggregateOp::kMin:
      return "MIN";
    case AggregateOp::kMax:
      return "MAX";
    case AggregateOp::kAvg:
      return "AVG";
    case AggregateOp::kCollect:
      return "COLLECT";
  }
  return "?";
}

Expr::Expr() : kind(Kind::kLiteral) {}
Expr::~Expr() = default;
Expr::Expr(Expr&&) noexcept = default;
Expr& Expr::operator=(Expr&&) noexcept = default;

std::unique_ptr<Expr> Expr::Literal(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLiteral;
  e->value = std::move(v);
  return e;
}

std::unique_ptr<Expr> Expr::Variable(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kVariable;
  e->var = std::move(name);
  return e;
}

std::unique_ptr<Expr> Expr::Property(std::string var, std::string key) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kProperty;
  e->var = std::move(var);
  e->key = std::move(key);
  return e;
}

std::unique_ptr<Expr> Expr::LabelTest(std::string var,
                                      std::vector<std::string> labels) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLabelTest;
  e->var = std::move(var);
  e->labels = std::move(labels);
  return e;
}

std::unique_ptr<Expr> Expr::Unary(UnaryOp op, std::unique_ptr<Expr> arg) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kUnary;
  e->unary_op = op;
  e->args.push_back(std::move(arg));
  return e;
}

std::unique_ptr<Expr> Expr::Binary(BinaryOp op, std::unique_ptr<Expr> lhs,
                                   std::unique_ptr<Expr> rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kBinary;
  e->binary_op = op;
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

std::unique_ptr<Expr> Expr::Function(std::string name,
                                     std::vector<std::unique_ptr<Expr>> a) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kFunction;
  e->name = std::move(name);
  e->args = std::move(a);
  return e;
}

std::unique_ptr<Expr> Expr::Aggregate(AggregateOp op,
                                      std::unique_ptr<Expr> arg) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kAggregate;
  e->aggregate_op = op;
  if (arg != nullptr) e->args.push_back(std::move(arg));
  return e;
}

std::unique_ptr<Expr> Expr::CountStar() {
  auto e = Aggregate(AggregateOp::kCount, nullptr);
  e->count_star = true;
  return e;
}

std::unique_ptr<Expr> Expr::Index(std::unique_ptr<Expr> base,
                                  std::unique_ptr<Expr> index) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kIndex;
  e->args.push_back(std::move(base));
  e->args.push_back(std::move(index));
  return e;
}

std::unique_ptr<Expr> Expr::Exists(std::unique_ptr<Query> subquery) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kExists;
  e->subquery = std::move(subquery);
  return e;
}

std::unique_ptr<Expr> Expr::PatternPredicate(
    std::unique_ptr<GraphPattern> pattern) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kGraphPattern;
  e->pattern = std::move(pattern);
  return e;
}

bool Expr::ContainsAggregate() const {
  if (kind == Kind::kAggregate) return true;
  for (const auto& a : args) {
    if (a != nullptr && a->ContainsAggregate()) return true;
  }
  for (const auto& arm : case_arms) {
    if (arm.condition != nullptr && arm.condition->ContainsAggregate()) {
      return true;
    }
    if (arm.result != nullptr && arm.result->ContainsAggregate()) return true;
  }
  if (case_else != nullptr && case_else->ContainsAggregate()) return true;
  return false;
}

void Expr::CollectVariables(std::vector<std::string>* out) const {
  auto add = [out](const std::string& v) {
    if (v.empty()) return;
    for (const auto& existing : *out) {
      if (existing == v) return;
    }
    out->push_back(v);
  };
  switch (kind) {
    case Kind::kVariable:
    case Kind::kProperty:
    case Kind::kLabelTest:
      add(var);
      break;
    case Kind::kGraphPattern:
      if (pattern != nullptr) {
        std::vector<std::string> bound;
        pattern->CollectBoundVariables(&bound);
        for (const auto& v : bound) add(v);
      }
      break;
    default:
      break;
  }
  for (const auto& a : args) {
    if (a != nullptr) a->CollectVariables(out);
  }
  for (const auto& arm : case_arms) {
    if (arm.condition != nullptr) arm.condition->CollectVariables(out);
    if (arm.result != nullptr) arm.result->CollectVariables(out);
  }
  if (case_else != nullptr) case_else->CollectVariables(out);
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kLiteral:
      return value.is_string() ? "'" + value.AsString() + "'"
                               : value.ToString();
    case Kind::kVariable:
      return var;
    case Kind::kProperty:
      return var + "." + key;
    case Kind::kLabelTest: {
      std::string out = var + ":";
      for (size_t i = 0; i < labels.size(); ++i) {
        if (i > 0) out += "|";
        out += labels[i];
      }
      return out;
    }
    case Kind::kUnary:
      return (unary_op == UnaryOp::kNot ? "NOT " : "-") +
             args[0]->ToString();
    case Kind::kBinary:
      return "(" + args[0]->ToString() + " " +
             BinaryOpToString(binary_op) + " " + args[1]->ToString() + ")";
    case Kind::kFunction: {
      std::string out = name + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->ToString();
      }
      return out + ")";
    }
    case Kind::kAggregate: {
      std::string out = AggregateOpToString(aggregate_op);
      out += "(";
      out += count_star ? "*" : (args.empty() ? "" : args[0]->ToString());
      return out + ")";
    }
    case Kind::kIndex:
      return args[0]->ToString() + "[" + args[1]->ToString() + "]";
    case Kind::kCase: {
      std::string out = "CASE";
      for (const auto& arm : case_arms) {
        out += " WHEN " + arm.condition->ToString() + " THEN " +
               arm.result->ToString();
      }
      if (case_else != nullptr) out += " ELSE " + case_else->ToString();
      return out + " END";
    }
    case Kind::kExists:
      return "EXISTS (...)";
    case Kind::kGraphPattern:
      return pattern != nullptr ? pattern->ToString() : "<pattern>";
  }
  return "?";
}

}  // namespace gcore
