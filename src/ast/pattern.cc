#include "ast/pattern.h"

#include "ast/ast.h"

namespace gcore {

GraphPattern::GraphPattern() = default;
GraphPattern::~GraphPattern() = default;
GraphPattern::GraphPattern(GraphPattern&&) noexcept = default;
GraphPattern& GraphPattern::operator=(GraphPattern&&) noexcept = default;

namespace {

void AddUnique(std::vector<std::string>* out, const std::string& v) {
  if (v.empty()) return;
  for (const auto& existing : *out) {
    if (existing == v) return;
  }
  out->push_back(v);
}

std::string LabelGroupsToString(
    const std::vector<std::vector<std::string>>& groups) {
  std::string out;
  for (const auto& group : groups) {
    out += ":";
    for (size_t i = 0; i < group.size(); ++i) {
      if (i > 0) out += "|";
      out += group[i];
    }
  }
  return out;
}

std::string PropsToString(const std::vector<PropPattern>& props) {
  if (props.empty()) return "";
  std::string out = " {";
  for (size_t i = 0; i < props.size(); ++i) {
    if (i > 0) out += ", ";
    const PropPattern& p = props[i];
    switch (p.mode) {
      case PropPattern::Mode::kFilter:
        out += p.key + " = " + p.value->ToString();
        break;
      case PropPattern::Mode::kBindVariable:
        out += p.key + " = " + p.bind_var;
        break;
      case PropPattern::Mode::kAssign:
        out += p.key + " := " + p.value->ToString();
        break;
    }
  }
  return out + "}";
}

std::string GroupByToString(
    const std::vector<std::unique_ptr<Expr>>& group_by) {
  if (group_by.empty()) return "";
  std::string out = " GROUP ";
  for (size_t i = 0; i < group_by.size(); ++i) {
    if (i > 0) out += ", ";
    out += group_by[i]->ToString();
  }
  return out;
}

}  // namespace

std::string ToString(const NodePattern& node) {
  std::string out = "(";
  if (node.is_copy) out += "=";
  out += node.var;
  out += GroupByToString(node.group_by);
  out += LabelGroupsToString(node.label_groups);
  out += PropsToString(node.props);
  return out + ")";
}

std::string ToString(const EdgePattern& edge, const NodePattern& to) {
  std::string inner;
  if (edge.is_copy) inner += "=";
  inner += edge.var;
  inner += GroupByToString(edge.group_by);
  inner += LabelGroupsToString(edge.label_groups);
  inner += PropsToString(edge.props);
  std::string out;
  switch (edge.direction) {
    case EdgePattern::Direction::kRight:
      out = "-[" + inner + "]->";
      break;
    case EdgePattern::Direction::kLeft:
      out = "<-[" + inner + "]-";
      break;
    case EdgePattern::Direction::kUndirected:
      out = "-[" + inner + "]-";
      break;
  }
  return out + ToString(to);
}

std::string ToString(const PathPattern& path, const NodePattern& to) {
  std::string inner;
  switch (path.mode) {
    case PathPattern::Mode::kShortest:
      if (path.k != 1) inner += std::to_string(path.k) + " ";
      inner += "SHORTEST ";
      break;
    case PathPattern::Mode::kAll:
      inner += "ALL ";
      break;
    default:
      break;
  }
  if (path.stored) inner += "@";
  inner += path.var;
  inner += LabelGroupsToString(path.label_groups);
  if (path.rpq != nullptr) inner += " <" + path.rpq->ToString() + ">";
  inner += PropsToString(path.props);
  if (!path.cost_var.empty()) inner += " COST " + path.cost_var;
  return "-/" + inner + "/->" + ToString(to);
}

void GraphPattern::CollectBoundVariables(std::vector<std::string>* out) const {
  auto collect_node = [out](const NodePattern& n) {
    AddUnique(out, n.var);
    for (const auto& p : n.props) {
      if (p.mode == PropPattern::Mode::kBindVariable) {
        AddUnique(out, p.bind_var);
      }
    }
  };
  collect_node(start);
  for (const auto& hop : hops) {
    if (hop.kind == PatternHop::Kind::kEdge) {
      AddUnique(out, hop.edge.var);
      for (const auto& p : hop.edge.props) {
        if (p.mode == PropPattern::Mode::kBindVariable) {
          AddUnique(out, p.bind_var);
        }
      }
    } else {
      AddUnique(out, hop.path.var);
      AddUnique(out, hop.path.cost_var);
    }
    collect_node(hop.to);
  }
}

std::string GraphPattern::ToString() const {
  std::string out = gcore::ToString(start);
  for (const auto& hop : hops) {
    if (hop.kind == PatternHop::Kind::kEdge) {
      out += gcore::ToString(hop.edge, hop.to);
    } else {
      out += gcore::ToString(hop.path, hop.to);
    }
  }
  if (!on_graph.empty()) out += " ON " + on_graph;
  if (on_subquery != nullptr) out += " ON (" + on_subquery->ToString() + ")";
  return out;
}

}  // namespace gcore
