// The physical operator pipeline: runs an optimized logical plan against
// the Matcher runtime, producing the existing BindingTable.
//
// Volcano-style pull execution at BindingTable-chunk granularity: every
// operator exposes Next() returning the next chunk of bindings (nullopt
// when exhausted). Scans emit their result as one chunk today; expands
// and filters transform chunks one-to-one as they are pulled, so pushed
// predicates run before downstream operators ever see a row. Joins and
// the final Project are pipeline breakers (they drain their inputs), as
// in any hash-based executor. Finer-grained scan chunking / vectorized
// bindings are ROADMAP open items — the operator protocol already
// supports them.
#ifndef GCORE_PLAN_EXECUTOR_H_
#define GCORE_PLAN_EXECUTOR_H_

#include <memory>
#include <optional>

#include "common/result.h"
#include "eval/binding.h"
#include "plan/plan.h"

namespace gcore {

class Matcher;

/// One operator of the physical pipeline.
class PhysicalOp {
 public:
  virtual ~PhysicalOp() = default;
  /// Pulls the next chunk of bindings; nullopt when exhausted. Every
  /// operator yields at least one (possibly empty) chunk so the binding
  /// schema always propagates.
  virtual Result<std::optional<BindingTable>> Next() = 0;
};

class Executor {
 public:
  /// `runtime` supplies graph resolution, adjacency caches and the
  /// pattern-element primitives; it must outlive the execution.
  explicit Executor(Matcher* runtime);

  /// Builds the operator pipeline for `plan` and drains it.
  Result<BindingTable> Run(const PlanNode& plan);

  /// Builds the pipeline without draining (testing / future streaming
  /// consumers).
  Result<std::unique_ptr<PhysicalOp>> Build(const PlanNode& plan);

 private:
  Matcher* runtime_;
};

}  // namespace gcore

#endif  // GCORE_PLAN_EXECUTOR_H_
