// The physical operator pipeline: runs an optimized logical plan against
// the Matcher runtime, producing the existing BindingTable.
//
// Volcano-style pull execution at morsel granularity: every operator
// exposes Next() returning the next chunk of bindings (nullopt when
// exhausted). Scans emit fixed-size morsels; the stateless operators
// between pipeline breakers (pushed filters, edge expansion, residual
// WHERE, projection) are fused into per-morsel stages that a small
// worker pool runs concurrently, reassembling results in input order so
// execution is deterministic at every parallelism degree. Joins and the
// final Project are pipeline breakers (they drain their inputs), as in
// any hash-based executor; HashJoin uses the hash-partitioned parallel
// join with fused duplicate elimination (eval/binding_ops.h).
#ifndef GCORE_PLAN_EXECUTOR_H_
#define GCORE_PLAN_EXECUTOR_H_

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "common/result.h"
#include "eval/binding.h"
#include "plan/plan.h"

namespace gcore {

class Matcher;

/// Per-operator actual row counts, collected while a plan executes
/// (EXPLAIN ANALYZE). Operators record the rows of every chunk (or fused
/// per-morsel stage result) they emit against their PlanNode; counts
/// accumulate, and recording is thread-safe because fused stages run on
/// worker threads. Attribution matches the estimator's: an operator's
/// count includes its pushed-down conjuncts, exactly what est_rows
/// predicts for it.
class ExecStats {
 public:
  /// Adds `rows` to the count of `node`. Thread-safe.
  void Record(const PlanNode* node, size_t rows);

  /// Adds `ms` of measured operator work time to `node`. Thread-safe;
  /// per-morsel slices accumulate, and parallel stages accumulate across
  /// workers (so a stage's total can exceed the query's wall clock).
  void RecordTime(const PlanNode* node, double ms);

  /// Rows recorded for `node`; negative when it never executed.
  int64_t Rows(const PlanNode* node) const;

  /// Milliseconds recorded for `node`; negative when it was never timed.
  double TimeMs(const PlanNode* node) const;

  /// Copies the recorded counts and times into PlanNode::actual_rows /
  /// actual_ms over `plan`'s subtree (operators that never ran stay at
  /// -1, so EXPLAIN ANALYZE renders them estimate-only).
  void AnnotateActuals(PlanNode* plan) const;

 private:
  mutable std::mutex mu_;
  std::map<const PlanNode*, uint64_t> rows_;
  std::map<const PlanNode*, double> ms_;
};

/// Execution-wide knobs of the physical pipeline.
struct ExecContext {
  /// Worker threads for morsel-parallel operators. 0 = one per hardware
  /// thread; 1 = serial pull execution (the differential-test mode —
  /// morsel boundaries still exist but everything runs on the calling
  /// thread in input order).
  size_t parallelism = 0;
  /// Rows per morsel: scans slice their output at this granularity and
  /// pipelines re-slice oversized chunks (e.g. join results). 0 = the
  /// default.
  size_t morsel_size = 0;

  static constexpr size_t kDefaultMorselRows = 1024;

  /// Resolved worker count (>= 1).
  size_t Degree() const;
  /// Resolved morsel size (>= 1).
  size_t MorselRows() const {
    return morsel_size == 0 ? kDefaultMorselRows : morsel_size;
  }
};

/// One operator of the physical pipeline.
class PhysicalOp {
 public:
  virtual ~PhysicalOp() = default;
  /// Pulls the next chunk of bindings; nullopt when exhausted. Every
  /// operator yields at least one (possibly empty) chunk so the binding
  /// schema always propagates.
  virtual Result<std::optional<BindingTable>> Next() = 0;
};

class Executor {
 public:
  /// `runtime` supplies graph resolution, adjacency caches and the
  /// pattern-element primitives; it must outlive the execution. A
  /// non-null `stats` instruments every operator with actual-row
  /// recording (EXPLAIN ANALYZE); it must outlive the pipeline.
  explicit Executor(Matcher* runtime, ExecContext exec = ExecContext(),
                    ExecStats* stats = nullptr);

  /// Builds the operator pipeline for `plan` and drains it.
  Result<BindingTable> Run(const PlanNode& plan);

  /// Builds the pipeline without draining (testing / future streaming
  /// consumers).
  Result<std::unique_ptr<PhysicalOp>> Build(const PlanNode& plan);

 private:
  Matcher* runtime_;
  ExecContext exec_;
  ExecStats* stats_;
};

/// True when evaluating `expr` never re-enters the Matcher runtime:
/// EXISTS subqueries, implicit pattern predicates and aggregates are the
/// re-entrant (or whole-table) constructs. Stages whose expressions are
/// all parallel-safe may run on worker threads.
bool ExprParallelSafe(const Expr& expr);

}  // namespace gcore

#endif  // GCORE_PLAN_EXECUTOR_H_
