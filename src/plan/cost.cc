#include "plan/cost.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "ast/pattern.h"

namespace gcore {

namespace {

/// Seed-model constant selectivities: the fallbacks whenever the
/// statistic a rule needs is missing (unknown property key, no numeric
/// range) and the whole model when `use_column_stats` is off.
constexpr double kPropFilterSelectivity = 0.1;
constexpr double kPushedPredicateSelectivity = 0.25;
constexpr double kResidualFilterSelectivity = 0.25;

/// One pushed conjunct decomposed into `x.k ⊙ literal` when it has that
/// shape (either operand order); kind kOther for everything else.
struct PredicateShape {
  enum class Kind { kOther, kEquality, kRange };
  Kind kind = Kind::kOther;
  std::string var;
  std::string key;
  /// Range only: the comparison rewritten as `x.k op literal`.
  BinaryOp op{};
  Value literal;
};

PredicateShape ClassifyPredicate(const Expr& expr) {
  PredicateShape shape;
  if (expr.kind != Expr::Kind::kBinary || expr.args.size() != 2) return shape;
  const Expr* lhs = expr.args[0].get();
  const Expr* rhs = expr.args[1].get();
  const Expr* prop = nullptr;
  const Expr* literal = nullptr;
  bool flipped = false;
  if (lhs->kind == Expr::Kind::kProperty &&
      rhs->kind == Expr::Kind::kLiteral) {
    prop = lhs;
    literal = rhs;
  } else if (rhs->kind == Expr::Kind::kProperty &&
             lhs->kind == Expr::Kind::kLiteral) {
    prop = rhs;
    literal = lhs;
    flipped = true;
  } else {
    return shape;
  }
  switch (expr.binary_op) {
    case BinaryOp::kEq:
    case BinaryOp::kIn:  // literal IN x.k / x.k IN set: one value of k
      shape.kind = PredicateShape::Kind::kEquality;
      break;
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      shape.kind = PredicateShape::Kind::kRange;
      BinaryOp op = expr.binary_op;
      if (flipped) {
        // `c < x.k` is `x.k > c`, etc.
        switch (op) {
          case BinaryOp::kLt: op = BinaryOp::kGt; break;
          case BinaryOp::kLe: op = BinaryOp::kGe; break;
          case BinaryOp::kGt: op = BinaryOp::kLt; break;
          case BinaryOp::kGe: op = BinaryOp::kLe; break;
          default: break;
        }
      }
      shape.op = op;
      break;
    }
    default:
      return shape;
  }
  shape.var = prop->var;
  shape.key = prop->key;
  shape.literal = literal->value;
  return shape;
}

/// Fraction of objects with `stats.count` carriers of a key (out of
/// `total` objects) expected to satisfy `k = <one value>`: carrying
/// fraction × uniform 1/distinct.
double EqualitySelectivity(const PropertyStats& stats, size_t total) {
  if (total == 0 || stats.distinct == 0) return 0.0;
  const double carrying =
      static_cast<double>(stats.count) / static_cast<double>(total);
  return carrying / static_cast<double>(stats.distinct);
}

/// Min/max interpolation of `x.k op c` into the measured numeric range;
/// negative when the range cannot answer (non-numeric, degenerate span).
double RangeSelectivity(const PropertyStats& stats, size_t total,
                        BinaryOp op, const Value& literal) {
  if (!stats.has_range || !literal.is_numeric() || total == 0) return -1.0;
  const double span = stats.max - stats.min;
  if (span <= 0.0) return -1.0;
  const double c = literal.NumericAsDouble();
  double fraction;
  switch (op) {
    case BinaryOp::kLt:
    case BinaryOp::kLe:
      fraction = (c - stats.min) / span;
      break;
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      fraction = (stats.max - c) / span;
      break;
    default:
      return -1.0;
  }
  fraction = std::min(1.0, std::max(0.0, fraction));
  const double carrying =
      static_cast<double>(stats.count) / static_cast<double>(total);
  return fraction * carrying;
}

/// Seed-model property-filter selectivity (constants only).
double ConstantPropSelectivity(const std::vector<PropPattern>& props) {
  double s = 1.0;
  for (const auto& p : props) {
    if (p.mode == PropPattern::Mode::kFilter) s *= kPropFilterSelectivity;
  }
  return s;
}

/// Seed-model pushed-predicate selectivity (constants only).
double ConstantPushedSelectivity(const PlanNode& node) {
  double s = 1.0;
  for (size_t i = 0; i < node.pushed.size(); ++i) {
    s *= kPushedPredicateSelectivity;
  }
  return s;
}

/// Splits an AND tree into its conjuncts.
void SplitConjuncts(const Expr& expr, std::vector<const Expr*>* out) {
  if (expr.kind == Expr::Kind::kBinary &&
      expr.binary_op == BinaryOp::kAnd) {
    SplitConjuncts(*expr.args[0], out);
    SplitConjuncts(*expr.args[1], out);
    return;
  }
  out->push_back(&expr);
}

/// True when `expr` (a conjunct of a residual WHERE) also appears in a
/// pushed list below `node` — the pushdown rule shares the Expr nodes, so
/// pointer identity suffices.
bool IsPushedBelow(const PlanNode& node, const Expr* expr) {
  for (const Expr* pushed : node.pushed) {
    if (pushed == expr) return true;
  }
  for (const auto& child : node.children) {
    if (IsPushedBelow(*child, expr)) return true;
  }
  return false;
}

/// The operator of `node`'s subtree that binds `var`, or null.
const PlanNode* FindBinder(const PlanNode& node, const std::string& var) {
  switch (node.op) {
    case PlanOp::kNodeScan:
      if (node.var == var) return &node;
      break;
    case PlanOp::kExpandEdge:
      if (node.to_var == var || node.edge_var == var) return &node;
      break;
    case PlanOp::kPathSearch:
      if (node.to_var == var || node.path_var == var) return &node;
      break;
    case PlanOp::kMultiwayExpand:
      // Pre-bound cycle variables (the seed) belong to the child's
      // binder — its pattern is more informative than the absorbed
      // occurrences; the multiway node claims only what the child does
      // not bind (free node variables and every edge variable).
      for (const auto& child : node.children) {
        const PlanNode* binder = FindBinder(*child, var);
        if (binder != nullptr) return binder;
      }
      for (const MultiwayEdge& me : node.multi_edges) {
        if (me.to_var == var || me.from_var == var ||
            me.edge_var == var) {
          return &node;
        }
      }
      return nullptr;
    default:
      break;
  }
  for (const auto& child : node.children) {
    const PlanNode* binder = FindBinder(*child, var);
    if (binder != nullptr) return binder;
  }
  return nullptr;
}

/// Most selective single-label group of a node pattern element (the label
/// anchor of degree lookups and per-label property buckets); "" when no
/// single-label group pins one.
std::string AnchorNodeLabel(
    const std::vector<std::vector<std::string>>& groups,
    const GraphStats& stats) {
  std::string anchor;
  size_t best = std::numeric_limits<size_t>::max();
  for (const auto& group : groups) {
    if (group.size() != 1) continue;
    const size_t count = stats.NodesWithLabel(group[0]);
    if (count < best) {
      best = count;
      anchor = group[0];
    }
  }
  return anchor;
}

std::string AnchorEdgeLabel(
    const std::vector<std::vector<std::string>>& groups,
    const GraphStats& stats) {
  std::string anchor;
  size_t best = std::numeric_limits<size_t>::max();
  for (const auto& group : groups) {
    if (group.size() != 1) continue;
    const size_t count = stats.EdgesWithLabel(group[0]);
    if (count < best) {
      best = count;
      anchor = group[0];
    }
  }
  return anchor;
}

/// The node pattern a binder operator admits `var` with, or null.
const NodePattern* BinderNodePattern(const PlanNode& binder,
                                     const std::string& var) {
  switch (binder.op) {
    case PlanOp::kNodeScan:
      return binder.var == var ? binder.node : nullptr;
    case PlanOp::kExpandEdge:
    case PlanOp::kPathSearch:
      return binder.to_var == var ? binder.to : nullptr;
    default:
      return nullptr;
  }
}

}  // namespace

CardinalityEstimator::CardinalityEstimator(GraphCatalog* catalog,
                                           std::string default_graph,
                                           bool use_column_stats)
    : catalog_(catalog),
      default_graph_(std::move(default_graph)),
      use_column_stats_(use_column_stats) {}

const GraphStats* CardinalityEstimator::StatsFor(
    const std::string& location) {
  const std::string& name = location.empty() ? default_graph_ : location;
  if (name.empty() || catalog_ == nullptr) return nullptr;
  auto pinned = pinned_stats_.find(name);
  if (pinned != pinned_stats_.end()) return pinned->second.get();
  auto stats = catalog_->Stats(name);
  if (!stats.ok()) return nullptr;
  return pinned_stats_.emplace(name, std::move(*stats)).first->second.get();
}

double CardinalityEstimator::LabelSelectivity(
    const std::vector<std::vector<std::string>>& groups,
    const std::map<std::string, size_t>& label_counts, size_t total) {
  if (total == 0) return 0.0;
  double selectivity = 1.0;
  for (const auto& group : groups) {
    // A group is a disjunction: combine the per-label fractions with the
    // independence union 1 - Π(1 - fᵢ). Summing raw counts (the seed
    // formula) double-counts multi-label objects and saturates the
    // pre-clamp value past 1.
    double none_match = 1.0;
    for (const auto& label : group) {
      auto it = label_counts.find(label);
      const size_t count = it != label_counts.end() ? it->second : 0;
      const double fraction =
          std::min(1.0, static_cast<double>(count) /
                            static_cast<double>(total));
      none_match *= 1.0 - fraction;
    }
    selectivity *= 1.0 - none_match;
  }
  return selectivity;
}

double CardinalityEstimator::PropSelectivity(
    const std::vector<PropPattern>& props, const GraphStats* stats,
    bool edge_props, const std::string& anchor_label) const {
  if (!use_column_stats_ || stats == nullptr) {
    return ConstantPropSelectivity(props);
  }
  const auto& global = edge_props ? stats->edge_props : stats->node_props;
  const size_t global_total =
      edge_props ? stats->num_edges : stats->num_nodes;
  const size_t anchor_total =
      anchor_label.empty()
          ? global_total
          : (edge_props ? stats->EdgesWithLabel(anchor_label)
                        : stats->NodesWithLabel(anchor_label));
  double s = 1.0;
  for (const auto& p : props) {
    if (p.mode != PropPattern::Mode::kFilter) continue;
    // (label, key) bucket first — the carrying fraction is then relative
    // to the label's objects, so the label fraction already charged by
    // LabelSelectivity is not re-paid.
    const PropertyStats* bucket =
        edge_props ? stats->EdgePropStatsFor(anchor_label, p.key)
                   : stats->NodePropStatsFor(anchor_label, p.key);
    if (bucket != nullptr && bucket->distinct > 0) {
      s *= EqualitySelectivity(*bucket, anchor_total);
      continue;
    }
    auto it = global.find(p.key);
    if (it != global.end() && it->second.distinct > 0) {
      s *= EqualitySelectivity(it->second, global_total);
    } else {
      s *= kPropFilterSelectivity;
    }
  }
  return s;
}

double CardinalityEstimator::PushedSelectivity(
    const PlanNode& node, const GraphStats* stats,
    const std::string& node_var, const std::string& edge_var,
    const std::string& node_anchor, const std::string& edge_anchor) const {
  if (!use_column_stats_ || stats == nullptr) {
    return ConstantPushedSelectivity(node);
  }
  double s = 1.0;
  for (const Expr* expr : node.pushed) {
    double conjunct = -1.0;
    const PredicateShape shape = ClassifyPredicate(*expr);
    if (shape.kind != PredicateShape::Kind::kOther &&
        (shape.var == node_var || shape.var == edge_var)) {
      const bool on_edge = !edge_var.empty() && shape.var == edge_var;
      const std::string& anchor = on_edge ? edge_anchor : node_anchor;
      const auto& global = on_edge ? stats->edge_props : stats->node_props;
      const size_t global_total =
          on_edge ? stats->num_edges : stats->num_nodes;
      const size_t anchor_total =
          anchor.empty() ? global_total
                         : (on_edge ? stats->EdgesWithLabel(anchor)
                                    : stats->NodesWithLabel(anchor));
      auto selectivity_from = [&](const PropertyStats& dist, size_t total) {
        return shape.kind == PredicateShape::Kind::kEquality
                   ? EqualitySelectivity(dist, total)
                   : RangeSelectivity(dist, total, shape.op, shape.literal);
      };
      // (label, key) bucket first; an absent — or unusable (degenerate
      // range, no distinct values) — bucket falls through to the global
      // distribution, exactly like PropSelectivity.
      const PropertyStats* bucket =
          on_edge ? stats->EdgePropStatsFor(anchor, shape.key)
                  : stats->NodePropStatsFor(anchor, shape.key);
      if (bucket != nullptr) {
        conjunct = selectivity_from(*bucket, anchor_total);
      }
      if (conjunct < 0.0) {
        auto it = global.find(shape.key);
        if (it != global.end()) {
          conjunct = selectivity_from(it->second, global_total);
        }
      }
    }
    s *= conjunct >= 0.0 ? conjunct : kPushedPredicateSelectivity;
  }
  return s;
}

double CardinalityEstimator::EstimateScan(const PlanNode& node) {
  const GraphStats* stats = StatsFor(node.graph);
  if (stats == nullptr) return -1.0;
  const std::string anchor =
      use_column_stats_ ? AnchorNodeLabel(node.node->label_groups, *stats)
                        : std::string();
  return static_cast<double>(stats->num_nodes) *
         LabelSelectivity(node.node->label_groups, stats->node_label_counts,
                          stats->num_nodes) *
         PropSelectivity(node.node->props, stats, /*edge_props=*/false,
                         anchor) *
         PushedSelectivity(node, stats, node.var, "", anchor, "");
}

double CardinalityEstimator::EstimateExpand(const PlanNode& node,
                                            double child_est) {
  const GraphStats* stats = StatsFor(node.graph);
  if (stats == nullptr || child_est < 0.0) return -1.0;

  std::string to_anchor;
  std::string edge_anchor;
  double fanout;
  if (use_column_stats_) {
    // Measured average degree of the (source label, edge label) pair.
    // The source anchor is the most selective single-label group of the
    // pattern element binding from_var (a disjunctive group does not pin
    // one label); "" anchors on all nodes.
    std::string src_label;
    {
      const PlanNode* binder = FindBinder(*node.children[0], node.from_var);
      const NodePattern* from_pattern =
          binder == nullptr ? nullptr
          : binder->op == PlanOp::kNodeScan ? binder->node
          : binder->op == PlanOp::kExpandEdge ||
                  binder->op == PlanOp::kPathSearch
              ? binder->to
              : nullptr;
      if (from_pattern != nullptr) {
        src_label = AnchorNodeLabel(from_pattern->label_groups, *stats);
      }
    }
    const EdgePattern::Direction direction = node.edge->direction;
    auto degree_of = [&](const std::string& edge_label) {
      switch (direction) {
        case EdgePattern::Direction::kRight:
          return stats->AvgOutDegree(src_label, edge_label);
        case EdgePattern::Direction::kLeft:
          return stats->AvgInDegree(src_label, edge_label);
        case EdgePattern::Direction::kUndirected:
          return stats->AvgOutDegree(src_label, edge_label) +
                 stats->AvgInDegree(src_label, edge_label);
      }
      return 0.0;
    };
    if (node.edge->label_groups.empty()) {
      fanout = degree_of("");
    } else {
      // Conjunction of disjunctions: a disjunctive group's degree is the
      // sum of its labels' degrees (an upper bound); the conjunction
      // takes the most selective group.
      fanout = std::numeric_limits<double>::infinity();
      for (const auto& group : node.edge->label_groups) {
        double group_degree = 0.0;
        for (const auto& label : group) group_degree += degree_of(label);
        fanout = std::min(fanout, group_degree);
      }
    }
    to_anchor = AnchorNodeLabel(node.to->label_groups, *stats);
    edge_anchor = AnchorEdgeLabel(node.edge->label_groups, *stats);
  } else {
    // Seed model: global edge count scaled by label frequency over the
    // global node count.
    double edges = static_cast<double>(stats->num_edges) *
                   LabelSelectivity(node.edge->label_groups,
                                    stats->edge_label_counts,
                                    stats->num_edges);
    if (node.edge->direction == EdgePattern::Direction::kUndirected) {
      edges *= 2.0;
    }
    fanout = edges /
             std::max<double>(1.0, static_cast<double>(stats->num_nodes));
  }

  return child_est * fanout *
         LabelSelectivity(node.to->label_groups, stats->node_label_counts,
                          stats->num_nodes) *
         PropSelectivity(node.to->props, stats, /*edge_props=*/false,
                         to_anchor) *
         PropSelectivity(node.edge->props, stats, /*edge_props=*/true,
                         edge_anchor) *
         PushedSelectivity(node, stats, node.to_var, node.edge_var,
                           to_anchor, edge_anchor);
}

double CardinalityEstimator::EstimatePathSearch(const PlanNode& node,
                                                double child_est) {
  const GraphStats* stats = StatsFor(node.graph);
  if (stats == nullptr || child_est < 0.0) return -1.0;
  double per_source;
  if (node.path->mode == PathPattern::Mode::kStoredMatch) {
    per_source = static_cast<double>(stats->num_paths);
  } else {
    // Reachability-style searches can touch most of the graph.
    per_source = static_cast<double>(stats->num_nodes) *
                 LabelSelectivity(node.to->label_groups,
                                  stats->node_label_counts,
                                  stats->num_nodes);
    if (node.path->mode == PathPattern::Mode::kShortest) {
      per_source *= static_cast<double>(std::max<int64_t>(1, node.path->k));
    }
  }
  const std::string to_anchor =
      use_column_stats_ ? AnchorNodeLabel(node.to->label_groups, *stats)
                        : std::string();
  return child_est * std::max(1.0, per_source) *
         PropSelectivity(node.to->props, stats, /*edge_props=*/false,
                         to_anchor) *
         PushedSelectivity(node, stats, node.to_var, "", to_anchor, "");
}

double CardinalityEstimator::VarDomain(const PlanNode& tree,
                                       const std::string& var) {
  const PlanNode* binder = FindBinder(tree, var);
  if (binder == nullptr) return -1.0;
  const GraphStats* stats = StatsFor(binder->graph);
  if (stats == nullptr) return -1.0;
  switch (binder->op) {
    case PlanOp::kNodeScan:
      return static_cast<double>(stats->num_nodes) *
             LabelSelectivity(binder->node->label_groups,
                              stats->node_label_counts, stats->num_nodes);
    case PlanOp::kExpandEdge:
      if (var == binder->edge_var) {
        return static_cast<double>(stats->num_edges) *
               LabelSelectivity(binder->edge->label_groups,
                                stats->edge_label_counts, stats->num_edges);
      }
      return static_cast<double>(stats->num_nodes) *
             LabelSelectivity(binder->to->label_groups,
                              stats->node_label_counts, stats->num_nodes);
    case PlanOp::kPathSearch:
      if (var == binder->path_var) return -1.0;  // fresh path ids
      return static_cast<double>(stats->num_nodes) *
             LabelSelectivity(binder->to->label_groups,
                              stats->node_label_counts, stats->num_nodes);
    case PlanOp::kMultiwayExpand: {
      for (const MultiwayEdge& me : binder->multi_edges) {
        if (var == me.edge_var) {
          return static_cast<double>(stats->num_edges) *
                 LabelSelectivity(me.edge->label_groups,
                                  stats->edge_label_counts,
                                  stats->num_edges);
        }
      }
      // A cycle node variable: conjoin the label groups of every pattern
      // occurrence the rewrite absorbed.
      std::vector<std::vector<std::string>> groups;
      for (const auto& [v, pattern] : binder->multi_nodes) {
        if (v != var || pattern == nullptr) continue;
        groups.insert(groups.end(), pattern->label_groups.begin(),
                      pattern->label_groups.end());
      }
      return static_cast<double>(stats->num_nodes) *
             LabelSelectivity(groups, stats->node_label_counts,
                              stats->num_nodes);
    }
    default:
      return -1.0;
  }
}

double CardinalityEstimator::JoinEstimate(
    double left, double right, bool correlated,
    const std::vector<std::pair<double, double>>& key_domains,
    bool use_column_stats) {
  if (left < 0.0 || right < 0.0) return -1.0;
  if (!correlated) return left * right;
  const double cross = left * right;

  if (use_column_stats) {
    // Degree-aware bound: per shared key v, each side holds at most
    // V(v) = min(side rows, domain(v)) distinct keys, so matches per key
    // on the denser side average side/V — the join is bounded by
    // |L|·|R| / Π max(V_L, V_R). Falls back to the seed's max-of-inputs
    // guess when no shared key has a measurable domain.
    double est = cross;
    bool any_domain = false;
    for (const auto& [dl, dr] : key_domains) {
      if (dl < 0.0 && dr < 0.0) continue;
      any_domain = true;
      const double vl = dl < 0.0 ? left : std::min(left, dl);
      const double vr = dr < 0.0 ? right : std::min(right, dr);
      est /= std::max(1.0, std::max(vl, vr));
    }
    if (any_domain) return std::min(est, cross);
  }

  // Correlated chains, no usable key domain: assume the join keys are
  // close to keys of the larger side.
  return std::max(left, right);
}

double CardinalityEstimator::EstimateJoin(const PlanNode& node) {
  std::vector<std::pair<double, double>> key_domains;
  key_domains.reserve(node.join_vars.size());
  for (const auto& var : node.join_vars) {
    key_domains.emplace_back(VarDomain(*node.children[0], var),
                             VarDomain(*node.children[1], var));
  }
  return JoinEstimate(node.children[0]->est_rows,
                      node.children[1]->est_rows, node.join_correlated,
                      key_domains, use_column_stats_);
}

double CardinalityEstimator::EstimateMultiway(const PlanNode& node,
                                              double child_est) {
  const GraphStats* stats = StatsFor(node.graph);
  if (stats == nullptr || child_est < 0.0 || node.children.empty() ||
      node.multi_edges.empty()) {
    return -1.0;
  }

  // Matching-edge count of one pattern edge (labels + literal props; an
  // undirected pattern can cross each edge both ways).
  auto edge_count = [&](const MultiwayEdge& me) {
    const std::string anchor =
        use_column_stats_ ? AnchorEdgeLabel(me.edge->label_groups, *stats)
                          : std::string();
    double c = static_cast<double>(stats->num_edges) *
               LabelSelectivity(me.edge->label_groups,
                                stats->edge_label_counts,
                                stats->num_edges) *
               PropSelectivity(me.edge->props, stats, /*edge_props=*/true,
                               anchor);
    if (me.edge->direction == EdgePattern::Direction::kUndirected) {
      c *= 2.0;
    }
    return std::max(0.0, c);
  };

  // AGM bound with the cycle's optimal fractional edge cover (1/2 per
  // edge): Π √|E_i|.
  double agm = 1.0;
  for (const MultiwayEdge& me : node.multi_edges) {
    agm *= std::sqrt(edge_count(me));
  }

  // Degree-sequence bound (Abo Khamis et al., specialized to cycles over
  // binary edge relations): walk the elimination order; each new
  // variable multiplies by the smallest worst-case fanout over its
  // already-bound neighbors — the per-bucket *maximum* degree, falling
  // back to the average when the maximum was never measured.
  //
  // Both bounds assume at most one admitted edge per (endpoint pair,
  // pattern edge) — exact on simple graphs. Parallel edges multiply the
  // operator's edge-variable bindings past them (the statistics do not
  // yet track per-pair multiplicities; see the ROADMAP follow-up), so on
  // multigraphs this is an estimate, not a certified ceiling.
  std::set<std::string> bound;
  for (const std::string& v : MultiwayNodeVars(node)) {
    if (FindBinder(*node.children[0], v) != nullptr) bound.insert(v);
  }
  if (bound.empty()) return -1.0;

  // Label anchor of a cycle variable: the most selective single-label
  // group over every absorbed pattern occurrence (and the child binder's
  // pattern for pre-bound variables).
  auto anchor_of = [&](const std::string& var) {
    std::vector<std::vector<std::string>> groups;
    for (const auto& [v, pattern] : node.multi_nodes) {
      if (v != var || pattern == nullptr) continue;
      groups.insert(groups.end(), pattern->label_groups.begin(),
                    pattern->label_groups.end());
    }
    const PlanNode* binder = FindBinder(*node.children[0], var);
    const NodePattern* bound_pattern =
        binder == nullptr ? nullptr : BinderNodePattern(*binder, var);
    if (bound_pattern != nullptr) {
      groups.insert(groups.end(), bound_pattern->label_groups.begin(),
                    bound_pattern->label_groups.end());
    }
    return AnchorNodeLabel(groups, *stats);
  };

  auto worst_fanout = [&](const std::string& bound_var,
                          const MultiwayEdge& me) {
    const std::string anchor = anchor_of(bound_var);
    // Candidates leave the bound endpoint along the edge's direction:
    // out-neighbors when the pattern points away from it, in-neighbors
    // when it points at it, both when undirected.
    const bool away = me.from_var == bound_var;
    auto degree_of = [&](const std::string& edge_label) {
      double max_deg = 0.0;
      double avg_deg = 0.0;
      switch (me.edge->direction) {
        case EdgePattern::Direction::kRight:
          max_deg = away ? stats->MaxOutDegree(anchor, edge_label)
                         : stats->MaxInDegree(anchor, edge_label);
          avg_deg = away ? stats->AvgOutDegree(anchor, edge_label)
                         : stats->AvgInDegree(anchor, edge_label);
          break;
        case EdgePattern::Direction::kLeft:
          max_deg = away ? stats->MaxInDegree(anchor, edge_label)
                         : stats->MaxOutDegree(anchor, edge_label);
          avg_deg = away ? stats->AvgInDegree(anchor, edge_label)
                         : stats->AvgOutDegree(anchor, edge_label);
          break;
        case EdgePattern::Direction::kUndirected:
          max_deg = stats->MaxOutDegree(anchor, edge_label) +
                    stats->MaxInDegree(anchor, edge_label);
          avg_deg = stats->AvgOutDegree(anchor, edge_label) +
                    stats->AvgInDegree(anchor, edge_label);
          break;
      }
      // A measured average with no measured maximum (e.g. statistics from
      // an older collector) falls back to the average — still a usable
      // estimate, no longer a hard bound.
      return max_deg > 0.0 ? max_deg : avg_deg;
    };
    if (!use_column_stats_) {
      // Seed model: global fanout, direction-blind.
      double edges = static_cast<double>(stats->num_edges) *
                     LabelSelectivity(me.edge->label_groups,
                                      stats->edge_label_counts,
                                      stats->num_edges);
      if (me.edge->direction == EdgePattern::Direction::kUndirected) {
        edges *= 2.0;
      }
      return edges /
             std::max<double>(1.0, static_cast<double>(stats->num_nodes));
    }
    if (me.edge->label_groups.empty()) return degree_of("");
    double fanout = std::numeric_limits<double>::infinity();
    for (const auto& group : me.edge->label_groups) {
      double group_degree = 0.0;
      for (const auto& label : group) group_degree += degree_of(label);
      fanout = std::min(fanout, group_degree);
    }
    return fanout;
  };

  double degree_bound = child_est;
  for (const std::string& v : MultiwayEliminationOrder(node, bound)) {
    double fanout = std::numeric_limits<double>::infinity();
    for (const MultiwayEdge& me : node.multi_edges) {
      const std::string& other = me.from_var == v ? me.to_var
                                 : me.to_var == v ? me.from_var
                                                  : std::string();
      if (other.empty() || other == v || bound.count(other) == 0) continue;
      fanout = std::min(fanout, worst_fanout(other, me));
    }
    if (!std::isfinite(fanout)) return -1.0;  // disconnected cycle edge
    degree_bound *= fanout;
    bound.insert(v);
  }

  return std::max(0.0, std::min(agm, degree_bound));
}

double CardinalityEstimator::Annotate(PlanNode* node) {
  double child_est = -1.0;
  for (auto& child : node->children) {
    child_est = Annotate(child.get());
  }
  // A single-child operator uses its child's estimate; joins re-read both.
  double est = -1.0;
  switch (node->op) {
    case PlanOp::kNodeScan:
      est = EstimateScan(*node);
      break;
    case PlanOp::kExpandEdge:
      est = EstimateExpand(*node, child_est);
      break;
    case PlanOp::kMultiwayExpand:
      est = EstimateMultiway(*node, child_est);
      break;
    case PlanOp::kPathSearch:
      est = EstimatePathSearch(*node, child_est);
      break;
    case PlanOp::kFilter:
      if (child_est >= 0.0) {
        if (use_column_stats_) {
          // The residual WHERE re-checks conjuncts the pushdown rule
          // already applied inside the subtree; those filter nothing
          // further. Only genuinely residual conjuncts charge the
          // constant.
          std::vector<const Expr*> conjuncts;
          SplitConjuncts(*node->predicate, &conjuncts);
          est = child_est;
          for (const Expr* conjunct : conjuncts) {
            if (!IsPushedBelow(*node->children[0], conjunct)) {
              est *= kResidualFilterSelectivity;
            }
          }
        } else {
          est = child_est * kResidualFilterSelectivity;
        }
      }
      break;
    case PlanOp::kHashJoin:
      est = EstimateJoin(*node);
      break;
    case PlanOp::kLeftOuterJoin:
      // Every left row survives at least once.
      est = node->children[0]->est_rows;
      break;
    case PlanOp::kProject:
      est = child_est;
      break;
    case PlanOp::kGraphUnion:
    case PlanOp::kGraphIntersect:
    case PlanOp::kGraphMinus: {
      const double left = node->children.empty()
                              ? -1.0
                              : node->children[0]->est_rows;
      est = left;
      break;
    }
  }
  node->est_rows = est;
  return est;
}

}  // namespace gcore
