#include "plan/cost.h"

#include <algorithm>

#include "ast/pattern.h"

namespace gcore {

namespace {

/// Heuristic selectivities: a literal property filter in a pattern is
/// assumed more selective than a pushed-down general predicate.
constexpr double kPropFilterSelectivity = 0.1;
constexpr double kPushedPredicateSelectivity = 0.25;
constexpr double kResidualFilterSelectivity = 0.25;

double PropSelectivity(const std::vector<PropPattern>& props) {
  double s = 1.0;
  for (const auto& p : props) {
    if (p.mode == PropPattern::Mode::kFilter) s *= kPropFilterSelectivity;
  }
  return s;
}

double PushedSelectivity(const PlanNode& node) {
  double s = 1.0;
  for (size_t i = 0; i < node.pushed.size(); ++i) {
    s *= kPushedPredicateSelectivity;
  }
  return s;
}

}  // namespace

CardinalityEstimator::CardinalityEstimator(GraphCatalog* catalog,
                                           std::string default_graph)
    : catalog_(catalog), default_graph_(std::move(default_graph)) {}

const GraphStats* CardinalityEstimator::StatsFor(
    const std::string& location) {
  const std::string& name = location.empty() ? default_graph_ : location;
  if (name.empty() || catalog_ == nullptr) return nullptr;
  auto stats = catalog_->Stats(name);
  return stats.ok() ? *stats : nullptr;
}

double CardinalityEstimator::LabelSelectivity(
    const std::vector<std::vector<std::string>>& groups,
    const std::map<std::string, size_t>& label_counts, size_t total) {
  if (total == 0) return 0.0;
  double selectivity = 1.0;
  for (const auto& group : groups) {
    size_t group_count = 0;
    for (const auto& label : group) {
      auto it = label_counts.find(label);
      if (it != label_counts.end()) group_count += it->second;
    }
    selectivity *=
        std::min(1.0, static_cast<double>(group_count) /
                          static_cast<double>(total));
  }
  return selectivity;
}

double CardinalityEstimator::Annotate(PlanNode* node) {
  double child_est = -1.0;
  for (auto& child : node->children) {
    child_est = Annotate(child.get());
  }
  // A single-child operator uses its child's estimate; joins re-read both.
  double est = -1.0;
  switch (node->op) {
    case PlanOp::kNodeScan: {
      const GraphStats* stats = StatsFor(node->graph);
      if (stats != nullptr) {
        est = static_cast<double>(stats->num_nodes) *
              LabelSelectivity(node->node->label_groups,
                               stats->node_label_counts, stats->num_nodes) *
              PropSelectivity(node->node->props) * PushedSelectivity(*node);
      }
      break;
    }
    case PlanOp::kExpandEdge: {
      const GraphStats* stats = StatsFor(node->graph);
      if (stats != nullptr && child_est >= 0.0) {
        // Average fanout of a conforming edge times the target node's
        // admission selectivity.
        double edges = static_cast<double>(stats->num_edges) *
                       LabelSelectivity(node->edge->label_groups,
                                        stats->edge_label_counts,
                                        stats->num_edges);
        if (node->edge->direction == EdgePattern::Direction::kUndirected) {
          edges *= 2.0;
        }
        const double fanout =
            edges / std::max<double>(1.0, static_cast<double>(stats->num_nodes));
        est = child_est * fanout *
              LabelSelectivity(node->to->label_groups,
                               stats->node_label_counts, stats->num_nodes) *
              PropSelectivity(node->to->props) *
              PropSelectivity(node->edge->props) * PushedSelectivity(*node);
      }
      break;
    }
    case PlanOp::kPathSearch: {
      const GraphStats* stats = StatsFor(node->graph);
      if (stats != nullptr && child_est >= 0.0) {
        double per_source;
        if (node->path->mode == PathPattern::Mode::kStoredMatch) {
          per_source = static_cast<double>(stats->num_paths);
        } else {
          // Reachability-style searches can touch most of the graph.
          per_source = static_cast<double>(stats->num_nodes) *
                       LabelSelectivity(node->to->label_groups,
                                        stats->node_label_counts,
                                        stats->num_nodes);
          if (node->path->mode == PathPattern::Mode::kShortest) {
            per_source *= static_cast<double>(std::max<int64_t>(1, node->path->k));
          }
        }
        est = child_est * std::max(1.0, per_source) *
              PropSelectivity(node->to->props) * PushedSelectivity(*node);
      }
      break;
    }
    case PlanOp::kFilter:
      if (child_est >= 0.0) est = child_est * kResidualFilterSelectivity;
      break;
    case PlanOp::kHashJoin: {
      const double left = node->children[0]->est_rows;
      const double right = node->children[1]->est_rows;
      if (left >= 0.0 && right >= 0.0) {
        // Correlated chains: assume the join keys are close to keys of
        // the larger side; independent chains: cross product.
        est = node->join_correlated ? std::max(left, right) : left * right;
      }
      break;
    }
    case PlanOp::kLeftOuterJoin:
      // Every left row survives at least once.
      est = node->children[0]->est_rows;
      break;
    case PlanOp::kProject:
      est = child_est;
      break;
    case PlanOp::kGraphUnion:
    case PlanOp::kGraphIntersect:
    case PlanOp::kGraphMinus: {
      const double left = node->children.empty()
                              ? -1.0
                              : node->children[0]->est_rows;
      est = left;
      break;
    }
  }
  node->est_rows = est;
  return est;
}

}  // namespace gcore
