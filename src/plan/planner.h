// The logical planner: lowers a MatchClause AST into the plan IR of
// plan/plan.h and applies the rule-based optimizer.
//
// Rules (each gated by a PlannerOptions flag):
//   * Predicate pushdown — single-variable WHERE conjuncts are attached
//     to the scan/expand operator that binds their variable, so they run
//     as soon as the variable exists (generalizes the matcher's old
//     ad-hoc pushdown map). Label and property predicates written inside
//     the pattern are inherently part of NodeScan/ExpandEdge admission.
//   * Join enumeration — comma-separated pattern chains are combined by a
//     DP over subsets (plan/cost.h estimates over GraphCatalog::Stats)
//     that minimizes the summed intermediate cardinality (C_out) and may
//     emit *bushy* HashJoin trees; with unknown estimates the plan stays
//     the seed's source-order left-deep chain.
//   * Cycle rewrite — when the chains close a cycle (triangle, diamond)
//     whose AGM/max-degree bound undercuts the binary alternative, the
//     cycle collapses into one MultiwayExpand node evaluated by
//     worst-case-optimal multiway intersection (plan/wcoj.h).
//   * Build-side choice — a HashJoin whose right side is predicted much
//     larger than the accumulated left gets swap_build: the executor
//     builds over the left and re-merges in canonical column order.
//
// The full WHERE is kept as a residual Filter above the joins (re-checking
// pushed conjuncts is harmless and keeps the filter semantics of Appendix
// A.2 literal); a final Project drops matcher-internal columns in the
// source-binding order the legacy evaluator produced, so downstream
// consumers see identical schemas regardless of join order.
#ifndef GCORE_PLAN_PLANNER_H_
#define GCORE_PLAN_PLANNER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "common/options.h"
#include "common/result.h"
#include "plan/plan.h"

namespace gcore {

class CardinalityEstimator;
class Matcher;
struct MatcherContext;

/// The planner's knobs are the shared EngineOptions fields
/// (common/options.h): enable_pushdown gates the pushdown rewrite (main
/// WHERE and per OPTIONAL block), reorder_joins the subset-DP join
/// enumeration, enable_multiway the cycle → MultiwayExpand rewrite
/// (priced, never unconditional), choose_build_side the HashJoin
/// build-side swap, use_column_stats the statistics-backed estimator
/// (off = seed constants, the ablation mode), and parallelism is
/// annotated on the plan root for EXPLAIN. use_planner/morsel_size ride
/// along unused — the struct exists so MatcherContext → PlannerOptions
/// is one slice assignment.
struct PlannerOptions : EngineOptions {
  static PlannerOptions FromContext(const MatcherContext& ctx);
};

class Planner {
 public:
  /// `runtime` supplies graph resolution, catalog stats, location
  /// overrides and fresh anonymous column names; it must outlive the
  /// planner and the produced plan executes against it.
  Planner(Matcher* runtime, PlannerOptions options);

  /// Full clause: chains ⋈ … ⋈ chains, σ(WHERE), left-outer-joined
  /// OPTIONAL blocks, final projection.
  Result<PlanPtr> PlanMatch(const MatchClause& match);

  /// Annotates `plan` with cardinality estimates (EXPLAIN display;
  /// execution skips this — the chain-ordering rule estimates the
  /// chains it compares internally, and full-tree annotation would
  /// force a statistics scan per executed MATCH). Call after PlanMatch
  /// on the same planner (uses its resolved default location).
  void AnnotateEstimates(PlanNode* plan) const;

  /// One pattern chain: NodeScan followed by Expand operators.
  /// `pushdown` maps variables to pushed conjuncts (may be null).
  Result<PlanPtr> PlanChain(
      const GraphPattern& pattern,
      const std::map<std::string, std::vector<const Expr*>>* pushdown);

 private:
  /// One joinable subplan of the enumeration: a pattern chain or the
  /// MultiwayExpand unit a cycle rewrite produced.
  struct JoinUnit {
    PlanPtr plan;
    std::set<std::string> vars;
    double est = -1.0;
    /// Smallest source chain index inside the unit (deterministic
    /// tie-breaks).
    size_t min_source = 0;
  };

  /// Joined plan over comma-separated chains: builds the chain units,
  /// attempts the cycle rewrite, then enumerates the join tree.
  Result<PlanPtr> PlanPatternsJoined(
      const std::vector<GraphPattern>& patterns,
      const std::map<std::string, std::vector<const Expr*>>* pushdown);

  /// Collapses a priced-favorable cycle among the units into one
  /// MultiwayExpand unit (in place); no-op when no eligible cycle wins.
  void TryMultiwayRewrite(std::vector<JoinUnit>* units);

  /// The greedy smallest-first left-deep fold over `members` (indices
  /// into `units`): the join order and the estimate of each successive
  /// join. One implementation prices the binary alternative of the cycle
  /// rewrite *and* builds the beyond-DP-size fallback plan, so the two
  /// cost models cannot drift apart.
  struct GreedyFold {
    std::vector<size_t> order;
    std::vector<double> join_ests;  // one per fold step (order.size()-1)
  };
  GreedyFold GreedyJoinFold(const std::vector<JoinUnit>& units,
                            std::vector<size_t> members,
                            CardinalityEstimator* estimator) const;

  /// DP join enumeration over `units` (all estimates known): minimizes
  /// summed intermediate cardinality, emits possibly-bushy HashJoin
  /// trees, and marks swap_build per the build-side rule. Falls back to
  /// greedy smallest-first left-deep beyond kMaxDpUnits.
  PlanPtr EnumerateJoins(std::vector<JoinUnit> units);

  static constexpr size_t kMaxDpUnits = 12;

  /// Effective ON location of a pattern (override > pattern ON > clause
  /// ON > default); "" means the default graph.
  std::string EffectiveLocation(const GraphPattern& pattern) const;

  /// Appends the chain's visible output columns in binding order.
  void CollectOutputColumns(const GraphPattern& pattern,
                            std::vector<std::string>* out) const;

  static void AttachPushed(
      PlanNode* node, const std::string& var,
      const std::map<std::string, std::vector<const Expr*>>* pushdown);

  Matcher* runtime_;
  PlannerOptions options_;
  std::string clause_override_;
  /// Graph used by operators with an empty location (clause override or
  /// the context default).
  std::string default_location_;
};

}  // namespace gcore

#endif  // GCORE_PLAN_PLANNER_H_
