// The logical planner: lowers a MatchClause AST into the plan IR of
// plan/plan.h and applies the rule-based optimizer.
//
// Rules (each gated by a PlannerOptions flag):
//   * Predicate pushdown — single-variable WHERE conjuncts are attached
//     to the scan/expand operator that binds their variable, so they run
//     as soon as the variable exists (generalizes the matcher's old
//     ad-hoc pushdown map). Label and property predicates written inside
//     the pattern are inherently part of NodeScan/ExpandEdge admission.
//   * Chain ordering — independent comma-separated pattern chains are
//     joined smallest-first by estimated cardinality (plan/cost.h over
//     GraphCatalog::Stats), building a left-deep HashJoin tree.
//
// The full WHERE is kept as a residual Filter above the joins (re-checking
// pushed conjuncts is harmless and keeps the filter semantics of Appendix
// A.2 literal); a final Project drops matcher-internal columns in the
// source-binding order the legacy evaluator produced, so downstream
// consumers see identical schemas regardless of join order.
#ifndef GCORE_PLAN_PLANNER_H_
#define GCORE_PLAN_PLANNER_H_

#include <map>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "common/result.h"
#include "plan/plan.h"

namespace gcore {

class Matcher;
struct MatcherContext;

struct PlannerOptions {
  /// Pushdown rewrite rule (MatcherContext::enable_pushdown). Applies to
  /// the main WHERE and, per block, to OPTIONAL block WHEREs.
  bool enable_pushdown = true;
  /// Cardinality-based chain ordering (MatcherContext::reorder_joins).
  bool reorder_joins = true;
  /// Per-column statistics in the estimator (MatcherContext::
  /// use_column_stats); off degrades to the seed's constant-selectivity
  /// model for ablation and the stats-absent plan-shape goldens.
  bool use_column_stats = true;
  /// Execution degree (MatcherContext::parallelism; 0 = hardware).
  /// Annotated on the plan root for EXPLAIN.
  size_t parallelism = 0;

  static PlannerOptions FromContext(const MatcherContext& ctx);
};

class Planner {
 public:
  /// `runtime` supplies graph resolution, catalog stats, location
  /// overrides and fresh anonymous column names; it must outlive the
  /// planner and the produced plan executes against it.
  Planner(Matcher* runtime, PlannerOptions options);

  /// Full clause: chains ⋈ … ⋈ chains, σ(WHERE), left-outer-joined
  /// OPTIONAL blocks, final projection.
  Result<PlanPtr> PlanMatch(const MatchClause& match);

  /// Annotates `plan` with cardinality estimates (EXPLAIN display;
  /// execution skips this — the chain-ordering rule estimates the
  /// chains it compares internally, and full-tree annotation would
  /// force a statistics scan per executed MATCH). Call after PlanMatch
  /// on the same planner (uses its resolved default location).
  void AnnotateEstimates(PlanNode* plan) const;

  /// One pattern chain: NodeScan followed by Expand operators.
  /// `pushdown` maps variables to pushed conjuncts (may be null).
  Result<PlanPtr> PlanChain(
      const GraphPattern& pattern,
      const std::map<std::string, std::vector<const Expr*>>* pushdown);

 private:
  /// Joined plan over comma-separated chains (the chain-ordering rule).
  Result<PlanPtr> PlanPatternsJoined(
      const std::vector<GraphPattern>& patterns,
      const std::map<std::string, std::vector<const Expr*>>* pushdown);

  /// Effective ON location of a pattern (override > pattern ON > clause
  /// ON > default); "" means the default graph.
  std::string EffectiveLocation(const GraphPattern& pattern) const;

  /// Appends the chain's visible output columns in binding order.
  void CollectOutputColumns(const GraphPattern& pattern,
                            std::vector<std::string>* out) const;

  static void AttachPushed(
      PlanNode* node, const std::string& var,
      const std::map<std::string, std::vector<const Expr*>>* pushdown);

  Matcher* runtime_;
  PlannerOptions options_;
  std::string clause_override_;
  /// Graph used by operators with an empty location (clause override or
  /// the context default).
  std::string default_location_;
};

}  // namespace gcore

#endif  // GCORE_PLAN_PLANNER_H_
