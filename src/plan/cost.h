// Cardinality estimation over GraphCatalog statistics.
//
// Estimates are coarse, heuristic row counts whose only job is to rank
// alternatives (the planner orders independent pattern chains smallest-
// first); they are not used for admission or limits. Unknown inputs —
// unregistered graphs, ON-subquery locations, table-as-graph names —
// degrade to "unknown" (negative), which disables ordering decisions that
// would depend on them. The FD-aware join bounds of Abo Khamis et al.
// (PAPERS.md) are the natural upgrade path for the join formula.
#ifndef GCORE_PLAN_COST_H_
#define GCORE_PLAN_COST_H_

#include <string>

#include "graph/catalog.h"
#include "plan/plan.h"

namespace gcore {

class CardinalityEstimator {
 public:
  /// `default_graph` names the graph used by operators whose location is
  /// empty (the clause-level/default ON resolution result).
  CardinalityEstimator(GraphCatalog* catalog, std::string default_graph);

  /// Annotates `node` and its subtree with estimated output rows
  /// (PlanNode::est_rows); returns the root estimate, negative when
  /// unknown.
  double Annotate(PlanNode* node);

 private:
  const GraphStats* StatsFor(const std::string& location);

  /// Fraction of objects admitted by conjunctive label groups, given the
  /// per-label counts; 1.0 for an unconstrained pattern.
  static double LabelSelectivity(
      const std::vector<std::vector<std::string>>& groups,
      const std::map<std::string, size_t>& label_counts, size_t total);

  GraphCatalog* catalog_;
  std::string default_graph_;
};

}  // namespace gcore

#endif  // GCORE_PLAN_COST_H_
