// Cardinality estimation over GraphCatalog statistics (graph/stats.h).
//
// Estimates are heuristic row counts whose job is to rank alternatives
// (the planner's DP join enumeration compares bushy trees and prices
// MultiwayExpand against the binary alternative); they are not used for
// admission or limits. Unknown inputs — unregistered graphs, ON-subquery
// locations, table-as-graph names — degrade to "unknown" (negative),
// which disables ordering decisions that would depend on them.
//
// The statistics block of a graph drives these estimator rules:
//   * Equality — `x.k = literal` (a pattern `{k = v}` filter or a pushed
//     WHERE conjunct) selects carrying-fraction × 1/distinct(k). When the
//     pattern pins a label, the (label, key) bucket replaces the global
//     distribution, removing the carrying-fraction × label-fraction
//     independence double-charge.
//   * Range — `x.k < c` (and <=, >, >=) interpolates c into the measured
//     numeric [min, max] of k (label-restricted when a bucket exists).
//   * Expansion — an edge hop multiplies by the measured average degree
//     of the (source label, edge label) pair, directional (out-degree
//     for `-[]->`, in-degree for `<-[]-`, their sum undirected).
//   * Join — a correlated HashJoin is bounded by |L|·|R| / Π max(V_L(v),
//     V_R(v)) over the shared variables (PlanNode::join_vars), where
//     V(v) is the side's distinct-key estimate. The same formula is
//     exposed as JoinEstimate for the planner's DP enumeration.
//   * Multiway — a MultiwayExpand cycle is priced by the smaller of the
//     AGM bound (Π √|E_i| with the fractional edge cover of a cycle)
//     and the degree-sequence bound of Abo Khamis, Ngo & Suciu seeded by
//     the child estimate: each eliminated variable multiplies by the
//     minimum per-bucket *maximum* degree over its already-bound
//     neighbors (falling back to the average degree when a max bucket is
//     missing).
// Each rule falls back to the seed's constant selectivities when the
// statistic it needs is absent, and the whole subsystem degrades to the
// label-count-only model when `use_column_stats` is off (the bench
// ablation and the stats-absent plan-shape goldens) — except
// LabelSelectivity's multi-label double-count fix, which is
// unconditional.
//
// EXPLAIN renders est_rows per operator; EXPLAIN ANALYZE additionally
// runs the query and prints actual_rows next to every estimate
// (plan/executor.h ExecStats), which is what the estimator-accuracy test
// suite asserts q-error bounds against.
#ifndef GCORE_PLAN_COST_H_
#define GCORE_PLAN_COST_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "graph/catalog.h"
#include "plan/plan.h"

namespace gcore {

class CardinalityEstimator {
 public:
  /// `default_graph` names the graph used by operators whose location is
  /// empty (the clause-level/default ON resolution result).
  /// `use_column_stats` gates the per-column rules above; off reproduces
  /// the seed's constant-selectivity model over label counts alone.
  CardinalityEstimator(GraphCatalog* catalog, std::string default_graph,
                       bool use_column_stats = true);

  /// Annotates `node` and its subtree with estimated output rows
  /// (PlanNode::est_rows); returns the root estimate, negative when
  /// unknown.
  double Annotate(PlanNode* node);

  /// Fraction of objects admitted by conjunctive label groups, given the
  /// per-label counts; 1.0 for an unconstrained pattern. A group is a
  /// disjunction whose selectivity combines per-label fractions with the
  /// independence union formula 1 - Π(1 - fᵢ) — summing raw counts would
  /// double-count objects carrying several of the group's labels.
  static double LabelSelectivity(
      const std::vector<std::vector<std::string>>& groups,
      const std::map<std::string, size_t>& label_counts, size_t total);

  /// Distinct-key domain `tree` can bind `var` to (the binder pattern's
  /// admitted object count); negative when unknown. Shared by the
  /// HashJoin rule and the planner's DP join enumeration.
  double VarDomain(const PlanNode& tree, const std::string& var);

  /// The degree-aware correlated-join bound over precomputed inputs:
  /// `key_domains` holds one (left domain, right domain) pair per shared
  /// variable (negative = unknown). Mirrors the kHashJoin rule so the DP
  /// enumeration prices candidate joins without materializing trees.
  static double JoinEstimate(
      double left, double right, bool correlated,
      const std::vector<std::pair<double, double>>& key_domains,
      bool use_column_stats);

  /// AGM / max-degree upper bound on the output of a MultiwayExpand node
  /// given its child estimate (a certified ceiling on simple graphs;
  /// parallel edges can exceed it — per-pair multiplicities are not
  /// tracked yet); negative when unknown. Public so the planner can
  /// price a candidate rewrite before committing to it.
  double EstimateMultiway(const PlanNode& node, double child_est);

 private:
  const GraphStats* StatsFor(const std::string& location);

  double EstimateScan(const PlanNode& node);
  double EstimateExpand(const PlanNode& node, double child_est);
  double EstimatePathSearch(const PlanNode& node, double child_est);
  double EstimateJoin(const PlanNode& node);

  /// Selectivity of the literal `{k = v}` filters of a pattern element:
  /// 1/distinct per key when measured — against the (anchor_label, key)
  /// bucket when present, the global distribution otherwise — and the
  /// seed constant when neither exists.
  double PropSelectivity(const std::vector<PropPattern>& props,
                         const GraphStats* stats, bool edge_props,
                         const std::string& anchor_label) const;
  /// Combined selectivity of an operator's pushed-down WHERE conjuncts;
  /// equality and range conjuncts on `var`'s properties use the measured
  /// distributions (label-restricted via the anchors), everything else
  /// the seed constant.
  double PushedSelectivity(const PlanNode& node, const GraphStats* stats,
                           const std::string& node_var,
                           const std::string& edge_var,
                           const std::string& node_anchor,
                           const std::string& edge_anchor) const;

  GraphCatalog* catalog_;
  std::string default_graph_;
  bool use_column_stats_;
  /// Pinned statistics per location: StatsFor hands out raw pointers into
  /// these shared images, so a concurrent catalog re-registration cannot
  /// invalidate them mid-estimation (and one estimation run prices every
  /// candidate against one consistent statistics version per graph).
  std::map<std::string, std::shared_ptr<const GraphStats>> pinned_stats_;
};

}  // namespace gcore

#endif  // GCORE_PLAN_COST_H_
