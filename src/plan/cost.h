// Cardinality estimation over GraphCatalog statistics (graph/stats.h).
//
// Estimates are heuristic row counts whose job is to rank alternatives
// (the planner orders independent pattern chains smallest-first); they
// are not used for admission or limits. Unknown inputs — unregistered
// graphs, ON-subquery locations, table-as-graph names — degrade to
// "unknown" (negative), which disables ordering decisions that would
// depend on them.
//
// The statistics block of a graph drives four estimator rules:
//   * Equality — `x.k = literal` (a pattern `{k = v}` filter or a pushed
//     WHERE conjunct) selects carrying-fraction × 1/distinct(k).
//   * Range — `x.k < c` (and <=, >, >=) interpolates c into the measured
//     numeric [min, max] of k.
//   * Expansion — an edge hop multiplies by the measured average degree
//     of the (source label, edge label) pair, directional (out-degree
//     for `-[]->`, in-degree for `<-[]-`, their sum undirected).
//   * Join — a correlated HashJoin is bounded by |L|·|R| / Π max(V_L(v),
//     V_R(v)) over the shared variables v, where V(v) is the side's
//     distinct-key estimate (min of side cardinality and the key's label-
//     restricted domain) — i.e. the smaller side times the larger side's
//     average key degree, instead of the old max-of-inputs guess.
// Each rule falls back to the seed's constant selectivities when the
// statistic it needs is absent (unknown property key, no numeric range,
// label never measured), and the whole subsystem degrades to the label-
// count-only model when `use_column_stats` is off (the bench ablation and
// the stats-absent plan-shape goldens) — except LabelSelectivity's
// multi-label double-count fix, which is unconditional. The FD-aware
// bounds of Abo Khamis et al. (PAPERS.md) are the natural upgrade path
// for the join formula.
//
// EXPLAIN renders est_rows per operator; EXPLAIN ANALYZE additionally
// runs the query and prints actual_rows next to every estimate
// (plan/executor.h ExecStats), which is what the estimator-accuracy test
// suite asserts q-error bounds against.
#ifndef GCORE_PLAN_COST_H_
#define GCORE_PLAN_COST_H_

#include <string>
#include <vector>

#include "graph/catalog.h"
#include "plan/plan.h"

namespace gcore {

class CardinalityEstimator {
 public:
  /// `default_graph` names the graph used by operators whose location is
  /// empty (the clause-level/default ON resolution result).
  /// `use_column_stats` gates the per-column rules above; off reproduces
  /// the seed's constant-selectivity model over label counts alone.
  CardinalityEstimator(GraphCatalog* catalog, std::string default_graph,
                       bool use_column_stats = true);

  /// Annotates `node` and its subtree with estimated output rows
  /// (PlanNode::est_rows); returns the root estimate, negative when
  /// unknown.
  double Annotate(PlanNode* node);

  /// Fraction of objects admitted by conjunctive label groups, given the
  /// per-label counts; 1.0 for an unconstrained pattern. A group is a
  /// disjunction whose selectivity combines per-label fractions with the
  /// independence union formula 1 - Π(1 - fᵢ) — summing raw counts would
  /// double-count objects carrying several of the group's labels.
  static double LabelSelectivity(
      const std::vector<std::vector<std::string>>& groups,
      const std::map<std::string, size_t>& label_counts, size_t total);

 private:
  const GraphStats* StatsFor(const std::string& location);

  double EstimateScan(const PlanNode& node);
  double EstimateExpand(const PlanNode& node, double child_est);
  double EstimatePathSearch(const PlanNode& node, double child_est);
  double EstimateJoin(const PlanNode& node);

  /// Selectivity of the literal `{k = v}` filters of a pattern element:
  /// 1/distinct per key when measured, the seed constant otherwise.
  double PropSelectivity(const std::vector<PropPattern>& props,
                         const GraphStats* stats, bool edge_props) const;
  /// Combined selectivity of an operator's pushed-down WHERE conjuncts;
  /// equality and range conjuncts on `var`'s properties use the measured
  /// distributions, everything else the seed constant.
  double PushedSelectivity(const PlanNode& node, const GraphStats* stats,
                           const std::string& node_var,
                           const std::string& edge_var) const;

  GraphCatalog* catalog_;
  std::string default_graph_;
  bool use_column_stats_;
};

}  // namespace gcore

#endif  // GCORE_PLAN_COST_H_
