// EXPLAIN <query>: renders the optimized evaluation plan of a full
// query without executing it.
//
// Every MATCH clause is planned through plan/planner.h (with unresolved
// locations tolerated, since ON-subquery graphs only exist at execution
// time); set operations over basic queries render as the graph-level
// GraphUnion / GraphIntersect / GraphMinus operators above the binding
// pipelines.
#ifndef GCORE_PLAN_EXPLAIN_H_
#define GCORE_PLAN_EXPLAIN_H_

#include <string>
#include <vector>

#include "ast/ast.h"
#include "common/result.h"

namespace gcore {

class Matcher;

/// Plan rendering of `query`, one string per output row. `runtime`
/// supplies the catalog (statistics) and planner context.
Result<std::vector<std::string>> ExplainQuery(const Query& query,
                                              Matcher* runtime);

}  // namespace gcore

#endif  // GCORE_PLAN_EXPLAIN_H_
