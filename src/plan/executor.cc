#include "plan/executor.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "eval/binding_ops.h"
#include "eval/matcher.h"
#include "plan/wcoj.h"

namespace gcore {

size_t ExecContext::Degree() const {
  if (parallelism > 0) return parallelism;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ExecStats::Record(const PlanNode* node, size_t rows) {
  std::lock_guard<std::mutex> lk(mu_);
  rows_[node] += rows;
}

void ExecStats::RecordTime(const PlanNode* node, double ms) {
  std::lock_guard<std::mutex> lk(mu_);
  ms_[node] += ms;
}

int64_t ExecStats::Rows(const PlanNode* node) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = rows_.find(node);
  return it == rows_.end() ? -1 : static_cast<int64_t>(it->second);
}

double ExecStats::TimeMs(const PlanNode* node) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = ms_.find(node);
  return it == ms_.end() ? -1.0 : it->second;
}

void ExecStats::AnnotateActuals(PlanNode* plan) const {
  const int64_t rows = Rows(plan);
  if (rows >= 0) plan->actual_rows = rows;
  const double ms = TimeMs(plan);
  if (ms >= 0.0) plan->actual_ms = ms;
  for (auto& child : plan->children) AnnotateActuals(child.get());
}

namespace {
/// Elapsed wall time since `t0` in milliseconds (operator self-timing
/// for EXPLAIN ANALYZE's actual_ms).
double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

bool ExprParallelSafe(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::kExists:
    case Expr::Kind::kGraphPattern:
    case Expr::Kind::kAggregate:
      return false;
    default:
      break;
  }
  for (const auto& arg : expr.args) {
    if (arg != nullptr && !ExprParallelSafe(*arg)) return false;
  }
  for (const auto& arm : expr.case_arms) {
    if (arm.condition != nullptr && !ExprParallelSafe(*arm.condition)) {
      return false;
    }
    if (arm.result != nullptr && !ExprParallelSafe(*arm.result)) return false;
  }
  if (expr.case_else != nullptr && !ExprParallelSafe(*expr.case_else)) {
    return false;
  }
  return true;
}

namespace {

using OpPtr = std::unique_ptr<PhysicalOp>;
using Chunk = std::optional<BindingTable>;

bool ExprsParallelSafe(const std::vector<const Expr*>& exprs) {
  for (const Expr* e : exprs) {
    if (e != nullptr && !ExprParallelSafe(*e)) return false;
  }
  return true;
}

bool PropsParallelSafe(const std::vector<PropPattern>& props) {
  for (const auto& p : props) {
    if (p.value != nullptr && !ExprParallelSafe(*p.value)) return false;
  }
  return true;
}

/// Lifts a table result into the chunk protocol (Result's implicit
/// conversions do not chain through std::optional).
Result<Chunk> AsChunk(Result<BindingTable> result) {
  if (!result.ok()) return result.status();
  return Chunk(std::move(result).value());
}

Result<Chunk> Exhausted() { return Chunk(); }

/// Pulls every chunk of `op` into one table. Chunks of one operator share
/// a schema (and column provenance), so columns concatenate directly
/// (bulk range appends, no row walks).
Result<BindingTable> Drain(PhysicalOp* op) {
  BindingTable out;
  bool first = true;
  while (true) {
    GCORE_ASSIGN_OR_RETURN(std::optional<BindingTable> chunk, op->Next());
    if (!chunk.has_value()) break;
    if (first) {
      out = std::move(*chunk);
      first = false;
      continue;
    }
    out.AppendTable(*chunk);
  }
  return out;
}

/// An empty table with `like`'s schema and column provenance.
BindingTable EmptyLike(const BindingTable& like) {
  BindingTable out(like.columns());
  for (const auto& [var, graph] : like.column_graphs()) {
    out.SetColumnGraph(var, graph);
  }
  return out;
}

/// Splits `chunk` into <= morsel_rows-row tables (at least one, so empty
/// chunks still propagate the schema), appending to `out`. Morsels are
/// column-range slices — bulk copies of the dense kind/slot arrays, not
/// row-by-row moves.
void SplitIntoMorsels(BindingTable chunk, size_t morsel_rows,
                      std::deque<BindingTable>* out) {
  if (chunk.NumRows() <= morsel_rows) {
    out->push_back(std::move(chunk));
    return;
  }
  for (size_t lo = 0; lo < chunk.NumRows(); lo += morsel_rows) {
    const size_t hi = std::min(chunk.NumRows(), lo + morsel_rows);
    out->push_back(chunk.Slice(lo, hi));
  }
}

/// One fused per-morsel stage of a pipeline: `prepare` runs once on the
/// coordinator thread (graph resolution, adjacency warm-up — anything
/// that mutates shared runtime state); `fn` transforms one morsel and,
/// when `thread_safe`, may run concurrently on worker threads.
struct Stage {
  std::function<Status()> prepare;
  std::function<Result<BindingTable>(BindingTable)> fn;
  bool thread_safe = true;
};

/// Morsel-parallel pipeline segment: pulls chunks from `child`, re-slices
/// them into morsels, applies the fused stages to each morsel and emits
/// results in input order (deterministic at every parallelism degree).
/// With parallelism 1 — or when any stage's expressions could re-enter
/// the runtime (EXISTS, pattern predicates) — everything runs serially
/// on the calling thread, which is exactly the pre-morsel behavior.
class PipelineOp : public PhysicalOp {
 public:
  PipelineOp(OpPtr child, ExecContext exec)
      : child_(std::move(child)), exec_(exec) {}

  ~PipelineOp() override {
    {
      std::lock_guard<std::mutex> lk(mu_);
      abort_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  void AddStage(Stage stage) { stages_.push_back(std::move(stage)); }

  Result<Chunk> Next() override {
    if (!started_) {
      started_ = true;
      for (auto& stage : stages_) {
        if (stage.prepare) GCORE_RETURN_NOT_OK(stage.prepare());
      }
      bool safe = !stages_.empty();
      for (const auto& stage : stages_) safe = safe && stage.thread_safe;
      if (safe && exec_.Degree() > 1) StartWorkers();
    }
    return workers_.empty() ? SerialNext() : ParallelNext();
  }

 private:
  Result<BindingTable> ApplyStages(BindingTable morsel) {
    for (const auto& stage : stages_) {
      GCORE_ASSIGN_OR_RETURN(morsel, stage.fn(std::move(morsel)));
    }
    return morsel;
  }

  Result<Chunk> SerialNext() {
    while (true) {
      if (!pending_.empty()) {
        BindingTable morsel = std::move(pending_.front());
        pending_.pop_front();
        return AsChunk(ApplyStages(std::move(morsel)));
      }
      GCORE_ASSIGN_OR_RETURN(Chunk chunk, child_->Next());
      if (!chunk.has_value()) return Exhausted();
      SplitIntoMorsels(std::move(*chunk), exec_.MorselRows(), &pending_);
    }
  }

  void StartWorkers() {
    // Loop over a local bound: a fast worker may drain the whole source
    // and decrement active_workers_ before the next thread is spawned.
    const size_t degree = exec_.Degree();
    {
      std::lock_guard<std::mutex> lk(mu_);
      active_workers_ = degree;
    }
    workers_.reserve(degree);
    for (size_t t = 0; t < degree; ++t) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  /// Workers pull the (serial) child under the pipeline mutex, transform
  /// morsels unlocked, and deposit results keyed by sequence number.
  void WorkerLoop() {
    std::unique_lock<std::mutex> lk(mu_);
    while (true) {
      if (abort_) break;
      if (pending_.empty()) {
        if (source_done_) break;
        auto chunk = child_->Next();
        if (!chunk.ok()) {
          error_ = chunk.status();
          abort_ = true;
          break;
        }
        if (!chunk->has_value()) {
          source_done_ = true;
          break;
        }
        SplitIntoMorsels(std::move(**chunk), exec_.MorselRows(), &pending_);
        continue;
      }
      BindingTable morsel = std::move(pending_.front());
      pending_.pop_front();
      const size_t seq = next_seq_++;
      lk.unlock();
      auto result = ApplyStages(std::move(morsel));
      lk.lock();
      if (!result.ok()) {
        if (error_.ok()) error_ = result.status();
        abort_ = true;
      } else {
        done_.emplace(seq, std::move(*result));
      }
      cv_.notify_all();
    }
    --active_workers_;
    cv_.notify_all();
  }

  Result<Chunk> ParallelNext() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [this] {
      return abort_ || done_.count(emit_seq_) > 0 ||
             (active_workers_ == 0 && emit_seq_ >= next_seq_);
    });
    if (abort_) return error_.ok() ? Status::EvaluationError(
                                         "pipeline aborted")
                                   : error_;
    auto it = done_.find(emit_seq_);
    if (it == done_.end()) return Exhausted();
    BindingTable chunk = std::move(it->second);
    done_.erase(it);
    ++emit_seq_;
    return Chunk(std::move(chunk));
  }

  OpPtr child_;
  ExecContext exec_;
  std::vector<Stage> stages_;
  bool started_ = false;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<BindingTable> pending_;
  std::map<size_t, BindingTable> done_;
  std::vector<std::thread> workers_;
  size_t active_workers_ = 0;
  size_t next_seq_ = 0;
  size_t emit_seq_ = 0;
  bool source_done_ = false;
  bool abort_ = false;
  Status error_ = Status::OK();
};

/// NodeScan: all admitted nodes of the operator's graph, emitted as
/// fixed-size morsels. Pushed predicates run as a pipeline stage above
/// (which then owns the operator's actual-row recording — est_rows of a
/// scan includes its pushed conjuncts, so actual_rows must too).
class NodeScanOp : public PhysicalOp {
 public:
  NodeScanOp(Matcher* rt, const PlanNode* plan, ExecContext exec,
             ExecStats* stats)
      : rt_(rt), plan_(plan), exec_(exec), stats_(stats) {}

  Result<std::optional<BindingTable>> Next() override {
    const auto t0 = std::chrono::steady_clock::now();
    if (!started_) {
      started_ = true;
      GCORE_ASSIGN_OR_RETURN(const PathPropertyGraph* graph,
                             rt_->ResolveGraph(plan_->graph));
      GCORE_ASSIGN_OR_RETURN(
          table_,
          rt_->MatchStartNode(*plan_->node, *graph, graph->name(),
                              plan_->var));
      offset_ = 0;
      if (table_.Empty()) {
        emitted_empty_ = true;
        return Emit(std::move(table_), t0);
      }
    }
    if (emitted_empty_ || offset_ >= table_.NumRows()) return Exhausted();
    const size_t morsel = exec_.MorselRows();
    if (offset_ == 0 && table_.NumRows() <= morsel) {
      offset_ = table_.NumRows();
      return Emit(std::move(table_), t0);
    }
    const size_t hi = std::min(table_.NumRows(), offset_ + morsel);
    BindingTable chunk = table_.Slice(offset_, hi);
    offset_ = hi;
    return Emit(std::move(chunk), t0);
  }

 private:
  Result<Chunk> Emit(BindingTable chunk,
                     std::chrono::steady_clock::time_point t0) {
    if (stats_ != nullptr && plan_->pushed.empty()) {
      stats_->Record(plan_, chunk.NumRows());
      stats_->RecordTime(plan_, MsSince(t0));
    }
    return Chunk(std::move(chunk));
  }

  Matcher* rt_;
  const PlanNode* plan_;
  ExecContext exec_;
  ExecStats* stats_;
  BindingTable table_;
  size_t offset_ = 0;
  bool started_ = false;
  bool emitted_empty_ = false;
};

/// PathSearch: one path hop (stored / SHORTEST / ALL / reachability) per
/// pulled chunk. A breaker: the child's chunks arrive at morsel
/// granularity, but the batched path kernels inside ExpandPathHop want
/// the whole source set at once — one multi-source wave / batched
/// k-shortest launch instead of N independent traversals — so the op
/// drains its input (as HashJoin does) and expands it in a single
/// internally-parallel call. Rows, row order and fresh path ids match
/// per-row serial evaluation at every degree: the kernels are
/// degree-invariant and the matcher draws ids in row-emission order,
/// which made the old per-morsel temp-id remap machinery obsolete.
class PathSearchOp : public PhysicalOp {
 public:
  PathSearchOp(Matcher* rt, const PlanNode* plan, OpPtr child,
               ExecContext exec, ExecStats* stats)
      : rt_(rt),
        plan_(plan),
        child_(std::move(child)),
        exec_(exec),
        stats_(stats) {}

  Result<std::optional<BindingTable>> Next() override {
    if (done_) return Exhausted();
    done_ = true;
    GCORE_ASSIGN_OR_RETURN(BindingTable input, Drain(child_.get()));
    // Own-work timing starts after the child is drained: actual_ms is
    // this operator's search + filter time, not its input's.
    const auto t0 = std::chrono::steady_clock::now();
    GCORE_ASSIGN_OR_RETURN(const PathPropertyGraph* graph,
                           rt_->ResolveGraph(plan_->graph));
    GCORE_ASSIGN_OR_RETURN(
        BindingTable expanded,
        rt_->ExpandPathHop(std::move(input), plan_->from_var, *plan_->path,
                           plan_->path_var, *plan_->to, plan_->to_var, *graph,
                           graph->name()));
    GCORE_ASSIGN_OR_RETURN(
        BindingTable filtered,
        rt_->FilterByConjuncts(std::move(expanded), plan_->pushed, graph));
    if (stats_ != nullptr) {
      stats_->Record(plan_, filtered.NumRows());
      stats_->RecordTime(plan_, MsSince(t0));
    }
    return Chunk(std::move(filtered));
  }

 private:
  Matcher* rt_;
  const PlanNode* plan_;
  OpPtr child_;
  ExecContext exec_;
  ExecStats* stats_;
  bool done_ = false;
};

/// Residual WHERE filter over aggregate-bearing predicates: a pipeline
/// breaker, because aggregates range over the whole binding table, not
/// one morsel.
class DrainingFilterOp : public PhysicalOp {
 public:
  DrainingFilterOp(Matcher* rt, const PlanNode* plan, OpPtr child,
                   ExecStats* stats)
      : rt_(rt), plan_(plan), child_(std::move(child)), stats_(stats) {}

  Result<std::optional<BindingTable>> Next() override {
    if (done_) return Exhausted();
    done_ = true;
    GCORE_ASSIGN_OR_RETURN(BindingTable table, Drain(child_.get()));
    const auto t0 = std::chrono::steady_clock::now();
    const PathPropertyGraph* graph = nullptr;
    auto resolved = rt_->ResolveGraph(plan_->graph);
    if (resolved.ok()) graph = *resolved;
    GCORE_ASSIGN_OR_RETURN(
        BindingTable filtered,
        rt_->FilterTable(std::move(table), *plan_->predicate, graph));
    if (stats_ != nullptr) {
      stats_->Record(plan_, filtered.NumRows());
      stats_->RecordTime(plan_, MsSince(t0));
    }
    return Chunk(std::move(filtered));
  }

 private:
  Matcher* rt_;
  const PlanNode* plan_;
  OpPtr child_;
  ExecStats* stats_;
  bool done_ = false;
};

/// Natural join of two subplans. Only the build side is drained; the
/// probe side's chunks are joined as they arrive (StreamingJoinProbe),
/// so probing overlaps whatever pipeline is still producing them.
class HashJoinOp : public PhysicalOp {
 public:
  HashJoinOp(const PlanNode* plan, OpPtr left, OpPtr right, ExecContext exec,
             ExecStats* stats)
      : plan_(plan),
        left_(std::move(left)),
        right_(std::move(right)),
        exec_(exec),
        stats_(stats) {}

  Result<std::optional<BindingTable>> Next() override {
    if (done_) return Exhausted();
    done_ = true;
    // Orientation is fixed at *plan* time: provenance and schema always
    // follow the left side (canonical order), and a swap_build plan
    // builds over the left when statistics predicted the right side much
    // larger — the choose_build_side rule. Never a runtime size check,
    // so execution stays deterministic for a given plan. The streamed
    // result is pinned byte-identical to draining both sides and calling
    // TableJoinParallel / TableJoinSwapBuild.
    PhysicalOp* build_op = plan_->swap_build ? left_.get() : right_.get();
    PhysicalOp* probe_op = plan_->swap_build ? right_.get() : left_.get();
    GCORE_ASSIGN_OR_RETURN(BindingTable build, Drain(build_op));
    // Own-work timing covers hash-table build, every probe and the final
    // merge — but not the probe child's Next() calls in between.
    double own_ms = 0.0;
    auto t0 = std::chrono::steady_clock::now();
    StreamingJoinProbe probe(std::move(build), plan_->swap_build);
    own_ms += MsSince(t0);
    while (true) {
      GCORE_ASSIGN_OR_RETURN(std::optional<BindingTable> chunk,
                             probe_op->Next());
      if (!chunk.has_value()) break;
      t0 = std::chrono::steady_clock::now();
      probe.Probe(*chunk);
      own_ms += MsSince(t0);
    }
    t0 = std::chrono::steady_clock::now();
    BindingTable joined = probe.Finish();
    own_ms += MsSince(t0);
    if (stats_ != nullptr) {
      stats_->Record(plan_, joined.NumRows());
      stats_->RecordTime(plan_, own_ms);
    }
    return Chunk(std::move(joined));
  }

 private:
  const PlanNode* plan_;
  OpPtr left_;
  OpPtr right_;
  ExecContext exec_;
  ExecStats* stats_;
  bool done_ = false;
};

/// OPTIONAL chaining: ⟕ of the main plan with one block. The composition
/// (join ∪ antijoin) probes morsel-parallel (eval/binding_ops.h), so
/// OPTIONAL blocks no longer serialize the pipeline.
class LeftOuterJoinOp : public PhysicalOp {
 public:
  LeftOuterJoinOp(const PlanNode* plan, OpPtr left, OpPtr right,
                  ExecContext exec, ExecStats* stats)
      : plan_(plan),
        left_(std::move(left)),
        right_(std::move(right)),
        exec_(exec),
        stats_(stats) {}

  Result<std::optional<BindingTable>> Next() override {
    if (done_) return Exhausted();
    done_ = true;
    GCORE_ASSIGN_OR_RETURN(BindingTable left, Drain(left_.get()));
    GCORE_ASSIGN_OR_RETURN(BindingTable right, Drain(right_.get()));
    const auto t0 = std::chrono::steady_clock::now();
    BindingTable joined = TableLeftOuterJoinParallel(
        left, right, exec_.Degree(), exec_.MorselRows());
    if (stats_ != nullptr) {
      stats_->Record(plan_, joined.NumRows());
      stats_->RecordTime(plan_, MsSince(t0));
    }
    return Chunk(std::move(joined));
  }

 private:
  const PlanNode* plan_;
  OpPtr left_;
  OpPtr right_;
  ExecContext exec_;
  ExecStats* stats_;
  bool done_ = false;
};

/// Final projection: the column slicing runs as a per-morsel stage below
/// (its chunks arrive here already slimmed, in input order); this breaker
/// merges them through a fused dedup sink, restoring set semantics
/// without a whole-table second pass.
class ProjectMergeOp : public PhysicalOp {
 public:
  ProjectMergeOp(const PlanNode* plan, OpPtr child, ExecStats* stats)
      : plan_(plan), child_(std::move(child)), stats_(stats) {}

  Result<std::optional<BindingTable>> Next() override {
    if (done_) return Exhausted();
    done_ = true;
    BindingTable out;
    std::unique_ptr<RowDedupSink> sink;
    // Own-work timing covers only the dedup-merge inserts, not the
    // child's chunk production between them.
    double own_ms = 0.0;
    while (true) {
      GCORE_ASSIGN_OR_RETURN(Chunk chunk, child_->Next());
      if (!chunk.has_value()) break;
      const auto t0 = std::chrono::steady_clock::now();
      if (sink == nullptr) {
        out = EmptyLike(*chunk);
        sink = std::make_unique<RowDedupSink>(&out);
      }
      for (size_t r = 0; r < chunk->NumRows(); ++r) {
        sink->InsertFrom(*chunk, r);
      }
      own_ms += MsSince(t0);
    }
    if (stats_ != nullptr) {
      stats_->Record(plan_, out.NumRows());
      stats_->RecordTime(plan_, own_ms);
    }
    return Chunk(std::move(out));
  }

 private:
  const PlanNode* plan_;
  OpPtr child_;
  ExecStats* stats_;
  bool done_ = false;
};

}  // namespace

Executor::Executor(Matcher* runtime, ExecContext exec, ExecStats* stats)
    : runtime_(runtime), exec_(exec), stats_(stats) {}

namespace {

/// Appends a stage to `child` if it is already a pipeline (stage fusion:
/// one worker pool runs scan filters, expansions and projections of a
/// segment back-to-back per morsel); otherwise opens a new pipeline.
OpPtr FuseStage(OpPtr child, Stage stage, ExecContext exec) {
  auto* pipeline = dynamic_cast<PipelineOp*>(child.get());
  if (pipeline == nullptr) {
    auto fresh = std::make_unique<PipelineOp>(std::move(child), exec);
    pipeline = fresh.get();
    child = std::move(fresh);
  }
  pipeline->AddStage(std::move(stage));
  return child;
}

/// Shared stage state resolved once by Stage::prepare on the coordinator
/// (graph resolution may register table-as-graph entries in the catalog;
/// adjacency warm-up fills the Matcher cache) and read by workers.
struct ResolvedGraph {
  const PathPropertyGraph* graph = nullptr;
};

/// Wraps a stage transform with actual-row and wall-time recording
/// against `plan` (per-morsel counts and times accumulate; stages may run
/// on worker threads, which ExecStats tolerates — worker times sum, so a
/// parallel stage's actual_ms can exceed the query's wall clock).
std::function<Result<BindingTable>(BindingTable)> Recorded(
    std::function<Result<BindingTable>(BindingTable)> fn,
    const PlanNode* plan, ExecStats* stats) {
  if (stats == nullptr) return fn;
  return [fn = std::move(fn), plan, stats](
             BindingTable morsel) -> Result<BindingTable> {
    const auto t0 = std::chrono::steady_clock::now();
    GCORE_ASSIGN_OR_RETURN(BindingTable out, fn(std::move(morsel)));
    stats->Record(plan, out.NumRows());
    stats->RecordTime(plan, MsSince(t0));
    return out;
  };
}

Stage MakePushedFilterStage(Matcher* rt, const PlanNode* plan,
                            ExecStats* stats) {
  auto resolved = std::make_shared<ResolvedGraph>();
  Stage stage;
  stage.prepare = [rt, plan, resolved]() -> Status {
    GCORE_ASSIGN_OR_RETURN(resolved->graph, rt->ResolveGraph(plan->graph));
    return Status::OK();
  };
  stage.fn = Recorded(
      [rt, plan, resolved](BindingTable morsel) {
        return rt->FilterByConjuncts(std::move(morsel), plan->pushed,
                                     resolved->graph);
      },
      plan, stats);
  stage.thread_safe = ExprsParallelSafe(plan->pushed);
  return stage;
}

Stage MakeExpandEdgeStage(Matcher* rt, const PlanNode* plan,
                          ExecStats* stats) {
  auto resolved = std::make_shared<ResolvedGraph>();
  Stage stage;
  stage.prepare = [rt, plan, resolved]() -> Status {
    GCORE_ASSIGN_OR_RETURN(resolved->graph, rt->ResolveGraph(plan->graph));
    rt->Snapshot(*resolved->graph);  // warm the snapshot cache off the workers
    return Status::OK();
  };
  stage.fn = Recorded(
      [rt, plan, resolved](BindingTable morsel) -> Result<BindingTable> {
        GCORE_ASSIGN_OR_RETURN(
            BindingTable expanded,
            rt->ExpandEdgeHop(std::move(morsel), plan->from_var, *plan->edge,
                              plan->edge_var, *plan->to, plan->to_var,
                              *resolved->graph, resolved->graph->name()));
        return rt->FilterByConjuncts(std::move(expanded), plan->pushed,
                                     resolved->graph);
      },
      plan, stats);
  stage.thread_safe = ExprsParallelSafe(plan->pushed) &&
                      PropsParallelSafe(plan->edge->props) &&
                      PropsParallelSafe(plan->to->props);
  return stage;
}

/// MultiwayExpand: the worst-case-optimal cycle intersection (wcoj.h)
/// runs as a fused per-morsel stage exactly like ExpandEdge — every input
/// row expands independently, so the morsel protocol's ordered
/// reassembly keeps output deterministic at every degree.
Stage MakeMultiwayExpandStage(Matcher* rt, const PlanNode* plan,
                              ExecStats* stats) {
  auto resolved = std::make_shared<ResolvedGraph>();
  Stage stage;
  stage.prepare = [rt, plan, resolved]() -> Status {
    GCORE_ASSIGN_OR_RETURN(resolved->graph, rt->ResolveGraph(plan->graph));
    rt->Snapshot(*resolved->graph);  // warm the snapshot cache off the workers
    return Status::OK();
  };
  stage.fn = Recorded(
      [rt, plan, resolved](BindingTable morsel) -> Result<BindingTable> {
        GCORE_ASSIGN_OR_RETURN(
            BindingTable expanded,
            MultiwayExpandChunk(rt, *plan, *resolved->graph,
                                resolved->graph->name(), morsel));
        return rt->FilterByConjuncts(std::move(expanded), plan->pushed,
                                     resolved->graph);
      },
      plan, stats);
  // The rewrite only absorbs literal-filter props (admission needs no row
  // context), so thread safety hinges on the pushed conjuncts alone.
  stage.thread_safe = ExprsParallelSafe(plan->pushed);
  return stage;
}

Stage MakeResidualFilterStage(Matcher* rt, const PlanNode* plan,
                              ExecStats* stats) {
  auto resolved = std::make_shared<ResolvedGraph>();
  Stage stage;
  stage.prepare = [rt, plan, resolved]() -> Status {
    // The fallback graph for λ/σ lookups of provenance-less columns;
    // legitimately absent when every pattern carries its own ON.
    auto graph = rt->ResolveGraph(plan->graph);
    if (graph.ok()) resolved->graph = *graph;
    return Status::OK();
  };
  stage.fn = Recorded(
      [rt, plan, resolved](BindingTable morsel) {
        return rt->FilterTable(std::move(morsel), *plan->predicate,
                               resolved->graph);
      },
      plan, stats);
  stage.thread_safe = ExprParallelSafe(*plan->predicate);
  return stage;
}

Stage MakeProjectStage(Matcher* rt, const PlanNode* plan) {
  Stage stage;
  stage.fn = [rt, plan](BindingTable morsel) -> Result<BindingTable> {
    return rt->ProjectChunk(morsel, &plan->output);
  };
  stage.thread_safe = true;
  return stage;
}

}  // namespace

Result<std::unique_ptr<PhysicalOp>> Executor::Build(const PlanNode& plan) {
  switch (plan.op) {
    case PlanOp::kNodeScan: {
      OpPtr scan(new NodeScanOp(runtime_, &plan, exec_, stats_));
      if (plan.pushed.empty()) return scan;
      return FuseStage(std::move(scan),
                       MakePushedFilterStage(runtime_, &plan, stats_),
                       exec_);
    }
    case PlanOp::kExpandEdge: {
      GCORE_ASSIGN_OR_RETURN(OpPtr child, Build(*plan.children[0]));
      return FuseStage(std::move(child),
                       MakeExpandEdgeStage(runtime_, &plan, stats_), exec_);
    }
    case PlanOp::kMultiwayExpand: {
      GCORE_ASSIGN_OR_RETURN(OpPtr child, Build(*plan.children[0]));
      return FuseStage(std::move(child),
                       MakeMultiwayExpandStage(runtime_, &plan, stats_),
                       exec_);
    }
    case PlanOp::kPathSearch: {
      GCORE_ASSIGN_OR_RETURN(OpPtr child, Build(*plan.children[0]));
      return OpPtr(
          new PathSearchOp(runtime_, &plan, std::move(child), exec_,
                           stats_));
    }
    case PlanOp::kFilter: {
      GCORE_ASSIGN_OR_RETURN(OpPtr child, Build(*plan.children[0]));
      if (plan.predicate->ContainsAggregate()) {
        return OpPtr(new DrainingFilterOp(runtime_, &plan, std::move(child),
                                          stats_));
      }
      return FuseStage(std::move(child),
                       MakeResidualFilterStage(runtime_, &plan, stats_),
                       exec_);
    }
    case PlanOp::kHashJoin: {
      GCORE_ASSIGN_OR_RETURN(OpPtr left, Build(*plan.children[0]));
      GCORE_ASSIGN_OR_RETURN(OpPtr right, Build(*plan.children[1]));
      return OpPtr(new HashJoinOp(&plan, std::move(left), std::move(right),
                                  exec_, stats_));
    }
    case PlanOp::kLeftOuterJoin: {
      GCORE_ASSIGN_OR_RETURN(OpPtr left, Build(*plan.children[0]));
      GCORE_ASSIGN_OR_RETURN(OpPtr right, Build(*plan.children[1]));
      return OpPtr(new LeftOuterJoinOp(&plan, std::move(left),
                                       std::move(right), exec_, stats_));
    }
    case PlanOp::kProject: {
      GCORE_ASSIGN_OR_RETURN(OpPtr child, Build(*plan.children[0]));
      OpPtr sliced = FuseStage(std::move(child),
                               MakeProjectStage(runtime_, &plan), exec_);
      return OpPtr(new ProjectMergeOp(&plan, std::move(sliced), stats_));
    }
    case PlanOp::kGraphUnion:
    case PlanOp::kGraphIntersect:
    case PlanOp::kGraphMinus:
      return Status::EvaluationError(
          std::string(PlanOpName(plan.op)) +
          " is a graph-level operator; the engine combines basic-query "
          "results above the binding pipeline");
  }
  return Status::EvaluationError("unhandled plan operator");
}

Result<BindingTable> Executor::Run(const PlanNode& plan) {
  GCORE_ASSIGN_OR_RETURN(std::unique_ptr<PhysicalOp> root, Build(plan));
  return Drain(root.get());
}

}  // namespace gcore
