#include "plan/executor.h"

#include <utility>
#include <vector>

#include "eval/binding_ops.h"
#include "eval/matcher.h"

namespace gcore {

namespace {

using OpPtr = std::unique_ptr<PhysicalOp>;
using Chunk = std::optional<BindingTable>;

/// Lifts a table result into the chunk protocol (Result's implicit
/// conversions do not chain through std::optional).
Result<Chunk> AsChunk(Result<BindingTable> result) {
  if (!result.ok()) return result.status();
  return Chunk(std::move(result).value());
}

Result<Chunk> Exhausted() { return Chunk(); }

/// Pulls every chunk of `op` into one table. Chunks of one operator share
/// a schema (and column provenance), so rows concatenate directly.
Result<BindingTable> Drain(PhysicalOp* op) {
  BindingTable out;
  bool first = true;
  while (true) {
    GCORE_ASSIGN_OR_RETURN(std::optional<BindingTable> chunk, op->Next());
    if (!chunk.has_value()) break;
    if (first) {
      out = std::move(*chunk);
      first = false;
      continue;
    }
    for (auto& row : chunk->mutable_rows()) {
      GCORE_RETURN_NOT_OK(out.AddRow(std::move(row)));
    }
  }
  return out;
}

/// NodeScan: all admitted nodes of the operator's graph, with pushed
/// predicates applied before anything downstream runs.
class NodeScanOp : public PhysicalOp {
 public:
  NodeScanOp(Matcher* rt, const PlanNode* plan) : rt_(rt), plan_(plan) {}

  Result<std::optional<BindingTable>> Next() override {
    if (done_) return Exhausted();
    done_ = true;
    GCORE_ASSIGN_OR_RETURN(const PathPropertyGraph* graph,
                           rt_->ResolveGraph(plan_->graph));
    GCORE_ASSIGN_OR_RETURN(
        BindingTable table,
        rt_->MatchStartNode(*plan_->node, *graph, graph->name(), plan_->var));
    return AsChunk(rt_->FilterByConjuncts(std::move(table), plan_->pushed, graph));
  }

 private:
  Matcher* rt_;
  const PlanNode* plan_;
  bool done_ = false;
};

/// ExpandEdge: one edge hop per pulled chunk.
class ExpandEdgeOp : public PhysicalOp {
 public:
  ExpandEdgeOp(Matcher* rt, const PlanNode* plan, OpPtr child)
      : rt_(rt), plan_(plan), child_(std::move(child)) {}

  Result<std::optional<BindingTable>> Next() override {
    GCORE_ASSIGN_OR_RETURN(std::optional<BindingTable> chunk,
                           child_->Next());
    if (!chunk.has_value()) return Exhausted();
    GCORE_ASSIGN_OR_RETURN(const PathPropertyGraph* graph,
                           rt_->ResolveGraph(plan_->graph));
    GCORE_ASSIGN_OR_RETURN(
        BindingTable expanded,
        rt_->ExpandEdgeHop(std::move(*chunk), plan_->from_var, *plan_->edge,
                           plan_->edge_var, *plan_->to, plan_->to_var, *graph,
                           graph->name()));
    return AsChunk(rt_->FilterByConjuncts(std::move(expanded), plan_->pushed, graph));
  }

 private:
  Matcher* rt_;
  const PlanNode* plan_;
  OpPtr child_;
};

/// PathSearch: one path hop (stored / SHORTEST / ALL / reachability) per
/// pulled chunk.
class PathSearchOp : public PhysicalOp {
 public:
  PathSearchOp(Matcher* rt, const PlanNode* plan, OpPtr child)
      : rt_(rt), plan_(plan), child_(std::move(child)) {}

  Result<std::optional<BindingTable>> Next() override {
    GCORE_ASSIGN_OR_RETURN(std::optional<BindingTable> chunk,
                           child_->Next());
    if (!chunk.has_value()) return Exhausted();
    GCORE_ASSIGN_OR_RETURN(const PathPropertyGraph* graph,
                           rt_->ResolveGraph(plan_->graph));
    GCORE_ASSIGN_OR_RETURN(
        BindingTable expanded,
        rt_->ExpandPathHop(std::move(*chunk), plan_->from_var, *plan_->path,
                           plan_->path_var, *plan_->to, plan_->to_var, *graph,
                           graph->name()));
    return AsChunk(rt_->FilterByConjuncts(std::move(expanded), plan_->pushed, graph));
  }

 private:
  Matcher* rt_;
  const PlanNode* plan_;
  OpPtr child_;
};

/// Residual WHERE filter.
class FilterOp : public PhysicalOp {
 public:
  FilterOp(Matcher* rt, const PlanNode* plan, OpPtr child)
      : rt_(rt), plan_(plan), child_(std::move(child)) {}

  Result<std::optional<BindingTable>> Next() override {
    GCORE_ASSIGN_OR_RETURN(std::optional<BindingTable> chunk,
                           child_->Next());
    if (!chunk.has_value()) return Exhausted();
    // The fallback graph for λ/σ lookups of provenance-less columns;
    // legitimately absent when every pattern carries its own ON.
    const PathPropertyGraph* graph = nullptr;
    auto resolved = rt_->ResolveGraph(plan_->graph);
    if (resolved.ok()) graph = *resolved;
    return AsChunk(rt_->FilterTable(std::move(*chunk), *plan_->predicate, graph));
  }

 private:
  Matcher* rt_;
  const PlanNode* plan_;
  OpPtr child_;
};

/// Natural join of two subplans; both sides are drained (hash join builds
/// over the full right input).
class HashJoinOp : public PhysicalOp {
 public:
  HashJoinOp(OpPtr left, OpPtr right)
      : left_(std::move(left)), right_(std::move(right)) {}

  Result<std::optional<BindingTable>> Next() override {
    if (done_) return Exhausted();
    done_ = true;
    GCORE_ASSIGN_OR_RETURN(BindingTable left, Drain(left_.get()));
    GCORE_ASSIGN_OR_RETURN(BindingTable right, Drain(right_.get()));
    // Static orientation, exactly as the legacy walk joins accumulated-
    // result-first: shared-column graph provenance follows the left
    // side deterministically (a runtime size-based swap would make
    // provenance — and thus λ/σ lookups — data-dependent). Smallest-
    // first chain ordering keeps the accumulated left side small.
    return AsChunk(TableJoin(left, right));
  }

 private:
  OpPtr left_;
  OpPtr right_;
  bool done_ = false;
};

/// OPTIONAL chaining: ⟕ of the main plan with one block.
class LeftOuterJoinOp : public PhysicalOp {
 public:
  LeftOuterJoinOp(OpPtr left, OpPtr right)
      : left_(std::move(left)), right_(std::move(right)) {}

  Result<std::optional<BindingTable>> Next() override {
    if (done_) return Exhausted();
    done_ = true;
    GCORE_ASSIGN_OR_RETURN(BindingTable left, Drain(left_.get()));
    GCORE_ASSIGN_OR_RETURN(BindingTable right, Drain(right_.get()));
    return AsChunk(TableLeftOuterJoin(left, right));
  }

 private:
  OpPtr left_;
  OpPtr right_;
  bool done_ = false;
};

/// Final projection: drop internal columns in recorded binding order,
/// restore set semantics.
class ProjectOp : public PhysicalOp {
 public:
  ProjectOp(Matcher* rt, const PlanNode* plan, OpPtr child)
      : rt_(rt), plan_(plan), child_(std::move(child)) {}

  Result<std::optional<BindingTable>> Next() override {
    if (done_) return Exhausted();
    done_ = true;
    GCORE_ASSIGN_OR_RETURN(BindingTable table, Drain(child_.get()));
    return AsChunk(rt_->ProjectResult(table, &plan_->output));
  }

 private:
  Matcher* rt_;
  const PlanNode* plan_;
  OpPtr child_;
  bool done_ = false;
};

}  // namespace

Executor::Executor(Matcher* runtime) : runtime_(runtime) {}

Result<std::unique_ptr<PhysicalOp>> Executor::Build(const PlanNode& plan) {
  switch (plan.op) {
    case PlanOp::kNodeScan:
      return OpPtr(new NodeScanOp(runtime_, &plan));
    case PlanOp::kExpandEdge: {
      GCORE_ASSIGN_OR_RETURN(OpPtr child, Build(*plan.children[0]));
      return OpPtr(new ExpandEdgeOp(runtime_, &plan, std::move(child)));
    }
    case PlanOp::kPathSearch: {
      GCORE_ASSIGN_OR_RETURN(OpPtr child, Build(*plan.children[0]));
      return OpPtr(new PathSearchOp(runtime_, &plan, std::move(child)));
    }
    case PlanOp::kFilter: {
      GCORE_ASSIGN_OR_RETURN(OpPtr child, Build(*plan.children[0]));
      return OpPtr(new FilterOp(runtime_, &plan, std::move(child)));
    }
    case PlanOp::kHashJoin: {
      GCORE_ASSIGN_OR_RETURN(OpPtr left, Build(*plan.children[0]));
      GCORE_ASSIGN_OR_RETURN(OpPtr right, Build(*plan.children[1]));
      return OpPtr(new HashJoinOp(std::move(left), std::move(right)));
    }
    case PlanOp::kLeftOuterJoin: {
      GCORE_ASSIGN_OR_RETURN(OpPtr left, Build(*plan.children[0]));
      GCORE_ASSIGN_OR_RETURN(OpPtr right, Build(*plan.children[1]));
      return OpPtr(new LeftOuterJoinOp(std::move(left), std::move(right)));
    }
    case PlanOp::kProject: {
      GCORE_ASSIGN_OR_RETURN(OpPtr child, Build(*plan.children[0]));
      return OpPtr(new ProjectOp(runtime_, &plan, std::move(child)));
    }
    case PlanOp::kGraphUnion:
    case PlanOp::kGraphIntersect:
    case PlanOp::kGraphMinus:
      return Status::EvaluationError(
          std::string(PlanOpName(plan.op)) +
          " is a graph-level operator; the engine combines basic-query "
          "results above the binding pipeline");
  }
  return Status::EvaluationError("unhandled plan operator");
}

Result<BindingTable> Executor::Run(const PlanNode& plan) {
  GCORE_ASSIGN_OR_RETURN(std::unique_ptr<PhysicalOp> root, Build(plan));
  return Drain(root.get());
}

}  // namespace gcore
