#include "plan/planner.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <limits>
#include <numeric>
#include <set>

#include "eval/matcher.h"
#include "plan/cost.h"
#include "plan/executor.h"

namespace gcore {

PlannerOptions PlannerOptions::FromContext(const MatcherContext& ctx) {
  // MatcherContext and PlannerOptions share the EngineOptions base: one
  // slice assignment, no field-by-field forwarding to drift.
  PlannerOptions options;
  static_cast<EngineOptions&>(options) = ctx;
  return options;
}

Planner::Planner(Matcher* runtime, PlannerOptions options)
    : runtime_(runtime), options_(options) {}

std::string Planner::EffectiveLocation(const GraphPattern& pattern) const {
  const auto* overrides = runtime_->context().location_overrides;
  if (overrides != nullptr) {
    auto it = overrides->find(&pattern);
    if (it != overrides->end()) return it->second;
  }
  if (pattern.on_subquery != nullptr) {
    // Only reachable in EXPLAIN mode: execution materializes subquery
    // locations into overrides before planning.
    return "(subquery)";
  }
  if (!pattern.on_graph.empty()) return pattern.on_graph;
  return clause_override_;
}

void Planner::AttachPushed(
    PlanNode* node, const std::string& var,
    const std::map<std::string, std::vector<const Expr*>>* pushdown) {
  if (pushdown == nullptr) return;
  auto it = pushdown->find(var);
  if (it == pushdown->end()) return;
  node->pushed.insert(node->pushed.end(), it->second.begin(),
                      it->second.end());
}

Result<PlanPtr> Planner::PlanChain(
    const GraphPattern& pattern,
    const std::map<std::string, std::vector<const Expr*>>* pushdown) {
  const std::string location = EffectiveLocation(pattern);

  auto scan = MakePlan(PlanOp::kNodeScan);
  scan->graph = location;
  scan->node = &pattern.start;
  scan->var = pattern.start.var.empty() ? runtime_->FreshAnonName()
                                        : pattern.start.var;
  AttachPushed(scan.get(), scan->var, pushdown);

  PlanPtr plan = std::move(scan);
  std::string prev_var = plan->var;
  for (const auto& hop : pattern.hops) {
    const std::string to_var =
        hop.to.var.empty() ? runtime_->FreshAnonName() : hop.to.var;
    if (hop.kind == PatternHop::Kind::kEdge) {
      auto expand = MakePlan(PlanOp::kExpandEdge);
      expand->graph = location;
      expand->from_var = prev_var;
      expand->edge = &hop.edge;
      expand->edge_var = hop.edge.var.empty() ? runtime_->FreshAnonName()
                                              : hop.edge.var;
      expand->to = &hop.to;
      expand->to_var = to_var;
      // Same application order as the legacy walk: the edge variable's
      // conjuncts run before the target node's.
      AttachPushed(expand.get(), expand->edge_var, pushdown);
      AttachPushed(expand.get(), to_var, pushdown);
      expand->children.push_back(std::move(plan));
      plan = std::move(expand);
    } else {
      auto search = MakePlan(PlanOp::kPathSearch);
      search->graph = location;
      search->from_var = prev_var;
      search->path = &hop.path;
      search->path_var =
          hop.path.var.empty()
              ? (hop.path.mode == PathPattern::Mode::kReachability
                     ? std::string()
                     : runtime_->FreshAnonName())
              : hop.path.var;
      search->to = &hop.to;
      search->to_var = to_var;
      AttachPushed(search.get(), to_var, pushdown);
      search->children.push_back(std::move(plan));
      plan = std::move(search);
    }
    prev_var = to_var;
  }
  return plan;
}

namespace {

void CollectChainVars(const GraphPattern& pattern,
                      std::set<std::string>* out) {
  std::vector<std::string> vars;
  pattern.CollectBoundVariables(&vars);
  out->insert(vars.begin(), vars.end());
}

/// True when a pattern element's props are all literal filters — the
/// shapes NodeAdmits/EdgeAdmits check without a row context, which is
/// what the multiway operator's admission can evaluate.
bool LiteralFilterPropsOnly(const std::vector<PropPattern>& props) {
  for (const auto& p : props) {
    if (p.mode != PropPattern::Mode::kFilter) return false;
    if (p.value == nullptr || p.value->kind != Expr::Kind::kLiteral) {
      return false;
    }
  }
  return true;
}

/// A chain unit decomposed for the cycle rewrite: its NodeScan and the
/// ExpandEdge nodes in chain (bottom-up) order; eligible only when the
/// whole chain is scan + edge expansions with literal-only props.
struct ChainShape {
  bool eligible = false;
  PlanNode* scan = nullptr;
  std::vector<PlanNode*> expands;  // in chain order (scan outwards)
};

ChainShape AnalyzeChain(PlanNode* root) {
  ChainShape shape;
  PlanNode* node = root;
  std::vector<PlanNode*> top_down;
  while (node->op == PlanOp::kExpandEdge) {
    top_down.push_back(node);
    node = node->children[0].get();
  }
  if (node->op != PlanOp::kNodeScan) return shape;
  shape.scan = node;
  shape.expands.assign(top_down.rbegin(), top_down.rend());
  if (!LiteralFilterPropsOnly(node->node->props)) return shape;
  for (const PlanNode* expand : shape.expands) {
    if (!LiteralFilterPropsOnly(expand->edge->props) ||
        !LiteralFilterPropsOnly(expand->to->props) ||
        expand->from_var == expand->to_var) {
      return shape;
    }
  }
  shape.eligible = true;
  return shape;
}

/// Mention count of every bound variable name over a chain plan (scan
/// var, edge vars, target vars, path vars) — the edge-var uniqueness
/// check of the rewrite.
void CountVarMentions(const PlanNode& node,
                      std::map<std::string, size_t>* counts) {
  switch (node.op) {
    case PlanOp::kNodeScan:
      ++(*counts)[node.var];
      break;
    case PlanOp::kExpandEdge:
      ++(*counts)[node.edge_var];
      ++(*counts)[node.to_var];
      break;
    case PlanOp::kPathSearch:
      if (!node.path_var.empty()) ++(*counts)[node.path_var];
      ++(*counts)[node.to_var];
      break;
    default:
      break;
  }
  for (const auto& child : node.children) CountVarMentions(*child, counts);
}

/// Pulls the NodeScan leaf out of a fully-consumed chain, discarding the
/// expansion nodes above it (their patterns live on in the MultiwayExpand
/// node, which points into the query AST).
PlanPtr TakeScan(PlanPtr root) {
  while (root->op != PlanOp::kNodeScan) {
    root = std::move(root->children[0]);
  }
  return root;
}

/// Leaf copy of a NodeScan for rewrite pricing (children excluded; the
/// pattern pointers are non-owning into the AST).
PlanPtr CopyScanLeaf(const PlanNode& scan) {
  auto copy = std::make_unique<PlanNode>(PlanOp::kNodeScan);
  copy->graph = scan.graph;
  copy->node = scan.node;
  copy->var = scan.var;
  copy->pushed = scan.pushed;
  return copy;
}

/// One candidate cycle: edges are (unit index, expand index) pairs.
struct CycleCandidate {
  std::vector<std::pair<size_t, size_t>> edges;
};

/// The right side of a join is predicted "much larger" than the left at
/// this factor — the build-side swap threshold.
constexpr double kSwapBuildFactor = 4.0;

}  // namespace

Planner::GreedyFold Planner::GreedyJoinFold(
    const std::vector<JoinUnit>& units, std::vector<size_t> members,
    CardinalityEstimator* estimator) const {
  GreedyFold fold;
  std::stable_sort(members.begin(), members.end(), [&](size_t a, size_t b) {
    return units[a].est < units[b].est;
  });
  fold.order = std::move(members);
  double acc_est = -1.0;
  std::set<std::string> acc_vars;
  std::vector<size_t> acc_members;
  for (size_t u : fold.order) {
    const JoinUnit& unit = units[u];
    if (acc_est < 0.0) {
      acc_est = unit.est;
    } else {
      std::vector<std::pair<double, double>> key_domains;
      bool correlated = false;
      for (const auto& v : unit.vars) {
        if (acc_vars.count(v) == 0) continue;
        correlated = true;
        double dl = -1.0;
        for (size_t prior : acc_members) {
          const double d = estimator->VarDomain(*units[prior].plan, v);
          if (d >= 0.0 && (dl < 0.0 || d < dl)) dl = d;
        }
        key_domains.emplace_back(dl,
                                 estimator->VarDomain(*unit.plan, v));
      }
      acc_est = CardinalityEstimator::JoinEstimate(
          acc_est, unit.est, correlated, key_domains,
          options_.use_column_stats);
      fold.join_ests.push_back(acc_est);
    }
    acc_members.push_back(u);
    acc_vars.insert(unit.vars.begin(), unit.vars.end());
  }
  return fold;
}

void Planner::TryMultiwayRewrite(std::vector<JoinUnit>* units) {
  // Decompose chains and count variable mentions across the clause.
  std::vector<ChainShape> shapes(units->size());
  std::map<std::string, size_t> mentions;
  for (size_t i = 0; i < units->size(); ++i) {
    shapes[i] = AnalyzeChain((*units)[i].plan.get());
    CountVarMentions(*(*units)[i].plan, &mentions);
  }

  // Eligible pattern edges over node variables.
  struct EdgeRec {
    size_t unit;
    size_t expand;
    const PlanNode* node;
  };
  std::vector<EdgeRec> edges;
  for (size_t i = 0; i < units->size(); ++i) {
    if (!shapes[i].eligible) continue;
    for (size_t e = 0; e < shapes[i].expands.size(); ++e) {
      const PlanNode* expand = shapes[i].expands[e];
      // The edge variable must be bound nowhere else: the operator
      // enumerates it fresh, with no pre-bound column to respect.
      if (mentions[expand->edge_var] != 1) continue;
      edges.push_back({i, e, expand});
    }
  }
  if (edges.size() < 3) return;

  // Smallest simple cycle per base edge: BFS from one endpoint to the
  // other over the remaining eligible edges (girth-style).
  std::vector<CycleCandidate> candidates;
  for (size_t base = 0; base < edges.size(); ++base) {
    const std::string& src = edges[base].node->from_var;
    const std::string& dst = edges[base].node->to_var;
    std::map<std::string, std::pair<std::string, size_t>> parent;
    std::deque<std::string> frontier{src};
    parent[src] = {src, edges.size()};
    while (!frontier.empty() && parent.count(dst) == 0) {
      const std::string at = frontier.front();
      frontier.pop_front();
      for (size_t j = 0; j < edges.size(); ++j) {
        if (j == base) continue;
        const PlanNode* n = edges[j].node;
        const std::string* next = nullptr;
        if (n->from_var == at) {
          next = &n->to_var;
        } else if (n->to_var == at) {
          next = &n->from_var;
        } else {
          continue;
        }
        if (parent.count(*next) > 0) continue;
        parent[*next] = {at, j};
        frontier.push_back(*next);
      }
    }
    if (parent.count(dst) == 0) continue;
    CycleCandidate cand;
    cand.edges.emplace_back(edges[base].unit, edges[base].expand);
    std::set<size_t> used;
    for (std::string at = dst; at != src;) {
      const auto& [prev, via] = parent[at];
      if (used.count(via) > 0) break;  // defensive
      used.insert(via);
      cand.edges.emplace_back(edges[via].unit, edges[via].expand);
      at = prev;
    }
    if (cand.edges.size() >= 3) candidates.push_back(std::move(cand));
  }
  if (candidates.empty()) return;
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const CycleCandidate& a, const CycleCandidate& b) {
                     return a.edges.size() < b.edges.size();
                   });

  CardinalityEstimator estimator(runtime_->context().catalog,
                                 default_location_,
                                 options_.use_column_stats);

  for (const CycleCandidate& cand : candidates) {
    // Consumed units: every expansion of a touched chain must be a cycle
    // edge (the rewrite replaces whole chains), and all on one graph.
    std::set<size_t> consumed;
    std::set<std::pair<size_t, size_t>> cycle_edges(cand.edges.begin(),
                                                    cand.edges.end());
    for (const auto& [u, e] : cand.edges) {
      (void)e;
      consumed.insert(u);
    }
    bool covered = true;
    const std::string& location =
        shapes[*consumed.begin()].scan->graph;
    for (size_t u : consumed) {
      if (shapes[u].scan->graph != location) covered = false;
      for (size_t e = 0; e < shapes[u].expands.size() && covered; ++e) {
        if (cycle_edges.count({u, e}) == 0) covered = false;
      }
      if (!covered) break;
    }
    if (!covered) continue;

    // Seed: the most selective consumed scan (estimates were annotated by
    // the caller; unknown estimates abort the rewrite).
    size_t seed_unit = *consumed.begin();
    for (size_t u : consumed) {
      if (shapes[u].scan->est_rows < 0.0) {
        seed_unit = units->size();
        break;
      }
      if (shapes[u].scan->est_rows < shapes[seed_unit].scan->est_rows) {
        seed_unit = u;
      }
    }
    if (seed_unit == units->size()) continue;

    // Assemble the candidate node (source order: units ascending, chain
    // order within).
    auto node = MakePlan(PlanOp::kMultiwayExpand);
    node->graph = location;
    for (size_t u : consumed) {
      const ChainShape& shape = shapes[u];
      if (u != seed_unit) {
        node->multi_nodes.emplace_back(shape.scan->var, shape.scan->node);
        node->pushed.insert(node->pushed.end(), shape.scan->pushed.begin(),
                            shape.scan->pushed.end());
      }
      for (const PlanNode* expand : shape.expands) {
        node->multi_edges.push_back(MultiwayEdge{
            expand->from_var, expand->edge, expand->edge_var,
            expand->to_var});
        node->multi_nodes.emplace_back(expand->to_var, expand->to);
        node->pushed.insert(node->pushed.end(), expand->pushed.begin(),
                            expand->pushed.end());
      }
    }

    // Price the rewrite: seed scan + AGM/max-degree output bound against
    // the binary alternative's materialized volume (each consumed chain
    // plus its greedy smallest-first join intermediates).
    node->children.push_back(CopyScanLeaf(*shapes[seed_unit].scan));
    const double multiway_est = estimator.Annotate(node.get());
    const double seed_est = node->children[0]->est_rows;
    if (multiway_est < 0.0 || seed_est < 0.0) continue;
    const double multiway_cost = seed_est + multiway_est;

    const GreedyFold fold = GreedyJoinFold(
        *units, std::vector<size_t>(consumed.begin(), consumed.end()),
        &estimator);
    double binary_cost = 0.0;
    for (size_t u : fold.order) binary_cost += (*units)[u].est;
    for (double join_est : fold.join_ests) binary_cost += join_est;
    if (!(multiway_cost < binary_cost)) continue;

    // Commit: the real seed scan becomes the child; consumed units merge
    // into one multiway unit.
    node->children.clear();
    node->children.push_back(
        TakeScan(std::move((*units)[seed_unit].plan)));
    JoinUnit merged;
    merged.est = multiway_est;
    merged.min_source = *consumed.begin();
    for (size_t u : consumed) {
      merged.vars.insert((*units)[u].vars.begin(), (*units)[u].vars.end());
    }
    merged.plan = std::move(node);
    std::vector<JoinUnit> next;
    next.reserve(units->size() - consumed.size() + 1);
    bool placed = false;
    for (size_t i = 0; i < units->size(); ++i) {
      if (consumed.count(i) > 0) {
        if (!placed) {
          next.push_back(std::move(merged));
          placed = true;
        }
        continue;
      }
      next.push_back(std::move((*units)[i]));
    }
    *units = std::move(next);
    return;  // one cycle per clause; nested rewrites are future work
  }
}

PlanPtr Planner::EnumerateJoins(std::vector<JoinUnit> units) {
  const size_t n = units.size();
  CardinalityEstimator estimator(runtime_->context().catalog,
                                 default_location_,
                                 options_.use_column_stats);

  // Per-unit key domains (shared by DP pricing and swap marking).
  std::vector<std::map<std::string, double>> domains(n);
  for (size_t i = 0; i < n; ++i) {
    for (const auto& v : units[i].vars) {
      domains[i][v] = estimator.VarDomain(*units[i].plan, v);
    }
  }

  auto make_join = [&](PlanPtr left, PlanPtr right,
                       const std::set<std::string>& shared, double left_est,
                       double right_est) {
    auto join = MakePlan(PlanOp::kHashJoin);
    join->join_vars.assign(shared.begin(), shared.end());
    join->join_correlated = !join->join_vars.empty();
    // Build-side rule: HashJoin builds over its right input; when the
    // right (fresh) side dwarfs the accumulated left, building over the
    // left is cheaper. The executor re-merges canonically, so this is
    // invisible to schema, provenance and the result set.
    if (options_.choose_build_side && left_est >= 0.0 &&
        right_est > kSwapBuildFactor * left_est) {
      join->swap_build = true;
    }
    join->children.push_back(std::move(left));
    join->children.push_back(std::move(right));
    return join;
  };

  auto side_domain = [&](const std::vector<size_t>& members,
                         const std::string& v) {
    double dom = -1.0;
    for (size_t u : members) {
      auto it = domains[u].find(v);
      if (it == domains[u].end() || it->second < 0.0) continue;
      if (dom < 0.0 || it->second < dom) dom = it->second;
    }
    return dom;
  };

  if (n > kMaxDpUnits) {
    // Greedy smallest-first left-deep — the pre-DP rule, for pathological
    // clause sizes where 3^n subset splits would not pay off. The fold
    // (order + join estimates) is the same computation the cycle rewrite
    // prices its binary alternative with.
    std::vector<size_t> members(n);
    std::iota(members.begin(), members.end(), size_t{0});
    const GreedyFold fold =
        GreedyJoinFold(units, std::move(members), &estimator);
    PlanPtr plan = std::move(units[fold.order[0]].plan);
    double acc_est = units[fold.order[0]].est;
    std::set<std::string> bound = units[fold.order[0]].vars;
    for (size_t i = 1; i < fold.order.size(); ++i) {
      JoinUnit& unit = units[fold.order[i]];
      std::set<std::string> shared;
      for (const auto& v : unit.vars) {
        if (bound.count(v) > 0) shared.insert(v);
      }
      plan = make_join(std::move(plan), std::move(unit.plan), shared,
                       acc_est, unit.est);
      acc_est = fold.join_ests[i - 1];
      bound.insert(unit.vars.begin(), unit.vars.end());
    }
    return plan;
  }

  // DP over subsets, minimizing C_out (the summed intermediate join
  // cardinality). Cross-product splits participate too — their estimates
  // price them out unless nothing connected exists.
  const size_t full = (size_t{1} << n) - 1;
  std::vector<double> cost(full + 1,
                           std::numeric_limits<double>::infinity());
  std::vector<double> est(full + 1, -1.0);
  std::vector<size_t> left_of(full + 1, 0);  // 0 = leaf
  std::vector<std::set<std::string>> mask_vars(full + 1);
  std::vector<std::vector<size_t>> members(full + 1);
  std::vector<size_t> min_source(full + 1, 0);

  for (size_t i = 0; i < n; ++i) {
    const size_t m = size_t{1} << i;
    cost[m] = 0.0;
    est[m] = units[i].est;
    mask_vars[m] = units[i].vars;
    members[m] = {i};
    min_source[m] = units[i].min_source;
  }

  for (size_t mask = 1; mask <= full; ++mask) {
    if ((mask & (mask - 1)) == 0) continue;  // singleton
    for (size_t i = 0; i < n; ++i) {
      if (mask & (size_t{1} << i)) {
        members[mask].push_back(i);
        mask_vars[mask].insert(units[i].vars.begin(), units[i].vars.end());
      }
    }
    min_source[mask] = units[members[mask].front()].min_source;
    for (size_t i : members[mask]) {
      min_source[mask] = std::min(min_source[mask], units[i].min_source);
    }
    for (size_t s = (mask - 1) & mask; s > 0; s = (s - 1) & mask) {
      const size_t t = mask ^ s;
      if (s > t) continue;  // each unordered split once
      std::set<std::string> shared;
      std::vector<std::pair<double, double>> key_domains;
      for (const auto& v : mask_vars[s]) {
        if (mask_vars[t].count(v) == 0) continue;
        shared.insert(v);
        key_domains.emplace_back(side_domain(members[s], v),
                                 side_domain(members[t], v));
      }
      const double join_est = CardinalityEstimator::JoinEstimate(
          est[s], est[t], !shared.empty(), key_domains,
          options_.use_column_stats);
      const double c = cost[s] + cost[t] + join_est;
      // Always record the first split: with astronomically large
      // estimates every candidate cost can overflow to +inf, and a
      // multi-unit mask must still reconstruct as a join, not a leaf.
      if (left_of[mask] == 0 || c < cost[mask]) {
        cost[mask] = c;
        est[mask] = join_est;
        // Orientation: the smaller side accumulates on the left (what the
        // greedy smallest-first rule produced for two units); ties go to
        // the side appearing first in the source.
        const bool s_left =
            est[s] < est[t] ||
            (est[s] == est[t] && min_source[s] <= min_source[t]);
        left_of[mask] = s_left ? s : t;
      }
    }
  }

  std::function<PlanPtr(size_t)> build = [&](size_t mask) -> PlanPtr {
    if (left_of[mask] == 0) {
      size_t i = 0;
      while ((size_t{1} << i) != mask) ++i;
      return std::move(units[i].plan);
    }
    const size_t l = left_of[mask];
    const size_t r = mask ^ l;
    std::set<std::string> shared;
    for (const auto& v : mask_vars[l]) {
      if (mask_vars[r].count(v) > 0) shared.insert(v);
    }
    PlanPtr left = build(l);
    PlanPtr right = build(r);
    return make_join(std::move(left), std::move(right), shared, est[l],
                     est[r]);
  };
  return build(full);
}

Result<PlanPtr> Planner::PlanPatternsJoined(
    const std::vector<GraphPattern>& patterns,
    const std::map<std::string, std::vector<const Expr*>>* pushdown) {
  std::vector<PlanPtr> chains;
  chains.reserve(patterns.size());
  for (const auto& pattern : patterns) {
    GCORE_ASSIGN_OR_RETURN(PlanPtr chain, PlanChain(pattern, pushdown));
    chains.push_back(std::move(chain));
  }
  if (chains.empty()) {
    return Status::BindError("MATCH clause has no pattern");
  }

  std::vector<JoinUnit> units(chains.size());
  for (size_t i = 0; i < chains.size(); ++i) {
    units[i].plan = std::move(chains[i]);
    CollectChainVars(patterns[i], &units[i].vars);
    units[i].min_source = i;
  }

  // A lone chain can still hold a cycle (a closed walk re-using its start
  // variable); only then is single-chain estimation worth the scan.
  auto single_chain_cycle = [&]() {
    if (patterns.size() != 1) return false;
    size_t edge_hops = 0;
    std::map<std::string, size_t> node_var_uses;
    ++node_var_uses[patterns[0].start.var];
    for (const auto& hop : patterns[0].hops) {
      if (hop.kind == PatternHop::Kind::kEdge) ++edge_hops;
      ++node_var_uses[hop.to.var];
    }
    if (edge_hops < 3) return false;
    for (const auto& [v, uses] : node_var_uses) {
      if (!v.empty() && uses > 1) return true;
    }
    return false;
  };

  // Estimation rule: estimate when the join enumeration needs to compare
  // alternatives (several chains) or when a single chain might close a
  // rewritable cycle. Stays in source order when disabled or when any
  // estimate is unknown (keeping the plan deterministic under missing
  // statistics).
  bool all_known = false;
  const bool want_estimates =
      options_.reorder_joins &&
      (units.size() > 1 ||
       (options_.enable_multiway && options_.use_column_stats &&
        single_chain_cycle()));
  if (want_estimates) {
    CardinalityEstimator estimator(runtime_->context().catalog,
                                   default_location_,
                                   options_.use_column_stats);
    all_known = true;
    for (auto& unit : units) {
      unit.est = estimator.Annotate(unit.plan.get());
      if (unit.est < 0.0) all_known = false;
    }
  }

  if (all_known && options_.enable_multiway && options_.use_column_stats) {
    TryMultiwayRewrite(&units);
  }

  if (units.size() == 1) return std::move(units[0].plan);

  if (!all_known) {
    // Source-order left-deep fold — the seed behavior under missing
    // statistics or reorder_joins = false.
    PlanPtr plan = std::move(units[0].plan);
    std::set<std::string> bound = units[0].vars;
    for (size_t i = 1; i < units.size(); ++i) {
      auto join = MakePlan(PlanOp::kHashJoin);
      for (const auto& v : units[i].vars) {
        if (bound.count(v) > 0) join->join_vars.push_back(v);
      }
      join->join_correlated = !join->join_vars.empty();
      join->children.push_back(std::move(plan));
      join->children.push_back(std::move(units[i].plan));
      bound.insert(units[i].vars.begin(), units[i].vars.end());
      plan = std::move(join);
    }
    return plan;
  }

  return EnumerateJoins(std::move(units));
}

void Planner::CollectOutputColumns(const GraphPattern& pattern,
                                   std::vector<std::string>* out) const {
  auto add = [out](const std::string& name) {
    if (name.empty()) return;
    if (std::find(out->begin(), out->end(), name) == out->end()) {
      out->push_back(name);
    }
  };
  auto add_bind_props = [&](const std::vector<PropPattern>& props) {
    for (const auto& p : props) {
      if (p.mode == PropPattern::Mode::kBindVariable) add(p.bind_var);
    }
  };
  // Mirrors the column-creation order of chain evaluation: element
  // variable(s) first, then the bind-variables of their property maps.
  add(pattern.start.var);
  add_bind_props(pattern.start.props);
  for (const auto& hop : pattern.hops) {
    if (hop.kind == PatternHop::Kind::kEdge) {
      add(hop.edge.var);
      add(hop.to.var);
      add_bind_props(hop.edge.props);
      add_bind_props(hop.to.props);
    } else {
      add(hop.path.var);
      add(hop.to.var);
      if (!hop.path.cost_var.empty()) add(hop.path.cost_var);
      add_bind_props(hop.to.props);
    }
  }
}

Result<PlanPtr> Planner::PlanMatch(const MatchClause& match) {
  clause_override_ = ClauseOnOverride(match);
  default_location_ = clause_override_.empty()
                          ? runtime_->context().default_graph
                          : clause_override_;

  GCORE_RETURN_NOT_OK(CheckOptionalVariableSharing(match));

  // Pushdown rule: single-variable AND-conjuncts of the WHERE clause are
  // attached to the operator binding their variable.
  std::map<std::string, std::vector<const Expr*>> pushdown;
  if (match.where != nullptr && options_.enable_pushdown) {
    CollectSingleVarConjuncts(*match.where, &pushdown);
  }

  GCORE_ASSIGN_OR_RETURN(
      PlanPtr plan,
      PlanPatternsJoined(match.patterns,
                         pushdown.empty() ? nullptr : &pushdown));

  if (match.where != nullptr) {
    auto filter = MakePlan(PlanOp::kFilter);
    filter->predicate = match.where.get();
    filter->children.push_back(std::move(plan));
    plan = std::move(filter);
  }

  // OPTIONAL blocks chain with left outer joins in source order
  // (Appendix A.2); block WHEREs filter the block before the join, so
  // their single-variable conjuncts push into the block's own chains
  // exactly like the main WHERE does above (the residual block filter
  // re-checks them, keeping the ⟕ semantics literal).
  for (const auto& block : match.optionals) {
    std::map<std::string, std::vector<const Expr*>> block_pushdown;
    if (block.where != nullptr && options_.enable_pushdown) {
      CollectSingleVarConjuncts(*block.where, &block_pushdown);
    }
    GCORE_ASSIGN_OR_RETURN(
        PlanPtr block_plan,
        PlanPatternsJoined(block.patterns,
                           block_pushdown.empty() ? nullptr
                                                  : &block_pushdown));
    if (block.where != nullptr) {
      auto filter = MakePlan(PlanOp::kFilter);
      filter->predicate = block.where.get();
      filter->children.push_back(std::move(block_plan));
      block_plan = std::move(filter);
    }
    auto outer = MakePlan(PlanOp::kLeftOuterJoin);
    outer->children.push_back(std::move(plan));
    outer->children.push_back(std::move(block_plan));
    plan = std::move(outer);
  }

  auto project = MakePlan(PlanOp::kProject);
  {
    ExecContext exec;
    exec.parallelism = options_.parallelism;
    project->parallelism = exec.Degree();
  }
  for (const auto& pattern : match.patterns) {
    CollectOutputColumns(pattern, &project->output);
  }
  for (const auto& block : match.optionals) {
    for (const auto& pattern : block.patterns) {
      CollectOutputColumns(pattern, &project->output);
    }
  }
  project->output.erase(
      std::remove_if(project->output.begin(), project->output.end(),
                     IsInternalColumn),
      project->output.end());
  project->children.push_back(std::move(plan));
  return project;
}

void Planner::AnnotateEstimates(PlanNode* plan) const {
  CardinalityEstimator estimator(runtime_->context().catalog,
                                 default_location_,
                                 options_.use_column_stats);
  estimator.Annotate(plan);
}

}  // namespace gcore
