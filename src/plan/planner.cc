#include "plan/planner.h"

#include <algorithm>
#include <numeric>
#include <set>

#include "eval/matcher.h"
#include "plan/cost.h"
#include "plan/executor.h"

namespace gcore {

PlannerOptions PlannerOptions::FromContext(const MatcherContext& ctx) {
  PlannerOptions options;
  options.enable_pushdown = ctx.enable_pushdown;
  options.reorder_joins = ctx.reorder_joins;
  options.use_column_stats = ctx.use_column_stats;
  options.parallelism = ctx.parallelism;
  return options;
}

Planner::Planner(Matcher* runtime, PlannerOptions options)
    : runtime_(runtime), options_(options) {}

std::string Planner::EffectiveLocation(const GraphPattern& pattern) const {
  const auto* overrides = runtime_->context().location_overrides;
  if (overrides != nullptr) {
    auto it = overrides->find(&pattern);
    if (it != overrides->end()) return it->second;
  }
  if (pattern.on_subquery != nullptr) {
    // Only reachable in EXPLAIN mode: execution materializes subquery
    // locations into overrides before planning.
    return "(subquery)";
  }
  if (!pattern.on_graph.empty()) return pattern.on_graph;
  return clause_override_;
}

void Planner::AttachPushed(
    PlanNode* node, const std::string& var,
    const std::map<std::string, std::vector<const Expr*>>* pushdown) {
  if (pushdown == nullptr) return;
  auto it = pushdown->find(var);
  if (it == pushdown->end()) return;
  node->pushed.insert(node->pushed.end(), it->second.begin(),
                      it->second.end());
}

Result<PlanPtr> Planner::PlanChain(
    const GraphPattern& pattern,
    const std::map<std::string, std::vector<const Expr*>>* pushdown) {
  const std::string location = EffectiveLocation(pattern);

  auto scan = MakePlan(PlanOp::kNodeScan);
  scan->graph = location;
  scan->node = &pattern.start;
  scan->var = pattern.start.var.empty() ? runtime_->FreshAnonName()
                                        : pattern.start.var;
  AttachPushed(scan.get(), scan->var, pushdown);

  PlanPtr plan = std::move(scan);
  std::string prev_var = plan->var;
  for (const auto& hop : pattern.hops) {
    const std::string to_var =
        hop.to.var.empty() ? runtime_->FreshAnonName() : hop.to.var;
    if (hop.kind == PatternHop::Kind::kEdge) {
      auto expand = MakePlan(PlanOp::kExpandEdge);
      expand->graph = location;
      expand->from_var = prev_var;
      expand->edge = &hop.edge;
      expand->edge_var = hop.edge.var.empty() ? runtime_->FreshAnonName()
                                              : hop.edge.var;
      expand->to = &hop.to;
      expand->to_var = to_var;
      // Same application order as the legacy walk: the edge variable's
      // conjuncts run before the target node's.
      AttachPushed(expand.get(), expand->edge_var, pushdown);
      AttachPushed(expand.get(), to_var, pushdown);
      expand->children.push_back(std::move(plan));
      plan = std::move(expand);
    } else {
      auto search = MakePlan(PlanOp::kPathSearch);
      search->graph = location;
      search->from_var = prev_var;
      search->path = &hop.path;
      search->path_var =
          hop.path.var.empty()
              ? (hop.path.mode == PathPattern::Mode::kReachability
                     ? std::string()
                     : runtime_->FreshAnonName())
              : hop.path.var;
      search->to = &hop.to;
      search->to_var = to_var;
      AttachPushed(search.get(), to_var, pushdown);
      search->children.push_back(std::move(plan));
      plan = std::move(search);
    }
    prev_var = to_var;
  }
  return plan;
}

namespace {

void CollectChainVars(const GraphPattern& pattern,
                      std::set<std::string>* out) {
  std::vector<std::string> vars;
  pattern.CollectBoundVariables(&vars);
  out->insert(vars.begin(), vars.end());
}

}  // namespace

Result<PlanPtr> Planner::PlanPatternsJoined(
    const std::vector<GraphPattern>& patterns,
    const std::map<std::string, std::vector<const Expr*>>* pushdown) {
  std::vector<PlanPtr> chains;
  chains.reserve(patterns.size());
  for (const auto& pattern : patterns) {
    GCORE_ASSIGN_OR_RETURN(PlanPtr chain, PlanChain(pattern, pushdown));
    chains.push_back(std::move(chain));
  }
  if (chains.empty()) {
    return Status::BindError("MATCH clause has no pattern");
  }

  // Chain-ordering rule: estimate each chain and join smallest-first.
  // Stays in source order when disabled or when any estimate is unknown
  // (keeping the plan deterministic under missing statistics).
  std::vector<size_t> order(chains.size());
  std::iota(order.begin(), order.end(), size_t{0});
  if (options_.reorder_joins && chains.size() > 1) {
    CardinalityEstimator estimator(runtime_->context().catalog,
                                   default_location_,
                                   options_.use_column_stats);
    bool all_known = true;
    for (auto& chain : chains) {
      if (estimator.Annotate(chain.get()) < 0.0) all_known = false;
    }
    if (all_known) {
      std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return chains[a]->est_rows < chains[b]->est_rows;
      });
    }
  }

  std::vector<std::set<std::string>> chain_vars(patterns.size());
  for (size_t i = 0; i < patterns.size(); ++i) {
    CollectChainVars(patterns[i], &chain_vars[i]);
  }

  PlanPtr plan = std::move(chains[order[0]]);
  std::set<std::string> bound = chain_vars[order[0]];
  for (size_t i = 1; i < order.size(); ++i) {
    auto join = MakePlan(PlanOp::kHashJoin);
    for (const auto& v : chain_vars[order[i]]) {
      if (bound.count(v) > 0) join->join_vars.push_back(v);
    }
    join->join_correlated = !join->join_vars.empty();
    join->children.push_back(std::move(plan));
    join->children.push_back(std::move(chains[order[i]]));
    bound.insert(chain_vars[order[i]].begin(), chain_vars[order[i]].end());
    plan = std::move(join);
  }
  return plan;
}

void Planner::CollectOutputColumns(const GraphPattern& pattern,
                                   std::vector<std::string>* out) const {
  auto add = [out](const std::string& name) {
    if (name.empty()) return;
    if (std::find(out->begin(), out->end(), name) == out->end()) {
      out->push_back(name);
    }
  };
  auto add_bind_props = [&](const std::vector<PropPattern>& props) {
    for (const auto& p : props) {
      if (p.mode == PropPattern::Mode::kBindVariable) add(p.bind_var);
    }
  };
  // Mirrors the column-creation order of chain evaluation: element
  // variable(s) first, then the bind-variables of their property maps.
  add(pattern.start.var);
  add_bind_props(pattern.start.props);
  for (const auto& hop : pattern.hops) {
    if (hop.kind == PatternHop::Kind::kEdge) {
      add(hop.edge.var);
      add(hop.to.var);
      add_bind_props(hop.edge.props);
      add_bind_props(hop.to.props);
    } else {
      add(hop.path.var);
      add(hop.to.var);
      if (!hop.path.cost_var.empty()) add(hop.path.cost_var);
      add_bind_props(hop.to.props);
    }
  }
}

Result<PlanPtr> Planner::PlanMatch(const MatchClause& match) {
  clause_override_ = ClauseOnOverride(match);
  default_location_ = clause_override_.empty()
                          ? runtime_->context().default_graph
                          : clause_override_;

  GCORE_RETURN_NOT_OK(CheckOptionalVariableSharing(match));

  // Pushdown rule: single-variable AND-conjuncts of the WHERE clause are
  // attached to the operator binding their variable.
  std::map<std::string, std::vector<const Expr*>> pushdown;
  if (match.where != nullptr && options_.enable_pushdown) {
    CollectSingleVarConjuncts(*match.where, &pushdown);
  }

  GCORE_ASSIGN_OR_RETURN(
      PlanPtr plan,
      PlanPatternsJoined(match.patterns,
                         pushdown.empty() ? nullptr : &pushdown));

  if (match.where != nullptr) {
    auto filter = MakePlan(PlanOp::kFilter);
    filter->predicate = match.where.get();
    filter->children.push_back(std::move(plan));
    plan = std::move(filter);
  }

  // OPTIONAL blocks chain with left outer joins in source order
  // (Appendix A.2); block WHEREs filter the block before the join, so
  // their single-variable conjuncts push into the block's own chains
  // exactly like the main WHERE does above (the residual block filter
  // re-checks them, keeping the ⟕ semantics literal).
  for (const auto& block : match.optionals) {
    std::map<std::string, std::vector<const Expr*>> block_pushdown;
    if (block.where != nullptr && options_.enable_pushdown) {
      CollectSingleVarConjuncts(*block.where, &block_pushdown);
    }
    GCORE_ASSIGN_OR_RETURN(
        PlanPtr block_plan,
        PlanPatternsJoined(block.patterns,
                           block_pushdown.empty() ? nullptr
                                                  : &block_pushdown));
    if (block.where != nullptr) {
      auto filter = MakePlan(PlanOp::kFilter);
      filter->predicate = block.where.get();
      filter->children.push_back(std::move(block_plan));
      block_plan = std::move(filter);
    }
    auto outer = MakePlan(PlanOp::kLeftOuterJoin);
    outer->children.push_back(std::move(plan));
    outer->children.push_back(std::move(block_plan));
    plan = std::move(outer);
  }

  auto project = MakePlan(PlanOp::kProject);
  {
    ExecContext exec;
    exec.parallelism = options_.parallelism;
    project->parallelism = exec.Degree();
  }
  for (const auto& pattern : match.patterns) {
    CollectOutputColumns(pattern, &project->output);
  }
  for (const auto& block : match.optionals) {
    for (const auto& pattern : block.patterns) {
      CollectOutputColumns(pattern, &project->output);
    }
  }
  project->output.erase(
      std::remove_if(project->output.begin(), project->output.end(),
                     IsInternalColumn),
      project->output.end());
  project->children.push_back(std::move(plan));
  return project;
}

void Planner::AnnotateEstimates(PlanNode* plan) const {
  CardinalityEstimator estimator(runtime_->context().catalog,
                                 default_location_,
                                 options_.use_column_stats);
  estimator.Annotate(plan);
}

}  // namespace gcore
