// Worst-case-optimal multiway intersection for cyclic patterns: the
// physical evaluation of PlanOp::kMultiwayExpand.
//
// A MultiwayExpand node carries k pattern edges closing a cycle over
// shared node variables; its child binds at least one of them (the seed,
// typically a NodeScan). Instead of materializing binary-join
// intermediates — provably Θ(N·d) for a triangle under *any* binary plan
// — the operator eliminates one free variable at a time in leapfrog
// style: the candidate set of a variable is the sorted-merge
// *intersection* of the adjacency lists of its already-bound neighbors
// (AdjacencyIndex's sorted-neighbor view), so work is proportional to
// the smallest incident adjacency list, matching the AGM-bound flavor of
// Ngo/Abo Khamis et al. Edge variables bind by enumerating the parallel
// edges between each fixed endpoint pair (binary-search sub-spans).
//
// Output is deterministic: input rows in order; per row, candidates
// ascend by node id and edge bindings ascend by edge id, so the operator
// runs unchanged as a fused per-morsel pipeline stage under the morsel
// protocol (identical results at every parallelism degree).
#ifndef GCORE_PLAN_WCOJ_H_
#define GCORE_PLAN_WCOJ_H_

#include <string>

#include "common/result.h"
#include "eval/binding.h"
#include "plan/plan.h"

namespace gcore {

class Matcher;
class PathPropertyGraph;

/// Applies the cycle of `plan` (a kMultiwayExpand node) to one chunk of
/// bindings: every free cycle variable and every edge variable becomes a
/// new column (feeding columnar BindingTable chunks, like ExpandEdgeHop).
/// Thread-safe for concurrent morsels once the adjacency cache is warm.
Result<BindingTable> MultiwayExpandChunk(Matcher* rt, const PlanNode& plan,
                                         const PathPropertyGraph& graph,
                                         const std::string& graph_name,
                                         const BindingTable& input);

}  // namespace gcore

#endif  // GCORE_PLAN_WCOJ_H_
