#include "plan/explain.h"

#include "eval/matcher.h"
#include "plan/planner.h"

namespace gcore {

namespace {

Result<std::vector<std::string>> RenderBasic(const BasicQuery& basic,
                                             Matcher* runtime) {
  std::vector<std::string> lines;
  lines.push_back(basic.select.has_value() ? "Select" : "Construct");
  std::vector<std::string> sub;
  if (basic.match.has_value()) {
    // Planning never resolves graphs (the estimator reads statistics by
    // name and degrades to unknown), so unmaterialized locations — e.g.
    // ON-subquery graphs that only exist at execution time — are fine.
    Planner planner(runtime, PlannerOptions::FromContext(runtime->context()));
    GCORE_ASSIGN_OR_RETURN(PlanPtr plan, planner.PlanMatch(*basic.match));
    planner.AnnotateEstimates(plan.get());
    sub = plan->RenderLines();
  } else if (!basic.from_table.empty()) {
    sub.push_back("TableScan " + basic.from_table);
  } else {
    sub.push_back("Unit");
  }
  AppendChildLines(sub, /*last=*/true, &lines);
  return lines;
}

Result<std::vector<std::string>> RenderBody(const QueryBody& body,
                                            Matcher* runtime) {
  switch (body.kind) {
    case QueryBody::Kind::kBasic:
      return RenderBasic(*body.basic, runtime);
    case QueryBody::Kind::kGraphRef:
      return std::vector<std::string>{"Graph " + body.graph_ref};
    case QueryBody::Kind::kUnion:
    case QueryBody::Kind::kIntersect:
    case QueryBody::Kind::kMinus: {
      const PlanOp op = body.kind == QueryBody::Kind::kUnion
                            ? PlanOp::kGraphUnion
                            : body.kind == QueryBody::Kind::kIntersect
                                  ? PlanOp::kGraphIntersect
                                  : PlanOp::kGraphMinus;
      std::vector<std::string> lines{PlanOpName(op)};
      GCORE_ASSIGN_OR_RETURN(std::vector<std::string> left,
                             RenderBody(*body.left, runtime));
      GCORE_ASSIGN_OR_RETURN(std::vector<std::string> right,
                             RenderBody(*body.right, runtime));
      AppendChildLines(left, /*last=*/false, &lines);
      AppendChildLines(right, /*last=*/true, &lines);
      return lines;
    }
  }
  return Status::EvaluationError("unhandled query body kind");
}

}  // namespace

Result<std::vector<std::string>> ExplainQuery(const Query& query,
                                              Matcher* runtime) {
  std::vector<std::string> lines;
  for (const auto& path_clause : query.path_clauses) {
    lines.push_back("PathView " + path_clause.name +
                    " (materialized lazily on first reference)");
  }
  for (const auto& graph_clause : query.graph_clauses) {
    lines.push_back(std::string(graph_clause.is_view ? "GraphView "
                                                     : "Graph ") +
                    graph_clause.name + " AS");
    GCORE_ASSIGN_OR_RETURN(std::vector<std::string> sub,
                           ExplainQuery(*graph_clause.query, runtime));
    AppendChildLines(sub, /*last=*/true, &lines);
  }
  if (query.body != nullptr) {
    GCORE_ASSIGN_OR_RETURN(std::vector<std::string> body,
                           RenderBody(*query.body, runtime));
    lines.insert(lines.end(), body.begin(), body.end());
  }
  return lines;
}

}  // namespace gcore
