// Logical plan IR for MATCH evaluation.
//
// The planner (plan/planner.h) lowers a MatchClause AST into a tree of
// PlanNodes; the rule-based optimizer rewrites the tree (predicate
// pushdown into scans/expands — for the main WHERE and per OPTIONAL
// block — and chain ordering by estimated cardinality); the executor
// (plan/executor.h) runs it bottom-up, pulling BindingTable morsels
// through the operators, in parallel between pipeline breakers. EXPLAIN
// renders the optimized tree.
//
// Binding-level operators (executed):
//   NodeScan       — all admitted nodes of one graph into a fresh column
//   ExpandEdge     — one edge hop from a bound node column
//   MultiwayExpand — k pattern edges closing a cycle, evaluated by
//                    worst-case-optimal multiway intersection (wcoj.h)
//   PathSearch     — one path hop (stored / SHORTEST / ALL / reachability)
//   Filter         — residual WHERE predicate
//   HashJoin       — natural join of two subplans; join trees may be
//                    bushy (the planner's DP enumeration), not only
//                    left-deep chains
//   LeftOuterJoin  — OPTIONAL block chaining
//   Project        — drop internal columns, restore set semantics
//
// Graph-level operators (EXPLAIN rendering of full-query set operations):
//   GraphUnion / GraphIntersect / GraphMinus
#ifndef GCORE_PLAN_PLAN_H_
#define GCORE_PLAN_PLAN_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ast/ast.h"

namespace gcore {

enum class PlanOp : uint8_t {
  kNodeScan,
  kExpandEdge,
  kMultiwayExpand,
  kPathSearch,
  kFilter,
  kHashJoin,
  kLeftOuterJoin,
  kProject,
  kGraphUnion,
  kGraphIntersect,
  kGraphMinus,
};

const char* PlanOpName(PlanOp op);

struct PlanNode;
using PlanPtr = std::unique_ptr<PlanNode>;

/// One pattern edge of a MultiwayExpand cycle (kMultiwayExpand). The
/// edge pattern pointer is non-owning into the query AST.
struct MultiwayEdge {
  std::string from_var;
  const EdgePattern* edge = nullptr;
  std::string edge_var;
  std::string to_var;
};

/// One operator of a logical plan. Pattern members are non-owning
/// pointers into the query AST, which outlives the plan.
struct PlanNode {
  PlanOp op{};
  std::vector<PlanPtr> children;

  /// Scans/expands: effective ON location (already combining pattern ON,
  /// clause-level ON and engine location overrides; empty = default
  /// graph). Filter: graph resolving λ/σ fallback lookups.
  std::string graph;

  // kNodeScan
  const NodePattern* node = nullptr;
  std::string var;

  // kExpandEdge / kPathSearch
  std::string from_var;
  const EdgePattern* edge = nullptr;  // kExpandEdge
  std::string edge_var;
  const PathPattern* path = nullptr;  // kPathSearch
  std::string path_var;
  const NodePattern* to = nullptr;
  std::string to_var;

  /// Pushed-down single-variable WHERE conjuncts applied by this operator
  /// as soon as their variable is bound (the optimizer's pushdown rule).
  std::vector<const Expr*> pushed;

  // kFilter
  const Expr* predicate = nullptr;

  // kProject: visible output columns in legacy binding order. Projection
  // always deduplicates (bindings form a set, Appendix A.1).
  std::vector<std::string> output;

  /// kHashJoin: the joined chains share at least one variable (estimation
  /// treats the join as key-correlated rather than a cross product).
  bool join_correlated = false;
  /// kHashJoin: the shared variables (natural-join keys), sorted. The
  /// estimator derives per-key domain sizes from the operators binding
  /// them for its degree-aware join bound.
  std::vector<std::string> join_vars;
  /// kHashJoin: build over the left (accumulated) side instead of the
  /// right — set by the planner's choose_build_side rule when statistics
  /// predict the right side is much larger. The executor re-merges the
  /// swapped join into canonical (left-first) column order, so schema and
  /// provenance are identical either way.
  bool swap_build = false;

  /// kMultiwayExpand: the cycle's pattern edges, in source order. The
  /// child subplan binds at least one of the cycle's node variables (the
  /// seed); the operator binds the remaining node variables by sorted
  /// adjacency-list intersection and every edge variable by enumeration.
  std::vector<MultiwayEdge> multi_edges;
  /// kMultiwayExpand: every node-pattern occurrence of the cycle's
  /// variables absorbed by the rewrite (admission checks for the new
  /// columns; entries for pre-bound variables re-check trivially).
  std::vector<std::pair<std::string, const NodePattern*>> multi_nodes;

  /// kProject (the plan root): resolved morsel-parallel execution degree
  /// the executor will use; 0 = not annotated (plans built outside a
  /// planner). Rendered by EXPLAIN.
  size_t parallelism = 0;

  /// Estimated output rows (plan/cost.h); negative = unknown.
  double est_rows = -1.0;
  /// Measured output rows of the operator's last execution, filled by
  /// EXPLAIN ANALYZE (ExecStats::AnnotateActuals); negative = not run.
  int64_t actual_rows = -1;
  /// Measured wall time (milliseconds) the operator spent producing those
  /// rows, filled next to actual_rows by EXPLAIN ANALYZE; negative = not
  /// run. Pipelined operators report their own work (child Next() time is
  /// excluded at the recording sites); parallel stages sum the time their
  /// workers spent, so actual_ms can exceed the query's wall clock.
  double actual_ms = -1.0;

  PlanNode() = default;
  explicit PlanNode(PlanOp o) : op(o) {}

  /// One-line description of this operator (no children).
  std::string Describe() const;

  /// Multi-line tree rendering (this node and its subtree).
  std::string ToString() const;

  /// Tree rendering as one string per output row.
  std::vector<std::string> RenderLines() const;
};

/// Creates a node of kind `op` with the given children.
PlanPtr MakePlan(PlanOp op, std::vector<PlanPtr> children = {});

/// Distinct node variables of a MultiwayExpand cycle, in first-appearance
/// order over multi_edges (from before to, edge by edge).
std::vector<std::string> MultiwayNodeVars(const PlanNode& node);

/// Deterministic elimination order of the cycle's node variables outside
/// `bound`: repeatedly the free variable with the most pattern edges into
/// the bound/placed set, ties broken by first appearance. The executor
/// and the cost model's degree bound walk the same order.
std::vector<std::string> MultiwayEliminationOrder(
    const PlanNode& node, const std::set<std::string>& bound);

/// Appends a rendered child subtree to `lines` with the box-drawing
/// prefixes of PlanNode::RenderLines (shared with the EXPLAIN wrappers).
void AppendChildLines(const std::vector<std::string>& child, bool last,
                      std::vector<std::string>* lines);

}  // namespace gcore

#endif  // GCORE_PLAN_PLAN_H_
