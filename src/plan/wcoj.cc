#include "plan/wcoj.h"

#include <algorithm>
#include <functional>
#include <set>
#include <vector>

#include "eval/matcher.h"
#include "graph/adjacency.h"
#include "graph/snapshot.h"

namespace gcore {

namespace {

using EntrySpan = AdjacencyIndex::EntrySpan;

constexpr size_t kNpos = BindingTable::kNpos;

/// Chunk-lifetime admission test for one pattern edge, compiled once
/// against the snapshot's interned labels and typed property columns.
/// The per-edge test is a span probe plus inline cell compares — cheap
/// enough for the intersection hot path without a verdict memo.
class EdgePred {
 public:
  EdgePred(const GraphSnapshot& snap, const EdgePattern& pattern)
      : snap_(&snap), pred_(SnapshotPred::ForEdge(snap, pattern)) {}

  bool Admits(EdgeId id) const {
    // Unconstrained patterns admit everything — skip the index lookup.
    if (pred_.unconstrained()) return true;
    return pred_.Admits(snap_->EdgeIndexOf(id));
  }

  /// Span-entry form: the CSR entry carries its dense edge index, so no
  /// binary search is needed.
  bool Admits(const AdjacencyEntry& e) const {
    if (pred_.unconstrained()) return true;
    return pred_.Admits(e.edge_dense);
  }

 private:
  const GraphSnapshot* snap_;
  SnapshotPred pred_;
};

/// Appends the label/prop-admitted neighbors of `u` along pattern edge
/// `me` to `out`. `away` is true when `u` is the edge's from-endpoint
/// (the pattern arrow leaves u). Each span is (neighbor, edge)-sorted, so
/// the result is sorted; parallel edges leave duplicates for the caller's
/// unique pass.
void CollectNeighbors(const AdjacencyIndex& adj, const MultiwayEdge& me,
                      const EdgePred& pred, bool away, DenseNodeIndex u,
                      std::vector<DenseNodeIndex>* out) {
  auto collect = [&](EntrySpan span) {
    for (const AdjacencyEntry* it = span.begin; it != span.end; ++it) {
      if (pred.Admits(*it)) {
        out->push_back(it->neighbor);
      }
    }
  };
  switch (me.edge->direction) {
    case EdgePattern::Direction::kRight:
      collect(away ? adj.OutSorted(u) : adj.InSorted(u));
      break;
    case EdgePattern::Direction::kLeft:
      collect(away ? adj.InSorted(u) : adj.OutSorted(u));
      break;
    case EdgePattern::Direction::kUndirected:
      collect(adj.OutSorted(u));
      collect(adj.InSorted(u));
      std::sort(out->begin(), out->end());
      break;
  }
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

/// Admitted edges between the bound endpoints of `me` (from at dense
/// index `from`, to at `to`) into `out` (cleared), ascending by edge id.
void MatchingEdges(const AdjacencyIndex& adj, const MultiwayEdge& me,
                   const EdgePred& pred, DenseNodeIndex from,
                   DenseNodeIndex to, std::vector<EdgeId>* out) {
  out->clear();
  auto collect = [&](EntrySpan span) {
    const EntrySpan hits = AdjacencyIndex::EdgesTo(span, to);
    for (const AdjacencyEntry* it = hits.begin; it != hits.end; ++it) {
      if (pred.Admits(*it)) {
        out->push_back(it->edge);
      }
    }
  };
  switch (me.edge->direction) {
    case EdgePattern::Direction::kRight:
      collect(adj.OutSorted(from));
      break;
    case EdgePattern::Direction::kLeft:
      collect(adj.InSorted(from));
      break;
    case EdgePattern::Direction::kUndirected:
      collect(adj.OutSorted(from));
      collect(adj.InSorted(from));
      std::sort(out->begin(), out->end());
      out->erase(std::unique(out->begin(), out->end()), out->end());
      break;
  }
}

/// Progressive sorted intersection into `acc`, smallest list first (the
/// leapfrog step: total work tracks the smallest incident adjacency
/// list). `tmp` is caller-owned scratch.
void IntersectSorted(std::vector<std::vector<DenseNodeIndex>>* lists,
                     std::vector<DenseNodeIndex>* acc,
                     std::vector<DenseNodeIndex>* tmp) {
  std::sort(lists->begin(), lists->end(),
            [](const std::vector<DenseNodeIndex>& a,
               const std::vector<DenseNodeIndex>& b) {
              return a.size() < b.size();
            });
  acc->swap((*lists)[0]);
  for (size_t i = 1; i < lists->size() && !acc->empty(); ++i) {
    tmp->clear();
    std::set_intersection(acc->begin(), acc->end(), (*lists)[i].begin(),
                          (*lists)[i].end(), std::back_inserter(*tmp));
    acc->swap(*tmp);
  }
}

/// One elimination step: the variable it places (kNpos for the initial
/// bound-only step), the admission patterns of that variable, and the
/// pattern edges whose endpoints are all bound once it is placed.
struct Step {
  size_t var_slot = kNpos;
  std::vector<SnapshotPred> checks;
  std::vector<size_t> edges;
};

}  // namespace

Result<BindingTable> MultiwayExpandChunk(Matcher* rt, const PlanNode& plan,
                                         const PathPropertyGraph& graph,
                                         const std::string& graph_name,
                                         const BindingTable& input) {
  const GraphSnapshot& snap = rt->Snapshot(graph);
  const AdjacencyIndex& adj = snap.adjacency();
  const std::vector<std::string> vars = MultiwayNodeVars(plan);
  const size_t nvars = vars.size();
  const size_t nedges = plan.multi_edges.size();
  auto slot_of = [&](const std::string& v) {
    return static_cast<size_t>(
        std::find(vars.begin(), vars.end(), v) - vars.begin());
  };

  std::vector<size_t> input_col(nvars, kNpos);
  std::set<std::string> bound;
  for (size_t i = 0; i < nvars; ++i) {
    input_col[i] = input.ColumnIndex(vars[i]);
    if (input_col[i] != kNpos) bound.insert(vars[i]);
  }
  if (bound.empty()) {
    return Status::EvaluationError(
        "MultiwayExpand child binds no cycle variable");
  }
  const std::vector<std::string> order =
      MultiwayEliminationOrder(plan, bound);

  // Output schema: the input prefix, then the eliminated node variables
  // in order, then every edge variable in cycle order.
  BindingTable out(input.columns());
  for (const auto& [v, g] : input.column_graphs()) out.SetColumnGraph(v, g);
  std::vector<size_t> var_out_col(nvars, kNpos);
  for (const std::string& v : order) {
    var_out_col[slot_of(v)] = out.AddColumn(v);
    out.SetColumnGraph(v, graph_name);
  }
  std::vector<size_t> edge_out_col(nedges, kNpos);
  for (size_t e = 0; e < nedges; ++e) {
    edge_out_col[e] = out.AddColumn(plan.multi_edges[e].edge_var);
    out.SetColumnGraph(plan.multi_edges[e].edge_var, graph_name);
  }

  // Per-edge endpoint slots, resolved once — the inner loops must not
  // re-scan variable names.
  std::vector<size_t> from_slot(nedges);
  std::vector<size_t> to_slot(nedges);
  for (size_t e = 0; e < nedges; ++e) {
    from_slot[e] = slot_of(plan.multi_edges[e].from_var);
    to_slot[e] = slot_of(plan.multi_edges[e].to_var);
  }

  // Step of each variable (0 = bound by the child) and of each edge (the
  // later of its endpoints' steps).
  std::vector<size_t> var_step(nvars, 0);
  for (size_t i = 0; i < order.size(); ++i) {
    var_step[slot_of(order[i])] = i + 1;
  }
  std::vector<Step> steps(order.size() + 1);
  for (size_t i = 0; i < order.size(); ++i) {
    steps[i + 1].var_slot = slot_of(order[i]);
  }
  for (size_t e = 0; e < nedges; ++e) {
    const size_t s = std::max(var_step[from_slot[e]], var_step[to_slot[e]]);
    steps[s].edges.push_back(e);
  }
  // Admission checks: free variables check at their own step; absorbed
  // occurrences of pre-bound variables re-check in step 0. Compiled to
  // snapshot predicates once per chunk; candidates arrive as dense
  // indices, so the per-candidate test never resolves an id.
  std::vector<std::pair<size_t, SnapshotPred>> bound_checks;
  for (const auto& [v, pattern] : plan.multi_nodes) {
    if (pattern == nullptr) continue;
    const size_t slot = slot_of(v);
    if (slot >= nvars) continue;  // not a cycle node variable
    if (var_step[slot] == 0) {
      bound_checks.emplace_back(slot, SnapshotPred::ForNode(snap, *pattern));
    } else {
      steps[var_step[slot]].checks.push_back(
          SnapshotPred::ForNode(snap, *pattern));
    }
  }

  std::vector<EdgePred> preds;
  preds.reserve(nedges);
  for (size_t e = 0; e < nedges; ++e) {
    preds.emplace_back(snap, *plan.multi_edges[e].edge);
  }

  // Chunk-lifetime scratch, reused across rows: each pattern edge owns
  // its parallel-edge-id buffer (an edge is enumerated at exactly one
  // step, and deeper recursion only touches other edges), and each step
  // owns its candidate-list/intersection buffers (deeper steps own their
  // own) — the inner loops allocate nothing once warm.
  std::vector<std::vector<EdgeId>> edge_ids(nedges);
  struct StepScratch {
    std::vector<std::vector<DenseNodeIndex>> lists;
    std::vector<DenseNodeIndex> candidates;
    std::vector<DenseNodeIndex> tmp;
  };
  std::vector<StepScratch> scratch(steps.size());
  for (size_t s = 0; s < steps.size(); ++s) {
    scratch[s].lists.resize(steps[s].edges.size());
  }

  std::vector<DenseNodeIndex> cur_node(nvars, 0);
  std::vector<EdgeId> cur_edge(nedges, EdgeId(0));
  size_t input_row = 0;
  Status st = Status::OK();

  std::function<void(size_t)> run_step;
  // Binds the step's edges (cross product of parallel-edge choices, each
  // list ascending by edge id) and descends.
  auto bind_edges = [&](size_t s, size_t k, auto&& self) -> void {
    if (!st.ok()) return;
    const Step& step = steps[s];
    if (k == step.edges.size()) {
      run_step(s + 1);
      return;
    }
    const size_t e = step.edges[k];
    const MultiwayEdge& me = plan.multi_edges[e];
    MatchingEdges(adj, me, preds[e], cur_node[from_slot[e]],
                  cur_node[to_slot[e]], &edge_ids[e]);
    for (EdgeId id : edge_ids[e]) {
      cur_edge[e] = id;
      self(s, k + 1, self);
      if (!st.ok()) return;
    }
  };

  run_step = [&](size_t s) {
    if (!st.ok()) return;
    if (s == steps.size()) {
      out.AppendRowFrom(input, input_row);
      const size_t row = out.NumRows() - 1;
      for (size_t i = 0; i < nvars; ++i) {
        if (var_out_col[i] != kNpos) {
          out.SetCell(row, var_out_col[i],
                      Datum::OfNode(adj.IdOf(cur_node[i])));
        }
      }
      for (size_t e = 0; e < nedges; ++e) {
        out.SetCell(row, edge_out_col[e], Datum::OfEdge(cur_edge[e]));
      }
      return;
    }
    const Step& step = steps[s];
    if (step.var_slot == kNpos) {
      bind_edges(s, 0, bind_edges);
      return;
    }
    // Candidate set of the step's variable: intersect the sorted
    // admitted-neighbor lists of its already-bound endpoints.
    StepScratch& sc = scratch[s];
    if (sc.lists.empty()) {
      st = Status::EvaluationError(
          "MultiwayExpand cycle variable has no bound neighbor");
      return;
    }
    for (size_t k = 0; k < step.edges.size(); ++k) {
      const size_t e = step.edges[k];
      const MultiwayEdge& me = plan.multi_edges[e];
      const bool v_is_from = from_slot[e] == step.var_slot;
      const size_t other = v_is_from ? to_slot[e] : from_slot[e];
      sc.lists[k].clear();
      CollectNeighbors(adj, me, preds[e], /*away=*/!v_is_from,
                       cur_node[other], &sc.lists[k]);
    }
    IntersectSorted(&sc.lists, &sc.candidates, &sc.tmp);
    for (const DenseNodeIndex candidate : sc.candidates) {
      bool admitted = true;
      for (const SnapshotPred& check : step.checks) {
        if (!check.Admits(candidate)) {
          admitted = false;
          break;
        }
      }
      if (!admitted) continue;
      cur_node[step.var_slot] = candidate;
      bind_edges(s, 0, bind_edges);
      if (!st.ok()) return;
    }
  };

  for (input_row = 0; input_row < input.NumRows(); ++input_row) {
    bool row_ok = true;
    for (size_t i = 0; i < nvars && row_ok; ++i) {
      if (input_col[i] == kNpos) continue;
      const Column& c = input.ColumnAt(input_col[i]);
      if (c.KindAt(input_row) != Datum::Kind::kNode ||
          !adj.Contains(c.NodeAt(input_row))) {
        row_ok = false;
        break;
      }
      cur_node[i] = adj.IndexOf(c.NodeAt(input_row));
    }
    if (!row_ok) continue;
    for (const auto& [slot, check] : bound_checks) {
      if (!check.Admits(cur_node[slot])) {
        row_ok = false;
        break;
      }
    }
    if (!row_ok) continue;
    run_step(0);
    GCORE_RETURN_NOT_OK(st);
  }
  return out;
}

}  // namespace gcore
