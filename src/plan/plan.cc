#include "plan/plan.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "ast/pattern.h"

namespace gcore {

const char* PlanOpName(PlanOp op) {
  switch (op) {
    case PlanOp::kNodeScan:
      return "NodeScan";
    case PlanOp::kExpandEdge:
      return "ExpandEdge";
    case PlanOp::kMultiwayExpand:
      return "MultiwayExpand";
    case PlanOp::kPathSearch:
      return "PathSearch";
    case PlanOp::kFilter:
      return "Filter";
    case PlanOp::kHashJoin:
      return "HashJoin";
    case PlanOp::kLeftOuterJoin:
      return "LeftOuterJoin";
    case PlanOp::kProject:
      return "Project";
    case PlanOp::kGraphUnion:
      return "GraphUnion";
    case PlanOp::kGraphIntersect:
      return "GraphIntersect";
    case PlanOp::kGraphMinus:
      return "GraphMinus";
  }
  return "?";
}

PlanPtr MakePlan(PlanOp op, std::vector<PlanPtr> children) {
  auto node = std::make_unique<PlanNode>(op);
  node->children = std::move(children);
  return node;
}

std::vector<std::string> MultiwayNodeVars(const PlanNode& node) {
  std::vector<std::string> vars;
  auto add = [&vars](const std::string& v) {
    if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
      vars.push_back(v);
    }
  };
  for (const MultiwayEdge& me : node.multi_edges) {
    add(me.from_var);
    add(me.to_var);
  }
  return vars;
}

std::vector<std::string> MultiwayEliminationOrder(
    const PlanNode& node, const std::set<std::string>& bound) {
  const std::vector<std::string> all = MultiwayNodeVars(node);
  std::set<std::string> placed = bound;
  std::vector<std::string> order;
  while (true) {
    std::string best;
    size_t best_edges = 0;
    for (const std::string& v : all) {
      if (placed.count(v) > 0) continue;
      size_t incident = 0;
      for (const MultiwayEdge& me : node.multi_edges) {
        const bool touches_v = me.from_var == v || me.to_var == v;
        const std::string& other = me.from_var == v ? me.to_var
                                                    : me.from_var;
        if (touches_v && placed.count(other) > 0) ++incident;
      }
      // First appearance wins ties (`all` is in appearance order and the
      // comparison is strict).
      if (best.empty() || incident > best_edges) {
        best = v;
        best_edges = incident;
      }
    }
    if (best.empty()) return order;
    order.push_back(best);
    placed.insert(best);
  }
}

namespace {

void AppendPushed(const std::vector<const Expr*>& pushed,
                  std::ostringstream* out) {
  if (pushed.empty()) return;
  *out << " push={";
  for (size_t i = 0; i < pushed.size(); ++i) {
    if (i > 0) *out << ", ";
    *out << pushed[i]->ToString();
  }
  *out << "}";
}

}  // namespace

std::string PlanNode::Describe() const {
  std::ostringstream out;
  out << PlanOpName(op);
  switch (op) {
    case PlanOp::kNodeScan:
      out << " " << gcore::ToString(*node);
      if (!graph.empty()) out << " on " << graph;
      AppendPushed(pushed, &out);
      break;
    case PlanOp::kExpandEdge:
      out << " (" << from_var << ")" << gcore::ToString(*edge, *to);
      if (!graph.empty()) out << " on " << graph;
      AppendPushed(pushed, &out);
      break;
    case PlanOp::kMultiwayExpand: {
      out << " cycle=[";
      for (size_t i = 0; i < multi_edges.size(); ++i) {
        if (i > 0) out << ", ";
        const MultiwayEdge& me = multi_edges[i];
        NodePattern to_node;
        to_node.var = me.to_var;
        out << "(" << me.from_var << ")"
            << gcore::ToString(*me.edge, to_node);
      }
      out << "]";
      if (!graph.empty()) out << " on " << graph;
      AppendPushed(pushed, &out);
      break;
    }
    case PlanOp::kPathSearch:
      out << " (" << from_var << ")" << gcore::ToString(*path, *to);
      if (!graph.empty()) out << " on " << graph;
      AppendPushed(pushed, &out);
      break;
    case PlanOp::kFilter:
      out << " " << predicate->ToString();
      break;
    case PlanOp::kProject: {
      out << " [";
      for (size_t i = 0; i < output.size(); ++i) {
        if (i > 0) out << ", ";
        out << output[i];
      }
      out << "] dedup";
      if (parallelism > 0) out << " parallelism=" << parallelism;
      break;
    }
    case PlanOp::kHashJoin:
      if (swap_build) out << " swap_build";
      break;
    case PlanOp::kLeftOuterJoin:
    case PlanOp::kGraphUnion:
    case PlanOp::kGraphIntersect:
    case PlanOp::kGraphMinus:
      break;
  }
  if (est_rows >= 0.0 || actual_rows >= 0 || actual_ms >= 0.0) {
    // Limited precision, never truncated to an integer: sub-1 estimates
    // (the ranking signal on selective plans) stay visible, and huge
    // cross-product estimates print in scientific notation. Actual row
    // counts (EXPLAIN ANALYZE) are exact; actual_ms is the operator's
    // own measured wall time.
    out << "  (";
    bool first = true;
    auto sep = [&out, &first] {
      if (!first) out << " ";
      first = false;
    };
    if (est_rows >= 0.0) {
      sep();
      out << "est_rows=" << std::setprecision(3) << est_rows;
    }
    if (actual_rows >= 0) {
      sep();
      out << "actual_rows=" << actual_rows;
    }
    if (actual_ms >= 0.0) {
      sep();
      out << "actual_ms=" << std::setprecision(3) << actual_ms;
    }
    out << ")";
  }
  return out.str();
}

void AppendChildLines(const std::vector<std::string>& child, bool last,
                      std::vector<std::string>* lines) {
  for (size_t j = 0; j < child.size(); ++j) {
    if (j == 0) {
      lines->push_back((last ? "└─ " : "├─ ") + child[j]);
    } else {
      lines->push_back((last ? "   " : "│  ") + child[j]);
    }
  }
}

std::vector<std::string> PlanNode::RenderLines() const {
  std::vector<std::string> lines{Describe()};
  for (size_t i = 0; i < children.size(); ++i) {
    AppendChildLines(children[i]->RenderLines(), i + 1 == children.size(),
                     &lines);
  }
  return lines;
}

std::string PlanNode::ToString() const {
  const std::vector<std::string> lines = RenderLines();
  std::ostringstream out;
  for (size_t i = 0; i < lines.size(); ++i) {
    if (i > 0) out << "\n";
    out << lines[i];
  }
  return out.str();
}

}  // namespace gcore
