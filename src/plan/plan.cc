#include "plan/plan.h"

#include <iomanip>
#include <sstream>

#include "ast/pattern.h"

namespace gcore {

const char* PlanOpName(PlanOp op) {
  switch (op) {
    case PlanOp::kNodeScan:
      return "NodeScan";
    case PlanOp::kExpandEdge:
      return "ExpandEdge";
    case PlanOp::kPathSearch:
      return "PathSearch";
    case PlanOp::kFilter:
      return "Filter";
    case PlanOp::kHashJoin:
      return "HashJoin";
    case PlanOp::kLeftOuterJoin:
      return "LeftOuterJoin";
    case PlanOp::kProject:
      return "Project";
    case PlanOp::kGraphUnion:
      return "GraphUnion";
    case PlanOp::kGraphIntersect:
      return "GraphIntersect";
    case PlanOp::kGraphMinus:
      return "GraphMinus";
  }
  return "?";
}

PlanPtr MakePlan(PlanOp op, std::vector<PlanPtr> children) {
  auto node = std::make_unique<PlanNode>(op);
  node->children = std::move(children);
  return node;
}

namespace {

void AppendPushed(const std::vector<const Expr*>& pushed,
                  std::ostringstream* out) {
  if (pushed.empty()) return;
  *out << " push={";
  for (size_t i = 0; i < pushed.size(); ++i) {
    if (i > 0) *out << ", ";
    *out << pushed[i]->ToString();
  }
  *out << "}";
}

}  // namespace

std::string PlanNode::Describe() const {
  std::ostringstream out;
  out << PlanOpName(op);
  switch (op) {
    case PlanOp::kNodeScan:
      out << " " << gcore::ToString(*node);
      if (!graph.empty()) out << " on " << graph;
      AppendPushed(pushed, &out);
      break;
    case PlanOp::kExpandEdge:
      out << " (" << from_var << ")" << gcore::ToString(*edge, *to);
      if (!graph.empty()) out << " on " << graph;
      AppendPushed(pushed, &out);
      break;
    case PlanOp::kPathSearch:
      out << " (" << from_var << ")" << gcore::ToString(*path, *to);
      if (!graph.empty()) out << " on " << graph;
      AppendPushed(pushed, &out);
      break;
    case PlanOp::kFilter:
      out << " " << predicate->ToString();
      break;
    case PlanOp::kProject: {
      out << " [";
      for (size_t i = 0; i < output.size(); ++i) {
        if (i > 0) out << ", ";
        out << output[i];
      }
      out << "] dedup";
      if (parallelism > 0) out << " parallelism=" << parallelism;
      break;
    }
    case PlanOp::kHashJoin:
    case PlanOp::kLeftOuterJoin:
    case PlanOp::kGraphUnion:
    case PlanOp::kGraphIntersect:
    case PlanOp::kGraphMinus:
      break;
  }
  if (est_rows >= 0.0 || actual_rows >= 0) {
    // Limited precision, never truncated to an integer: sub-1 estimates
    // (the ranking signal on selective plans) stay visible, and huge
    // cross-product estimates print in scientific notation. Actual row
    // counts (EXPLAIN ANALYZE) are exact.
    out << "  (";
    if (est_rows >= 0.0) {
      out << "est_rows=" << std::setprecision(3) << est_rows;
      if (actual_rows >= 0) out << " ";
    }
    if (actual_rows >= 0) out << "actual_rows=" << actual_rows;
    out << ")";
  }
  return out.str();
}

void AppendChildLines(const std::vector<std::string>& child, bool last,
                      std::vector<std::string>* lines) {
  for (size_t j = 0; j < child.size(); ++j) {
    if (j == 0) {
      lines->push_back((last ? "└─ " : "├─ ") + child[j]);
    } else {
      lines->push_back((last ? "   " : "│  ") + child[j]);
    }
  }
}

std::vector<std::string> PlanNode::RenderLines() const {
  std::vector<std::string> lines{Describe()};
  for (size_t i = 0; i < children.size(); ++i) {
    AppendChildLines(children[i]->RenderLines(), i + 1 == children.size(),
                     &lines);
  }
  return lines;
}

std::string PlanNode::ToString() const {
  const std::vector<std::string> lines = RenderLines();
  std::ostringstream out;
  for (size_t i = 0; i < lines.size(); ++i) {
    if (i > 0) out << "\n";
    out << lines[i];
  }
  return out.str();
}

}  // namespace gcore
