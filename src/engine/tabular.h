// Tabular extensions of Section 5: tables ↔ graphs / binding sets.
#ifndef GCORE_ENGINE_TABULAR_H_
#define GCORE_ENGINE_TABULAR_H_

#include "eval/binding.h"
#include "graph/graph_builder.h"
#include "snb/table.h"

namespace gcore {

/// "Interpreting tables as graphs": one isolated node per row, columns as
/// (singleton) properties. Fresh node identities from `ids`.
PathPropertyGraph TableAsGraph(const Table& table, IdAllocator* ids);

/// "Binding table inputs" (FROM <table>): one binding per row, columns as
/// value variables.
BindingTable TableAsBindings(const Table& table);

/// SELECT output: renders a binding-table projection into a value table.
/// Object-typed data renders via Datum::ToString.
Table BindingsAsTable(const BindingTable& bindings);

}  // namespace gcore

#endif  // GCORE_ENGINE_TABULAR_H_
