#include "engine/plan_cache.h"

#include <cctype>

#include "parser/token.h"

namespace gcore {

std::string NormalizeQueryText(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  bool pending_space = false;
  auto emit_pending = [&] {
    if (pending_space && !out.empty()) out.push_back(' ');
    pending_space = false;
  };
  size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (c == '\'' || c == '"') {
      // String literal (the lexer accepts both quote kinds): preserved
      // byte-for-byte through the matching close quote, honoring the
      // lexer's backslash escapes. A doubled quote closes-and-reopens
      // here where the lexer reads it as an escaped quote — the bytes
      // are copied verbatim either way, so the normal form is identical.
      emit_pending();
      const char quote = c;
      out.push_back(text[i++]);
      while (i < text.size()) {
        const char s = text[i++];
        out.push_back(s);
        if (s == '\\' && i < text.size()) {
          out.push_back(text[i++]);
          continue;
        }
        if (s == quote) break;
      }
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      pending_space = true;
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      // A word token. The lexer recognizes keywords case-insensitively
      // (it uppercases only for the lookup), so `match` and `MATCH` parse
      // identically — fold keywords to their uppercase form here so they
      // share one cache entry. Non-keyword words are identifiers, which
      // are case-sensitive and stay byte-exact.
      size_t j = i;
      while (j < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[j])) != 0 ||
              text[j] == '_')) {
        ++j;
      }
      std::string upper = text.substr(i, j - i);
      for (char& ch : upper) {
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      }
      emit_pending();
      if (upper != "_" && KeywordOrIdentifier(upper) != TokenType::kIdentifier) {
        out += upper;
      } else {
        out.append(text, i, j - i);
      }
      i = j;
      continue;
    }
    emit_pending();
    out.push_back(c);
    ++i;
  }
  return out;
}

std::shared_ptr<const PlanCache::Entry> PlanCache::Lookup(
    const PlanCacheKey& key, const GraphCatalog& catalog) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++counters_.misses;
    return nullptr;
  }
  const std::shared_ptr<const Entry>& entry = it->second->second;
  for (const auto& [graph, version] : entry->graph_versions) {
    if (catalog.GraphVersion(graph) != version) {
      // Stale: the graph was re-registered (new statistics, possibly a
      // different optimal plan) or dropped. Evict and replan.
      EvictLocked(it->second);
      ++counters_.misses;
      return nullptr;
    }
  }
  // Move to the LRU front.
  lru_.splice(lru_.begin(), lru_, it->second);
  ++counters_.hits;
  return entry;
}

void PlanCache::Insert(const PlanCacheKey& key, Entry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0) return;
  auto it = index_.find(key);
  if (it != index_.end()) EvictLocked(it->second);
  lru_.emplace_front(key,
                     std::make_shared<const Entry>(std::move(entry)));
  index_.emplace(key, lru_.begin());
  ShrinkToCapacityLocked();
}

void PlanCache::InvalidateGraph(const std::string& graph) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    auto next = std::next(it);
    bool touches = it->first.graph == graph;
    if (!touches) {
      for (const auto& [name, version] : it->second->graph_versions) {
        if (name == graph) {
          touches = true;
          break;
        }
      }
    }
    if (touches) EvictLocked(it);
    it = next;
  }
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.evictions += lru_.size();
  lru_.clear();
  index_.clear();
}

void PlanCache::RecordPlanBuild() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.plans;
}

PlanCacheCounters PlanCache::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

size_t PlanCache::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void PlanCache::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
  ShrinkToCapacityLocked();
}

void PlanCache::EvictLocked(LruList::iterator it) {
  index_.erase(it->first);
  lru_.erase(it);
  ++counters_.evictions;
}

void PlanCache::ShrinkToCapacityLocked() {
  while (lru_.size() > capacity_) EvictLocked(std::prev(lru_.end()));
}

}  // namespace gcore
