// The G-CORE query engine: the public entry point of gcore-cpp.
//
//   GraphCatalog catalog;
//   catalog.RegisterGraph("social_graph", MakeSocialGraph(catalog.ids()));
//   catalog.SetDefaultGraph("social_graph");
//   QueryEngine engine(&catalog);
//   auto result = engine.Execute(
//       "CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme'");
//
// Concurrent serving goes through sessions: each QuerySession freezes the
// engine's evaluation knobs (an immutable EngineOptions copy) at creation,
// so N threads can execute through one engine/catalog without racing knob
// mutation, each query pinned to a consistent (graph, snapshot, stats)
// view even under concurrent re-registration:
//
//   QuerySession session = engine.CreateSession();
//   std::thread worker([&] {
//     auto r = session.Execute("SELECT n.firstName MATCH (n:Person)");
//   });
//
// Repeated queries pay near-zero planning cost: Execute-by-text consults
// a bounded LRU plan cache keyed on (normalized text, default graph,
// graph version, knob fingerprint) before parsing and planning;
// re-registering a graph invalidates its entries. Hit/miss/eviction
// counters are exposed via plan_cache_counters().
//
// Execution follows Appendix A: PATH head clauses become weighted path
// views, GRAPH / GRAPH VIEW clauses register (materialized) graphs, the
// body evaluates CONSTRUCT∘MATCH per basic query and combines full graph
// queries with the set operations of A.5. The Section 5 extensions
// (SELECT, FROM <table>, ON <table>) produce/consume tables.
#ifndef GCORE_ENGINE_ENGINE_H_
#define GCORE_ENGINE_ENGINE_H_

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "common/options.h"
#include "engine/plan_cache.h"
#include "eval/matcher.h"
#include "graph/catalog.h"
#include "paths/path_view.h"
#include "snb/table.h"

namespace gcore {

class QuerySession;

/// Outcome of a query: a graph (the normal, closed case) or a table
/// (SELECT extension).
struct QueryResult {
  std::optional<PathPropertyGraph> graph;
  std::optional<Table> table;

  bool IsGraph() const { return graph.has_value(); }
  bool IsTable() const { return table.has_value(); }
  std::string ToString() const;
};

class QueryEngine {
 public:
  /// The engine does not own the catalog; GRAPH VIEW definitions persist
  /// into it across Execute calls (and the engine hooks the catalog's
  /// invalidation listeners for its plan cache).
  explicit QueryEngine(GraphCatalog* catalog);
  ~QueryEngine();
  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Parses and executes `query_text` under the engine's default options,
  /// consulting the plan cache first. Thread-safe against other Execute
  /// calls (but not against concurrent set_* knob mutation — freeze knobs
  /// into sessions for concurrent serving).
  Result<QueryResult> Execute(const std::string& query_text);
  /// Same, under explicitly supplied (typically session-frozen) options.
  Result<QueryResult> Execute(const std::string& query_text,
                              const EngineOptions& options);

  /// Executes an already-parsed query (no plan-cache consultation — the
  /// cache needs the text key).
  Result<QueryResult> Execute(const Query& query);
  Result<QueryResult> Execute(const Query& query,
                              const EngineOptions& options);

  /// A session with the engine's current options frozen in (or explicit
  /// ones). Sessions are cheap value handles; create one per serving
  /// thread.
  QuerySession CreateSession();
  QuerySession CreateSession(EngineOptions options);

  GraphCatalog* catalog() { return catalog_; }

  /// Default evaluation knobs, forwarded into every MatcherContext the
  /// engine creates (planner on/off for differential testing, optimizer
  /// rules for ablation). Not synchronized: configure before spawning
  /// concurrent sessions — sessions carry their own frozen copy.
  const EngineOptions& options() const { return options_; }
  void set_options(const EngineOptions& options) { options_ = options; }
  void set_use_planner(bool on) { options_.use_planner = on; }
  void set_enable_pushdown(bool on) { options_.enable_pushdown = on; }
  void set_reorder_joins(bool on) { options_.reorder_joins = on; }
  /// Cycle → MultiwayExpand rewrite (worst-case-optimal multiway joins);
  /// off keeps binary join trees — the bench_wcoj ablation mode.
  void set_enable_multiway(bool on) { options_.enable_multiway = on; }
  /// Estimated-cost-driven HashJoin build-side swap.
  void set_choose_build_side(bool on) { options_.choose_build_side = on; }
  /// Per-column statistics in the cardinality estimator (graph/stats.h);
  /// off falls back to the seed's constant selectivities (the
  /// stats-ablation bench mode).
  void set_use_column_stats(bool on) { options_.use_column_stats = on; }
  /// Vectorized expression kernels (eval/expr_vec.h) for generic WHERE
  /// conjuncts, residual filters and computed projections; off keeps the
  /// row-at-a-time ExprEvaluator everywhere (the ablation/spec mode).
  void set_enable_vectorized_exprs(bool on) {
    options_.enable_vectorized_exprs = on;
  }
  /// Morsel-parallel execution degree (0 = one worker per hardware
  /// thread, 1 = serial) and morsel granularity (0 = default; tests use
  /// tiny morsels to exercise multi-chunk execution on toy data).
  void set_parallelism(size_t n) { options_.parallelism = n; }
  void set_morsel_size(size_t n) { options_.morsel_size = n; }

  /// Plan-cache introspection (tests, the serving bench). Capacity 0
  /// disables caching — the cold re-plan-every-call mode.
  PlanCacheCounters plan_cache_counters() const {
    return plan_cache_.counters();
  }
  size_t plan_cache_size() const { return plan_cache_.size(); }
  void set_plan_cache_capacity(size_t n) { plan_cache_.set_capacity(n); }
  void clear_plan_cache() { plan_cache_.Clear(); }

 private:
  /// Per-execution scope: path views (materialized + pending clause ASTs),
  /// query-local graph names, the frozen options of this execution and
  /// the plan-cache hooks of its outermost basic query.
  struct Scope {
    PathViewRegistry views;
    std::vector<const PathClause*> pending_paths;
    std::vector<std::string> local_graphs;
    /// Options this execution runs under (the engine default or a
    /// session's frozen copy) — every MakeMatcher reads these.
    EngineOptions options;
    /// Plan-cache hit: execute this plan for `cache_basic` instead of
    /// planning (owned by the cache entry, which outlives the scope).
    const PlanNode* cached_plan = nullptr;
    /// Plan-cache miss on a cacheable query: EvalBindings deposits the
    /// freshly optimized plan of `cache_basic` here for insertion.
    std::unique_ptr<PlanNode> built_plan;
    /// The one basic query the cache slot refers to (the query body's
    /// own; EXISTS subqueries re-enter EvalBindings and must not touch
    /// the slot).
    const BasicQuery* cache_basic = nullptr;
  };

  /// The post-parse execution path shared by every entry point:
  /// validation, EXPLAIN dispatch, local-graph cleanup.
  Result<QueryResult> ExecuteParsed(const Query& query, Scope* scope);

  Result<QueryResult> ExecuteWithScope(const Query& query, Scope* scope);
  Result<PathPropertyGraph> EvalBody(const QueryBody& body, Scope* scope);
  Result<QueryResult> EvalBasic(const BasicQuery& basic, Scope* scope);
  Status EvalGraphClause(const GraphClause& clause, Scope* scope);

  /// Binding-producing part of a basic query (MATCH / FROM / unit).
  /// A non-null `stats` instruments the MATCH pipeline (EXPLAIN
  /// ANALYZE): actual rows record per operator and the executed plan is
  /// handed out through `plan_out` (null for FROM/unit bodies).
  Result<BindingTable> EvalBindings(const BasicQuery& basic, Scope* scope,
                                    ExecStats* stats = nullptr,
                                    std::unique_ptr<PlanNode>* plan_out =
                                        nullptr);
  /// Consuming tail of a basic query: SELECT projection or CONSTRUCT
  /// over already-computed bindings.
  Result<QueryResult> FinishBasic(const BasicQuery& basic,
                                  BindingTable bindings, Scope* scope);
  /// Evaluates every ON (subquery) location of `match` to a temporary
  /// catalog graph and records pattern → name in `overrides`
  /// (Appendix A.2: ⟦α ON Q⟧_G = ⟦α⟧_{⟦Q⟧_G}). Temporary names draw from
  /// an engine-wide atomic counter so concurrent sessions cannot collide.
  Status MaterializeOnLocations(
      const MatchClause& match, Scope* scope,
      std::map<const GraphPattern*, std::string>* overrides);

  /// Materializes every pending PATH view (transitively) referenced by the
  /// match clause, against the graph its first referencing pattern runs
  /// on. PATH views read properties of the graph they are applied to
  /// (wKnows reads nr_messages of social_graph1), hence the laziness.
  Status MaterializePathViewsFor(const MatchClause& match, Scope* scope);
  Result<PathViewRelation> MaterializePathView(const PathClause& clause,
                                               const std::string& graph_name,
                                               Scope* scope);

  /// Correlated EXISTS: evaluates the subquery's bindings semijoined with
  /// the outer row; TRUE iff non-empty.
  Result<bool> EvalExists(const Query& subquery, const BindingTable& outer,
                          size_t row, Scope* scope);

  Matcher MakeMatcher(Scope* scope);

  /// True when Execute-by-text may cache this query's parse + plan: a
  /// plain (non-EXPLAIN) single-basic-query body without head clauses or
  /// ON (subquery) locations — the shapes whose planning depends only on
  /// (text, default graph, graph versions, knobs).
  static bool CacheableShape(const Query& query);
  /// Distinct graph locations the plan's operators touch (empty location
  /// = the resolved default), for version recording.
  static void CollectPlanGraphs(const PlanNode& plan,
                                const std::string& default_graph,
                                std::vector<std::string>* out);

  /// EXPLAIN: plans (without executing) and renders the optimized plan
  /// as a one-column table.
  Result<QueryResult> Explain(const Query& query, Scope* scope);

  /// EXPLAIN ANALYZE: plans, *executes* through an ExecStats-instrumented
  /// executor (head clauses run for real; the CONSTRUCT/SELECT tail and
  /// graph set operations run too, results discarded — execution errors
  /// surface exactly as they would without ANALYZE) and renders the plan
  /// with actual_rows annotated next to every estimate. Always analyzes
  /// the planner pipeline, regardless of set_use_planner.
  Result<QueryResult> ExplainAnalyze(const Query& query, Scope* scope);
  /// Instrumented mirror of EvalBody: renders into `lines` while
  /// evaluating (set operations included, with EvalBody's graph-typing
  /// checks).
  Result<PathPropertyGraph> AnalyzeGraphBody(const QueryBody& body,
                                             Scope* scope,
                                             std::vector<std::string>* lines);
  /// Instrumented mirror of EvalBasic; returns the finished result.
  Result<QueryResult> AnalyzeBasic(const BasicQuery& basic, Scope* scope,
                                   std::vector<std::string>* lines);

  GraphCatalog* catalog_;
  EngineOptions options_;
  PlanCache plan_cache_;
  uint64_t invalidation_listener_ = 0;
  /// Engine-wide sequence for temporary catalog names (__locationN):
  /// concurrent sessions materializing ON (subquery) locations must not
  /// register under colliding names.
  std::atomic<uint64_t> temp_graph_seq_{0};
};

/// A serving handle: one engine, frozen evaluation knobs. Sessions are
/// copyable value objects; Execute is safe to call from many threads (one
/// session shared, or one session per thread — both work, the engine and
/// catalog do the synchronization).
class QuerySession {
 public:
  Result<QueryResult> Execute(const std::string& query_text) {
    return engine_->Execute(query_text, options_);
  }

  const EngineOptions& options() const { return options_; }
  QueryEngine* engine() { return engine_; }

 private:
  friend class QueryEngine;
  QuerySession(QueryEngine* engine, EngineOptions options)
      : engine_(engine), options_(options) {}

  QueryEngine* engine_;
  EngineOptions options_;
};

}  // namespace gcore

#endif  // GCORE_ENGINE_ENGINE_H_
