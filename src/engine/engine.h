// The G-CORE query engine: the public entry point of gcore-cpp.
//
//   GraphCatalog catalog;
//   catalog.RegisterGraph("social_graph", MakeSocialGraph(catalog.ids()));
//   catalog.SetDefaultGraph("social_graph");
//   QueryEngine engine(&catalog);
//   auto result = engine.Execute(
//       "CONSTRUCT (n) MATCH (n:Person) WHERE n.employer = 'Acme'");
//
// Execution follows Appendix A: PATH head clauses become weighted path
// views, GRAPH / GRAPH VIEW clauses register (materialized) graphs, the
// body evaluates CONSTRUCT∘MATCH per basic query and combines full graph
// queries with the set operations of A.5. The Section 5 extensions
// (SELECT, FROM <table>, ON <table>) produce/consume tables.
#ifndef GCORE_ENGINE_ENGINE_H_
#define GCORE_ENGINE_ENGINE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "eval/matcher.h"
#include "graph/catalog.h"
#include "paths/path_view.h"
#include "snb/table.h"

namespace gcore {

/// Outcome of a query: a graph (the normal, closed case) or a table
/// (SELECT extension).
struct QueryResult {
  std::optional<PathPropertyGraph> graph;
  std::optional<Table> table;

  bool IsGraph() const { return graph.has_value(); }
  bool IsTable() const { return table.has_value(); }
  std::string ToString() const;
};

class QueryEngine {
 public:
  /// The engine does not own the catalog; GRAPH VIEW definitions persist
  /// into it across Execute calls.
  explicit QueryEngine(GraphCatalog* catalog);

  /// Parses and executes `query_text`.
  Result<QueryResult> Execute(const std::string& query_text);

  /// Executes an already-parsed query.
  Result<QueryResult> Execute(const Query& query);

  GraphCatalog* catalog() { return catalog_; }

  /// Evaluation knobs forwarded into every MatcherContext the engine
  /// creates (planner on/off for differential testing, optimizer rules
  /// for ablation).
  void set_use_planner(bool on) { use_planner_ = on; }
  void set_enable_pushdown(bool on) { enable_pushdown_ = on; }
  void set_reorder_joins(bool on) { reorder_joins_ = on; }
  /// Cycle → MultiwayExpand rewrite (worst-case-optimal multiway joins);
  /// off keeps binary join trees — the bench_wcoj ablation mode.
  void set_enable_multiway(bool on) { enable_multiway_ = on; }
  /// Estimated-cost-driven HashJoin build-side swap.
  void set_choose_build_side(bool on) { choose_build_side_ = on; }
  /// Per-column statistics in the cardinality estimator (graph/stats.h);
  /// off falls back to the seed's constant selectivities (the
  /// stats-ablation bench mode).
  void set_use_column_stats(bool on) { use_column_stats_ = on; }
  /// Morsel-parallel execution degree (0 = one worker per hardware
  /// thread, 1 = serial) and morsel granularity (0 = default; tests use
  /// tiny morsels to exercise multi-chunk execution on toy data).
  void set_parallelism(size_t n) { parallelism_ = n; }
  void set_morsel_size(size_t n) { morsel_size_ = n; }

 private:
  /// Per-execution scope: path views (materialized + pending clause ASTs)
  /// and query-local graph names.
  struct Scope {
    PathViewRegistry views;
    std::vector<const PathClause*> pending_paths;
    std::vector<std::string> local_graphs;
  };

  Result<QueryResult> ExecuteWithScope(const Query& query, Scope* scope);
  Result<PathPropertyGraph> EvalBody(const QueryBody& body, Scope* scope);
  Result<QueryResult> EvalBasic(const BasicQuery& basic, Scope* scope);
  Status EvalGraphClause(const GraphClause& clause, Scope* scope);

  /// Binding-producing part of a basic query (MATCH / FROM / unit).
  /// A non-null `stats` instruments the MATCH pipeline (EXPLAIN
  /// ANALYZE): actual rows record per operator and the executed plan is
  /// handed out through `plan_out` (null for FROM/unit bodies).
  Result<BindingTable> EvalBindings(const BasicQuery& basic, Scope* scope,
                                    ExecStats* stats = nullptr,
                                    std::unique_ptr<PlanNode>* plan_out =
                                        nullptr);
  /// Consuming tail of a basic query: SELECT projection or CONSTRUCT
  /// over already-computed bindings.
  Result<QueryResult> FinishBasic(const BasicQuery& basic,
                                  BindingTable bindings, Scope* scope);
  /// Evaluates every ON (subquery) location of `match` to a temporary
  /// catalog graph and records pattern → name in `overrides`
  /// (Appendix A.2: ⟦α ON Q⟧_G = ⟦α⟧_{⟦Q⟧_G}).
  Status MaterializeOnLocations(
      const MatchClause& match, Scope* scope,
      std::map<const GraphPattern*, std::string>* overrides);

  /// Materializes every pending PATH view (transitively) referenced by the
  /// match clause, against the graph its first referencing pattern runs
  /// on. PATH views read properties of the graph they are applied to
  /// (wKnows reads nr_messages of social_graph1), hence the laziness.
  Status MaterializePathViewsFor(const MatchClause& match, Scope* scope);
  Result<PathViewRelation> MaterializePathView(const PathClause& clause,
                                               const std::string& graph_name,
                                               Scope* scope);

  /// Correlated EXISTS: evaluates the subquery's bindings semijoined with
  /// the outer row; TRUE iff non-empty.
  Result<bool> EvalExists(const Query& subquery, const BindingTable& outer,
                          size_t row, Scope* scope);

  Matcher MakeMatcher(Scope* scope);

  /// EXPLAIN: plans (without executing) and renders the optimized plan
  /// as a one-column table.
  Result<QueryResult> Explain(const Query& query, Scope* scope);

  /// EXPLAIN ANALYZE: plans, *executes* through an ExecStats-instrumented
  /// executor (head clauses run for real; the CONSTRUCT/SELECT tail and
  /// graph set operations run too, results discarded — execution errors
  /// surface exactly as they would without ANALYZE) and renders the plan
  /// with actual_rows annotated next to every estimate. Always analyzes
  /// the planner pipeline, regardless of set_use_planner.
  Result<QueryResult> ExplainAnalyze(const Query& query, Scope* scope);
  /// Instrumented mirror of EvalBody: renders into `lines` while
  /// evaluating (set operations included, with EvalBody's graph-typing
  /// checks).
  Result<PathPropertyGraph> AnalyzeGraphBody(const QueryBody& body,
                                             Scope* scope,
                                             std::vector<std::string>* lines);
  /// Instrumented mirror of EvalBasic; returns the finished result.
  Result<QueryResult> AnalyzeBasic(const BasicQuery& basic, Scope* scope,
                                   std::vector<std::string>* lines);

  GraphCatalog* catalog_;
  bool use_planner_ = true;
  bool enable_pushdown_ = true;
  bool reorder_joins_ = true;
  bool enable_multiway_ = true;
  bool choose_build_side_ = true;
  bool use_column_stats_ = true;
  size_t parallelism_ = 0;
  size_t morsel_size_ = 0;
};

}  // namespace gcore

#endif  // GCORE_ENGINE_ENGINE_H_
