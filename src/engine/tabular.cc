#include "engine/tabular.h"

namespace gcore {

PathPropertyGraph TableAsGraph(const Table& table, IdAllocator* ids) {
  PathPropertyGraph graph;
  for (size_t r = 0; r < table.NumRows(); ++r) {
    const NodeId id = ids->NextNode();
    graph.AddNode(id);
    for (size_t c = 0; c < table.NumColumns(); ++c) {
      const Value& v = table.At(r, c);
      if (v.is_null()) continue;
      graph.SetProperty(id, table.columns()[c], ValueSet(v));
    }
  }
  return graph;
}

BindingTable TableAsBindings(const Table& table) {
  BindingTable bindings(table.columns());
  for (size_t r = 0; r < table.NumRows(); ++r) {
    BindingRow row;
    row.reserve(table.NumColumns());
    for (size_t c = 0; c < table.NumColumns(); ++c) {
      const Value& v = table.At(r, c);
      row.push_back(v.is_null() ? Datum::Unbound() : Datum::OfValue(v));
    }
    Status st = bindings.AddRow(std::move(row));
    (void)st;
  }
  return bindings;
}

Table BindingsAsTable(const BindingTable& bindings) {
  Table table(bindings.columns());
  for (size_t r = 0; r < bindings.NumRows(); ++r) {
    std::vector<Value> cells;
    cells.reserve(bindings.NumColumns());
    for (size_t c = 0; c < bindings.NumColumns(); ++c) {
      const Datum d = bindings.At(r, c);
      if (d.kind() == Datum::Kind::kValues && d.values().is_singleton()) {
        cells.push_back(d.values().single());
      } else if (d.IsUnbound() ||
                 (d.kind() == Datum::Kind::kValues && d.values().empty())) {
        cells.push_back(Value::Null());
      } else {
        cells.push_back(Value::String(d.ToString()));
      }
    }
    Status st = table.AddRow(std::move(cells));
    (void)st;
  }
  return table;
}

}  // namespace gcore
