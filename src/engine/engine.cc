#include "engine/engine.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "engine/tabular.h"
#include "engine/validator.h"
#include "eval/binding_ops.h"
#include "eval/constructor.h"
#include "graph/graph_ops.h"
#include "parser/parser.h"
#include "plan/executor.h"
#include "plan/explain.h"

namespace gcore {

std::string QueryResult::ToString() const {
  if (graph.has_value()) return graph->ToString();
  if (table.has_value()) return table->ToString();
  return "<empty result>";
}

namespace {

/// Collects the names of PATH views referenced by the regexes of a
/// pattern (first-occurrence order).
void CollectPatternViewRefs(const GraphPattern& pattern,
                            std::vector<std::string>* out) {
  for (const auto& hop : pattern.hops) {
    if (hop.kind == PatternHop::Kind::kPath && hop.path.rpq != nullptr) {
      hop.path.rpq->CollectViewRefs(out);
    }
  }
}

void CollectPatternViewRefs(const std::vector<GraphPattern>& patterns,
                            std::vector<std::string>* out) {
  for (const auto& pattern : patterns) CollectPatternViewRefs(pattern, out);
}

}  // namespace

QueryEngine::QueryEngine(GraphCatalog* catalog) : catalog_(catalog) {
  // Eager plan-cache invalidation: a re-registered or dropped graph
  // evicts its entries immediately. A listener racing an in-flight
  // insert cannot resurrect a stale plan: Execute skips the insert when
  // the catalog's mutation epoch moved during the execution, and the
  // version validation at lookup backstops everything else.
  invalidation_listener_ = catalog_->AddInvalidationListener(
      [this](const std::string& graph) {
        plan_cache_.InvalidateGraph(graph);
      });
}

QueryEngine::~QueryEngine() {
  catalog_->RemoveInvalidationListener(invalidation_listener_);
}

QuerySession QueryEngine::CreateSession() { return CreateSession(options_); }

QuerySession QueryEngine::CreateSession(EngineOptions options) {
  return QuerySession(this, options);
}

Matcher QueryEngine::MakeMatcher(Scope* scope) {
  MatcherContext ctx;
  static_cast<EngineOptions&>(ctx) = scope->options;
  ctx.catalog = catalog_;
  ctx.views = &scope->views;
  ctx.default_graph = catalog_->default_graph();
  ctx.exists_cb = [this, scope](const Query& subquery,
                                const BindingTable& outer,
                                size_t row) -> Result<bool> {
    return EvalExists(subquery, outer, row, scope);
  };
  return Matcher(ctx);
}

bool QueryEngine::CacheableShape(const Query& query) {
  if (query.explain) return false;
  if (!query.path_clauses.empty() || !query.graph_clauses.empty()) {
    return false;
  }
  if (query.body == nullptr ||
      query.body->kind != QueryBody::Kind::kBasic) {
    return false;
  }
  const BasicQuery& basic = *query.body->basic;
  if (basic.match.has_value()) {
    auto has_subquery =
        [](const std::vector<GraphPattern>& patterns) {
          for (const auto& p : patterns) {
            if (p.on_subquery != nullptr) return true;
          }
          return false;
        };
    if (has_subquery(basic.match->patterns)) return false;
    for (const auto& block : basic.match->optionals) {
      if (has_subquery(block.patterns)) return false;
    }
  }
  return true;
}

void QueryEngine::CollectPlanGraphs(const PlanNode& plan,
                                    const std::string& default_graph,
                                    std::vector<std::string>* out) {
  const std::string& name = plan.graph.empty() ? default_graph : plan.graph;
  if (std::find(out->begin(), out->end(), name) == out->end()) {
    out->push_back(name);
  }
  for (const auto& child : plan.children) {
    CollectPlanGraphs(*child, default_graph, out);
  }
}

Result<QueryResult> QueryEngine::Execute(const std::string& query_text) {
  return Execute(query_text, options_);
}

Result<QueryResult> QueryEngine::Execute(const std::string& query_text,
                                         const EngineOptions& options) {
  // One reader epoch per execution: raw graph/stats pointers handed out
  // by the catalog stay valid even if another session re-registers the
  // graph mid-flight (the old image is retired, not destroyed).
  GraphCatalog::ReaderGuard guard(catalog_);

  // Mutation epoch at entry, i.e. before any graph image is pinned. An
  // unchanged epoch at insert time proves the versions read then are the
  // ones the plan was built against (see below).
  const uint64_t catalog_epoch = catalog_->MutationEpoch();

  PlanCacheKey key;
  key.text = NormalizeQueryText(query_text);
  key.graph = catalog_->default_graph();
  key.knobs = options.Fingerprint();

  Scope scope;
  scope.options = options;

  // Hit: skip parse + plan, execute the cached tree. The shared_ptr keeps
  // the entry (query AST + plan) alive even if it is evicted mid-flight.
  if (std::shared_ptr<const PlanCache::Entry> entry =
          plan_cache_.Lookup(key, *catalog_)) {
    if (entry->plan != nullptr) {
      scope.cache_basic = entry->query->body->basic.get();
      scope.cached_plan = entry->plan.get();
    }
    return ExecuteParsed(*entry->query, &scope);
  }

  // Miss: parse, execute (capturing the optimized plan of a cacheable
  // body), then insert.
  GCORE_ASSIGN_OR_RETURN(auto parsed, ParseQuery(query_text));
  std::shared_ptr<const Query> query = std::move(parsed);
  const bool cacheable = CacheableShape(*query);
  if (cacheable) scope.cache_basic = query->body->basic.get();
  auto result = ExecuteParsed(*query, &scope);
  if (!result.ok()) return result;
  if (cacheable) {
    PlanCache::Entry entry;
    entry.query = query;
    if (scope.built_plan != nullptr) {
      plan_cache_.RecordPlanBuild();
      std::vector<std::string> graphs;
      CollectPlanGraphs(*scope.built_plan, key.graph, &graphs);
      for (const auto& g : graphs) {
        entry.graph_versions.emplace_back(g, catalog_->GraphVersion(g));
      }
      entry.plan =
          std::shared_ptr<const PlanNode>(scope.built_plan.release());
    } else {
      // Match-less (FROM <table> / unit) or legacy-walk execution: the
      // entry still saves the re-parse, pinned to the default graph.
      entry.graph_versions.emplace_back(key.graph,
                                        catalog_->GraphVersion(key.graph));
    }
    // The versions above were read after execution. If a registration
    // raced the execution (epoch moved), they may describe a newer
    // catalog state than the graphs the plan was actually built against
    // — inserting would cache a stale plan that validates as fresh. Skip
    // the insert; the next execution re-plans and caches cleanly.
    if (catalog_->MutationEpoch() == catalog_epoch) {
      plan_cache_.Insert(key, std::move(entry));
    }
  }
  return result;
}

Result<QueryResult> QueryEngine::Execute(const Query& query) {
  return Execute(query, options_);
}

Result<QueryResult> QueryEngine::Execute(const Query& query,
                                         const EngineOptions& options) {
  GraphCatalog::ReaderGuard guard(catalog_);
  Scope scope;
  scope.options = options;
  return ExecuteParsed(query, &scope);
}

Result<QueryResult> QueryEngine::ExecuteParsed(const Query& query,
                                               Scope* scope) {
  GCORE_RETURN_NOT_OK(ValidateQuery(query));
  // Plain EXPLAIN never executes; EXPLAIN ANALYZE runs the query through
  // an instrumented executor — like normal execution it may register
  // query-local graphs, which must not outlive the query.
  auto result = query.explain
                    ? (query.explain_analyze ? ExplainAnalyze(query, scope)
                                             : Explain(query, scope))
                    : ExecuteWithScope(query, scope);
  for (const auto& name : scope->local_graphs) {
    catalog_->DropGraph(name);
  }
  return result;
}

Result<QueryResult> QueryEngine::Explain(const Query& query, Scope* scope) {
  // Planning never executes: head clauses, ON subqueries and path views
  // stay unmaterialized, so their locations degrade to unknown estimates.
  Matcher matcher = MakeMatcher(scope);
  GCORE_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                         ExplainQuery(query, &matcher));
  Table table({"plan"});
  for (auto& line : lines) {
    Status st = table.AddRow({Value::String(std::move(line))});
    (void)st;
  }
  QueryResult result;
  result.table = std::move(table);
  return result;
}

Result<QueryResult> QueryEngine::ExplainAnalyze(const Query& query,
                                                Scope* scope) {
  std::vector<std::string> lines;
  for (const auto& path_clause : query.path_clauses) {
    scope->pending_paths.push_back(&path_clause);
    lines.push_back("PathView " + path_clause.name +
                    " (materialized lazily on first reference)");
  }
  for (const auto& graph_clause : query.graph_clauses) {
    // Head clauses execute for real — the body runs against their
    // graphs — but only the body's binding pipeline is instrumented.
    GCORE_RETURN_NOT_OK(EvalGraphClause(graph_clause, scope));
    lines.push_back(std::string(graph_clause.is_view ? "GraphView "
                                                     : "Graph ") +
                    graph_clause.name + " AS (materialized)");
  }
  if (query.body != nullptr) {
    // Same dispatch as ExecuteWithScope: a top-level SELECT is the one
    // basic body allowed to produce a table; everything else evaluates
    // as a graph body (set operations included, with their typing
    // checks), so ANALYZE fails exactly where plain execution would.
    if (query.body->kind == QueryBody::Kind::kBasic &&
        query.body->basic->select.has_value()) {
      GCORE_ASSIGN_OR_RETURN(QueryResult finished,
                             AnalyzeBasic(*query.body->basic, scope,
                                          &lines));
      (void)finished;
    } else {
      GCORE_ASSIGN_OR_RETURN(PathPropertyGraph graph,
                             AnalyzeGraphBody(*query.body, scope, &lines));
      (void)graph;
    }
  }
  Table table({"plan"});
  for (auto& line : lines) {
    Status st = table.AddRow({Value::String(std::move(line))});
    (void)st;
  }
  QueryResult result;
  result.table = std::move(table);
  return result;
}

Result<PathPropertyGraph> QueryEngine::AnalyzeGraphBody(
    const QueryBody& body, Scope* scope, std::vector<std::string>* lines) {
  switch (body.kind) {
    case QueryBody::Kind::kBasic: {
      GCORE_ASSIGN_OR_RETURN(QueryResult r,
                             AnalyzeBasic(*body.basic, scope, lines));
      if (!r.graph.has_value()) {
        return Status::BindError(
            "SELECT queries cannot participate in graph set operations");
      }
      return std::move(*r.graph);
    }
    case QueryBody::Kind::kGraphRef: {
      GCORE_ASSIGN_OR_RETURN(const PathPropertyGraph* g,
                             catalog_->Lookup(body.graph_ref));
      lines->push_back("Graph " + body.graph_ref);
      return PathPropertyGraph(*g);
    }
    case QueryBody::Kind::kUnion:
    case QueryBody::Kind::kIntersect:
    case QueryBody::Kind::kMinus: {
      const PlanOp op = body.kind == QueryBody::Kind::kUnion
                            ? PlanOp::kGraphUnion
                            : body.kind == QueryBody::Kind::kIntersect
                                  ? PlanOp::kGraphIntersect
                                  : PlanOp::kGraphMinus;
      lines->push_back(PlanOpName(op));
      std::vector<std::string> left_lines;
      std::vector<std::string> right_lines;
      GCORE_ASSIGN_OR_RETURN(PathPropertyGraph left,
                             AnalyzeGraphBody(*body.left, scope,
                                              &left_lines));
      GCORE_ASSIGN_OR_RETURN(PathPropertyGraph right,
                             AnalyzeGraphBody(*body.right, scope,
                                              &right_lines));
      AppendChildLines(left_lines, /*last=*/false, lines);
      AppendChildLines(right_lines, /*last=*/true, lines);
      switch (body.kind) {
        case QueryBody::Kind::kUnion:
          return GraphUnion(left, right);
        case QueryBody::Kind::kIntersect:
          return GraphIntersect(left, right);
        default:
          return GraphMinus(left, right);
      }
    }
  }
  return Status::EvaluationError("unhandled query body kind");
}

Result<QueryResult> QueryEngine::AnalyzeBasic(const BasicQuery& basic,
                                              Scope* scope,
                                              std::vector<std::string>* lines) {
  lines->push_back(basic.select.has_value() ? "Select" : "Construct");
  // The exact execution path, instrumented: EvalBindings prepares path
  // views and ON-(subquery) locations as usual (so the plan runs against
  // resolved graphs, unlike plain EXPLAIN) and, given the stats sink,
  // runs the MATCH through the ExecStats-recording executor.
  ExecStats stats;
  PlanPtr plan;
  GCORE_ASSIGN_OR_RETURN(BindingTable bindings,
                         EvalBindings(basic, scope, &stats, &plan));
  std::vector<std::string> sub;
  if (plan != nullptr) {
    stats.AnnotateActuals(plan.get());
    sub = plan->RenderLines();
  } else if (!basic.from_table.empty()) {
    sub.push_back("TableScan " + basic.from_table + "  (actual_rows=" +
                  std::to_string(bindings.NumRows()) + ")");
  } else {
    sub.push_back("Unit");
  }
  // The consuming tail runs too (EXPLAIN ANALYZE executes the whole
  // query); only the binding pipeline is rendered.
  GCORE_ASSIGN_OR_RETURN(QueryResult finished,
                         FinishBasic(basic, std::move(bindings), scope));
  AppendChildLines(sub, /*last=*/true, lines);
  return finished;
}

Result<QueryResult> QueryEngine::ExecuteWithScope(const Query& query,
                                                  Scope* scope) {
  for (const auto& path_clause : query.path_clauses) {
    // Lazy: materialized on first use against the graph actually matched.
    scope->pending_paths.push_back(&path_clause);
  }
  std::string last_graph_clause;
  for (const auto& graph_clause : query.graph_clauses) {
    GCORE_RETURN_NOT_OK(EvalGraphClause(graph_clause, scope));
    last_graph_clause = graph_clause.name;
  }

  QueryResult result;
  if (query.body == nullptr) {
    // Head-only statement (e.g. a bare GRAPH VIEW definition, lines
    // 39-47): the result is the last defined graph, or the empty graph.
    if (!last_graph_clause.empty()) {
      GCORE_ASSIGN_OR_RETURN(const PathPropertyGraph* g,
                             catalog_->Lookup(last_graph_clause));
      result.graph = *g;
    } else {
      result.graph = PathPropertyGraph();
    }
    return result;
  }

  if (query.body->kind == QueryBody::Kind::kBasic &&
      query.body->basic->select.has_value()) {
    return EvalBasic(*query.body->basic, scope);
  }
  GCORE_ASSIGN_OR_RETURN(PathPropertyGraph graph,
                         EvalBody(*query.body, scope));
  result.graph = std::move(graph);
  return result;
}

Status QueryEngine::EvalGraphClause(const GraphClause& clause, Scope* scope) {
  // The subquery sees already-registered graphs and the enclosing PATH
  // clauses.
  auto result = ExecuteWithScope(*clause.query, scope);
  GCORE_RETURN_NOT_OK(result.status());
  if (!result->graph.has_value()) {
    return Status::BindError("GRAPH clause '" + clause.name +
                             "' requires a graph-typed query");
  }
  catalog_->RegisterGraph(clause.name, std::move(*result->graph));
  if (!clause.is_view) scope->local_graphs.push_back(clause.name);
  return Status::OK();
}

Status QueryEngine::MaterializePathViewsFor(const MatchClause& match,
                                            Scope* scope) {
  std::vector<std::string> refs;
  CollectPatternViewRefs(match.patterns, &refs);
  for (const auto& block : match.optionals) {
    CollectPatternViewRefs(block.patterns, &refs);
  }
  if (refs.empty()) return Status::OK();

  // Target graph: the ON graph of the first pattern referencing a view
  // (the default graph when none).
  std::string target_graph;
  for (const auto& p : match.patterns) {
    std::vector<std::string> local;
    CollectPatternViewRefs(p, &local);
    if (!local.empty()) {
      target_graph = p.on_graph;
      break;
    }
  }
  if (target_graph.empty()) target_graph = catalog_->default_graph();

  // Transitive closure over view references.
  auto find_pending = [&](const std::string& name) -> const PathClause* {
    for (const PathClause* c : scope->pending_paths) {
      if (c->name == name) return c;
    }
    return nullptr;
  };
  std::set<std::string> needed;
  std::vector<std::string> queue = refs;
  while (!queue.empty()) {
    const std::string name = queue.back();
    queue.pop_back();
    if (needed.count(name) > 0 || scope->views.Has(name)) continue;
    const PathClause* clause = find_pending(name);
    if (clause == nullptr) {
      return Status::NotFound("PATH view '" + name + "' is not defined");
    }
    needed.insert(name);
    CollectPatternViewRefs(clause->patterns, &queue);
  }

  // Materialize in head-clause order so nested references resolve first.
  for (const PathClause* clause : scope->pending_paths) {
    if (needed.count(clause->name) == 0 || scope->views.Has(clause->name)) {
      continue;
    }
    GCORE_ASSIGN_OR_RETURN(PathViewRelation relation,
                           MaterializePathView(*clause, target_graph, scope));
    scope->views.Register(std::move(relation));
  }
  return Status::OK();
}

Result<PathViewRelation> QueryEngine::MaterializePathView(
    const PathClause& clause, const std::string& graph_name, Scope* scope) {
  if (clause.patterns.empty()) {
    return Status::BindError("PATH clause '" + clause.name +
                             "' has no pattern");
  }
  MatcherContext ctx;
  static_cast<EngineOptions&>(ctx) = scope->options;
  ctx.catalog = catalog_;
  ctx.views = &scope->views;
  ctx.default_graph = graph_name;
  ctx.exists_cb = [this, scope](const Query& subquery,
                                const BindingTable& outer,
                                size_t row) -> Result<bool> {
    return EvalExists(subquery, outer, row, scope);
  };
  Matcher matcher(ctx);

  // First pattern is the walk pattern: its elements form the segment body.
  GCORE_ASSIGN_OR_RETURN(ChainResult detail,
                         matcher.EvalChainDetailed(clause.patterns.front()));
  BindingTable table = std::move(detail.table);
  // Additional comma-separated patterns (non-linear path patterns,
  // footnote 3) constrain via join.
  for (size_t i = 1; i < clause.patterns.size(); ++i) {
    GCORE_ASSIGN_OR_RETURN(ChainResult extra,
                           matcher.EvalChainDetailed(clause.patterns[i]));
    table = TableJoin(table, extra.table);
  }

  GCORE_ASSIGN_OR_RETURN(const PathPropertyGraph* view_graph,
                         matcher.ResolveGraph(""));
  ExprEvaluator eval(view_graph, catalog_);
  ctx.exists_cb = nullptr;

  if (clause.where != nullptr) {
    BindingTable filtered(table.columns());
    for (const auto& [v, g] : table.column_graphs()) {
      filtered.SetColumnGraph(v, g);
    }
    for (size_t r = 0; r < table.NumRows(); ++r) {
      GCORE_ASSIGN_OR_RETURN(bool keep,
                             eval.EvalPredicate(*clause.where, table, r));
      if (keep) filtered.AppendRowFrom(table, r);
    }
    table = std::move(filtered);
  }

  PathViewRelation relation(clause.name);
  for (size_t r = 0; r < table.NumRows(); ++r) {
    double cost = 1.0;  // default hop cost (Appendix A.4)
    if (clause.cost != nullptr) {
      GCORE_ASSIGN_OR_RETURN(Datum d, eval.Eval(*clause.cost, table, r));
      if (d.kind() != Datum::Kind::kValues || !d.values().is_singleton() ||
          !d.values().single().is_numeric()) {
        return Status::EvaluationError("PATH '" + clause.name +
                                       "' COST must evaluate to a number");
      }
      cost = d.values().single().NumericAsDouble();
      if (!(cost > 0.0)) {
        return Status::EvaluationError(
            "PATH '" + clause.name +
            "' COST must be numerical and > 0 (Appendix A.4)");
      }
    }

    // Segment body: walk the chain's element columns. They alternate
    // node, connector, node, connector, ..., node.
    PathViewSegment segment;
    segment.cost = cost;
    const auto& cols = detail.element_columns;
    {
      const Datum& first = table.Get(r, cols.front());
      if (first.kind() != Datum::Kind::kNode) {
        return Status::BindError("PATH pattern start is not a node");
      }
      segment.body.nodes.push_back(first.node());
    }
    for (size_t i = 1; i + 1 < cols.size(); i += 2) {
      const Datum& connector = table.Get(r, cols[i]);
      const Datum& target = table.Get(r, cols[i + 1]);
      if (target.kind() != Datum::Kind::kNode) {
        return Status::BindError("PATH pattern element is not a node");
      }
      if (connector.kind() == Datum::Kind::kEdge) {
        segment.body.edges.push_back(connector.edge());
        segment.body.nodes.push_back(target.node());
      } else if (connector.kind() == Datum::Kind::kPath) {
        // Splice a nested path view walk (skip the junction node).
        const PathBody& nested = connector.path().body;
        for (size_t j = 0; j < nested.edges.size(); ++j) {
          segment.body.edges.push_back(nested.edges[j]);
          segment.body.nodes.push_back(nested.nodes[j + 1]);
        }
      } else {
        return Status::BindError(
            "PATH pattern connector is neither edge nor path");
      }
    }
    segment.src = segment.body.nodes.front();
    segment.dst = segment.body.nodes.back();
    GCORE_RETURN_NOT_OK(relation.AddSegment(std::move(segment)));
  }
  return relation;
}

Status QueryEngine::MaterializeOnLocations(
    const MatchClause& match, Scope* scope,
    std::map<const GraphPattern*, std::string>* overrides) {
  auto materialize_locations =
      [&](const std::vector<GraphPattern>& patterns) -> Status {
    for (const auto& p : patterns) {
      if (p.on_subquery == nullptr) continue;
      GCORE_ASSIGN_OR_RETURN(QueryResult sub,
                             ([&]() -> Result<QueryResult> {
                               return ExecuteWithScope(*p.on_subquery,
                                                       scope);
                             })());
      if (!sub.graph.has_value()) {
        return Status::BindError(
            "ON (subquery) must produce a graph, not a table");
      }
      const std::string name =
          "__location" +
          std::to_string(temp_graph_seq_.fetch_add(
              1, std::memory_order_relaxed));
      catalog_->RegisterGraph(name, std::move(*sub.graph));
      scope->local_graphs.push_back(name);
      overrides->emplace(&p, name);
    }
    return Status::OK();
  };
  GCORE_RETURN_NOT_OK(materialize_locations(match.patterns));
  for (const auto& block : match.optionals) {
    GCORE_RETURN_NOT_OK(materialize_locations(block.patterns));
  }
  return Status::OK();
}

Result<BindingTable> QueryEngine::EvalBindings(
    const BasicQuery& basic, Scope* scope, ExecStats* stats,
    std::unique_ptr<PlanNode>* plan_out) {
  if (basic.match.has_value()) {
    GCORE_RETURN_NOT_OK(MaterializePathViewsFor(*basic.match, scope));

    // ON (subquery) locations: evaluate each to a temporary catalog graph
    // (Appendix A.2: ⟦α ON Q⟧_G = ⟦α⟧_{⟦Q⟧_G}).
    std::map<const GraphPattern*, std::string> overrides;
    GCORE_RETURN_NOT_OK(
        MaterializeOnLocations(*basic.match, scope, &overrides));

    auto eval = [&](Matcher* matcher) -> Result<BindingTable> {
      if (stats != nullptr) {
        return matcher->EvalMatchClauseAnalyzed(*basic.match, stats,
                                                plan_out);
      }
      // Plan-cache hooks apply only to the query body's own basic query
      // (EXISTS subqueries re-enter here with a different BasicQuery).
      if (scope->cache_basic == &basic) {
        if (scope->cached_plan != nullptr) {
          return matcher->EvalMatchClauseWithPlan(*basic.match,
                                                  *scope->cached_plan);
        }
        return matcher->EvalMatchClausePlanning(*basic.match,
                                                &scope->built_plan);
      }
      return matcher->EvalMatchClause(*basic.match);
    };
    Matcher matcher = MakeMatcher(scope);
    if (!overrides.empty()) {
      MatcherContext ctx = matcher.context();
      ctx.location_overrides = &overrides;
      Matcher located(std::move(ctx));
      return eval(&located);
    }
    return eval(&matcher);
  }
  if (!basic.from_table.empty()) {
    GCORE_ASSIGN_OR_RETURN(const Table* table,
                           catalog_->LookupTable(basic.from_table));
    return TableAsBindings(*table);
  }
  return BindingTable::Unit();
}

Result<QueryResult> QueryEngine::EvalBasic(const BasicQuery& basic,
                                           Scope* scope) {
  GCORE_ASSIGN_OR_RETURN(BindingTable bindings, EvalBindings(basic, scope));
  return FinishBasic(basic, std::move(bindings), scope);
}

Result<QueryResult> QueryEngine::FinishBasic(const BasicQuery& basic,
                                             BindingTable bindings,
                                             Scope* scope) {
  QueryResult result;
  if (basic.select.has_value()) {
    const SelectClause& select = *basic.select;
    std::vector<std::string> columns;
    bool any_aggregate = false;
    for (const auto& item : select.items) {
      columns.push_back(!item.alias.empty() ? item.alias
                                            : item.expr->ToString());
      if (item.expr->ContainsAggregate()) any_aggregate = true;
    }
    Table table(columns);

    // λ/σ lookups resolve through per-column provenance; the default
    // graph is only a fallback and may legitimately be absent (e.g. all
    // patterns carry ON).
    const PathPropertyGraph* default_graph = nullptr;
    // The matcher lives through the whole projection: its snapshot cache
    // pins every snapshot the compiled programs below gather from.
    Matcher matcher = MakeMatcher(scope);
    {
      auto resolved = matcher.ResolveGraph("");
      if (resolved.ok()) default_graph = *resolved;
    }
    ExprEvaluator eval(default_graph, catalog_);
    eval.set_exists_callback([this, scope](const Query& subquery,
                                           const BindingTable& outer,
                                           size_t row) -> Result<bool> {
      return EvalExists(subquery, outer, row, scope);
    });

    auto cell_of = [](const Datum& d) -> Value {
      if (d.kind() == Datum::Kind::kValues && d.values().is_singleton()) {
        return d.values().single();
      }
      if (d.IsUnbound() ||
          (d.kind() == Datum::Kind::kValues && d.values().empty())) {
        return Value::Null();
      }
      return Value::String(d.ToString());
    };

    if (any_aggregate) {
      std::vector<size_t> all_rows(bindings.NumRows());
      for (size_t r = 0; r < all_rows.size(); ++r) all_rows[r] = r;
      std::vector<Value> row;
      for (const auto& item : select.items) {
        GCORE_ASSIGN_OR_RETURN(
            Datum d, eval.EvalWithGroup(*item.expr, bindings, all_rows));
        row.push_back(cell_of(d));
      }
      Status st = table.AddRow(std::move(row));
      (void)st;
    } else {
      // Projection with the Section 5 "slicing, sorting" extensions:
      // ORDER BY keys are evaluated against the binding rows, then
      // DISTINCT and LIMIT apply to the projected cells.
      struct ProjectedRow {
        std::vector<Value> keys;
        std::vector<Value> cells;
      };
      std::vector<ProjectedRow> rows;
      rows.reserve(bindings.NumRows());
      // Computed projections run vectorized (eval/expr_vec.h) when the
      // expression compiles: one column-major batch per ORDER BY key and
      // select item, then a row-major assembly loop. Rows a kernel could
      // not decide — and every expression when the knob is off — evaluate
      // through the row evaluator inside that same loop, so row-level
      // errors surface for exactly the (row, expression) the serial loop
      // would reach first.
      const size_t num_keys = select.order_by.size();
      std::vector<const Expr*> exprs;
      exprs.reserve(num_keys + select.items.size());
      for (const auto& key : select.order_by) exprs.push_back(key.expr.get());
      for (const auto& item : select.items) exprs.push_back(item.expr.get());
      std::vector<std::vector<Datum>> vec_vals(exprs.size());
      std::vector<std::vector<uint8_t>> vec_fb(exprs.size());
      std::vector<uint8_t> vectorized(exprs.size(), 0);
      if (options_.enable_vectorized_exprs && bindings.NumRows() > 0) {
        std::vector<size_t> all(bindings.NumRows());
        std::iota(all.begin(), all.end(), size_t{0});
        for (size_t e = 0; e < exprs.size(); ++e) {
          auto prog =
              matcher.VecProgramFor(*exprs[e], bindings, eval, default_graph);
          if (prog != nullptr) {
            prog->EvalValues(bindings, all.data(), all.size(), &vec_vals[e],
                             &vec_fb[e]);
            vectorized[e] = 1;
          }
        }
      }
      auto eval_cell = [&](size_t e, size_t r) -> Result<Value> {
        if (vectorized[e] && vec_fb[e][r] == 0) return cell_of(vec_vals[e][r]);
        GCORE_ASSIGN_OR_RETURN(Datum d, eval.Eval(*exprs[e], bindings, r));
        return cell_of(d);
      };
      for (size_t r = 0; r < bindings.NumRows(); ++r) {
        ProjectedRow out;
        for (size_t e = 0; e < num_keys; ++e) {
          GCORE_ASSIGN_OR_RETURN(Value v, eval_cell(e, r));
          out.keys.push_back(std::move(v));
        }
        for (size_t e = num_keys; e < exprs.size(); ++e) {
          GCORE_ASSIGN_OR_RETURN(Value v, eval_cell(e, r));
          out.cells.push_back(std::move(v));
        }
        rows.push_back(std::move(out));
      }
      if (!select.order_by.empty()) {
        std::stable_sort(
            rows.begin(), rows.end(),
            [&](const ProjectedRow& a, const ProjectedRow& b) {
              for (size_t k = 0; k < select.order_by.size(); ++k) {
                const int cmp = a.keys[k].Compare(b.keys[k]);
                if (cmp != 0) {
                  return select.order_by[k].descending ? cmp > 0 : cmp < 0;
                }
              }
              return false;
            });
      }
      std::set<std::vector<Value>> seen;
      int64_t emitted = 0;
      for (auto& row : rows) {
        if (select.limit >= 0 && emitted >= select.limit) break;
        if (select.distinct && !seen.insert(row.cells).second) continue;
        ++emitted;
        Status st = table.AddRow(std::move(row.cells));
        (void)st;
      }
    }
    result.table = std::move(table);
    return result;
  }

  if (!basic.construct.has_value()) {
    return Status::BindError("basic query lacks a CONSTRUCT clause");
  }
  ConstructorContext ctx;
  ctx.catalog = catalog_;
  ctx.default_graph = catalog_->default_graph();
  ctx.exists_cb = [this, scope](const Query& subquery,
                                const BindingTable& outer,
                                size_t row) -> Result<bool> {
    return EvalExists(subquery, outer, row, scope);
  };
  Constructor constructor(ctx);
  GCORE_ASSIGN_OR_RETURN(PathPropertyGraph graph,
                         constructor.EvalConstruct(*basic.construct,
                                                   bindings));
  result.graph = std::move(graph);
  return result;
}

Result<PathPropertyGraph> QueryEngine::EvalBody(const QueryBody& body,
                                                Scope* scope) {
  switch (body.kind) {
    case QueryBody::Kind::kBasic: {
      GCORE_ASSIGN_OR_RETURN(QueryResult r, EvalBasic(*body.basic, scope));
      if (!r.graph.has_value()) {
        return Status::BindError(
            "SELECT queries cannot participate in graph set operations");
      }
      return std::move(*r.graph);
    }
    case QueryBody::Kind::kGraphRef: {
      GCORE_ASSIGN_OR_RETURN(const PathPropertyGraph* g,
                             catalog_->Lookup(body.graph_ref));
      return PathPropertyGraph(*g);
    }
    case QueryBody::Kind::kUnion:
    case QueryBody::Kind::kIntersect:
    case QueryBody::Kind::kMinus: {
      GCORE_ASSIGN_OR_RETURN(PathPropertyGraph left,
                             EvalBody(*body.left, scope));
      GCORE_ASSIGN_OR_RETURN(PathPropertyGraph right,
                             EvalBody(*body.right, scope));
      switch (body.kind) {
        case QueryBody::Kind::kUnion:
          return GraphUnion(left, right);
        case QueryBody::Kind::kIntersect:
          return GraphIntersect(left, right);
        default:
          return GraphMinus(left, right);
      }
    }
  }
  return Status::EvaluationError("unhandled query body kind");
}

Result<bool> QueryEngine::EvalExists(const Query& subquery,
                                     const BindingTable& outer, size_t row,
                                     Scope* scope) {
  // Correlated evaluation (Appendix A.2): ⟦γ⟧Ω,G = ⟦γ⟧G ⋉ Ω. The
  // subquery's bindings are semijoined with the outer row; EXISTS is true
  // iff any survive (CONSTRUCT over a non-empty binding set yields a
  // non-empty graph).
  const QueryBody* body = subquery.body.get();
  if (body == nullptr) return false;
  if (body->kind == QueryBody::Kind::kGraphRef) {
    GCORE_ASSIGN_OR_RETURN(const PathPropertyGraph* g,
                           catalog_->Lookup(body->graph_ref));
    return !(*g).Empty();
  }
  if (body->kind != QueryBody::Kind::kBasic) {
    // Full set-operation subquery: evaluate uncorrelated.
    auto result = ExecuteWithScope(subquery, scope);
    GCORE_RETURN_NOT_OK(result.status());
    return result->graph.has_value() && !result->graph->Empty();
  }
  GCORE_ASSIGN_OR_RETURN(BindingTable inner_bindings,
                         EvalBindings(*body->basic, scope));
  BindingTable outer_row(outer.columns());
  outer_row.AppendRowFrom(outer, row);
  BindingTable joined = TableSemijoin(outer_row, inner_bindings);
  return !joined.Empty();
}

}  // namespace gcore
