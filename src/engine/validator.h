// Static semantic validation of parsed queries — the well-formedness
// rules the paper states outside the grammar:
//
//  * variable sorts are consistent: "it would be illegal to use n (a
//    node) in the place of y (an edge)" (Section 3);
//  * ALL path variables may only be used for graph projection:
//    "asking for all paths is not allowed if a path variable is bound to
//    it and used somewhere ... G-CORE can support it in the case where
//    the path variable is only used to return a graph projection";
//  * construct-side path variables must be bound by the MATCH;
//  * bound edges cannot be re-oriented (checked at runtime too; flagged
//    early when statically decidable);
//  * PATH view names are unique; referenced views exist among the head
//    clauses;
//  * variables shared between OPTIONAL blocks appear in the enclosing
//    pattern (Section 3 / [31]).
//
// Validation runs before evaluation (QueryEngine::Execute) and returns
// kBindError with a precise message.
#ifndef GCORE_ENGINE_VALIDATOR_H_
#define GCORE_ENGINE_VALIDATOR_H_

#include "ast/ast.h"
#include "common/status.h"

namespace gcore {

/// Variable sorts.
enum class VarSort { kNode, kEdge, kPath, kValue };
const char* VarSortToString(VarSort sort);

/// Checks `query` (recursing into views, subqueries and set-op branches).
Status ValidateQuery(const Query& query);

}  // namespace gcore

#endif  // GCORE_ENGINE_VALIDATOR_H_
