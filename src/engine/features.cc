#include "engine/features.h"

#include <algorithm>

namespace gcore {

const char* QueryFeatureToString(QueryFeature feature) {
  switch (feature) {
    case QueryFeature::kHomomorphicMatching:
      return "Matching all patterns (Homomorphism)";
    case QueryFeature::kLiteralMatching:
      return "Matching literal values";
    case QueryFeature::kKShortestPaths:
      return "Matching k shortest paths";
    case QueryFeature::kAllShortestPaths:
      return "Matching all shortest paths";
    case QueryFeature::kWeightedShortestPaths:
      return "Matching weighted shortest paths";
    case QueryFeature::kOptionalMatching:
      return "(multi-segment) optional matching";
    case QueryFeature::kMultipleGraphs:
      return "Querying multiple graphs";
    case QueryFeature::kQueriesOnPaths:
      return "Queries on paths";
    case QueryFeature::kFilteringMatches:
      return "Filtering matches";
    case QueryFeature::kFilteringPathExpressions:
      return "Filtering path expressions";
    case QueryFeature::kValueJoins:
      return "Value joins";
    case QueryFeature::kCartesianProduct:
      return "Cartesian product";
    case QueryFeature::kListMembership:
      return "List membership";
    case QueryFeature::kGraphSetOperations:
      return "Set operations on graphs";
    case QueryFeature::kImplicitExistential:
      return "Existential subqueries - Implicit";
    case QueryFeature::kExplicitExistential:
      return "Existential subqueries - Explicit";
    case QueryFeature::kGraphConstruction:
      return "Graph construction";
    case QueryFeature::kGraphAggregation:
      return "Graph aggregation";
    case QueryFeature::kGraphProjection:
      return "Graph projection";
    case QueryFeature::kGraphViews:
      return "Graph views";
    case QueryFeature::kPropertyAddition:
      return "Property addition";
    case QueryFeature::kTabularProjection:
      return "Tabular projection (SELECT)";
    case QueryFeature::kTabularImport:
      return "Tabular import (FROM/ON table)";
  }
  return "?";
}

namespace {

class Detector {
 public:
  std::set<QueryFeature> features;

  void Add(QueryFeature f) { features.insert(f); }

  void VisitExpr(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kBinary:
        if (expr.binary_op == BinaryOp::kIn ||
            expr.binary_op == BinaryOp::kSubsetOf) {
          Add(QueryFeature::kListMembership);
        }
        if (expr.binary_op == BinaryOp::kEq &&
            expr.args[0]->kind == Expr::Kind::kProperty &&
            expr.args[1]->kind == Expr::Kind::kProperty &&
            expr.args[0]->var != expr.args[1]->var) {
          Add(QueryFeature::kValueJoins);
        }
        if (expr.binary_op == BinaryOp::kEq &&
            (expr.args[1]->kind == Expr::Kind::kLiteral ||
             expr.args[0]->kind == Expr::Kind::kLiteral)) {
          Add(QueryFeature::kLiteralMatching);
        }
        break;
      case Expr::Kind::kExists:
        Add(QueryFeature::kExplicitExistential);
        if (expr.subquery != nullptr) VisitQuery(*expr.subquery);
        break;
      case Expr::Kind::kGraphPattern:
        Add(QueryFeature::kImplicitExistential);
        if (expr.pattern != nullptr) VisitPattern(*expr.pattern);
        break;
      default:
        break;
    }
    for (const auto& arg : expr.args) {
      if (arg != nullptr) VisitExpr(*arg);
    }
    for (const auto& arm : expr.case_arms) {
      if (arm.condition != nullptr) VisitExpr(*arm.condition);
      if (arm.result != nullptr) VisitExpr(*arm.result);
    }
    if (expr.case_else != nullptr) VisitExpr(*expr.case_else);
  }

  void VisitPattern(const GraphPattern& pattern) {
    auto visit_props = [&](const std::vector<PropPattern>& props) {
      for (const auto& p : props) {
        if (p.mode == PropPattern::Mode::kFilter) {
          Add(QueryFeature::kLiteralMatching);
        }
        if (p.mode == PropPattern::Mode::kAssign) {
          Add(QueryFeature::kPropertyAddition);
          if (p.value != nullptr) VisitExpr(*p.value);
        }
        if (p.value != nullptr && p.mode == PropPattern::Mode::kFilter) {
          VisitExpr(*p.value);
        }
      }
    };
    visit_props(pattern.start.props);
    for (const auto& hop : pattern.hops) {
      if (hop.kind == PatternHop::Kind::kEdge) {
        visit_props(hop.edge.props);
        if (!hop.edge.group_by.empty()) {
          Add(QueryFeature::kGraphAggregation);
        }
      } else {
        visit_props(hop.path.props);
        switch (hop.path.mode) {
          case PathPattern::Mode::kShortest:
            if (hop.path.k > 1) {
              Add(QueryFeature::kKShortestPaths);
            } else {
              Add(QueryFeature::kAllShortestPaths);
            }
            break;
          case PathPattern::Mode::kAll:
          case PathPattern::Mode::kReachability:
            Add(QueryFeature::kAllShortestPaths);
            break;
          case PathPattern::Mode::kStoredMatch:
            Add(QueryFeature::kQueriesOnPaths);
            break;
        }
        if (hop.path.rpq != nullptr && hop.path.rpq->ReferencesView()) {
          Add(QueryFeature::kWeightedShortestPaths);
        }
      }
      if (!hop.to.group_by.empty()) Add(QueryFeature::kGraphAggregation);
    }
    if (!pattern.start.group_by.empty()) {
      Add(QueryFeature::kGraphAggregation);
    }
  }

  void VisitMatch(const MatchClause& match) {
    Add(QueryFeature::kHomomorphicMatching);
    std::set<std::string> on_graphs;
    for (const auto& p : match.patterns) {
      VisitPattern(p);
      on_graphs.insert(p.on_graph);
    }
    if (on_graphs.size() > 1) Add(QueryFeature::kMultipleGraphs);
    if (match.patterns.size() > 1) {
      // Cartesian product when two patterns share no variables.
      std::vector<std::set<std::string>> vars;
      for (const auto& p : match.patterns) {
        std::vector<std::string> v;
        p.CollectBoundVariables(&v);
        vars.emplace_back(v.begin(), v.end());
      }
      for (size_t i = 0; i < vars.size(); ++i) {
        for (size_t j = i + 1; j < vars.size(); ++j) {
          bool disjoint = true;
          for (const auto& v : vars[i]) {
            if (vars[j].count(v) > 0) {
              disjoint = false;
              break;
            }
          }
          if (disjoint) Add(QueryFeature::kCartesianProduct);
        }
      }
    }
    if (match.where != nullptr) {
      Add(QueryFeature::kFilteringMatches);
      VisitExpr(*match.where);
    }
    if (!match.optionals.empty()) Add(QueryFeature::kOptionalMatching);
    for (const auto& block : match.optionals) {
      for (const auto& p : block.patterns) VisitPattern(p);
      if (block.where != nullptr) {
        Add(QueryFeature::kFilteringMatches);
        VisitExpr(*block.where);
      }
    }
  }

  void VisitConstruct(const ConstructClause& construct) {
    Add(QueryFeature::kGraphConstruction);
    bool has_graph_ref = false;
    for (const auto& item : construct.items) {
      if (!item.graph_ref.empty()) {
        has_graph_ref = true;
        continue;
      }
      VisitPattern(*item.pattern);
      for (const auto& hop : item.pattern->hops) {
        if (hop.kind == PatternHop::Kind::kPath) {
          Add(QueryFeature::kGraphProjection);
        }
      }
      for (const auto& s : item.sets) {
        if (s.kind == SetStatement::Kind::kSetProperty) {
          Add(QueryFeature::kPropertyAddition);
          if (s.value != nullptr) VisitExpr(*s.value);
        }
      }
      if (item.when != nullptr) VisitExpr(*item.when);
    }
    if (has_graph_ref && construct.items.size() > 1) {
      Add(QueryFeature::kGraphSetOperations);  // shorthand union
    }
  }

  void VisitBody(const QueryBody& body) {
    switch (body.kind) {
      case QueryBody::Kind::kBasic: {
        const BasicQuery& basic = *body.basic;
        if (basic.construct.has_value()) VisitConstruct(*basic.construct);
        if (basic.select.has_value()) {
          Add(QueryFeature::kTabularProjection);
          for (const auto& item : basic.select->items) {
            VisitExpr(*item.expr);
          }
        }
        if (basic.match.has_value()) VisitMatch(*basic.match);
        if (!basic.from_table.empty()) Add(QueryFeature::kTabularImport);
        break;
      }
      case QueryBody::Kind::kGraphRef:
        break;
      default:
        Add(QueryFeature::kGraphSetOperations);
        VisitBody(*body.left);
        VisitBody(*body.right);
        break;
    }
  }

  void VisitQuery(const Query& query) {
    for (const auto& p : query.path_clauses) {
      for (const auto& pattern : p.patterns) VisitPattern(pattern);
      if (p.where != nullptr) {
        Add(QueryFeature::kFilteringPathExpressions);
        VisitExpr(*p.where);
      }
      if (p.cost != nullptr) {
        Add(QueryFeature::kWeightedShortestPaths);
        VisitExpr(*p.cost);
      }
    }
    for (const auto& g : query.graph_clauses) {
      Add(QueryFeature::kGraphViews);
      if (g.query != nullptr) VisitQuery(*g.query);
    }
    if (query.body != nullptr) VisitBody(*query.body);
  }
};

}  // namespace

std::set<QueryFeature> DetectFeatures(const Query& query) {
  Detector detector;
  detector.VisitQuery(query);
  return detector.features;
}

std::vector<std::string> FeatureReport(const Query& query) {
  std::vector<std::string> lines;
  for (QueryFeature f : DetectFeatures(query)) {
    lines.push_back(QueryFeatureToString(f));
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

}  // namespace gcore
