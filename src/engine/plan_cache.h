// The plan cache: repeated queries pay near-zero planning cost.
//
// A bounded LRU map in front of parse + plan. The key is (normalized
// query text, default graph name, knob fingerprint); an entry stores the
// parsed Query (owner of every AST node the plan points into) and the
// optimized PlanNode tree of the body's MATCH, plus the (graph name,
// version) pairs the plan was built against. A lookup validates those
// versions against the catalog — a re-registered graph bumps its version,
// so stale entries miss (and are erased); the engine additionally hooks
// GraphCatalog's invalidation listeners to evict entries for a name
// eagerly. Hit/miss/eviction/plan counters are exposed for tests and the
// serving bench.
//
// Thread-safe: sessions on N threads consult one cache; entries are
// handed out as shared_ptr<const Entry>, so an entry evicted mid-flight
// stays alive for the queries executing it (the same epoch discipline as
// the catalog's snapshots).
#ifndef GCORE_ENGINE_PLAN_CACHE_H_
#define GCORE_ENGINE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "ast/ast.h"
#include "graph/catalog.h"
#include "plan/plan.h"

namespace gcore {

/// Canonical form of a query text for cache keying: runs of whitespace
/// outside string literals collapse to one space, and keyword tokens
/// fold to uppercase (the lexer recognizes them case-insensitively, so
/// `match` and `MATCH` must share an entry). Identifiers and quoted
/// literals are preserved byte-for-byte — they are case-sensitive to the
/// parser — so two texts normalize equal only if they parse identically.
std::string NormalizeQueryText(const std::string& text);

struct PlanCacheKey {
  std::string text;      // normalized query text
  std::string graph;     // default graph at submission
  uint64_t knobs = 0;    // EngineOptions::Fingerprint()

  friend bool operator<(const PlanCacheKey& a, const PlanCacheKey& b) {
    return std::tie(a.text, a.graph, a.knobs) <
           std::tie(b.text, b.graph, b.knobs);
  }
};

struct PlanCacheCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;      // capacity + invalidation + staleness
  uint64_t plans = 0;          // optimizer runs through the cached path
};

class PlanCache {
 public:
  static constexpr size_t kDefaultCapacity = 128;

  explicit PlanCache(size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  struct Entry {
    /// The parsed (and validated) query; owns the AST `plan` points into.
    std::shared_ptr<const Query> query;
    /// Optimized plan of the body's MATCH; null for match-less cacheable
    /// bodies (FROM <table> / unit) and legacy-walk sessions, where the
    /// entry still saves the re-parse.
    std::shared_ptr<const PlanNode> plan;
    /// Versions of every graph the plan touches, recorded at insert.
    std::vector<std::pair<std::string, uint64_t>> graph_versions;
  };

  /// Returns the entry for `key` when present AND its recorded graph
  /// versions still match `catalog`; counts a hit. A version mismatch
  /// erases the stale entry and counts a miss + eviction, like absence
  /// counts a miss.
  std::shared_ptr<const Entry> Lookup(const PlanCacheKey& key,
                                      const GraphCatalog& catalog);

  /// Inserts (or replaces) the entry, evicting the least-recently-used
  /// entry beyond capacity. No-op when capacity is 0.
  void Insert(const PlanCacheKey& key, Entry entry);

  /// Evicts every entry whose plan touches `graph` (catalog invalidation
  /// listener — a re-registered or dropped name).
  void InvalidateGraph(const std::string& graph);

  void Clear();
  /// Counts one optimizer run on the cached execution path (a miss that
  /// went on to plan).
  void RecordPlanBuild();

  PlanCacheCounters counters() const;
  size_t size() const;
  size_t capacity() const;
  /// Re-bounds the cache; shrinking evicts LRU-first. Capacity 0 empties
  /// it and disables insertion (the cold-path bench mode).
  void set_capacity(size_t capacity);

 private:
  using LruList =
      std::list<std::pair<PlanCacheKey, std::shared_ptr<const Entry>>>;

  /// Erases `it` from both structures. Caller holds mu_.
  void EvictLocked(LruList::iterator it);
  void ShrinkToCapacityLocked();

  mutable std::mutex mu_;
  size_t capacity_;
  LruList lru_;  // front = most recently used
  std::map<PlanCacheKey, LruList::iterator> index_;
  PlanCacheCounters counters_;
};

}  // namespace gcore

#endif  // GCORE_ENGINE_PLAN_CACHE_H_
